// Package bench is the reproduction harness: one benchmark per table and
// figure of the paper's evaluation, plus the ablation studies listed in
// DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark re-runs the corresponding experiment and reports the
// figures-of-merit as custom metrics (b.ReportMetric), so the "rows" the
// paper reports can be regenerated from the bench output. EXPERIMENTS.md
// records paper-vs-measured for each.
package bench

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"microscope/analysis/sidechan"
	"microscope/attack/baseline"
	"microscope/attack/defense"
	"microscope/attack/experiments"
	"microscope/attack/microscope"
	"microscope/attack/replay"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// sweepWorkers pins the parallel worker count of the sweep benchmarks.
// Deliberately a fixed default rather than the machine's core count
// (runtime.NumCPU is banned by determlint, and a machine-derived count
// would make the committed BENCH_*.json metrics incomparable across
// hosts): every sweep benchmark runs the same schedule everywhere, and
// the count it actually used is reported in its metric block. Override
// with -sweep-workers to measure scaling on a specific machine.
var sweepWorkers = flag.Int("sweep-workers", 4,
	"pinned parallel worker count for the sweep benchmarks")

// reportSweepWorkers puts the pinned worker count into a sweep
// benchmark's metric block, so committed bench JSON records the
// schedule its numbers were measured under.
func reportSweepWorkers(b *testing.B, workers int) {
	b.ReportMetric(float64(workers), "workers")
}

// reportSimThroughput reports how many millions of simulated cycles the
// benchmark pushed through per wall-clock second — the simulator-speed
// figure the fast-forward and allocation work tracks across PRs (see
// docs/performance.md). simCycles is the total across all b.N iterations.
func reportSimThroughput(b *testing.B, simCycles uint64) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(simCycles)/1e6/secs, "sim-mcycles-per-sec")
	}
}

// BenchmarkTable1Taxonomy regenerates the Table 1 classification and
// verifies MicroScope's unique cell.
func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		attacks := sidechan.Table1()
		if _, unique := sidechan.UniqueCell(attacks,
			sidechan.FineGrain, sidechan.HighResolution, false); !unique {
			b.Fatal("taxonomy broken")
		}
		_ = sidechan.FormatTable1(attacks)
	}
}

// BenchmarkTable2API exercises the five user-API operations end to end.
func BenchmarkTable2API(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rig, err := experiments.NewRig(cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		l := victim.LoopSecret([]byte{1, 2})
		if err := rig.InstallVictim(l); err != nil {
			b.Fatal(err)
		}
		u := rig.Module.User(rig.Victim)
		u.ProvideReplayHandle(l.Sym("handle"))
		u.ProvidePivot(l.Sym("pivot"))
		u.ProvideMonitorAddr(l.Sym("probe"))
		if err := u.InitiatePageWalk(l.Sym("probe"), 2); err != nil {
			b.Fatal(err)
		}
		u.Recipe().MaxReplays = 3
		if err := u.InitiatePageFault(l.Sym("handle")); err != nil {
			b.Fatal(err)
		}
		l.Start(rig.Kernel, 0)
		if err := rig.Run(20_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Timeline replays a victim and regenerates the Fig. 3
// replayer/victim timeline.
func BenchmarkFig3Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rig, err := experiments.NewRig(cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		l := victim.ControlFlowSecret(true)
		if err := rig.InstallVictim(l); err != nil {
			b.Fatal(err)
		}
		rec := &microscope.Recipe{
			Name: "fig3", Victim: rig.Victim, Handle: l.Sym("handle"), MaxReplays: 4,
		}
		if err := rig.Module.Install(rec); err != nil {
			b.Fatal(err)
		}
		l.Start(rig.Kernel, 0)
		if err := rig.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		if len(rig.Module.Timeline()) < 8 {
			b.Fatal("timeline too short")
		}
	}
}

// BenchmarkFig5SingleSecret runs the subnormal-divide detection attack.
func BenchmarkFig5SingleSecret(b *testing.B) {
	var last *experiments.SubnormalResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSubnormal(1500)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Detected() {
			b.Fatal("subnormal not detected")
		}
		last = res
	}
	b.ReportMetric(float64(last.MaxSubnormal), "max-subnormal-cycles")
	b.ReportMetric(float64(last.MaxNormal), "max-normal-cycles")
}

// BenchmarkFig9ExecPath measures the kernel fault path with the module
// loaded (Fig. 9 steps 1-7) per delivered fault.
func BenchmarkFig9ExecPath(b *testing.B) {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	l := victim.ControlFlowSecret(false)
	if err := rig.InstallVictim(l); err != nil {
		b.Fatal(err)
	}
	rec := &microscope.Recipe{Name: "fig9", Victim: rig.Victim, Handle: l.Sym("handle")}
	rec.MaxReplays = 1 << 30
	done := 0
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		done = ev.Replays
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		b.Fatal(err)
	}
	l.Start(rig.Kernel, 0)
	b.ResetTimer()
	for done < b.N && rig.Core.Cycle() < uint64(b.N)*100_000+10_000_000 {
		rig.Core.Step()
	}
	if done < b.N {
		b.Fatalf("only %d faults in budget", done)
	}
}

// BenchmarkFig10PortContention runs the headline experiment and reports
// the separation factor (paper: 16x).
func BenchmarkFig10PortContention(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.Samples = 4000
	var last *experiments.Fig10Result
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.SecretDetected() {
			b.Fatal("secret not detected")
		}
		simCycles += res.Mul.Cycles + res.Div.Cycles
		last = res
	}
	b.ReportMetric(last.SeparationX, "separation-x")
	b.ReportMetric(float64(last.MulOver), "mul-over")
	b.ReportMetric(float64(last.DivOver), "div-over")
	b.ReportMetric(float64(last.Threshold), "threshold-cycles")
	reportSimThroughput(b, simCycles)
}

// BenchmarkFig11AESReplay runs the three-replay Td1 probe experiment.
func BenchmarkFig11AESReplay(b *testing.B) {
	cfg := experiments.DefaultAESConfig()
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent() {
			b.Fatal("primed replays inconsistent")
		}
		last = res
	}
	b.ReportMetric(float64(last.Replay0Bands), "replay0-bands")
	b.ReportMetric(float64(len(experiments.LinesOf(last.Truth))), "hot-lines")
}

// BenchmarkSec62FullExtraction runs the complete single-run AES trace
// extraction and reports the fault budget.
func BenchmarkSec62FullExtraction(b *testing.B) {
	cfg := experiments.DefaultAESConfig()
	var last *experiments.ExtractionResult
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAESExtraction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ok, diff := res.Match(); !ok {
			b.Fatal(diff)
		}
		simCycles += res.Cycles
		last = res
	}
	b.ReportMetric(float64(last.Faults), "faults")
	b.ReportMetric(float64(last.Rounds), "rounds")
	reportSimThroughput(b, simCycles)
}

// BenchmarkSweepAESKeyExtraction measures the analysis/sweep worker pool
// on the heaviest workload: the 8-trial first-round key-byte recovery
// (one full §6.2 extraction per trial). It runs the identical sweep
// serially (workers=1) and in parallel (workers=-sweep-workers),
// verifies the results are equal — the sweep determinism guarantee —
// and reports both wall-clock times plus the speedup, so the
// parallel-vs-serial trajectory lands in the bench history. On a
// single-core runner the speedup metric sits near 1x by construction.
func BenchmarkSweepAESKeyExtraction(b *testing.B) {
	cfg := experiments.DefaultAESConfig()
	const trials = 8
	var serialNs, parallelNs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		serial, err := experiments.RunAESKeyByteSweep(cfg, trials, 1)
		if err != nil {
			b.Fatal(err)
		}
		serialNs = float64(time.Since(start).Nanoseconds())
		start = time.Now()
		parallel, err := experiments.RunAESKeyByteSweep(cfg, trials, *sweepWorkers)
		if err != nil {
			b.Fatal(err)
		}
		parallelNs = float64(time.Since(start).Nanoseconds())
		if !reflect.DeepEqual(serial, parallel) {
			b.Fatal("parallel sweep diverged from serial run")
		}
		if !parallel.Complete() {
			b.Fatal("key-byte recovery incomplete")
		}
	}
	b.ReportMetric(serialNs, "serial-ns")
	b.ReportMetric(parallelNs, "parallel-ns")
	b.ReportMetric(serialNs/parallelNs, "sweep-speedup-x")
	reportSweepWorkers(b, *sweepWorkers)
}

// BenchmarkSweepFig10Trials measures the repeated-trial Fig. 10 sweep
// (the LEASH-style detection-study workload) serial vs parallel.
func BenchmarkSweepFig10Trials(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.Samples = 1000
	const trials = 4
	var serialNs, parallelNs float64
	for i := 0; i < b.N; i++ {
		cfg.Workers = 1
		start := time.Now()
		serial, err := experiments.RunFig10Sweep(cfg, trials)
		if err != nil {
			b.Fatal(err)
		}
		serialNs = float64(time.Since(start).Nanoseconds())
		cfg.Workers = *sweepWorkers
		start = time.Now()
		parallel, err := experiments.RunFig10Sweep(cfg, trials)
		if err != nil {
			b.Fatal(err)
		}
		parallelNs = float64(time.Since(start).Nanoseconds())
		if serial.Detected != parallel.Detected || serial.Mul != parallel.Mul {
			b.Fatal("parallel fig10 sweep diverged from serial run")
		}
	}
	b.ReportMetric(serialNs, "serial-ns")
	b.ReportMetric(parallelNs, "parallel-ns")
	b.ReportMetric(serialNs/parallelNs, "sweep-speedup-x")
	reportSweepWorkers(b, *sweepWorkers)
}

// BenchmarkCheckpointForkKeysweep measures what checkpoint/fork buys the
// heaviest sweep: the 8-plaintext extraction sweep cold-booting a 64 MB
// platform per trial vs forking every trial from one warm post-install
// checkpoint. Both run single-worker, so the comparison isolates the
// per-trial setup cost from parallel scheduling; the results must be
// byte-identical (the fork correctness guarantee), and fork-speedup-x
// is the acceptance bar (>= 2x trials/sec).
func BenchmarkCheckpointForkKeysweep(b *testing.B) {
	cfg := experiments.DefaultAESConfig()
	const trials = 8
	pts := make([][]byte, trials)
	for i := range pts {
		pts[i] = experiments.TrialPlaintext(i)
	}
	var coldNs, forkNs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		cold, err := experiments.RunAESExtractionSweepColdBoot(cfg, pts, 1)
		if err != nil {
			b.Fatal(err)
		}
		coldNs = float64(time.Since(start).Nanoseconds())
		start = time.Now()
		fork, err := experiments.RunAESExtractionSweep(cfg, pts, 1)
		if err != nil {
			b.Fatal(err)
		}
		forkNs = float64(time.Since(start).Nanoseconds())
		if !reflect.DeepEqual(cold, fork) {
			b.Fatal("forked sweep diverged from cold-boot run")
		}
	}
	b.ReportMetric(coldNs, "coldboot-ns")
	b.ReportMetric(forkNs, "fork-ns")
	b.ReportMetric(coldNs/forkNs, "fork-speedup-x")
	b.ReportMetric(float64(trials)/(coldNs/1e9), "coldboot-trials-per-sec")
	b.ReportMetric(float64(trials)/(forkNs/1e9), "fork-trials-per-sec")
	reportSweepWorkers(b, 1) // both legs pinned serial: isolates setup cost
}

// BenchmarkCheckpointForkFig10 is the same cold-boot vs fork comparison
// on the Fig. 10 detection-study sweep (four platforms per trial when
// cold-booting: two sides, each with victim and monitor installs).
func BenchmarkCheckpointForkFig10(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.Samples = 1000
	cfg.Workers = 1
	const trials = 4
	var coldNs, forkNs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		cold, err := experiments.RunFig10SweepColdBoot(cfg, trials)
		if err != nil {
			b.Fatal(err)
		}
		coldNs = float64(time.Since(start).Nanoseconds())
		start = time.Now()
		fork, err := experiments.RunFig10Sweep(cfg, trials)
		if err != nil {
			b.Fatal(err)
		}
		forkNs = float64(time.Since(start).Nanoseconds())
		if cold.Detected != fork.Detected || cold.Mul != fork.Mul || cold.Div != fork.Div {
			b.Fatal("forked fig10 sweep diverged from cold-boot run")
		}
	}
	b.ReportMetric(coldNs, "coldboot-ns")
	b.ReportMetric(forkNs, "fork-ns")
	b.ReportMetric(coldNs/forkNs, "fork-speedup-x")
	b.ReportMetric(float64(trials)/(forkNs/1e9), "fork-trials-per-sec")
	reportSweepWorkers(b, 1) // both legs pinned serial: isolates setup cost
}

// BenchmarkFig12ReplayHandles runs the three generalized replay handles.
func BenchmarkFig12ReplayHandles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := replay.RunPageFaultHandle(5); err != nil {
			b.Fatal(err)
		}
		if _, err := replay.RunTSXAbortHandle(5, false); err != nil {
			b.Fatal(err)
		}
		if _, err := replay.RunMispredictHandle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec72RDRANDBias runs the integrity attack with and without the
// fence.
func BenchmarkSec72RDRANDBias(b *testing.B) {
	var windows int
	for i := 0; i < b.N; i++ {
		res, err := replay.RunRDRANDBias(1, 100, false)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Achieved {
			b.Fatal("bias failed")
		}
		windows = res.Windows
		fenced, err := replay.RunRDRANDBias(1, 30, true)
		if err != nil {
			b.Fatal(err)
		}
		if fenced.Achieved {
			b.Fatal("fenced bias succeeded")
		}
	}
	b.ReportMetric(float64(windows), "windows-discarded")
}

// BenchmarkSec8Defenses evaluates T-SGX, Déjà Vu and PF-obliviousness.
func BenchmarkSec8Defenses(b *testing.B) {
	var leaks int
	for i := 0; i < b.N; i++ {
		ts, err := defense.RunTSGX(10)
		if err != nil {
			b.Fatal(err)
		}
		leaks = ts.LeakObservations
		if _, err := defense.RunDejaVu(10_000, 2, 1_200); err != nil {
			b.Fatal(err)
		}
		if _, err := defense.RunPFOblivious(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(leaks), "tsgx-leaks")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------

// faultDelay measures victim-start-to-first-fault time under a given
// core config and walk tuning: the replay-window length knob.
func faultDelay(b *testing.B, cfg cpu.Config, walkLevels int) uint64 {
	b.Helper()
	rig, err := experiments.NewRig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l := victim.ControlFlowSecret(false)
	if err := rig.InstallVictim(l); err != nil {
		b.Fatal(err)
	}
	rec := &microscope.Recipe{
		Name: "ablation", Victim: rig.Victim, Handle: l.Sym("handle"),
		WalkLevels: walkLevels, MaxReplays: 1,
	}
	var faultCycle uint64
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		faultCycle = ev.Cycle
		return microscope.Release
	}
	if err := rig.Module.Install(rec); err != nil {
		b.Fatal(err)
	}
	start := rig.Core.Cycle()
	l.Start(rig.Kernel, 0)
	if err := rig.Run(10_000_000); err != nil {
		b.Fatal(err)
	}
	return faultCycle - start
}

// BenchmarkAblationWalkLength: the page-walk duration (and with it the
// replay window) grows with the number of uncached page-table levels.
func BenchmarkAblationWalkLength(b *testing.B) {
	var delays [5]uint64
	for i := 0; i < b.N; i++ {
		for levels := 1; levels <= 4; levels++ {
			delays[levels] = faultDelay(b, cpu.DefaultConfig(), levels)
		}
	}
	for levels := 1; levels <= 4; levels++ {
		b.ReportMetric(float64(delays[levels]), map[int]string{
			1: "walk1-cycles", 2: "walk2-cycles", 3: "walk3-cycles", 4: "walk4-cycles",
		}[levels])
	}
	if delays[4] <= delays[1] {
		b.Fatal("walk length has no effect")
	}
}

// BenchmarkAblationPWC: disabling the page-walk cache lengthens every
// walk (upper levels no longer short-circuit).
func BenchmarkAblationPWC(b *testing.B) {
	var with, without uint64
	for i := 0; i < b.N; i++ {
		cfg := cpu.DefaultConfig()
		with = coldWalkCycles(b, cfg)
		cfg.PWCSize = 0
		without = coldWalkCycles(b, cfg)
	}
	b.ReportMetric(float64(with), "pwc-on-cycles")
	b.ReportMetric(float64(without), "pwc-off-cycles")
}

// coldWalkCycles measures a TLB-missing access to a sibling page after
// the caches were flushed but the PWC (when enabled) still holds the
// upper page-table levels.
func coldWalkCycles(b *testing.B, cfg cpu.Config) uint64 {
	b.Helper()
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cfg, phys)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		b.Fatal(err)
	}
	core.Context(0).SetAddressSpace(as)
	va := mem.Addr(0x40_0000)
	if _, err := as.MapNew(va, mem.FlagUser|mem.FlagWritable); err != nil {
		b.Fatal(err)
	}
	if _, err := as.MapNew(va+mem.PageSize, mem.FlagUser|mem.FlagWritable); err != nil {
		b.Fatal(err)
	}

	// Phase 1: warm the PWC with a walk of the first page.
	warm := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	core.Context(0).SetProgram(warm, 0)
	core.Run(1_000_000)

	// Flush the cache hierarchy (the PWC survives when configured).
	core.Hierarchy().FlushAll()

	// Phase 2: time a walk of the sibling page.
	probe := isa.NewBuilder().
		MovImm(isa.R1, int64(va+mem.PageSize)).
		Rdtsc(isa.R7).
		Load(isa.R2, isa.R1, 0).
		Mov(isa.R3, isa.R2). // dependent: orders the closing rdtsc
		Rdtsc(isa.R8).
		Halt().MustBuild()
	core.Context(0).SetProgram(probe, 0)
	core.Run(1_000_000)
	return core.Context(0).Reg(isa.R8) - core.Context(0).Reg(isa.R7)
}

// BenchmarkAblationDividerLatency: the port channel's separability scales
// with divider occupancy.
func BenchmarkAblationDividerLatency(b *testing.B) {
	var sep12, sep48 float64
	for i := 0; i < b.N; i++ {
		cfgShort := experiments.DefaultFig10Config()
		cfgShort.Samples = 1500
		sep12 = fig10SeparationWithDivLat(b, cfgShort, 12)
		sep48 = fig10SeparationWithDivLat(b, cfgShort, 48)
	}
	b.ReportMetric(sep12, "separation-div12")
	b.ReportMetric(sep48, "separation-div48")
}

func fig10SeparationWithDivLat(b *testing.B, cfg experiments.Fig10Config, divLat int) float64 {
	b.Helper()
	res, err := experiments.RunFig10WithCore(cfg, func(c *cpu.Config) {
		c.DivLat = divLat
		c.FDivLat = divLat
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.SeparationX
}

// BenchmarkAblationROBSize: the speculative window (instructions per
// replay) is bounded by the ROB.
func BenchmarkAblationROBSize(b *testing.B) {
	var small, large uint64
	for i := 0; i < b.N; i++ {
		cfg := cpu.DefaultConfig()
		cfg.ROBSize = 16
		small = windowFootprint(b, cfg)
		cfg.ROBSize = 192
		large = windowFootprint(b, cfg)
	}
	b.ReportMetric(float64(small), "lines-rob16")
	b.ReportMetric(float64(large), "lines-rob192")
	if small >= large {
		b.Fatal("ROB size has no effect on window footprint")
	}
}

// windowFootprint counts probe lines touched in one replay window of a
// victim that streams through many lines after the handle.
func windowFootprint(b *testing.B, cfg cpu.Config) uint64 {
	b.Helper()
	rig, err := experiments.NewRig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l := victim.LoopSecret([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	if err := rig.InstallVictim(l); err != nil {
		b.Fatal(err)
	}
	var count uint64
	rec := &microscope.Recipe{
		Name: "rob", Victim: rig.Victim, Handle: l.Sym("handle"), MaxReplays: 1,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		addrs := make([]mem.Addr, 64)
		for i := range addrs {
			addrs[i] = l.Sym("probe") + mem.Addr(i)*64
		}
		prs, err := rig.Module.ProbeAddrs(rig.Victim, addrs)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range prs {
			if pr.Level != 4 {
				count++
			}
		}
		return microscope.Release
	}
	if err := rig.Module.Install(rec); err != nil {
		b.Fatal(err)
	}
	l.Start(rig.Kernel, 0)
	if err := rig.Run(10_000_000); err != nil {
		b.Fatal(err)
	}
	return count
}

// BenchmarkAblationHandlerLatency: longer handlers dilute the monitor's
// over-threshold fraction (most samples land during handling, §6.1).
func BenchmarkAblationHandlerLatency(b *testing.B) {
	var short, long float64
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig10Config()
		cfg.Samples = 1500
		cfg.HandlerLatency = 2_000
		r1, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		short = float64(r1.DivOver) / float64(cfg.Samples)
		cfg.HandlerLatency = 20_000
		r2, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		long = float64(r2.DivOver) / float64(cfg.Samples)
		simCycles += r1.Mul.Cycles + r1.Div.Cycles + r2.Mul.Cycles + r2.Div.Cycles
	}
	b.ReportMetric(short*1000, "over-rate-h2k-permille")
	b.ReportMetric(long*1000, "over-rate-h20k-permille")
	reportSimThroughput(b, simCycles)
	if long >= short {
		b.Fatal("handler latency has no diluting effect")
	}
}

// BenchmarkModExpExtraction runs the RSA-style square-and-multiply
// exponent recovery (Loop Secret applied to crypto, §4.2.2/§4.2.3).
func BenchmarkModExpExtraction(b *testing.B) {
	var faults int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunModExp(0x4321, 0xC0DE, 0xE777D, 16)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Match() || !res.ResultOK {
			b.Fatalf("extraction failed: %+v", res)
		}
		faults = res.Faults
	}
	b.ReportMetric(float64(faults), "faults")
}

// BenchmarkBaselines runs the §2.4 prior attacks (Table 1 rows).
func BenchmarkBaselines(b *testing.B) {
	var traces int
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunControlledChannel(true); err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.RunSPM(true); err != nil {
			b.Fatal(err)
		}
		pp, err := baseline.RunPrimeProbe(
			[]byte("0123456789abcdef"), []byte("attack at dawn!!"), 0.2, 120, 7, 0)
		if err != nil {
			b.Fatal(err)
		}
		traces = pp.TracesTo99
		if _, err := baseline.RunSGXStep(
			[]byte("0123456789abcdef"), []byte("attack at dawn!!"), 25, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(traces), "primeprobe-traces")
}

// BenchmarkHardwareDefenses runs the fence-after-flush and invisible-
// speculation evaluations (§8).
func BenchmarkHardwareDefenses(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		faf, err := defense.RunFenceAfterFlush()
		if err != nil {
			b.Fatal(err)
		}
		overhead = faf.OverheadPct()
		inv, err := defense.RunInvisibleSpeculation()
		if err != nil {
			b.Fatal(err)
		}
		if inv.CacheLeakWith || !inv.PortLeakWith {
			b.Fatal("invisible-speculation outcome wrong")
		}
	}
	b.ReportMetric(overhead, "faf-overhead-pct")
}
