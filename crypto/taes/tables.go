// Package taes implements AES-128/192/256 with the table-driven (T-table)
// structure of OpenSSL 0.9.8's aes_core.c — the implementation the paper's
// §4.4 cache attack extracts keys from. The encryption tables Te0–Te3, the
// decryption tables Td0–Td3 and the inverse S-box table Td4 are generated
// algorithmically and validated against crypto/aes in the tests.
//
// Beyond the pure-Go reference, the package exposes the exact per-round
// table-access trace of a decryption (AccessTrace), which is the ground
// truth the MicroScope attack's extracted cache-line sequence is verified
// against, and the raw tables for embedding into simulated victim memory.
package taes

// GF(2^8) helpers over the AES polynomial x^8+x^4+x^3+x+1 (0x11b).

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies a and b in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

var (
	sbox  [256]byte // forward S-box
	sboxI [256]byte // inverse S-box

	te [4][256]uint32 // encryption T-tables
	td [4][256]uint32 // decryption T-tables
)

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func init() {
	// Multiplicative inverses via log/antilog tables over generator 3.
	var log, alog [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		alog[i] = p
		log[p] = byte(i)
		p ^= xtime(p) // multiply by 3 = x+1
	}
	inv := func(x byte) byte {
		if x == 0 {
			return 0
		}
		return alog[(255-int(log[x]))%255]
	}
	for i := 0; i < 256; i++ {
		s := inv(byte(i))
		s = s ^ rotl8(s, 1) ^ rotl8(s, 2) ^ rotl8(s, 3) ^ rotl8(s, 4) ^ 0x63
		sbox[i] = s
		sboxI[s] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		w := uint32(gmul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gmul(s, 3))
		for t := 0; t < 4; t++ {
			te[t][i] = w>>(8*uint(t)) | w<<(32-8*uint(t))
		}
		si := sboxI[i]
		w = uint32(gmul(si, 14))<<24 | uint32(gmul(si, 9))<<16 |
			uint32(gmul(si, 13))<<8 | uint32(gmul(si, 11))
		for t := 0; t < 4; t++ {
			td[t][i] = w>>(8*uint(t)) | w<<(32-8*uint(t))
		}
	}
}

// SBox returns the forward S-box.
func SBox() [256]byte { return sbox }

// InvSBox returns the inverse S-box.
func InvSBox() [256]byte { return sboxI }

// Te returns encryption table i (0..3).
func Te(i int) [256]uint32 { return te[i] }

// Td returns decryption table i (0..3) — the tables whose cache lines the
// paper's Fig. 11 probes.
func Td(i int) [256]uint32 { return td[i] }

// Td4 returns the final-round inverse-S-box table widened to uint32
// entries (the simulated victim loads it with 32-bit loads).
func Td4() [256]uint32 {
	var out [256]uint32
	for i, v := range sboxI {
		out[i] = uint32(v)
	}
	return out
}

// invMixColumnsWord applies InvMixColumns to one big-endian column word,
// used to derive the decryption key schedule.
func invMixColumnsWord(w uint32) uint32 {
	a0, a1, a2, a3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	b0 := gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
	b1 := gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
	b2 := gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
	b3 := gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	return uint32(b0)<<24 | uint32(b1)<<16 | uint32(b2)<<8 | uint32(b3)
}
