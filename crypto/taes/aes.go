package taes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

var rcon = [10]uint32{
	0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
	0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// Cipher holds expanded encryption and decryption key schedules.
type Cipher struct {
	nr  int      // rounds: 10, 12 or 14
	enc []uint32 // 4*(nr+1) words
	dec []uint32 // 4*(nr+1) words, equivalent-inverse-cipher order
}

// NewCipher expands a 16-, 24- or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	nk := len(key) / 4
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("taes: invalid key size %d", len(key))
	}
	nr := nk + 6
	w := make([]uint32, 4*(nr+1))
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < len(w); i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon[i/nk-1]
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}

	// Equivalent inverse cipher key schedule: reverse round order, apply
	// InvMixColumns to all middle round keys.
	d := make([]uint32, len(w))
	for i := 0; i <= nr; i++ {
		copy(d[4*i:4*i+4], w[4*(nr-i):4*(nr-i)+4])
	}
	for i := 1; i < nr; i++ {
		for j := 0; j < 4; j++ {
			d[4*i+j] = invMixColumnsWord(d[4*i+j])
		}
	}
	return &Cipher{nr: nr, enc: w, dec: d}, nil
}

// Rounds returns the round count (10/12/14).
func (c *Cipher) Rounds() int { return c.nr }

// EncKey returns the expanded encryption key schedule.
func (c *Cipher) EncKey() []uint32 { return append([]uint32(nil), c.enc...) }

// DecKey returns the decryption key schedule in the order the T-table
// decryption consumes it (rk[0..4*(nr+1))) — the rk array of the paper's
// Fig. 8a, which the attack uses as its replay handle page.
func (c *Cipher) DecKey() []uint32 { return append([]uint32(nil), c.dec...) }

// Encrypt encrypts one 16-byte block with the T-table routine.
func (c *Cipher) Encrypt(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.enc[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.enc[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.enc[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.enc[3]

	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := te[0][s0>>24] ^ te[1][s1>>16&0xff] ^ te[2][s2>>8&0xff] ^ te[3][s3&0xff] ^ c.enc[k]
		t1 := te[0][s1>>24] ^ te[1][s2>>16&0xff] ^ te[2][s3>>8&0xff] ^ te[3][s0&0xff] ^ c.enc[k+1]
		t2 := te[0][s2>>24] ^ te[1][s3>>16&0xff] ^ te[2][s0>>8&0xff] ^ te[3][s1&0xff] ^ c.enc[k+2]
		t3 := te[0][s3>>24] ^ te[1][s0>>16&0xff] ^ te[2][s1>>8&0xff] ^ te[3][s2&0xff] ^ c.enc[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	out0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 |
		uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	out1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 |
		uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	out2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 |
		uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	out3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 |
		uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:], out0^c.enc[k])
	binary.BigEndian.PutUint32(dst[4:], out1^c.enc[k+1])
	binary.BigEndian.PutUint32(dst[8:], out2^c.enc[k+2])
	binary.BigEndian.PutUint32(dst[12:], out3^c.enc[k+3])
}

// Decrypt decrypts one 16-byte block with the T-table routine of the
// paper's Fig. 8a.
func (c *Cipher) Decrypt(dst, src []byte) {
	c.decryptTraced(dst, src, nil)
}

// TableAccess records one T-table lookup of a decryption: which table,
// which index, in which round/column — the attack's ground truth.
type TableAccess struct {
	Round  int // 1-based middle rounds; Rounds() = final round (Td4)
	Column int // 0..3 (t0..t3 of Fig. 8a)
	Table  int // 0..3 for Td0..Td3; 4 for Td4
	Index  int // 0..255
}

// Line returns the cache line within the table that the access touches,
// assuming 64-byte lines and 4-byte entries (16 lines of 16 entries per
// table, as in the paper's Fig. 11).
func (a TableAccess) Line() int { return a.Index / 16 }

// DecryptTrace decrypts one block and returns every table access in
// program order.
func (c *Cipher) DecryptTrace(dst, src []byte) []TableAccess {
	var tr []TableAccess
	c.decryptTraced(dst, src, &tr)
	return tr
}

func (c *Cipher) decryptTraced(dst, src []byte, tr *[]TableAccess) {
	rec := func(round, col, table, idx int) uint32 {
		if tr != nil {
			*tr = append(*tr, TableAccess{Round: round, Column: col, Table: table, Index: idx})
		}
		if table == 4 {
			return uint32(sboxI[idx])
		}
		return td[table][idx]
	}

	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.dec[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.dec[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.dec[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.dec[3]

	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := rec(r, 0, 0, int(s0>>24)) ^ rec(r, 0, 1, int(s3>>16&0xff)) ^
			rec(r, 0, 2, int(s2>>8&0xff)) ^ rec(r, 0, 3, int(s1&0xff)) ^ c.dec[k]
		t1 := rec(r, 1, 0, int(s1>>24)) ^ rec(r, 1, 1, int(s0>>16&0xff)) ^
			rec(r, 1, 2, int(s3>>8&0xff)) ^ rec(r, 1, 3, int(s2&0xff)) ^ c.dec[k+1]
		t2 := rec(r, 2, 0, int(s2>>24)) ^ rec(r, 2, 1, int(s1>>16&0xff)) ^
			rec(r, 2, 2, int(s0>>8&0xff)) ^ rec(r, 2, 3, int(s3&0xff)) ^ c.dec[k+2]
		t3 := rec(r, 3, 0, int(s3>>24)) ^ rec(r, 3, 1, int(s2>>16&0xff)) ^
			rec(r, 3, 2, int(s1>>8&0xff)) ^ rec(r, 3, 3, int(s0&0xff)) ^ c.dec[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	fr := c.nr
	out0 := rec(fr, 0, 4, int(s0>>24))<<24 | rec(fr, 0, 4, int(s3>>16&0xff))<<16 |
		rec(fr, 0, 4, int(s2>>8&0xff))<<8 | rec(fr, 0, 4, int(s1&0xff))
	out1 := rec(fr, 1, 4, int(s1>>24))<<24 | rec(fr, 1, 4, int(s0>>16&0xff))<<16 |
		rec(fr, 1, 4, int(s3>>8&0xff))<<8 | rec(fr, 1, 4, int(s2&0xff))
	out2 := rec(fr, 2, 4, int(s2>>24))<<24 | rec(fr, 2, 4, int(s1>>16&0xff))<<16 |
		rec(fr, 2, 4, int(s0>>8&0xff))<<8 | rec(fr, 2, 4, int(s3&0xff))
	out3 := rec(fr, 3, 4, int(s3>>24))<<24 | rec(fr, 3, 4, int(s2>>16&0xff))<<16 |
		rec(fr, 3, 4, int(s1>>8&0xff))<<8 | rec(fr, 3, 4, int(s0&0xff))
	binary.BigEndian.PutUint32(dst[0:], out0^c.dec[k])
	binary.BigEndian.PutUint32(dst[4:], out1^c.dec[k+1])
	binary.BigEndian.PutUint32(dst[8:], out2^c.dec[k+2])
	binary.BigEndian.PutUint32(dst[12:], out3^c.dec[k+3])
}

// LinesPerTable is the number of cache lines each Td table spans (64-byte
// lines, 4-byte entries).
const LinesPerTable = 16

// AccessedLines reduces a trace to the set of cache lines touched per
// table: result[table] is a bitmask of the 16 lines (bit i = line i).
// Table index 4 is Td4.
func AccessedLines(trace []TableAccess) [5]uint16 {
	var out [5]uint16
	for _, a := range trace {
		out[a.Table] |= 1 << uint(a.Line())
	}
	return out
}
