package taes

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSBoxKnownValues(t *testing.T) {
	// FIPS-197 spot checks.
	cases := map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}
	for in, want := range cases {
		if sbox[in] != want {
			t.Errorf("sbox[%#x] = %#x, want %#x", in, sbox[in], want)
		}
	}
	// Inverse S-box inverts.
	for i := 0; i < 256; i++ {
		if sboxI[sbox[i]] != byte(i) {
			t.Fatalf("inv sbox broken at %d", i)
		}
	}
}

func TestGmulProperties(t *testing.T) {
	if gmul(0x57, 0x83) != 0xc1 { // FIPS-197 example
		t.Errorf("gmul(0x57,0x83) = %#x, want 0xc1", gmul(0x57, 0x83))
	}
	f := func(a, b byte) bool { return gmul(a, b) == gmul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error("gmul not commutative:", err)
	}
	g := func(a byte) bool { return gmul(a, 1) == a && gmul(a, 2) == xtime(a) }
	if err := quick.Check(g, nil); err != nil {
		t.Error("gmul identity/xtime:", err)
	}
}

func TestTdTableStructure(t *testing.T) {
	// Tdi must be Td0 rotated right by 8i bits.
	for i := 1; i < 4; i++ {
		for x := 0; x < 256; x++ {
			w := td[0][x]
			want := w>>(8*uint(i)) | w<<(32-8*uint(i))
			if td[i][x] != want {
				t.Fatalf("Td%d[%#x] = %#x, want %#x", i, x, td[i][x], want)
			}
		}
	}
}

func TestFIPSKnownAnswer128(t *testing.T) {
	// FIPS-197 Appendix C.1.
	key := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	wantCT := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
		0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, wantCT) {
		t.Fatalf("ciphertext = %x, want %x", ct, wantCT)
	}
	back := make([]byte, 16)
	c.Decrypt(back, ct)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt = %x, want %x", back, pt)
	}
}

func TestMatchesStdlibAllKeySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, keyLen)
			pt := make([]byte, 16)
			rng.Read(key)
			rng.Read(pt)

			ref, err := aes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ours, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			if ours.Rounds() != keyLen/4+6 {
				t.Fatalf("rounds = %d for key len %d", ours.Rounds(), keyLen)
			}

			want := make([]byte, 16)
			got := make([]byte, 16)
			ref.Encrypt(want, pt)
			ours.Encrypt(got, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("keyLen %d trial %d: encrypt mismatch\n got %x\nwant %x",
					keyLen, trial, got, want)
			}
			back := make([]byte, 16)
			ours.Decrypt(back, want)
			if !bytes.Equal(back, pt) {
				t.Fatalf("keyLen %d trial %d: decrypt mismatch\n got %x\nwant %x",
					keyLen, trial, back, pt)
			}
		}
	}
}

func TestNewCipherRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 31, 33, 64} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestDecryptTraceStructure(t *testing.T) {
	key := make([]byte, 16)
	ct := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 11)
	}
	for i := range ct {
		ct[i] = byte(i * 7)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	trace := c.DecryptTrace(pt, ct)

	// 9 middle rounds × 4 columns × 4 lookups + final round 16 lookups.
	want := (c.Rounds()-1)*16 + 16
	if len(trace) != want {
		t.Fatalf("trace has %d accesses, want %d", len(trace), want)
	}
	// Tracing must not change the result.
	pt2 := make([]byte, 16)
	c.Decrypt(pt2, ct)
	if !bytes.Equal(pt, pt2) {
		t.Error("traced decryption result differs")
	}
	// Structural checks.
	for i, a := range trace {
		if a.Index < 0 || a.Index > 255 || a.Table < 0 || a.Table > 4 ||
			a.Column < 0 || a.Column > 3 {
			t.Fatalf("access %d out of range: %+v", i, a)
		}
		if a.Round < c.Rounds() && a.Table == 4 {
			t.Fatalf("Td4 access in middle round: %+v", a)
		}
		if a.Round == c.Rounds() && a.Table != 4 {
			t.Fatalf("Td0-3 access in final round: %+v", a)
		}
		if a.Line() != a.Index/16 {
			t.Fatalf("Line() inconsistent: %+v", a)
		}
	}
	// Middle rounds use each table exactly once per column.
	for r := 1; r < c.Rounds(); r++ {
		for col := 0; col < 4; col++ {
			var seen [4]int
			for _, a := range trace {
				if a.Round == r && a.Column == col {
					seen[a.Table]++
				}
			}
			if seen != [4]int{1, 1, 1, 1} {
				t.Fatalf("round %d col %d table usage %v", r, col, seen)
			}
		}
	}
}

func TestAccessedLines(t *testing.T) {
	trace := []TableAccess{
		{Round: 1, Table: 0, Index: 0},   // line 0
		{Round: 1, Table: 0, Index: 17},  // line 1
		{Round: 1, Table: 3, Index: 255}, // line 15
		{Round: 10, Table: 4, Index: 35}, // line 2
	}
	lines := AccessedLines(trace)
	if lines[0] != 0b11 {
		t.Errorf("table 0 lines = %#b", lines[0])
	}
	if lines[3] != 1<<15 {
		t.Errorf("table 3 lines = %#b", lines[3])
	}
	if lines[4] != 1<<2 {
		t.Errorf("table 4 lines = %#b", lines[4])
	}
	if lines[1] != 0 || lines[2] != 0 {
		t.Error("untouched tables have lines set")
	}
}

func TestDecKeyOrdering(t *testing.T) {
	key := make([]byte, 16)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := c.EncKey(), c.DecKey()
	if len(enc) != 44 || len(dec) != 44 {
		t.Fatalf("schedule lengths %d/%d", len(enc), len(dec))
	}
	// First dec round key = last enc round key (no InvMixColumns).
	for j := 0; j < 4; j++ {
		if dec[j] != enc[40+j] {
			t.Errorf("dec[%d] = %#x, want %#x", j, dec[j], enc[40+j])
		}
	}
	// Last dec round key = first enc round key.
	for j := 0; j < 4; j++ {
		if dec[40+j] != enc[j] {
			t.Errorf("dec[%d] = %#x, want %#x", 40+j, dec[40+j], enc[j])
		}
	}
}

// Property: decryption trace indices are a deterministic function of
// (key, ciphertext).
func TestTraceDeterministic(t *testing.T) {
	f := func(keySeed, ctSeed int64) bool {
		rng := rand.New(rand.NewSource(keySeed))
		key := make([]byte, 16)
		rng.Read(key)
		rng = rand.New(rand.NewSource(ctSeed))
		ct := make([]byte, 16)
		rng.Read(ct)
		c, err := NewCipher(key)
		if err != nil {
			return false
		}
		out1, out2 := make([]byte, 16), make([]byte, 16)
		tr1 := c.DecryptTrace(out1, ct)
		tr2 := c.DecryptTrace(out2, ct)
		if len(tr1) != len(tr2) {
			return false
		}
		for i := range tr1 {
			if tr1[i] != tr2[i] {
				return false
			}
		}
		return bytes.Equal(out1, out2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
