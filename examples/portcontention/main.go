// Port contention: the paper's main result (§4.3, Fig. 10) as a library
// scenario. A victim's secret branch executes either two multiplies or
// two divides — once, with no loop. MicroScope replays the sequence while
// a monitor on the sibling SMT context times its own divisions; divider
// occupancy reveals the branch direction.
//
// Run with: go run ./examples/portcontention
package main

import (
	"fmt"
	"log"

	"microscope/attack/experiments"
)

func main() {
	cfg := experiments.DefaultFig10Config()
	cfg.Samples = 4000 // smaller than the paper's 10,000 for a quick demo

	res, err := experiments.RunFig10(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitor samples per side: %d\n", cfg.Samples)
	fmt.Printf("threshold (calibrated on the mul side): %d cycles\n", res.Threshold)
	fmt.Printf("over threshold: mul=%d div=%d (separation %.1fx)\n",
		res.MulOver, res.DivOver, res.SeparationX)
	fmt.Printf("victim replays: mul=%d div=%d — each a single logical run\n",
		res.Mul.Replays, res.Div.Replays)

	if res.SecretDetected() {
		fmt.Println("verdict: victim executed the DIV side -> secret = 1")
	} else {
		fmt.Println("verdict: no divider contention -> secret = 0")
	}
}
