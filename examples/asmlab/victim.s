; A scriptable victim for cmd/asmlab: a replay handle followed by a
; secret-dependent probe-line access (the quickstart attack, in assembly).
; Lines starting with ';;' are layout directives; ';' starts a comment.
;
;; region handle 0x400000 rw
;; region probe  0x410000 rw
;; region secret 0x420000 rw
;; init secret+0 3
;; symbol hotline probe+192

        movi r1, 0x400000      ; &handle
        movi r2, 0x410000      ; probe base
        movi r3, 0x420000      ; &secret
        ld   r4, 0(r3)         ; secret value (3)
        ld   r5, 0(r1)         ; REPLAY HANDLE
        shli r6, r4, 6         ; secret -> line offset
        add  r6, r6, r2
        ld   r7, 0(r6)         ; transmit: touches probe line <secret>
        halt
