// RSA-style key extraction: square-and-multiply modular exponentiation
// with a secret exponent, attacked with the Loop Secret pattern of
// §4.2.2. Each iteration's replay handle opens a window over that
// iteration's secret-dependent multiply; after a few replays train the
// branch predictor to a known state (§4.2.3), the multiply path's cache
// footprint reveals the exponent bit. The whole exponent falls out of a
// single logical run.
//
// Run with: go run ./examples/rsa
package main

import (
	"fmt"
	"log"

	"microscope/attack/experiments"
)

func main() {
	const (
		base = 0x4321

		exp  = 0xC0DE // the secret exponent the attack recovers
		mod  = 0xE777D
		bits = 16
	)
	res, err := experiments.RunModExp(base, exp, mod, bits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim: %#x ^ secret mod %#x (%d-bit exponent)\n", base, mod, bits)
	fmt.Printf("page faults used: %d (one logical run)\n", res.Faults)
	fmt.Printf("true exponent:      %016b\n", res.TrueExp)
	fmt.Printf("recovered exponent: %016b\n", res.RecoveredExp)
	fmt.Printf("victim result correct: %t\n", res.ResultOK)
	if !res.Match() {
		log.Fatal("extraction failed")
	}
	fmt.Println("exponent fully recovered")
}
