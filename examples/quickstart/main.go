// Quickstart: the smallest complete microarchitectural replay attack.
//
// A victim program loads a public address (the replay handle) and then
// touches one of two cache lines depending on a secret bit. The malicious
// OS keeps the handle's page non-present, so the victim replays the
// secret-dependent access over and over in a single logical run; the
// attacker reads the secret from the cache footprint after one replay.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

const (
	handleVA mem.Addr = 0x0010_0000
	probeVA  mem.Addr = 0x0011_0000
	secret            = 1 // the bit the attacker wants
)

func main() {
	// 1. The platform: physical memory, an out-of-order SMT core, an OS
	//    kernel, and the MicroScope module loaded into its fault path.
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	mod := microscope.NewModule(k)

	// 2. The victim process and program.
	proc, err := k.NewProcess("victim")
	if err != nil {
		log.Fatal(err)
	}
	k.Schedule(0, proc)

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(probeVA)).
		MovImm(isa.R3, secret).
		Load(isa.R4, isa.R1, 0). // replay handle (public address)
		ShlImm(isa.R5, isa.R3, 6).
		Add(isa.R5, isa.R5, isa.R2).
		Load(isa.R6, isa.R5, 0). // transmit: touches line <secret>
		Halt().MustBuild()

	layout := &victim.Layout{
		Name: "quickstart",
		Prog: prog,
		Regions: []victim.Region{
			{Name: "handle", VA: handleVA, Size: mem.PageSize,
				Flags: mem.FlagUser | mem.FlagWritable},
			{Name: "probe", VA: probeVA, Size: mem.PageSize,
				Flags: mem.FlagUser | mem.FlagWritable},
		},
	}
	if err := layout.Install(k, proc); err != nil {
		log.Fatal(err)
	}

	// 3. The attack recipe: replay on the handle, probe between replays.
	line0, _ := proc.AddressSpace().Translate(probeVA)
	line1, _ := proc.AddressSpace().Translate(probeVA + 64)
	core.Hierarchy().FlushAddr(line0)
	core.Hierarchy().FlushAddr(line1)

	recovered := -1
	rec := &microscope.Recipe{
		Name:   "quickstart",
		Victim: proc,
		Handle: handleVA,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		hot0 := core.Hierarchy().LevelOf(line0) != cache.LevelMem
		hot1 := core.Hierarchy().LevelOf(line1) != cache.LevelMem
		fmt.Printf("replay %d: line0 hot=%t line1 hot=%t\n", ev.Replays, hot0, hot1)
		switch {
		case hot0 && !hot1:
			recovered = 0
		case hot1 && !hot0:
			recovered = 1
		}
		if recovered >= 0 || ev.Replays >= 5 {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := mod.Install(rec); err != nil {
		log.Fatal(err)
	}

	// 4. Run the single logical victim execution.
	layout.Start(k, 0)
	core.Run(10_000_000)

	fmt.Printf("\nvictim finished: %t (one logical run, %d replays)\n",
		core.Context(0).Halted(), rec.Replays())
	fmt.Printf("secret bit: %d, recovered: %d\n", secret, recovered)
	if recovered != secret {
		log.Fatal("attack failed")
	}
}
