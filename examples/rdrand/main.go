// RDRAND bias: the §7.2 integrity attack. The victim draws a hardware
// random number in the shadow of a replay handle; the attacker learns the
// draw over a cache side channel and selectively replays until a draw it
// likes comes up, then races the page walker to set the present bit so
// that very draw retires — biasing a "true" RNG. With Intel's fence
// inside RDRAND the attacker is blind and the attack fails, which is the
// paper's point: the fence should exist *for security reasons*.
//
// Run with: go run ./examples/rdrand
package main

import (
	"fmt"
	"log"

	"microscope/attack/replay"
)

func main() {
	for _, fenced := range []bool{false, true} {
		fmt.Printf("=== RDRAND %s ===\n", map[bool]string{false: "unfenced", true: "with Intel's fence"}[fenced])
		for _, target := range []uint64{0, 1} {
			res, err := replay.RunRDRANDBias(target, 100, fenced)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("target bit %d: observed=%t windows-discarded=%d retired-bit=%d biased=%t\n",
				target, res.Observed, res.Windows, res.FinalLowBit, res.Achieved)
		}
		fmt.Println()
	}
}
