// AES leak: the §6.2 attack end to end. A victim decrypts one AES block
// with the OpenSSL-style T-table implementation; MicroScope single-steps
// it with an rk-page replay handle and a Td0-page pivot, extracting every
// T-table cache line the decryption touches — in one logical run, with
// zero noise — and verifies the result against the reference trace.
//
// Run with: go run ./examples/aesleak
package main

import (
	"fmt"
	"log"

	"microscope/attack/experiments"
)

func main() {
	cfg := experiments.DefaultAESConfig()
	cfg.Key = []byte("sixteen byte key")
	cfg.Plaintext = []byte("the secret block")

	res, err := experiments.RunAESExtraction(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AES-%d decryption: %d rounds, %d page faults used\n",
		len(cfg.Key)*8, res.Rounds, res.Faults)
	for r := 1; r <= res.Rounds; r++ {
		if r == res.Rounds {
			fmt.Printf("round %2d (final): Td4 lines %v\n",
				r, experiments.LinesOf(res.Extracted[r][4]))
			continue
		}
		fmt.Printf("round %2d:", r)
		for t := 0; t < 4; t++ {
			fmt.Printf(" Td%d%v", t, experiments.LinesOf(res.Extracted[r][t]))
		}
		fmt.Println()
	}

	ok, diff := res.Match()
	fmt.Printf("\nextraction matches the reference trace: %t\n", ok)
	fmt.Printf("victim still decrypted correctly:      %t\n", res.PlaintextOK)
	if !ok {
		log.Fatal(diff)
	}
}
