// Single secret: the Fig. 5 attack. The victim is getSecret(id, key) —
// count++ (the replay handle) followed by secrets[id]/key (the transmit
// divide). MicroScope replays the divide while an SMT monitor measures
// divider contention; the magnitude of the contention reveals whether
// secrets[id] is a subnormal float — a one-instruction property prior
// attacks could only see in whole-program timing.
//
// Run with: go run ./examples/singlesecret
package main

import (
	"fmt"
	"log"

	"microscope/attack/experiments"
)

func main() {
	res, err := experiments.RunSubnormal(3000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 5 — detecting a subnormal operand of ONE divide instruction")
	fmt.Printf("contention threshold: %d cycles; high threshold: %d cycles\n",
		res.Threshold, res.HighThreshold)
	fmt.Printf("normal secrets[id]:    %4d contended samples, %3d above high threshold, max %d\n",
		res.NormalOver, res.NormalHigh, res.MaxNormal)
	fmt.Printf("subnormal secrets[id]: %4d contended samples, %3d above high threshold, max %d\n",
		res.SubnormalOver, res.SubnormalHigh, res.MaxSubnormal)
	fmt.Printf("\nsubnormal input detected: %t\n", res.Detected())
	if !res.Detected() {
		log.Fatal("attack failed")
	}
}
