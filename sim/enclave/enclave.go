// Package enclave implements the SGX-style trusted execution environment
// the paper attacks: enclave memory regions whose frames are tracked by an
// EPCM-like ownership map, asynchronous exits (AEX) that reveal only the
// faulting VPN to the OS, attestation via measurement, and the
// branch-predictor flush at the enclave boundary that MicroScope
// side-steps (§2.3, §3).
//
// The enclave contract MicroScope needs is deliberately small: the OS
// manages translations (and so can clear present bits), sees faulting
// VPNs, and cannot read enclave data. All three properties are modelled
// here.
package enclave

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// ErrEPCAccessDenied is returned when supervisor software tries to read or
// write enclave-private memory.
var ErrEPCAccessDenied = errors.New("enclave: EPC access denied to supervisor")

// AEX records one asynchronous enclave exit. Only the VPN is exposed —
// the page-fault information SGX architecturally reveals to the OS.
type AEX struct {
	VPN   uint64
	Write bool
	Cycle uint64
}

// Enclave is one SGX-style enclave within a host process.
type Enclave struct {
	ID   int
	proc *kernel.Process
	base mem.Addr
	size uint64

	prog        *isa.Program
	measurement [sha256.Size]byte

	aexLog  []AEX
	entered bool
}

// Base returns the enclave's base virtual address.
func (e *Enclave) Base() mem.Addr { return e.base }

// Size returns the enclave region size in bytes.
func (e *Enclave) Size() uint64 { return e.size }

// Contains reports whether va lies in the enclave's private region.
func (e *Enclave) Contains(va mem.Addr) bool {
	return va >= e.base && va < e.base+e.size
}

// Program returns the enclave's code.
func (e *Enclave) Program() *isa.Program { return e.prog }

// Measurement returns the enclave's attestation measurement (MRENCLAVE
// analogue): a SHA-256 over the code and the initial contents of the
// private region.
func (e *Enclave) Measurement() [sha256.Size]byte { return e.measurement }

// AEXLog returns the asynchronous exits observed so far.
func (e *Enclave) AEXLog() []AEX { return append([]AEX(nil), e.aexLog...) }

// Entered reports whether a hardware context is executing the enclave.
func (e *Enclave) Entered() bool { return e.entered }

// Manager tracks EPC ownership (the EPCM analogue) and builds enclaves.
type Manager struct {
	k      *kernel.Kernel
	core   *cpu.Core
	nextID int
	// epcm maps physical frame number -> owning enclave ID.
	epcm     map[uint64]int
	enclaves map[int]*Enclave
}

// NewManager returns a manager bound to the kernel and core.
func NewManager(k *kernel.Kernel, core *cpu.Core) *Manager {
	m := &Manager{
		k:        k,
		core:     core,
		nextID:   1,
		epcm:     make(map[uint64]int),
		enclaves: make(map[int]*Enclave),
	}
	k.RegisterHook(aexObserver{m})
	return m
}

// aexObserver records AEX events for enclave faults without handling them
// (the OS still services the fault, per SGX demand paging).
type aexObserver struct{ m *Manager }

func (o aexObserver) HandleFault(proc *kernel.Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
	for _, e := range o.m.enclaves {
		// Any fault taken while the enclave executes is an AEX — SGX
		// exposes the VPN to the OS for both private enclave pages and
		// insecure user-level pages (§2.3).
		if e.proc == proc && (e.entered || e.Contains(f.VA)) {
			e.aexLog = append(e.aexLog, AEX{
				VPN:   mem.PageNum(f.VA),
				Write: f.Write,
				Cycle: o.m.core.Cycle(),
			})
		}
	}
	return cpu.FaultOutcome{}, false
}

// Create builds an enclave of size bytes at base inside proc, loads prog
// as its code, writes initData at the region start, computes the
// measurement, and marks every frame enclave-owned. Pages are mapped
// eagerly (EADD semantics); the OS may later evict/unmap them, which is
// the demand-paging surface MicroScope uses.
func (m *Manager) Create(proc *kernel.Process, base mem.Addr, size uint64, prog *isa.Program, initData []byte) (*Enclave, error) {
	if size == 0 || size%mem.PageSize != 0 || mem.PageOffset(base) != 0 {
		return nil, fmt.Errorf("enclave: region %#x+%#x not page aligned", base, size)
	}
	if uint64(len(initData)) > size {
		return nil, fmt.Errorf("enclave: init data (%d bytes) exceeds region", len(initData))
	}
	e := &Enclave{
		ID:   m.nextID,
		proc: proc,
		base: base,
		size: size,
		prog: prog,
	}
	m.nextID++

	v := m.k.AddVMA(proc, base, base+size,
		mem.FlagUser|mem.FlagWritable|mem.FlagEnclave, fmt.Sprintf("enclave%d", e.ID))
	if err := m.k.MapEager(proc, v); err != nil {
		return nil, err
	}
	if len(initData) > 0 {
		if err := proc.AddressSpace().WriteVirt(base, initData); err != nil {
			return nil, err
		}
	}
	// Record EPC ownership for every frame of the region.
	for va := base; va < base+size; va += mem.PageSize {
		pa, err := proc.AddressSpace().Translate(va)
		if err != nil {
			return nil, err
		}
		m.epcm[mem.PageNum(pa)] = e.ID
	}
	e.measurement = measure(prog, initData)
	proc.EnclaveID = e.ID
	m.enclaves[e.ID] = e
	return e, nil
}

// measure computes the MRENCLAVE-style hash over code and initial data.
func measure(prog *isa.Program, initData []byte) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, in := range prog.Instrs {
		binary.LittleEndian.PutUint64(buf[:], uint64(in.Op))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:],
			uint64(in.Rd)|uint64(in.Rs1)<<8|uint64(in.Rs2)<<16)
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(in.Imm))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(in.Target))
		h.Write(buf[:])
	}
	h.Write(initData)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Attest verifies the enclave against an expected measurement (remote
// attestation stub).
func (m *Manager) Attest(e *Enclave, expected [sha256.Size]byte) bool {
	return e.measurement == expected
}

// Enter starts enclave execution on the given context at the program
// entry index. It flushes the context's branch predictor — the
// countermeasure from [12] that MicroScope's §4.2.3 analysis renders
// moot (a flushed predictor is a *known* predictor).
func (m *Manager) Enter(e *Enclave, ctxID int, entry int) error {
	proc, ok := m.k.Running(ctxID)
	if !ok || proc != e.proc {
		return fmt.Errorf("enclave: process not scheduled on context %d", ctxID)
	}
	ctx := m.core.Context(ctxID)
	ctx.Predictor().Flush()
	ctx.SetProgram(e.prog, entry)
	e.entered = true
	return nil
}

// Exit marks the enclave as exited (EEXIT).
func (m *Manager) Exit(e *Enclave) { e.entered = false }

// OwnerOf returns the enclave ID owning the physical frame, or 0.
func (m *Manager) OwnerOf(ppn uint64) int { return m.epcm[ppn] }

// OSRead models supervisor software attempting to read process memory:
// it succeeds for ordinary pages and fails with ErrEPCAccessDenied for
// enclave-owned frames, enforcing SGX's confidentiality guarantee.
func (m *Manager) OSRead(proc *kernel.Process, va mem.Addr, n uint64) ([]byte, error) {
	pa, err := proc.AddressSpace().Translate(va)
	if err != nil {
		return nil, err
	}
	if m.epcm[mem.PageNum(pa)] != 0 {
		return nil, ErrEPCAccessDenied
	}
	return m.k.Phys().ReadBytes(pa, n), nil
}

// OSWrite models supervisor software attempting to write process memory,
// refused for enclave frames (integrity guarantee).
func (m *Manager) OSWrite(proc *kernel.Process, va mem.Addr, b []byte) error {
	pa, err := proc.AddressSpace().Translate(va)
	if err != nil {
		return err
	}
	if m.epcm[mem.PageNum(pa)] != 0 {
		return ErrEPCAccessDenied
	}
	m.k.Phys().WriteBytes(pa, b)
	return nil
}
