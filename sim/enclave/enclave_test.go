package enclave

import (
	"errors"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

type rig struct {
	k    *kernel.Kernel
	core *cpu.Core
	m    *Manager
	proc *kernel.Process
}

func newRig(t *testing.T) *rig {
	t.Helper()
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := NewManager(k, core)
	proc, err := k.NewProcess("host")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, proc)
	return &rig{k: k, core: core, m: m, proc: proc}
}

func simpleProg() *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, 5).
		AddImm(isa.R1, isa.R1, 2).
		Halt().MustBuild()
}

func TestCreateAndRun(t *testing.T) {
	r := newRig(t)
	base := mem.Addr(0x100_0000)
	secret := []byte{0xde, 0xad, 0xbe, 0xef}
	e, err := r.m.Create(r.proc, base, 4*mem.PageSize, simpleProg(), secret)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.Enter(e, 0, 0); err != nil {
		t.Fatal(err)
	}
	r.core.Run(100_000)
	ctx := r.core.Context(0)
	if !ctx.Halted() {
		t.Fatal("enclave program did not halt")
	}
	if ctx.Reg(isa.R1) != 7 {
		t.Errorf("r1 = %d, want 7", ctx.Reg(isa.R1))
	}
	r.m.Exit(e)
	if e.Entered() {
		t.Error("still entered after Exit")
	}
}

func TestCreateRejectsUnaligned(t *testing.T) {
	r := newRig(t)
	if _, err := r.m.Create(r.proc, 0x100_0100, mem.PageSize, simpleProg(), nil); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := r.m.Create(r.proc, 0x100_0000, 100, simpleProg(), nil); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := r.m.Create(r.proc, 0x100_0000, mem.PageSize,
		simpleProg(), make([]byte, 2*mem.PageSize)); err == nil {
		t.Error("oversized init data accepted")
	}
}

func TestOSCannotReadEnclaveMemory(t *testing.T) {
	r := newRig(t)
	base := mem.Addr(0x100_0000)
	secret := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	e, err := r.m.Create(r.proc, base, mem.PageSize, simpleProg(), secret)
	if err != nil {
		t.Fatal(err)
	}
	_ = e
	if _, err := r.m.OSRead(r.proc, base, 8); !errors.Is(err, ErrEPCAccessDenied) {
		t.Errorf("OSRead of enclave page: err = %v, want EPC denial", err)
	}
	if err := r.m.OSWrite(r.proc, base, []byte{9}); !errors.Is(err, ErrEPCAccessDenied) {
		t.Errorf("OSWrite of enclave page: err = %v, want EPC denial", err)
	}

	// Ordinary pages remain readable by the OS.
	v := r.k.AddVMA(r.proc, 0x200_0000, 0x200_0000+mem.PageSize,
		mem.FlagUser|mem.FlagWritable, "plain")
	if err := r.k.MapEager(r.proc, v); err != nil {
		t.Fatal(err)
	}
	if err := r.m.OSWrite(r.proc, 0x200_0000, []byte{42}); err != nil {
		t.Errorf("OSWrite of plain page failed: %v", err)
	}
	got, err := r.m.OSRead(r.proc, 0x200_0000, 1)
	if err != nil || got[0] != 42 {
		t.Errorf("OSRead of plain page = %v, %v", got, err)
	}
}

// TestOSControlsEnclaveTranslations is the heart of the threat model: the
// OS cannot read enclave data, but it CAN manipulate the enclave's page
// tables — clear present bits, observe the faulting VPN via AEX, and make
// the enclave replay.
func TestOSControlsEnclaveTranslations(t *testing.T) {
	r := newRig(t)
	base := mem.Addr(0x100_0000)
	dataVA := base + mem.PageSize // second enclave page holds data

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(dataVA)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()

	init := make([]byte, mem.PageSize+8)
	init[mem.PageSize] = 0x77 // first byte of the data word
	e, err := r.m.Create(r.proc, base, 2*mem.PageSize, prog, init)
	if err != nil {
		t.Fatal(err)
	}

	// OS clears the present bit on the enclave data page.
	if _, err := r.proc.AddressSpace().SetPresent(dataVA, false); err != nil {
		t.Fatal(err)
	}
	r.k.Invlpg(r.proc, dataVA)

	if err := r.m.Enter(e, 0, 0); err != nil {
		t.Fatal(err)
	}
	r.core.Run(1_000_000)
	ctx := r.core.Context(0)
	if !ctx.Halted() {
		t.Fatal("enclave did not complete")
	}
	if ctx.Reg(isa.R2) != 0x77 {
		t.Errorf("enclave read %#x, want 0x77 (fault must be serviced transparently)", ctx.Reg(isa.R2))
	}
	// AEX recorded, exposing only the VPN.
	log := e.AEXLog()
	if len(log) != 1 {
		t.Fatalf("AEX log has %d entries, want 1", len(log))
	}
	if log[0].VPN != mem.PageNum(dataVA) {
		t.Errorf("AEX VPN = %#x, want %#x", log[0].VPN, mem.PageNum(dataVA))
	}
}

func TestAttestation(t *testing.T) {
	r := newRig(t)
	e1, err := r.m.Create(r.proc, 0x100_0000, mem.PageSize, simpleProg(), []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.m.Attest(e1, e1.Measurement()) {
		t.Error("self-attestation failed")
	}
	// Different code or data must change the measurement.
	e2, err := r.m.Create(r.proc, 0x200_0000, mem.PageSize, simpleProg(), []byte{2})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Measurement() == e2.Measurement() {
		t.Error("different init data, same measurement")
	}
	otherProg := isa.NewBuilder().MovImm(isa.R1, 6).Halt().MustBuild()
	e3, err := r.m.Create(r.proc, 0x300_0000, mem.PageSize, otherProg, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Measurement() == e3.Measurement() {
		t.Error("different code, same measurement")
	}
}

func TestEnterFlushesBranchPredictor(t *testing.T) {
	r := newRig(t)
	e, err := r.m.Create(r.proc, 0x100_0000, mem.PageSize, simpleProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := r.core.Context(0)
	ctx.Predictor().Prime(1, true, 0)
	if !ctx.Predictor().PredictDirection(1) {
		t.Fatal("priming failed")
	}
	if err := r.m.Enter(e, 0, 0); err != nil {
		t.Fatal(err)
	}
	if ctx.Predictor().PredictDirection(1) {
		t.Error("predictor state survived enclave entry")
	}
}

func TestEnterRequiresScheduledProcess(t *testing.T) {
	r := newRig(t)
	e, err := r.m.Create(r.proc, 0x100_0000, mem.PageSize, simpleProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	other, err := r.k.NewProcess("other")
	if err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, other)
	if err := r.m.Enter(e, 0, 0); err == nil {
		t.Error("Enter succeeded with wrong process scheduled")
	}
}

func TestEPCOwnership(t *testing.T) {
	r := newRig(t)
	base := mem.Addr(0x100_0000)
	e, err := r.m.Create(r.proc, base, 2*mem.PageSize, simpleProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for va := base; va < base+2*mem.PageSize; va += mem.PageSize {
		pa, err := r.proc.AddressSpace().Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		if r.m.OwnerOf(mem.PageNum(pa)) != e.ID {
			t.Errorf("frame %#x not owned by enclave %d", mem.PageNum(pa), e.ID)
		}
	}
	if r.m.OwnerOf(0) != 0 {
		t.Error("frame 0 spuriously owned")
	}
}
