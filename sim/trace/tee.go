package trace

import "microscope/sim/cpu"

// multi fans one event stream out to several tracers.
type multi []cpu.Tracer

// Trace implements cpu.Tracer.
func (m multi) Trace(ev cpu.Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Tee combines tracers into one, dropping nils. It returns nil when
// nothing remains — safe to pass straight to Core.SetTracer, keeping the
// core on its zero-overhead detached path — and returns a lone survivor
// unwrapped, avoiding a fan-out indirection for the common single-sink
// case.
func Tee(tracers ...cpu.Tracer) cpu.Tracer {
	var live multi
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
