package trace

import (
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/isa"
)

func load(addr uint64) isa.Instr  { return isa.Instr{Op: isa.OpLoad, Rd: isa.R1, Rs1: isa.R2} }
func store(addr uint64) isa.Instr { return isa.Instr{Op: isa.OpStore, Rs1: isa.R2, Rs2: isa.R1} }

// A retired load contributes nothing; the same load left unretired is
// part of the transient cache footprint.
func TestProjectTransientRetirementSplit(t *testing.T) {
	events := []cpu.Event{
		{Kind: cpu.EvIssue, Seq: 1, Addr: 0x1000, Instr: load(0x1000)},
		{Kind: cpu.EvRetire, Seq: 1, Instr: load(0x1000)},
		{Kind: cpu.EvIssue, Seq: 2, Addr: 0x2000, Instr: load(0x2000)},
		// seq 2 never retires: squashed.
		{Kind: cpu.EvSquash, Seq: 2, Instr: load(0x2000)},
	}
	p := ProjectTransient(events)
	if p.Transient != 1 {
		t.Fatalf("Transient = %d, want 1", p.Transient)
	}
	if p.CacheN != 1 {
		t.Fatalf("CacheN = %d, want 1 (only the squashed load)", p.CacheN)
	}

	// Retiring seq 2 as well must empty the projection.
	events = append(events, cpu.Event{Kind: cpu.EvRetire, Seq: 2, Instr: load(0x2000)})
	q := ProjectTransient(events)
	if q.Transient != 0 || q.CacheN != 0 {
		t.Fatalf("fully retired stream projects %+v, want empty", q)
	}
}

// Cache projection distinguishes lines and load/store, but not cycles:
// the monitor senses which sets were touched, not when.
func TestProjectTransientCacheSemantics(t *testing.T) {
	at := func(cycle, addr uint64, in isa.Instr) cpu.Event {
		return cpu.Event{Kind: cpu.EvIssue, Cycle: cycle, Seq: 1, Addr: addr, Instr: in}
	}
	base := ProjectTransient([]cpu.Event{at(10, 0x1000, load(0x1000))})
	shifted := ProjectTransient([]cpu.Event{at(999, 0x1000, load(0x1000))})
	if !base.Equal(shifted) {
		t.Error("cache projection must ignore cycle timestamps")
	}
	sameLine := ProjectTransient([]cpu.Event{at(10, 0x1004, load(0x1004))})
	if base.Cache != sameLine.Cache {
		t.Error("addresses on the same 64-byte line must project equally")
	}
	otherLine := ProjectTransient([]cpu.Event{at(10, 0x1040, load(0x1040))})
	if base.Cache == otherLine.Cache {
		t.Error("addresses on different lines must project differently")
	}
	asStore := ProjectTransient([]cpu.Event{at(10, 0x1000, store(0x1000))})
	if base.Cache == asStore.Cache {
		t.Error("load and store to the same line must project differently")
	}
	// A faulting access still primed the walk: EvFault counts.
	faulted := ProjectTransient([]cpu.Event{
		{Kind: cpu.EvFault, Cycle: 10, Seq: 1, Addr: 0x1000, Instr: load(0x1000)},
	})
	if faulted.CacheN != 1 {
		t.Errorf("EvFault CacheN = %d, want 1", faulted.CacheN)
	}
}

// Port projection keys on divider occupancy (kind, cycle, port); the
// latency projection on issue→complete deltas.
func TestProjectTransientDivChannels(t *testing.T) {
	div := isa.Instr{Op: isa.OpFDiv, Rd: isa.F2, Rs1: isa.F0, Rs2: isa.F1}
	run := func(issue, complete uint64) Projections {
		return ProjectTransient([]cpu.Event{
			{Kind: cpu.EvIssue, Cycle: issue, Seq: 1, Port: 2, Instr: div},
			{Kind: cpu.EvComplete, Cycle: complete, Seq: 1, Port: 2, Instr: div},
		})
	}
	fast := run(10, 34)
	slow := run(10, 154) // subnormal microcode assist
	if fast.Latency == slow.Latency {
		t.Error("different divide latencies must project differently")
	}
	if fast.Port == slow.Port {
		t.Error("different divider occupancy intervals must project differently")
	}
	if fast.LatencyN != 1 || fast.PortN != 2 {
		t.Errorf("counts = latency %d port %d, want 1 and 2", fast.LatencyN, fast.PortN)
	}
	sameShape := run(10, 34)
	if !fast.Equal(sameShape) {
		t.Error("identical divide shapes must project equally")
	}
}

// Seq-0 events (preempts, tx aborts) belong to no instruction.
func TestProjectTransientIgnoresSeqZero(t *testing.T) {
	p := ProjectTransient([]cpu.Event{
		{Kind: cpu.EvSquash, Seq: 0, Detail: "preempt"},
		{Kind: cpu.EvIssue, Seq: 0, Addr: 0x1000, Instr: load(0x1000)},
	})
	if p.Transient != 0 || p.CacheN != 0 {
		t.Fatalf("seq-0 events projected: %+v", p)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Trace(cpu.Event{Kind: cpu.EvIssue, Seq: 1})
	r.Trace(cpu.Event{Kind: cpu.EvRetire, Seq: 1})
	if len(r.Events()) != 2 {
		t.Fatalf("Events() = %d, want 2", len(r.Events()))
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}
