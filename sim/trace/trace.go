// Package trace is the simulator's observability layer. It turns the raw
// cpu.Tracer event stream into three consumable forms:
//
//   - Collector: per-instruction lifecycles (fetch→issue→execute→
//     retire/squash/fault) in a bounded ring buffer, matched exactly by
//     dispatch sequence number rather than by PC heuristics;
//   - Metrics: deterministic aggregate counters — per-stage occupancy,
//     ROB utilization, squash breakdowns, per-port issue histograms and
//     the page-walk latency distribution;
//   - Hasher: a stable FNV-1a digest over the canonical event stream, so
//     a test can assert bit-identical pipeline behaviour in one line.
//
// Collected lifecycles export to Chrome Trace Event JSON (see chrome.go),
// loadable in Perfetto or chrome://tracing. Everything here hangs off
// Core.SetTracer; with no tracer attached the core pays nothing (event
// construction is gated on the nil check inside the core).
package trace

import (
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/pipeline"
)

// NoCycle marks a lifecycle stage that never happened (e.g. Issue on an
// instruction squashed straight out of the frontend).
const NoCycle = ^uint64(0)

// Fate is the terminal state of an instruction lifecycle.
type Fate uint8

// Lifecycle fates.
const (
	FateOpen     Fate = iota // still in flight
	FateRetired              // committed architecturally
	FateSquashed             // discarded by a flush (mispredict, ordering, preempt, tx)
	FateFaulted              // raised a precise page fault
)

// String returns the fate name.
func (f Fate) String() string {
	switch f {
	case FateOpen:
		return "open"
	case FateRetired:
		return "retired"
	case FateSquashed:
		return "squashed"
	case FateFaulted:
		return "faulted"
	}
	return "fate?"
}

// Span is one dynamic instruction's lifecycle. Cycle fields that never
// happened hold NoCycle.
type Span struct {
	Context  int
	Seq      uint64
	PC       int
	Instr    isa.Instr
	Fetch    uint64
	Issue    uint64
	Complete uint64
	End      uint64 // retire, squash or fault cycle (NoCycle while open)
	Walk     int    // page-walk cycles observed at issue (0 = TLB hit)
	Port     pipeline.Port
	Fate     Fate
	Detail   string // squash reason / fault text
}

// Mark is a point event worth flagging on a timeline: a squash, a fault
// delivery or a transaction abort.
type Mark struct {
	Cycle   uint64
	Context int
	Kind    cpu.EventKind
	PC      int
	Seq     uint64
	Detail  string
}

// DefaultCapacity bounds the Collector's span and mark rings when the
// caller passes a non-positive capacity.
const DefaultCapacity = 1 << 16

// Collector assembles raw pipeline events into Spans. Closed spans land
// in a ring buffer of fixed capacity (oldest dropped first), so a
// collector can stay attached across a multi-million-cycle run without
// unbounded growth. All matching is by (context, seq): exact, no PC
// guessing, robust to replayed instructions revisiting the same PC.
type Collector struct {
	spans  ring[Span]
	marks  ring[Mark]
	open   [][]Span // per context, ascending Seq (dispatch order)
	last   uint64   // cycle of the most recent event
	events uint64
}

// NewCollector builds a collector whose closed-span and mark rings each
// hold up to capacity entries (DefaultCapacity if capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{
		spans: ring[Span]{cap: capacity},
		marks: ring[Mark]{cap: capacity},
	}
}

// Trace implements cpu.Tracer.
func (c *Collector) Trace(ev cpu.Event) {
	c.events++
	c.last = ev.Cycle
	for len(c.open) <= ev.Context {
		c.open = append(c.open, nil)
	}
	switch ev.Kind {
	case cpu.EvFetch:
		c.open[ev.Context] = append(c.open[ev.Context], Span{
			Context:  ev.Context,
			Seq:      ev.Seq,
			PC:       ev.PC,
			Instr:    ev.Instr,
			Fetch:    ev.Cycle,
			Issue:    NoCycle,
			Complete: NoCycle,
			End:      NoCycle,
		})
	case cpu.EvIssue:
		if s := c.find(ev.Context, ev.Seq); s != nil {
			s.Issue = ev.Cycle
			s.Walk = ev.Walk
			s.Port = ev.Port
		}
	case cpu.EvComplete:
		if s := c.find(ev.Context, ev.Seq); s != nil {
			s.Complete = ev.Cycle
		}
	case cpu.EvRetire:
		c.closeMatching(ev.Context, ev.Cycle, FateRetired, "",
			func(s *Span) bool { return s.Seq == ev.Seq })
	case cpu.EvSquash:
		// Seq 0 is a whole-pipeline flush (preempt); otherwise everything
		// strictly younger than the squashing instruction dies — the
		// mispredicted branch and the violated store themselves survive.
		c.mark(ev)
		if ev.Seq == 0 {
			c.closeMatching(ev.Context, ev.Cycle, FateSquashed, ev.Detail,
				func(*Span) bool { return true })
		} else {
			c.closeMatching(ev.Context, ev.Cycle, FateSquashed, ev.Detail,
				func(s *Span) bool { return s.Seq > ev.Seq })
		}
	case cpu.EvFault:
		// The core flushes the whole context before delivering the fault:
		// the faulting instruction closes as Faulted, everything else in
		// flight as Squashed.
		c.mark(ev)
		c.closeMatching(ev.Context, ev.Cycle, FateFaulted, ev.Detail,
			func(s *Span) bool { return s.Seq == ev.Seq })
		c.closeMatching(ev.Context, ev.Cycle, FateSquashed, "pipeline flush",
			func(*Span) bool { return true })
	case cpu.EvTxAbort:
		c.mark(ev)
		c.closeMatching(ev.Context, ev.Cycle, FateSquashed, "tx abort: "+ev.Detail,
			func(*Span) bool { return true })
	}
}

func (c *Collector) mark(ev cpu.Event) {
	c.marks.push(Mark{
		Cycle:   ev.Cycle,
		Context: ev.Context,
		Kind:    ev.Kind,
		PC:      ev.PC,
		Seq:     ev.Seq,
		Detail:  ev.Detail,
	})
}

// find returns the open span with the given seq, or nil. Open lists are
// short (bounded by the ROB) and retire-ordered, so a linear scan is
// cheap and deterministic.
func (c *Collector) find(ctx int, seq uint64) *Span {
	open := c.open[ctx]
	for i := range open {
		if open[i].Seq == seq {
			return &open[i]
		}
	}
	return nil
}

// closeMatching closes every open span of the context that keep() selects
// (in ascending Seq order), pushing them into the span ring, and compacts
// the open list in place.
func (c *Collector) closeMatching(ctx int, cycle uint64, fate Fate, detail string, keep func(*Span) bool) {
	open := c.open[ctx]
	out := open[:0]
	for i := range open {
		if keep(&open[i]) {
			s := open[i]
			s.End = cycle
			s.Fate = fate
			if s.Detail == "" {
				s.Detail = detail
			}
			c.spans.push(s)
		} else {
			out = append(out, open[i])
		}
	}
	c.open[ctx] = out
}

// Spans returns the closed lifecycles still in the ring, oldest first.
func (c *Collector) Spans() []Span { return c.spans.slice() }

// Marks returns the recorded point events still in the ring, oldest first.
func (c *Collector) Marks() []Mark { return c.marks.slice() }

// OpenSpans returns snapshots of the lifecycles still in flight, by
// context then dispatch order.
func (c *Collector) OpenSpans() []Span {
	var out []Span
	for _, open := range c.open {
		out = append(out, open...)
	}
	return out
}

// TotalSpans counts every lifecycle ever closed, including those the
// ring has since dropped.
func (c *Collector) TotalSpans() uint64 { return c.spans.total }

// DroppedSpans counts closed lifecycles evicted from the ring.
func (c *Collector) DroppedSpans() uint64 {
	return c.spans.total - uint64(len(c.spans.buf))
}

// Events counts raw pipeline events observed.
func (c *Collector) Events() uint64 { return c.events }

// LastCycle is the cycle stamp of the most recent event.
func (c *Collector) LastCycle() uint64 { return c.last }

// Reset drops all collected state, keeping the configured capacity and
// every backing arena (the span/mark rings and the per-context open
// lists), so a pooled collector re-attaches without reallocating.
func (c *Collector) Reset() {
	c.spans.reset()
	c.marks.reset()
	for i := range c.open {
		c.open[i] = c.open[i][:0]
	}
	c.last = 0
	c.events = 0
}

// ring is a fixed-capacity FIFO that drops its oldest entry on overflow.
// Its backing array is an arena: allocated at full capacity on the first
// push and then reused forever — growing a 64K-entry ring by append
// doubling would reallocate and copy the whole buffer at every power of
// two, and that cost lands on the simulation's per-event hot path.
type ring[T any] struct {
	cap   int
	buf   []T
	head  int // index of the oldest entry once the buffer is full
	total uint64
}

func (r *ring[T]) push(v T) {
	r.total++
	if len(r.buf) < r.cap {
		if r.buf == nil {
			r.buf = make([]T, 0, r.cap)
		}
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
}

func (r *ring[T]) slice() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

func (r *ring[T]) reset() {
	r.buf = r.buf[:0]
	r.head = 0
	r.total = 0
}
