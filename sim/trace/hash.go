package trace

import "microscope/sim/cpu"

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher folds the canonical pipeline event stream into a stable FNV-1a
// 64-bit digest. Two runs produce the same Sum64 iff they emitted the
// same events — every field of every cpu.Event, in order — which is the
// one-line equivalence assertion used by the fast-forward differential
// suite and the golden-trace regressions.
//
// The encoding is fixed (little-endian field values separated per event)
// and intentionally independent of Go's fmt formatting, so the digest
// only moves when the simulator's behaviour does. Trace performs no
// allocations, so a Hasher can stay attached to multi-million-cycle runs
// and to allocation-guard benchmarks.
type Hasher struct {
	sum    uint64
	events uint64
}

// NewHasher returns a Hasher primed with the FNV offset basis.
func NewHasher() *Hasher { return &Hasher{sum: fnvOffset} }

// ResumeHasher returns a Hasher primed with a previously observed digest
// and event count, so a run restored from a snapshot can continue the
// original run's hash chain: hashing events [0,k) then resuming with
// (Sum64, Events) over events [k,n) equals hashing [0,n) in one pass.
func ResumeHasher(sum, events uint64) *Hasher { return &Hasher{sum: sum, events: events} }

// Trace implements cpu.Tracer.
func (h *Hasher) Trace(ev cpu.Event) {
	h.events++
	x := h.sum
	x = fnvWord(x, ev.Cycle)
	x = fnvWord(x, uint64(int64(ev.Context)))
	x = fnvWord(x, uint64(int64(ev.Kind)))
	x = fnvWord(x, uint64(int64(ev.PC)))
	x = fnvWord(x, ev.Seq)
	x = fnvWord(x, uint64(int64(ev.Walk)))
	x = fnvWord(x, uint64(int64(ev.Port)))
	x = fnvWord(x, ev.Addr)
	x = fnvWord(x, uint64(int64(ev.Instr.Op)))
	x = fnvWord(x, uint64(int64(ev.Instr.Rd)))
	x = fnvWord(x, uint64(int64(ev.Instr.Rs1)))
	x = fnvWord(x, uint64(int64(ev.Instr.Rs2)))
	x = fnvWord(x, uint64(ev.Instr.Imm))
	x = fnvWord(x, uint64(int64(ev.Instr.Target)))
	x = fnvString(x, ev.Instr.Label)
	x = fnvString(x, ev.Detail)
	h.sum = x
}

// Sum64 returns the digest of the events observed so far.
func (h *Hasher) Sum64() uint64 { return h.sum }

// Events counts the events folded in.
func (h *Hasher) Events() uint64 { return h.events }

// Reset returns the Hasher to its initial state.
func (h *Hasher) Reset() {
	h.sum = fnvOffset
	h.events = 0
}

// fnvWord folds the 8 little-endian bytes of v into x.
func fnvWord(x, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	return x
}

// fnvString folds s, length-prefixed so adjacent strings can't alias.
func fnvString(x uint64, s string) uint64 {
	x = fnvWord(x, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	return x
}
