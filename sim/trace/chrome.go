package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Annotation is a high-level timeline slice layered over the pipeline
// tracks — e.g. the MicroScope module's replay iterations. Start == End
// renders as an instant marker, otherwise as a duration slice. Each
// distinct Track gets its own named thread row in the viewer.
type Annotation struct {
	Track string
	Name  string
	Start uint64
	End   uint64
	Args  map[string]string
}

// chromeEvent is one entry of the Chrome Trace Event format's JSON array
// (the subset we emit: complete "X", instant "i" and metadata "M"
// events). Loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromePid = 1
	// annotationTidBase keeps annotation tracks clear of SMT context tids.
	annotationTidBase = 100
)

// ChromeJSON renders the collector's lifecycles, marks and the given
// annotations as Chrome Trace Event JSON. One simulated cycle maps to
// one microsecond of trace time (ts is in µs in the format). SMT
// contexts become threads of process 1; annotation tracks become
// additional threads named by their Track string, in order of first
// appearance. Output is byte-deterministic for a given collector state.
func ChromeJSON(c *Collector, anns []Annotation) ([]byte, error) {
	f := chromeFile{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
			Args: map[string]any{"name": "microscope core"}},
	}}

	// Thread metadata for every context that appears in spans or marks.
	maxCtx := -1
	for _, s := range c.Spans() {
		if s.Context > maxCtx {
			maxCtx = s.Context
		}
	}
	for _, s := range c.OpenSpans() {
		if s.Context > maxCtx {
			maxCtx = s.Context
		}
	}
	for _, mk := range c.Marks() {
		if mk.Context > maxCtx {
			maxCtx = mk.Context
		}
	}
	for ctx := 0; ctx <= maxCtx; ctx++ {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: ctx,
			Args: map[string]any{"name": fmt.Sprintf("context %d", ctx)},
		})
	}

	emitSpan := func(s Span, end uint64) {
		dur := uint64(1)
		if end > s.Fetch {
			dur = end - s.Fetch
		}
		args := map[string]any{
			"pc":   s.PC,
			"seq":  s.Seq,
			"fate": s.Fate.String(),
		}
		if s.Issue != NoCycle {
			args["issue"] = s.Issue
			args["port"] = s.Port.String()
		}
		if s.Complete != NoCycle {
			args["complete"] = s.Complete
		}
		if s.Walk > 0 {
			args["walk"] = s.Walk
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Instr.String(), Ph: "X", Cat: s.Fate.String(),
			Ts: s.Fetch, Dur: &dur, Pid: chromePid, Tid: s.Context, Args: args,
		})
	}
	for _, s := range c.Spans() {
		emitSpan(s, s.End)
	}
	for _, s := range c.OpenSpans() {
		emitSpan(s, c.LastCycle())
	}
	for _, mk := range c.Marks() {
		name := mk.Kind.String()
		if mk.Detail != "" {
			name += ": " + mk.Detail
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Ph: "i", S: "t", Ts: mk.Cycle, Pid: chromePid, Tid: mk.Context,
			Args: map[string]any{"pc": mk.PC, "seq": mk.Seq},
		})
	}

	// Annotation tracks, tids assigned by first appearance.
	trackTid := map[string]int{}
	trackOrder := []string{}
	for _, a := range anns {
		tid, ok := trackTid[a.Track]
		if !ok {
			tid = annotationTidBase + len(trackOrder)
			trackTid[a.Track] = tid
			trackOrder = append(trackOrder, a.Track)
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
				Args: map[string]any{"name": a.Track},
			})
		}
		var args map[string]any
		if len(a.Args) > 0 {
			args = make(map[string]any, len(a.Args))
			for k, v := range a.Args {
				args[k] = v
			}
		}
		if a.End > a.Start {
			dur := a.End - a.Start
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: a.Name, Ph: "X", Ts: a.Start, Dur: &dur,
				Pid: chromePid, Tid: tid, Args: args,
			})
		} else {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: a.Name, Ph: "i", S: "t", Ts: a.Start,
				Pid: chromePid, Tid: tid, Args: args,
			})
		}
	}

	return json.MarshalIndent(&f, "", " ")
}

// WriteChrome writes ChromeJSON output to w.
func WriteChrome(w io.Writer, c *Collector, anns []Annotation) error {
	data, err := ChromeJSON(c, anns)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ValidateChrome checks that data is a well-formed Chrome Trace Event
// JSON object of the subset this package emits: a traceEvents array
// whose entries all carry a name, a known phase, and pid/tid/ts fields;
// complete events must carry a duration. Used by the schema tests and
// available to external consumers.
func ValidateChrome(data []byte) error {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: empty traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("chrome trace: event %d (%s): missing ph", i, name)
		}
		switch ph {
		case "X", "i", "M":
		default:
			return fmt.Errorf("chrome trace: event %d (%s): unknown phase %q", i, name, ph)
		}
		for _, k := range []string{"pid", "tid"} {
			if _, ok := ev[k].(float64); !ok {
				return fmt.Errorf("chrome trace: event %d (%s): missing %s", i, name, k)
			}
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"].(float64); !ok {
			return fmt.Errorf("chrome trace: event %d (%s): missing ts", i, name)
		}
		if ph == "X" {
			if d, ok := ev["dur"].(float64); !ok || d < 0 {
				return fmt.Errorf("chrome trace: event %d (%s): complete event needs dur >= 0", i, name)
			}
		}
		if ph == "i" {
			if s, ok := ev["s"].(string); !ok || (s != "t" && s != "p" && s != "g") {
				return fmt.Errorf("chrome trace: event %d (%s): instant event needs scope t/p/g", i, name)
			}
		}
	}
	return nil
}
