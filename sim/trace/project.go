package trace

import (
	"microscope/sim/cpu"
	"microscope/sim/isa"
)

// Channel projections over the transient event stream.
//
// MicroScope's observable is the microarchitectural footprint of
// *transient* instructions: everything a squash shadow re-executes on
// each replay but never retires (paper §4). A constant-time verdict
// therefore cares about a restriction of the full event stream, along
// two axes:
//
//   - only events of dynamic instructions that never retire (squashed
//     work — the replay-amplifiable part), and
//   - only the fields of those events an attacker can sense over one
//     leak channel: which cache sets were touched, when the non-pipelined
//     divider was occupied, or how long a divide took.
//
// Projections replaces the all-fields Hasher equality used by the
// golden-trace and fast-forward suites with three per-channel digests.
// Two runs with equal Cache/Port/Latency digests are indistinguishable
// to a MicroScope attacker on the corresponding channel even if their
// retired executions differ (a fenced, repaired victim still computes a
// secret-dependent result — architecturally, at retirement — without
// ever exposing it transiently).

// Projections is the per-channel digest of one run's transient events.
type Projections struct {
	// Cache digests the ordered (context, cache line, is-store) sequence
	// of transiently issued memory accesses: the footprint a prime+probe
	// or flush+reload monitor reconstructs. Cycle timestamps are
	// deliberately excluded — a cache monitor senses which sets were
	// touched, not when.
	Cache uint64 `json:"cache"`
	// Port digests the (context, kind, cycle, port) sequence of transient
	// divide issues and completions: the divider-occupancy intervals an
	// SMT port-contention monitor senses (Fig. 6).
	Port uint64 `json:"port"`
	// Latency digests the (context, op, issue→complete latency) of each
	// transient divide: the subnormal microcode-assist channel (Fig. 5).
	Latency uint64 `json:"latency"`

	// CacheN/PortN/LatencyN count the elements folded into each digest,
	// and Transient the distinct transient dynamic instructions seen.
	CacheN    int `json:"cacheN"`
	PortN     int `json:"portN"`
	LatencyN  int `json:"latencyN"`
	Transient int `json:"transient"`
}

// Equal reports whether two runs are indistinguishable on all three
// channels.
func (p Projections) Equal(q Projections) bool {
	return p.Cache == q.Cache && p.Port == q.Port && p.Latency == q.Latency
}

// Recorder is a cpu.Tracer that buffers the full event stream for
// after-the-run analysis (the transient/retired split needs the whole
// run before any event can be classified). Unlike Hasher it allocates;
// attach it to bounded verification runs, not open-ended experiments.
type Recorder struct {
	events []cpu.Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Trace implements cpu.Tracer.
func (r *Recorder) Trace(ev cpu.Event) { r.events = append(r.events, ev) }

// Events returns the buffered stream (not a copy).
func (r *Recorder) Events() []cpu.Event { return r.events }

// Reset drops the buffered events, keeping the backing array.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// CacheLineShift converts an address to its cache-line number in the
// projection (64-byte lines, matching sim/cache).
const CacheLineShift = 6

// instrKey identifies one dynamic instruction across its events.
type instrKey struct {
	ctx int
	seq uint64
}

// ProjectTransient computes the per-channel digests of a run's transient
// instructions. A dynamic instruction is transient iff no EvRetire event
// carries its (context, seq) pair; events with Seq 0 and no ROB entry
// (EvTxAbort, preempt squashes) belong to no instruction and are
// ignored. The digests fold events in stream order, so two runs agree
// iff their transient footprints agree element by element.
func ProjectTransient(events []cpu.Event) Projections {
	retired := make(map[instrKey]bool)
	for _, ev := range events {
		if ev.Kind == cpu.EvRetire {
			retired[instrKey{ev.Context, ev.Seq}] = true
		}
	}
	var p Projections
	p.Cache = fnvOffset
	p.Port = fnvOffset
	p.Latency = fnvOffset

	issueCycle := make(map[instrKey]uint64)
	seen := make(map[instrKey]bool)
	for _, ev := range events {
		if ev.Seq == 0 || retired[instrKey{ev.Context, ev.Seq}] {
			continue
		}
		k := instrKey{ev.Context, ev.Seq}
		if !seen[k] {
			seen[k] = true
			p.Transient++
		}
		op := ev.Instr.Op
		switch {
		case op.IsMem() && (ev.Kind == cpu.EvIssue || ev.Kind == cpu.EvFault):
			// A faulting access still performed its translation walk and
			// primed the walker caches; its target line is part of the
			// footprint the attacker models.
			x := p.Cache
			x = fnvWord(x, uint64(int64(ev.Context)))
			x = fnvWord(x, ev.Addr>>CacheLineShift)
			store := uint64(0)
			if op.IsStore() {
				store = 1
			}
			p.Cache = fnvWord(x, store)
			p.CacheN++
		}
		if op == isa.OpDiv || op == isa.OpFDiv {
			//simlint:enumexempt port-digest projection deliberately samples only the issue/complete edges of divides; other event kinds carry no port contention signal
			switch ev.Kind {
			case cpu.EvIssue:
				issueCycle[k] = ev.Cycle
				fallthrough
			case cpu.EvComplete:
				x := p.Port
				x = fnvWord(x, uint64(int64(ev.Context)))
				x = fnvWord(x, uint64(int64(ev.Kind)))
				x = fnvWord(x, ev.Cycle)
				x = fnvWord(x, uint64(int64(ev.Port)))
				p.Port = fnvWord(x, uint64(int64(op)))
				p.PortN++
			}
			if ev.Kind == cpu.EvComplete {
				if ic, ok := issueCycle[k]; ok {
					x := p.Latency
					x = fnvWord(x, uint64(int64(ev.Context)))
					x = fnvWord(x, uint64(int64(op)))
					p.Latency = fnvWord(x, ev.Cycle-ic)
					p.LatencyN++
				}
			}
		}
	}
	return p
}
