package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"microscope/sim/cpu"
	"microscope/sim/pipeline"
)

// walkBounds are the inclusive upper edges of the page-walk latency
// histogram buckets (cycles); walks longer than the last edge land in a
// final overflow bucket.
var walkBounds = [...]int{4, 8, 16, 32, 64, 128}

// stage indices for the occupancy integrals.
const (
	stageFrontend = iota // fetched, waiting to issue
	stageExec            // issued, executing
	stageWait            // completed, waiting to retire
	numStages
)

// Metrics aggregates the pipeline event stream into deterministic
// counters: event and squash counts, cycle-weighted per-stage occupancy
// (a ROB-utilization integral), per-port issue histograms and the
// page-walk latency distribution. Rendering (Text/JSON) is byte-stable:
// same event stream, same bytes, regardless of GOMAXPROCS, sweep worker
// count or map iteration order — nothing here iterates a map.
//
// The occupancy integrals stay exact under fast-forward: skipped cycle
// ranges have constant in-flight populations by construction, and the
// integral advances on event timestamps, not per-cycle callbacks.
type Metrics struct {
	// ROBSize, when set, adds a utilization percentage to the rendered
	// ROB occupancy (average occupancy / ROBSize).
	ROBSize int

	events uint64
	counts [cpu.EvTxAbort + 1]uint64

	firstCycle uint64
	lastCycle  uint64
	started    bool

	// Per-context in-flight population per stage, plus cycle-weighted
	// occupancy integrals summed across contexts.
	inflight  [][numStages]int
	integrals [numStages]uint64

	squashMispredict uint64
	squashMemOrder   uint64
	squashPreempt    uint64
	squashOther      uint64

	portIssues [pipeline.NumPorts]uint64

	walkHits   uint64 // memory issues with Walk == 0 (TLB hit)
	walkCount  uint64
	walkSum    uint64
	walkMax    int
	walkBucket [len(walkBounds) + 1]uint64

	// open tracks the stage of each in-flight seq per context so flushes
	// decrement the right populations.
	open [][]openRec
}

type openRec struct {
	seq   uint64
	stage uint8
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{} }

// Trace implements cpu.Tracer.
func (m *Metrics) Trace(ev cpu.Event) {
	m.events++
	if int(ev.Kind) < len(m.counts) {
		m.counts[ev.Kind]++
	}
	if !m.started {
		m.started = true
		m.firstCycle = ev.Cycle
		m.lastCycle = ev.Cycle
	}
	if dt := ev.Cycle - m.lastCycle; dt > 0 {
		for s := 0; s < numStages; s++ {
			var n uint64
			for _, ctx := range m.inflight {
				n += uint64(ctx[s])
			}
			m.integrals[s] += dt * n
		}
		m.lastCycle = ev.Cycle
	}
	for len(m.open) <= ev.Context {
		m.open = append(m.open, nil)
		m.inflight = append(m.inflight, [numStages]int{})
	}

	switch ev.Kind {
	case cpu.EvFetch:
		m.open[ev.Context] = append(m.open[ev.Context], openRec{seq: ev.Seq, stage: stageFrontend})
		m.inflight[ev.Context][stageFrontend]++
	case cpu.EvIssue:
		m.advance(ev.Context, ev.Seq, stageExec)
		m.portIssues[ev.Port]++
		if ev.Instr.Op.IsLoad() || ev.Instr.Op.IsStore() {
			if ev.Walk == 0 {
				m.walkHits++
			} else {
				m.recordWalk(ev.Walk)
			}
		}
	case cpu.EvComplete:
		m.advance(ev.Context, ev.Seq, stageWait)
	case cpu.EvRetire:
		m.drop(ev.Context, func(r openRec) bool { return r.seq == ev.Seq })
	case cpu.EvSquash:
		switch ev.Detail {
		case "branch mispredict":
			m.squashMispredict++
		case "memory order violation":
			m.squashMemOrder++
		case "preempt":
			m.squashPreempt++
		default:
			m.squashOther++
		}
		if ev.Seq == 0 {
			m.drop(ev.Context, func(openRec) bool { return true })
		} else {
			m.drop(ev.Context, func(r openRec) bool { return r.seq > ev.Seq })
		}
	case cpu.EvFault:
		if ev.Walk > 0 {
			m.recordWalk(ev.Walk)
		}
		m.drop(ev.Context, func(openRec) bool { return true })
	case cpu.EvTxAbort:
		m.drop(ev.Context, func(openRec) bool { return true })
	}
}

func (m *Metrics) advance(ctx int, seq uint64, stage uint8) {
	open := m.open[ctx]
	for i := range open {
		if open[i].seq == seq {
			m.inflight[ctx][open[i].stage]--
			open[i].stage = stage
			m.inflight[ctx][stage]++
			return
		}
	}
}

func (m *Metrics) drop(ctx int, match func(openRec) bool) {
	open := m.open[ctx]
	out := open[:0]
	for _, r := range open {
		if match(r) {
			m.inflight[ctx][r.stage]--
		} else {
			out = append(out, r)
		}
	}
	m.open[ctx] = out
}

func (m *Metrics) recordWalk(walk int) {
	m.walkCount++
	m.walkSum += uint64(walk)
	if walk > m.walkMax {
		m.walkMax = walk
	}
	for i, b := range walkBounds {
		if walk <= b {
			m.walkBucket[i]++
			return
		}
	}
	m.walkBucket[len(walkBounds)]++
}

// Cycles is the event-stamped duration covered so far.
func (m *Metrics) Cycles() uint64 {
	if !m.started {
		return 0
	}
	return m.lastCycle - m.firstCycle
}

// Count returns the number of events of the given kind observed.
func (m *Metrics) Count(k cpu.EventKind) uint64 {
	if int(k) < len(m.counts) {
		return m.counts[k]
	}
	return 0
}

// avgOccupancy returns the time-averaged in-flight population of one
// stage, in instructions.
func (m *Metrics) avgOccupancy(stage int) float64 {
	cy := m.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(m.integrals[stage]) / float64(cy)
}

// metricsJSON fixes the field order of the JSON rendering.
type metricsJSON struct {
	Cycles     uint64             `json:"cycles"`
	Events     uint64             `json:"events"`
	Fetched    uint64             `json:"fetched"`
	Issued     uint64             `json:"issued"`
	Completed  uint64             `json:"completed"`
	Retired    uint64             `json:"retired"`
	Squashes   uint64             `json:"squashes"`
	Faults     uint64             `json:"faults"`
	TxAborts   uint64             `json:"txAborts"`
	SquashSrc  map[string]uint64  `json:"squashSources"`
	Occupancy  map[string]float64 `json:"avgOccupancy"`
	ROBUtil    float64            `json:"robUtilization,omitempty"`
	PortIssues map[string]uint64  `json:"portIssues"`
	TLBHits    uint64             `json:"tlbHits"`
	Walks      uint64             `json:"pageWalks"`
	WalkAvg    float64            `json:"pageWalkAvgCycles"`
	WalkMax    int                `json:"pageWalkMaxCycles"`
	WalkHist   map[string]uint64  `json:"pageWalkHistogram"`
}

// JSON renders the metrics as deterministic JSON (encoding/json sorts
// map keys, and the remaining fields are in a struct).
func (m *Metrics) JSON() ([]byte, error) {
	j := metricsJSON{
		Cycles:    m.Cycles(),
		Events:    m.events,
		Fetched:   m.Count(cpu.EvFetch),
		Issued:    m.Count(cpu.EvIssue),
		Completed: m.Count(cpu.EvComplete),
		Retired:   m.Count(cpu.EvRetire),
		Squashes:  m.Count(cpu.EvSquash),
		Faults:    m.Count(cpu.EvFault),
		TxAborts:  m.Count(cpu.EvTxAbort),
		SquashSrc: map[string]uint64{
			"mispredict": m.squashMispredict,
			"memOrder":   m.squashMemOrder,
			"preempt":    m.squashPreempt,
			"other":      m.squashOther,
		},
		Occupancy: map[string]float64{
			"frontend":   m.avgOccupancy(stageFrontend),
			"exec":       m.avgOccupancy(stageExec),
			"waitRetire": m.avgOccupancy(stageWait),
		},
		PortIssues: map[string]uint64{},
		TLBHits:    m.walkHits,
		Walks:      m.walkCount,
		WalkMax:    m.walkMax,
		WalkHist:   map[string]uint64{},
	}
	if m.ROBSize > 0 {
		total := m.avgOccupancy(stageFrontend) + m.avgOccupancy(stageExec) + m.avgOccupancy(stageWait)
		j.ROBUtil = total / float64(m.ROBSize)
	}
	if m.walkCount > 0 {
		j.WalkAvg = float64(m.walkSum) / float64(m.walkCount)
	}
	for p := pipeline.Port(0); p < pipeline.NumPorts; p++ {
		j.PortIssues[p.String()] = m.portIssues[p]
	}
	for i, b := range walkBounds {
		j.WalkHist[fmt.Sprintf("<=%03d", b)] = m.walkBucket[i]
	}
	j.WalkHist[fmt.Sprintf(">%03d", walkBounds[len(walkBounds)-1])] = m.walkBucket[len(walkBounds)]
	return json.MarshalIndent(j, "", "  ")
}

// Text renders a fixed-order human-readable summary. Byte-deterministic:
// two identical event streams render identically.
func (m *Metrics) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles           %d\n", m.Cycles())
	fmt.Fprintf(&sb, "events           %d\n", m.events)
	fmt.Fprintf(&sb, "fetched          %d\n", m.Count(cpu.EvFetch))
	fmt.Fprintf(&sb, "issued           %d\n", m.Count(cpu.EvIssue))
	fmt.Fprintf(&sb, "completed        %d\n", m.Count(cpu.EvComplete))
	fmt.Fprintf(&sb, "retired          %d\n", m.Count(cpu.EvRetire))
	fmt.Fprintf(&sb, "faults           %d\n", m.Count(cpu.EvFault))
	fmt.Fprintf(&sb, "tx aborts        %d\n", m.Count(cpu.EvTxAbort))
	fmt.Fprintf(&sb, "squashes         %d (mispredict %d, mem-order %d, preempt %d, other %d)\n",
		m.Count(cpu.EvSquash), m.squashMispredict, m.squashMemOrder, m.squashPreempt, m.squashOther)
	fmt.Fprintf(&sb, "avg occupancy    frontend %.2f  exec %.2f  wait-retire %.2f\n",
		m.avgOccupancy(stageFrontend), m.avgOccupancy(stageExec), m.avgOccupancy(stageWait))
	if m.ROBSize > 0 {
		total := m.avgOccupancy(stageFrontend) + m.avgOccupancy(stageExec) + m.avgOccupancy(stageWait)
		fmt.Fprintf(&sb, "rob utilization  %.2f%% of %d entries\n",
			100*total/float64(m.ROBSize), m.ROBSize)
	}
	sb.WriteString("port issues     ")
	for p := pipeline.Port(0); p < pipeline.NumPorts; p++ {
		fmt.Fprintf(&sb, " %s=%d", p, m.portIssues[p])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "tlb hits         %d\n", m.walkHits)
	if m.walkCount == 0 {
		fmt.Fprintf(&sb, "page walks       0\n")
	} else {
		fmt.Fprintf(&sb, "page walks       %d (avg %.2f cycles, max %d)\n",
			m.walkCount, float64(m.walkSum)/float64(m.walkCount), m.walkMax)
		sb.WriteString("walk histogram  ")
		for i, b := range walkBounds {
			fmt.Fprintf(&sb, " <=%d:%d", b, m.walkBucket[i])
		}
		fmt.Fprintf(&sb, " >%d:%d\n", walkBounds[len(walkBounds)-1], m.walkBucket[len(walkBounds)])
	}
	return sb.String()
}
