package trace_test

import (
	"bytes"
	"math/rand"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/cpu/cputest"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// runCore executes one generated program on a fresh core with the given
// tracer attached, returning the core for inspection.
func runCore(t *testing.T, seed int64, alias bool, tr cpu.Tracer) *cpu.Core {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var prog *isa.Program
	if alias {
		prog = cputest.GenAliasProgram(rng)
	} else {
		prog = cputest.GenProgram(rng)
	}
	as, err := cputest.NewDataSpace(seed)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
	core.Context(0).SetAddressSpace(as)
	core.Context(0).SetProgram(prog, 0)
	core.SetTracer(tr)
	core.Run(20_000_000)
	if !core.Context(0).Halted() {
		t.Fatalf("seed %d: core did not halt", seed)
	}
	return core
}

func TestCollectorLifecycles(t *testing.T) {
	col := trace.NewCollector(0)
	core := runCore(t, 3, false, col)

	if len(col.OpenSpans()) != 0 {
		t.Errorf("%d spans still open after halt", len(col.OpenSpans()))
	}
	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no lifecycles collected")
	}
	var retired uint64
	for _, s := range spans {
		if s.Fate == trace.FateRetired {
			retired++
			if s.Issue == trace.NoCycle || s.Complete == trace.NoCycle {
				t.Fatalf("retired span seq %d missing issue/complete", s.Seq)
			}
			if !(s.Fetch <= s.Issue && s.Issue <= s.Complete && s.Complete <= s.End) {
				t.Fatalf("seq %d: non-monotonic lifecycle %d/%d/%d/%d",
					s.Seq, s.Fetch, s.Issue, s.Complete, s.End)
			}
		}
		if s.Fate == trace.FateOpen || s.End == trace.NoCycle {
			t.Fatalf("closed span seq %d still marked open", s.Seq)
		}
	}
	if want := core.Context(0).Stats().Retired; retired != want {
		t.Errorf("collector saw %d retirements, stats say %d", retired, want)
	}
	if sq := core.Context(0).Stats().Squashed; sq > 0 {
		var squashed uint64
		for _, s := range spans {
			if s.Fate == trace.FateSquashed {
				squashed++
			}
		}
		if squashed == 0 {
			t.Errorf("stats report %d squashed entries but no squashed spans", sq)
		}
	}
}

func TestCollectorRingBounds(t *testing.T) {
	col := trace.NewCollector(8)
	runCore(t, 3, false, col)
	if n := len(col.Spans()); n > 8 {
		t.Errorf("ring holds %d spans, capacity 8", n)
	}
	if col.DroppedSpans() == 0 {
		t.Error("expected the small ring to drop spans")
	}
	if col.TotalSpans() != col.DroppedSpans()+uint64(len(col.Spans())) {
		t.Error("total/dropped/len accounting inconsistent")
	}
	// The ring must retain the most recent spans: the newest closed span
	// survives in the last position.
	spans := col.Spans()
	last := spans[len(spans)-1]
	if last.End == trace.NoCycle || last.End < spans[0].End {
		t.Error("ring is not oldest-first")
	}
}

func TestHasherStableAndSensitive(t *testing.T) {
	h1 := trace.NewHasher()
	runCore(t, 7, false, h1)
	h2 := trace.NewHasher()
	runCore(t, 7, false, h2)
	if h1.Sum64() != h2.Sum64() || h1.Events() != h2.Events() {
		t.Errorf("identical runs hash differently: %#x/%d vs %#x/%d",
			h1.Sum64(), h1.Events(), h2.Sum64(), h2.Events())
	}
	h3 := trace.NewHasher()
	runCore(t, 8, false, h3)
	if h3.Sum64() == h1.Sum64() {
		t.Error("different programs produced the same trace hash")
	}
	h1.Reset()
	if h1.Sum64() == h2.Sum64() && h2.Events() > 0 {
		t.Error("Reset did not clear the digest")
	}
}

func TestMetricsAggregates(t *testing.T) {
	m := trace.NewMetrics()
	m.ROBSize = cpu.DefaultConfig().ROBSize
	core := runCore(t, 1001, true, m)

	st := core.Context(0).Stats()
	if m.Count(cpu.EvFetch) != st.Fetched {
		t.Errorf("fetched: metrics %d vs stats %d", m.Count(cpu.EvFetch), st.Fetched)
	}
	if m.Count(cpu.EvRetire) != st.Retired {
		t.Errorf("retired: metrics %d vs stats %d", m.Count(cpu.EvRetire), st.Retired)
	}
	if m.Count(cpu.EvIssue) == 0 {
		t.Error("no issue events aggregated")
	}
	if m.Cycles() == 0 {
		t.Error("metrics observed no cycles")
	}
}

func TestMetricsRenderingDeterministic(t *testing.T) {
	render := func() (string, []byte) {
		m := trace.NewMetrics()
		m.ROBSize = cpu.DefaultConfig().ROBSize
		runCore(t, 1002, true, m)
		text := m.Text()
		js, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return text, js
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text rendering not byte-deterministic:\n%s\nvs\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSON rendering not byte-deterministic")
	}
}

func TestChromeExportValidates(t *testing.T) {
	col := trace.NewCollector(0)
	runCore(t, 1000, true, col)
	anns := []trace.Annotation{
		{Track: "replayer", Name: "replay 1", Start: 100, End: 900,
			Args: map[string]string{"va": "0x1000"}},
		{Track: "replayer", Name: "release", Start: 900, End: 900},
	}
	data, err := trace.ChromeJSON(col, anns)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	// Determinism: the same collector state exports identical bytes.
	again, err := trace.ChromeJSON(col, anns)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("chrome export not byte-deterministic")
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X"}]}`,
		`{"traceEvents":[{"name":"a","ph":"Q","pid":1,"tid":0,"ts":0}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":0}]}`,
	}
	for _, c := range cases {
		if err := trace.ValidateChrome([]byte(c)); err == nil {
			t.Errorf("ValidateChrome accepted %q", c)
		}
	}
}

func TestTee(t *testing.T) {
	if tr := trace.Tee(nil, nil); tr != nil {
		t.Error("Tee of nils must be nil")
	}
	h := trace.NewHasher()
	if tr := trace.Tee(nil, h); tr != cpu.Tracer(h) {
		t.Error("Tee with one live sink must return it unwrapped")
	}
	h2 := trace.NewHasher()
	tee := trace.Tee(h, h2)
	runCore(t, 5, false, tee)
	if h.Sum64() != h2.Sum64() || h.Events() == 0 {
		t.Error("tee did not fan events out to both sinks")
	}
}

// TestTracingAddsNoAllocations is the acceptance guard for the
// zero-overhead claim: attaching and detaching observability must leave
// the hot loop's allocation profile exactly as it was, and a Hasher
// (designed alloc-free) must add nothing while attached.
func TestTracingAddsNoAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog := cputest.GenProgram(rng)
	run := func(attach func(*cpu.Core)) float64 {
		return testing.AllocsPerRun(5, func() {
			as, err := cputest.NewDataSpace(5)
			if err != nil {
				t.Fatal(err)
			}
			core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
			core.Context(0).SetAddressSpace(as)
			core.Context(0).SetProgram(prog, 0)
			attach(core)
			core.Run(20_000_000)
		})
	}
	baseline := run(func(*cpu.Core) {})
	scratch := trace.NewHasher()
	detached := run(func(c *cpu.Core) {
		c.SetTracer(scratch)
		c.SetTracer(nil)
	})
	if detached != baseline {
		t.Errorf("attach+detach changed hot-loop allocations: %v vs baseline %v",
			detached, baseline)
	}
	h := trace.NewHasher()
	hashed := run(func(c *cpu.Core) {
		h.Reset()
		c.SetTracer(h)
	})
	if hashed != baseline {
		t.Errorf("attached Hasher added allocations: %v vs baseline %v",
			hashed, baseline)
	}
	if h.Events() == 0 {
		t.Error("hasher observed no events — the guard is vacuous")
	}
}

// TestHasherTraceZeroAlloc pins the Hasher's per-event cost directly.
func TestHasherTraceZeroAlloc(t *testing.T) {
	h := trace.NewHasher()
	ev := cpu.Event{
		Cycle: 12, Context: 1, Kind: cpu.EvIssue, PC: 7, Seq: 99,
		Instr: isa.Instr{Op: isa.OpMul, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3},
		Walk:  4, Detail: "x",
	}
	if n := testing.AllocsPerRun(1000, func() { h.Trace(ev) }); n != 0 {
		t.Errorf("Hasher.Trace allocates %v per event", n)
	}
}

func BenchmarkRunDetached(b *testing.B) {
	benchRun(b, nil)
}

func BenchmarkRunHashed(b *testing.B) {
	benchRun(b, trace.NewHasher())
}

func BenchmarkRunCollected(b *testing.B) {
	benchRun(b, trace.NewCollector(4096))
}

func benchRun(b *testing.B, tr cpu.Tracer) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	prog := cputest.GenProgram(rng)
	for i := 0; i < b.N; i++ {
		as, err := cputest.NewDataSpace(5)
		if err != nil {
			b.Fatal(err)
		}
		core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
		core.Context(0).SetAddressSpace(as)
		core.Context(0).SetProgram(prog, 0)
		core.SetTracer(tr)
		core.Run(20_000_000)
	}
}

// TestCollectorSteadyStateZeroAlloc pins the arena property of the
// Collector's rings: once the span/mark arenas exist and the per-context
// open list has grown to its working size, a steady fetch/retire stream
// allocates nothing per event — no append-doubling of the 64K rings on
// the simulation hot path, and Reset must hand the arenas back intact.
func TestCollectorSteadyStateZeroAlloc(t *testing.T) {
	c := trace.NewCollector(256)
	seq := uint64(0)
	pair := func() {
		seq++
		c.Trace(cpu.Event{Cycle: seq, Kind: cpu.EvFetch, Seq: seq, PC: 1,
			Instr: isa.Instr{Op: isa.OpAdd, Rd: isa.R1}})
		c.Trace(cpu.Event{Cycle: seq, Kind: cpu.EvRetire, Seq: seq, PC: 1})
	}
	for i := 0; i < 512; i++ { // fill both arenas past the ring capacity
		pair()
	}
	if n := testing.AllocsPerRun(1000, pair); n != 0 {
		t.Errorf("steady-state Trace allocates %v per fetch/retire pair", n)
	}
	before := c.Spans()
	c.Reset()
	if len(c.Spans()) != 0 || c.Events() != 0 {
		t.Fatal("Reset left collected state behind")
	}
	for i := 0; i < len(before)+1; i++ {
		pair()
	}
	if n := testing.AllocsPerRun(1000, pair); n != 0 {
		t.Errorf("post-Reset Trace allocates %v per pair: arenas were dropped", n)
	}
}
