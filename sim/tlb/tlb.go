// Package tlb implements the translation lookaside buffers of the
// simulated core: per-context L1 instruction/data TLBs and a unified L2
// TLB, organised as in the paper's Figure 1 (VPN, PPN, flags, PCID,
// set-associative with LRU).
//
// MicroScope's attack setup invalidates the replay handle's {VPN, PPN}
// entry (paper §4.1.1 step 4) so the handle's next execution misses in
// both TLB levels and triggers a hardware page walk.
package tlb

import (
	"fmt"

	"microscope/sim/mem"
)

// EntryFlags carries the permission bits cached with a translation.
type EntryFlags struct {
	Writable bool
	User     bool
	Enclave  bool
}

// FlagsFromEntry extracts TLB flags from a leaf page-table entry.
func FlagsFromEntry(e mem.Entry) EntryFlags {
	return EntryFlags{Writable: e.Writable(), User: e.User(), Enclave: e.Enclave()}
}

// Translation is a cached VPN→PPN mapping.
type Translation struct {
	VPN   uint64
	PPN   uint64
	PCID  uint16
	Flags EntryFlags
}

type way struct {
	valid bool
	tr    Translation
	lru   uint64
}

// TLB is one set-associative translation buffer.
type TLB struct {
	name   string
	sets   [][]way
	nsets  uint64 //simlint:snapexempt derived geometry: len(sets), recomputed at construction; snapshots restore into a same-geometry TLB
	clock  uint64
	hits   uint64
	misses uint64

	// Replay-memo recording hooks (nil when no recording is active; see
	// memo.go).
	onTouch func(set int) //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	onInval func()        //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
}

// New returns a TLB with the given geometry; sets must be a power of two.
func New(name string, sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic(fmt.Sprintf("tlb %s: bad geometry %dx%d", name, sets, ways))
	}
	s := make([][]way, sets)
	backing := make([]way, sets*ways)
	for i := range s {
		s[i], backing = backing[:ways], backing[ways:]
	}
	return &TLB{name: name, sets: s, nsets: uint64(sets)}
}

func (t *TLB) set(vpn uint64) []way { return t.sets[vpn%t.nsets] }

// Lookup returns the cached translation for (vpn, pcid), if present.
func (t *TLB) Lookup(vpn uint64, pcid uint16) (Translation, bool) {
	if t.onTouch != nil {
		t.onTouch(int(vpn % t.nsets))
	}
	t.clock++
	for i := range t.set(vpn) {
		w := &t.set(vpn)[i]
		if w.valid && w.tr.VPN == vpn && w.tr.PCID == pcid {
			w.lru = t.clock
			t.hits++
			return w.tr, true
		}
	}
	t.misses++
	return Translation{}, false
}

// Insert caches tr, evicting the LRU way of its set if needed.
func (t *TLB) Insert(tr Translation) {
	if t.onTouch != nil {
		t.onTouch(int(tr.VPN % t.nsets))
	}
	t.clock++
	set := t.set(tr.VPN)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tr.VPN == tr.VPN && set[i].tr.PCID == tr.PCID {
			set[i].tr = tr
			set[i].lru = t.clock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = way{valid: true, tr: tr, lru: t.clock}
}

// Invalidate drops the entry for (vpn, pcid), reporting whether one
// existed (INVLPG).
func (t *TLB) Invalidate(vpn uint64, pcid uint16) bool {
	if t.onInval != nil {
		t.onInval()
	}
	for i := range t.set(vpn) {
		w := &t.set(vpn)[i]
		if w.valid && w.tr.VPN == vpn && w.tr.PCID == pcid {
			w.valid = false
			return true
		}
	}
	return false
}

// FlushPCID drops all entries of one context (MOV-to-CR3 without
// PCID-preserving semantics, or enclave-boundary scrubbing).
func (t *TLB) FlushPCID(pcid uint16) {
	if t.onInval != nil {
		t.onInval()
	}
	for s := range t.sets {
		for i := range t.sets[s] {
			if t.sets[s][i].valid && t.sets[s][i].tr.PCID == pcid {
				t.sets[s][i].valid = false
			}
		}
	}
}

// FlushAll drops every entry.
func (t *TLB) FlushAll() {
	if t.onInval != nil {
		t.onInval()
	}
	for s := range t.sets {
		for i := range t.sets[s] {
			t.sets[s][i].valid = false
		}
	}
}

// Len returns the number of valid entries.
func (t *TLB) Len() int {
	n := 0
	for s := range t.sets {
		for i := range t.sets[s] {
			if t.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// Stats returns cumulative hit/miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Unit is the full TLB complex of one core: L1D + L1I + unified L2,
// mirroring the Intel organisation described in §2.1.
type Unit struct {
	L1D *TLB
	L1I *TLB
	L2  *TLB
}

// NewUnit builds the default TLB complex (64-entry 4-way L1s, 1536-entry
// 12-way L2).
func NewUnit() *Unit {
	return &Unit{
		L1D: New("dTLB", 16, 4),
		L1I: New("iTLB", 16, 4),
		L2:  New("sTLB", 128, 12),
	}
}

// LookupData translates a data access: L1D first, then L2 (promoting an L2
// hit into L1D). The second result reports the level that hit (1, 2) or 0
// on miss.
func (u *Unit) LookupData(vpn uint64, pcid uint16) (Translation, int) {
	if tr, ok := u.L1D.Lookup(vpn, pcid); ok {
		return tr, 1
	}
	if tr, ok := u.L2.Lookup(vpn, pcid); ok {
		u.L1D.Insert(tr)
		return tr, 2
	}
	return Translation{}, 0
}

// LookupInstr translates an instruction fetch: L1I, then L2.
func (u *Unit) LookupInstr(vpn uint64, pcid uint16) (Translation, int) {
	if tr, ok := u.L1I.Lookup(vpn, pcid); ok {
		return tr, 1
	}
	if tr, ok := u.L2.Lookup(vpn, pcid); ok {
		u.L1I.Insert(tr)
		return tr, 2
	}
	return Translation{}, 0
}

// InsertData installs a translation produced by a data-side page walk into
// L1D and L2.
func (u *Unit) InsertData(tr Translation) {
	u.L1D.Insert(tr)
	u.L2.Insert(tr)
}

// InsertInstr installs a translation produced by an instruction-side walk.
func (u *Unit) InsertInstr(tr Translation) {
	u.L1I.Insert(tr)
	u.L2.Insert(tr)
}

// Invalidate performs INVLPG across all three structures.
func (u *Unit) Invalidate(vpn uint64, pcid uint16) {
	u.L1D.Invalidate(vpn, pcid)
	u.L1I.Invalidate(vpn, pcid)
	u.L2.Invalidate(vpn, pcid)
}

// FlushPCID scrubs one context from all three structures.
func (u *Unit) FlushPCID(pcid uint16) {
	u.L1D.FlushPCID(pcid)
	u.L1I.FlushPCID(pcid)
	u.L2.FlushPCID(pcid)
}

// FlushAll scrubs everything.
func (u *Unit) FlushAll() {
	u.L1D.FlushAll()
	u.L1I.FlushAll()
	u.L2.FlushAll()
}
