package tlb

// Memo support for the sim/cpu replay-splice cache: recording hooks,
// rank-normalized set hashing and set imaging, following the same design
// as sim/cache (see the comment atop sim/cache/memo.go): LRU clocks are
// monotonic and never repeat across windows, so fingerprints fold ranks
// and captured images store clocks as window-relative offsets.

// fold mixes v into the running FNV-1a hash h.
func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// SetMemoHooks installs the recording hooks (nil detaches). touch fires
// with the set index on every lookup or insert; invalidate fires on
// Invalidate/FlushPCID/FlushAll, which abort any window being recorded.
func (t *TLB) SetMemoHooks(touch func(set int), invalidate func()) {
	t.onTouch = touch
	t.onInval = invalidate
}

func packFlags(f EntryFlags) uint64 {
	v := uint64(0)
	if f.Writable {
		v |= 1
	}
	if f.User {
		v |= 2
	}
	if f.Enclave {
		v |= 4
	}
	return v
}

// MemoHashSet folds the behaviour-determining state of one set into h:
// per way its valid bit and — when valid — the translation content and
// the way's LRU rank among the set's valid ways. (Insert's victim choice
// among invalid ways depends on way index, which the per-index fold
// order captures.)
func (t *TLB) MemoHashSet(set int, h uint64) uint64 {
	ways := t.sets[set]
	for i := range ways {
		if !ways[i].valid {
			h = fold(h, 0)
			continue
		}
		rank := uint64(1)
		for j := range ways {
			if j == i || !ways[j].valid {
				continue
			}
			if ways[j].lru < ways[i].lru || (ways[j].lru == ways[i].lru && j < i) {
				rank++
			}
		}
		h = fold(h, rank<<1|1)
		h = fold(h, ways[i].tr.VPN)
		h = fold(h, ways[i].tr.PPN)
		h = fold(h, uint64(ways[i].tr.PCID)<<3|packFlags(ways[i].tr.Flags))
	}
	return h
}

// WayImage is the post-window image of one TLB way (LruOff as in
// cache.LineImage: -1 means the window left the way alone and its live
// clock already carries the right rank).
type WayImage struct {
	Valid  bool
	Tr     Translation
	LruOff int64
}

// MemoCaptureSet images one set at the end of a recorded window.
func (t *TLB) MemoCaptureSet(set int, startClock uint64) []WayImage {
	ways := t.sets[set]
	img := make([]WayImage, len(ways))
	for i := range ways {
		img[i] = WayImage{Valid: ways[i].valid, Tr: ways[i].tr, LruOff: -1}
		if ways[i].lru > startClock {
			img[i].LruOff = int64(ways[i].lru - startClock)
		}
	}
	return img
}

// MemoApplySet splices a captured set image back in, rebasing in-window
// LRU assignments onto baseClock.
func (t *TLB) MemoApplySet(set int, img []WayImage, baseClock uint64) {
	ways := t.sets[set]
	for i := range img {
		ways[i].valid = img[i].Valid
		ways[i].tr = img[i].Tr
		if img[i].LruOff >= 0 {
			ways[i].lru = baseClock + uint64(img[i].LruOff)
		}
	}
}

// MemoClock returns the current LRU clock.
func (t *TLB) MemoClock() uint64 { return t.clock }

// MemoAdvance replays a window's aggregate clock and statistics effect.
func (t *TLB) MemoAdvance(clockDelta, hitsDelta, missDelta uint64) {
	t.clock += clockDelta
	t.hits += hitsDelta
	t.misses += missDelta
}
