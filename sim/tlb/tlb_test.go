package tlb

import (
	"testing"
	"testing/quick"

	"microscope/sim/mem"
)

func tr(vpn, ppn uint64, pcid uint16) Translation {
	return Translation{VPN: vpn, PPN: ppn, PCID: pcid, Flags: EntryFlags{User: true}}
}

func TestLookupInsert(t *testing.T) {
	tb := New("t", 4, 2)
	if _, ok := tb.Lookup(7, 1); ok {
		t.Error("cold lookup hit")
	}
	tb.Insert(tr(7, 0x42, 1))
	got, ok := tb.Lookup(7, 1)
	if !ok || got.PPN != 0x42 {
		t.Errorf("lookup = %+v, %t", got, ok)
	}
	hits, misses := tb.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestPCIDIsolation(t *testing.T) {
	tb := New("t", 4, 2)
	tb.Insert(tr(7, 0x42, 1))
	if _, ok := tb.Lookup(7, 2); ok {
		t.Error("translation leaked across PCIDs")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tb := New("t", 4, 2)
	tb.Insert(tr(7, 0x42, 1))
	tb.Insert(tr(7, 0x43, 1))
	got, ok := tb.Lookup(7, 1)
	if !ok || got.PPN != 0x43 {
		t.Errorf("update lost: %+v", got)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1 (no duplicate)", tb.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New("t", 1, 2) // single set, 2 ways
	tb.Insert(tr(1, 0x1, 1))
	tb.Insert(tr(2, 0x2, 1))
	tb.Lookup(1, 1) // refresh vpn 1
	tb.Insert(tr(3, 0x3, 1))
	if _, ok := tb.Lookup(2, 1); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := tb.Lookup(1, 1); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestInvalidate(t *testing.T) {
	tb := New("t", 4, 2)
	tb.Insert(tr(9, 0x9, 3))
	if !tb.Invalidate(9, 3) {
		t.Error("invalidate of present entry returned false")
	}
	if tb.Invalidate(9, 3) {
		t.Error("invalidate of absent entry returned true")
	}
	if _, ok := tb.Lookup(9, 3); ok {
		t.Error("entry survived INVLPG")
	}
}

func TestFlushPCID(t *testing.T) {
	tb := New("t", 8, 2)
	tb.Insert(tr(1, 1, 1))
	tb.Insert(tr(2, 2, 1))
	tb.Insert(tr(3, 3, 2))
	tb.FlushPCID(1)
	if tb.Len() != 1 {
		t.Errorf("Len after FlushPCID = %d, want 1", tb.Len())
	}
	if _, ok := tb.Lookup(3, 2); !ok {
		t.Error("other PCID entry flushed")
	}
}

func TestFlushAll(t *testing.T) {
	tb := New("t", 8, 2)
	tb.Insert(tr(1, 1, 1))
	tb.Insert(tr(2, 2, 2))
	tb.FlushAll()
	if tb.Len() != 0 {
		t.Errorf("Len = %d after FlushAll", tb.Len())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	New("bad", 3, 2)
}

func TestFlagsFromEntry(t *testing.T) {
	e := mem.Entry(mem.FlagPresent | mem.FlagWritable | mem.FlagEnclave)
	f := FlagsFromEntry(e)
	if !f.Writable || f.User || !f.Enclave {
		t.Errorf("flags = %+v", f)
	}
}

func TestUnitDataPromotion(t *testing.T) {
	u := NewUnit()
	u.L2.Insert(tr(5, 0x55, 1))
	got, lvl := u.LookupData(5, 1)
	if lvl != 2 || got.PPN != 0x55 {
		t.Fatalf("LookupData = %+v, level %d", got, lvl)
	}
	// The hit must have been promoted into L1D.
	if _, lvl = u.LookupData(5, 1); lvl != 1 {
		t.Errorf("second lookup level = %d, want 1 (promotion)", lvl)
	}
}

func TestUnitInstrSeparateFromData(t *testing.T) {
	u := NewUnit()
	u.InsertData(tr(6, 0x66, 1))
	// Instruction lookup should miss L1I but hit the unified L2.
	if _, lvl := u.LookupInstr(6, 1); lvl != 2 {
		t.Errorf("instr lookup level = %d, want 2", lvl)
	}
}

func TestUnitInvalidateAll(t *testing.T) {
	u := NewUnit()
	u.InsertData(tr(8, 0x88, 1))
	u.InsertInstr(tr(8, 0x88, 1))
	u.Invalidate(8, 1)
	if _, lvl := u.LookupData(8, 1); lvl != 0 {
		t.Error("data translation survived Invalidate")
	}
	if _, lvl := u.LookupInstr(8, 1); lvl != 0 {
		t.Error("instr translation survived Invalidate")
	}
}

func TestUnitFlushPCIDAndAll(t *testing.T) {
	u := NewUnit()
	u.InsertData(tr(1, 1, 1))
	u.InsertData(tr(2, 2, 2))
	u.FlushPCID(1)
	if _, lvl := u.LookupData(1, 1); lvl != 0 {
		t.Error("PCID 1 survived FlushPCID")
	}
	if _, lvl := u.LookupData(2, 2); lvl == 0 {
		t.Error("PCID 2 flushed by FlushPCID(1)")
	}
	u.FlushAll()
	if _, lvl := u.LookupData(2, 2); lvl != 0 {
		t.Error("entry survived FlushAll")
	}
}

// Property: Insert then Lookup with matching PCID always hits and returns
// the inserted PPN.
func TestInsertLookupProperty(t *testing.T) {
	tb := New("p", 16, 4)
	f := func(vpn, ppn uint64, pcid uint16) bool {
		tb.Insert(Translation{VPN: vpn, PPN: ppn, PCID: pcid})
		got, ok := tb.Lookup(vpn, pcid)
		return ok && got.PPN == ppn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
