package tlb

import "fmt"

// Snapshot types for the checkpoint/restore subsystem (sim/snapshot).

// WaySnap is one serializable TLB way.
type WaySnap struct {
	Valid bool
	Tr    Translation
	LRU   uint64
}

// TLBSnap is the serializable state of one TLB. Ways is set-major:
// Ways[set*WaysPerSet+way].
type TLBSnap struct {
	Sets, WaysPerSet int
	Ways             []WaySnap
	Clock            uint64
	Hits             uint64
	Misses           uint64
}

// Snapshot captures the TLB's full content and statistics.
func (t *TLB) Snapshot() TLBSnap {
	wps := 0
	if len(t.sets) > 0 {
		wps = len(t.sets[0])
	}
	s := TLBSnap{
		Sets:       len(t.sets),
		WaysPerSet: wps,
		Ways:       make([]WaySnap, len(t.sets)*wps),
		Clock:      t.clock,
		Hits:       t.hits,
		Misses:     t.misses,
	}
	for si, set := range t.sets {
		for wi, w := range set {
			s.Ways[si*wps+wi] = WaySnap{Valid: w.valid, Tr: w.tr, LRU: w.lru}
		}
	}
	return s
}

// Restore overwrites the TLB's state with a snapshot taken from a TLB of
// the same geometry.
func (t *TLB) Restore(s TLBSnap) error {
	wps := 0
	if len(t.sets) > 0 {
		wps = len(t.sets[0])
	}
	if s.Sets != len(t.sets) || s.WaysPerSet != wps || len(s.Ways) != s.Sets*s.WaysPerSet {
		return fmt.Errorf("tlb %s: snapshot geometry %dx%d (%d ways), have %dx%d",
			t.name, s.Sets, s.WaysPerSet, len(s.Ways), len(t.sets), wps)
	}
	for si := range t.sets {
		for wi := range t.sets[si] {
			ws := s.Ways[si*wps+wi]
			t.sets[si][wi] = way{valid: ws.Valid, tr: ws.Tr, lru: ws.LRU}
		}
	}
	t.clock = s.Clock
	t.hits = s.Hits
	t.misses = s.Misses
	return nil
}

// UnitSnap is the serializable state of the full TLB complex.
type UnitSnap struct {
	L1D, L1I, L2 TLBSnap
}

// Snapshot captures all three TLBs.
func (u *Unit) Snapshot() UnitSnap {
	return UnitSnap{L1D: u.L1D.Snapshot(), L1I: u.L1I.Snapshot(), L2: u.L2.Snapshot()}
}

// Restore overwrites all three TLBs from a snapshot.
func (u *Unit) Restore(s UnitSnap) error {
	if err := u.L1D.Restore(s.L1D); err != nil {
		return err
	}
	if err := u.L1I.Restore(s.L1I); err != nil {
		return err
	}
	return u.L2.Restore(s.L2)
}
