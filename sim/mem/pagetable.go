package mem

import (
	"errors"
	"fmt"
)

// Page-table entry flag bits (subset of the x86-64 layout the paper
// manipulates).
const (
	FlagPresent  uint64 = 1 << 0 // P: translation valid — *the* MicroScope bit
	FlagWritable uint64 = 1 << 1 // R/W
	FlagUser     uint64 = 1 << 2 // U/S
	FlagAccessed uint64 = 1 << 5 // A: set by the walker
	FlagDirty    uint64 = 1 << 6 // D: set on write
	// FlagEnclave marks a frame as enclave-private (EPC). Not an x86 bit;
	// stands in for SGX's EPCM ownership tracking.
	FlagEnclave uint64 = 1 << 9

	ppnShift = PageShift
	ppnMask  = (uint64(1)<<40 - 1) << ppnShift
)

// Entry is a decoded page-table entry.
type Entry uint64

// Present reports the present bit.
func (e Entry) Present() bool { return uint64(e)&FlagPresent != 0 }

// Writable reports the writable bit.
func (e Entry) Writable() bool { return uint64(e)&FlagWritable != 0 }

// User reports the user-accessible bit.
func (e Entry) User() bool { return uint64(e)&FlagUser != 0 }

// Accessed reports the accessed bit.
func (e Entry) Accessed() bool { return uint64(e)&FlagAccessed != 0 }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return uint64(e)&FlagDirty != 0 }

// Enclave reports the enclave-ownership bit.
func (e Entry) Enclave() bool { return uint64(e)&FlagEnclave != 0 }

// PPN returns the physical page number the entry points at.
func (e Entry) PPN() uint64 { return (uint64(e) & ppnMask) >> ppnShift }

// WithPPN returns the entry with its PPN replaced.
func (e Entry) WithPPN(ppn uint64) Entry {
	return Entry(uint64(e)&^ppnMask | ppn<<ppnShift&ppnMask)
}

// WithFlags returns the entry with the given flag bits set.
func (e Entry) WithFlags(flags uint64) Entry { return e | Entry(flags) }

// ClearFlags returns the entry with the given flag bits cleared.
func (e Entry) ClearFlags(flags uint64) Entry { return e &^ Entry(flags) }

// String renders the entry for diagnostics.
func (e Entry) String() string {
	return fmt.Sprintf("Entry{ppn=%#x p=%t w=%t u=%t a=%t d=%t encl=%t}",
		e.PPN(), e.Present(), e.Writable(), e.User(), e.Accessed(), e.Dirty(), e.Enclave())
}

// Level identifies a page-table level, outermost first, matching the
// paper's Figure 2 terminology.
type Level int

// Page-table levels.
const (
	PGD Level = iota // Page Global Directory (root, CR3 target)
	PUD              // Page Upper Directory
	PMD              // Page Middle Directory
	PTE              // leaf Page Table Entry
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case PGD:
		return "PGD"
	case PUD:
		return "PUD"
	case PMD:
		return "PMD"
	case PTE:
		return "PTE"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// IndexFor returns the table index used at the given level for virtual
// address va: bits 47-39 (PGD), 38-30 (PUD), 29-21 (PMD), 20-12 (PTE).
func IndexFor(l Level, va Addr) uint64 {
	shift := PageShift + 9*(Levels-1-int(l))
	return (va >> shift) & (EntriesPerTable - 1)
}

// WalkStep describes one level of a completed or attempted page walk:
// which entry was consulted, where it lives in physical memory, and its
// value. The Replayer uses EntryAddr to flush exactly the four cache lines
// holding the translation (paper §4.1.1 step list).
type WalkStep struct {
	Level     Level
	EntryAddr Addr  // physical address of the entry consulted
	Entry     Entry // value read
}

// Fault describes a failed translation.
type Fault struct {
	VA    Addr
	Level Level // level at which the walk failed
	Write bool
}

func (f *Fault) Error() string {
	return fmt.Sprintf("page fault at va=%#x (level %s, write=%t)", f.VA, f.Level, f.Write)
}

// ErrNoTranslation is returned by Translate when the mapping is absent.
var ErrNoTranslation = errors.New("mem: no translation")

// AddressSpace is a process (or enclave host) address space rooted at a
// PGD frame, analogous to a CR3 value.
type AddressSpace struct {
	phys *PhysMem
	root uint64 // PPN of the PGD
	pcid uint16
}

// NewAddressSpace allocates a fresh PGD in phys and returns the space.
func NewAddressSpace(phys *PhysMem, pcid uint16) (*AddressSpace, error) {
	root, err := phys.AllocFrame()
	if err != nil {
		return nil, err
	}
	return &AddressSpace{phys: phys, root: root, pcid: pcid}, nil
}

// Root returns the PPN of the PGD (the CR3 value >> PageShift).
func (as *AddressSpace) Root() uint64 { return as.root }

// PCID returns the process-context identifier used to tag TLB entries.
func (as *AddressSpace) PCID() uint16 { return as.pcid }

// Phys returns the underlying physical memory.
func (as *AddressSpace) Phys() *PhysMem { return as.phys }

// entryAddr returns the physical address of the entry for va at level l,
// given the PPN of the table at that level.
func entryAddr(tablePPN uint64, l Level, va Addr) Addr {
	return tablePPN<<PageShift + IndexFor(l, va)*EntrySize
}

// Map installs a translation va -> ppn with the given flag bits
// (FlagPresent is implied). Intermediate tables are allocated on demand
// with Present|Writable|User so that leaf permissions govern access.
func (as *AddressSpace) Map(va Addr, ppn uint64, flags uint64) error {
	tablePPN := as.root
	for l := PGD; l < PTE; l++ {
		ea := entryAddr(tablePPN, l, va)
		e := Entry(as.phys.Read64(ea))
		if !e.Present() {
			newPPN, err := as.phys.AllocFrame()
			if err != nil {
				return fmt.Errorf("mem: mapping %#x: %w", va, err)
			}
			e = Entry(FlagPresent | FlagWritable | FlagUser).WithPPN(newPPN)
			as.phys.Write64(ea, uint64(e))
		}
		tablePPN = e.PPN()
	}
	leaf := entryAddr(tablePPN, PTE, va)
	as.phys.Write64(leaf, uint64(Entry(flags|FlagPresent).WithPPN(ppn)))
	return nil
}

// MapNew allocates a fresh frame and maps va to it, returning the PPN.
func (as *AddressSpace) MapNew(va Addr, flags uint64) (uint64, error) {
	ppn, err := as.phys.AllocFrame()
	if err != nil {
		return 0, err
	}
	if err := as.Map(va, ppn, flags); err != nil {
		return 0, err
	}
	return ppn, nil
}

// Unmap clears the leaf entry for va. Intermediate tables are retained.
func (as *AddressSpace) Unmap(va Addr) error {
	steps, err := as.Walk(va)
	if err != nil {
		return err
	}
	as.phys.Write64(steps[PTE].EntryAddr, 0)
	return nil
}

// Walk performs a software page walk (the same steps the hardware walker
// takes, without cache modelling) and returns the entry consulted at each
// level. If the walk fails at some level, the returned error is a *Fault
// and steps contains the levels traversed so far, including the failing
// one. This is the primitive the MicroScope module uses to locate the
// pgd_t/pud_t/pmd_t/pte_t of a replay handle (paper §5.2.2, operation 1).
func (as *AddressSpace) Walk(va Addr) (steps []WalkStep, err error) {
	steps = make([]WalkStep, 0, int(PTE)+1)
	tablePPN := as.root
	for l := PGD; l <= PTE; l++ {
		ea := entryAddr(tablePPN, l, va)
		e := Entry(as.phys.Read64(ea))
		steps = append(steps, WalkStep{Level: l, EntryAddr: ea, Entry: e})
		if !e.Present() {
			return steps, &Fault{VA: va, Level: l}
		}
		tablePPN = e.PPN()
	}
	return steps, nil
}

// Translate returns the physical address for va, or a *Fault error. It
// repeats Walk's traversal inline rather than collecting steps: both it
// and LeafEntry sit on the simulator's per-access path, where the steps
// slice was a measurable per-walk heap allocation.
func (as *AddressSpace) Translate(va Addr) (Addr, error) {
	tablePPN := as.root
	for l := PGD; l <= PTE; l++ {
		ea := entryAddr(tablePPN, l, va)
		e := Entry(as.phys.Read64(ea))
		if !e.Present() {
			return 0, &Fault{VA: va, Level: l}
		}
		tablePPN = e.PPN()
	}
	return tablePPN<<PageShift | PageOffset(va), nil
}

// LeafEntry returns the leaf PTE for va along with its physical address.
// Unlike Walk it requires all intermediate levels to be present but
// tolerates a non-present leaf, which is exactly the state a MicroScope'd
// page is in mid-attack.
func (as *AddressSpace) LeafEntry(va Addr) (Entry, Addr, error) {
	tablePPN := as.root
	for l := PGD; l < PTE; l++ {
		ea := entryAddr(tablePPN, l, va)
		e := Entry(as.phys.Read64(ea))
		if !e.Present() {
			return 0, 0, &Fault{VA: va, Level: l}
		}
		tablePPN = e.PPN()
	}
	ea := entryAddr(tablePPN, PTE, va)
	return Entry(as.phys.Read64(ea)), ea, nil
}

// SetPresent sets or clears the present bit of the leaf PTE for va. It
// returns the physical address of the modified entry so the caller can
// flush it from the cache hierarchy. This is MicroScope's core mutation
// (paper §4.1.1 step 2 and §4.1.4 step 5).
func (as *AddressSpace) SetPresent(va Addr, present bool) (Addr, error) {
	e, ea, err := as.LeafEntry(va)
	if err != nil {
		return 0, err
	}
	if e == 0 {
		return 0, fmt.Errorf("mem: SetPresent(%#x): no mapping installed", va)
	}
	if present {
		e = e.WithFlags(FlagPresent)
	} else {
		e = e.ClearFlags(FlagPresent)
	}
	as.phys.Write64(ea, uint64(e))
	return ea, nil
}

// ClearAccessedDirty clears the A/D bits of the leaf PTE for va (used by
// the Sneaky-Page-Monitoring style observations in tests).
func (as *AddressSpace) ClearAccessedDirty(va Addr) error {
	e, ea, err := as.LeafEntry(va)
	if err != nil {
		return err
	}
	as.phys.Write64(ea, uint64(e.ClearFlags(FlagAccessed|FlagDirty)))
	return nil
}

// WriteVirt writes b at virtual address va, which must be mapped.
func (as *AddressSpace) WriteVirt(va Addr, b []byte) error {
	for len(b) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		n := PageSize - PageOffset(va)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		as.phys.WriteBytes(pa, b[:n])
		b = b[n:]
		va += n
	}
	return nil
}

// ReadVirt reads n bytes at virtual address va, which must be mapped.
func (as *AddressSpace) ReadVirt(va Addr, n uint64) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return nil, err
		}
		chunk := PageSize - PageOffset(va)
		if n < chunk {
			chunk = n
		}
		out = append(out, as.phys.ReadBytes(pa, chunk)...)
		n -= chunk
		va += chunk
	}
	return out, nil
}

// Write64Virt writes a 64-bit value at virtual address va.
func (as *AddressSpace) Write64Virt(va Addr, v uint64) error {
	pa, err := as.Translate(va)
	if err != nil {
		return err
	}
	as.phys.Write64(pa, v)
	return nil
}

// Read64Virt reads a 64-bit value at virtual address va.
func (as *AddressSpace) Read64Virt(va Addr) (uint64, error) {
	pa, err := as.Translate(va)
	if err != nil {
		return 0, err
	}
	return as.phys.Read64(pa), nil
}
