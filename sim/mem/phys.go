// Package mem implements the simulated physical memory and the x86-64
// style 4-level page tables the MicroScope attack manipulates.
//
// Page tables live inside the simulated physical memory, so the hardware
// page walker (sim/cpu) performs real memory reads for each level — reads
// that hit or miss in the simulated cache hierarchy. That property is what
// lets the Replayer tune page-walk duration by flushing or pre-warming
// individual page-table entries (paper §4.1.2).
package mem

import (
	"encoding/binary"
	"fmt"
)

// Architectural constants (matching x86-64 4K paging).
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a page/frame in bytes.
	PageSize = 1 << PageShift
	// PageMask extracts the page offset of an address.
	PageMask = PageSize - 1
	// EntrySize is the size of one page-table entry in bytes.
	EntrySize = 8
	// EntriesPerTable is the number of entries per page-table page.
	EntriesPerTable = PageSize / EntrySize
	// Levels is the number of page-table levels (PGD, PUD, PMD, PTE).
	Levels = 4
)

// Chunked backing-store geometry. A rig boots a 64 MB physical memory but
// touches only a few hundred KB of it; allocating (and zeroing) the full
// array up front was ~30% of benchmark wall time. Chunks are allocated on
// first write; a nil chunk reads as zeros.
const (
	chunkShift = 16 // 64 KB chunks
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// Addr is a virtual or physical byte address.
type Addr = uint64

// PageNum returns the page/frame number containing addr.
func PageNum(a Addr) uint64 { return a >> PageShift }

// PageBase returns the base address of the page containing addr.
func PageBase(a Addr) Addr { return a &^ uint64(PageMask) }

// PageOffset returns the offset of addr within its page.
func PageOffset(a Addr) uint64 { return a & PageMask }

// PhysMem is a flat, byte-addressable physical memory with a frame
// allocator. The byte array is stored as lazily-allocated fixed-size
// chunks so that booting a large machine costs only the bytes actually
// touched; semantically it is indistinguishable from one contiguous
// zero-initialized array of Size() bytes (bounds checks, wild transient
// accesses and snapshots all see the full size). The zero value is
// unusable; use NewPhysMem.
type PhysMem struct {
	chunks    [][]byte // len(chunks) == size/chunkSize; nil chunk == all zero
	size      uint64
	nextFrame uint64
	freeList  []uint64

	// Replay-memo recording hooks (nil when no recording is active):
	// every access is reported as the 8-byte-aligned word(s) it covers,
	// so the cpu memo's read/write sets are word-granular.
	onRead  func(pa Addr) //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	onWrite func(pa Addr) //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
}

// SetMemoHooks installs the access-observation hooks (nil detaches).
func (m *PhysMem) SetMemoHooks(onRead, onWrite func(pa Addr)) {
	m.onRead = onRead
	m.onWrite = onWrite
}

// noteRead reports the aligned words covering [pa, pa+n) to the read
// hook. Callers check m.onRead != nil first to keep the hot path free of
// a call.
func (m *PhysMem) noteRead(pa Addr, n uint64) {
	for a := pa &^ 7; a < pa+n; a += 8 {
		m.onRead(a)
	}
}

// noteWrite is noteRead's write-side counterpart.
func (m *PhysMem) noteWrite(pa Addr, n uint64) {
	for a := pa &^ 7; a < pa+n; a += 8 {
		m.onWrite(a)
	}
}

// NewPhysMem returns a physical memory of the given size, which must be a
// positive multiple of PageSize.
func NewPhysMem(size uint64) *PhysMem {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("mem: size %d is not a positive multiple of %d", size, PageSize))
	}
	nChunks := (size + chunkSize - 1) / chunkSize
	return &PhysMem{chunks: make([][]byte, nChunks), size: size}
}

// Size returns the memory size in bytes.
func (m *PhysMem) Size() uint64 { return m.size }

// Frames returns the total number of frames.
func (m *PhysMem) Frames() uint64 { return m.Size() / PageSize }

// AllocFrame allocates a zeroed physical frame and returns its frame
// number (PPN).
func (m *PhysMem) AllocFrame() (uint64, error) {
	if n := len(m.freeList); n > 0 {
		ppn := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		m.zeroFrame(ppn)
		return ppn, nil
	}
	if m.nextFrame >= m.Frames() {
		return 0, fmt.Errorf("mem: out of physical frames (%d allocated)", m.nextFrame)
	}
	ppn := m.nextFrame
	m.nextFrame++
	return ppn, nil
}

// FreeFrame returns a frame to the allocator.
func (m *PhysMem) FreeFrame(ppn uint64) {
	m.freeList = append(m.freeList, ppn)
}

// AllocatedFrames returns the number of frames currently handed out.
func (m *PhysMem) AllocatedFrames() uint64 {
	return m.nextFrame - uint64(len(m.freeList))
}

func (m *PhysMem) zeroFrame(ppn uint64) {
	base := ppn << PageShift
	// A page never straddles chunks (chunkSize is a multiple of PageSize).
	if c := m.chunks[base>>chunkShift]; c != nil {
		off := base & chunkMask
		clear(c[off : off+PageSize])
	}
}

// chunkFor returns the chunk holding pa, allocating it if needed (write
// paths).
func (m *PhysMem) chunkFor(pa Addr) []byte {
	i := pa >> chunkShift
	c := m.chunks[i]
	if c == nil {
		c = make([]byte, chunkSize)
		m.chunks[i] = c
	}
	return c
}

func (m *PhysMem) check(pa Addr, n uint64) {
	if pa+n > m.Size() || pa+n < pa {
		panic(fmt.Sprintf("mem: physical access [%#x,%#x) outside memory of size %#x", pa, pa+n, m.Size()))
	}
}

// Peek64 reads a 64-bit value like Read64 but without reporting to the
// memo hooks: the memo machinery itself reads memory while its recording
// hooks are installed, and must not observe its own probes.
func (m *PhysMem) Peek64(pa Addr) uint64 {
	m.check(pa, 8)
	if off := pa & chunkMask; off <= chunkSize-8 {
		c := m.chunks[pa>>chunkShift]
		if c == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(c[off:])
	}
	var b [8]byte
	m.readSlow(pa, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Read64 reads a 64-bit little-endian value at physical address pa.
func (m *PhysMem) Read64(pa Addr) uint64 {
	m.check(pa, 8)
	if m.onRead != nil {
		m.noteRead(pa, 8)
	}
	if off := pa & chunkMask; off <= chunkSize-8 {
		c := m.chunks[pa>>chunkShift]
		if c == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(c[off:])
	}
	var b [8]byte
	m.readSlow(pa, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Write64 writes a 64-bit little-endian value at physical address pa.
func (m *PhysMem) Write64(pa Addr, v uint64) {
	m.check(pa, 8)
	if m.onWrite != nil {
		m.noteWrite(pa, 8)
	}
	if off := pa & chunkMask; off <= chunkSize-8 {
		binary.LittleEndian.PutUint64(m.chunkFor(pa)[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.writeSlow(pa, b[:])
}

// Read32 reads a 32-bit little-endian value at physical address pa.
func (m *PhysMem) Read32(pa Addr) uint32 {
	m.check(pa, 4)
	if m.onRead != nil {
		m.noteRead(pa, 4)
	}
	if off := pa & chunkMask; off <= chunkSize-4 {
		c := m.chunks[pa>>chunkShift]
		if c == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(c[off:])
	}
	var b [4]byte
	m.readSlow(pa, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Write32 writes a 32-bit little-endian value at physical address pa.
func (m *PhysMem) Write32(pa Addr, v uint32) {
	m.check(pa, 4)
	if m.onWrite != nil {
		m.noteWrite(pa, 4)
	}
	if off := pa & chunkMask; off <= chunkSize-4 {
		binary.LittleEndian.PutUint32(m.chunkFor(pa)[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.writeSlow(pa, b[:])
}

// ByteAt reads the byte at physical address pa.
func (m *PhysMem) ByteAt(pa Addr) byte {
	m.check(pa, 1)
	if m.onRead != nil {
		m.noteRead(pa, 1)
	}
	c := m.chunks[pa>>chunkShift]
	if c == nil {
		return 0
	}
	return c[pa&chunkMask]
}

// SetByte writes the byte at physical address pa.
func (m *PhysMem) SetByte(pa Addr, v byte) {
	m.check(pa, 1)
	if m.onWrite != nil {
		m.noteWrite(pa, 1)
	}
	m.chunkFor(pa)[pa&chunkMask] = v
}

// readSlow copies len(out) bytes starting at pa, crossing chunk
// boundaries as needed. Bounds must already be checked.
func (m *PhysMem) readSlow(pa Addr, out []byte) {
	for len(out) > 0 {
		off := pa & chunkMask
		n := uint64(len(out))
		if avail := uint64(chunkSize) - off; n > avail {
			n = avail
		}
		if c := m.chunks[pa>>chunkShift]; c != nil {
			copy(out[:n], c[off:off+n])
		} else {
			clear(out[:n])
		}
		out = out[n:]
		pa += n
	}
}

// writeSlow copies b into memory starting at pa, crossing chunk
// boundaries as needed. Bounds must already be checked.
func (m *PhysMem) writeSlow(pa Addr, b []byte) {
	for len(b) > 0 {
		off := pa & chunkMask
		n := uint64(len(b))
		if avail := uint64(chunkSize) - off; n > avail {
			n = avail
		}
		copy(m.chunkFor(pa)[off:off+n], b[:n])
		b = b[n:]
		pa += n
	}
}

// ReadBytes copies n bytes starting at pa.
func (m *PhysMem) ReadBytes(pa Addr, n uint64) []byte {
	m.check(pa, n)
	if m.onRead != nil && n > 0 {
		m.noteRead(pa, n)
	}
	out := make([]byte, n)
	m.readSlow(pa, out)
	return out
}

// WriteBytes copies b into memory starting at pa.
func (m *PhysMem) WriteBytes(pa Addr, b []byte) {
	m.check(pa, uint64(len(b)))
	if m.onWrite != nil && len(b) > 0 {
		m.noteWrite(pa, uint64(len(b)))
	}
	m.writeSlow(pa, b)
}
