// Package mem implements the simulated physical memory and the x86-64
// style 4-level page tables the MicroScope attack manipulates.
//
// Page tables live inside the simulated physical memory, so the hardware
// page walker (sim/cpu) performs real memory reads for each level — reads
// that hit or miss in the simulated cache hierarchy. That property is what
// lets the Replayer tune page-walk duration by flushing or pre-warming
// individual page-table entries (paper §4.1.2).
package mem

import (
	"encoding/binary"
	"fmt"
)

// Architectural constants (matching x86-64 4K paging).
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a page/frame in bytes.
	PageSize = 1 << PageShift
	// PageMask extracts the page offset of an address.
	PageMask = PageSize - 1
	// EntrySize is the size of one page-table entry in bytes.
	EntrySize = 8
	// EntriesPerTable is the number of entries per page-table page.
	EntriesPerTable = PageSize / EntrySize
	// Levels is the number of page-table levels (PGD, PUD, PMD, PTE).
	Levels = 4
)

// Addr is a virtual or physical byte address.
type Addr = uint64

// PageNum returns the page/frame number containing addr.
func PageNum(a Addr) uint64 { return a >> PageShift }

// PageBase returns the base address of the page containing addr.
func PageBase(a Addr) Addr { return a &^ uint64(PageMask) }

// PageOffset returns the offset of addr within its page.
func PageOffset(a Addr) uint64 { return a & PageMask }

// PhysMem is a flat, byte-addressable physical memory with a frame
// allocator. The zero value is unusable; use NewPhysMem.
type PhysMem struct {
	data      []byte
	nextFrame uint64
	freeList  []uint64
}

// NewPhysMem returns a physical memory of the given size, which must be a
// positive multiple of PageSize.
func NewPhysMem(size uint64) *PhysMem {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("mem: size %d is not a positive multiple of %d", size, PageSize))
	}
	return &PhysMem{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *PhysMem) Size() uint64 { return uint64(len(m.data)) }

// Frames returns the total number of frames.
func (m *PhysMem) Frames() uint64 { return m.Size() / PageSize }

// AllocFrame allocates a zeroed physical frame and returns its frame
// number (PPN).
func (m *PhysMem) AllocFrame() (uint64, error) {
	if n := len(m.freeList); n > 0 {
		ppn := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		m.zeroFrame(ppn)
		return ppn, nil
	}
	if m.nextFrame >= m.Frames() {
		return 0, fmt.Errorf("mem: out of physical frames (%d allocated)", m.nextFrame)
	}
	ppn := m.nextFrame
	m.nextFrame++
	return ppn, nil
}

// FreeFrame returns a frame to the allocator.
func (m *PhysMem) FreeFrame(ppn uint64) {
	m.freeList = append(m.freeList, ppn)
}

// AllocatedFrames returns the number of frames currently handed out.
func (m *PhysMem) AllocatedFrames() uint64 {
	return m.nextFrame - uint64(len(m.freeList))
}

func (m *PhysMem) zeroFrame(ppn uint64) {
	base := ppn << PageShift
	clear(m.data[base : base+PageSize])
}

func (m *PhysMem) check(pa Addr, n uint64) {
	if pa+n > m.Size() || pa+n < pa {
		panic(fmt.Sprintf("mem: physical access [%#x,%#x) outside memory of size %#x", pa, pa+n, m.Size()))
	}
}

// Read64 reads a 64-bit little-endian value at physical address pa.
func (m *PhysMem) Read64(pa Addr) uint64 {
	m.check(pa, 8)
	return binary.LittleEndian.Uint64(m.data[pa:])
}

// Write64 writes a 64-bit little-endian value at physical address pa.
func (m *PhysMem) Write64(pa Addr, v uint64) {
	m.check(pa, 8)
	binary.LittleEndian.PutUint64(m.data[pa:], v)
}

// Read32 reads a 32-bit little-endian value at physical address pa.
func (m *PhysMem) Read32(pa Addr) uint32 {
	m.check(pa, 4)
	return binary.LittleEndian.Uint32(m.data[pa:])
}

// Write32 writes a 32-bit little-endian value at physical address pa.
func (m *PhysMem) Write32(pa Addr, v uint32) {
	m.check(pa, 4)
	binary.LittleEndian.PutUint32(m.data[pa:], v)
}

// ByteAt reads the byte at physical address pa.
func (m *PhysMem) ByteAt(pa Addr) byte {
	m.check(pa, 1)
	return m.data[pa]
}

// SetByte writes the byte at physical address pa.
func (m *PhysMem) SetByte(pa Addr, v byte) {
	m.check(pa, 1)
	m.data[pa] = v
}

// ReadBytes copies n bytes starting at pa.
func (m *PhysMem) ReadBytes(pa Addr, n uint64) []byte {
	m.check(pa, n)
	out := make([]byte, n)
	copy(out, m.data[pa:pa+n])
	return out
}

// WriteBytes copies b into memory starting at pa.
func (m *PhysMem) WriteBytes(pa Addr, b []byte) {
	m.check(pa, uint64(len(b)))
	copy(m.data[pa:], b)
}
