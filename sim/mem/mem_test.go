package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPhysMemReadWrite(t *testing.T) {
	m := NewPhysMem(16 * PageSize)
	m.Write64(0x100, 0xdeadbeefcafebabe)
	if got := m.Read64(0x100); got != 0xdeadbeefcafebabe {
		t.Errorf("Read64 = %#x", got)
	}
	m.Write32(0x200, 0x12345678)
	if got := m.Read32(0x200); got != 0x12345678 {
		t.Errorf("Read32 = %#x", got)
	}
	m.SetByte(0x300, 0xab)
	if got := m.ByteAt(0x300); got != 0xab {
		t.Errorf("ReadByte = %#x", got)
	}
	m.WriteBytes(0x400, []byte{1, 2, 3, 4})
	if got := m.ReadBytes(0x400, 4); got[0] != 1 || got[3] != 4 {
		t.Errorf("ReadBytes = %v", got)
	}
}

func TestPhysMemLittleEndian(t *testing.T) {
	m := NewPhysMem(PageSize)
	m.Write64(0, 0x0102030405060708)
	if m.ByteAt(0) != 0x08 || m.ByteAt(7) != 0x01 {
		t.Error("Write64 is not little-endian")
	}
}

func TestPhysMemBoundsPanic(t *testing.T) {
	m := NewPhysMem(PageSize)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Read64(PageSize - 4)
}

func TestNewPhysMemRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-page-multiple size did not panic")
		}
	}()
	NewPhysMem(PageSize + 1)
}

func TestFrameAllocator(t *testing.T) {
	m := NewPhysMem(4 * PageSize)
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		ppn, err := m.AllocFrame()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[ppn] {
			t.Fatalf("frame %d allocated twice", ppn)
		}
		seen[ppn] = true
	}
	if _, err := m.AllocFrame(); err == nil {
		t.Error("allocation beyond capacity succeeded")
	}
	m.FreeFrame(2)
	ppn, err := m.AllocFrame()
	if err != nil || ppn != 2 {
		t.Errorf("realloc after free = %d, %v; want 2, nil", ppn, err)
	}
	if m.AllocatedFrames() != 4 {
		t.Errorf("AllocatedFrames = %d, want 4", m.AllocatedFrames())
	}
}

func TestFreedFrameIsZeroed(t *testing.T) {
	m := NewPhysMem(2 * PageSize)
	ppn, _ := m.AllocFrame()
	m.Write64(ppn<<PageShift, 0xffff)
	m.FreeFrame(ppn)
	ppn2, _ := m.AllocFrame()
	if ppn2 != ppn {
		t.Fatalf("free list not reused: got %d", ppn2)
	}
	if m.Read64(ppn<<PageShift) != 0 {
		t.Error("reallocated frame not zeroed")
	}
}

func TestEntryBits(t *testing.T) {
	e := Entry(0).WithPPN(0x1234).WithFlags(FlagPresent | FlagWritable | FlagEnclave)
	if !e.Present() || !e.Writable() || e.User() || !e.Enclave() {
		t.Errorf("flag decode wrong: %s", e)
	}
	if e.PPN() != 0x1234 {
		t.Errorf("PPN = %#x, want 0x1234", e.PPN())
	}
	e = e.ClearFlags(FlagPresent)
	if e.Present() {
		t.Error("ClearFlags did not clear present")
	}
	if e.PPN() != 0x1234 {
		t.Error("ClearFlags corrupted PPN")
	}
}

func TestEntryPPNRoundTrip(t *testing.T) {
	f := func(ppn uint64, flags uint8) bool {
		ppn &= 1<<40 - 1
		e := Entry(uint64(flags)).WithPPN(ppn)
		return e.PPN() == ppn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexFor(t *testing.T) {
	// va with distinct indices at each level.
	va := Addr(0)
	va |= 5 << 39  // PGD index 5
	va |= 17 << 30 // PUD index 17
	va |= 33 << 21 // PMD index 33
	va |= 77 << 12 // PTE index 77
	va |= 123      // offset

	if got := IndexFor(PGD, va); got != 5 {
		t.Errorf("PGD index = %d", got)
	}
	if got := IndexFor(PUD, va); got != 17 {
		t.Errorf("PUD index = %d", got)
	}
	if got := IndexFor(PMD, va); got != 33 {
		t.Errorf("PMD index = %d", got)
	}
	if got := IndexFor(PTE, va); got != 77 {
		t.Errorf("PTE index = %d", got)
	}
}

func newSpace(t *testing.T, frames uint64) *AddressSpace {
	t.Helper()
	m := NewPhysMem(frames * PageSize)
	as, err := NewAddressSpace(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestMapTranslate(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x4000_1000)
	ppn, err := as.MapNew(va, FlagWritable|FlagUser)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := as.Translate(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	want := ppn<<PageShift | 0x123
	if pa != want {
		t.Errorf("Translate = %#x, want %#x", pa, want)
	}
}

func TestTranslateUnmappedFaults(t *testing.T) {
	as := newSpace(t, 64)
	_, err := as.Translate(0x9999_0000)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if f.Level != PGD {
		t.Errorf("fault level = %s, want PGD (nothing mapped)", f.Level)
	}
}

func TestWalkReturnsFourLevels(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x7f00_2000)
	if _, err := as.MapNew(va, FlagUser); err != nil {
		t.Fatal(err)
	}
	steps, err := as.Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != Levels {
		t.Fatalf("walk returned %d steps, want %d", len(steps), Levels)
	}
	for i, s := range steps {
		if s.Level != Level(i) {
			t.Errorf("step %d level = %s", i, s.Level)
		}
		if !s.Entry.Present() {
			t.Errorf("step %d entry not present", i)
		}
	}
	// Entry addresses must be distinct (different tables) — the Replayer
	// flushes each of the four cache lines separately.
	addrs := map[Addr]bool{}
	for _, s := range steps {
		if addrs[s.EntryAddr] {
			t.Errorf("duplicate entry address %#x", s.EntryAddr)
		}
		addrs[s.EntryAddr] = true
	}
}

func TestSetPresentRoundTrip(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x1000_0000)
	if _, err := as.MapNew(va, FlagUser|FlagWritable); err != nil {
		t.Fatal(err)
	}
	ea, err := as.SetPresent(va, false)
	if err != nil {
		t.Fatal(err)
	}
	if ea == 0 {
		t.Fatal("SetPresent returned zero entry address")
	}

	// Translation must now fault at the PTE level, as in the paper.
	_, err = as.Translate(va)
	var f *Fault
	if !errors.As(err, &f) || f.Level != PTE {
		t.Fatalf("after clearing present: err = %v, want PTE fault", err)
	}

	// The mapping (PPN) must be intact: restore and translate again.
	if _, err := as.SetPresent(va, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(va); err != nil {
		t.Errorf("translate after restore: %v", err)
	}
}

func TestSetPresentOnUnmappedFails(t *testing.T) {
	as := newSpace(t, 64)
	if _, err := as.SetPresent(0x5000_0000, false); err == nil {
		t.Error("SetPresent on unmapped va succeeded")
	}
}

func TestLeafEntryToleratesNonPresentLeaf(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x2000_0000)
	ppn, err := as.MapNew(va, FlagUser)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.SetPresent(va, false); err != nil {
		t.Fatal(err)
	}
	e, _, err := as.LeafEntry(va)
	if err != nil {
		t.Fatal(err)
	}
	if e.Present() {
		t.Error("leaf still present")
	}
	if e.PPN() != ppn {
		t.Errorf("leaf PPN = %#x, want %#x (mapping must survive)", e.PPN(), ppn)
	}
}

func TestUnmap(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x3000_0000)
	if _, err := as.MapNew(va, FlagUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(va); err == nil {
		t.Error("translate succeeded after unmap")
	}
}

func TestVirtReadWriteCrossPage(t *testing.T) {
	as := newSpace(t, 64)
	base := Addr(0x6000_0000)
	for i := uint64(0); i < 2; i++ {
		if _, err := as.MapNew(base+i*PageSize, FlagUser|FlagWritable); err != nil {
			t.Fatal(err)
		}
	}
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := base + PageSize - 50 // straddles the page boundary
	if err := as.WriteVirt(start, data[:100]); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadVirt(start, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestWrite64Read64Virt(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0x8000_0000)
	if _, err := as.MapNew(va, FlagUser|FlagWritable); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64Virt(va+8, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	v, err := as.Read64Virt(va + 8)
	if err != nil || v != 0xfeedface {
		t.Errorf("Read64Virt = %#x, %v", v, err)
	}
}

func TestDistinctSpacesAreIsolated(t *testing.T) {
	m := NewPhysMem(128 * PageSize)
	as1, err := NewAddressSpace(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	as2, err := NewAddressSpace(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	va := Addr(0x1234_5000)
	if _, err := as1.MapNew(va, FlagUser|FlagWritable); err != nil {
		t.Fatal(err)
	}
	if _, err := as2.Translate(va); err == nil {
		t.Error("mapping leaked across address spaces")
	}
	if as1.PCID() == as2.PCID() {
		t.Error("PCIDs collide")
	}
}

func TestClearAccessedDirty(t *testing.T) {
	as := newSpace(t, 64)
	va := Addr(0xaaaa_0000)
	if _, err := as.MapNew(va, FlagUser|FlagAccessed|FlagDirty); err != nil {
		t.Fatal(err)
	}
	if err := as.ClearAccessedDirty(va); err != nil {
		t.Fatal(err)
	}
	e, _, err := as.LeafEntry(va)
	if err != nil {
		t.Fatal(err)
	}
	if e.Accessed() || e.Dirty() {
		t.Errorf("A/D not cleared: %s", e)
	}
}

func TestPageHelpers(t *testing.T) {
	a := Addr(0x12345)
	if PageNum(a) != 0x12 {
		t.Errorf("PageNum = %#x", PageNum(a))
	}
	if PageBase(a) != 0x12000 {
		t.Errorf("PageBase = %#x", PageBase(a))
	}
	if PageOffset(a) != 0x345 {
		t.Errorf("PageOffset = %#x", PageOffset(a))
	}
}

// Property: Map then Translate is the identity on page numbers for
// arbitrary canonical virtual pages.
func TestMapTranslateProperty(t *testing.T) {
	m := NewPhysMem(4096 * PageSize)
	as, err := NewAddressSpace(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vpnRaw uint64, off uint16) bool {
		vpn := vpnRaw & (1<<36 - 1) // canonical 48-bit va
		va := vpn<<PageShift | uint64(off)&PageMask
		ppn, err := as.MapNew(PageBase(va), FlagUser)
		if err != nil {
			return false
		}
		pa, err := as.Translate(va)
		if err != nil {
			return false
		}
		return pa == ppn<<PageShift|PageOffset(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
