package mem

import (
	"encoding/binary"
	"testing"
)

// naiveLookup is an independent 4-level lookup written directly against
// the radix-tree layout: raw Read64 of root<<PageShift + index*EntrySize
// at each level, no shared helpers beyond IndexFor. It is the oracle the
// hardware-style walker must agree with.
func naiveLookup(as *AddressSpace, va Addr) (pa Addr, faultLevel Level, faulted bool) {
	table := as.root
	for l := PGD; l <= PTE; l++ {
		idx := IndexFor(l, va)
		e := Entry(as.phys.Read64(table<<PageShift + idx*EntrySize))
		if !e.Present() {
			return 0, l, true
		}
		table = e.PPN()
	}
	return table<<PageShift | va&PageMask, 0, false
}

// FuzzPageTableWalk replays an arbitrary sequence of map/unmap/
// clear-present operations (the exact mutations the MicroScope replayer
// performs on a handle's PTE) and cross-checks Walk/Translate against
// naiveLookup for every address the sequence touched.
func FuzzPageTableWalk(f *testing.F) {
	mk := func(ops ...uint64) []byte {
		b := make([]byte, 0, len(ops)/2*9)
		for i := 0; i+1 < len(ops); i += 2 {
			b = append(b, byte(ops[i]))
			b = binary.LittleEndian.AppendUint64(b, ops[i+1])
		}
		return b
	}
	f.Add(mk(0, 0x0100_0000, 3, 0x0100_0000))                                // map then query
	f.Add(mk(0, 0x0100_0000, 1, 0x0100_0000, 3, 0x0100_0000))                // map, unmap, query
	f.Add(mk(0, 0x0100_0000, 2, 0x0100_0000, 3, 0x0100_0000))                // map, clear present (replay handle state)
	f.Add(mk(3, 0xdead_beef_f000))                                           // query unmapped high VA
	f.Add(mk(0, 0x7fff_ffff_f000, 0, 0x7fff_ffff_e000, 3, 0x7fff_ffff_f123)) // adjacent leaves
	f.Add(mk(0, 0, 3, 0xfff))                                                // page zero, offset query

	f.Fuzz(func(t *testing.T, data []byte) {
		phys := NewPhysMem(4 << 20)
		as, err := NewAddressSpace(phys, 1)
		if err != nil {
			t.Fatal(err)
		}
		const vaMask = uint64(1)<<(PageShift+9*Levels) - 1 // canonical 48-bit VAs
		var touched []Addr
		for i := 0; i+9 <= len(data) && len(touched) < 128; i += 9 {
			op := data[i]
			va := binary.LittleEndian.Uint64(data[i+1:i+9]) & vaMask
			switch op % 4 {
			case 0:
				// May fail when the 1024-frame physical memory runs out;
				// the walker must still agree with the oracle afterwards.
				_, _ = as.MapNew(va, FlagWritable|FlagUser)
			case 1:
				_ = as.Unmap(va)
			case 2:
				_, _ = as.SetPresent(va, false)
			case 3:
				// pure query, recorded below like every other op
			}
			touched = append(touched, va)
		}

		for _, va := range touched {
			wantPA, wantLevel, wantFault := naiveLookup(as, va)

			steps, werr := as.Walk(va)
			pa, terr := as.Translate(va)
			if wantFault {
				fault, ok := werr.(*Fault)
				if !ok {
					t.Fatalf("va %#x: oracle faults at %s, Walk returned %v", va, wantLevel, werr)
				}
				if fault.Level != wantLevel {
					t.Fatalf("va %#x: fault level %s, oracle says %s", va, fault.Level, wantLevel)
				}
				if len(steps) != int(wantLevel)+1 {
					t.Fatalf("va %#x: %d steps for a fault at %s", va, len(steps), wantLevel)
				}
				if terr == nil {
					t.Fatalf("va %#x: Translate succeeded where oracle faults", va)
				}
				continue
			}
			if werr != nil {
				t.Fatalf("va %#x: Walk failed (%v) where oracle translates to %#x", va, werr, wantPA)
			}
			if terr != nil {
				t.Fatalf("va %#x: Translate failed (%v) where oracle translates to %#x", va, terr, wantPA)
			}
			if pa != wantPA {
				t.Fatalf("va %#x: Translate=%#x, oracle=%#x", va, pa, wantPA)
			}
			if len(steps) != Levels {
				t.Fatalf("va %#x: complete walk has %d steps, want %d", va, len(steps), Levels)
			}
			// The walk's own leaf must reproduce the translation, and the
			// entry addresses must match the radix-tree arithmetic.
			if got := steps[PTE].Entry.PPN()<<PageShift | PageOffset(va); got != wantPA {
				t.Fatalf("va %#x: leaf step implies %#x, oracle=%#x", va, got, wantPA)
			}
			table := as.root
			for l := PGD; l <= PTE; l++ {
				wantEA := table<<PageShift + IndexFor(l, va)*EntrySize
				if steps[l].EntryAddr != wantEA {
					t.Fatalf("va %#x level %s: EntryAddr=%#x, want %#x", va, l, steps[l].EntryAddr, wantEA)
				}
				table = steps[l].Entry.PPN()
			}
			if pa >= phys.Size() {
				t.Fatalf("va %#x: translated PA %#x outside physical memory", va, pa)
			}
		}
	})
}
