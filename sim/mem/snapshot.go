package mem

import "fmt"

// PhysSnap is the serializable state of a PhysMem. Data holds only the
// allocated prefix (frames [0, NextFrame)): never-allocated frames are
// all-zero by the PhysMem invariant, so a 64 MB machine that has touched
// a few hundred KB snapshots in a few hundred KB.
type PhysSnap struct {
	Size      uint64 // total physical memory size in bytes
	NextFrame uint64
	FreeList  []uint64
	Data      []byte // data[:NextFrame*PageSize]
}

// Snapshot captures the allocated prefix of physical memory plus the
// allocator state.
func (p *PhysMem) Snapshot() PhysSnap {
	return PhysSnap{
		Size:      uint64(len(p.data)),
		NextFrame: p.nextFrame,
		FreeList:  append([]uint64(nil), p.freeList...),
		Data:      append([]byte(nil), p.data[:p.nextFrame*PageSize]...),
	}
}

// Restore overwrites physical memory with a snapshot. The target must
// have the same total size. Frames the target had allocated beyond the
// snapshot's high-water mark are zeroed, re-establishing the invariant
// that never-allocated frames read as zero; frames on the free list are
// zeroed lazily by AllocFrame, as always.
func (p *PhysMem) Restore(s PhysSnap) error {
	if s.Size != uint64(len(p.data)) {
		return fmt.Errorf("mem: snapshot of %d-byte physical memory restored into %d bytes",
			s.Size, len(p.data))
	}
	if uint64(len(s.Data)) != s.NextFrame*PageSize {
		return fmt.Errorf("mem: snapshot data %d bytes, want %d for %d frames",
			len(s.Data), s.NextFrame*PageSize, s.NextFrame)
	}
	copy(p.data, s.Data)
	if p.nextFrame > s.NextFrame {
		hi := p.nextFrame * PageSize
		for i := uint64(len(s.Data)); i < hi; i++ {
			p.data[i] = 0
		}
	}
	p.nextFrame = s.NextFrame
	p.freeList = append(p.freeList[:0], s.FreeList...)
	return nil
}

// AdoptAddressSpace rebuilds an AddressSpace handle over page tables that
// already exist in phys (snapshot restore: the tables were restored as
// part of the physical memory image; only the {root, pcid} handle needs
// reconstructing).
func AdoptAddressSpace(phys *PhysMem, root uint64, pcid uint16) *AddressSpace {
	return &AddressSpace{phys: phys, root: root, pcid: pcid}
}
