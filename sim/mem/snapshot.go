package mem

import "fmt"

// PhysSnap is the serializable state of a PhysMem. Data holds only the
// allocated prefix (frames [0, NextFrame)): never-allocated frames are
// all-zero by the PhysMem invariant, so a 64 MB machine that has touched
// a few hundred KB snapshots in a few hundred KB.
type PhysSnap struct {
	Size      uint64 // total physical memory size in bytes
	NextFrame uint64
	FreeList  []uint64
	Data      []byte // data[:NextFrame*PageSize]
}

// Snapshot captures the allocated prefix of physical memory plus the
// allocator state.
func (p *PhysMem) Snapshot() PhysSnap {
	data := make([]byte, p.nextFrame*PageSize)
	p.readSlow(0, data)
	return PhysSnap{
		Size:      p.size,
		NextFrame: p.nextFrame,
		FreeList:  append([]uint64(nil), p.freeList...),
		Data:      data,
	}
}

// Restore overwrites physical memory with a snapshot. The target must
// have the same total size. Frames the target had allocated beyond the
// snapshot's high-water mark are zeroed, re-establishing the invariant
// that never-allocated frames read as zero; frames on the free list are
// zeroed lazily by AllocFrame, as always.
func (p *PhysMem) Restore(s PhysSnap) error {
	if s.Size != p.size {
		return fmt.Errorf("mem: snapshot of %d-byte physical memory restored into %d bytes",
			s.Size, p.size)
	}
	if uint64(len(s.Data)) != s.NextFrame*PageSize {
		return fmt.Errorf("mem: snapshot data %d bytes, want %d for %d frames",
			len(s.Data), s.NextFrame*PageSize, s.NextFrame)
	}
	p.writeSlow(0, s.Data)
	if p.nextFrame > s.NextFrame {
		for f := s.NextFrame; f < p.nextFrame; f++ {
			p.zeroFrame(f)
		}
	}
	p.nextFrame = s.NextFrame
	p.freeList = append(p.freeList[:0], s.FreeList...)
	return nil
}

// AdoptAddressSpace rebuilds an AddressSpace handle over page tables that
// already exist in phys (snapshot restore: the tables were restored as
// part of the physical memory image; only the {root, pcid} handle needs
// reconstructing).
func AdoptAddressSpace(phys *PhysMem, root uint64, pcid uint16) *AddressSpace {
	return &AddressSpace{phys: phys, root: root, pcid: pcid}
}
