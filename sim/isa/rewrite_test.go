package isa

import "testing"

// InsertBefore must keep branch edges pointing at the same logical
// instruction — through the inserted instruction when the target itself
// is an insertion point, so the branch edge is guarded too.
func TestInsertBeforeFixesTargets(t *testing.T) {
	p := NewBuilder().
		MovImm(R1, 5). // 0
		Beq(R1, R0, "skip").
		Mul(R2, R1, R1). // 2: fence goes before this
		Label("skip").
		Store(R2, R1, 0). // 3: and before this (branch target)
		Halt().
		MustBuild()

	q, remap, err := InsertBefore(p, []int{3, 2, 3}, Instr{Op: OpFence})
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len()+2 {
		t.Fatalf("len = %d, want %d (duplicate insertion points must collapse)", q.Len(), p.Len()+2)
	}
	if q.Instrs[2].Op != OpFence || q.Instrs[4].Op != OpFence {
		t.Fatalf("fences not at 2 and 4:\n%v", q.Instrs)
	}
	// The branch must now land on the fence guarding the store.
	if got := q.Instrs[1].Target; got != 4 {
		t.Errorf("branch target = %d, want 4 (the fence before the store)", got)
	}
	// Labels follow target semantics: they land on the guarding fence.
	if got := q.Labels["skip"]; got != 4 {
		t.Errorf("label skip = %d, want 4", got)
	}
	for old, want := range map[int]int{0: 0, 1: 1, 2: 3, 3: 5, 4: 6} {
		if got := remap(old); got != want {
			t.Errorf("remap(%d) = %d, want %d", old, got, want)
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}

func TestInsertBeforeOutOfRange(t *testing.T) {
	p := NewBuilder().Halt().MustBuild()
	if _, _, err := InsertBefore(p, []int{1}, Instr{Op: OpFence}); err == nil {
		t.Fatal("want error for out-of-range insertion point")
	}
}
