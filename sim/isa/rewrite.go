package isa

import (
	"fmt"
	"sort"
)

// InsertBefore returns a copy of p with instr inserted immediately before
// each instruction index in pcs (duplicates are collapsed), plus the
// index-remapping function from old instruction indices to new ones.
//
// Branch/txbegin targets and the label table are fixed up so the program
// computes the same function: a target t moves to t plus the number of
// insertions strictly before t — which lands branches to a patched index
// on the inserted instruction itself, so a fence guarding a block entry
// also guards the branch edge into it, not only the fall-through edge.
func InsertBefore(p *Program, pcs []int, instr Instr) (*Program, func(int) int, error) {
	n := len(p.Instrs)
	uniq := append([]int(nil), pcs...)
	sort.Ints(uniq)
	var at []int
	for i, pc := range uniq {
		if pc < 0 || pc >= n {
			return nil, nil, fmt.Errorf("isa: insertion point %d out of range [0,%d)", pc, n)
		}
		if i == 0 || pc != uniq[i-1] {
			at = append(at, pc)
		}
	}
	// shift(i) = number of insertion points < i; the new index of old
	// instruction i is i + inserted-at-or-before(i).
	before := func(i int) int { return sort.SearchInts(at, i) }
	remap := func(i int) int { return i + sort.SearchInts(at, i+1) }

	out := &Program{Instrs: make([]Instr, 0, n+len(at))}
	next := 0
	for i, in := range p.Instrs {
		if next < len(at) && at[next] == i {
			out.Instrs = append(out.Instrs, instr)
			next++
		}
		if in.Op.IsBranch() || in.Op == OpTxBegin {
			in.Target += before(in.Target)
		}
		out.Instrs = append(out.Instrs, in)
	}
	if len(p.Labels) > 0 {
		out.Labels = make(map[string]int, len(p.Labels))
		for name, idx := range p.Labels {
			out.Labels[name] = idx + before(idx)
		}
	}
	return out, remap, nil
}
