package isa

import "fmt"

// Builder constructs a Program programmatically with forward-referencing
// labels. All emit methods return the Builder for chaining. Errors (e.g.
// duplicate labels) are accumulated and reported by Build, so victim
// generators can stay free of error plumbing.
type Builder struct {
	instrs []Instr
	labels map[string]int
	// fixups maps instruction index -> unresolved label name.
	fixups map[int]string
	errs   []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.instrs) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func (b *Builder) emitTo(in Instr, label string) *Builder {
	in.Label = label
	if idx, ok := b.labels[label]; ok {
		in.Target = idx
	} else {
		b.fixups[len(b.instrs)] = label
	}
	return b.Emit(in)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(Instr{Op: OpNop}) }

// MovImm emits rd <- imm.
func (b *Builder) MovImm(rd Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpMovImm, Rd: rd, Imm: imm})
}

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs Reg) *Builder {
	return b.Emit(Instr{Op: OpMov, Rd: rd, Rs1: rs})
}

// Add emits rd <- rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AddImm emits rd <- rs1 + imm.
func (b *Builder) AddImm(rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpAddImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd <- rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd <- rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AndImm emits rd <- rs1 & imm.
func (b *Builder) AndImm(rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpAndImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// Or emits rd <- rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd <- rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd <- rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// ShlImm emits rd <- rs1 << imm.
func (b *Builder) ShlImm(rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpShlImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shr emits rd <- rs1 >> rs2 (logical).
func (b *Builder) Shr(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// ShrImm emits rd <- rs1 >> imm (logical).
func (b *Builder) ShrImm(rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpShrImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// Mul emits rd <- rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd <- rs1 / rs2 (integer; division by zero yields zero).
func (b *Builder) Div(rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FMov emits fd <- fs.
func (b *Builder) FMov(fd, fs Reg) *Builder {
	return b.Emit(Instr{Op: OpFMov, Rd: fd, Rs1: fs})
}

// FAdd emits fd <- fs1 + fs2.
func (b *Builder) FAdd(fd, fs1, fs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpFAdd, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// FMul emits fd <- fs1 * fs2.
func (b *Builder) FMul(fd, fs1, fs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpFMul, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// FDiv emits fd <- fs1 / fs2.
func (b *Builder) FDiv(fd, fs1, fs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpFDiv, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// FLoadImm emits fd <- the float64 whose IEEE-754 bits are imm.
func (b *Builder) FLoadImm(fd Reg, bits int64) *Builder {
	return b.Emit(Instr{Op: OpFLoadImm, Rd: fd, Imm: bits})
}

// Load emits rd <- mem64[rs1 + imm].
func (b *Builder) Load(rd, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpLoad, Rd: rd, Rs1: base, Imm: imm})
}

// Load32 emits rd <- zero-extended mem32[rs1 + imm].
func (b *Builder) Load32(rd, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpLoad32, Rd: rd, Rs1: base, Imm: imm})
}

// LoadF emits fd <- mem64[rs1 + imm] interpreted as float64 bits.
func (b *Builder) LoadF(fd, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpLoadF, Rd: fd, Rs1: base, Imm: imm})
}

// Store emits mem64[base + imm] <- rs.
func (b *Builder) Store(rs, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpStore, Rs2: rs, Rs1: base, Imm: imm})
}

// Store32 emits mem32[base + imm] <- low 32 bits of rs.
func (b *Builder) Store32(rs, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpStore32, Rs2: rs, Rs1: base, Imm: imm})
}

// StoreF emits mem64[base + imm] <- float bits of fs.
func (b *Builder) StoreF(fs, base Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpStoreF, Rs2: fs, Rs1: base, Imm: imm})
}

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) *Builder {
	return b.emitTo(Instr{Op: OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) *Builder {
	return b.emitTo(Instr{Op: OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) *Builder {
	return b.emitTo(Instr{Op: OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) *Builder {
	return b.emitTo(Instr{Op: OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTo(Instr{Op: OpJmp}, label)
}

// Rdtsc emits rd <- current core cycle counter.
func (b *Builder) Rdtsc(rd Reg) *Builder {
	return b.Emit(Instr{Op: OpRdtsc, Rd: rd})
}

// Rdrand emits rd <- hardware random value.
func (b *Builder) Rdrand(rd Reg) *Builder {
	return b.Emit(Instr{Op: OpRdrand, Rd: rd})
}

// Fence emits a serializing fence.
func (b *Builder) Fence() *Builder { return b.Emit(Instr{Op: OpFence}) }

// TxBegin emits a transaction start whose abort handler is at label.
func (b *Builder) TxBegin(abortLabel string) *Builder {
	return b.emitTo(Instr{Op: OpTxBegin}, abortLabel)
}

// TxEnd emits a transaction commit.
func (b *Builder) TxEnd() *Builder { return b.Emit(Instr{Op: OpTxEnd}) }

// TxAbort emits an explicit transaction abort.
func (b *Builder) TxAbort() *Builder { return b.Emit(Instr{Op: OpTxAbort}) }

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.Emit(Instr{Op: OpHalt}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for idx, name := range b.fixups {
		target, ok := b.labels[name]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at instr %d", name, idx)
		}
		b.instrs[idx].Target = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{Instrs: append([]Instr(nil), b.instrs...), Labels: labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Intended for victim generators
// whose programs are fixed at development time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
