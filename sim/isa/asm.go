package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly syntax documented on the Op
// constants and returns the resulting program. Lines may contain a
// trailing comment introduced by ';' or '#'. A label definition is an
// identifier followed by ':' and may share a line with an instruction.
//
// Example:
//
//	        movi r1, 10
//	loop:   addi r1, r1, -1
//	        bne  r1, r0, loop
//	        halt
func Assemble(src string) (*Program, error) { return TryAssemble(src) }

// TryAssemble is the error-returning assembler entry point. Unlike
// MustAssemble (and Builder.MustBuild), it never panics, and it reports
// *every* failure — parse errors, duplicate or undefined labels, and
// instruction-validation errors — with the 1-based source line it
// originates from, so front ends like cmd/mscan can point at the
// offending line instead of crashing.
func TryAssemble(src string) (*Program, error) {
	b := NewBuilder()
	var lineOf []int // instruction index -> 1-based source line
	labelLine := make(map[string]int)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel off any label definitions.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, name)
			}
			if prev, dup := labelLine[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q (first defined on line %d)",
					lineNo+1, name, prev)
			}
			labelLine[name] = lineNo + 1
			b.Label(name)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		for len(lineOf) < len(b.instrs) {
			lineOf = append(lineOf, lineNo+1)
		}
	}
	// Attribute unresolved forward references to the line that used them.
	for idx, name := range b.fixups {
		if _, ok := b.labels[name]; !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", lineOf[idx], name)
		}
	}
	p, err := b.Build()
	if err == nil {
		return p, nil
	}
	// The remaining Build failures are per-instruction validation errors;
	// Build has already patched branch targets into b.instrs, so re-check
	// instruction by instruction to recover the source line.
	q := &Program{Instrs: b.instrs, Labels: b.labels}
	for i := range q.Instrs {
		if verr := q.ValidateAt(i); verr != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineOf[i], verr)
		}
	}
	return nil, err
}

// MustAssemble is Assemble, panicking on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := Op(0); op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}()

func assembleLine(b *Builder, line string) error {
	line = strings.TrimSpace(strings.ReplaceAll(line, "\t", " "))
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(fields[0])
	op, ok := mnemonics[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	want, got := arity(op), len(args)
	if got != want {
		return fmt.Errorf("%s: want %d operands, got %d", mn, want, got)
	}
	in := Instr{Op: op}
	switch op {
	case OpNop, OpFence, OpTxEnd, OpTxAbort, OpHalt:
	case OpMovImm, OpFLoadImm:
		return asmRegImm(b, op, args)
	case OpMov, OpFMov:
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1 = rd, rs
	case OpAddImm, OpAndImm, OpShlImm, OpShrImm:
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, rs, imm
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpFAdd, OpFMul, OpFDiv:
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
	case OpLoad, OpLoad32, OpLoadF:
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, base, imm
	case OpStore, OpStore32, OpStoreF:
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		in.Rs2, in.Rs1, in.Imm = rs, base, imm
	case OpBeq, OpBne, OpBlt, OpBge:
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		in.Rs1, in.Rs2 = rs1, rs2
		b.emitTo(in, args[2])
		return nil
	case OpJmp, OpTxBegin:
		b.emitTo(in, args[0])
		return nil
	case OpRdtsc, OpRdrand:
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		in.Rd = rd
	default:
		return fmt.Errorf("unhandled mnemonic %q", mn)
	}
	b.Emit(in)
	return nil
}

func asmRegImm(b *Builder, op Op, args []string) error {
	rd, err := parseReg(args[0])
	if err != nil {
		return err
	}
	imm, err := parseImm(args[1])
	if err != nil {
		return err
	}
	b.Emit(Instr{Op: op, Rd: rd, Imm: imm})
	return nil
}

func arity(op Op) int {
	switch op {
	case OpNop, OpFence, OpTxEnd, OpTxAbort, OpHalt:
		return 0
	case OpJmp, OpTxBegin, OpRdtsc, OpRdrand:
		return 1
	case OpMovImm, OpFLoadImm, OpMov, OpFMov,
		OpLoad, OpLoad32, OpLoadF, OpStore, OpStore32, OpStoreF:
		return 2
	default:
		return 3
	}
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n >= NumIntRegs {
			return NoReg, fmt.Errorf("integer register out of range %q", s)
		}
		return Reg(n), nil
	case 'f':
		if n >= NumFloatRegs {
			return NoReg, fmt.Errorf("float register out of range %q", s)
		}
		return FloatBase + Reg(n), nil
	}
	return NoReg, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		// Allow unsigned 64-bit constants (e.g. addresses).
		u, uerr := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "imm(reg)" or "(reg)".
func parseMem(s string) (imm int64, base Reg, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, NoReg, fmt.Errorf("bad memory operand %q", s)
	}
	if immStr := strings.TrimSpace(s[:open]); immStr != "" {
		imm, err = parseImm(immStr)
		if err != nil {
			return 0, NoReg, err
		}
	}
	base, err = parseReg(s[open+1 : close])
	return imm, base, err
}

// Disassemble renders the program one instruction per line, prefixing
// label definitions.
func Disassemble(p *Program) string {
	byIndex := make(map[int][]string)
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	// Two labels can share an index; emit them in a fixed order so the
	// disassembly does not depend on map iteration order.
	for idx := range byIndex {
		sort.Strings(byIndex[idx])
	}
	var sb strings.Builder
	for i, in := range p.Instrs {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "\t%s\n", in)
	}
	return sb.String()
}
