// Package isa defines the instruction set of the simulated out-of-order
// core used throughout the MicroScope reproduction.
//
// The ISA is a small 64-bit load/store architecture with separate integer
// and floating-point register files, explicit memory operands
// (base register + immediate displacement), and the handful of special
// instructions the paper's attacks require: RDTSC (cycle counter reads for
// the monitor), RDRAND (the §7.2 integrity-bias target), FENCE (the RDRAND
// mitigation), and TSX transaction markers (alternative replay handles,
// §7.1).
package isa

import "fmt"

// Reg names a register. Values 0..15 are the integer registers R0..R15;
// values 16..31 are the floating-point registers F0..F15. The zero value
// is R0, which is a normal read/write register (not hardwired to zero).
type Reg uint8

// Register file layout.
const (
	NumIntRegs   = 16
	NumFloatRegs = 16
	// FloatBase is the Reg value of F0.
	FloatBase Reg = 16
	// NumRegs is the total architectural register count (both files).
	NumRegs = NumIntRegs + NumFloatRegs
	// NoReg marks an unused register operand.
	NoReg Reg = 0xFF
)

// Integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Floating-point registers.
const (
	F0 Reg = FloatBase + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
)

// IsFloat reports whether r names a floating-point register.
func (r Reg) IsFloat() bool { return r >= FloatBase && r < FloatBase+NumFloatRegs }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of the register (r3, f7, ...).
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFloat():
		return fmt.Sprintf("f%d", int(r-FloatBase))
	case r.Valid():
		return fmt.Sprintf("r%d", int(r))
	default:
		return fmt.Sprintf("reg(%d)", int(r))
	}
}

// Op is an operation code.
type Op uint8

// Operation codes. The comment after each op gives the assembler syntax.
const (
	OpNop      Op = iota // nop
	OpMovImm             // movi rd, imm
	OpMov                // mov rd, rs1
	OpAdd                // add rd, rs1, rs2
	OpAddImm             // addi rd, rs1, imm
	OpSub                // sub rd, rs1, rs2
	OpAnd                // and rd, rs1, rs2
	OpAndImm             // andi rd, rs1, imm
	OpOr                 // or rd, rs1, rs2
	OpXor                // xor rd, rs1, rs2
	OpShl                // shl rd, rs1, rs2
	OpShlImm             // shli rd, rs1, imm
	OpShr                // shr rd, rs1, rs2
	OpShrImm             // shri rd, rs1, imm
	OpMul                // mul rd, rs1, rs2
	OpDiv                // div rd, rs1, rs2 (integer; traps are not modelled, x/0 = 0)
	OpFMov               // fmov fd, fs1
	OpFAdd               // fadd fd, fs1, fs2
	OpFMul               // fmul fd, fs1, fs2
	OpFDiv               // fdiv fd, fs1, fs2
	OpFLoadImm           // fli fd, float-bits-imm
	OpLoad               // ld rd, imm(rs1)
	OpLoad32             // ld32 rd, imm(rs1) (zero-extending 32-bit load)
	OpLoadF              // fld fd, imm(rs1)
	OpStore              // st rs2, imm(rs1)
	OpStore32            // st32 rs2, imm(rs1) (32-bit store)
	OpStoreF             // fst fs2, imm(rs1)
	OpBeq                // beq rs1, rs2, label
	OpBne                // bne rs1, rs2, label
	OpBlt                // blt rs1, rs2, label
	OpBge                // bge rs1, rs2, label
	OpJmp                // jmp label
	OpRdtsc              // rdtsc rd (reads core cycle counter)
	OpRdrand             // rdrand rd (hardware random number)
	OpFence              // fence (no younger instruction dispatches until retired)
	OpTxBegin            // txbegin label (abort handler target)
	OpTxEnd              // txend
	OpTxAbort            // txabort
	OpHalt               // halt
	opMax
)

// OpCount is the number of defined operation codes. Tooling that must be
// total over the ISA (the static analyzer's channel taxonomy, the
// determinism lints) iterates Op(0)..Op(OpCount-1).
const OpCount = int(opMax)

var opNames = [...]string{
	OpNop:      "nop",
	OpMovImm:   "movi",
	OpMov:      "mov",
	OpAdd:      "add",
	OpAddImm:   "addi",
	OpSub:      "sub",
	OpAnd:      "and",
	OpAndImm:   "andi",
	OpOr:       "or",
	OpXor:      "xor",
	OpShl:      "shl",
	OpShlImm:   "shli",
	OpShr:      "shr",
	OpShrImm:   "shri",
	OpMul:      "mul",
	OpDiv:      "div",
	OpFMov:     "fmov",
	OpFAdd:     "fadd",
	OpFMul:     "fmul",
	OpFDiv:     "fdiv",
	OpFLoadImm: "fli",
	OpLoad:     "ld",
	OpLoad32:   "ld32",
	OpLoadF:    "fld",
	OpStore:    "st",
	OpStore32:  "st32",
	OpStoreF:   "fst",
	OpBeq:      "beq",
	OpBne:      "bne",
	OpBlt:      "blt",
	OpBge:      "bge",
	OpJmp:      "jmp",
	OpRdtsc:    "rdtsc",
	OpRdrand:   "rdrand",
	OpFence:    "fence",
	OpTxBegin:  "txbegin",
	OpTxEnd:    "txend",
	OpTxAbort:  "txabort",
	OpHalt:     "halt",
}

// String returns the assembler mnemonic of the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Valid reports whether o is a defined operation code.
func (o Op) Valid() bool { return o < opMax }

// IsBranch reports whether o is a conditional branch or jump.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// IsCondBranch reports whether o is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool {
	switch o {
	case OpLoad, OpLoad32, OpLoadF, OpStore, OpStore32, OpStoreF:
		return true
	}
	return false
}

// IsLoad reports whether o is a load.
func (o Op) IsLoad() bool { return o == OpLoad || o == OpLoad32 || o == OpLoadF }

// IsStore reports whether o is a store.
func (o Op) IsStore() bool { return o == OpStore || o == OpStore32 || o == OpStoreF }

// Instr is a single decoded instruction.
//
// Operand roles by op class:
//   - ALU reg-reg:  Rd <- Rs1 op Rs2
//   - ALU reg-imm:  Rd <- Rs1 op Imm
//   - Load:         Rd <- mem[Rs1 + Imm]
//   - Store:        mem[Rs1 + Imm] <- Rs2
//   - Branch:       compare Rs1, Rs2; Target is the instruction index
//   - TxBegin:      Target is the abort-handler instruction index
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target int
	// Label, when non-empty, names the target for branches/txbegin in
	// disassembly; it carries no semantics.
	Label string
}

// Dest returns the destination register of the instruction, or NoReg if
// the instruction writes no register.
func (in Instr) Dest() Reg {
	switch in.Op {
	case OpNop, OpStore, OpStore32, OpStoreF, OpBeq, OpBne, OpBlt, OpBge, OpJmp,
		OpFence, OpTxBegin, OpTxEnd, OpTxAbort, OpHalt:
		return NoReg
	}
	return in.Rd
}

// Sources returns the source registers read by the instruction. Unused
// slots are NoReg.
func (in Instr) Sources() [2]Reg {
	switch in.Op {
	case OpNop, OpMovImm, OpFLoadImm, OpJmp, OpRdtsc, OpRdrand, OpFence,
		OpTxBegin, OpTxEnd, OpTxAbort, OpHalt:
		return [2]Reg{NoReg, NoReg}
	case OpMov, OpFMov, OpAddImm, OpAndImm, OpShlImm, OpShrImm,
		OpLoad, OpLoad32, OpLoadF:
		return [2]Reg{in.Rs1, NoReg}
	default:
		return [2]Reg{in.Rs1, in.Rs2}
	}
}

// String disassembles the instruction.
func (in Instr) String() string {
	target := in.Label
	if target == "" {
		target = fmt.Sprintf("@%d", in.Target)
	}
	switch in.Op {
	case OpNop, OpFence, OpTxEnd, OpTxAbort, OpHalt:
		return in.Op.String()
	case OpMovImm, OpFLoadImm:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpMov, OpFMov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case OpAddImm, OpAndImm, OpShlImm, OpShrImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLoad, OpLoad32, OpLoadF:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpStore, OpStore32, OpStoreF:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rs1, in.Rs2, target)
	case OpJmp, OpTxBegin:
		return fmt.Sprintf("%s %s", in.Op, target)
	case OpRdtsc, OpRdrand:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a sequence of instructions plus the label table produced by
// the Builder or Assembler. Instruction addresses are indices into Instrs;
// the pipeline fetches by index. Code occupies its own virtual page(s) so
// instruction fetch does not perturb the data caches under attack.
type Program struct {
	Instrs []Instr
	Labels map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at index i.
func (p *Program) At(i int) Instr { return p.Instrs[i] }

// LabelOf returns the index of a defined label.
func (p *Program) LabelOf(name string) (int, bool) {
	i, ok := p.Labels[name]
	return i, ok
}

// Validate checks that every instruction is well formed: defined opcode,
// valid register operands, and in-range branch targets.
func (p *Program) Validate() error {
	for i := range p.Instrs {
		if err := p.ValidateAt(i); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAt checks the single instruction at index i (see Validate). The
// assembler uses it to map validation errors back to source lines.
func (p *Program) ValidateAt(i int) error {
	in := p.Instrs[i]
	if !in.Op.Valid() {
		return fmt.Errorf("isa: instr %d: invalid opcode %d", i, int(in.Op))
	}
	if d := in.Dest(); d != NoReg && !d.Valid() {
		return fmt.Errorf("isa: instr %d (%s): invalid dest %s", i, in, d)
	}
	for _, s := range in.Sources() {
		if s != NoReg && !s.Valid() {
			return fmt.Errorf("isa: instr %d (%s): invalid source %s", i, in, s)
		}
	}
	if in.Op.IsBranch() || in.Op == OpTxBegin {
		if in.Target < 0 || in.Target >= len(p.Instrs) {
			return fmt.Errorf("isa: instr %d (%s): target %d out of range [0,%d)",
				i, in, in.Target, len(p.Instrs))
		}
	}
	return validateRegClasses(i, in)
}

// validateRegClasses enforces that FP ops use FP registers and integer ops
// use integer registers where the distinction matters.
func validateRegClasses(i int, in Instr) error {
	wantFloatDest := false
	switch in.Op {
	case OpFMov, OpFAdd, OpFMul, OpFDiv, OpFLoadImm, OpLoadF:
		wantFloatDest = true
	}
	if d := in.Dest(); d != NoReg && d.IsFloat() != wantFloatDest {
		return fmt.Errorf("isa: instr %d (%s): dest %s has wrong register class", i, in, d)
	}
	// Address base registers are always integer.
	if in.Op.IsMem() && in.Rs1.IsFloat() {
		return fmt.Errorf("isa: instr %d (%s): address base %s must be integer", i, in, in.Rs1)
	}
	return nil
}
