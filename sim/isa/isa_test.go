package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R15, "r15"}, {F0, "f0"}, {F15, "f15"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegClassification(t *testing.T) {
	if R5.IsFloat() {
		t.Error("R5 classified as float")
	}
	if !F5.IsFloat() {
		t.Error("F5 not classified as float")
	}
	if !R15.Valid() || !F15.Valid() {
		t.Error("valid registers reported invalid")
	}
	if NoReg.Valid() {
		t.Error("NoReg reported valid")
	}
}

func TestOpClassification(t *testing.T) {
	for _, op := range []Op{OpBeq, OpBne, OpBlt, OpBge, OpJmp} {
		if !op.IsBranch() {
			t.Errorf("%s not classified as branch", op)
		}
	}
	if OpJmp.IsCondBranch() {
		t.Error("jmp classified as conditional")
	}
	if !OpBeq.IsCondBranch() {
		t.Error("beq not classified as conditional")
	}
	for _, op := range []Op{OpLoad, OpLoadF, OpStore, OpStoreF} {
		if !op.IsMem() {
			t.Errorf("%s not classified as memory op", op)
		}
	}
	if !OpLoad.IsLoad() || OpLoad.IsStore() {
		t.Error("load misclassified")
	}
	if !OpStore.IsStore() || OpStore.IsLoad() {
		t.Error("store misclassified")
	}
	if OpAdd.IsMem() || OpAdd.IsBranch() {
		t.Error("add misclassified")
	}
}

func TestInstrDestAndSources(t *testing.T) {
	add := Instr{Op: OpAdd, Rd: R1, Rs1: R2, Rs2: R3}
	if add.Dest() != R1 {
		t.Errorf("add dest = %s", add.Dest())
	}
	if s := add.Sources(); s[0] != R2 || s[1] != R3 {
		t.Errorf("add sources = %v", s)
	}
	st := Instr{Op: OpStore, Rs1: R1, Rs2: R2}
	if st.Dest() != NoReg {
		t.Errorf("store dest = %s, want none", st.Dest())
	}
	ld := Instr{Op: OpLoad, Rd: R4, Rs1: R5}
	if s := ld.Sources(); s[0] != R5 || s[1] != NoReg {
		t.Errorf("load sources = %v", s)
	}
	halt := Instr{Op: OpHalt}
	if halt.Dest() != NoReg {
		t.Error("halt has a dest")
	}
	if s := halt.Sources(); s[0] != NoReg || s[1] != NoReg {
		t.Error("halt has sources")
	}
	tsc := Instr{Op: OpRdtsc, Rd: R7}
	if tsc.Dest() != R7 {
		t.Error("rdtsc dest lost")
	}
	if s := tsc.Sources(); s[0] != NoReg {
		t.Error("rdtsc has sources")
	}
}

func TestBuilderBranchFixups(t *testing.T) {
	p, err := NewBuilder().
		MovImm(R1, 3).
		Label("loop").
		AddImm(R1, R1, -1).
		Bne(R1, R0, "loop").
		Jmp("done").
		Nop().
		Label("done").
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 {
		t.Fatalf("len = %d, want 6", p.Len())
	}
	if p.Instrs[2].Target != 1 {
		t.Errorf("bne target = %d, want 1", p.Instrs[2].Target)
	}
	if p.Instrs[3].Target != 5 {
		t.Errorf("jmp target = %d, want 5 (forward fixup)", p.Instrs[3].Target)
	}
	if idx, ok := p.LabelOf("done"); !ok || idx != 5 {
		t.Errorf("LabelOf(done) = %d,%v", idx, ok)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder().Jmp("nowhere").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("want undefined label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewBuilder().Label("a").Nop().Label("a").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("want duplicate label error, got %v", err)
	}
}

func TestValidateRejectsBadRegClass(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpFAdd, Rd: R1, Rs1: F0, Rs2: F1}}}
	if err := p.Validate(); err == nil {
		t.Error("fadd with integer dest passed validation")
	}
	p = &Program{Instrs: []Instr{{Op: OpLoad, Rd: R1, Rs1: F0}}}
	if err := p.Validate(); err == nil {
		t.Error("load with float base passed validation")
	}
	p = &Program{Instrs: []Instr{{Op: OpLoadF, Rd: F1, Rs1: R0}}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid fld rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRangeTarget(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpJmp, Target: 5}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range jump passed validation")
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
        movi r1, 16      ; loop count
        movi r2, 0
loop:   addi r2, r2, 2
        addi r1, r1, -1
        bne  r1, r0, loop
        ld   r3, 8(r2)
        st   r3, 16(r2)
        fld  f1, 0(r3)
        fdiv f2, f1, f1
        rdtsc r4
        fence
        halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 12 {
		t.Fatalf("len = %d, want 12", p.Len())
	}
	if p.Instrs[4].Op != OpBne || p.Instrs[4].Target != 2 {
		t.Errorf("bne parsed as %+v", p.Instrs[4])
	}
	if p.Instrs[5].Op != OpLoad || p.Instrs[5].Imm != 8 || p.Instrs[5].Rs1 != R2 {
		t.Errorf("ld parsed as %+v", p.Instrs[5])
	}
	if p.Instrs[6].Op != OpStore || p.Instrs[6].Rs2 != R3 {
		t.Errorf("st parsed as %+v", p.Instrs[6])
	}
	if p.Instrs[8].Op != OpFDiv || p.Instrs[8].Rd != F2 {
		t.Errorf("fdiv parsed as %+v", p.Instrs[8])
	}

	// Disassemble and re-assemble: programs must match instruction by
	// instruction.
	p2, err := Assemble(Disassemble(p))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, Disassemble(p))
	}
	if p2.Len() != p.Len() {
		t.Fatalf("round trip length %d != %d", p2.Len(), p.Len())
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], p2.Instrs[i]
		a.Label, b.Label = "", ""
		if a != b {
			t.Errorf("instr %d: %+v != %+v", i, a, b)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frob r1, r2"},
		{"bad register", "mov r1, r99"},
		{"wrong arity", "add r1, r2"},
		{"bad label", "1bad: nop"},
		{"bad memory operand", "ld r1, r2"},
		{"bad immediate", "movi r1, xyz"},
		{"undefined branch target", "beq r1, r2, missing"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: Assemble(%q) succeeded, want error", c.name, c.src)
		}
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble("nop # trailing\n; whole line\n  # another\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2", p.Len())
	}
}

func TestAssembleHexImmediate(t *testing.T) {
	p, err := Assemble("movi r1, 0x1000\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 0x1000 {
		t.Errorf("imm = %d, want 4096", p.Instrs[0].Imm)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpMovImm, Rd: R1, Imm: 7}, "movi r1, 7"},
		{Instr{Op: OpLoad, Rd: R2, Rs1: R3, Imm: 16}, "ld r2, 16(r3)"},
		{Instr{Op: OpStore, Rs2: R2, Rs1: R3, Imm: 8}, "st r2, 8(r3)"},
		{Instr{Op: OpBeq, Rs1: R1, Rs2: R2, Label: "x"}, "beq r1, r2, x"},
		{Instr{Op: OpJmp, Target: 3}, "jmp @3"},
		{Instr{Op: OpRdtsc, Rd: R9}, "rdtsc r9"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	NewBuilder().Jmp("missing").MustBuild()
}
