package isa

import (
	"strings"
	"testing"
)

// FuzzTryAssemble drives the assembler with arbitrary source text. Two
// properties:
//
//  1. TryAssemble never panics — it is the error-returning entry point
//     front ends like cmd/mscan feed raw user files into;
//  2. whatever it accepts round-trips: Disassemble of the program must
//     reassemble cleanly into instruction-for-instruction identical
//     code (the Labels table is NOT compared — a trailing label past
//     the last instruction legally vanishes in disassembly).
func FuzzTryAssemble(f *testing.F) {
	seeds := []string{
		"movi r1, 10\nhalt",
		"\tmovi r1, 10\nloop: addi r1, r1, -1\n\tbne r1, r0, loop\n\thalt",
		"a: b: nop ; two labels, one instr\n\tjmp a\n",
		"movi r12, 0x100000\n\tld r1, 8(r12)\n\tst r1, -8(r12)\n\thalt",
		"floadi f1, 4614256656552045848\n\tfdiv f2, f1, f1\n\thalt",
		"txbegin out\n\tmovi r1, 1\n\ttxabort\nout:\n\thalt",
		"rdtsc r4\nrdrand r5\nfence\nhalt",
		"beq r1, r2, missing",                 // undefined label: must error, not panic
		"movi r1",                             // wrong arity
		"mul f1, r1, r2",                      // register-class violation
		"bogus r1, r2",                        // unknown mnemonic
		"movi r99, 1",                         // register out of range
		"9bad: nop",                           // bad label
		"ld r1, 8(r2",                         // malformed memory operand
		"movi r1, 99999999999999999999999999", // immediate overflow
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := TryAssemble(src)
		if err != nil {
			if p != nil {
				t.Fatalf("TryAssemble returned both a program and error %v", err)
			}
			return
		}
		if p == nil {
			t.Fatal("TryAssemble returned nil program without error")
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("TryAssemble accepted an invalid program: %v\nsource:\n%s", verr, src)
		}
		dis := Disassemble(p)
		p2, err2 := TryAssemble(dis)
		if err2 != nil {
			t.Fatalf("disassembly does not reassemble: %v\noriginal:\n%s\ndisassembly:\n%s",
				err2, src, dis)
		}
		if len(p2.Instrs) != len(p.Instrs) {
			t.Fatalf("round-trip changed length: %d -> %d\ndisassembly:\n%s",
				len(p.Instrs), len(p2.Instrs), dis)
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("round-trip changed instr %d: %+v -> %+v\ndisassembly:\n%s",
					i, p.Instrs[i], p2.Instrs[i], dis)
			}
		}
		// Disassembly must itself be stable: one more round changes nothing.
		if dis2 := Disassemble(p2); !strings.Contains(dis2, strings.TrimSpace(dis)) && dis2 != dis {
			t.Fatalf("disassembly not a fixed point:\n%s\nvs\n%s", dis, dis2)
		}
	})
}
