package snapshot

import (
	"fmt"
	"reflect"
	"sort"
)

// maxDiffs bounds the number of differences Diff reports; a corrupted
// 64 MB memory image would otherwise produce millions of lines.
const maxDiffs = 64

// Diff compares two machine snapshots field by field and returns one
// human-readable line per difference ("path: a != b"), capped at
// maxDiffs (a final "..." line marks truncation). Byte slices — the
// physical-memory image — are summarized as differing ranges rather
// than per-byte lines. An empty result means the snapshots are
// structurally identical.
func Diff(a, b *Machine) []string {
	d := &differ{}
	d.walk("", reflect.ValueOf(a), reflect.ValueOf(b))
	return d.out
}

type differ struct {
	out       []string
	truncated bool
}

func (d *differ) add(path, format string, args ...any) {
	if d.truncated {
		return
	}
	if len(d.out) >= maxDiffs {
		d.out = append(d.out, "... (more differences truncated)")
		d.truncated = true
		return
	}
	d.out = append(d.out, path+": "+fmt.Sprintf(format, args...))
}

func (d *differ) walk(path string, a, b reflect.Value) {
	if d.truncated {
		return
	}
	if a.Kind() != b.Kind() {
		d.add(path, "kind %s != %s", a.Kind(), b.Kind())
		return
	}
	switch a.Kind() {
	case reflect.Ptr, reflect.Interface:
		switch {
		case a.IsNil() && b.IsNil():
		case a.IsNil() != b.IsNil():
			d.add(path, "nil-ness %t != %t", a.IsNil(), b.IsNil())
		default:
			d.walk(path, a.Elem(), b.Elem())
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				continue // unexported: snapshots are plain exported data
			}
			d.walk(join(path, f.Name), a.Field(i), b.Field(i))
		}
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && a.Type().Elem().Kind() == reflect.Uint8 {
			d.diffBytes(path, a.Bytes(), b.Bytes())
			return
		}
		if a.Len() != b.Len() {
			d.add(path, "length %d != %d", a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			d.walk(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		keys := map[string][2]reflect.Value{}
		for _, k := range a.MapKeys() {
			keys[fmt.Sprint(k.Interface())] = [2]reflect.Value{a.MapIndex(k), b.MapIndex(k)}
		}
		for _, k := range b.MapKeys() {
			ks := fmt.Sprint(k.Interface())
			if _, ok := keys[ks]; !ok {
				keys[ks] = [2]reflect.Value{a.MapIndex(k), b.MapIndex(k)}
			}
		}
		names := make([]string, 0, len(keys))
		for ks := range keys {
			names = append(names, ks)
		}
		sort.Strings(names)
		for _, ks := range names {
			va, vb := keys[ks][0], keys[ks][1]
			switch {
			case !va.IsValid():
				d.add(fmt.Sprintf("%s[%s]", path, ks), "only in second")
			case !vb.IsValid():
				d.add(fmt.Sprintf("%s[%s]", path, ks), "only in first")
			default:
				d.walk(fmt.Sprintf("%s[%s]", path, ks), va, vb)
			}
		}
	default:
		av, bv := a.Interface(), b.Interface()
		if !reflect.DeepEqual(av, bv) {
			d.add(path, "%v != %v", av, bv)
		}
	}
}

// diffBytes summarizes differing regions of two byte slices as
// half-open ranges.
func (d *differ) diffBytes(path string, a, b []byte) {
	if len(a) != len(b) {
		d.add(path, "length %d != %d", len(a), len(b))
		return
	}
	i := 0
	for i < len(a) {
		if a[i] == b[i] {
			i++
			continue
		}
		start := i
		for i < len(a) && a[i] != b[i] {
			i++
		}
		d.add(fmt.Sprintf("%s[%#x:%#x]", path, start, i), "%d differing bytes", i-start)
		if d.truncated {
			return
		}
	}
}

func join(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}
