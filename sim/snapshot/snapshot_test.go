package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// testMachine builds a small live simulator (one process, a mapped
// writable page, a short program run partway) and returns its pieces.
func testMachine(t *testing.T) (*mem.PhysMem, *cpu.Core, *kernel.Kernel) {
	t.Helper()
	phys := mem.NewPhysMem(8 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	p, err := k.NewProcess("snaptest")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, p)
	const va = mem.Addr(0x40_0000)
	v := k.AddVMA(p, va, va+mem.PageSize, mem.FlagUser|mem.FlagWritable, "data")
	if err := k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if err := p.AddressSpace().WriteVirt(va, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder()
	b.MovImm(isa.R1, int64(va))
	for i := 0; i < 16; i++ {
		b.Load(isa.R2, isa.R1, 0).Add(isa.R3, isa.R3, isa.R2)
	}
	b.Halt()
	core.Context(0).SetProgram(b.MustBuild(), 0)
	core.Run(20) // stop mid-program: ROB, caches and TLB are warm
	return phys, core, k
}

// Capture → Restore into the same machine → Capture again must be a
// fixed point: the second snapshot is structurally identical.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	phys, core, k := testMachine(t)
	m1, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Restore(phys, core, k); err != nil {
		t.Fatal(err)
	}
	m2, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(m1, m2); len(diffs) != 0 {
		t.Fatalf("restore is not a fixed point: %v", diffs)
	}
}

// Encode → Decode must reproduce the machine image exactly, and two
// encodings of the same state must be byte-identical (snapshots flatten
// all maps into sorted slices precisely so gob output is deterministic).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	phys, core, k := testMachine(t)
	m, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := Encode(&buf1, m); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&buf2, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("two encodings of the same machine differ: gob output is not deterministic")
	}
	got, err := Decode(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(m, got); len(diffs) != 0 {
		t.Fatalf("decode(encode(m)) != m: %v", diffs)
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	phys, core, k := testMachine(t)
	m, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	m.Version = Version + 1
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Error("decode accepted a snapshot with a future version")
	}
	if err := m.Restore(phys, core, k); err == nil {
		t.Error("restore accepted a snapshot with a future version")
	}
}

func TestDiffPinpointsDifferences(t *testing.T) {
	phys, core, k := testMachine(t)
	a, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(a, b); len(diffs) != 0 {
		t.Fatalf("identical captures diff: %v", diffs)
	}
	// A scalar difference is named by path.
	b.Core.Cycle++
	diffs := Diff(a, b)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "Core.Cycle") {
		t.Errorf("cycle bump: diffs = %v", diffs)
	}
	b.Core.Cycle--
	// Byte-image differences are summarized as ranges, not per byte.
	for i := 0; i < 100; i++ {
		b.Phys.Data[i] ^= 0xFF
	}
	diffs = Diff(a, b)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "Phys.Data[0x0:0x64]") {
		t.Errorf("byte range: diffs = %v", diffs)
	}
	// A flood of differences is truncated, not dumped in full.
	for i := range b.Phys.Data {
		if i%2 == 0 {
			b.Phys.Data[i] ^= 0xFF
		}
	}
	diffs = Diff(a, b)
	if len(diffs) > maxDiffs+1 {
		t.Errorf("diff flood not truncated: %d lines", len(diffs))
	}
}

// Restoring into a machine with a different physical-memory size must
// fail loudly instead of silently truncating.
func TestRestoreSizeMismatch(t *testing.T) {
	phys, core, k := testMachine(t)
	m, err := Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	other := mem.NewPhysMem(4 << 20)
	core2 := cpu.NewCore(cpu.DefaultConfig(), other)
	k2 := kernel.New(kernel.DefaultConfig(), other, core2)
	if err := m.Restore(other, core2, k2); err == nil {
		t.Error("restore into a smaller PhysMem succeeded")
	}
}
