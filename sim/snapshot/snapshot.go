// Package snapshot provides serializable, versioned whole-machine
// snapshots of the simulator: physical memory, the full
// microarchitectural state of the core (sim/cpu), the kernel's process
// and schedule tables (sim/kernel), and — when captured through an
// attack rig — the MicroScope module's replay state, mirrored here as
// plain data so the sim layer never imports the attack layer.
//
// A snapshot plus the deterministic-input record log (RDRAND draws,
// module handler decisions) makes execution replayable: Restore(snap)
// followed by Run(n) is bit-identical to the original execution
// continuing past the capture point, proved by the canonical sim/trace
// TraceHash (see attack/experiments' snapshot tests and
// docs/checkpointing.md). Machines are gob-encoded with a leading
// version; tools/snapdiff decodes two images and diffs them field by
// field.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// Version is the snapshot format version. Bump it when any Snap struct
// changes shape; Decode rejects mismatched versions instead of silently
// mis-restoring state. Version 2 added the Jamais Vu detector state to
// cpu.ContextSnap (JVEpoch/JVCounts, PR 9).
const Version = 2

// RecipeState is the serializable state of one attack recipe. The
// victim is identified by PID (process pointers are re-resolved against
// the restored kernel); the OnReplay callback is host code and cannot be
// serialized — HasCallback records that one was installed so a restoring
// caller knows to re-bind it.
type RecipeState struct {
	Name           string
	VictimPID      int
	Handle         uint64
	Pivot          uint64
	MonitorAddrs   []uint64
	WalkLevels     int
	HandlerLatency uint64
	MaxReplays     int
	HasCallback    bool

	Replays     int
	TotalFaults int
	PivotArmed  bool
}

// TimelineState is one serialized module timeline event.
type TimelineState struct {
	Cycle  uint64
	Kind   int
	Recipe string
	VA     uint64
}

// DecisionRecord is one entry of the module's nondeterministic-input
// record log: the decision taken after one intercepted fault, with the
// state the callback saw. Comparing two runs' decision logs (snapdiff)
// pinpoints the first diverging handler decision.
type DecisionRecord struct {
	Cycle       uint64
	Recipe      string
	OnPivot     bool
	Replays     int
	TotalFaults int
	Decision    int
}

// ModuleState is the serializable state of the MicroScope module.
type ModuleState struct {
	Recipes       []RecipeState
	Timeline      []TimelineState
	Decisions     []DecisionRecord
	DecisionCount uint64
}

// Machine is a whole-machine snapshot.
type Machine struct {
	Version int
	Phys    mem.PhysSnap
	Core    *cpu.CoreSnap
	Kernel  *kernel.KernelSnap
	// Module is the MicroScope module's state; nil when the machine was
	// captured without one (filled in by attack/experiments.Rig).
	Module *ModuleState
}

// Capture snapshots the simulator triple. Module state, if any, is the
// caller's to fill in.
func Capture(phys *mem.PhysMem, core *cpu.Core, k *kernel.Kernel) (*Machine, error) {
	cs, err := core.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Machine{
		Version: Version,
		Phys:    phys.Snapshot(),
		Core:    cs,
		Kernel:  k.Snapshot(),
	}, nil
}

// Restore overwrites the simulator triple with the snapshot, in
// dependency order: physical memory first (the page tables live there),
// then the core's microarchitectural state, then the kernel tables,
// which also re-establish the contexts' address-space bindings. Module
// state, if present, is the caller's to restore (the module belongs to
// the attack layer).
func (m *Machine) Restore(phys *mem.PhysMem, core *cpu.Core, k *kernel.Kernel) error {
	if m.Version != Version {
		return fmt.Errorf("snapshot: version %d, this build reads %d", m.Version, Version)
	}
	if m.Core == nil || m.Kernel == nil {
		return fmt.Errorf("snapshot: incomplete machine image")
	}
	if err := phys.Restore(m.Phys); err != nil {
		return err
	}
	if err := core.Restore(m.Core); err != nil {
		return err
	}
	return k.Restore(m.Kernel)
}

// Encode writes the machine as a gob stream.
func Encode(w io.Writer, m *Machine) error {
	return gob.NewEncoder(w).Encode(m)
}

// Decode reads a machine image and checks its version.
func Decode(r io.Reader) (*Machine, error) {
	var m Machine
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("snapshot: version %d, this build reads %d", m.Version, Version)
	}
	return &m, nil
}
