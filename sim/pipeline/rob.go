// Package pipeline provides the passive structures of the simulated
// out-of-order core: the reorder buffer, the execution-port set with a
// non-pipelined divider, and the branch predictor. The cycle engine that
// drives them lives in sim/cpu.
//
// The reorder buffer is the heart of a microarchitectural replay attack:
// instructions younger than a page-faulting load execute speculatively
// while the fault waits to reach the ROB head, and are then squashed and
// re-executed — once per replay (paper §2.2, §4.1).
package pipeline

import (
	"fmt"

	"microscope/sim/isa"
)

// EntryState tracks an instruction's progress through the ROB.
type EntryState int

// Lifecycle states of a ROB entry.
const (
	StateDispatched EntryState = iota // waiting for operands or a port
	StateIssued                       // executing on a functional unit
	StateCompleted                    // result available
	StateFaulted                      // completed with a pending exception
	StateSquashed                     // removed by a squash; kept for debugging
	StateRetired                      // committed
)

// String returns the state name.
func (s EntryState) String() string {
	switch s {
	case StateDispatched:
		return "dispatched"
	case StateIssued:
		return "issued"
	case StateCompleted:
		return "completed"
	case StateFaulted:
		return "faulted"
	case StateSquashed:
		return "squashed"
	case StateRetired:
		return "retired"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Operand is one source operand of a ROB entry: either a ready value or a
// pointer to the producing in-flight entry.
type Operand struct {
	Ready    bool
	Value    uint64 // valid when Ready (float operands carry IEEE-754 bits)
	Producer *Entry // valid when !Ready
}

// Entry is one in-flight instruction.
type Entry struct {
	Seq     uint64 // global dispatch order, used for age comparisons
	PC      int
	Instr   isa.Instr
	State   EntryState
	Context int

	Src [2]Operand

	// Result holds the destination value once completed (float results as
	// IEEE-754 bits).
	Result uint64

	// CompleteAt is the cycle the instruction finishes executing (valid
	// once issued).
	CompleteAt uint64

	// Branch resolution.
	PredictedTaken bool
	PredictedPC    int
	ActualPC       int
	Mispredicted   bool

	// Memory access bookkeeping.
	EffAddr    uint64 // virtual address
	PhysAddr   uint64 // translation result, valid unless Fault != nil
	Fault      error  // pending precise exception (*mem.Fault wrapped by cpu)
	WalkCycles int    // page-walk duration observed by this access (0 = TLB hit)

	// Shadow-taint state, maintained by an attached cpu.ShadowTracker
	// (sim/sanitizer). All zero while no tracker is attached; the cycle
	// engine itself never reads these fields, so they cannot perturb
	// timing or results.
	//
	// SrcShadow holds the taint mask of each source operand: captured
	// from the architectural shadow registers at dispatch for
	// ready-at-rename operands, and resolved from SrcShadowProducer at
	// issue for renamed ones (the shadow analogue of OperandsReady).
	// Shadow is the result's taint mask, final once the entry issues.
	// CtrlShadow is implicit-flow taint: the union of the taints of
	// older tainted branches whose control-dependent region contains
	// this entry's PC.
	SrcShadow         [2]uint64
	SrcShadowProducer [2]*Entry
	Shadow            uint64
	CtrlShadow        uint64
}

// OperandsReady reports whether both sources are available.
func (e *Entry) OperandsReady() bool {
	for i := range e.Src {
		if !e.Src[i].Ready {
			p := e.Src[i].Producer
			if p == nil {
				return false
			}
			if p.State == StateCompleted || p.State == StateRetired {
				e.Src[i].Ready = true
				e.Src[i].Value = p.Result
				e.Src[i].Producer = nil
				continue
			}
			return false
		}
	}
	return true
}

// ROB is one hardware context's reorder buffer: a FIFO of in-flight
// instructions in program order. (SMT cores statically partition the
// physical ROB; modelling one ROB per context matches that and keeps
// squashes context-local, as on the paper's Xeon.)
type ROB struct {
	entries []*Entry
	cap     int
}

// NewROB returns a ROB with the given capacity.
func NewROB(capacity int) *ROB {
	if capacity <= 0 {
		panic(fmt.Sprintf("pipeline: ROB capacity %d", capacity))
	}
	return &ROB{cap: capacity}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.cap }

// Len returns the number of in-flight entries.
func (r *ROB) Len() int { return len(r.entries) }

// Full reports whether dispatch must stall.
func (r *ROB) Full() bool { return len(r.entries) >= r.cap }

// Head returns the oldest entry, or nil when empty.
func (r *ROB) Head() *Entry {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[0]
}

// At returns the i-th oldest entry.
func (r *ROB) At(i int) *Entry { return r.entries[i] }

// Push appends a dispatched entry. It panics when full; callers must check
// Full first (dispatch stalls on a full ROB).
func (r *ROB) Push(e *Entry) {
	if r.Full() {
		panic("pipeline: push to full ROB")
	}
	r.entries = append(r.entries, e)
}

// PopHead removes and returns the oldest entry.
func (r *ROB) PopHead() *Entry {
	e := r.entries[0]
	r.entries = r.entries[1:]
	return e
}

// SquashAll removes every entry (pipeline flush on a fault), marking each
// squashed, and returns the count.
func (r *ROB) SquashAll() int {
	n := len(r.entries)
	for _, e := range r.entries {
		e.State = StateSquashed
	}
	r.entries = r.entries[:0]
	return n
}

// SquashYounger removes all entries strictly younger than seq (branch
// misprediction recovery), marking each squashed, and returns the count.
func (r *ROB) SquashYounger(seq uint64) int {
	keep := len(r.entries)
	for i, e := range r.entries {
		if e.Seq > seq {
			keep = i
			break
		}
	}
	n := 0
	for _, e := range r.entries[keep:] {
		e.State = StateSquashed
		n++
	}
	r.entries = r.entries[:keep]
	return n
}

// Walk calls fn on each in-flight entry, oldest first, stopping early if
// fn returns false.
func (r *ROB) Walk(fn func(*Entry) bool) {
	for _, e := range r.entries {
		if !fn(e) {
			return
		}
	}
}

// Entries returns the in-flight entries, oldest first, as a read-only
// view of the ROB's backing slice. The cycle engine iterates it directly
// instead of through Walk: a closure per stage per context per cycle is
// real heap traffic on the hot path. A squash during iteration truncates
// the ROB but leaves the removed entries marked StateSquashed in the
// backing array, so callers that keep ranging a snapshot see them in a
// state their filters already skip — the same contract Walk had.
func (r *ROB) Entries() []*Entry { return r.entries }
