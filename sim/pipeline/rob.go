// Package pipeline provides the passive structures of the simulated
// out-of-order core: the reorder buffer, the execution-port set with a
// non-pipelined divider, and the branch predictor. The cycle engine that
// drives them lives in sim/cpu.
//
// The reorder buffer is the heart of a microarchitectural replay attack:
// instructions younger than a page-faulting load execute speculatively
// while the fault waits to reach the ROB head, and are then squashed and
// re-executed — once per replay (paper §2.2, §4.1).
package pipeline

import (
	"fmt"

	"microscope/sim/isa"
)

// EntryState tracks an instruction's progress through the ROB.
type EntryState int

// Lifecycle states of a ROB entry.
const (
	StateDispatched EntryState = iota // waiting for operands or a port
	StateIssued                       // executing on a functional unit
	StateCompleted                    // result available
	StateFaulted                      // completed with a pending exception
	StateSquashed                     // removed by a squash; kept for debugging
	StateRetired                      // committed
)

// String returns the state name.
func (s EntryState) String() string {
	switch s {
	case StateDispatched:
		return "dispatched"
	case StateIssued:
		return "issued"
	case StateCompleted:
		return "completed"
	case StateFaulted:
		return "faulted"
	case StateSquashed:
		return "squashed"
	case StateRetired:
		return "retired"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Operand is one source operand of a ROB entry. Ready is authoritative:
// when set, Value holds the captured data. Producer records the renaming
// entry the operand was sourced from at dispatch (nil for operands read
// from the architectural register file); it is kept as provenance after
// the value is captured, so consumers (the shadow-taint tracker) can tell
// a renamed operand from an architectural one — but it must never be
// dereferenced once Ready is set, because the producer's ROB slot may
// have been recycled by then (the slab reuses slots of retired and
// squashed entries).
type Operand struct {
	Ready    bool
	Value    uint64 // valid when Ready (float operands carry IEEE-754 bits)
	Producer *Entry // renaming producer at dispatch; provenance only once Ready
}

// Entry is one in-flight instruction. Entries live in their ROB's slab
// and are identified by a stable Slot for the lifetime of one dynamic
// instruction; Seq is the forever-unique dispatch identity (slot reuse
// means a retained (Entry, Seq) pair can be validated: the slot belongs
// to the same dynamic instruction iff the seqs still match).
type Entry struct {
	Seq     uint64 // global dispatch order, used for age comparisons
	PC      int
	Instr   isa.Instr
	State   EntryState
	Context int
	Slot    int32 // slab index, stable for the entry's ROB lifetime

	Src [2]Operand

	// NPending counts source operands still waiting on a producer. The
	// cycle engine's wakeup lists move the entry to its ready queue when
	// it reaches zero.
	NPending int8

	// Result holds the destination value once completed (float results as
	// IEEE-754 bits).
	Result uint64

	// CompleteAt is the cycle the instruction finishes executing (valid
	// once issued).
	CompleteAt uint64

	// Branch resolution.
	PredictedTaken bool
	PredictedPC    int
	ActualPC       int
	Mispredicted   bool

	// Memory access bookkeeping.
	EffAddr    uint64 // virtual address
	PhysAddr   uint64 // translation result, valid unless Fault != nil
	Fault      error  // pending precise exception (*mem.Fault wrapped by cpu)
	WalkCycles int    // page-walk duration observed by this access (0 = TLB hit)

	// Shadow-taint state, maintained by an attached cpu.ShadowTracker
	// (sim/sanitizer) together with the cycle engine. All zero while no
	// tracker is attached; the cycle engine itself never reads these
	// fields, so they cannot perturb timing or results.
	//
	// SrcShadow holds the taint mask of each source operand: captured
	// from the architectural shadow registers at dispatch for
	// register-file operands, and folded from PendShadow at issue for
	// renamed ones (the shadow analogue of operand capture).
	// PendShadow is the engine-side handoff for renamed operands: when
	// the engine captures an operand value from its producer (at dispatch
	// if the producer has completed, else at the completion broadcast),
	// it also captures the producer's final Shadow here; the sanitizer
	// folds it into SrcShadow at issue, preserving the issue-time taint
	// visibility the tracker's contract promises.
	// Shadow is the result's taint mask, final once the entry issues.
	// CtrlShadow is implicit-flow taint: the union of the taints of
	// older tainted branches whose control-dependent region contains
	// this entry's PC.
	SrcShadow  [2]uint64
	PendShadow [2]uint64
	Shadow     uint64
	CtrlShadow uint64
}

// OperandsReady reports whether both sources are available. Values are
// captured eagerly by the cycle engine (at dispatch or at the producer's
// completion broadcast), so this is a pure flag check.
func (e *Entry) OperandsReady() bool {
	return e.Src[0].Ready && e.Src[1].Ready
}

// ROB is one hardware context's reorder buffer: a FIFO of in-flight
// instructions in program order. (SMT cores statically partition the
// physical ROB; modelling one ROB per context matches that and keeps
// squashes context-local, as on the paper's Xeon.)
//
// Entry storage is a fixed slab of capacity Entry values with a
// free-list: dispatch recycles the slot of a retired or squashed
// instruction instead of heap-allocating, and all in-flight entries stay
// within one contiguous allocation (the hot stages walk them with no
// pointer chasing beyond the program-order index).
type ROB struct {
	slab []Entry
	free []int32
	// entries is a window into buf (2×cap): PopHead advances the window
	// instead of shifting, and Push slides it back to the front only when
	// it reaches the end of buf — amortized O(1) with zero steady-state
	// allocation, where a plain entries[1:] re-slice kept discarding
	// capacity and sent every refill through the allocator.
	buf     []*Entry
	entries []*Entry
	cap     int
}

// NewROB returns a ROB with the given capacity.
func NewROB(capacity int) *ROB {
	if capacity <= 0 {
		panic(fmt.Sprintf("pipeline: ROB capacity %d", capacity))
	}
	r := &ROB{
		slab: make([]Entry, capacity),
		free: make([]int32, 0, capacity),
		buf:  make([]*Entry, 2*capacity),
		cap:  capacity,
	}
	r.entries = r.buf[:0]
	// LIFO free-list: pop from the back, so push slots in reverse for
	// low-to-high first-use order (cosmetic, but keeps slot assignment
	// deterministic and debuggable).
	for i := capacity - 1; i >= 0; i-- {
		r.free = append(r.free, int32(i))
	}
	return r
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.cap }

// Len returns the number of in-flight entries.
func (r *ROB) Len() int { return len(r.entries) }

// Full reports whether dispatch must stall.
func (r *ROB) Full() bool { return len(r.entries) >= r.cap }

// Head returns the oldest entry, or nil when empty.
func (r *ROB) Head() *Entry {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[0]
}

// At returns the i-th oldest entry.
func (r *ROB) At(i int) *Entry { return r.entries[i] }

// BySlot returns the entry occupying slab slot i. The caller must
// validate it still belongs to the expected dynamic instruction (compare
// Seq) — slots are recycled.
func (r *ROB) BySlot(i int32) *Entry { return &r.slab[i] }

// Alloc takes a free slot from the slab and returns it zeroed (Slot
// preserved) for the caller to fill and Push. It panics when the ROB is
// full; callers must check Full first.
func (r *ROB) Alloc() *Entry {
	n := len(r.free)
	if n == 0 {
		panic("pipeline: alloc from full ROB")
	}
	slot := r.free[n-1]
	r.free = r.free[:n-1]
	e := &r.slab[slot]
	*e = Entry{Slot: slot}
	return e
}

// Push appends a dispatched entry obtained from Alloc. It panics when
// full; callers must check Full first (dispatch stalls on a full ROB).
func (r *ROB) Push(e *Entry) {
	if r.Full() {
		panic("pipeline: push to full ROB")
	}
	if len(r.entries) == cap(r.entries) {
		// Window reached the end of buf: slide it back to the front. The
		// regions cannot overlap (the window holds at most cap entries,
		// the buffer 2×cap).
		n := copy(r.buf, r.entries)
		r.entries = r.buf[:n]
	}
	r.entries = append(r.entries, e)
}

// PopHead removes and returns the oldest entry (retirement). The slot is
// recycled: the returned pointer stays valid only until the next Alloc.
func (r *ROB) PopHead() *Entry {
	e := r.entries[0]
	r.entries = r.entries[1:]
	r.free = append(r.free, e.Slot)
	return e
}

// SquashAll removes every entry (pipeline flush on a fault), marking each
// squashed, and returns the count. Slots are recycled; the squashed
// entries keep their fields until the next Alloc (callers iterating a
// pre-squash Entries() snapshot see them StateSquashed, which every
// stage's filters already skip).
func (r *ROB) SquashAll() int {
	n := len(r.entries)
	for _, e := range r.entries {
		e.State = StateSquashed
		r.free = append(r.free, e.Slot)
	}
	r.entries = r.entries[:0]
	return n
}

// SquashYounger removes all entries strictly younger than seq (branch
// misprediction recovery), marking each squashed, and returns the count.
func (r *ROB) SquashYounger(seq uint64) int {
	keep := len(r.entries)
	for i, e := range r.entries {
		if e.Seq > seq {
			keep = i
			break
		}
	}
	n := 0
	for _, e := range r.entries[keep:] {
		e.State = StateSquashed
		r.free = append(r.free, e.Slot)
		n++
	}
	r.entries = r.entries[:keep]
	return n
}

// Reset empties the ROB and the slab free-list (snapshot restore).
func (r *ROB) Reset() {
	r.entries = r.buf[:0]
	r.free = r.free[:0]
	for i := r.cap - 1; i >= 0; i-- {
		r.free = append(r.free, int32(i))
	}
}

// Walk calls fn on each in-flight entry, oldest first, stopping early if
// fn returns false.
func (r *ROB) Walk(fn func(*Entry) bool) {
	for _, e := range r.entries {
		if !fn(e) {
			return
		}
	}
}

// Entries returns the in-flight entries, oldest first, as a read-only
// view of the ROB's backing slice. The cycle engine iterates it directly
// instead of through Walk: a closure per stage per context per cycle is
// real heap traffic on the hot path. A squash during iteration truncates
// the ROB but leaves the removed entries marked StateSquashed in the
// slab, so callers that keep ranging a snapshot see them in a state
// their filters already skip — the same contract Walk had.
func (r *ROB) Entries() []*Entry { return r.entries }
