package pipeline

import "fmt"

// Snapshot types for the checkpoint/restore subsystem (sim/snapshot).
// Each passive pipeline structure exposes a plain-data Snap struct plus
// Snapshot/Restore methods; the composition into a whole-machine image
// lives in sim/snapshot. ROB entries are snapshotted by sim/cpu (they
// carry cross-entry producer pointers that need the context's rename
// state to encode), so the ROB itself only provides BeginReplace.

// PortSetSnap is the serializable state of a PortSet.
type PortSetSnap struct {
	Cycle         uint64
	IssuedThis    [NumPorts]bool
	DivBusyUntil  uint64
	DivBusyCycles uint64
}

// Snapshot captures the port set's state.
func (ps *PortSet) Snapshot() PortSetSnap {
	return PortSetSnap{
		Cycle:         ps.cycle,
		IssuedThis:    ps.issuedThis,
		DivBusyUntil:  ps.divBusyUntil,
		DivBusyCycles: ps.DivBusyCycles,
	}
}

// Restore overwrites the port set's state with a snapshot.
func (ps *PortSet) Restore(s PortSetSnap) {
	ps.cycle = s.Cycle
	ps.issuedThis = s.IssuedThis
	ps.divBusyUntil = s.DivBusyUntil
	ps.DivBusyCycles = s.DivBusyCycles
}

// BTBSnap is one serializable branch-target-buffer entry.
type BTBSnap struct {
	Valid  bool
	PC     int
	Target int
}

// PredictorSnap is the serializable state of a Predictor.
type PredictorSnap struct {
	Counters    []uint8
	BTB         []BTBSnap
	Lookups     uint64
	Mispredicts uint64
}

// Snapshot captures the predictor's full table and statistics.
func (bp *Predictor) Snapshot() PredictorSnap {
	s := PredictorSnap{
		Counters:    append([]uint8(nil), bp.counters...),
		BTB:         make([]BTBSnap, len(bp.btb)),
		Lookups:     bp.Lookups,
		Mispredicts: bp.Mispredicts,
	}
	for i, e := range bp.btb {
		s.BTB[i] = BTBSnap{Valid: e.valid, PC: e.pc, Target: e.target}
	}
	return s
}

// Restore overwrites the predictor's state with a snapshot. The snapshot
// must have been taken from a predictor of the same geometry.
func (bp *Predictor) Restore(s PredictorSnap) error {
	if len(s.Counters) != len(bp.counters) || len(s.BTB) != len(bp.btb) {
		return fmt.Errorf("pipeline: predictor snapshot geometry %d/%d, have %d/%d",
			len(s.Counters), len(s.BTB), len(bp.counters), len(bp.btb))
	}
	copy(bp.counters, s.Counters)
	for i, e := range s.BTB {
		bp.btb[i] = btbEntry{valid: e.Valid, pc: e.PC, target: e.Target}
	}
	bp.Lookups = s.Lookups
	bp.Mispredicts = s.Mispredicts
	return nil
}

// BeginReplace empties the ROB for a snapshot restore, after checking
// the incoming entry count fits. The caller then Alloc+Pushes each
// restored entry in program order. It returns an error instead of
// panicking when the count exceeds capacity: a corrupt or mismatched
// snapshot must surface as a decode error, not a crash.
func (r *ROB) BeginReplace(n int) error {
	if n > r.cap {
		return fmt.Errorf("pipeline: %d snapshot entries exceed ROB capacity %d", n, r.cap)
	}
	r.Reset()
	return nil
}
