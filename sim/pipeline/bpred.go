package pipeline

// Predictor is a per-context branch predictor: a table of 2-bit saturating
// counters for direction plus a branch target buffer. SGX-style defenses
// flush it at the enclave boundary (paper footnote 2 / [12]); MicroScope
// side-steps that flush, which the attack/victim tests demonstrate.
type Predictor struct {
	counters []uint8 // 2-bit saturating, 0..3; >=2 predicts taken
	btb      []btbEntry
	mask     int //simlint:snapexempt derived geometry: len(counters)-1, recomputed at construction; snapshots restore into a same-size predictor

	// Statistics.
	Lookups     uint64
	Mispredicts uint64

	// Replay-memo recording hooks (nil when no recording is active; see
	// memo.go).
	onTouch func(idx int) //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	onInval func()        //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
}

type btbEntry struct {
	valid  bool
	pc     int
	target int
}

// NewPredictor returns a predictor with 2^bits entries.
func NewPredictor(bits int) *Predictor {
	n := 1 << bits
	return &Predictor{
		counters: make([]uint8, n),
		btb:      make([]btbEntry, n),
		mask:     n - 1,
	}
}

// Predict returns the predicted direction and target for the conditional
// branch at pc. When the BTB has no target, the predictor falls back to
// not-taken (fetch continues at pc+1).
func (bp *Predictor) Predict(pc int) (taken bool, target int) {
	if bp.onTouch != nil {
		bp.onTouch(pc & bp.mask)
	}
	bp.Lookups++
	i := pc & bp.mask
	taken = bp.counters[i] >= 2
	if e := bp.btb[i]; e.valid && e.pc == pc {
		target = e.target
	} else {
		taken = false
		target = pc + 1
	}
	return taken, target
}

// PredictDirection returns only the predicted direction for the branch at
// pc. The simulated ISA's branches carry their target in the instruction,
// so the fetch engine needs no BTB lookup for direct branches.
func (bp *Predictor) PredictDirection(pc int) bool {
	if bp.onTouch != nil {
		bp.onTouch(pc & bp.mask)
	}
	bp.Lookups++
	return bp.counters[pc&bp.mask] >= 2
}

// Update trains the predictor with the resolved outcome.
func (bp *Predictor) Update(pc int, taken bool, target int) {
	if bp.onTouch != nil {
		bp.onTouch(pc & bp.mask)
	}
	i := pc & bp.mask
	if taken {
		if bp.counters[i] < 3 {
			bp.counters[i]++
		}
		bp.btb[i] = btbEntry{valid: true, pc: pc, target: target}
	} else if bp.counters[i] > 0 {
		bp.counters[i]--
	}
}

// RecordMispredict bumps the misprediction counter.
func (bp *Predictor) RecordMispredict() { bp.Mispredicts++ }

// Flush resets all prediction state to not-taken / empty BTB, as done at
// enclave entry by the countermeasure in [12]. Flushing puts the predictor
// into a *known* state — which §4.2.3 notes actually helps the attacker.
func (bp *Predictor) Flush() {
	if bp.onInval != nil {
		bp.onInval()
	}
	for i := range bp.counters {
		bp.counters[i] = 0
	}
	for i := range bp.btb {
		bp.btb[i] = btbEntry{}
	}
}

// Prime trains the branch at pc toward the given direction until the
// counter saturates, modelling the adversary's predictor priming (§4.2.3).
func (bp *Predictor) Prime(pc int, taken bool, target int) {
	for range 4 {
		bp.Update(pc, taken, target)
	}
}
