package pipeline

import (
	"testing"

	"microscope/sim/isa"
)

func entry(seq uint64, op isa.Op) *Entry {
	return &Entry{Seq: seq, Instr: isa.Instr{Op: op}, State: StateDispatched}
}

func TestROBFIFO(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 4; i++ {
		r.Push(entry(i, isa.OpNop))
	}
	if !r.Full() {
		t.Error("ROB not full after cap pushes")
	}
	if r.Head().Seq != 0 {
		t.Errorf("head seq = %d", r.Head().Seq)
	}
	e := r.PopHead()
	if e.Seq != 0 || r.Len() != 3 {
		t.Errorf("pop = %d, len = %d", e.Seq, r.Len())
	}
}

func TestROBPushFullPanics(t *testing.T) {
	r := NewROB(1)
	r.Push(entry(0, isa.OpNop))
	defer func() {
		if recover() == nil {
			t.Error("push to full ROB did not panic")
		}
	}()
	r.Push(entry(1, isa.OpNop))
}

func TestROBSquashAll(t *testing.T) {
	r := NewROB(4)
	es := []*Entry{entry(0, isa.OpNop), entry(1, isa.OpNop)}
	for _, e := range es {
		r.Push(e)
	}
	if n := r.SquashAll(); n != 2 {
		t.Errorf("SquashAll = %d", n)
	}
	if r.Len() != 0 {
		t.Error("entries survive SquashAll")
	}
	for _, e := range es {
		if e.State != StateSquashed {
			t.Errorf("entry %d state = %s", e.Seq, e.State)
		}
	}
}

func TestROBSquashYounger(t *testing.T) {
	r := NewROB(8)
	var es []*Entry
	for i := uint64(0); i < 5; i++ {
		e := entry(i, isa.OpNop)
		es = append(es, e)
		r.Push(e)
	}
	if n := r.SquashYounger(2); n != 2 {
		t.Errorf("SquashYounger = %d, want 2", n)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
	if es[3].State != StateSquashed || es[4].State != StateSquashed {
		t.Error("younger entries not marked squashed")
	}
	if es[2].State == StateSquashed {
		t.Error("entry at seq boundary squashed")
	}
}

func TestROBWalkOrder(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 3; i++ {
		r.Push(entry(i, isa.OpNop))
	}
	var seen []uint64
	r.Walk(func(e *Entry) bool {
		seen = append(seen, e.Seq)
		return true
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Errorf("walk order = %v", seen)
	}
	seen = seen[:0]
	r.Walk(func(e *Entry) bool {
		seen = append(seen, e.Seq)
		return false
	})
	if len(seen) != 1 {
		t.Errorf("walk did not stop early: %v", seen)
	}
}

func TestOperandsReadyViaProducer(t *testing.T) {
	prod := entry(0, isa.OpAdd)
	cons := entry(1, isa.OpAdd)
	cons.Src[0] = Operand{Producer: prod}
	cons.Src[1] = Operand{Ready: true, Value: 7}
	if cons.OperandsReady() {
		t.Error("ready before producer completes")
	}
	prod.State = StateCompleted
	prod.Result = 42
	if !cons.OperandsReady() {
		t.Fatal("not ready after producer completed")
	}
	if cons.Src[0].Value != 42 {
		t.Errorf("forwarded value = %d", cons.Src[0].Value)
	}
	if cons.Src[0].Producer != nil {
		t.Error("producer link not cleared after forwarding")
	}
}

func TestOperandsReadyFromRetiredProducer(t *testing.T) {
	prod := entry(0, isa.OpAdd)
	prod.State = StateRetired
	prod.Result = 9
	cons := entry(1, isa.OpAdd)
	cons.Src[0] = Operand{Producer: prod}
	cons.Src[1] = Operand{Ready: true}
	if !cons.OperandsReady() || cons.Src[0].Value != 9 {
		t.Error("retired producer not forwarded")
	}
}

func TestPortsForClasses(t *testing.T) {
	if p := PortsFor(isa.OpDiv); len(p) != 1 || p[0] != PortDiv {
		t.Errorf("div ports = %v", p)
	}
	if p := PortsFor(isa.OpFDiv); len(p) != 1 || p[0] != PortDiv {
		t.Errorf("fdiv ports = %v", p)
	}
	if p := PortsFor(isa.OpLoad); len(p) != 2 {
		t.Errorf("load ports = %v", p)
	}
	if p := PortsFor(isa.OpAdd); len(p) != 2 || p[0] != PortALU0 {
		t.Errorf("alu ports = %v", p)
	}
	if p := PortsFor(isa.OpFMul); len(p) != 1 || p[0] != PortMul {
		t.Errorf("fmul ports = %v", p)
	}
}

func TestPortSetPerCycleSlots(t *testing.T) {
	var ps PortSet
	ps.NewCycle(1)
	if _, ok := ps.TryIssue(isa.OpStore, 1); !ok {
		t.Fatal("first store issue failed")
	}
	if _, ok := ps.TryIssue(isa.OpStore, 1); ok {
		t.Error("second store issued on single store port")
	}
	// Two loads per cycle on two ports, third fails.
	if _, ok := ps.TryIssue(isa.OpLoad, 1); !ok {
		t.Error("load0 failed")
	}
	if _, ok := ps.TryIssue(isa.OpLoad, 1); !ok {
		t.Error("load1 failed")
	}
	if _, ok := ps.TryIssue(isa.OpLoad, 1); ok {
		t.Error("third load issued")
	}
	ps.NewCycle(2)
	if _, ok := ps.TryIssue(isa.OpStore, 1); !ok {
		t.Error("store slot not recycled next cycle")
	}
}

func TestDividerNonPipelined(t *testing.T) {
	var ps PortSet
	ps.NewCycle(10)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); !ok {
		t.Fatal("first div failed")
	}
	if !ps.DivBusy() {
		t.Error("divider not busy after issue")
	}
	// Busy for the full 24 cycles: issue at 33 fails, at 34 succeeds.
	ps.NewCycle(33)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); ok {
		t.Error("div issued while unit busy (should contend)")
	}
	ps.NewCycle(34)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); !ok {
		t.Error("div failed after unit freed")
	}
	if ps.DivBusyCycles != 48 {
		t.Errorf("DivBusyCycles = %d, want 48", ps.DivBusyCycles)
	}
}

func TestMulIsPipelined(t *testing.T) {
	var ps PortSet
	ps.NewCycle(1)
	if _, ok := ps.TryIssue(isa.OpMul, 3); !ok {
		t.Fatal("mul issue failed")
	}
	ps.NewCycle(2)
	if _, ok := ps.TryIssue(isa.OpMul, 3); !ok {
		t.Error("mul not pipelined: back-to-back issue failed")
	}
}

func TestPredictorLearnsLoop(t *testing.T) {
	bp := NewPredictor(8)
	pc, target := 5, 2
	// Initially predicted not-taken (cold counters + no BTB).
	if taken, tgt := bp.Predict(pc); taken || tgt != pc+1 {
		t.Errorf("cold predict = %t, %d", taken, tgt)
	}
	for range 3 {
		bp.Update(pc, true, target)
	}
	taken, tgt := bp.Predict(pc)
	if !taken || tgt != target {
		t.Errorf("trained predict = %t, %d; want true, %d", taken, tgt, target)
	}
	// Train not-taken again; counter decays.
	for range 4 {
		bp.Update(pc, false, 0)
	}
	if taken, _ := bp.Predict(pc); taken {
		t.Error("predictor did not decay to not-taken")
	}
}

func TestPredictorFlush(t *testing.T) {
	bp := NewPredictor(8)
	bp.Prime(5, true, 2)
	if taken, _ := bp.Predict(5); !taken {
		t.Fatal("prime failed")
	}
	bp.Flush()
	if taken, tgt := bp.Predict(5); taken || tgt != 6 {
		t.Error("flush did not reset predictor")
	}
}

func TestPredictorBTBCollisionFallsBack(t *testing.T) {
	bp := NewPredictor(2) // 4 entries: pc 1 and 5 collide
	bp.Prime(1, true, 9)
	// pc 5 maps to the same slot but has a different pc tag: fall back to
	// not-taken even though the counter is saturated.
	if taken, tgt := bp.Predict(5); taken || tgt != 6 {
		t.Errorf("collided predict = %t,%d; want false,6", taken, tgt)
	}
}

func TestEntryStateString(t *testing.T) {
	states := []EntryState{StateDispatched, StateIssued, StateCompleted, StateFaulted, StateSquashed, StateRetired}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
}
