package pipeline

import (
	"testing"

	"microscope/sim/isa"
)

// alloc dispatches a fresh entry into r the way the cycle engine does:
// slab Alloc, fill, Push.
func alloc(r *ROB, seq uint64, op isa.Op) *Entry {
	e := r.Alloc()
	e.Seq = seq
	e.Instr = isa.Instr{Op: op}
	e.State = StateDispatched
	r.Push(e)
	return e
}

func TestROBFIFO(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 4; i++ {
		alloc(r, i, isa.OpNop)
	}
	if !r.Full() {
		t.Error("ROB not full after cap pushes")
	}
	if r.Head().Seq != 0 {
		t.Errorf("head seq = %d", r.Head().Seq)
	}
	e := r.PopHead()
	if e.Seq != 0 || r.Len() != 3 {
		t.Errorf("pop = %d, len = %d", e.Seq, r.Len())
	}
}

func TestROBAllocFullPanics(t *testing.T) {
	r := NewROB(1)
	alloc(r, 0, isa.OpNop)
	defer func() {
		if recover() == nil {
			t.Error("alloc from full ROB did not panic")
		}
	}()
	r.Alloc()
}

func TestROBSquashAll(t *testing.T) {
	r := NewROB(4)
	es := []*Entry{alloc(r, 0, isa.OpNop), alloc(r, 1, isa.OpNop)}
	if n := r.SquashAll(); n != 2 {
		t.Errorf("SquashAll = %d", n)
	}
	if r.Len() != 0 {
		t.Error("entries survive SquashAll")
	}
	for _, e := range es {
		if e.State != StateSquashed {
			t.Errorf("entry %d state = %s", e.Seq, e.State)
		}
	}
}

func TestROBSquashYounger(t *testing.T) {
	r := NewROB(8)
	var es []*Entry
	for i := uint64(0); i < 5; i++ {
		es = append(es, alloc(r, i, isa.OpNop))
	}
	if n := r.SquashYounger(2); n != 2 {
		t.Errorf("SquashYounger = %d, want 2", n)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
	if es[3].State != StateSquashed || es[4].State != StateSquashed {
		t.Error("younger entries not marked squashed")
	}
	if es[2].State == StateSquashed {
		t.Error("entry at seq boundary squashed")
	}
}

func TestROBWalkOrder(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 3; i++ {
		alloc(r, i, isa.OpNop)
	}
	var seen []uint64
	r.Walk(func(e *Entry) bool {
		seen = append(seen, e.Seq)
		return true
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Errorf("walk order = %v", seen)
	}
	seen = seen[:0]
	r.Walk(func(e *Entry) bool {
		seen = append(seen, e.Seq)
		return false
	})
	if len(seen) != 1 {
		t.Errorf("walk did not stop early: %v", seen)
	}
}

func TestOperandsReadyIsPureFlagCheck(t *testing.T) {
	r := NewROB(4)
	prod := alloc(r, 0, isa.OpAdd)
	cons := alloc(r, 1, isa.OpAdd)
	cons.Src[0] = Operand{Producer: prod}
	cons.Src[1] = Operand{Ready: true, Value: 7}
	if cons.OperandsReady() {
		t.Error("ready before the engine captured the operand")
	}
	// Completing the producer alone changes nothing: capture is the
	// cycle engine's completion broadcast, not a lazy deref here.
	prod.State = StateCompleted
	prod.Result = 42
	if cons.OperandsReady() {
		t.Error("OperandsReady dereferenced the producer")
	}
	cons.Src[0].Ready = true
	cons.Src[0].Value = prod.Result
	if !cons.OperandsReady() || cons.Src[0].Value != 42 {
		t.Error("captured operand not ready")
	}
	if cons.Src[0].Producer != prod {
		t.Error("provenance link lost after capture")
	}
}

func TestROBSlotRecycling(t *testing.T) {
	r := NewROB(2)
	a := alloc(r, 1, isa.OpNop)
	b := alloc(r, 2, isa.OpNop)
	if a.Slot == b.Slot {
		t.Fatalf("distinct entries share slot %d", a.Slot)
	}
	aSlot := a.Slot
	a.State = StateCompleted
	r.PopHead()
	c := alloc(r, 3, isa.OpNop)
	if c.Slot != aSlot {
		t.Errorf("recycled slot = %d, want %d", c.Slot, aSlot)
	}
	if c.Seq != 3 || c.State != StateDispatched {
		t.Error("recycled slot not reset")
	}
	if got := r.BySlot(c.Slot); got != c {
		t.Error("BySlot does not address the slab")
	}
	// Squash recycles too: both slots free again after SquashAll.
	r.SquashAll()
	d := r.Alloc()
	e := r.Alloc()
	if d.Slot == e.Slot {
		t.Error("squash did not recycle distinct slots")
	}
}

func TestROBResetRefillsFreeList(t *testing.T) {
	r := NewROB(3)
	alloc(r, 1, isa.OpNop)
	alloc(r, 2, isa.OpNop)
	if err := r.BeginReplace(3); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		alloc(r, 10+i, isa.OpNop)
	}
	if !r.Full() || r.Head().Seq != 10 {
		t.Errorf("after replace: len=%d head=%v", r.Len(), r.Head())
	}
	if err := r.BeginReplace(4); err == nil {
		t.Error("BeginReplace over capacity did not error")
	}
}

func TestPortsForClasses(t *testing.T) {
	if p := PortsFor(isa.OpDiv); len(p) != 1 || p[0] != PortDiv {
		t.Errorf("div ports = %v", p)
	}
	if p := PortsFor(isa.OpFDiv); len(p) != 1 || p[0] != PortDiv {
		t.Errorf("fdiv ports = %v", p)
	}
	if p := PortsFor(isa.OpLoad); len(p) != 2 {
		t.Errorf("load ports = %v", p)
	}
	if p := PortsFor(isa.OpAdd); len(p) != 2 || p[0] != PortALU0 {
		t.Errorf("alu ports = %v", p)
	}
	if p := PortsFor(isa.OpFMul); len(p) != 1 || p[0] != PortMul {
		t.Errorf("fmul ports = %v", p)
	}
}

func TestPortSetPerCycleSlots(t *testing.T) {
	var ps PortSet
	ps.NewCycle(1)
	if _, ok := ps.TryIssue(isa.OpStore, 1); !ok {
		t.Fatal("first store issue failed")
	}
	if _, ok := ps.TryIssue(isa.OpStore, 1); ok {
		t.Error("second store issued on single store port")
	}
	// Two loads per cycle on two ports, third fails.
	if _, ok := ps.TryIssue(isa.OpLoad, 1); !ok {
		t.Error("load0 failed")
	}
	if _, ok := ps.TryIssue(isa.OpLoad, 1); !ok {
		t.Error("load1 failed")
	}
	if _, ok := ps.TryIssue(isa.OpLoad, 1); ok {
		t.Error("third load issued")
	}
	ps.NewCycle(2)
	if _, ok := ps.TryIssue(isa.OpStore, 1); !ok {
		t.Error("store slot not recycled next cycle")
	}
}

func TestDividerNonPipelined(t *testing.T) {
	var ps PortSet
	ps.NewCycle(10)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); !ok {
		t.Fatal("first div failed")
	}
	if !ps.DivBusy() {
		t.Error("divider not busy after issue")
	}
	// Busy for the full 24 cycles: issue at 33 fails, at 34 succeeds.
	ps.NewCycle(33)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); ok {
		t.Error("div issued while unit busy (should contend)")
	}
	ps.NewCycle(34)
	if _, ok := ps.TryIssue(isa.OpFDiv, 24); !ok {
		t.Error("div failed after unit freed")
	}
	if ps.DivBusyCycles != 48 {
		t.Errorf("DivBusyCycles = %d, want 48", ps.DivBusyCycles)
	}
}

func TestMulIsPipelined(t *testing.T) {
	var ps PortSet
	ps.NewCycle(1)
	if _, ok := ps.TryIssue(isa.OpMul, 3); !ok {
		t.Fatal("mul issue failed")
	}
	ps.NewCycle(2)
	if _, ok := ps.TryIssue(isa.OpMul, 3); !ok {
		t.Error("mul not pipelined: back-to-back issue failed")
	}
}

func TestPredictorLearnsLoop(t *testing.T) {
	bp := NewPredictor(8)
	pc, target := 5, 2
	// Initially predicted not-taken (cold counters + no BTB).
	if taken, tgt := bp.Predict(pc); taken || tgt != pc+1 {
		t.Errorf("cold predict = %t, %d", taken, tgt)
	}
	for range 3 {
		bp.Update(pc, true, target)
	}
	taken, tgt := bp.Predict(pc)
	if !taken || tgt != target {
		t.Errorf("trained predict = %t, %d; want true, %d", taken, tgt, target)
	}
	// Train not-taken again; counter decays.
	for range 4 {
		bp.Update(pc, false, 0)
	}
	if taken, _ := bp.Predict(pc); taken {
		t.Error("predictor did not decay to not-taken")
	}
}

func TestPredictorFlush(t *testing.T) {
	bp := NewPredictor(8)
	bp.Prime(5, true, 2)
	if taken, _ := bp.Predict(5); !taken {
		t.Fatal("prime failed")
	}
	bp.Flush()
	if taken, tgt := bp.Predict(5); taken || tgt != 6 {
		t.Error("flush did not reset predictor")
	}
}

func TestPredictorBTBCollisionFallsBack(t *testing.T) {
	bp := NewPredictor(2) // 4 entries: pc 1 and 5 collide
	bp.Prime(1, true, 9)
	// pc 5 maps to the same slot but has a different pc tag: fall back to
	// not-taken even though the counter is saturated.
	if taken, tgt := bp.Predict(5); taken || tgt != 6 {
		t.Errorf("collided predict = %t,%d; want false,6", taken, tgt)
	}
}

func TestEntryStateString(t *testing.T) {
	states := []EntryState{StateDispatched, StateIssued, StateCompleted, StateFaulted, StateSquashed, StateRetired}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
}
