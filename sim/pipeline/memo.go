package pipeline

// Memo support for the sim/cpu replay-splice cache. The predictor has no
// recency state, so unlike the caches and TLBs (sim/cache/memo.go,
// sim/tlb/memo.go) its fingerprint folds raw table content: the touched
// index's saturating counter and BTB entry.

// fold mixes v into the running FNV-1a hash h.
func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// SetMemoHooks installs the recording hooks (nil detaches). touch fires
// with the table index on every prediction or update; invalidate fires
// on Flush.
func (bp *Predictor) SetMemoHooks(touch func(idx int), invalidate func()) {
	bp.onTouch = touch
	bp.onInval = invalidate
}

// MemoIndexOf returns the table index the branch at pc maps to.
func (bp *Predictor) MemoIndexOf(pc int) int { return pc & bp.mask }

// MemoHashIdx folds one table index's state into h.
func (bp *Predictor) MemoHashIdx(idx int, h uint64) uint64 {
	h = fold(h, uint64(bp.counters[idx]))
	e := bp.btb[idx]
	if e.valid {
		h = fold(h, 1)
		h = fold(h, uint64(uint(e.pc)))
		h = fold(h, uint64(uint(e.target)))
	} else {
		h = fold(h, 0)
	}
	return h
}

// BPImage is the post-window image of one predictor index.
type BPImage struct {
	Counter   uint8
	BTBValid  bool
	BTBPC     int
	BTBTarget int
}

// MemoCaptureIdx images one index at the end of a recorded window.
func (bp *Predictor) MemoCaptureIdx(idx int) BPImage {
	e := bp.btb[idx]
	return BPImage{Counter: bp.counters[idx], BTBValid: e.valid, BTBPC: e.pc, BTBTarget: e.target}
}

// MemoApplyIdx splices a captured index image back in.
func (bp *Predictor) MemoApplyIdx(idx int, im BPImage) {
	bp.counters[idx] = im.Counter
	bp.btb[idx] = btbEntry{valid: im.BTBValid, pc: im.BTBPC, target: im.BTBTarget}
}
