package pipeline

import (
	"fmt"

	"microscope/sim/isa"
)

// Port identifies an execution port. Ports are shared between the SMT
// contexts of a core — the sharing is what creates the port-contention
// side channel the paper's main result denoises (§4.3, PortSmash-style).
type Port int

// Execution ports.
const (
	PortALU0 Port = iota // integer ALU, moves, special ops
	PortALU1             // integer ALU, branches
	PortMul              // pipelined integer/FP multiplier and FP adder
	PortDiv              // NON-pipelined integer/FP divider
	PortLoad0
	PortLoad1
	PortStore
	NumPorts
)

// String returns the port name.
func (p Port) String() string {
	switch p {
	case PortALU0:
		return "ALU0"
	case PortALU1:
		return "ALU1"
	case PortMul:
		return "MUL"
	case PortDiv:
		return "DIV"
	case PortLoad0:
		return "LD0"
	case PortLoad1:
		return "LD1"
	case PortStore:
		return "ST"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// PortsFor returns the ports on which op may issue, in preference order.
func PortsFor(op isa.Op) []Port {
	switch {
	case op.IsLoad():
		return loadPorts
	case op.IsStore():
		return storePorts
	case op.IsBranch():
		return branchPorts
	}
	switch op {
	case isa.OpMul, isa.OpFMul, isa.OpFAdd:
		return mulPorts
	case isa.OpDiv, isa.OpFDiv:
		return divPorts
	default:
		return aluPorts
	}
}

var (
	aluPorts    = []Port{PortALU0, PortALU1}
	branchPorts = []Port{PortALU1, PortALU0}
	mulPorts    = []Port{PortMul}
	divPorts    = []Port{PortDiv}
	loadPorts   = []Port{PortLoad0, PortLoad1}
	storePorts  = []Port{PortStore}
)

// PortClass identifies a group of ops with identical PortsFor preference
// lists. Structural issue failure is class-uniform: if one ready op of a
// class cannot claim a port this cycle, no other op of the same class
// can either (they compete for exactly the same ports in the same
// order), so the issue stage keeps one ready queue per class and skips a
// whole class on its first structural failure.
type PortClass int

// Port classes, mirroring PortsFor.
const (
	ClassALU PortClass = iota
	ClassBranch
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	NumPortClasses
)

// ClassOf returns the port class of op (the partition induced by
// PortsFor).
func ClassOf(op isa.Op) PortClass {
	switch {
	case op.IsLoad():
		return ClassLoad
	case op.IsStore():
		return ClassStore
	case op.IsBranch():
		return ClassBranch
	}
	switch op {
	case isa.OpMul, isa.OpFMul, isa.OpFAdd:
		return ClassMul
	case isa.OpDiv, isa.OpFDiv:
		return ClassDiv
	default:
		return ClassALU
	}
}

// PortSet books issue slots per cycle and models the divider's
// non-pipelined occupancy. All state is shared by the core's SMT contexts.
type PortSet struct {
	cycle        uint64
	issuedThis   [NumPorts]bool
	divBusyUntil uint64
	// DivBusyCycles accumulates total cycles the divider was occupied, a
	// diagnostic for contention experiments.
	DivBusyCycles uint64
}

// NewCycle advances the port set to the given cycle, clearing per-cycle
// issue slots.
func (ps *PortSet) NewCycle(cycle uint64) {
	ps.cycle = cycle
	for i := range ps.issuedThis {
		ps.issuedThis[i] = false
	}
}

// TryIssue attempts to claim a port for op this cycle. The divider is
// non-pipelined: a div may only begin when the unit is idle, and occupies
// it for the instruction's full latency (passed by the caller via
// occupancy). For pipelined ports occupancy is ignored — one issue per
// cycle per port. It returns the claimed port.
func (ps *PortSet) TryIssue(op isa.Op, occupancy uint64) (Port, bool) {
	for _, p := range PortsFor(op) {
		if ps.issuedThis[p] {
			continue
		}
		if p == PortDiv {
			if ps.divBusyUntil > ps.cycle {
				return 0, false // divider busy: PORT CONTENTION
			}
			ps.divBusyUntil = ps.cycle + occupancy
			ps.DivBusyCycles += occupancy
		}
		ps.issuedThis[p] = true
		return p, true
	}
	return 0, false
}

// RetryAt returns the earliest cycle at which an op that failed TryIssue
// this cycle could next claim a port: the divider-free cycle for div ops
// blocked on the non-pipelined divider, otherwise the next cycle (the
// per-cycle issue slots reset every NewCycle). The fast-forward engine
// uses it to know how long an issue-ready entry stays provably blocked.
func (ps *PortSet) RetryAt(op isa.Op) uint64 {
	if PortsFor(op)[0] == PortDiv && ps.divBusyUntil > ps.cycle {
		return ps.divBusyUntil
	}
	return ps.cycle + 1
}

// DivBusy reports whether the divider is occupied at the current cycle.
func (ps *PortSet) DivBusy() bool { return ps.divBusyUntil > ps.cycle }

// DivFreeAt returns the cycle at which the divider next becomes free.
func (ps *PortSet) DivFreeAt() uint64 { return ps.divBusyUntil }
