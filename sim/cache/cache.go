// Package cache implements the simulated cache hierarchy: set-associative
// L1 data/instruction caches, a unified L2, a shared inclusive-ish L3, and
// the page-walk cache (PWC) used by the hardware page walker.
//
// Every access returns the latency it would take on hardware and the level
// it was served from, which is the raw signal behind both MicroScope
// side channels: the prime+probe AES attack classifies probe latencies into
// L1 / L2-L3 / memory bands (paper Fig. 11), and the Replayer tunes
// page-walk duration by flushing page-table entries to chosen levels
// (paper §4.1.2).
package cache

import "fmt"

// Level identifies where an access was served from.
type Level int

// Service levels, nearest first.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelL3
	LevelMem
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "Mem"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Config describes one cache.
type Config struct {
	Name     string
	Sets     int // number of sets; power of two
	Ways     int // associativity
	LineSize int // bytes; power of two
	Latency  int // cycles to serve a hit at this level
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets %d not a positive power of two", c.Name, c.Sets)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d not positive", c.Name, c.Ways)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("cache %s: latency %d not positive", c.Name, c.Latency)
	}
	return nil
}

// SizeBytes returns the capacity of the cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

type line struct {
	valid bool
	tag   uint64
	lru   uint64 // larger = more recently used
}

// Cache is one set-associative, physically-tagged cache level with LRU
// replacement. It tracks presence only (the simulation keeps data in
// mem.PhysMem); that is sufficient for timing behaviour.
type Cache struct {
	cfg       Config
	sets      [][]line
	lruClock  uint64
	hits      uint64
	misses    uint64
	lineShift uint   //simlint:snapexempt derived geometry: recomputed from cfg by New; snapshots restore into a same-config cache
	setMask   uint64 //simlint:snapexempt derived geometry: recomputed from cfg by New; snapshots restore into a same-config cache

	// Replay-memo recording hooks (nil when no recording is active; see
	// memo.go).
	onTouch func(set int) //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	onInval func()        //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
}

// New builds a cache from cfg, panicking on invalid configuration (caches
// are constructed from compile-time parameter sets).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets)
	backing := make([]line, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(cfg.Sets - 1),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(pa uint64) (set uint64, tag uint64) {
	lineAddr := pa >> c.lineShift
	return lineAddr & c.setMask, lineAddr >> uint(log2(c.cfg.Sets))
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Lookup probes the cache without modifying replacement state.
func (c *Cache) Lookup(pa uint64) bool {
	set, tag := c.index(pa)
	if c.onTouch != nil {
		c.onTouch(int(set))
	}
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access touches pa, returning whether it hit. On miss the line is filled
// (evicting LRU) and the evicted line address is returned in evicted with
// ok=true.
func (c *Cache) Access(pa uint64) (hit bool, evicted uint64, evictedOK bool) {
	set, tag := c.index(pa)
	if c.onTouch != nil {
		c.onTouch(int(set))
	}
	c.lruClock++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.lruClock
			c.hits++
			return true, 0, false
		}
	}
	c.misses++
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			evictedOK = false
			goto fill
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	evicted = c.lineAddr(set, lines[victim].tag)
	evictedOK = true
fill:
	lines[victim] = line{valid: true, tag: tag, lru: c.lruClock}
	return false, evicted, evictedOK
}

func (c *Cache) lineAddr(set, tag uint64) uint64 {
	return (tag<<uint(log2(c.cfg.Sets)) | set) << c.lineShift
}

// Flush invalidates the line containing pa, reporting whether it was
// present (clflush semantics).
func (c *Cache) Flush(pa uint64) bool {
	set, tag := c.index(pa)
	if c.onInval != nil {
		c.onInval()
	}
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i].valid = false
			return true
		}
	}
	return false
}

// FlushAll invalidates every line.
func (c *Cache) FlushAll() {
	if c.onInval != nil {
		c.onInval()
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
		}
	}
}

// SetOf returns the set index pa maps to (for prime+probe set selection).
func (c *Cache) SetOf(pa uint64) int {
	set, _ := c.index(pa)
	return int(set)
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }
