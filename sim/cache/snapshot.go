package cache

import (
	"fmt"

	"microscope/sim/mem"
)

// Snapshot types for the checkpoint/restore subsystem (sim/snapshot).
// Geometry (set/way counts, capacities) is carried in every Snap and
// validated on Restore: a snapshot can only be restored into structures
// built from the same configuration, so a config drift surfaces as a
// descriptive error rather than silent state corruption.

// LineSnap is one serializable cache line.
type LineSnap struct {
	Valid bool
	Tag   uint64
	LRU   uint64
}

// CacheSnap is the serializable state of one cache level. Lines is
// set-major: Lines[set*Ways+way].
type CacheSnap struct {
	Sets, Ways int
	Lines      []LineSnap
	LRUClock   uint64
	Hits       uint64
	Misses     uint64
}

// Snapshot captures the cache's line array and statistics.
func (c *Cache) Snapshot() CacheSnap {
	s := CacheSnap{
		Sets:     c.cfg.Sets,
		Ways:     c.cfg.Ways,
		Lines:    make([]LineSnap, c.cfg.Sets*c.cfg.Ways),
		LRUClock: c.lruClock,
		Hits:     c.hits,
		Misses:   c.misses,
	}
	for si, set := range c.sets {
		for wi, l := range set {
			s.Lines[si*c.cfg.Ways+wi] = LineSnap{Valid: l.valid, Tag: l.tag, LRU: l.lru}
		}
	}
	return s
}

// Restore overwrites the cache's state with a snapshot taken from a cache
// of the same geometry.
func (c *Cache) Restore(s CacheSnap) error {
	if s.Sets != c.cfg.Sets || s.Ways != c.cfg.Ways || len(s.Lines) != s.Sets*s.Ways {
		return fmt.Errorf("cache %s: snapshot geometry %dx%d (%d lines), have %dx%d",
			c.cfg.Name, s.Sets, s.Ways, len(s.Lines), c.cfg.Sets, c.cfg.Ways)
	}
	for si := range c.sets {
		for wi := range c.sets[si] {
			ls := s.Lines[si*s.Ways+wi]
			c.sets[si][wi] = line{valid: ls.Valid, tag: ls.Tag, lru: ls.LRU}
		}
	}
	c.lruClock = s.LRUClock
	c.hits = s.Hits
	c.misses = s.Misses
	return nil
}

// HierarchySnap is the serializable state of the full cache hierarchy.
type HierarchySnap struct {
	L1D, L1I, L2, L3 CacheSnap
}

// Snapshot captures all four levels.
func (h *Hierarchy) Snapshot() HierarchySnap {
	return HierarchySnap{
		L1D: h.l1d.Snapshot(),
		L1I: h.l1i.Snapshot(),
		L2:  h.l2.Snapshot(),
		L3:  h.l3.Snapshot(),
	}
}

// Restore overwrites all four levels from a snapshot.
func (h *Hierarchy) Restore(s HierarchySnap) error {
	if err := h.l1d.Restore(s.L1D); err != nil {
		return err
	}
	if err := h.l1i.Restore(s.L1I); err != nil {
		return err
	}
	if err := h.l2.Restore(s.L2); err != nil {
		return err
	}
	return h.l3.Restore(s.L3)
}

// PWCEntrySnap is one serializable page-walk-cache entry.
type PWCEntrySnap struct {
	EA    uint64
	Level mem.Level
	LRU   uint64
}

// PWCSnap is the serializable state of the page-walk cache.
type PWCSnap struct {
	Capacity int
	Entries  []PWCEntrySnap // the valid entries, in slot order
	Clock    uint64
	Hits     uint64
	Misses   uint64
}

// Snapshot captures the PWC's valid entries and statistics.
func (p *PWC) Snapshot() PWCSnap {
	s := PWCSnap{
		Capacity: p.capacity,
		Entries:  make([]PWCEntrySnap, p.n),
		Clock:    p.clock,
		Hits:     p.hits,
		Misses:   p.misses,
	}
	for i := 0; i < p.n; i++ {
		e := p.entries[i]
		s.Entries[i] = PWCEntrySnap{EA: e.ea, Level: e.level, LRU: e.lru}
	}
	return s
}

// Restore overwrites the PWC's state with a snapshot taken from a PWC of
// the same capacity.
func (p *PWC) Restore(s PWCSnap) error {
	if s.Capacity != p.capacity || len(s.Entries) > p.capacity {
		return fmt.Errorf("pwc: snapshot capacity %d (%d entries), have capacity %d",
			s.Capacity, len(s.Entries), p.capacity)
	}
	p.n = len(s.Entries)
	for i, e := range s.Entries {
		p.entries[i] = pwcEntry{ea: e.EA, level: e.Level, lru: e.LRU}
	}
	for i := p.n; i < p.capacity; i++ {
		p.entries[i] = pwcEntry{}
	}
	p.clock = s.Clock
	p.hits = s.Hits
	p.misses = s.Misses
	return nil
}
