package cache

// HierarchyConfig parameterizes a three-level hierarchy plus main-memory
// latency. Defaults approximate the paper's Xeon E5-1630 v3 and, with the
// probe overhead in attack/monitor, land hit latencies in the bands the
// paper reports for Fig. 11 (<60 L1, 100–200 L2/L3, >300 memory).
type HierarchyConfig struct {
	L1D, L1I, L2, L3 Config
	MemLatency       int
}

// DefaultHierarchyConfig returns the baseline configuration used by the
// experiments.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:        Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, Latency: 4},
		L1I:        Config{Name: "L1I", Sets: 64, Ways: 8, LineSize: 64, Latency: 4},
		L2:         Config{Name: "L2", Sets: 512, Ways: 8, LineSize: 64, Latency: 12},
		L3:         Config{Name: "L3", Sets: 8192, Ways: 16, LineSize: 64, Latency: 40},
		MemLatency: 220,
	}
}

// Hierarchy is the chip's cache subsystem. One Hierarchy is shared by both
// SMT contexts of a core (as on real hardware), so victim fills are visible
// to the attacker's probes.
type Hierarchy struct {
	cfg HierarchyConfig //simlint:snapexempt construction parameter: snapshots restore into a hierarchy built from the same config (geometry mismatch is a caller error)
	l1d *Cache
	l1i *Cache
	l2  *Cache
	l3  *Cache
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1d: New(cfg.L1D),
		l1i: New(cfg.L1I),
		l2:  New(cfg.L2),
		l3:  New(cfg.L3),
	}
}

// NewDefaultHierarchy builds the hierarchy with DefaultHierarchyConfig.
func NewDefaultHierarchy() *Hierarchy { return NewHierarchy(DefaultHierarchyConfig()) }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1D returns the L1 data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I returns the L1 instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L2 returns the unified L2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the shared L3 cache.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Access performs a data access at physical address pa: it probes
// L1D→L2→L3, fills all levels above the serving one, and returns the
// total latency plus the level that served the request.
func (h *Hierarchy) Access(pa uint64) (latency int, served Level) {
	latency = h.l1d.Config().Latency
	if hit, _, _ := h.l1d.Access(pa); hit {
		return latency, LevelL1
	}
	latency += h.l2.Config().Latency
	if hit, _, _ := h.l2.Access(pa); hit {
		return latency, LevelL2
	}
	latency += h.l3.Config().Latency
	if hit, _, _ := h.l3.Access(pa); hit {
		return latency, LevelL3
	}
	return latency + h.cfg.MemLatency, LevelMem
}

// AccessInstr performs an instruction fetch: L1I→L2→L3.
func (h *Hierarchy) AccessInstr(pa uint64) (latency int, served Level) {
	latency = h.l1i.Config().Latency
	if hit, _, _ := h.l1i.Access(pa); hit {
		return latency, LevelL1
	}
	latency += h.l2.Config().Latency
	if hit, _, _ := h.l2.Access(pa); hit {
		return latency, LevelL2
	}
	latency += h.l3.Config().Latency
	if hit, _, _ := h.l3.Access(pa); hit {
		return latency, LevelL3
	}
	return latency + h.cfg.MemLatency, LevelMem
}

// Probe reports the level pa would be served from without disturbing any
// cache state (an idealized attacker measurement; the monitor package
// layers timing noise on top).
func (h *Hierarchy) Probe(pa uint64) (latency int, served Level) {
	latency = h.l1d.Config().Latency
	if h.l1d.Lookup(pa) {
		return latency, LevelL1
	}
	latency += h.l2.Config().Latency
	if h.l2.Lookup(pa) {
		return latency, LevelL2
	}
	latency += h.l3.Config().Latency
	if h.l3.Lookup(pa) {
		return latency, LevelL3
	}
	return latency + h.cfg.MemLatency, LevelMem
}

// FlushAddr removes the line containing pa from every level (clflush).
// This is MicroScope setup step 1/3: flushing the replay handle's data and
// the four page-table entries from the cache subsystem.
func (h *Hierarchy) FlushAddr(pa uint64) {
	h.l1d.Flush(pa)
	h.l1i.Flush(pa)
	h.l2.Flush(pa)
	h.l3.Flush(pa)
}

// FlushAll empties every level.
func (h *Hierarchy) FlushAll() {
	h.l1d.FlushAll()
	h.l1i.FlushAll()
	h.l2.FlushAll()
	h.l3.FlushAll()
}

// WarmTo installs pa so that an access is served from exactly the given
// level: the line is filled at `level` and below, and flushed from levels
// above. This is the page-walk-duration tuning knob of §4.1.2 — the
// Replayer decides, per page-table entry, which level serves it.
func (h *Hierarchy) WarmTo(pa uint64, level Level) {
	h.FlushAddr(pa)
	switch level {
	case LevelL1:
		h.l1d.Access(pa)
		h.l2.Access(pa)
		h.l3.Access(pa)
	case LevelL2:
		h.l2.Access(pa)
		h.l3.Access(pa)
	case LevelL3:
		h.l3.Access(pa)
	case LevelMem:
		// flushed everywhere already
	}
}

// LevelOf reports which level currently holds pa.
func (h *Hierarchy) LevelOf(pa uint64) Level {
	switch {
	case h.l1d.Lookup(pa):
		return LevelL1
	case h.l2.Lookup(pa):
		return LevelL2
	case h.l3.Lookup(pa):
		return LevelL3
	default:
		return LevelMem
	}
}

// HitLatency returns the total latency of a hit served at the given level.
func (h *Hierarchy) HitLatency(level Level) int {
	lat := h.l1d.Config().Latency
	if level == LevelL1 {
		return lat
	}
	lat += h.l2.Config().Latency
	if level == LevelL2 {
		return lat
	}
	lat += h.l3.Config().Latency
	if level == LevelL3 {
		return lat
	}
	return lat + h.cfg.MemLatency
}
