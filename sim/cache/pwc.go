package cache

import "microscope/sim/mem"

// PWC is the page-walk cache: a small fully-associative cache over
// page-table entries of the three *upper* levels (PGD, PUD, PMD). Leaf
// PTEs are never cached here, matching the MMU organisation in the paper's
// §2.1. A PWC hit lets the hardware walker skip the memory accesses for
// the cached levels.
//
// The entries live in a fixed-size value array scanned linearly: at the
// hardware-realistic capacities in use (32 entries) a scan beats a
// map[uint64]*pwcEntry on every operation and — unlike the map — allocates
// nothing after construction, which matters because the walker probes the
// PWC on every TLB miss.
type PWC struct {
	capacity int
	entries  []pwcEntry // valid entries in [0, n)
	n        int
	clock    uint64
	hits     uint64
	misses   uint64

	// Replay-memo recording hooks and splice scratch (see memo.go).
	onTouch      func()     //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	onInval      func()     //simlint:snapexempt host wiring: memo recorder re-arms its hooks when recording restarts
	applyScratch []pwcEntry //simlint:snapexempt transient scratch: dead outside a single splice apply, holds no machine state
}

type pwcEntry struct {
	ea    uint64 // entry physical address
	level mem.Level
	lru   uint64
}

// NewPWC returns a PWC holding up to capacity upper-level entries.
func NewPWC(capacity int) *PWC {
	p := &PWC{capacity: capacity}
	if capacity > 0 {
		p.entries = make([]pwcEntry, capacity)
	}
	return p
}

// find returns the index of the entry at ea, or -1.
func (p *PWC) find(ea uint64) int {
	for i := 0; i < p.n; i++ {
		if p.entries[i].ea == ea {
			return i
		}
	}
	return -1
}

// Lookup reports whether the page-table entry at physical address ea is
// cached, updating recency on hit.
func (p *PWC) Lookup(ea uint64) bool {
	if p.onTouch != nil {
		p.onTouch()
	}
	p.clock++
	if i := p.find(ea); i >= 0 {
		p.entries[i].lru = p.clock
		p.hits++
		return true
	}
	p.misses++
	return false
}

// Insert caches the upper-level entry at ea. Leaf (PTE-level) insertions
// are ignored.
func (p *PWC) Insert(ea uint64, level mem.Level) {
	if level == mem.PTE || p.capacity <= 0 {
		return
	}
	if p.onTouch != nil {
		p.onTouch()
	}
	p.clock++
	if i := p.find(ea); i >= 0 {
		p.entries[i].lru = p.clock
		return
	}
	slot := p.n
	if p.n >= p.capacity {
		// Evict the least recently used entry.
		slot = 0
		for i := 1; i < p.n; i++ {
			if p.entries[i].lru < p.entries[slot].lru {
				slot = i
			}
		}
	} else {
		p.n++
	}
	p.entries[slot] = pwcEntry{ea: ea, level: level, lru: p.clock}
}

// Flush removes the entry at ea (MicroScope setup flushes the PWC along
// with the cache hierarchy so the walk starts from scratch).
func (p *PWC) Flush(ea uint64) {
	if p.onInval != nil {
		p.onInval()
	}
	if i := p.find(ea); i >= 0 {
		p.entries[i] = p.entries[p.n-1]
		p.n--
	}
}

// FlushAll empties the PWC.
func (p *PWC) FlushAll() {
	if p.onInval != nil {
		p.onInval()
	}
	p.n = 0
}

// Len returns the number of cached entries.
func (p *PWC) Len() int { return p.n }

// Stats returns cumulative hit/miss counts.
func (p *PWC) Stats() (hits, misses uint64) { return p.hits, p.misses }
