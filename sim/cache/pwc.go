package cache

import "microscope/sim/mem"

// PWC is the page-walk cache: a small fully-associative cache over
// page-table entries of the three *upper* levels (PGD, PUD, PMD). Leaf
// PTEs are never cached here, matching the MMU organisation in the paper's
// §2.1. A PWC hit lets the hardware walker skip the memory accesses for
// the cached levels.
type PWC struct {
	capacity int
	entries  map[uint64]*pwcEntry // keyed by entry physical address
	clock    uint64
	hits     uint64
	misses   uint64
}

type pwcEntry struct {
	level mem.Level
	lru   uint64
}

// NewPWC returns a PWC holding up to capacity upper-level entries.
func NewPWC(capacity int) *PWC {
	return &PWC{capacity: capacity, entries: make(map[uint64]*pwcEntry, capacity)}
}

// Lookup reports whether the page-table entry at physical address ea is
// cached, updating recency on hit.
func (p *PWC) Lookup(ea uint64) bool {
	p.clock++
	if e, ok := p.entries[ea]; ok {
		e.lru = p.clock
		p.hits++
		return true
	}
	p.misses++
	return false
}

// Insert caches the upper-level entry at ea. Leaf (PTE-level) insertions
// are ignored.
func (p *PWC) Insert(ea uint64, level mem.Level) {
	if level == mem.PTE || p.capacity <= 0 {
		return
	}
	p.clock++
	if e, ok := p.entries[ea]; ok {
		e.lru = p.clock
		return
	}
	if len(p.entries) >= p.capacity {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for k, e := range p.entries {
			if e.lru < oldest {
				oldest, victim = e.lru, k
			}
		}
		delete(p.entries, victim)
	}
	p.entries[ea] = &pwcEntry{level: level, lru: p.clock}
}

// Flush removes the entry at ea (MicroScope setup flushes the PWC along
// with the cache hierarchy so the walk starts from scratch).
func (p *PWC) Flush(ea uint64) { delete(p.entries, ea) }

// FlushAll empties the PWC.
func (p *PWC) FlushAll() {
	clear(p.entries)
}

// Len returns the number of cached entries.
func (p *PWC) Len() int { return len(p.entries) }

// Stats returns cumulative hit/miss counts.
func (p *PWC) Stats() (hits, misses uint64) { return p.hits, p.misses }
