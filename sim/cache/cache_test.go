package cache

import (
	"testing"
	"testing/quick"

	"microscope/sim/mem"
)

func smallCache() *Cache {
	return New(Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, Latency: 4})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "sets", Sets: 3, Ways: 2, LineSize: 64, Latency: 1},
		{Name: "line", Sets: 4, Ways: 2, LineSize: 48, Latency: 1},
		{Name: "ways", Sets: 4, Ways: 0, LineSize: 64, Latency: 1},
		{Name: "lat", Sets: 4, Ways: 2, LineSize: 64, Latency: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q validated", c.Name)
		}
	}
	good := Config{Name: "ok", Sets: 64, Ways: 8, LineSize: 64, Latency: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.SizeBytes() != 64*8*64 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if hit, _, _ := c.Access(0x1000); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000); !hit {
		t.Error("warm access missed")
	}
	// Same line, different offset.
	if hit, _, _ := c.Access(0x1030); !hit {
		t.Error("same-line access missed")
	}
	// Different line.
	if hit, _, _ := c.Access(0x1040); hit {
		t.Error("next-line access hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways, 64B lines: set stride = 256
	// Three lines in the same set: a, b, c.
	a, b, x := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a more recent than b
	_, evicted, ok := c.Access(x)
	if !ok || evicted != b {
		t.Errorf("evicted %#x (ok=%t), want %#x", evicted, ok, b)
	}
	if !c.Lookup(a) || !c.Lookup(x) || c.Lookup(b) {
		t.Error("post-eviction contents wrong")
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Access(0x1000)
	if !c.Flush(0x1000) {
		t.Error("flush of present line returned false")
	}
	if c.Flush(0x1000) {
		t.Error("flush of absent line returned true")
	}
	if c.Lookup(0x1000) {
		t.Error("line survived flush")
	}
	c.Access(0x2000)
	c.FlushAll()
	if c.Lookup(0x2000) {
		t.Error("line survived FlushAll")
	}
}

func TestLookupDoesNotPerturbLRU(t *testing.T) {
	c := smallCache()
	a, b, x := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Access(a)
	c.Access(b)
	// Lookup of a must NOT refresh it; b stays MRU, so a is the victim.
	c.Lookup(a)
	_, evicted, ok := c.Access(x)
	if !ok || evicted != a {
		t.Errorf("evicted %#x, want %#x (Lookup must not touch LRU)", evicted, a)
	}
}

func TestSetOfMapsWithinRange(t *testing.T) {
	c := smallCache()
	f := func(pa uint64) bool {
		s := c.SetOf(pa)
		return s >= 0 && s < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Access(pa), Lookup(pa) is always true.
func TestAccessThenLookupProperty(t *testing.T) {
	c := New(Config{Name: "p", Sets: 16, Ways: 4, LineSize: 64, Latency: 1})
	f := func(pa uint64) bool {
		c.Access(pa)
		return c.Lookup(pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyFillAndLevels(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0x4_0000)

	lat, lvl := h.Access(pa)
	if lvl != LevelMem {
		t.Fatalf("cold access served from %s", lvl)
	}
	wantCold := 4 + 12 + 40 + 220
	if lat != wantCold {
		t.Errorf("cold latency = %d, want %d", lat, wantCold)
	}

	lat, lvl = h.Access(pa)
	if lvl != LevelL1 || lat != 4 {
		t.Errorf("warm access = %d cycles from %s, want 4 from L1", lat, lvl)
	}

	// Flush only L1: next access served by L2.
	h.L1D().Flush(pa)
	lat, lvl = h.Access(pa)
	if lvl != LevelL2 || lat != 16 {
		t.Errorf("after L1 flush: %d cycles from %s, want 16 from L2", lat, lvl)
	}
}

func TestHierarchyProbeNonDestructive(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0x8000)
	h.Access(pa) // fill all levels
	h.L1D().Flush(pa)
	if _, lvl := h.Probe(pa); lvl != LevelL2 {
		t.Fatalf("probe served from %v, want L2", lvl)
	}
	// Probe must not have re-filled L1.
	if h.L1D().Lookup(pa) {
		t.Error("Probe filled L1")
	}
}

func TestHierarchyFlushAddr(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0xdead00)
	h.Access(pa)
	h.FlushAddr(pa)
	if _, lvl := h.Probe(pa); lvl != LevelMem {
		t.Errorf("after FlushAddr, served from %s", lvl)
	}
}

func TestHierarchyWarmTo(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0x1_0000)
	for _, lvl := range []Level{LevelL1, LevelL2, LevelL3, LevelMem} {
		h.WarmTo(pa, lvl)
		if got := h.LevelOf(pa); got != lvl {
			t.Errorf("WarmTo(%s): LevelOf = %s", lvl, got)
		}
		if lat, got := h.Probe(pa); got != lvl || lat != h.HitLatency(lvl) {
			t.Errorf("WarmTo(%s): probe %d from %s, want %d", lvl, lat, got, h.HitLatency(lvl))
		}
	}
}

func TestHitLatencyMonotone(t *testing.T) {
	h := NewDefaultHierarchy()
	prev := 0
	for _, lvl := range []Level{LevelL1, LevelL2, LevelL3, LevelMem} {
		lat := h.HitLatency(lvl)
		if lat <= prev {
			t.Errorf("HitLatency(%s) = %d not > %d", lvl, lat, prev)
		}
		prev = lat
	}
}

func TestInstrPathSeparateFromData(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0x9000)
	h.AccessInstr(pa)
	// The data path must not see an L1 hit (separate L1I/L1D), but L2 is
	// unified so it hits there.
	if h.L1D().Lookup(pa) {
		t.Error("instruction fetch filled L1D")
	}
	if _, lvl := h.Access(pa); lvl != LevelL2 {
		t.Errorf("data access after instr fetch served from %s, want L2", lvl)
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMem: "Mem"} {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q", lvl, lvl.String())
		}
	}
}

func TestPWCBasics(t *testing.T) {
	p := NewPWC(2)
	if p.Lookup(0x100) {
		t.Error("cold PWC hit")
	}
	p.Insert(0x100, mem.PGD)
	p.Insert(0x200, mem.PUD)
	if !p.Lookup(0x100) || !p.Lookup(0x200) {
		t.Error("inserted entries missing")
	}
	// Leaf entries are never cached.
	p.Insert(0x300, mem.PTE)
	if p.Lookup(0x300) {
		t.Error("PTE-level entry cached in PWC")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestPWCEvictsLRU(t *testing.T) {
	p := NewPWC(2)
	p.Insert(0x100, mem.PGD)
	p.Insert(0x200, mem.PUD)
	p.Lookup(0x100) // refresh 0x100; 0x200 is now LRU
	p.Insert(0x300, mem.PMD)
	if p.Lookup(0x200) {
		t.Error("LRU entry survived eviction")
	}
	if !p.Lookup(0x100) || !p.Lookup(0x300) {
		t.Error("wrong entry evicted")
	}
}

func TestPWCFlush(t *testing.T) {
	p := NewPWC(4)
	p.Insert(0x100, mem.PGD)
	p.Flush(0x100)
	if p.Lookup(0x100) {
		t.Error("entry survived Flush")
	}
	p.Insert(0x200, mem.PUD)
	p.FlushAll()
	if p.Len() != 0 {
		t.Error("entries survived FlushAll")
	}
}

func TestPWCZeroCapacity(t *testing.T) {
	p := NewPWC(0)
	p.Insert(0x100, mem.PGD)
	if p.Lookup(0x100) {
		t.Error("zero-capacity PWC cached an entry")
	}
}

// Property: after Access fills a line, it is resident at L1 and a probe
// returns the L1 latency (fill invariant).
func TestHierarchyFillInvariant(t *testing.T) {
	h := NewDefaultHierarchy()
	f := func(pa uint64) bool {
		pa &= 1<<30 - 1
		h.Access(pa)
		lat, lvl := h.Probe(pa)
		return lvl == LevelL1 && lat == h.HitLatency(LevelL1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Eviction from L1 leaves the line in L2/L3 (the hierarchy is filled on
// the way in), which is what makes Fig. 11's middle band exist.
func TestEvictionLeavesOuterCopies(t *testing.T) {
	h := NewDefaultHierarchy()
	base := uint64(0x10_0000)
	h.Access(base)
	// Drive enough conflicting lines through the same L1 set to evict it.
	setStride := uint64(64 * 64) // sets * line size for the default L1D
	for i := uint64(1); i <= 16; i++ {
		h.Access(base + i*setStride)
	}
	if h.L1D().Lookup(base) {
		t.Skip("victim line survived associativity; widen conflict set")
	}
	if _, lvl := h.Probe(base); lvl != LevelL2 {
		t.Errorf("evicted line served from %s, want L2", lvl)
	}
}

func TestWarmToIsIdempotent(t *testing.T) {
	h := NewDefaultHierarchy()
	pa := uint64(0x9000)
	for i := 0; i < 3; i++ {
		h.WarmTo(pa, LevelL3)
		if got := h.LevelOf(pa); got != LevelL3 {
			t.Fatalf("iteration %d: level %s", i, got)
		}
	}
}
