package cache

import "microscope/sim/mem"

// Memo support: the hooks, rank-normalized hashing and set imaging the
// sim/cpu replay-splice cache uses to memoize a transient replay window.
//
// The recorder cannot fingerprint raw cache state: the LRU fields are
// monotonic clock values that never repeat across windows, so two
// behaviourally identical windows would never hash equal. What actually
// determines hit/miss/eviction behaviour is, per set, the (valid, tag)
// content by way index plus the *relative recency order* of the valid
// ways — so the hash folds LRU ranks, not clock values, and the captured
// post-window images store LRU values as offsets from the window-start
// clock (ways untouched inside the window keep their live clocks at
// splice time, preserving their ranks without replaying stale absolutes).

// fold mixes v into the running FNV-1a hash h.
func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// SetMemoHooks installs the recording hooks (nil detaches). touch fires
// with the set index on every operation that reads or fills a set;
// invalidate fires on any flush, which the recorder treats as fatal to
// the window being recorded (flushes come from module code that the memo
// never runs inside a window, so this is defensive).
func (c *Cache) SetMemoHooks(touch func(set int), invalidate func()) {
	c.onTouch = touch
	c.onInval = invalidate
}

// MemoHashSet folds the behaviour-determining state of one set into h:
// per way, its valid bit and — when valid — its tag and LRU rank among
// the set's valid ways. Invalid ways contribute position only (victim
// selection prefers the first invalid way by index, never by recency).
func (c *Cache) MemoHashSet(set int, h uint64) uint64 {
	lines := c.sets[set]
	for i := range lines {
		if !lines[i].valid {
			h = fold(h, 0)
			continue
		}
		rank := uint64(1)
		for j := range lines {
			if j == i || !lines[j].valid {
				continue
			}
			if lines[j].lru < lines[i].lru || (lines[j].lru == lines[i].lru && j < i) {
				rank++
			}
		}
		h = fold(h, rank<<1|1)
		h = fold(h, lines[i].tag)
	}
	return h
}

// LineImage is the post-window image of one cache way. LruOff is the
// way's LRU clock relative to the window-start clock when the window
// touched it, or -1 for a way the window left alone (its live clock —
// and therefore its rank — is already correct at splice time).
type LineImage struct {
	Valid  bool
	Tag    uint64
	LruOff int64
}

// MemoCaptureSet images one set at the end of a recorded window.
func (c *Cache) MemoCaptureSet(set int, startClock uint64) []LineImage {
	lines := c.sets[set]
	img := make([]LineImage, len(lines))
	for i := range lines {
		img[i] = LineImage{Valid: lines[i].valid, Tag: lines[i].tag, LruOff: -1}
		if lines[i].lru > startClock {
			img[i].LruOff = int64(lines[i].lru - startClock)
		}
	}
	return img
}

// MemoApplySet splices a captured set image back in, rebasing in-window
// LRU assignments onto baseClock (the set's clock when the splice began).
func (c *Cache) MemoApplySet(set int, img []LineImage, baseClock uint64) {
	lines := c.sets[set]
	for i := range img {
		lines[i].valid = img[i].Valid
		lines[i].tag = img[i].Tag
		if img[i].LruOff >= 0 {
			lines[i].lru = baseClock + uint64(img[i].LruOff)
		}
	}
}

// MemoClock returns the current LRU clock.
func (c *Cache) MemoClock() uint64 { return c.lruClock }

// MemoAdvance replays a window's aggregate effect on the clock and the
// hit/miss statistics.
func (c *Cache) MemoAdvance(clockDelta, hitsDelta, missDelta uint64) {
	c.lruClock += clockDelta
	c.hits += hitsDelta
	c.misses += missDelta
}

// --- PWC -------------------------------------------------------------

// SetMemoHooks installs the PWC recording hooks (nil detaches). The PWC
// is fully associative, so a touch covers the whole structure.
func (p *PWC) SetMemoHooks(touch func(), invalidate func()) {
	p.onTouch = touch
	p.onInval = invalidate
}

// MemoHash folds the PWC's behaviour-determining state into h: the entry
// count plus every entry's (address, level) in LRU-rank order. Physical
// slot order is excluded on purpose — lookups scan all entries and
// eviction picks the global LRU minimum, so slot arrangement never
// influences behaviour, while splices may reproduce it differently.
func (p *PWC) MemoHash(h uint64) uint64 {
	h = fold(h, uint64(p.n))
	prev := uint64(0)
	for k := 0; k < p.n; k++ {
		// Selection pass: k-th smallest LRU. Clocks are unique (every
		// touch assigns a fresh increment), so the order is total.
		best := -1
		for i := 0; i < p.n; i++ {
			if p.entries[i].lru > prev && (best < 0 || p.entries[i].lru < p.entries[best].lru) {
				best = i
			}
		}
		if best < 0 {
			break // duplicate clocks: only possible in a corrupt image
		}
		prev = p.entries[best].lru
		h = fold(h, p.entries[best].ea)
		h = fold(h, uint64(p.entries[best].level))
	}
	return h
}

// PWCImage is the post-window image of one PWC entry (same LruOff
// convention as LineImage; untouched entries keep their live clock,
// matched by entry address).
type PWCImage struct {
	EA     uint64
	Level  mem.Level
	LruOff int64
}

// MemoCapture images the whole PWC at the end of a recorded window.
func (p *PWC) MemoCapture(startClock uint64) []PWCImage {
	img := make([]PWCImage, p.n)
	for i := 0; i < p.n; i++ {
		img[i] = PWCImage{EA: p.entries[i].ea, Level: p.entries[i].level, LruOff: -1}
		if p.entries[i].lru > startClock {
			img[i].LruOff = int64(p.entries[i].lru - startClock)
		}
	}
	return img
}

// MemoApply splices a captured PWC image back in.
func (p *PWC) MemoApply(img []PWCImage, baseClock uint64) {
	if p.applyScratch == nil {
		p.applyScratch = make([]pwcEntry, p.capacity)
	}
	old := p.applyScratch[:p.n]
	copy(old, p.entries[:p.n])
	p.n = len(img)
	for i := range img {
		lru := baseClock
		if img[i].LruOff >= 0 {
			lru += uint64(img[i].LruOff)
		} else {
			for j := range old {
				if old[j].ea == img[i].EA {
					lru = old[j].lru
					break
				}
			}
		}
		p.entries[i] = pwcEntry{ea: img[i].EA, level: img[i].Level, lru: lru}
	}
}

// MemoClock returns the current PWC clock.
func (p *PWC) MemoClock() uint64 { return p.clock }

// MemoAdvance replays a window's aggregate clock and statistics effect.
func (p *PWC) MemoAdvance(clockDelta, hitsDelta, missDelta uint64) {
	p.clock += clockDelta
	p.hits += hitsDelta
	p.misses += missDelta
}
