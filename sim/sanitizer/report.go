package sanitizer

import (
	"fmt"
	"sort"
	"strings"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/sim/isa"
)

// Finding is a dynamic finding: one (context, PC, channel, flow) site
// that transmitted at least once, aggregated over its dynamic
// instances.
type Finding struct {
	Context  int              `json:"context"`
	PC       int              `json:"pc"`
	Instr    string           `json:"instr"`
	Op       isa.Op           `json:"-"`
	Channel  sidechan.Channel `json:"channel"`
	Implicit bool             `json:"implicit,omitempty"`
	// Count is the number of dynamic transmit instances; Transient of
	// those, how many were squashed (the replay-shadow instances the
	// paper's attacker observes).
	Count     int `json:"count"`
	Transient int `json:"transient"`
	// Taint is the union atom mask across instances.
	Taint uint64 `json:"taint"`
	// Replays is the number of distinct replay iterations that
	// re-observed this site (0 when replay attribution was not run or
	// the site transmitted outside any window).
	Replays int `json:"replays,omitempty"`
}

// Findings aggregates the recorded transmit events per static program
// point, in canonical (context, PC, channel) order.
func (s *Sanitizer) Findings() []Finding {
	type key struct {
		ctx, pc  int
		ch       sidechan.Channel
		implicit bool
	}
	agg := make(map[key]*Finding)
	replays := make(map[key]map[int]bool)
	var order []key
	for _, ev := range s.events {
		k := key{ev.Context, ev.PC, ev.Channel, ev.Implicit}
		f := agg[k]
		if f == nil {
			f = &Finding{
				Context:  ev.Context,
				PC:       ev.PC,
				Instr:    ev.Instr.String(),
				Op:       ev.Instr.Op,
				Channel:  ev.Channel,
				Implicit: ev.Implicit,
			}
			agg[k] = f
			replays[k] = make(map[int]bool)
			order = append(order, k)
		}
		f.Count++
		if ev.Transient {
			f.Transient++
		}
		f.Taint |= ev.Taint
		if ev.Replay >= 0 {
			replays[k][ev.Replay] = true
		}
	}
	out := make([]Finding, 0, len(order))
	for _, k := range order {
		f := *agg[k]
		f.Replays = len(replays[k])
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Context != b.Context {
			return a.Context < b.Context
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		return !a.Implicit && b.Implicit
	})
	return out
}

// ReconcileClass machine-classifies one static/dynamic discrepancy (or
// agreement) in the three-way cross-validation.
type ReconcileClass int

// Reconciliation classes. Everything except Unexplained is an
// understood, machine-explained relationship between the static
// over-approximation and the dynamic observation.
const (
	// Confirmed: static finding with a dynamic transmit on the same
	// channel at the same PC.
	Confirmed ReconcileClass = iota
	// ChannelMismatch: both analyses flag the PC but over different
	// channels (e.g. static's explicit class vs a dynamically implicit
	// flow) — flagged for review, still a disagreement.
	ChannelMismatch
	// RetiredOnly: the PC transmitted dynamically but only
	// architecturally — no instance was squashed, so no replay shadow
	// amplified it in this run (static's ROB-window reach is an
	// over-approximation of what the schedule actually squashed).
	RetiredOnly
	// NeverExecuted: the statically flagged PC never issued — the run's
	// concrete inputs never steered execution there (static is path-
	// insensitive).
	NeverExecuted
	// NeverTransient: the PC issued and transmitted zero times, and no
	// instance was ever squashed: it was reached but never sat in a
	// replay shadow in this schedule.
	NeverTransient
	// UntaintedOperands: the PC issued, but its operands never carried
	// taint dynamically — the static taint over-approximated (e.g. a
	// join of paths only one of which is secret-derived).
	UntaintedOperands
	// NoDynamicTransmit: reached with tainted operands, yet the
	// classifier never fired — the taint reached the PC but not the
	// footprint-forming operand (static flags the op, dynamic blames
	// operands individually).
	NoDynamicTransmit
	// SecondaryChannel: the dynamic channel is the physically entailed
	// companion of a channel static flags on the same instruction (an FP
	// divide's subnormal-latency signature alongside its divider-port
	// occupancy) — an understood taxonomy-granularity difference, not a
	// disagreement.
	SecondaryChannel
	// OutOfShadow: the static taint pass agrees the PC transmits (it is
	// a static.TransmitPoint on the same channel) but no replay handle's
	// squash shadow covers it, so it is not replayable and the static
	// report deliberately omits it.
	OutOfShadow
	// Unexplained: a dynamic finding with no static counterpart at its
	// PC. Static is designed to over-approximate dynamic, so any event
	// in this class is a bug in one of the analyses — the gate fails on
	// it.
	Unexplained
)

// String returns the class label.
func (c ReconcileClass) String() string {
	switch c {
	case Confirmed:
		return "confirmed"
	case ChannelMismatch:
		return "channel-mismatch"
	case RetiredOnly:
		return "retired-only"
	case NeverExecuted:
		return "never-executed"
	case NeverTransient:
		return "never-transient"
	case UntaintedOperands:
		return "untainted-operands"
	case NoDynamicTransmit:
		return "no-dynamic-transmit"
	case SecondaryChannel:
		return "secondary-channel"
	case OutOfShadow:
		return "out-of-shadow"
	case Unexplained:
		return "UNEXPLAINED"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MarshalText renders the class label for JSON reports.
func (c ReconcileClass) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a class label, inverting MarshalText.
func (c *ReconcileClass) UnmarshalText(b []byte) error {
	for v := Confirmed; v <= Unexplained; v++ {
		if v.String() == string(b) {
			*c = v
			return nil
		}
	}
	return fmt.Errorf("sanitizer: unknown reconcile class %q", b)
}

// ReconcileEntry is the verdict for one program point that at least one
// analysis flagged.
type ReconcileEntry struct {
	PC      int             `json:"pc"`
	Instr   string          `json:"instr"`
	Class   ReconcileClass  `json:"class"`
	Static  *static.Finding `json:"static,omitempty"`
	Dynamic *Finding        `json:"dynamic,omitempty"`
	Detail  string          `json:"detail"`
}

// Reconciliation is the full static-vs-dynamic cross-check for one
// context's run.
type Reconciliation struct {
	Entries []ReconcileEntry `json:"entries"`
}

// Unexplained returns the entries in the Unexplained class — the
// cross-validation gate requires this to be empty.
func (r *Reconciliation) Unexplained() []ReconcileEntry {
	var out []ReconcileEntry
	for _, e := range r.Entries {
		if e.Class == Unexplained {
			out = append(out, e)
		}
	}
	return out
}

// Counts tallies entries per class, keyed by class label.
func (r *Reconciliation) Counts() map[string]int {
	m := make(map[string]int)
	for _, e := range r.Entries {
		m[e.Class.String()]++
	}
	return m
}

// Text renders the reconciliation as a stable human-readable table.
func (r *Reconciliation) Text() string {
	var b strings.Builder
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "pc=%-4d %-20s %-19s %s\n", e.PC, e.Instr, e.Class, e.Detail)
	}
	return b.String()
}

// Reconcile cross-validates a static report against the sanitizer's
// dynamic findings for one context, classifying every program point
// either analysis flagged. pts is the program's unscoped
// static.TransmitPoints classification (nil degrades gracefully: the
// OutOfShadow class then cannot be assigned and such findings surface
// as Unexplained).
//
// The invariant checked: the static taint pass over-approximates
// dynamic transmits, so every dynamic finding must have a static
// transmit point on its channel (handle-shadowed → a Finding →
// Confirmed; unshadowed → OutOfShadow), while each static-only finding
// must be explained by a concrete dynamic reason (never executed,
// never transient, operands never tainted, ...). Anything else is
// Unexplained and fails the cross-validation gate.
func (s *Sanitizer) Reconcile(rep *static.Report, pts []static.TransmitPoint, ctxID int) *Reconciliation {
	dyn := make(map[int][]Finding)
	for _, f := range s.Findings() {
		if f.Context == ctxID {
			dyn[f.PC] = append(dyn[f.PC], f)
		}
	}
	stat := make(map[int][]static.Finding)
	var pcs []int
	seen := make(map[int]bool)
	for i := range rep.Findings {
		f := rep.Findings[i]
		stat[f.Index] = append(stat[f.Index], f)
		if !seen[f.Index] {
			seen[f.Index] = true
			pcs = append(pcs, f.Index)
		}
	}
	for pc := range dyn {
		if !seen[pc] {
			seen[pc] = true
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)

	rec := &Reconciliation{}
	for _, pc := range pcs {
		sfs, dfs := stat[pc], dyn[pc]
		switch {
		case len(sfs) > 0 && len(dfs) > 0:
			rec.Entries = append(rec.Entries, s.matchChannels(pc, sfs, dfs)...)
		case len(dfs) > 0: // dynamic-only: out-of-shadow or the gate-failing class
			for i := range dfs {
				df := dfs[i]
				e := ReconcileEntry{PC: pc, Instr: df.Instr, Dynamic: &df}
				if pt, ok := pointAt(pts, pc, df.Channel, df.Op); ok && !pt.Shadowed {
					e.Class = OutOfShadow
					e.Detail = fmt.Sprintf("static agrees pc transmits over %s but no replay handle's squash shadow covers it", df.Channel)
				} else {
					e.Class = Unexplained
					e.Detail = fmt.Sprintf("dynamic %s transmit with no static finding at this pc", df.Channel)
				}
				rec.Entries = append(rec.Entries, e)
			}
		default: // static-only: explain from the dynamic execution stats
			for i := range sfs {
				sf := sfs[i]
				e := ReconcileEntry{PC: pc, Instr: sf.Instr, Static: &sf}
				e.Class, e.Detail = s.explainStaticOnly(ctxID, pc)
				rec.Entries = append(rec.Entries, e)
			}
		}
	}
	return rec
}

// pointAt finds the unscoped transmit point at pc with the given
// channel, accepting a point whose channel the dynamic channel is the
// known secondary observable of (FP-divide latency alongside port).
func pointAt(pts []static.TransmitPoint, pc int, ch sidechan.Channel, op isa.Op) (static.TransmitPoint, bool) {
	for _, pt := range pts {
		if pt.Index != pc {
			continue
		}
		if pt.Channel == ch {
			return pt, true
		}
		if sec, ok := secondaryChannel(op, pt.Channel); ok && sec == ch {
			return pt, true
		}
	}
	return static.TransmitPoint{}, false
}

// matchChannels pairs static and dynamic findings at one PC by channel.
func (s *Sanitizer) matchChannels(pc int, sfs []static.Finding, dfs []Finding) []ReconcileEntry {
	var out []ReconcileEntry
	usedDyn := make([]bool, len(dfs))
	for i := range sfs {
		sf := sfs[i]
		matched := -1
		for j := range dfs {
			if !usedDyn[j] && dfs[j].Channel == sf.Channel {
				matched = j
				break
			}
		}
		if matched >= 0 {
			usedDyn[matched] = true
			df := dfs[matched]
			e := ReconcileEntry{PC: pc, Instr: sf.Instr, Static: &sf, Dynamic: &df}
			if df.Transient > 0 {
				e.Class = Confirmed
				e.Detail = fmt.Sprintf("%s transmit observed transiently %d/%d instances", df.Channel, df.Transient, df.Count)
			} else {
				e.Class = RetiredOnly
				e.Detail = fmt.Sprintf("%s transmit observed, but only architecturally (%d instances, none squashed)", df.Channel, df.Count)
			}
			out = append(out, e)
			continue
		}
		// Same PC flagged by both, channels differ.
		df := dfs[0]
		out = append(out, ReconcileEntry{
			PC: pc, Instr: sf.Instr, Class: ChannelMismatch, Static: &sf, Dynamic: &df,
			Detail: fmt.Sprintf("static %s vs dynamic %s", sf.Channel, df.Channel),
		})
	}
	for j := range dfs {
		if usedDyn[j] {
			continue
		}
		df := dfs[j]
		e := ReconcileEntry{
			PC: pc, Instr: df.Instr, Class: ChannelMismatch, Dynamic: &df,
			// A dynamic channel with no static channel at a PC static DID
			// flag: still a mismatch, not unexplained — the PC is known to
			// the static pass.
			Detail: fmt.Sprintf("dynamic %s channel unmatched by static channels at this pc", df.Channel),
		}
		for i := range sfs {
			if sec, ok := secondaryChannel(df.Op, sfs[i].Channel); ok && sec == df.Channel {
				e.Class = SecondaryChannel
				e.Static = &sfs[i]
				e.Detail = fmt.Sprintf("%s signature accompanying the statically flagged %s transmit on the same instruction", df.Channel, sfs[i].Channel)
				break
			}
		}
		out = append(out, e)
	}
	return out
}

// explainStaticOnly classifies why a statically flagged PC produced no
// dynamic transmit, from the per-PC execution counters.
func (s *Sanitizer) explainStaticOnly(ctxID, pc int) (ReconcileClass, string) {
	st := s.stats[pcKey{Ctx: ctxID, PC: pc}]
	switch {
	case st == nil || st.Issued == 0:
		return NeverExecuted, "pc never issued in this run (path not taken under these inputs)"
	case st.Tainted == 0:
		return UntaintedOperands, fmt.Sprintf("pc issued %d times but operands never carried taint (static taint over-approximates)", st.Issued)
	case st.Transient == 0:
		return NeverTransient, fmt.Sprintf("pc issued %d times, never squashed: no replay shadow covered it in this schedule", st.Issued)
	default:
		return NoDynamicTransmit, fmt.Sprintf("pc issued %d times (transient %d, taint seen) without a footprint-forming tainted operand", st.Issued, st.Transient)
	}
}
