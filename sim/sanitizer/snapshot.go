package sanitizer

import (
	"fmt"
	"sort"

	"microscope/sim/isa"
)

// Snapshot is the complete serializable shadow state of a Sanitizer.
// All map-backed state is flattened into sorted slices so the encoding
// is byte-deterministic (the same discipline as cpu.Snapshot), and a
// Snap/Restore round-trip is bit-identical.
//
// In-flight per-entry shadow state (SrcShadow, Shadow, CtrlShadow and
// the producer links) lives in the ROB entries and is captured by
// cpu.Snapshot itself; this snapshot carries the sanitizer-resident
// state: architectural shadow registers, shadow memory, region taint,
// pending dispositions and the event log.
type Snapshot struct {
	TaintRdrand bool
	Labels      []string
	RandMask    uint64

	RegAtom   [][isa.NumRegs]uint64
	RegShadow [][isa.NumRegs]uint64
	TxCkpt    [][isa.NumRegs]uint64

	MemShadow   []MemShadowEntry
	RegionTaint []RegionTaintEntry
	Pending     []PendingEntry
	Stats       []StatEntry
	Events      []TransmitEvent
}

// MemShadowEntry is one tainted physical byte.
type MemShadowEntry struct {
	PA   uint64
	Mask uint64
}

// RegionTaintEntry is one control-dependent PC's persistent taint.
type RegionTaintEntry struct {
	Ctx  int
	PC   int
	Mask uint64
}

// PendingEntry is one in-flight instruction's undetermined transmit
// events (indices into Events).
type PendingEntry struct {
	Ctx    int
	Seq    uint64
	Events []int
}

// StatEntry is one program point's execution counters.
type StatEntry struct {
	Ctx  int
	PC   int
	Stat pcStat
}

// Snap captures the sanitizer's complete state.
func (s *Sanitizer) Snap() *Snapshot {
	snap := &Snapshot{
		TaintRdrand: s.cfg.TaintRdrand,
		Labels:      append([]string(nil), s.labels...),
		RandMask:    s.randMask,
		RegAtom:     append([][isa.NumRegs]uint64(nil), s.regAtom...),
		RegShadow:   append([][isa.NumRegs]uint64(nil), s.regShadow...),
		TxCkpt:      append([][isa.NumRegs]uint64(nil), s.txCkpt...),
		Events:      append([]TransmitEvent(nil), s.events...),
	}
	for pa, m := range s.shadowMem {
		snap.MemShadow = append(snap.MemShadow, MemShadowEntry{PA: pa, Mask: m})
	}
	sort.Slice(snap.MemShadow, func(i, j int) bool {
		return snap.MemShadow[i].PA < snap.MemShadow[j].PA
	})
	for ctx, rt := range s.regionTaint {
		for pc, m := range rt {
			snap.RegionTaint = append(snap.RegionTaint, RegionTaintEntry{Ctx: ctx, PC: pc, Mask: m})
		}
	}
	sort.Slice(snap.RegionTaint, func(i, j int) bool {
		a, b := snap.RegionTaint[i], snap.RegionTaint[j]
		if a.Ctx != b.Ctx {
			return a.Ctx < b.Ctx
		}
		return a.PC < b.PC
	})
	for k, idxs := range s.pending {
		snap.Pending = append(snap.Pending, PendingEntry{
			Ctx: k.Ctx, Seq: k.Seq, Events: append([]int(nil), idxs...),
		})
	}
	sort.Slice(snap.Pending, func(i, j int) bool {
		a, b := snap.Pending[i], snap.Pending[j]
		if a.Ctx != b.Ctx {
			return a.Ctx < b.Ctx
		}
		return a.Seq < b.Seq
	})
	for k, st := range s.stats {
		snap.Stats = append(snap.Stats, StatEntry{Ctx: k.Ctx, PC: k.PC, Stat: *st})
	}
	sort.Slice(snap.Stats, func(i, j int) bool {
		a, b := snap.Stats[i], snap.Stats[j]
		if a.Ctx != b.Ctx {
			return a.Ctx < b.Ctx
		}
		return a.PC < b.PC
	})
	return snap
}

// Restore replaces the sanitizer's state with the snapshot's. The
// branch-region caches are dropped and lazily recomputed on the next
// dispatch (they are pure functions of the loaded program); the
// restored region taint survives that recomputation.
func (s *Sanitizer) Restore(snap *Snapshot) error {
	n := s.core.Contexts()
	if len(snap.RegShadow) != n || len(snap.RegAtom) != n || len(snap.TxCkpt) != n {
		return fmt.Errorf("sanitizer: snapshot has %d contexts, core has %d", len(snap.RegShadow), n)
	}
	s.cfg.TaintRdrand = snap.TaintRdrand
	s.labels = append([]string(nil), snap.Labels...)
	s.bits = make(map[string]int, len(s.labels))
	for i, l := range s.labels {
		s.bits[l] = i
	}
	s.randMask = snap.RandMask
	s.regAtom = append([][isa.NumRegs]uint64(nil), snap.RegAtom...)
	s.regShadow = append([][isa.NumRegs]uint64(nil), snap.RegShadow...)
	s.txCkpt = append([][isa.NumRegs]uint64(nil), snap.TxCkpt...)

	s.shadowMem = make(map[uint64]uint64, len(snap.MemShadow))
	for _, e := range snap.MemShadow {
		s.shadowMem[e.PA] = e.Mask
	}
	s.regionTaint = makeRegionTaint(n)
	for _, e := range snap.RegionTaint {
		if e.Ctx < 0 || e.Ctx >= n {
			return fmt.Errorf("sanitizer: region-taint entry for context %d out of range", e.Ctx)
		}
		s.regionTaint[e.Ctx][e.PC] = e.Mask
	}
	s.regionProg = make([]*isa.Program, n)
	s.regions = make([]map[int][]bool, n)

	s.events = append([]TransmitEvent(nil), snap.Events...)
	s.pending = make(map[pendKey][]int, len(snap.Pending))
	for _, e := range snap.Pending {
		s.pending[pendKey{Ctx: e.Ctx, Seq: e.Seq}] = append([]int(nil), e.Events...)
	}
	s.stats = make(map[pcKey]*pcStat, len(snap.Stats))
	for _, e := range snap.Stats {
		st := e.Stat
		s.stats[pcKey{Ctx: e.Ctx, PC: e.PC}] = &st
	}
	return nil
}
