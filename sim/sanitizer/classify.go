package sanitizer

import (
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/sim/cpu"
	"microscope/sim/isa"
)

// TransmitChannel is SpecSan's channel classifier: given an op and the
// taint disposition of its inputs at issue, it returns the sidechan
// channel the instruction transmits over, whether the flow is implicit
// (control-dependence only), and whether it transmits at all.
//
// The decision table deliberately mirrors analysis/static's classify
// case for case, so a dynamic finding and a static finding at the same
// PC carry the same channel label and the three-way reconciliation can
// match them structurally:
//
//	rdrand (TaintRdrand)        -> random-replay
//	mem, tainted address        -> cache-set
//	fdiv, tainted operand       -> latency
//	div, tainted operand        -> port-contention
//	ctrl-dependent div/fdiv     -> port-contention (implicit)
//	ctrl-dependent mem          -> cache-set (implicit)
//	ctrl-dependent rdrand       -> random-replay (implicit)
//
// addrT is the taint of the address operand (mem ops only), dataT the
// union over data operands, ctrlT the control-dependence taint.
func TransmitChannel(op isa.Op, addrT, dataT, ctrlT bool, taintRdrand bool) (ch sidechan.Channel, implicit, ok bool) {
	switch {
	case op == isa.OpRdrand && taintRdrand:
		return sidechan.ChanRandom, false, true
	case op.IsMem() && addrT:
		return sidechan.ChanCacheSet, false, true
	case op == isa.OpFDiv && dataT:
		return sidechan.ChanLatency, false, true
	case op == isa.OpDiv && dataT:
		return sidechan.ChanPort, false, true
	case ctrlT:
		switch {
		case op == isa.OpDiv || op == isa.OpFDiv:
			return sidechan.ChanPort, true, true
		case op.IsMem():
			return sidechan.ChanCacheSet, true, true
		case op == isa.OpRdrand:
			return sidechan.ChanRandom, true, true
		}
	}
	return sidechan.ChanNone, false, false
}

// secondaryChannel returns the additional channel op transmits over
// given its primary classification. A ctrl-guarded FP divide occupies
// the non-pipelined divider (the primary port-contention class,
// mirroring static's classifier) AND carries the subnormal-latency
// signature of whichever branch side executed — the paper's Fig. 5 and
// Fig. 6 observables coincide on one instruction, and the verifier's
// witness runs genuinely diverge on the latency projection. The
// sanitizer emits both events; the reconciliation classifies the extra
// latency finding as SecondaryChannel rather than a mismatch.
func secondaryChannel(op isa.Op, primary sidechan.Channel) (sidechan.Channel, bool) {
	if op == isa.OpFDiv && primary == sidechan.ChanPort {
		return sidechan.ChanLatency, true
	}
	return sidechan.ChanNone, false
}

// OpTransmits reports whether op can ever transmit under any taint
// disposition — i.e. whether any TransmitChannel input combination
// classifies it off ChanNone. The totality test checks this agrees
// with the sidechan taxonomy for every defined op.
func OpTransmits(op isa.Op, taintRdrand bool) bool {
	for _, addrT := range []bool{false, true} {
		for _, dataT := range []bool{false, true} {
			for _, ctrlT := range []bool{false, true} {
				if _, _, ok := TransmitChannel(op, addrT, dataT, ctrlT, taintRdrand); ok {
					return true
				}
			}
		}
	}
	return false
}

// Role classifies a cpu tracer event kind by what it tells the
// sanitizer, making SpecSan's treatment of the event taxonomy total:
// every cpu.EventKind has exactly one role, and the totality test
// fails to compile-time-sized exhaustion if a new kind appears without
// a classification.
type Role int

// Event-kind roles.
const (
	// RoleLifecycle: the event marks pipeline progress with no
	// microarchitectural footprint of its own (fetch, complete).
	RoleLifecycle Role = iota
	// RoleFootprint: the event is where an instruction's observable
	// footprint lands in the machine (issue picks ports and cache sets;
	// a fault pins the page-walk/replay footprint).
	RoleFootprint
	// RoleDisposition: the event fixes whether the footprint was
	// architectural or transient (retire, squash).
	RoleDisposition
	// RoleModule: the event is attack-module machinery observed for
	// replay attribution (transaction abort).
	RoleModule
)

// String returns the role label.
func (r Role) String() string {
	switch r {
	case RoleLifecycle:
		return "lifecycle"
	case RoleFootprint:
		return "footprint"
	case RoleDisposition:
		return "disposition"
	case RoleModule:
		return "module"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// eventRoles is the total EventKind -> Role map. The totality test
// asserts every kind in cpu.NumEventKinds is listed explicitly.
var eventRoles = map[cpu.EventKind]Role{
	cpu.EvFetch:    RoleLifecycle,
	cpu.EvIssue:    RoleFootprint,
	cpu.EvComplete: RoleLifecycle,
	cpu.EvRetire:   RoleDisposition,
	cpu.EvSquash:   RoleDisposition,
	cpu.EvFault:    RoleFootprint,
	cpu.EvTxAbort:  RoleModule,
}

// EventKindRole returns the sanitizer's role for a tracer event kind.
func EventKindRole(k cpu.EventKind) Role { return eventRoles[k] }

// EventKindDeclared reports whether k has an explicit role entry.
func EventKindDeclared(k cpu.EventKind) bool {
	_, ok := eventRoles[k]
	return ok
}
