package sanitizer

import (
	"fmt"
	"sort"
	"strings"

	"microscope/analysis/sidechan"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// TransmitEvent is one observation of tainted data reaching an
// observable microarchitectural channel. Events are recorded at issue
// (when the footprint lands in the machine) and their disposition is
// finalized at retire or squash.
type TransmitEvent struct {
	// Cycle is the issue cycle of the transmitting instruction.
	Cycle uint64
	// Context and PC locate the static program point; Seq identifies
	// the dynamic instance.
	Context int
	PC      int
	Seq     uint64
	Instr   isa.Instr
	// Channel is the sidechan class the secret leaks over; Implicit
	// marks a control-dependence-only (branch-outcome) flow.
	Channel  sidechan.Channel
	Implicit bool
	// Addr is the virtual effective address (memory ops), Walk the
	// page-walk cycles the access observed (0 = TLB hit).
	Addr uint64
	Walk int
	// Taint is the atom mask to blame; AtomLabels resolves it.
	Taint uint64
	// Transient reports that the instance was squashed (or never
	// retired) — the paper's replay shadow. False = architectural.
	Transient bool
	// Replay is the replay-iteration ordinal of the covering recipe
	// window at the transmit cycle, or -1 outside any replay window
	// (set by AttributeReplays).
	Replay int
	// Recipe names the covering recipe, "" outside any window.
	Recipe string
}

// String renders the event for reports.
func (ev TransmitEvent) String() string {
	var b strings.Builder
	disp := "retired"
	if ev.Transient {
		disp = "transient"
	}
	flow := "explicit"
	if ev.Implicit {
		flow = "implicit"
	}
	fmt.Fprintf(&b, "cycle %d ctx%d pc=%d seq=%d [%s] %s %s %s",
		ev.Cycle, ev.Context, ev.PC, ev.Seq, ev.Instr, ev.Channel, flow, disp)
	if ev.Instr.Op.IsMem() {
		fmt.Fprintf(&b, " addr=%#x", ev.Addr)
	}
	if ev.Replay >= 0 {
		fmt.Fprintf(&b, " replay=%d(%s)", ev.Replay, ev.Recipe)
	}
	return b.String()
}

// Events returns the recorded transmit events in emission order (which
// is issue order, so non-decreasing in Cycle).
func (s *Sanitizer) Events() []TransmitEvent {
	return append([]TransmitEvent(nil), s.events...)
}

// ReplayWindow is one replay iteration of a recipe: cycles [Start, End)
// belong to iteration N (1-based, matching the timeline's "replay N"
// slices). End == ^uint64(0) marks a window still open at run end.
type ReplayWindow struct {
	Recipe string
	N      int
	Start  uint64
	End    uint64
}

// AttributeReplays stamps every recorded event with the replay
// iteration whose window covers its cycle. Call after the run, with
// windows derived from the attack module's timeline (see
// attack/experiments.ReplayWindows). Later windows win on overlap —
// nested pivot recipes open inside an outer window, and the innermost
// (latest-starting) window is the one actually replaying the transmit.
func (s *Sanitizer) AttributeReplays(ws []ReplayWindow) {
	for i := range s.events {
		ev := &s.events[i]
		for _, w := range ws {
			if ev.Cycle >= w.Start && ev.Cycle < w.End {
				ev.Replay, ev.Recipe = w.N, w.Recipe
			}
		}
	}
}

// Annotations renders the transmit events as instant markers on a
// dedicated "specsan" Chrome-trace track, layered over the pipeline
// and replayer tracks so a finding is visually pinned to the replay
// iteration that produced it.
func (s *Sanitizer) Annotations() []trace.Annotation {
	var out []trace.Annotation
	for _, ev := range s.events {
		disp := "retired"
		if ev.Transient {
			disp = "transient"
		}
		args := map[string]string{
			"channel": ev.Channel.String(),
			"instr":   ev.Instr.String(),
			"pc":      fmt.Sprintf("%d", ev.PC),
			"taint":   strings.Join(s.AtomLabels(ev.Taint), ","),
			"disp":    disp,
		}
		if ev.Implicit {
			args["flow"] = "implicit"
		}
		if ev.Replay >= 0 {
			args["replay"] = fmt.Sprintf("%d", ev.Replay)
		}
		out = append(out, trace.Annotation{
			Track: "specsan",
			Name:  fmt.Sprintf("transmit %s pc=%d", ev.Channel, ev.PC),
			Start: ev.Cycle,
			End:   ev.Cycle,
			Args:  args,
		})
	}
	return out
}

// sortEvents orders events for stable reporting: by context, PC,
// sequence number, then channel.
func sortEvents(evs []TransmitEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Context != b.Context {
			return a.Context < b.Context
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Channel < b.Channel
	})
}
