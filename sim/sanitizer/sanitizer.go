// Package sanitizer implements SpecSan, an MSan/TSan-style shadow-taint
// sanitizer woven into the cycle engine through the cpu.ShadowTracker
// hooks. It maintains a taint mask per architectural register and per
// physical memory byte, seeded from a victim layout's declared secrets,
// and propagates it cycle-accurately through rename, store-to-load
// forwarding, speculation and — crucially — squashed transient
// execution, including implicit flows from tainted branch outcomes.
//
// Whenever tainted data reaches an observable microarchitectural
// channel — an address-forming load or store (cache set/line), a
// variable-latency FP divide operand, an issue-port decision on the
// non-pipelined divider, a page walk on a tainted address — SpecSan
// emits a TransmitEvent carrying the PC, the taint atoms to blame, the
// transient-vs-retired disposition, and the analysis/sidechan channel
// label the static scanner and the verifier use, so all three analyses
// reconcile finding by finding (see Reconcile).
//
// Taint is a 64-bit atom mask: each seeded secret (a register, a memory
// region, the hardware RNG) interns one bit; bit 63 is the overflow
// atom for programs with more than 63 distinct secrets. This mirrors
// the verifier's abstract-interpretation atom table, so a dynamic
// finding's blame set is directly comparable to an abstract witness.
//
// The sanitizer is an observer: it never mutates core state, so an
// attached Sanitizer cannot change timing, results, or the trace-event
// stream (the trace-hash differential pins this down), and a detached
// one costs a nil check per hook site (the no-alloc guard pins that).
package sanitizer

import (
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
)

// OverflowBit is the atom-mask bit taken by every secret past the 63rd
// distinct atom (the same convention as the verifier's atom table).
const OverflowBit = 63

// RandAtom is the reserved label of the hardware-RNG atom.
const RandAtom = "rand"

// Config parameterizes a sanitizer.
type Config struct {
	// TaintRdrand treats RDRAND results as secrets (their integrity is
	// what the §7.2 bias attack violates). Default on, matching
	// static.Config.TaintRdrand.
	TaintRdrand bool
}

// DefaultConfig matches the static scanner's defaults.
func DefaultConfig() Config { return Config{TaintRdrand: true} }

// pendKey identifies the not-yet-finalized transmit events of one
// dynamic instruction.
type pendKey struct {
	Ctx int
	Seq uint64
}

// pcKey identifies per-PC execution counters.
type pcKey struct {
	Ctx int
	PC  int
}

// pcStat counts how a static program point behaved dynamically; the
// reconciliation pass classifies static-only findings from these.
type pcStat struct {
	Issued    uint64 // dynamic instances that started executing
	Transient uint64 // of those, instances squashed after executing
	Tainted   uint64 // union of data|ctrl taint ever observed at issue
}

// Sanitizer is the shadow-taint state machine. Attach with
// core.SetShadow(s); detach with core.SetShadow(nil).
type Sanitizer struct {
	cfg  Config
	core *cpu.Core

	// Atom interning: labels by bit index (at most OverflowBit entries;
	// every atom past that shares the overflow bit).
	labels []string
	bits   map[string]int

	regAtom   [][isa.NumRegs]uint64 // declared secret-home register atoms
	regShadow [][isa.NumRegs]uint64 // architectural shadow registers
	txCkpt    [][isa.NumRegs]uint64 // shadow-register checkpoint at txbegin

	shadowMem map[uint64]uint64 // physical byte address -> taint mask

	// regionTaint[ctx][pc] accumulates the taint of every tainted branch
	// whose control-dependent region contains pc. It persists after the
	// branch resolves — flow-insensitive like the static pass's ctrl set,
	// so an instruction on a secret-chosen path stays implicitly tainted
	// even when it dispatches after the branch completed.
	regionTaint []map[int]uint64

	// Per-context cache of the loaded program's branch regions
	// (static.BranchRegions), keyed by branch PC.
	regionProg []*isa.Program
	regions    []map[int][]bool

	events  []TransmitEvent
	pending map[pendKey][]int
	stats   map[pcKey]*pcStat

	randMask uint64 // interned lazily on first RDRAND taint
}

// New builds a sanitizer for core. The caller seeds secrets with
// SeedReg/SeedMemory and attaches it with core.SetShadow.
func New(core *cpu.Core, cfg Config) *Sanitizer {
	n := core.Contexts()
	return &Sanitizer{
		cfg:         cfg,
		core:        core,
		bits:        make(map[string]int),
		regAtom:     make([][isa.NumRegs]uint64, n),
		regShadow:   make([][isa.NumRegs]uint64, n),
		txCkpt:      make([][isa.NumRegs]uint64, n),
		shadowMem:   make(map[uint64]uint64),
		regionTaint: makeRegionTaint(n),
		regionProg:  make([]*isa.Program, n),
		regions:     make([]map[int][]bool, n),
		pending:     make(map[pendKey][]int),
		stats:       make(map[pcKey]*pcStat),
	}
}

func makeRegionTaint(n int) []map[int]uint64 {
	rt := make([]map[int]uint64, n)
	for i := range rt {
		rt[i] = make(map[int]uint64)
	}
	return rt
}

// atomBit interns a secret label, returning its mask bit. Labels past
// the 63rd distinct atom all map to the overflow bit.
func (s *Sanitizer) atomBit(label string) uint64 {
	if i, ok := s.bits[label]; ok {
		return 1 << uint(i)
	}
	if len(s.labels) >= OverflowBit {
		return 1 << OverflowBit
	}
	i := len(s.labels)
	s.labels = append(s.labels, label)
	s.bits[label] = i
	return 1 << uint(i)
}

// AtomLabels resolves a taint mask to its secret labels, in interning
// order; a set overflow bit renders as "overflow".
func (s *Sanitizer) AtomLabels(mask uint64) []string {
	var out []string
	for i, l := range s.labels {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, l)
		}
	}
	if mask&(1<<OverflowBit) != 0 {
		out = append(out, "overflow")
	}
	return out
}

// SeedReg declares register r of context ctxID a secret home: it is
// tainted now and re-tainted on every write (including immediate
// materializations — a declared secret register's MovImm immediate IS
// the secret, exactly the convention the verifier's witness runs use).
func (s *Sanitizer) SeedReg(ctxID int, r isa.Reg, label string) {
	if !r.Valid() {
		return
	}
	bit := s.atomBit(label)
	s.regAtom[ctxID][r] |= bit
	s.regShadow[ctxID][r] |= bit
}

// SeedMemory taints every byte of the virtual range [lo, hi) in the
// given address space. Shadow memory is keyed by physical address (the
// pipeline reads and writes physical), so the range must be mapped and
// present.
func (s *Sanitizer) SeedMemory(as *mem.AddressSpace, lo, hi mem.Addr, label string) error {
	bit := s.atomBit(label)
	for va := lo; va < hi; {
		leaf, _, err := as.LeafEntry(va)
		if err != nil {
			return fmt.Errorf("sanitizer: seed [%#x,%#x): %w", lo, hi, err)
		}
		if !leaf.Present() {
			return fmt.Errorf("sanitizer: seed [%#x,%#x): page at %#x not present", lo, hi, va)
		}
		pageEnd := mem.PageBase(va) + mem.PageSize
		end := hi
		if pageEnd < end {
			end = pageEnd
		}
		base := leaf.PPN() << mem.PageShift
		for ; va < end; va++ {
			s.shadowMem[base|mem.PageOffset(va)] |= bit
		}
	}
	return nil
}

// RandMask returns the hardware-RNG atom bit, interning it on first use.
func (s *Sanitizer) RandMask() uint64 {
	if s.randMask == 0 {
		s.randMask = s.atomBit(RandAtom)
	}
	return s.randMask
}

// RegShadow returns the architectural taint mask of register r in
// context ctxID (tests and diagnostics).
func (s *Sanitizer) RegShadow(ctxID int, r isa.Reg) uint64 {
	return s.regShadow[ctxID][r]
}

// MemShadow returns the taint mask of the physical byte at pa.
func (s *Sanitizer) MemShadow(pa mem.Addr) uint64 { return s.shadowMem[pa] }

// ---------------------------------------------------------------------
// ShadowTracker hooks
// ---------------------------------------------------------------------

// ShadowDispatch captures ready-operand taint from the architectural
// shadow registers and computes the entry's implicit-flow taint from
// (a) the persistent region taint of already resolved secret branches
// and (b) older in-flight unresolved branches whose known taint and
// region cover this PC. Renamed operands (non-nil Producer provenance)
// need nothing here: the cycle engine captures the producer's taint
// into PendShadow alongside the value, and ShadowIssue folds it into
// SrcShadow — so taint becomes visible in SrcShadow at exactly the
// same points (dispatch for register-file operands, issue for renamed
// ones) as before the engine's eager operand capture.
func (s *Sanitizer) ShadowDispatch(ctx *cpu.Context, e *pipeline.Entry) {
	id := ctx.ID()
	s.ensureRegions(id, ctx.Program())
	srcs := e.Instr.Sources()
	for i, r := range srcs {
		if r == isa.NoReg {
			continue
		}
		if e.Src[i].Producer == nil {
			e.SrcShadow[i] = s.regShadow[id][r]
		}
	}
	ctrl := s.regionTaint[id][e.PC]
	for _, b := range ctx.ROBEntries() {
		if b == e || !b.Instr.Op.IsCondBranch() {
			continue
		}
		if b.State != pipeline.StateDispatched && b.State != pipeline.StateIssued {
			continue // resolved: covered by regionTaint
		}
		t := b.SrcShadow[0] | b.SrcShadow[1] | b.CtrlShadow
		if t != 0 && s.inRegion(id, b.PC, e.PC) {
			ctrl |= t
		}
	}
	e.CtrlShadow |= ctrl
}

// ShadowIssue folds the engine-captured rename-producer taint
// (PendShadow) into SrcShadow, derives the result's taint, records a tainted
// branch's control-dependent region, and runs transmit detection — the
// entry's microarchitectural footprint (cache set, walk, port, latency)
// is fixed at issue.
func (s *Sanitizer) ShadowIssue(ctx *cpu.Context, e *pipeline.Entry, forward *pipeline.Entry) {
	id := ctx.ID()
	for i := range e.PendShadow {
		e.SrcShadow[i] |= e.PendShadow[i]
	}
	in := e.Instr
	data := e.SrcShadow[0] | e.SrcShadow[1]
	ctrl := e.CtrlShadow

	st := s.stat(id, e.PC)
	st.Issued++
	st.Tainted |= data | ctrl

	if in.Op.IsCondBranch() {
		if t := data | ctrl; t != 0 {
			s.taintRegion(ctx, e, t)
		}
	}

	sh := uint64(0)
	switch {
	case in.Op == isa.OpRdrand:
		if s.cfg.TaintRdrand {
			sh = s.RandMask()
		}
	case in.Op.IsLoad():
		if forward != nil {
			sh = forward.Shadow
		} else if e.Fault == nil {
			sh = s.loadShadow(e.PhysAddr, loadWidth(in.Op))
		}
		sh |= e.SrcShadow[0] // a secret-indexed load's value is secret-derived
	case in.Op.IsStore():
		sh = e.SrcShadow[1] // the data operand is what shadow memory receives
	default:
		sh = data
	}
	if d := in.Dest(); d != isa.NoReg {
		sh |= s.regAtom[id][d] // secret-home register: writes stay secret
	}
	sh |= ctrl // implicit flow: values selected by a secret path are secret
	e.Shadow = sh

	s.checkTransmit(ctx, e, data, ctrl)
}

// ShadowFaultResolved re-derives a load's taint after the mid-walk PTE
// race rescinded its fault and re-read memory (§7.2 selective replay).
func (s *Sanitizer) ShadowFaultResolved(ctx *cpu.Context, e *pipeline.Entry) {
	if !e.Instr.Op.IsLoad() {
		return
	}
	sh := s.loadShadow(e.PhysAddr, loadWidth(e.Instr.Op))
	e.Shadow |= sh
}

// ShadowRetire finalizes the entry's pending transmit events as
// architectural (retired), updates the architectural shadow registers,
// and applies committed stores to shadow memory — transient stores
// never reach it, mirroring the real store buffer.
func (s *Sanitizer) ShadowRetire(ctx *cpu.Context, e *pipeline.Entry) {
	id := ctx.ID()
	s.finalize(id, e.Seq, false)
	if d := e.Instr.Dest(); d != isa.NoReg {
		s.regShadow[id][d] = e.Shadow
	}
	switch e.Instr.Op {
	case isa.OpStore, isa.OpStoreF:
		s.storeShadow(e.PhysAddr, 8, e.Shadow)
	case isa.OpStore32:
		s.storeShadow(e.PhysAddr, 4, e.Shadow)
	case isa.OpTxBegin:
		s.txCkpt[id] = s.regShadow[id]
	}
}

// ShadowSquash finalizes the entry's pending transmit events as
// transient and counts executed-then-squashed instances for the
// reconciliation pass.
func (s *Sanitizer) ShadowSquash(ctx *cpu.Context, e *pipeline.Entry) {
	id := ctx.ID()
	if e.State != pipeline.StateDispatched {
		s.stat(id, e.PC).Transient++
	}
	s.finalize(id, e.Seq, true)
}

// ShadowTxAbort rolls the architectural shadow registers back to the
// txbegin checkpoint, mirroring the core's register rollback.
func (s *Sanitizer) ShadowTxAbort(ctx *cpu.Context) {
	id := ctx.ID()
	s.regShadow[id] = s.txCkpt[id]
}

// ---------------------------------------------------------------------
// Propagation internals
// ---------------------------------------------------------------------

func loadWidth(op isa.Op) int {
	if op == isa.OpLoad32 {
		return 4
	}
	return 8
}

func (s *Sanitizer) loadShadow(pa mem.Addr, n int) uint64 {
	var m uint64
	for i := 0; i < n; i++ {
		m |= s.shadowMem[pa+mem.Addr(i)]
	}
	return m
}

func (s *Sanitizer) storeShadow(pa mem.Addr, n int, mask uint64) {
	for i := 0; i < n; i++ {
		if mask == 0 {
			delete(s.shadowMem, pa+mem.Addr(i)) // overwriting secrets with public data untaints
		} else {
			s.shadowMem[pa+mem.Addr(i)] = mask
		}
	}
}

func (s *Sanitizer) stat(ctxID, pc int) *pcStat {
	k := pcKey{Ctx: ctxID, PC: pc}
	st := s.stats[k]
	if st == nil {
		st = &pcStat{}
		s.stats[k] = st
	}
	return st
}

// ensureRegions (re)computes the per-branch control-dependence regions
// when the context's loaded program changes. Loading a genuinely
// different program invalidates the PC-keyed region taint; a first
// sighting (or a post-restore resync) must not clobber restored state.
func (s *Sanitizer) ensureRegions(id int, prog *isa.Program) {
	if prog == nil || prog == s.regionProg[id] {
		return
	}
	if s.regionProg[id] != nil {
		s.regionTaint[id] = make(map[int]uint64)
	}
	s.regionProg[id] = prog
	s.regions[id] = nil
	g, err := static.BuildCFG(prog)
	if err != nil {
		return // unanalyzable: inRegion falls back to conservative
	}
	rs := g.BranchRegions()
	m := make(map[int][]bool, len(rs))
	for _, r := range rs {
		m[r.PC] = r.Region
	}
	s.regions[id] = m
}

// inRegion reports whether pc is control-dependent on the branch at
// branchPC. With no region information (unanalyzable program) it is
// conservatively true.
func (s *Sanitizer) inRegion(id, branchPC, pc int) bool {
	m := s.regions[id]
	if m == nil {
		return true
	}
	region := m[branchPC]
	return region != nil && pc < len(region) && region[pc]
}

// taintRegion records a tainted branch's resolved region taint and
// back-fills younger in-flight entries in the region: entries that
// dispatched before the branch's taint was known inherit it now, and
// those that already issued get their implicit transmit events emitted
// retroactively (their footprint is already in the machine).
func (s *Sanitizer) taintRegion(ctx *cpu.Context, b *pipeline.Entry, t uint64) {
	id := ctx.ID()
	region := s.regions[id][b.PC]
	if region != nil {
		for pc, in := range region {
			if in {
				s.regionTaint[id][pc] |= t
			}
		}
	} else if s.regions[id] != nil {
		return // analyzed program, single-successor branch: no region
	}
	for _, y := range ctx.ROBEntries() {
		if y.Seq <= b.Seq {
			continue
		}
		if region != nil && !(y.PC < len(region) && region[y.PC]) {
			continue
		}
		if y.CtrlShadow&t == t {
			continue
		}
		y.CtrlShadow |= t
		if y.State == pipeline.StateDispatched {
			continue // its own issue will see the updated CtrlShadow
		}
		// Already executed: late implicit flow. Patch the result taint and
		// emit the implicit transmit the issue-time check could not see.
		y.Shadow |= t
		st := s.stat(id, y.PC)
		st.Tainted |= t
		data := y.SrcShadow[0] | y.SrcShadow[1]
		ch, implicit, ok := TransmitChannel(y.Instr.Op, y.SrcShadow[0] != 0, data != 0, true, s.cfg.TaintRdrand)
		if ok && implicit {
			s.emit(id, y, ch, true, t)
		}
	}
}

// checkTransmit runs the channel classifier over a freshly issued entry
// and emits a transmit event when its footprint is secret-dependent.
func (s *Sanitizer) checkTransmit(ctx *cpu.Context, e *pipeline.Entry, data, ctrl uint64) {
	op := e.Instr.Op
	ch, implicit, ok := TransmitChannel(op, e.SrcShadow[0] != 0, data != 0, ctrl != 0, s.cfg.TaintRdrand)
	if !ok {
		return
	}
	var taint uint64
	switch {
	case op == isa.OpRdrand:
		taint = s.RandMask() | data | ctrl
	case implicit:
		taint = ctrl
	case op.IsMem():
		taint = e.SrcShadow[0] | ctrl // the address selects the cache set
	default:
		taint = data | ctrl
	}
	s.emit(ctx.ID(), e, ch, implicit, taint)
	if sec, ok := secondaryChannel(op, ch); ok {
		s.emit(ctx.ID(), e, sec, implicit, taint)
	}
}

// emit appends a transmit event (or merges taint into a pending event
// of the same instruction, channel and flavor — late implicit
// back-fills must not duplicate). Events are born transient; retirement
// flips them architectural, so instructions squashed at run end (or
// never finalized at all) stay transient, which is the honest default
// for a replay shadow.
func (s *Sanitizer) emit(ctxID int, e *pipeline.Entry, ch sidechan.Channel, implicit bool, taint uint64) {
	k := pendKey{Ctx: ctxID, Seq: e.Seq}
	for _, i := range s.pending[k] {
		ev := &s.events[i]
		if ev.Channel == ch && ev.Implicit == implicit {
			ev.Taint |= taint
			return
		}
	}
	idx := len(s.events)
	s.events = append(s.events, TransmitEvent{
		Cycle:     s.core.Cycle(),
		Context:   ctxID,
		PC:        e.PC,
		Seq:       e.Seq,
		Instr:     e.Instr,
		Channel:   ch,
		Implicit:  implicit,
		Addr:      e.EffAddr,
		Walk:      e.WalkCycles,
		Taint:     taint,
		Transient: true,
		Replay:    -1,
	})
	s.pending[k] = append(s.pending[k], idx)
}

// finalize fixes the disposition of an instruction's pending events:
// retirement makes them architectural, a squash leaves them transient.
func (s *Sanitizer) finalize(ctxID int, seq uint64, transient bool) {
	k := pendKey{Ctx: ctxID, Seq: seq}
	idxs, ok := s.pending[k]
	if !ok {
		return
	}
	if !transient {
		for _, i := range idxs {
			s.events[i].Transient = false
		}
	}
	delete(s.pending, k)
}

// Flush drops the pending map: any instruction still in flight at run
// end never retired, so its events keep their transient disposition.
func (s *Sanitizer) Flush() {
	s.pending = make(map[pendKey][]int)
}
