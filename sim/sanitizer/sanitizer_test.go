package sanitizer_test

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/sim/cpu"
	"microscope/sim/cpu/cputest"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/sanitizer"
	"microscope/sim/trace"
)

// --- taxonomy totality -------------------------------------------------

// Every defined ISA op must be classified by SpecSan in agreement with
// the sidechan taxonomy: ops the taxonomy marks as channel-bearing must
// transmit under some taint disposition, ops marked ChanNone must never
// transmit explicitly, and the explicit channel must be the taxonomy's.
// New ops cannot silently bypass the sanitizer: they would fail
// OpChannelDeclared here (and the sidechan totality test) first.
func TestTransmitChannelTotalOverOps(t *testing.T) {
	for op := isa.Op(0); int(op) < isa.OpCount; op++ {
		if !sidechan.OpChannelDeclared(op) {
			t.Errorf("%s: op missing from sidechan taxonomy", op)
			continue
		}
		taxo := sidechan.OpChannel(op)
		transmits := sanitizer.OpTransmits(op, true)
		if got, want := transmits, taxo != sidechan.ChanNone; got != want {
			t.Errorf("%s: OpTransmits=%v but taxonomy channel is %s", op, got, taxo)
		}
		// Explicit (data-taint) classification must match the taxonomy
		// channel exactly.
		ch, implicit, ok := sanitizer.TransmitChannel(op, true, true, false, true)
		if ok {
			if implicit {
				t.Errorf("%s: data-tainted classification marked implicit", op)
			}
			if ch != taxo {
				t.Errorf("%s: explicit channel %s, taxonomy says %s", op, ch, taxo)
			}
		} else if taxo != sidechan.ChanNone && op != isa.OpRdrand {
			// Every channel-bearing op except rdrand (whose trigger is the
			// draw itself, not operand taint) must fire on tainted operands.
			t.Errorf("%s: taxonomy channel %s but no explicit classification", op, taxo)
		}
	}
}

// With TaintRdrand off, rdrand must still be flagged when control-
// dependent on a secret, mirroring static classify's ctrl case.
func TestTransmitChannelRdrandModes(t *testing.T) {
	if ch, _, ok := sanitizer.TransmitChannel(isa.OpRdrand, false, false, false, false); ok {
		t.Errorf("untainted rdrand with TaintRdrand=false classified as %s", ch)
	}
	ch, implicit, ok := sanitizer.TransmitChannel(isa.OpRdrand, false, false, true, false)
	if !ok || !implicit || ch != sidechan.ChanRandom {
		t.Errorf("ctrl-dependent rdrand: got (%s, implicit=%v, ok=%v), want (random-replay, true, true)", ch, implicit, ok)
	}
}

// Every cpu tracer event kind must have an explicit sanitizer role.
func TestEventKindRolesTotal(t *testing.T) {
	for k := cpu.EventKind(0); int(k) < cpu.NumEventKinds; k++ {
		if !sanitizer.EventKindDeclared(k) {
			t.Errorf("event kind %s has no sanitizer role", k)
		}
	}
	roles := map[sanitizer.Role]bool{}
	for k := cpu.EventKind(0); int(k) < cpu.NumEventKinds; k++ {
		roles[sanitizer.EventKindRole(k)] = true
	}
	for _, r := range []sanitizer.Role{
		sanitizer.RoleLifecycle, sanitizer.RoleFootprint,
		sanitizer.RoleDisposition, sanitizer.RoleModule,
	} {
		if !roles[r] {
			t.Errorf("no event kind carries role %s", r)
		}
	}
}

// --- propagation -------------------------------------------------------

// buildCore assembles a single-context core over a fresh data space.
func buildCore(t *testing.T, prog *isa.Program) (*cpu.Core, *mem.AddressSpace) {
	t.Helper()
	as, err := cputest.NewDataSpace(11)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
	core.Context(0).SetAddressSpace(as)
	core.Context(0).SetProgram(prog, 0)
	return core, as
}

func attach(core *cpu.Core) *sanitizer.Sanitizer {
	s := sanitizer.New(core, sanitizer.DefaultConfig())
	core.SetShadow(s)
	return s
}

// A secret register feeding a load address must produce an explicit
// cache-set transmit; a public load must not.
func TestExplicitCacheSetTransmit(t *testing.T) {
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(cputest.DataVA)).
		MovImm(isa.R2, 0x40).        // secret index (R2 seeded below)
		Add(isa.R3, isa.R1, isa.R2). // secret-derived address
		Load(isa.R4, isa.R3, 0).     // pc=3: transmits
		Load(isa.R5, isa.R1, 8).     // pc=4: public, no transmit
		Halt().
		MustBuild()
	core, _ := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R2, "secret")
	core.Run(1_000_000)

	var hits []sanitizer.TransmitEvent
	for _, ev := range s.Events() {
		if ev.PC == 3 {
			hits = append(hits, ev)
		}
		if ev.PC == 4 {
			t.Errorf("public load flagged: %s", ev)
		}
	}
	if len(hits) == 0 {
		t.Fatal("secret-addressed load produced no transmit event")
	}
	for _, ev := range hits {
		if ev.Channel != sidechan.ChanCacheSet || ev.Implicit {
			t.Errorf("want explicit cache-set, got %s", ev)
		}
		if ev.Transient {
			t.Errorf("retired load still marked transient: %s", ev)
		}
		if len(s.AtomLabels(ev.Taint)) == 0 || s.AtomLabels(ev.Taint)[0] != "secret" {
			t.Errorf("taint labels %v, want [secret]", s.AtomLabels(ev.Taint))
		}
	}
}

// Taint must flow through memory: store a secret, load it back through
// a clean pointer, and use the loaded value as an address.
func TestTaintThroughMemory(t *testing.T) {
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(cputest.DataVA)).
		MovImm(isa.R2, 0x33).
		Store(isa.R2, isa.R1, 0). // secret value into memory
		Fence().
		Load(isa.R3, isa.R1, 0).     // reload: value is tainted, address clean
		Add(isa.R4, isa.R1, isa.R3). // derive address from it
		Load(isa.R5, isa.R4, 0).     // pc=6: transmits
		Halt().
		MustBuild()
	core, _ := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R2, "k")
	core.Run(1_000_000)

	var found bool
	for _, ev := range s.Events() {
		if ev.PC == 6 && ev.Channel == sidechan.ChanCacheSet && !ev.Implicit {
			found = true
		}
		if ev.PC == 4 {
			t.Errorf("clean-addressed reload flagged: %s", ev)
		}
	}
	if !found {
		t.Error("taint did not survive the store/load round-trip")
	}
	// The secret byte's shadow must be visible in shadow memory.
	leaf, _, err := core.Context(0).AddressSpace().LeafEntry(cputest.DataVA)
	if err != nil {
		t.Fatal(err)
	}
	pa := leaf.PPN() << mem.PageShift
	if s.MemShadow(pa) == 0 {
		t.Error("stored secret left no shadow-memory taint")
	}
}

// Overwriting a secret location with public data must clear its taint.
func TestPublicOverwriteUntaints(t *testing.T) {
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(cputest.DataVA)).
		MovImm(isa.R2, 7). // secret
		Store(isa.R2, isa.R1, 0).
		Fence().
		MovImm(isa.R3, 9). // public
		Store(isa.R3, isa.R1, 0).
		Fence().
		Load(isa.R4, isa.R1, 0).     // reload now-public value
		Add(isa.R5, isa.R1, isa.R4). // address from it
		Load(isa.R6, isa.R5, 0).     // pc=8: must NOT transmit
		Halt().
		MustBuild()
	core, _ := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R2, "secret")
	core.Run(1_000_000)
	for _, ev := range s.Events() {
		if ev.PC == 8 {
			t.Errorf("load through untainted value flagged: %s", ev)
		}
	}
}

// A divide guarded by a secret branch must emit an implicit port
// transmit, whichever side executes — including when the guarded work
// dispatches only after the branch resolved (the replay-shadow gap the
// persistent region taint covers).
func TestImplicitBranchTransmit(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		b := isa.NewBuilder().
			MovImm(isa.R1, secret).
			MovImm(isa.R2, 0).
			MovImm(isa.R3, 100).
			MovImm(isa.R4, 7).
			Beq(isa.R1, isa.R2, "else").
			Div(isa.R5, isa.R3, isa.R4). // taken-side divide
			Jmp("join").
			Label("else").
			Div(isa.R6, isa.R3, isa.R4). // else-side divide
			Label("join").
			Halt()
		prog := b.MustBuild()
		core, _ := buildCore(t, prog)
		s := attach(core)
		s.SeedReg(0, isa.R1, "bit")
		core.Run(1_000_000)

		var implicitPort bool
		for _, ev := range s.Events() {
			if ev.Channel == sidechan.ChanPort && ev.Implicit {
				implicitPort = true
			}
		}
		if !implicitPort {
			t.Errorf("secret=%d: no implicit port-contention transmit from guarded divide", secret)
		}
	}
}

// Squashed transient transmits must be recorded and keep Transient=true
// after the squash, while the architecturally re-executed instance
// retires with Transient=false.
func TestTransientDisposition(t *testing.T) {
	// A load dependent on a slow divide mispredicts... simplest reliable
	// transient source: a branch the predictor gets wrong, guarding a
	// secret-addressed load on the wrong path.
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(cputest.DataVA)).
		MovImm(isa.R2, 0x18). // secret
		MovImm(isa.R3, 1).
		MovImm(isa.R4, 1).
		MovImm(isa.R7, 40).
		MovImm(isa.R8, 1).
		Add(isa.R5, isa.R1, isa.R2). // tainted address
		Label("loop").
		Sub(isa.R7, isa.R7, isa.R8).
		Bne(isa.R3, isa.R4, "skip"). // always falls through; predictor must learn
		Load(isa.R6, isa.R5, 0).     // executes every iteration (tainted load)
		Label("skip").
		Bne(isa.R7, isa.R2, "loop"). // loop until R7 == 0x18
		Halt()
	prog := b.MustBuild()
	core, _ := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R2, "secret")
	core.Run(2_000_000)

	var retired, transient int
	for _, ev := range s.Events() {
		if ev.Channel != sidechan.ChanCacheSet {
			continue
		}
		if ev.Transient {
			transient++
		} else {
			retired++
		}
	}
	if retired == 0 {
		t.Error("no architectural cache-set transmit recorded")
	}
	if core.Context(0).Stats().Squashed > 0 && transient == 0 {
		t.Log("run squashed entries but no transient transmit — acceptable if the load never sat in a mispredict shadow")
	}
}

// --- findings & reconciliation ----------------------------------------

func TestFindingsAggregateAndReconcile(t *testing.T) {
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(cputest.DataVA)).
		MovImm(isa.R2, 0x20).
		Add(isa.R3, isa.R1, isa.R2).
		Load(isa.R4, isa.R3, 0).
		Halt().
		MustBuild()
	core, _ := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R2, "secret")
	core.Run(1_000_000)
	s.Flush()

	fs := s.Findings()
	if len(fs) == 0 {
		t.Fatal("no findings aggregated")
	}
	for _, f := range fs {
		if f.Count == 0 {
			t.Errorf("finding with zero count: %+v", f)
		}
	}

	sec := static.Secrets{Regs: []isa.Reg{isa.R2}}
	rep, err := static.Analyze("t", prog, sec, static.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := static.TransmitPoints(prog, sec, static.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Reconcile(rep, pts, 0)
	if len(rec.Entries) == 0 {
		t.Fatal("reconciliation produced no entries")
	}
	if un := rec.Unexplained(); len(un) != 0 {
		t.Errorf("unexplained dynamic findings: %v", un)
	}
}

// --- snapshot ----------------------------------------------------------

func gobBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Snap/Restore must round-trip bit-identically through gob, and the
// restored sanitizer must keep producing identical state.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prog := cputest.GenProgram(rng)
	core, as := buildCore(t, prog)
	s := attach(core)
	s.SeedReg(0, isa.R3, "reg-secret")
	if err := s.SeedMemory(as, cputest.DataVA, cputest.DataVA+64, "mem-secret"); err != nil {
		t.Fatal(err)
	}
	core.Run(1_000_000)

	snap1 := s.Snap()
	enc1 := gobBytes(t, snap1)

	var decoded sanitizer.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(enc1)).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	core2, _ := buildCore(t, prog)
	s2 := sanitizer.New(core2, sanitizer.DefaultConfig())
	if err := s2.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	enc2 := gobBytes(t, s2.Snap())
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("snapshot round-trip is not bit-identical")
	}
	if got, want := s2.RegShadow(0, isa.R3), s.RegShadow(0, isa.R3); got != want {
		t.Errorf("restored reg shadow %#x, want %#x", got, want)
	}
}

func TestSnapshotRejectsContextMismatch(t *testing.T) {
	core, _ := buildCore(t, isa.NewBuilder().Halt().MustBuild())
	s := sanitizer.New(core, sanitizer.DefaultConfig())
	if err := s.Restore(&sanitizer.Snapshot{}); err == nil {
		t.Error("snapshot with zero contexts accepted by one-context core")
	}
}

// --- zero overhead when off -------------------------------------------

// With no sanitizer attached the shadow hooks are nil checks: a run must
// allocate exactly as much as a baseline run, and produce an identical
// trace-event stream.
func TestSanitizerOffAddsNoAllocations(t *testing.T) {
	prep := func() (*cpu.Core, *isa.Program) {
		rng := rand.New(rand.NewSource(17))
		prog := cputest.GenProgram(rng)
		as, err := cputest.NewDataSpace(17)
		if err != nil {
			t.Fatal(err)
		}
		core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
		core.Context(0).SetAddressSpace(as)
		return core, prog
	}
	run := func(core *cpu.Core, prog *isa.Program) {
		core.Context(0).SetProgram(prog, 0)
		core.Run(20_000_000)
	}
	coreA, progA := prep()
	baseline := testing.AllocsPerRun(5, func() { run(coreA, progA) })

	coreB, progB := prep()
	coreB.SetShadow(sanitizer.New(coreB, sanitizer.DefaultConfig()))
	coreB.SetShadow(nil) // attach and detach: must leave no residue
	detached := testing.AllocsPerRun(5, func() { run(coreB, progB) })

	if detached > baseline {
		t.Errorf("detached-sanitizer run allocates %.1f, baseline %.1f", detached, baseline)
	}
}

// The trace-event stream (hashed) must be identical with and without an
// attached sanitizer: the observer must not perturb the simulation.
func TestSanitizerDoesNotPerturbTrace(t *testing.T) {
	runHash := func(withSan bool) uint64 {
		rng := rand.New(rand.NewSource(29))
		prog := cputest.GenAliasProgram(rng)
		as, err := cputest.NewDataSpace(29)
		if err != nil {
			t.Fatal(err)
		}
		core := cpu.NewCore(cpu.DefaultConfig(), as.Phys())
		core.Context(0).SetAddressSpace(as)
		core.Context(0).SetProgram(prog, 0)
		h := trace.NewHasher()
		core.SetTracer(h)
		if withSan {
			s := sanitizer.New(core, sanitizer.DefaultConfig())
			s.SeedReg(0, isa.R1, "s")
			core.SetShadow(s)
		}
		core.Run(20_000_000)
		return h.Sum64()
	}
	if off, on := runHash(false), runHash(true); off != on {
		t.Errorf("trace hash differs with sanitizer attached: %#x vs %#x", off, on)
	}
}
