package kernel

import (
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

type rig struct {
	k    *Kernel
	core *cpu.Core
}

func newRig(t *testing.T) *rig {
	t.Helper()
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := New(DefaultConfig(), phys, core)
	return &rig{k: k, core: core}
}

func (r *rig) spawn(t *testing.T, name string) *Process {
	t.Helper()
	p, err := r.k.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProcessCreation(t *testing.T) {
	r := newRig(t)
	p1 := r.spawn(t, "a")
	p2 := r.spawn(t, "b")
	if p1.PID == p2.PID {
		t.Error("PIDs collide")
	}
	if p1.AddressSpace().PCID() == p2.AddressSpace().PCID() {
		t.Error("PCIDs collide")
	}
	if got, ok := r.k.Process(p1.PID); !ok || got != p1 {
		t.Error("Process lookup failed")
	}
	if _, ok := r.k.Process(999); ok {
		t.Error("lookup of unknown PID succeeded")
	}
}

func TestVMALookup(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "v")
	r.k.AddVMA(p, 0x2000, 0x4000, mem.FlagUser, "heap")
	r.k.AddVMA(p, 0x1000, 0x1800, mem.FlagUser, "stack")
	if v, ok := p.FindVMA(0x2abc); !ok || v.Name != "heap" {
		t.Errorf("FindVMA(0x2abc) = %+v, %t", v, ok)
	}
	// End rounded up to page boundary.
	if v, ok := p.FindVMA(0x1900); !ok || v.Name != "stack" {
		t.Errorf("FindVMA(0x1900) = %+v, %t (end should round up)", v, ok)
	}
	if _, ok := p.FindVMA(0x9000); ok {
		t.Error("FindVMA outside areas succeeded")
	}
	vmas := p.VMAs()
	if len(vmas) != 2 || vmas[0].Name != "stack" {
		t.Errorf("VMAs not sorted: %+v", vmas)
	}
}

func TestDemandPaging(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "d")
	base := mem.Addr(0x10_0000)
	r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser|mem.FlagWritable, "data")
	r.k.Schedule(0, p)

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		MovImm(isa.R2, 7).
		Store(isa.R2, isa.R1, 0).
		Load(isa.R3, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	if ctx.Reg(isa.R3) != 7 {
		t.Errorf("r3 = %d", ctx.Reg(isa.R3))
	}
	if ctx.Stats().PageFaults != 1 {
		t.Errorf("faults = %d, want 1 (demand page)", ctx.Stats().PageFaults)
	}
	log := r.k.FaultLog()
	if len(log) != 1 || log[0].Minor {
		t.Errorf("fault log = %+v, want one major fault", log)
	}
}

func TestSegfaultTerminates(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "s")
	r.k.Schedule(0, p)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 0x7777_0000).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("context did not terminate")
	}
	// r2 must never have been written: the load faulted fatally.
	if ctx.Reg(isa.R2) != 0 {
		t.Error("load retired despite segfault")
	}
}

func TestMinorFaultRestoresPresent(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "m")
	base := mem.Addr(0x20_0000)
	v := r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser|mem.FlagWritable, "data")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddressSpace().SetPresent(base, false); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	log := r.k.FaultLog()
	if len(log) != 1 || !log[0].Minor {
		t.Fatalf("fault log = %+v, want one minor fault", log)
	}
	// Present restored.
	if _, err := p.AddressSpace().Translate(base); err != nil {
		t.Errorf("translation still broken after minor fault: %v", err)
	}
}

func TestWriteToReadOnlyVMATerminates(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "ro")
	base := mem.Addr(0x30_0000)
	r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser, "rodata")
	r.k.Schedule(0, p)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		MovImm(isa.R2, 1).
		Store(isa.R2, isa.R1, 0).
		MovImm(isa.R3, 42). // must not retire
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if ctx.Reg(isa.R3) == 42 {
		t.Error("execution continued past fatal write fault")
	}
}

type hookFunc func(p *Process, f cpu.PageFault) (cpu.FaultOutcome, bool)

func (h hookFunc) HandleFault(p *Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
	return h(p, f)
}

func TestHookInterceptsFault(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "h")
	base := mem.Addr(0x40_0000)
	v := r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser, "data")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddressSpace().SetPresent(base, false); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)

	calls := 0
	hook := hookFunc(func(hp *Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
		if hp != p {
			t.Errorf("hook got process %v", hp)
		}
		calls++
		if calls < 3 {
			// Keep the present bit clear: replay.
			return cpu.FaultOutcome{HandlerLatency: 100}, true
		}
		if _, err := p.AddressSpace().SetPresent(base, true); err != nil {
			t.Error(err)
		}
		return cpu.FaultOutcome{HandlerLatency: 100}, true
	})
	unregister := r.k.RegisterHook(hook)

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(2_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	if calls != 3 {
		t.Errorf("hook called %d times, want 3 (2 replays + release)", calls)
	}

	// After unregistering, the hook must not fire again.
	unregister()
	unregister() // idempotent
	r.k.ClearFaultLog()
	if _, err := p.AddressSpace().SetPresent(base, false); err != nil {
		t.Fatal(err)
	}
	// TLB coherence: without INVLPG the stale translation would let the
	// load bypass the cleared present bit entirely.
	r.k.Invlpg(p, base)
	ctx.SetProgram(prog, 0)
	r.core.Run(2_000_000)
	if calls != 3 {
		t.Errorf("hook fired after unregister (calls=%d)", calls)
	}
	if len(r.k.FaultLog()) != 1 {
		t.Errorf("default path did not log fault: %+v", r.k.FaultLog())
	}
}

func TestFaultLogRecordsVPNOnly(t *testing.T) {
	// The OS-visible information is the faulting VPN (SGX AEX semantics):
	// the log carries VA and VPN; downstream consumers (controlled-channel
	// attack tests) use VPN.
	r := newRig(t)
	p := r.spawn(t, "log")
	base := mem.Addr(0x50_0000)
	r.k.AddVMA(p, base, base+2*mem.PageSize, mem.FlagUser, "data")
	r.k.Schedule(0, p)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0x18).
		Load(isa.R3, isa.R1, int64(mem.PageSize)+0x20).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(2_000_000)
	log := r.k.FaultLog()
	if len(log) != 2 {
		t.Fatalf("fault log has %d entries, want 2", len(log))
	}
	if log[0].VPN != mem.PageNum(base) || log[1].VPN != mem.PageNum(base)+1 {
		t.Errorf("VPN sequence = %#x, %#x", log[0].VPN, log[1].VPN)
	}
}

func TestInvlpg(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "inv")
	base := mem.Addr(0x60_0000)
	v := r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser|mem.FlagWritable, "d")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)
	// Warm the TLB by running a load.
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if _, lvl := r.core.TLBs().LookupData(mem.PageNum(base), p.AddressSpace().PCID()); lvl == 0 {
		t.Fatal("TLB not warm after load")
	}
	r.k.Invlpg(p, base)
	if _, lvl := r.core.TLBs().LookupData(mem.PageNum(base), p.AddressSpace().PCID()); lvl != 0 {
		t.Error("translation survived INVLPG")
	}
}

func TestKernelWriteVirtDemandMaps(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "w")
	base := mem.Addr(0x70_0000)
	r.k.AddVMA(p, base, base+3*mem.PageSize, mem.FlagUser|mem.FlagWritable, "data")
	data := make([]byte, 2*mem.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := r.k.WriteVirt(p, base+100, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.AddressSpace().ReadVirt(base+100, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	if err := r.k.WriteVirt(p, 0x9999_0000, []byte{1}); err == nil {
		t.Error("write outside VMAs succeeded")
	}
}

func TestMapEagerIdempotent(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "e")
	base := mem.Addr(0x80_0000)
	v := r.k.AddVMA(p, base, base+4*mem.PageSize, mem.FlagUser, "data")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	before := r.k.Phys().AllocatedFrames()
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if r.k.Phys().AllocatedFrames() != before {
		t.Error("second MapEager allocated frames")
	}
}

func TestEvictAndSwapIn(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "swap")
	base := mem.Addr(0x90_0000)
	v := r.k.AddVMA(p, base, base+2*mem.PageSize, mem.FlagUser|mem.FlagWritable, "data")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if err := p.AddressSpace().Write64Virt(base+8, 0xfeed); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)

	// Evict the page; data must survive the round trip through swap.
	if err := r.k.EvictPage(p, base); err != nil {
		t.Fatal(err)
	}
	if !r.k.Swapped(p, base) {
		t.Fatal("page not recorded as swapped")
	}
	if _, err := p.AddressSpace().Translate(base); err == nil {
		t.Fatal("evicted page still translates")
	}

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 8).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	if got := ctx.Reg(isa.R2); got != 0xfeed {
		t.Errorf("loaded %#x after swap-in, want 0xfeed", got)
	}
	if r.k.Swapped(p, base) {
		t.Error("page still marked swapped after swap-in")
	}
	ev, si := r.k.SwapStats()
	if ev != 1 || si != 1 {
		t.Errorf("swap stats = %d/%d", ev, si)
	}
}

func TestEvictUnmappedFails(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "e")
	if err := r.k.EvictPage(p, 0x9999_0000); err == nil {
		t.Error("evicting unmapped page succeeded")
	}
}

func TestEvictedPageIsNaturalReplayHandle(t *testing.T) {
	// An evicted page's access is "an instruction with a naturally
	// occurring page fault" (§4.1.1) — hooks see it like any armed fault.
	r := newRig(t)
	p := r.spawn(t, "nat")
	base := mem.Addr(0xA0_0000)
	v := r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser|mem.FlagWritable, "d")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)
	if err := r.k.EvictPage(p, base); err != nil {
		t.Fatal(err)
	}
	seen := 0
	r.k.RegisterHook(hookFunc(func(hp *Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
		if mem.PageNum(f.VA) == mem.PageNum(base) {
			seen++
		}
		return cpu.FaultOutcome{}, false // observe only
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	r.core.Context(0).SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if seen != 1 {
		t.Errorf("hook saw %d natural faults, want 1", seen)
	}
}
