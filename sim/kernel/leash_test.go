package kernel

import (
	"bytes"
	"encoding/gob"
	"testing"

	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// replayRig builds a process with one eager-mapped page whose present
// bit is cleared, plus a hook that refuses to fix it for the first
// refuse faults — the canonical MicroScope replay loop at kernel level.
func replayRig(t *testing.T, refuse int) (*rig, *Process, mem.Addr) {
	t.Helper()
	r := newRig(t)
	p := r.spawn(t, "victim")
	base := mem.Addr(0x40_0000)
	v := r.k.AddVMA(p, base, base+mem.PageSize, mem.FlagUser, "handle")
	if err := r.k.MapEager(p, v); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddressSpace().SetPresent(base, false); err != nil {
		t.Fatal(err)
	}
	r.k.Schedule(0, p)

	calls := 0
	r.k.RegisterHook(hookFunc(func(hp *Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
		calls++
		if calls <= refuse {
			return cpu.FaultOutcome{HandlerLatency: 1_000}, true
		}
		if _, err := p.AddressSpace().SetPresent(base, true); err != nil {
			t.Error(err)
		}
		return cpu.FaultOutcome{HandlerLatency: 1_000}, true
	}))
	return r, p, base
}

func runReplayVictim(t *testing.T, r *rig, base mem.Addr) *cpu.Context {
	t.Helper()
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(5_000_000)
	if !ctx.Halted() {
		t.Fatal("victim did not halt")
	}
	return ctx
}

// TestLeashTripsOnReplayBurst: a same-page fault burst trips the
// detector, and every fault past the trip pays the deschedule penalty —
// the attacker's replay rate drops measurably.
func TestLeashTripsOnReplayBurst(t *testing.T) {
	const refuse = 9 // 10 faults total on one page

	r, p, base := replayRig(t, refuse)
	r.k.EnableLeash(LeashConfig{Window: 100_000, Faults: 4, Penalty: 20_000})
	runReplayVictim(t, r, base)
	throttledCycles := r.core.Cycle()

	tripped, throttled := r.k.LeashStatus(p.PID)
	if !tripped {
		t.Fatal("LEASH did not trip on a 10-fault same-page burst")
	}
	// Faults 1-4 arm and trip; faults 4-10 are throttled (the tripping
	// fault itself pays).
	if throttled != 7 {
		t.Errorf("throttled = %d, want 7", throttled)
	}

	// Control: same attack, no LEASH — must finish much earlier.
	rc, _, basec := replayRig(t, refuse)
	runReplayVictim(t, rc, basec)
	freeCycles := rc.core.Cycle()
	if minSlowdown := freeCycles + 7*20_000; throttledCycles < minSlowdown {
		t.Errorf("throttled run took %d cycles, want >= %d (penalties must bite)",
			throttledCycles, minSlowdown)
	}
}

// TestLeashSilentOnDemandPaging: benign first-touch faults land on
// DISTINCT pages — the per-page burst counter never accumulates and
// the process is never throttled.
func TestLeashSilentOnDemandPaging(t *testing.T) {
	r := newRig(t)
	p := r.spawn(t, "benign")
	base := mem.Addr(0x30_0000)
	const pages = 8
	r.k.AddVMA(p, base, base+pages*mem.PageSize, mem.FlagUser|mem.FlagWritable, "heap")
	r.k.Schedule(0, p)
	r.k.EnableLeash(LeashConfig{Window: 1_000_000, Faults: 4, Penalty: 20_000})

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		MovImm(isa.R2, pages).
		Label("loop").
		Load(isa.R3, isa.R1, 0).
		AddImm(isa.R1, isa.R1, int64(mem.PageSize)).
		AddImm(isa.R2, isa.R2, -1).
		Blt(isa.R0, isa.R2, "loop").
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(5_000_000)
	if !ctx.Halted() {
		t.Fatal("benign victim did not halt")
	}
	if len(r.k.FaultLog()) < pages {
		t.Fatalf("only %d faults, want >= %d", len(r.k.FaultLog()), pages)
	}
	if tripped, throttled := r.k.LeashStatus(p.PID); tripped || throttled != 0 {
		t.Errorf("LEASH tripped on benign demand paging (throttled=%d)", throttled)
	}
}

// TestLeashWindowExpires: same-page faults spaced wider than the burst
// window never accumulate — a slow replay cadence evades LEASH, the
// window/threshold trade-off the tournament's selective-rdrand handle
// exploits.
func TestLeashWindowExpires(t *testing.T) {
	r, p, base := replayRig(t, 7)
	// Handler latency is 1_000 cycles per replay; a 900-cycle window
	// forgets each fault before the next arrives.
	r.k.EnableLeash(LeashConfig{Window: 900, Faults: 3, Penalty: 20_000})
	runReplayVictim(t, r, base)
	if tripped, _ := r.k.LeashStatus(p.PID); tripped {
		t.Error("LEASH tripped despite faults spaced beyond the window")
	}
}

// TestCountermeasureStateRidesSnapshots: a checkpoint of a defended
// run must carry the LEASH throttle counters and SIMF flush counts — a
// restored process that tripped the detector stays tripped, instead of
// silently replaying at full rate (the bug the snapcover analyzer
// flagged on Kernel.leash/Kernel.simf).
func TestCountermeasureStateRidesSnapshots(t *testing.T) {
	r, p, base := replayRig(t, 9)
	r.k.EnableLeash(LeashConfig{Window: 100_000, Faults: 4, Penalty: 20_000})
	r.k.EnableSIMF(p)
	runReplayVictim(t, r, base)

	tripped, throttled := r.k.LeashStatus(p.PID)
	if !tripped || throttled == 0 {
		t.Fatalf("precondition: tripped=%v throttled=%d", tripped, throttled)
	}
	flushes := r.k.SIMFFlushes(p.PID)
	if flushes == 0 {
		t.Fatal("precondition: no SIMF flushes recorded")
	}

	snap := r.k.Snapshot()
	if !snap.LeashOn || !snap.SIMFOn {
		t.Fatalf("snapshot dropped defense enablement: %+v", snap)
	}

	// Wipe the live countermeasure state, then restore: every counter
	// must come back exactly.
	r.k.ResetCountermeasures()
	if tr, _ := r.k.LeashStatus(p.PID); tr {
		t.Fatal("ResetCountermeasures left the trip flag set")
	}
	if err := r.k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if tr, th := r.k.LeashStatus(p.PID); !tr || th != throttled {
		t.Errorf("restored LEASH state = (%v, %d), want (true, %d)", tr, th, throttled)
	}
	if got := r.k.SIMFFlushes(p.PID); got != flushes {
		t.Errorf("restored SIMFFlushes = %d, want %d", got, flushes)
	}

	// Determinism: two snapshots of identical state must gob-encode
	// byte-identically (maps are flattened sorted), the property the
	// golden tests and tools/snapdiff rely on.
	enc := func(s *KernelSnap) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(r.k.Snapshot()), enc(r.k.Snapshot())) {
		t.Error("countermeasure snapshot encoding is not deterministic")
	}
}

// TestRestoreDisablesAbsentCountermeasures: restoring an undefended
// checkpoint over a defended kernel turns the defenses off — restore
// means "become the checkpointed machine", not a merge.
func TestRestoreDisablesAbsentCountermeasures(t *testing.T) {
	r, p, base := replayRig(t, 2)
	runReplayVictim(t, r, base)
	snap := r.k.Snapshot()
	if snap.LeashOn || snap.SIMFOn || snap.Leash != nil || snap.SIMF != nil {
		t.Fatalf("undefended snapshot carries defense state: %+v", snap)
	}

	r.k.EnableLeash(LeashConfig{})
	r.k.EnableSIMF(p)
	if err := r.k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r.k.leash != nil || r.k.simf != nil {
		t.Error("restore kept defenses the checkpoint did not carry")
	}
}

// TestSIMFFlushesOnFault: a SIMF-protected process's faults scrub the
// microarchitectural state the attacker's handler would probe; an
// unprotected process leaves it warm.
func TestSIMFFlushesOnFault(t *testing.T) {
	for _, protected := range []bool{true, false} {
		r, p, base := replayRig(t, 2)
		// A second, eagerly mapped page is the "footprint" the
		// attacker would probe: warmed before the fault, never
		// touched again.
		warmVA := mem.Addr(0x50_0000)
		wv := r.k.AddVMA(p, warmVA, warmVA+mem.PageSize, mem.FlagUser, "warm")
		if err := r.k.MapEager(p, wv); err != nil {
			t.Fatal(err)
		}
		warmPA, err := p.AddressSpace().Translate(warmVA)
		if err != nil {
			t.Fatal(err)
		}
		if protected {
			r.k.EnableSIMF(p)
		}

		prog := isa.NewBuilder().
			MovImm(isa.R1, int64(warmVA)).
			Load(isa.R2, isa.R1, 0). // warm the probe line
			MovImm(isa.R3, int64(base)).
			Load(isa.R4, isa.R3, 0). // replay handle: faults 3x
			Halt().MustBuild()
		ctx := r.core.Context(0)
		ctx.SetProgram(prog, 0)
		r.core.Run(5_000_000)
		if !ctx.Halted() {
			t.Fatal("victim did not halt")
		}

		faults := uint64(len(r.k.FaultLog()))
		if faults != 3 {
			t.Fatalf("faults = %d, want 3", faults)
		}
		cold := r.core.Hierarchy().LevelOf(warmPA) == cache.LevelMem
		if protected {
			if got := r.k.SIMFFlushes(p.PID); got != faults {
				t.Errorf("SIMFFlushes = %d, want %d (one per fault)", got, faults)
			}
			if !cold {
				t.Error("probe line survived the multi-flush")
			}
		} else {
			if got := r.k.SIMFFlushes(p.PID); got != 0 {
				t.Errorf("SIMFFlushes = %d for unprotected process", got)
			}
			if cold {
				t.Error("control: probe line cold without SIMF")
			}
		}
	}
}
