package kernel

// OS-level replay countermeasures: LEASH-style reactive throttling and
// SIMF-style multi-flush, both hooked into the page-fault path.
//
// LEASH (arXiv 2109.03998): the scheduler watches each process's fault
// arrivals; a burst of faults on the same virtual page inside a short
// window is the replay signature (the victim re-faults on the armed
// handle page at handler-return cadence, while benign demand paging
// faults once per page). A tripped process is deprioritized: every
// subsequent fault costs an extra deschedule penalty, throttling the
// attacker's replay rate without blocking legitimate progress.
//
// SIMF (arXiv 2011.10249): a protected victim invokes a single
// multi-flush instruction on its exception path, scrubbing cache, TLB,
// page-walk-cache and branch-predictor state before control reaches the
// untrusted handler — so a MicroScope module probing from the handler
// sees cold structures. The simulation invokes cpu.Core.FlushMicroarch
// at fault entry, modelling the enclave's AEX path running before the
// OS. It is prevention, not detection: faults (and the replay loop)
// proceed, but each window's microarchitectural footprint is erased
// before the attacker can read it.
//
// Both defenses' state rides kernel snapshots (KernelSnap.Leash/SIMF):
// a checkpoint of a defended run restores with its throttle counters
// and flush counts intact, so a tripped process stays tripped. Rigs
// reused across runs with different defenses call
// ResetCountermeasures after each restore instead.

// LeashConfig parameterizes the LEASH fault-burst detector.
type LeashConfig struct {
	// Window is the burst window in cycles: only faults this recent
	// count toward a trip.
	Window uint64
	// Faults is the trip threshold: this many faults on one virtual
	// page inside Window flags the process.
	Faults int
	// Penalty is the extra handler latency, in cycles, every fault of a
	// flagged process pays (the scheduler deprioritization).
	Penalty uint64
}

// DefaultLeashConfig returns the tournament's baseline: six same-page
// faults inside 200k cycles trips; each subsequent fault costs an extra
// 25k-cycle deschedule.
func DefaultLeashConfig() LeashConfig {
	return LeashConfig{Window: 200_000, Faults: 6, Penalty: 25_000}
}

// leashProc is one process's detector state.
type leashProc struct {
	// byVPN holds recent fault cycles per virtual page, newest last,
	// at most cfg.Faults entries per page.
	byVPN      map[uint64][]uint64
	tripped    bool
	trippedVPN uint64
	throttled  uint64 // faults penalized since the trip
}

type leash struct {
	cfg   LeashConfig
	procs map[int]*leashProc
}

// EnableLeash turns on LEASH-style reactive throttling for every
// process. Zero-valued fields of cfg fall back to DefaultLeashConfig.
func (k *Kernel) EnableLeash(cfg LeashConfig) {
	def := DefaultLeashConfig()
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.Faults <= 0 {
		cfg.Faults = def.Faults
	}
	if cfg.Penalty == 0 {
		cfg.Penalty = def.Penalty
	}
	k.leash = &leash{cfg: cfg, procs: make(map[int]*leashProc)}
}

// LeashStatus reports whether the process tripped the fault-burst
// detector and how many of its faults have been throttled since.
func (k *Kernel) LeashStatus(pid int) (tripped bool, throttled uint64) {
	if k.leash == nil {
		return false, 0
	}
	st, ok := k.leash.procs[pid]
	if !ok {
		return false, 0
	}
	return st.tripped, st.throttled
}

// leashObserve records one fault arrival and returns the extra handler
// latency the scheduler imposes on it (zero until the process trips).
func (k *Kernel) leashObserve(pid int, vpn uint64) uint64 {
	l := k.leash
	if l == nil {
		return 0
	}
	st, ok := l.procs[pid]
	if !ok {
		st = &leashProc{byVPN: make(map[uint64][]uint64)}
		l.procs[pid] = st
	}
	now := k.core.Cycle()
	if !st.tripped {
		ring := st.byVPN[vpn]
		ring = append(ring, now)
		if len(ring) > l.cfg.Faults {
			ring = ring[len(ring)-l.cfg.Faults:]
		}
		st.byVPN[vpn] = ring
		recent := 0
		for _, c := range ring {
			if c+l.cfg.Window > now {
				recent++
			}
		}
		if recent >= l.cfg.Faults {
			st.tripped = true
			st.trippedVPN = vpn
		}
	}
	if st.tripped {
		st.throttled++
		return l.cfg.Penalty
	}
	return 0
}

// ResetCountermeasures removes all LEASH and SIMF wiring. Snapshots
// serialize countermeasure state, so a restore brings back whatever the
// checkpointed kernel was running; sweeps that reuse one rig for runs
// with different defenses call this after each restore so the restored
// configuration cannot leak into the next trial.
func (k *Kernel) ResetCountermeasures() {
	k.leash = nil
	k.simf = nil
}

// EnableSIMF marks the process SIMF-protected: every fault it takes
// scrubs the microarchitectural structures (cpu.Core.FlushMicroarch)
// before the handler — and any module hooked into it — runs.
func (k *Kernel) EnableSIMF(p *Process) {
	if k.simf == nil {
		k.simf = make(map[int]uint64)
	}
	k.simf[p.PID] = 0
}

// SIMFFlushes returns how many multi-flushes the process has executed
// (one per delivered fault while protected).
func (k *Kernel) SIMFFlushes(pid int) uint64 {
	return k.simf[pid]
}

// simfObserve runs the protected process's multi-flush on fault entry.
func (k *Kernel) simfObserve(pid int, ctxID int) {
	if k.simf == nil {
		return
	}
	if _, ok := k.simf[pid]; !ok {
		return
	}
	k.core.FlushMicroarch(ctxID)
	k.simf[pid]++
}
