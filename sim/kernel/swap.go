package kernel

import (
	"fmt"

	"microscope/sim/mem"
)

// Page eviction and swap: the OS may displace a resident page to backing
// store and fault it back in on demand. The paper's §2.3 notes the OS is
// responsible for the TLB invalidations this requires; evicted pages are
// also natural replay handles (a naturally occurring page fault,
// §4.1.1).

type swapKey struct {
	pid int
	vpn uint64
}

// EvictPage removes va's page from memory: its contents move to the
// kernel's swap store, the frame is freed, the PTE is cleared, and the
// TLB entry is invalidated. The next access demand-faults and SwapIn
// restores the contents.
func (k *Kernel) EvictPage(p *Process, va mem.Addr) error {
	page := mem.PageBase(va)
	pa, err := p.as.Translate(page)
	if err != nil {
		return fmt.Errorf("kernel: evicting unmapped page %#x: %w", page, err)
	}
	if k.swap == nil {
		k.swap = make(map[swapKey][]byte)
	}
	k.swap[swapKey{p.PID, mem.PageNum(page)}] = k.phys.ReadBytes(pa, mem.PageSize)
	if err := p.as.Unmap(page); err != nil {
		return err
	}
	k.phys.FreeFrame(mem.PageNum(pa))
	k.Invlpg(p, page)
	// Evicted contents must not linger in the cache hierarchy.
	for off := mem.Addr(0); off < mem.PageSize; off += 64 {
		k.core.Hierarchy().FlushAddr(pa + off)
	}
	k.evictions++
	return nil
}

// swapIn restores an evicted page, reporting whether va was swapped.
func (k *Kernel) swapIn(p *Process, va mem.Addr) (bool, error) {
	key := swapKey{p.PID, mem.PageNum(va)}
	data, ok := k.swap[key]
	if !ok {
		return false, nil
	}
	v, found := p.FindVMA(va)
	if !found {
		return false, fmt.Errorf("kernel: swapped page %#x outside VMAs", va)
	}
	if _, err := p.as.MapNew(mem.PageBase(va), v.Flags); err != nil {
		return false, err
	}
	if err := p.as.WriteVirt(mem.PageBase(va), data); err != nil {
		return false, err
	}
	delete(k.swap, key)
	k.swapIns++
	return true, nil
}

// SwapStats returns cumulative eviction and swap-in counts.
func (k *Kernel) SwapStats() (evictions, swapIns uint64) {
	return k.evictions, k.swapIns
}

// Swapped reports whether va's page currently lives in the swap store.
func (k *Kernel) Swapped(p *Process, va mem.Addr) bool {
	_, ok := k.swap[swapKey{p.PID, mem.PageNum(va)}]
	return ok
}
