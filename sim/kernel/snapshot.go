package kernel

import (
	"fmt"
	"sort"

	"microscope/sim/mem"
)

// Snapshot support. KernelSnap is a plain-data image of the kernel's
// process, schedule, fault-log and swap tables. Maps are flattened into
// slices sorted by key so the gob encoding is deterministic (two
// snapshots of identical state are byte-identical — the property
// tools/snapdiff and the golden tests rely on).
//
// Fault hooks are host-side closures and are NOT serialized: after a
// restore, previously registered hooks remain registered (in-place
// restore) or must be re-registered by the caller (restore into a fresh
// kernel). The MicroScope module re-arms its own hook when its recipe
// state is restored. Countermeasure state (LEASH throttle counters,
// SIMF flush counts) IS serialized — it is simulated-machine state, not
// wiring, and a defended run's checkpoint must resume bit-identically.

// ProcessSnap is one serializable process table entry.
type ProcessSnap struct {
	PID       int
	Name      string
	Root      uint64 // PPN of the PGD (the tables live in the PhysMem image)
	PCID      uint16
	VMAs      []VMA
	EnclaveID int
}

// ScheduleSnap maps one SMT context to the PID it runs.
type ScheduleSnap struct {
	CtxID int
	PID   int
}

// SwapSnap is one swapped-out page.
type SwapSnap struct {
	PID  int
	VPN  uint64
	Data []byte
}

// LeashPageSnap is one page's recent-fault ring in the LEASH detector.
type LeashPageSnap struct {
	VPN    uint64
	Cycles []uint64
}

// LeashProcSnap is one process's LEASH detector state.
type LeashProcSnap struct {
	PID        int
	Pages      []LeashPageSnap // sorted by VPN
	Tripped    bool
	TrippedVPN uint64
	Throttled  uint64
}

// SIMFSnap is one SIMF-protected process's flush counter.
type SIMFSnap struct {
	PID     int
	Flushes uint64
}

// KernelSnap is the serializable state of the kernel.
type KernelSnap struct {
	Procs    []ProcessSnap  // sorted by PID
	Running  []ScheduleSnap // sorted by context id
	NextPID  int
	NextPCID uint16
	FaultLog []FaultRecord
	Swap     []SwapSnap // sorted by (PID, VPN)
	Evict    uint64
	SwapIns  uint64

	// Countermeasure state (PR 10): a checkpoint of a defended run must
	// carry the LEASH throttle counters and SIMF flush counts, or the
	// restored run diverges from the original — a tripped process would
	// come back untripped and replay at full rate.
	LeashOn  bool
	LeashCfg LeashConfig
	Leash    []LeashProcSnap // sorted by PID
	SIMFOn   bool
	SIMF     []SIMFSnap // sorted by PID
}

// Snapshot captures the kernel's state.
func (k *Kernel) Snapshot() *KernelSnap {
	s := &KernelSnap{
		NextPID:  k.nextPID,
		NextPCID: k.nextPCID,
		FaultLog: append([]FaultRecord(nil), k.faultLog...),
		Evict:    k.evictions,
		SwapIns:  k.swapIns,
	}
	for _, p := range k.procs {
		s.Procs = append(s.Procs, ProcessSnap{
			PID:       p.PID,
			Name:      p.Name,
			Root:      p.as.Root(),
			PCID:      p.as.PCID(),
			VMAs:      append([]VMA(nil), p.vmas...),
			EnclaveID: p.EnclaveID,
		})
	}
	sort.Slice(s.Procs, func(i, j int) bool { return s.Procs[i].PID < s.Procs[j].PID })
	for ctxID, p := range k.running {
		s.Running = append(s.Running, ScheduleSnap{CtxID: ctxID, PID: p.PID})
	}
	sort.Slice(s.Running, func(i, j int) bool { return s.Running[i].CtxID < s.Running[j].CtxID })
	for key, data := range k.swap {
		s.Swap = append(s.Swap, SwapSnap{PID: key.pid, VPN: key.vpn, Data: append([]byte(nil), data...)})
	}
	sort.Slice(s.Swap, func(i, j int) bool {
		if s.Swap[i].PID != s.Swap[j].PID {
			return s.Swap[i].PID < s.Swap[j].PID
		}
		return s.Swap[i].VPN < s.Swap[j].VPN
	})
	if k.leash != nil {
		s.LeashOn = true
		s.LeashCfg = k.leash.cfg
		for pid, st := range k.leash.procs {
			ps := LeashProcSnap{
				PID:        pid,
				Tripped:    st.tripped,
				TrippedVPN: st.trippedVPN,
				Throttled:  st.throttled,
			}
			for vpn, ring := range st.byVPN {
				ps.Pages = append(ps.Pages, LeashPageSnap{
					VPN:    vpn,
					Cycles: append([]uint64(nil), ring...),
				})
			}
			sort.Slice(ps.Pages, func(i, j int) bool { return ps.Pages[i].VPN < ps.Pages[j].VPN })
			s.Leash = append(s.Leash, ps)
		}
		sort.Slice(s.Leash, func(i, j int) bool { return s.Leash[i].PID < s.Leash[j].PID })
	}
	if k.simf != nil {
		s.SIMFOn = true
		for pid, flushes := range k.simf {
			s.SIMF = append(s.SIMF, SIMFSnap{PID: pid, Flushes: flushes})
		}
		sort.Slice(s.SIMF, func(i, j int) bool { return s.SIMF[i].PID < s.SIMF[j].PID })
	}
	return s
}

// Restore overwrites the kernel's state with a snapshot. The physical
// memory image must already have been restored (the page tables live
// there). Processes are restored in place where the PID still exists —
// the *Process pointer identity is preserved, so recipes and experiment
// rigs holding process handles keep working across a restore — and
// recreated otherwise. The core's context address-space bindings are
// re-established from the schedule table; contexts the snapshot leaves
// unscheduled are unbound.
func (k *Kernel) Restore(s *KernelSnap) error {
	procs := make(map[int]*Process, len(s.Procs))
	for _, ps := range s.Procs {
		p, ok := k.procs[ps.PID]
		if !ok {
			p = &Process{PID: ps.PID}
		}
		p.Name = ps.Name
		p.as = mem.AdoptAddressSpace(k.phys, ps.Root, ps.PCID)
		p.vmas = append(p.vmas[:0], ps.VMAs...)
		p.EnclaveID = ps.EnclaveID
		procs[ps.PID] = p
	}
	k.procs = procs
	k.running = make(map[int]*Process, len(s.Running))
	for _, r := range s.Running {
		p, ok := procs[r.PID]
		if !ok {
			return fmt.Errorf("kernel: snapshot schedules ctx%d to unknown pid %d", r.CtxID, r.PID)
		}
		if r.CtxID < 0 || r.CtxID >= k.core.Contexts() {
			return fmt.Errorf("kernel: snapshot schedules out-of-range context %d", r.CtxID)
		}
		k.running[r.CtxID] = p
		k.core.Context(r.CtxID).SetAddressSpace(p.as)
	}
	for i := 0; i < k.core.Contexts(); i++ {
		if _, ok := k.running[i]; !ok {
			k.core.Context(i).SetAddressSpace(nil)
		}
	}
	k.nextPID = s.NextPID
	k.nextPCID = s.NextPCID
	k.faultLog = append(k.faultLog[:0], s.FaultLog...)
	k.swap = nil
	if len(s.Swap) > 0 {
		k.swap = make(map[swapKey][]byte, len(s.Swap))
		for _, sw := range s.Swap {
			k.swap[swapKey{pid: sw.PID, vpn: sw.VPN}] = append([]byte(nil), sw.Data...)
		}
	}
	k.evictions = s.Evict
	k.swapIns = s.SwapIns
	k.leash = nil
	if s.LeashOn {
		k.leash = &leash{cfg: s.LeashCfg, procs: make(map[int]*leashProc, len(s.Leash))}
		for _, ps := range s.Leash {
			st := &leashProc{
				byVPN:      make(map[uint64][]uint64, len(ps.Pages)),
				tripped:    ps.Tripped,
				trippedVPN: ps.TrippedVPN,
				throttled:  ps.Throttled,
			}
			for _, pg := range ps.Pages {
				st.byVPN[pg.VPN] = append([]uint64(nil), pg.Cycles...)
			}
			k.leash.procs[ps.PID] = st
		}
	}
	k.simf = nil
	if s.SIMFOn {
		k.simf = make(map[int]uint64, len(s.SIMF))
		for _, sf := range s.SIMF {
			k.simf[sf.PID] = sf.Flushes
		}
	}
	return nil
}
