// Package kernel implements the simulated operating system: processes
// with virtual memory areas, demand paging, the page-fault handler, and a
// trampoline hook chain that kernel modules (MicroScope) use to intercept
// faults on page-table entries under attack — the execution path of the
// paper's Figure 9.
//
// The kernel is the paper's untrusted supervisor: it legitimately manages
// translations for every process, including enclave hosts, and that power
// is exactly what MicroScope abuses.
package kernel

import (
	"fmt"
	"sort"

	"microscope/sim/cpu"
	"microscope/sim/mem"
)

// Config sets the kernel's latency model. The values matter for attack
// shape: the fault-handler path is much longer than a replay window, so a
// free-running monitor takes most samples during handler time (§6.1).
type Config struct {
	// MinorFaultLatency is the handler cost for present-bit faults.
	MinorFaultLatency uint64
	// DemandPageLatency is the handler cost when a fresh frame is
	// allocated and mapped.
	DemandPageLatency uint64
}

// DefaultConfig returns the baseline latency model.
func DefaultConfig() Config {
	return Config{
		MinorFaultLatency: 2_500,
		DemandPageLatency: 6_000,
	}
}

// VMA is one virtual memory area of a process.
type VMA struct {
	Start mem.Addr // inclusive, page aligned
	End   mem.Addr // exclusive, page aligned
	Flags uint64   // mem.Flag* bits applied to leaf PTEs
	Name  string
}

// Contains reports whether va falls inside the area.
func (v VMA) Contains(va mem.Addr) bool { return va >= v.Start && va < v.End }

// Process is one OS process: an address space plus its VMAs.
type Process struct {
	PID  int
	Name string
	as   *mem.AddressSpace
	vmas []VMA

	// EnclaveID is non-zero when the process hosts an enclave
	// (sim/enclave sets it).
	EnclaveID int
}

// AddressSpace returns the process's address space.
func (p *Process) AddressSpace() *mem.AddressSpace { return p.as }

// VMAs returns the process's memory areas, sorted by start address.
func (p *Process) VMAs() []VMA { return append([]VMA(nil), p.vmas...) }

// FindVMA returns the VMA containing va.
func (p *Process) FindVMA(va mem.Addr) (VMA, bool) {
	for _, v := range p.vmas {
		if v.Contains(va) {
			return v, true
		}
	}
	return VMA{}, false
}

// FaultHook intercepts page faults before default handling — the
// trampoline step 4 of Figure 9. A hook returns handled=true to supply
// the outcome itself (the kernel still adds no cost of its own: the hook's
// outcome is final).
type FaultHook interface {
	HandleFault(proc *Process, f cpu.PageFault) (out cpu.FaultOutcome, handled bool)
}

// FaultRecord logs one delivered fault (diagnostics and the controlled
// side-channel tests).
type FaultRecord struct {
	PID   int
	VA    mem.Addr
	VPN   uint64
	Write bool
	Cycle uint64
	Minor bool
}

// Kernel is the simulated OS.
type Kernel struct {
	cfg   Config //simlint:snapexempt construction parameter: snapshots restore into a kernel built from the same config
	phys  *mem.PhysMem
	core  *cpu.Core
	procs map[int]*Process
	// running maps SMT context id -> process.
	running  map[int]*Process
	hooks    []FaultHook //simlint:snapexempt host wiring: fault hooks are host closures, re-registered after restore (see snapshot.go doc)
	nextPID  int
	nextPCID uint16

	faultLog []FaultRecord

	// Swap store (see swap.go).
	swap      map[swapKey][]byte
	evictions uint64
	swapIns   uint64

	// Replay countermeasures (see leash.go). Host-side wiring like
	// hooks: not serialized by snapshots.
	leash *leash
	simf  map[int]uint64 // PID -> multi-flush count
}

// New boots a kernel over the given physical memory and core.
func New(cfg Config, phys *mem.PhysMem, core *cpu.Core) *Kernel {
	k := &Kernel{
		cfg:      cfg,
		phys:     phys,
		core:     core,
		procs:    make(map[int]*Process),
		running:  make(map[int]*Process),
		nextPID:  1,
		nextPCID: 1,
	}
	core.SetFaultHandler(k)
	return k
}

// Core returns the core the kernel drives.
func (k *Kernel) Core() *cpu.Core { return k.core }

// Phys returns physical memory.
func (k *Kernel) Phys() *mem.PhysMem { return k.phys }

// NewProcess creates a process with a fresh address space.
func (k *Kernel) NewProcess(name string) (*Process, error) {
	as, err := mem.NewAddressSpace(k.phys, k.nextPCID)
	if err != nil {
		return nil, fmt.Errorf("kernel: creating %s: %w", name, err)
	}
	p := &Process{PID: k.nextPID, Name: name, as: as}
	k.procs[p.PID] = p
	k.nextPID++
	k.nextPCID++
	return p, nil
}

// Process returns the process with the given PID.
func (k *Kernel) Process(pid int) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// AddVMA registers a virtual memory area for demand paging. Start/end are
// page aligned (start rounded down, end rounded up).
func (k *Kernel) AddVMA(p *Process, start, end mem.Addr, flags uint64, name string) VMA {
	v := VMA{
		Start: mem.PageBase(start),
		End:   mem.PageBase(end + mem.PageSize - 1),
		Flags: flags,
		Name:  name,
	}
	p.vmas = append(p.vmas, v)
	sort.Slice(p.vmas, func(i, j int) bool { return p.vmas[i].Start < p.vmas[j].Start })
	return v
}

// MapEager allocates and maps every page of the VMA immediately
// (pre-faulting), so first-touch faults do not perturb an experiment.
func (k *Kernel) MapEager(p *Process, v VMA) error {
	for va := v.Start; va < v.End; va += mem.PageSize {
		if _, err := p.as.Translate(va); err == nil {
			continue
		}
		if _, err := p.as.MapNew(va, v.Flags); err != nil {
			return fmt.Errorf("kernel: eager map %s at %#x: %w", v.Name, va, err)
		}
	}
	return nil
}

// Schedule binds a process to an SMT context (context switch: CR3 write;
// TLB entries are PCID-tagged so no flush is required).
func (k *Kernel) Schedule(ctxID int, p *Process) {
	k.running[ctxID] = p
	k.core.Context(ctxID).SetAddressSpace(p.as)
}

// Running returns the process bound to the context.
func (k *Kernel) Running(ctxID int) (*Process, bool) {
	p, ok := k.running[ctxID]
	return p, ok
}

// RegisterHook appends a fault hook (kernel-module registration). Hooks
// run in registration order; the first to handle a fault wins. The
// returned function unregisters the hook.
func (k *Kernel) RegisterHook(h FaultHook) (unregister func()) {
	k.hooks = append(k.hooks, h)
	idx := len(k.hooks) - 1
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		k.hooks[idx] = nil
	}
}

// FaultLog returns the faults delivered so far.
func (k *Kernel) FaultLog() []FaultRecord { return append([]FaultRecord(nil), k.faultLog...) }

// ClearFaultLog resets the log.
func (k *Kernel) ClearFaultLog() { k.faultLog = k.faultLog[:0] }

// HandlePageFault implements cpu.FaultHandler: steps 2-7 of Figure 9,
// bracketed by the replay countermeasures of leash.go. SIMF's
// multi-flush runs at fault entry — the protected victim's exception
// path executes before any untrusted handler or module probe — and
// LEASH's deschedule penalty is added to the outcome on the way out.
func (k *Kernel) HandlePageFault(f cpu.PageFault) cpu.FaultOutcome {
	proc, ok := k.running[f.Context]
	if !ok {
		return cpu.FaultOutcome{Terminate: true}
	}
	minor := false
	if e, _, err := proc.as.LeafEntry(f.VA); err == nil && e != 0 && !e.Present() {
		minor = true
	}
	k.faultLog = append(k.faultLog, FaultRecord{
		PID:   proc.PID,
		VA:    f.VA,
		VPN:   mem.PageNum(f.VA),
		Write: f.Write,
		Cycle: k.core.Cycle(),
		Minor: minor,
	})
	k.simfObserve(proc.PID, f.Context)
	penalty := k.leashObserve(proc.PID, mem.PageNum(f.VA))

	out := k.dispatchFault(proc, f, minor)
	if !out.Terminate {
		out.HandlerLatency += penalty
	}
	return out
}

// dispatchFault runs the trampoline and default handling for one fault.
func (k *Kernel) dispatchFault(proc *Process, f cpu.PageFault, minor bool) cpu.FaultOutcome {
	// Step 4: trampoline into registered modules (MicroScope).
	for _, h := range k.hooks {
		if h == nil {
			continue // unregistered slot
		}
		if out, handled := h.HandleFault(proc, f); handled {
			return out
		}
	}

	// Default handling.
	if minor {
		// Present bit cleared but mapping intact: minor fault. Restore.
		if _, err := proc.as.SetPresent(f.VA, true); err != nil {
			return cpu.FaultOutcome{Terminate: true}
		}
		return cpu.FaultOutcome{HandlerLatency: k.cfg.MinorFaultLatency}
	}
	// Swapped-out page? Restore it (major fault).
	if restored, err := k.swapIn(proc, f.VA); err != nil {
		return cpu.FaultOutcome{Terminate: true}
	} else if restored {
		return cpu.FaultOutcome{HandlerLatency: k.cfg.DemandPageLatency}
	}
	v, ok := proc.FindVMA(f.VA)
	if !ok {
		return cpu.FaultOutcome{Terminate: true} // segfault
	}
	if f.Write && v.Flags&mem.FlagWritable == 0 {
		return cpu.FaultOutcome{Terminate: true} // write to read-only VMA
	}
	if e, ea, err := proc.as.LeafEntry(f.VA); err == nil && e.Present() {
		// Present mapping but the access write-faulted: upgrade the PTE
		// to the VMA's permissions (e.g. after attack cleanup).
		k.phys.Write64(ea, uint64(e.WithFlags(v.Flags)))
		k.Invlpg(proc, f.VA)
		return cpu.FaultOutcome{HandlerLatency: k.cfg.MinorFaultLatency}
	}
	if _, err := proc.as.MapNew(mem.PageBase(f.VA), v.Flags); err != nil {
		return cpu.FaultOutcome{Terminate: true}
	}
	return cpu.FaultOutcome{HandlerLatency: k.cfg.DemandPageLatency}
}

// Invlpg flushes one page's translation from the TLB complex, as the OS
// must after updating a page-table entry (§2.1 TLB coherence).
func (k *Kernel) Invlpg(p *Process, va mem.Addr) {
	k.core.TLBs().Invalidate(mem.PageNum(va), p.as.PCID())
}

// WriteVirt copies data into a process's memory, demand-mapping pages
// from its VMAs as needed (used by loaders and tests; refuses enclave
// pages — see sim/enclave for the access-control wrapper).
func (k *Kernel) WriteVirt(p *Process, va mem.Addr, b []byte) error {
	for off := 0; off < len(b); {
		page := mem.PageBase(va + uint64(off))
		if _, err := p.as.Translate(page); err != nil {
			v, ok := p.FindVMA(page)
			if !ok {
				return fmt.Errorf("kernel: write outside VMAs at %#x", page)
			}
			if _, err := p.as.MapNew(page, v.Flags); err != nil {
				return err
			}
		}
		n := int(page + mem.PageSize - (va + uint64(off)))
		if n > len(b)-off {
			n = len(b) - off
		}
		if err := p.as.WriteVirt(va+uint64(off), b[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}
