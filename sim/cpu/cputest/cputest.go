// Package cputest provides the deterministic random-program generators
// and pre-initialized data address spaces shared by the sim/cpu
// differential suites. It lives outside the test files so both the
// in-package tests (package cpu) and the external ones (package
// cpu_test, which may import packages that themselves depend on sim/cpu,
// such as sim/trace) can drive the same program distribution.
//
// All randomness flows through the caller-supplied seeded *rand.Rand, so
// a (generator, seed) pair names one exact program forever — the
// property the differential and golden suites rely on.
package cputest

import (
	"math"
	"math/rand"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Data-space geometry used by every generated program.
const (
	// DataVA is the virtual base address of the pre-mapped data region.
	DataVA mem.Addr = 0x0100_0000
	// DataPages is the number of mapped data pages.
	DataPages = 4
	// Base is the register that always holds DataVA.
	Base = isa.R12
)

// intRegs usable as scratch (r13 is a loop counter, r14/r15 reserved by
// transactions).
var intRegs = []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8}

var floatRegs = []isa.Reg{isa.F1, isa.F2, isa.F3, isa.F4}

// loopCounters maps nesting depth to its reserved counter register, so
// nested counted loops never clobber each other.
var loopCounters = [3]isa.Reg{isa.R9, isa.R10, isa.R13}

// gen emits random structured programs: straight-line ALU/memory blocks,
// forward branches, counted loops, occasional transactions.
type gen struct {
	rng *rand.Rand
	b   *isa.Builder
	n   int // emitted instruction count (approximate budget control)
}

func (g *gen) reg() isa.Reg  { return intRegs[g.rng.Intn(len(intRegs))] }
func (g *gen) freg() isa.Reg { return floatRegs[g.rng.Intn(len(floatRegs))] }

func (g *gen) offset() int64 {
	return int64(g.rng.Intn(DataPages*mem.PageSize/8)) * 8
}

func (g *gen) emitOp() {
	g.n++
	switch g.rng.Intn(16) {
	case 0:
		g.b.MovImm(g.reg(), int64(g.rng.Uint64()%1_000_000))
	case 1:
		g.b.Add(g.reg(), g.reg(), g.reg())
	case 2:
		g.b.Sub(g.reg(), g.reg(), g.reg())
	case 3:
		g.b.Mul(g.reg(), g.reg(), g.reg())
	case 4:
		g.b.Div(g.reg(), g.reg(), g.reg())
	case 5:
		g.b.Xor(g.reg(), g.reg(), g.reg())
	case 6:
		g.b.AndImm(g.reg(), g.reg(), int64(g.rng.Uint64()&0xffff))
	case 7:
		g.b.ShrImm(g.reg(), g.reg(), int64(g.rng.Intn(63)))
	case 8:
		g.b.ShlImm(g.reg(), g.reg(), int64(g.rng.Intn(16)))
	case 9:
		g.b.Load(g.reg(), Base, g.offset())
	case 10:
		g.b.Store(g.reg(), Base, g.offset())
	case 11:
		g.b.Load32(g.reg(), Base, g.offset())
	case 12:
		g.b.Store32(g.reg(), Base, g.offset())
	case 13:
		g.b.FAdd(g.freg(), g.freg(), g.freg())
	case 14:
		g.b.FMul(g.freg(), g.freg(), g.freg())
	case 15:
		g.b.FDiv(g.freg(), g.freg(), g.freg())
	}
}

func (g *gen) emitBlock(depth int, label *int) {
	nOps := 2 + g.rng.Intn(6)
	for i := 0; i < nOps; i++ {
		g.emitOp()
	}
	if depth <= 0 || g.n > 150 {
		return
	}
	switch g.rng.Intn(4) {
	case 0: // forward branch over a sub-block
		*label++
		skip := labelName("skip", *label)
		g.b.Beq(g.reg(), g.reg(), skip)
		g.emitBlock(depth-1, label)
		g.b.Label(skip)
	case 1: // counted loop (one reserved counter register per depth)
		*label++
		loop := labelName("loop", *label)
		iters := int64(1 + g.rng.Intn(5))
		counter := loopCounters[depth]
		g.b.MovImm(counter, iters)
		g.b.Label(loop)
		g.emitBlock(depth-1, label)
		g.b.AddImm(counter, counter, -1)
		g.b.Bne(counter, isa.R0, loop)
	case 2: // transaction that always commits
		*label++
		abort := labelName("abort", *label)
		after := labelName("after", *label)
		g.b.TxBegin(abort)
		g.emitBlock(depth-1, label)
		g.b.TxEnd()
		g.b.Jmp(after)
		g.b.Label(abort)
		g.b.MovImm(isa.R11, 77)
		g.b.Label(after)
	case 3: // transaction that explicitly aborts
		*label++
		abort := labelName("abt", *label)
		g.b.TxBegin(abort)
		g.emitBlock(depth-1, label)
		g.b.TxAbort()
		g.b.Label(abort)
	}
}

func labelName(prefix string, n int) string {
	return prefix + "_" + string(rune('a'+n%26)) + string(rune('a'+(n/26)%26)) +
		string(rune('a'+(n/676)%26))
}

// GenProgram emits one random structured program: nested blocks of ALU
// and memory traffic, forward branches, counted loops and transactions,
// always terminated by a halt. rng fully determines the program.
func GenProgram(rng *rand.Rand) *isa.Program {
	g := &gen{rng: rng, b: isa.NewBuilder()}
	g.b.MovImm(Base, int64(DataVA))
	// Seed float registers with interesting values.
	g.b.FLoadImm(isa.F1, int64(math.Float64bits(3.5)))
	g.b.FLoadImm(isa.F2, int64(math.Float64bits(-0.25)))
	g.b.FLoadImm(isa.F3, int64(math.Float64bits(1e300)))
	g.b.FLoadImm(isa.F4, int64(math.Float64bits(7.0)))
	label := 0
	blocks := 2 + rng.Intn(4)
	for i := 0; i < blocks; i++ {
		g.emitBlock(2, &label)
	}
	g.b.Halt()
	return g.b.MustBuild()
}

// GenAliasProgram emits one flat program whose loads and stores are
// confined to 4 memory slots, so accesses alias constantly: dense
// store-to-load forwarding and memory-order-violation recovery traffic.
// Slow producers (div) feeding store addresses increase the chance loads
// speculate past unresolved stores.
func GenAliasProgram(rng *rand.Rand) *isa.Program {
	g := &gen{rng: rng, b: isa.NewBuilder()}
	g.b.MovImm(Base, int64(DataVA))
	g.b.FLoadImm(isa.F1, int64(math.Float64bits(2.0)))
	g.b.FLoadImm(isa.F2, int64(math.Float64bits(5.0)))
	slot := func() int64 { return int64(rng.Intn(4)) * 8 }
	for i := 0; i < 120; i++ {
		switch rng.Intn(6) {
		case 0:
			g.b.MovImm(g.reg(), int64(rng.Uint64()%100_000))
		case 1:
			g.b.Add(g.reg(), g.reg(), g.reg())
		case 2:
			g.b.Mul(g.reg(), g.reg(), g.reg())
		case 3:
			g.b.Load(g.reg(), Base, slot())
		case 4:
			g.b.Store(g.reg(), Base, slot())
		case 5:
			g.b.Div(g.reg(), g.reg(), g.reg())
		}
	}
	g.b.Halt()
	return g.b.MustBuild()
}

// NewDataSpace builds a fresh address space over its own physical memory
// with DataPages pages mapped at DataVA, filled with bytes drawn from a
// rand.Rand seeded with seedMem — so two spaces built with the same seed
// hold identical initial contents.
func NewDataSpace(seedMem int64) (*mem.AddressSpace, error) {
	phys := mem.NewPhysMem(16 << 20)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seedMem))
	for p := 0; p < DataPages; p++ {
		va := DataVA + mem.Addr(p)*mem.PageSize
		if _, err := as.MapNew(va, mem.FlagUser|mem.FlagWritable); err != nil {
			return nil, err
		}
		init := make([]byte, mem.PageSize)
		rng.Read(init)
		if err := as.WriteVirt(va, init); err != nil {
			return nil, err
		}
	}
	return as, nil
}
