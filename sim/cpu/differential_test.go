package cpu

import (
	"math"
	"math/rand"
	"testing"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// The differential fuzzer: random valid terminating programs must leave
// identical architectural state (registers + memory) on the out-of-order
// core and on the sequential Reference interpreter. This exercises
// renaming, forwarding, branch recovery, memory disambiguation,
// store-to-load forwarding and transaction rollback against a trivially
// correct model.

const (
	diffDataVA mem.Addr = 0x0100_0000
	diffPages           = 4
)

// progGen emits random structured programs: straight-line ALU/memory
// blocks, forward branches, counted loops, occasional transactions.
type progGen struct {
	rng *rand.Rand
	b   *isa.Builder
	n   int // emitted instruction count (approximate budget control)
}

// intRegs usable as scratch (r13 is the loop counter, r14/r15 reserved by
// transactions).
var diffIntRegs = []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8}

var diffFloatRegs = []isa.Reg{isa.F1, isa.F2, isa.F3, isa.F4}

func (g *progGen) reg() isa.Reg  { return diffIntRegs[g.rng.Intn(len(diffIntRegs))] }
func (g *progGen) freg() isa.Reg { return diffFloatRegs[g.rng.Intn(len(diffFloatRegs))] }

// addrReg returns r12, which always holds the data base address.
const diffBase = isa.R12

// loopCounters maps nesting depth to its reserved counter register, so
// nested counted loops never clobber each other.
var loopCounters = [3]isa.Reg{isa.R9, isa.R10, isa.R13}

func (g *progGen) offset() int64 {
	return int64(g.rng.Intn(diffPages*mem.PageSize/8)) * 8
}

func (g *progGen) emitOp() {
	g.n++
	switch g.rng.Intn(16) {
	case 0:
		g.b.MovImm(g.reg(), int64(g.rng.Uint64()%1_000_000))
	case 1:
		g.b.Add(g.reg(), g.reg(), g.reg())
	case 2:
		g.b.Sub(g.reg(), g.reg(), g.reg())
	case 3:
		g.b.Mul(g.reg(), g.reg(), g.reg())
	case 4:
		g.b.Div(g.reg(), g.reg(), g.reg())
	case 5:
		g.b.Xor(g.reg(), g.reg(), g.reg())
	case 6:
		g.b.AndImm(g.reg(), g.reg(), int64(g.rng.Uint64()&0xffff))
	case 7:
		g.b.ShrImm(g.reg(), g.reg(), int64(g.rng.Intn(63)))
	case 8:
		g.b.ShlImm(g.reg(), g.reg(), int64(g.rng.Intn(16)))
	case 9:
		g.b.Load(g.reg(), diffBase, g.offset())
	case 10:
		g.b.Store(g.reg(), diffBase, g.offset())
	case 11:
		g.b.Load32(g.reg(), diffBase, g.offset())
	case 12:
		g.b.Store32(g.reg(), diffBase, g.offset())
	case 13:
		g.b.FAdd(g.freg(), g.freg(), g.freg())
	case 14:
		g.b.FMul(g.freg(), g.freg(), g.freg())
	case 15:
		g.b.FDiv(g.freg(), g.freg(), g.freg())
	}
}

func (g *progGen) emitBlock(depth int, label *int) {
	nOps := 2 + g.rng.Intn(6)
	for i := 0; i < nOps; i++ {
		g.emitOp()
	}
	if depth <= 0 || g.n > 150 {
		return
	}
	switch g.rng.Intn(4) {
	case 0: // forward branch over a sub-block
		*label++
		skip := labelName("skip", *label)
		g.b.Beq(g.reg(), g.reg(), skip)
		g.emitBlock(depth-1, label)
		g.b.Label(skip)
	case 1: // counted loop (one reserved counter register per depth)
		*label++
		loop := labelName("loop", *label)
		iters := int64(1 + g.rng.Intn(5))
		counter := loopCounters[depth]
		g.b.MovImm(counter, iters)
		g.b.Label(loop)
		g.emitBlock(depth-1, label)
		g.b.AddImm(counter, counter, -1)
		g.b.Bne(counter, isa.R0, loop)
	case 2: // transaction that always commits
		*label++
		abort := labelName("abort", *label)
		after := labelName("after", *label)
		g.b.TxBegin(abort)
		g.emitBlock(depth-1, label)
		g.b.TxEnd()
		g.b.Jmp(after)
		g.b.Label(abort)
		g.b.MovImm(isa.R11, 77)
		g.b.Label(after)
	case 3: // transaction that explicitly aborts
		*label++
		abort := labelName("abt", *label)
		g.b.TxBegin(abort)
		g.emitBlock(depth-1, label)
		g.b.TxAbort()
		g.b.Label(abort)
	}
}

func labelName(prefix string, n int) string {
	return prefix + "_" + string(rune('a'+n%26)) + string(rune('a'+(n/26)%26)) +
		string(rune('a'+(n/676)%26))
}

func genProgram(rng *rand.Rand) *isa.Program {
	g := &progGen{rng: rng, b: isa.NewBuilder()}
	g.b.MovImm(diffBase, int64(diffDataVA))
	// Seed float registers with interesting values.
	g.b.FLoadImm(isa.F1, int64(math.Float64bits(3.5)))
	g.b.FLoadImm(isa.F2, int64(math.Float64bits(-0.25)))
	g.b.FLoadImm(isa.F3, int64(math.Float64bits(1e300)))
	g.b.FLoadImm(isa.F4, int64(math.Float64bits(7.0)))
	label := 0
	blocks := 2 + rng.Intn(4)
	for i := 0; i < blocks; i++ {
		g.emitBlock(2, &label)
	}
	g.b.Halt()
	return g.b.MustBuild()
}

func newDiffSpace(t *testing.T, seedMem int64) *mem.AddressSpace {
	t.Helper()
	phys := mem.NewPhysMem(16 << 20)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seedMem))
	for p := 0; p < diffPages; p++ {
		va := diffDataVA + mem.Addr(p)*mem.PageSize
		if _, err := as.MapNew(va, mem.FlagUser|mem.FlagWritable); err != nil {
			t.Fatal(err)
		}
		init := make([]byte, mem.PageSize)
		rng.Read(init)
		if err := as.WriteVirt(va, init); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

func TestDifferentialOoOvsReference(t *testing.T) {
	const programs = 120
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgram(rng)

		// Reference run.
		refAS := newDiffSpace(t, seed)
		ref := NewReference(refAS, 42)
		if err := ref.Run(prog, 0, 2_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		// Out-of-order run on identical initial state.
		oooAS := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), oooAS.Phys())
		core.Context(0).SetAddressSpace(oooAS)
		core.Context(0).SetProgram(prog, 0)
		core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			t.Fatalf("seed %d: unexpected fault at %#x", seed, f.VA)
			return FaultOutcome{Terminate: true}
		}))
		core.Run(20_000_000)
		if !core.Context(0).Halted() {
			t.Fatalf("seed %d: core did not halt (pc=%d, %d instrs)",
				seed, core.Context(0).PC(), prog.Len())
		}

		// Compare architectural registers (loop counters included; r0
		// and transaction scratch included; rdtsc/rdrand never emitted).
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			got, want := core.Context(0).Reg(r), ref.Reg(r)
			if got != want {
				t.Fatalf("seed %d: %s = %#x (ooo) vs %#x (ref)\n%s",
					seed, r, got, want, isa.Disassemble(prog))
			}
		}
		// Compare the data pages.
		for p := 0; p < diffPages; p++ {
			va := diffDataVA + mem.Addr(p)*mem.PageSize
			a, err := oooAS.ReadVirt(va, mem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			b, err := refAS.ReadVirt(va, mem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: memory diverges at %#x+%d: %#x vs %#x\n%s",
						seed, va, i, a[i], b[i], isa.Disassemble(prog))
				}
			}
		}
	}
}

// TestReferenceMatchesKnownResults sanity-checks the interpreter itself.
func TestReferenceMatchesKnownResults(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 6).
		MovImm(isa.R2, 7).
		Mul(isa.R3, isa.R1, isa.R2).
		MovImm(isa.R4, int64(diffDataVA)).
		Store(isa.R3, isa.R4, 0).
		Load(isa.R5, isa.R4, 0).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if ref.Reg(isa.R3) != 42 || ref.Reg(isa.R5) != 42 {
		t.Errorf("r3=%d r5=%d", ref.Reg(isa.R3), ref.Reg(isa.R5))
	}
}

func TestReferenceFaultsOnUnmapped(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 0x7000_0000).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err == nil {
		t.Error("load from unmapped memory succeeded")
	}
}

func TestReferenceTxRollback(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 1).
		TxBegin("abort").
		MovImm(isa.R1, 2).
		TxAbort().
		Halt().
		Label("abort").
		MovImm(isa.R2, 9).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if ref.Reg(isa.R1) != 1 || ref.Reg(isa.R2) != 9 {
		t.Errorf("r1=%d r2=%d", ref.Reg(isa.R1), ref.Reg(isa.R2))
	}
	if ref.Reg(AbortReg) != 1 {
		t.Errorf("abort reg = %d", ref.Reg(AbortReg))
	}
}

func TestReferenceStepBudget(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		Label("spin").
		Jmp("spin").MustBuild()
	if err := ref.Run(prog, 0, 100); err == nil {
		t.Error("infinite loop terminated")
	}
}

// TestDifferentialHeavyAliasing narrows memory offsets to a handful of
// slots so stores and loads alias constantly, stressing store-to-load
// forwarding and memory-order-violation recovery against the reference.
func TestDifferentialHeavyAliasing(t *testing.T) {
	const programs = 80
	for seed := int64(1000); seed < 1000+programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &progGen{rng: rng, b: isa.NewBuilder()}
		g.b.MovImm(diffBase, int64(diffDataVA))
		g.b.FLoadImm(isa.F1, int64(math.Float64bits(2.0)))
		g.b.FLoadImm(isa.F2, int64(math.Float64bits(5.0)))
		// Dense alias traffic: random ALU ops interleaved with loads and
		// stores confined to 4 memory slots.
		slot := func() int64 { return int64(rng.Intn(4)) * 8 }
		for i := 0; i < 120; i++ {
			switch rng.Intn(6) {
			case 0:
				g.b.MovImm(g.reg(), int64(rng.Uint64()%100_000))
			case 1:
				g.b.Add(g.reg(), g.reg(), g.reg())
			case 2:
				g.b.Mul(g.reg(), g.reg(), g.reg())
			case 3:
				g.b.Load(g.reg(), diffBase, slot())
			case 4:
				g.b.Store(g.reg(), diffBase, slot())
			case 5:
				// A slow producer feeding a store address/data increases
				// the chance loads speculate past unresolved stores.
				g.b.Div(g.reg(), g.reg(), g.reg())
			}
		}
		g.b.Halt()
		prog := g.b.MustBuild()

		refAS := newDiffSpace(t, seed)
		ref := NewReference(refAS, 42)
		if err := ref.Run(prog, 0, 1_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		oooAS := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), oooAS.Phys())
		core.Context(0).SetAddressSpace(oooAS)
		core.Context(0).SetProgram(prog, 0)
		core.Run(20_000_000)
		if !core.Context(0).Halted() {
			t.Fatalf("seed %d: core did not halt", seed)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if got, want := core.Context(0).Reg(r), ref.Reg(r); got != want {
				t.Fatalf("seed %d: %s = %#x vs %#x\n%s",
					seed, r, got, want, isa.Disassemble(prog))
			}
		}
		a, err := oooAS.ReadVirt(diffDataVA, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := refAS.ReadVirt(diffDataVA, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: memory slot byte %d differs\n%s",
					seed, i, isa.Disassemble(prog))
			}
		}
	}
}
