package cpu

import (
	"math/rand"
	"testing"

	"microscope/sim/cpu/cputest"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// The differential fuzzer: random valid terminating programs must leave
// identical architectural state (registers + memory) on the out-of-order
// core and on the sequential Reference interpreter. This exercises
// renaming, forwarding, branch recovery, memory disambiguation,
// store-to-load forwarding and transaction rollback against a trivially
// correct model. The program generators live in sim/cpu/cputest so the
// external trace-differential suite (tracediff_test.go) can drive the
// exact same distribution.

const (
	diffDataVA = cputest.DataVA
	diffPages  = cputest.DataPages
)

func newDiffSpace(t *testing.T, seedMem int64) *mem.AddressSpace {
	t.Helper()
	as, err := cputest.NewDataSpace(seedMem)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestDifferentialOoOvsReference(t *testing.T) {
	const programs = 120
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := cputest.GenProgram(rng)

		// Reference run.
		refAS := newDiffSpace(t, seed)
		ref := NewReference(refAS, 42)
		if err := ref.Run(prog, 0, 2_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		// Out-of-order run on identical initial state.
		oooAS := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), oooAS.Phys())
		core.Context(0).SetAddressSpace(oooAS)
		core.Context(0).SetProgram(prog, 0)
		core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			t.Fatalf("seed %d: unexpected fault at %#x", seed, f.VA)
			return FaultOutcome{Terminate: true}
		}))
		core.Run(20_000_000)
		if !core.Context(0).Halted() {
			t.Fatalf("seed %d: core did not halt (pc=%d, %d instrs)",
				seed, core.Context(0).PC(), prog.Len())
		}

		// Compare architectural registers (loop counters included; r0
		// and transaction scratch included; rdtsc/rdrand never emitted).
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			got, want := core.Context(0).Reg(r), ref.Reg(r)
			if got != want {
				t.Fatalf("seed %d: %s = %#x (ooo) vs %#x (ref)\n%s",
					seed, r, got, want, isa.Disassemble(prog))
			}
		}
		// Compare the data pages.
		for p := 0; p < diffPages; p++ {
			va := diffDataVA + mem.Addr(p)*mem.PageSize
			a, err := oooAS.ReadVirt(va, mem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			b, err := refAS.ReadVirt(va, mem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: memory diverges at %#x+%d: %#x vs %#x\n%s",
						seed, va, i, a[i], b[i], isa.Disassemble(prog))
				}
			}
		}
	}
}

// TestReferenceMatchesKnownResults sanity-checks the interpreter itself.
func TestReferenceMatchesKnownResults(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 6).
		MovImm(isa.R2, 7).
		Mul(isa.R3, isa.R1, isa.R2).
		MovImm(isa.R4, int64(diffDataVA)).
		Store(isa.R3, isa.R4, 0).
		Load(isa.R5, isa.R4, 0).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if ref.Reg(isa.R3) != 42 || ref.Reg(isa.R5) != 42 {
		t.Errorf("r3=%d r5=%d", ref.Reg(isa.R3), ref.Reg(isa.R5))
	}
}

func TestReferenceFaultsOnUnmapped(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 0x7000_0000).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err == nil {
		t.Error("load from unmapped memory succeeded")
	}
}

func TestReferenceTxRollback(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		MovImm(isa.R1, 1).
		TxBegin("abort").
		MovImm(isa.R1, 2).
		TxAbort().
		Halt().
		Label("abort").
		MovImm(isa.R2, 9).
		Halt().MustBuild()
	if err := ref.Run(prog, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if ref.Reg(isa.R1) != 1 || ref.Reg(isa.R2) != 9 {
		t.Errorf("r1=%d r2=%d", ref.Reg(isa.R1), ref.Reg(isa.R2))
	}
	if ref.Reg(AbortReg) != 1 {
		t.Errorf("abort reg = %d", ref.Reg(AbortReg))
	}
}

func TestReferenceStepBudget(t *testing.T) {
	as := newDiffSpace(t, 1)
	ref := NewReference(as, 7)
	prog := isa.NewBuilder().
		Label("spin").
		Jmp("spin").MustBuild()
	if err := ref.Run(prog, 0, 100); err == nil {
		t.Error("infinite loop terminated")
	}
}

// TestDifferentialHeavyAliasing narrows memory offsets to a handful of
// slots so stores and loads alias constantly, stressing store-to-load
// forwarding and memory-order-violation recovery against the reference.
func TestDifferentialHeavyAliasing(t *testing.T) {
	const programs = 80
	for seed := int64(1000); seed < 1000+programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := cputest.GenAliasProgram(rng)

		refAS := newDiffSpace(t, seed)
		ref := NewReference(refAS, 42)
		if err := ref.Run(prog, 0, 1_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		oooAS := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), oooAS.Phys())
		core.Context(0).SetAddressSpace(oooAS)
		core.Context(0).SetProgram(prog, 0)
		core.Run(20_000_000)
		if !core.Context(0).Halted() {
			t.Fatalf("seed %d: core did not halt", seed)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if got, want := core.Context(0).Reg(r), ref.Reg(r); got != want {
				t.Fatalf("seed %d: %s = %#x vs %#x\n%s",
					seed, r, got, want, isa.Disassemble(prog))
			}
		}
		a, err := oooAS.ReadVirt(diffDataVA, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := refAS.ReadVirt(diffDataVA, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: memory slot byte %d differs\n%s",
					seed, i, isa.Disassemble(prog))
			}
		}
	}
}
