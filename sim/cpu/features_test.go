package cpu

import (
	"testing"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Tests for the §7/§8 core features: TSX write-set eviction aborts,
// precise external preemption, fence-after-flush serialization, and
// invisible speculation.

func TestEvictLineAbortsTransaction(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	pa, err := r.as.Translate(va)
	if err != nil {
		t.Fatal(err)
	}

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, 7).
		TxBegin("abort").
		Store(isa.R2, isa.R1, 0). // joins the write set
		Label("spin").
		AddImm(isa.R3, isa.R3, 1).
		Jmp("spin").
		Label("abort").
		MovImm(isa.R4, 99).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	// Run until the store has committed inside the transaction.
	r.core.RunUntil(func() bool {
		v, _ := r.as.Read64Virt(va)
		return ctx.InTx() && v == 7
	}, 1_000_000)
	if !ctx.InTx() {
		t.Fatal("transaction never started")
	}

	// Evicting an unrelated line must NOT abort.
	if r.core.EvictLine(pa + 512) {
		t.Fatal("eviction of non-write-set line aborted the transaction")
	}
	if !ctx.InTx() {
		t.Fatal("transaction gone after unrelated eviction")
	}
	// Evicting the written line must abort.
	if !r.core.EvictLine(pa) {
		t.Fatal("write-set eviction did not abort")
	}
	r.core.Run(100_000)
	if !ctx.Halted() || ctx.Reg(isa.R4) != 99 {
		t.Error("abort handler did not run after write-set eviction")
	}
}

func TestEvictLineOutsideTxIsJustAFlush(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	pa, _ := r.as.Translate(va)
	r.core.Hierarchy().Access(pa)
	if r.core.EvictLine(pa) {
		t.Error("EvictLine aborted with no transaction")
	}
	if r.core.Hierarchy().LevelOf(pa) != cache.LevelMem {
		t.Error("EvictLine did not flush the line")
	}
}

func TestPreemptPreservesArchitecture(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		MovImm(isa.R1, 1000).
		MovImm(isa.R2, 0).
		Label("loop").
		AddImm(isa.R2, isa.R2, 5).
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	// Preempt aggressively throughout the run.
	preempts := 0
	for i := 0; i < 5_000_000 && !ctx.Halted(); i++ {
		r.core.Step()
		if i%97 == 0 && !ctx.Halted() {
			r.core.Preempt(0, 10)
			preempts++
		}
	}
	if !ctx.Halted() {
		t.Fatal("preempted program never finished")
	}
	if got := ctx.Reg(isa.R2); got != 5000 {
		t.Errorf("r2 = %d, want 5000 despite %d preemptions", got, preempts)
	}
	if preempts == 0 {
		t.Fatal("no preemptions delivered")
	}
}

func TestPreemptEmptyROBIsSafe(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// No program loaded: preempting must not panic.
	r.core.Preempt(0, 5)
	r.core.Step()
}

func TestFenceAfterFlushShrinksWindow(t *testing.T) {
	for _, fenced := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FenceAfterFlush = fenced
		r := newRig(t, cfg)
		handleVA := mem.Addr(0x40_0000)
		secretVA := mem.Addr(0x50_0000)
		r.mapPage(t, handleVA)
		r.mapPage(t, secretVA)
		if _, err := r.as.SetPresent(handleVA, false); err != nil {
			t.Fatal(err)
		}
		secretPA, _ := r.as.Translate(secretVA)

		faults := 0
		leaksAfterFirst := 0
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			faults++
			if faults > 1 && r.core.Hierarchy().LevelOf(secretPA) != cache.LevelMem {
				leaksAfterFirst++
			}
			r.core.Hierarchy().FlushAddr(secretPA)
			if faults >= 4 {
				if _, err := r.as.SetPresent(handleVA, true); err != nil {
					panic(err)
				}
			}
			return FaultOutcome{HandlerLatency: 100}
		}))
		prog := isa.NewBuilder().
			MovImm(isa.R1, int64(handleVA)).
			MovImm(isa.R2, int64(secretVA)).
			Load(isa.R3, isa.R1, 0). // handle
			Load(isa.R4, isa.R2, 0). // transmit
			Halt().MustBuild()
		r.core.Context(0).SetProgram(prog, 0)
		r.core.Run(5_000_000)
		if !r.core.Context(0).Halted() {
			t.Fatal("victim did not finish")
		}
		if fenced && leaksAfterFirst != 0 {
			t.Errorf("fenced: %d replay windows leaked", leaksAfterFirst)
		}
		if !fenced && leaksAfterFirst == 0 {
			t.Error("unfenced: replay windows never leaked")
		}
	}
}

func TestInvisibleSpeculationDefersFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InvisibleSpeculation = true
	r := newRig(t, cfg)
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	if err := r.as.Write64Virt(va, 123); err != nil {
		t.Fatal(err)
	}
	pa, _ := r.as.Translate(va)

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if ctx.Reg(isa.R2) != 123 {
		t.Errorf("load value %d under invisible speculation", ctx.Reg(isa.R2))
	}
	// The RETIRED load must have filled the cache (deferred fill).
	if r.core.Hierarchy().LevelOf(pa) == cache.LevelMem {
		t.Error("retired load left no cache footprint")
	}
}

func TestInvisibleSpeculationHidesTransients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InvisibleSpeculation = true
	r := newRig(t, cfg)
	wrongVA := mem.Addr(0x60_0000)
	r.mapPage(t, wrongVA)
	wrongPA, _ := r.as.Translate(wrongVA)

	prog := isa.NewBuilder().
		MovImm(isa.R1, 1).
		MovImm(isa.R2, int64(wrongVA)).
		Beq(isa.R1, isa.R0, "wrong"). // never taken
		MovImm(isa.R3, 7).
		Jmp("done").
		Label("wrong").
		Load(isa.R4, isa.R2, 0). // transient load
		Label("done").
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.Predictor().Prime(2, true, 5) // mispredict toward the load
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() || ctx.Reg(isa.R3) != 7 {
		t.Fatal("program wrong")
	}
	if r.core.Hierarchy().LevelOf(wrongPA) != cache.LevelMem {
		t.Error("transient load filled the cache despite invisible speculation")
	}
}

// Back-to-back faulting instructions: two armed pages accessed in
// sequence deliver two precise faults in program order.
func TestSequentialFaultsDeliveredInOrder(t *testing.T) {
	r := newRig(t, DefaultConfig())
	vaA := mem.Addr(0x40_0000)
	vaB := mem.Addr(0x50_0000)
	r.mapPage(t, vaA)
	r.mapPage(t, vaB)
	for _, va := range []mem.Addr{vaA, vaB} {
		if _, err := r.as.SetPresent(va, false); err != nil {
			t.Fatal(err)
		}
	}
	var order []mem.Addr
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		order = append(order, mem.PageBase(f.VA))
		if _, err := r.as.SetPresent(f.VA, true); err != nil {
			panic(err)
		}
		return FaultOutcome{HandlerLatency: 50}
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(vaA)).
		MovImm(isa.R2, int64(vaB)).
		Load(isa.R3, isa.R1, 0).
		Load(isa.R4, isa.R2, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	if len(order) != 2 || order[0] != vaA || order[1] != vaB {
		t.Errorf("fault order = %v", order)
	}
}

// A fence inside a replay window still serializes when the window is
// re-executed (fence state resets across squashes).
func TestFenceStateSurvivesSquash(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, handleVA)
	r.mapPage(t, secretVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	secretPA, _ := r.as.Translate(secretVA)
	faults := 0
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		faults++
		if faults >= 3 {
			if _, err := r.as.SetPresent(handleVA, true); err != nil {
				panic(err)
			}
		}
		return FaultOutcome{HandlerLatency: 100}
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0). // handle (replayed twice)
		Fence().
		Load(isa.R4, isa.R2, 0). // must never execute before release
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	// Run until just before release: the fence must have held in every
	// replayed window.
	r.core.RunUntil(func() bool { return faults >= 2 }, 1_000_000)
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl != cache.LevelMem {
		t.Errorf("fenced load executed in a replay window (footprint at %s)", lvl)
	}
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("victim did not finish")
	}
}
