package cpu

import (
	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
	"microscope/sim/tlb"
)

// The replay splice cache ("memo"): MicroScope's whole point is that the
// victim's transient window re-executes essentially unchanged thousands
// of times per replay handle. The memo exploits that from inside the
// simulator: at each fault delivery it fingerprints the machine state a
// window's behaviour can depend on; when a later delivery at the same
// site matches a recorded fingerprint, the engine splices the memoized
// outcome — cycle/seq advances, trace events, statistic increments,
// cache/TLB/PWC/predictor mutations, physical-memory writes — instead of
// re-simulating the window instruction by instruction.
//
// A window runs from the moment one fault's handler outcome has been
// applied (stall set, pipeline already squashed by delivery) to the
// moment the *next* fault at its head has squashed the pipeline and
// built its PageFault — i.e. right before the handler call. The handler
// itself always runs live, so the MicroScope module's replay counting,
// MaxReplays termination and PTE flips stay exact; its mutations become
// window *inputs* seen by the next probe.
//
// Soundness rests on four pillars:
//
//  1. Nothing retires inside a window (fetch resumes at the faulting PC
//     and the head re-faults), so architectural register state is
//     invariant; any retirement aborts the recording (commit hook).
//  2. Every input is fingerprinted. Fixed inputs (registers, fetch PC,
//     relative stall, RNG state, jitter phase, SMT rotation phase, port
//     occupancy, address-space root) fold eagerly; microarchitectural
//     inputs fold lazily in first-touch order via recording hooks on the
//     caches, TLBs, PWC, predictor and physical memory. LRU state is
//     hashed as ranks, not clock values (see sim/cache/memo.go).
//  3. Handler-side mutations between windows (PTE flips, flushes,
//     WarmTo) naturally change the fingerprint inputs, so stale records
//     miss instead of lying. Reconfiguration that changes timing itself
//     (UpdateTiming, tracer/shadow attach, snapshot restore) flushes the
//     memo wholesale.
//  4. In-window RDTSC results are absolute cycle values, so a recorded
//     window is only replayable at a different cycle base if those
//     values influence behaviour exclusively through differences. A
//     micro taint tracker follows timestamp absoluteness through the
//     window (SUB of two absolutes yields a translation-invariant
//     delta) and aborts the recording if an absolute value escapes into
//     an address, a mixed branch compare, or a value-dependent-latency
//     FDiv.
type memoState struct {
	enabled bool
	records map[memoSite][]*memoRecord
	nRec    int
	rec     *memoRecording
	stats   MemoStats

	// Structure tables and prebound hook closures (built once in
	// NewCore so recording start/stop never allocates closures).
	caches     [4]*cache.Cache
	tlbs       [3]*tlb.TLB
	cacheTouch [4]func(set int)
	tlbTouch   [3]func(set int)
	pwcTouch   func()
	bpTouch    func(idx int)
	invalHook  func()
	physRead   func(pa mem.Addr)
	physWrite  func(pa mem.Addr)

	taintBuf []bool // per-slot scratch, reused across recordings
}

// MemoStats counts replay-memo outcomes.
type MemoStats struct {
	Hits          uint64 // windows spliced from a record
	Misses        uint64 // fault boundaries with no matching record
	Invalidations uint64 // records dropped by flushes and evictions
	SplicedCycles uint64 // simulated cycles covered by splices
}

// MemoStats returns the replay-memo counters.
func (c *Core) MemoStats() MemoStats { return c.memo.stats }

// memoSite keys records by the fault that opens a window. The program
// epoch in the fingerprint pins the instruction identity, so the site
// needs only the fault coordinates.
type memoSite struct {
	ctx   int
	pc    int
	va    mem.Addr
	level mem.Level
	write bool
}

// Probe-op kinds: the recorded first-touch order of lazily fingerprinted
// inputs, replayed at probe time to recompute the digest from current
// state.
const (
	opCacheSet = iota // a = hierarchy level 0..3, b = set
	opTLBSet          // a = TLB index 0..2, b = set
	opPWC             // whole structure
	opBP              // a = predictor table index
	opPhys            // addr = physical word address
)

type probeOp struct {
	kind uint8
	a    int32
	b    int32
	addr uint64
}

type structAgg struct{ clock, hits, misses uint64 }

type cacheSetEff struct {
	level int32
	set   int32
	img   []cache.LineImage
}

type tlbSetEff struct {
	tlb int32
	set int32
	img []tlb.WayImage
}

type bpEff struct {
	idx int
	img pipeline.BPImage
}

type physWriteEff struct {
	addr uint64
	val  uint64
}

// memoRecord is one memoized window: the fingerprint that gates it and
// the complete effect set that replays it.
type memoRecord struct {
	digest uint64
	ops    []probeOp

	dCycle, dSeq, dSkipped uint64
	ctxStats               []ContextStats // per-context deltas

	// Trace events with Cycle/Seq stored as offsets from the window
	// start (Seq 0 = the event carried no sequence number).
	events []Event

	cacheSets []cacheSetEff
	cacheAgg  [4]structAgg
	tlbSets   []tlbSetEff
	tlbAgg    [3]structAgg
	pwcImg    []cache.PWCImage
	pwcSeen   bool
	pwcAgg    structAgg
	bpIdxs    []bpEff
	dBPLook   uint64
	dBPMis    uint64

	physWrites []physWriteEff

	rngEnd     uint64
	dRdrand    uint64
	rdrandVals []uint64
	dJitter    uint64

	portsIssued [pipeline.NumPorts]bool
	divRelEnd   uint64 // divBusyUntil - endCycle when busy, else 0
	dDivBusy    uint64

	endFetchPC   int
	endSerialize bool
	endPF        PageFault // the fault that closes the window
}

// memoRecording is an in-progress window capture.
type memoRecording struct {
	site   memoSite
	ctx    *Context
	digest uint64
	ops    []probeOp

	startCycle, startSeq, startSkipped uint64
	startStats                         []ContextStats
	startDraws, startJitter            uint64
	startCacheClock                    [4]uint64
	startCacheHits, startCacheMiss     [4]uint64
	startTLBClock                      [3]uint64
	startTLBHits, startTLBMiss         [3]uint64
	startPWCClock                      uint64
	startPWCHits, startPWCMiss         uint64
	startBPLook, startBPMis            uint64
	startDivBusy                       uint64

	cacheSeen   [4]map[int]struct{}
	tlbSeen     [3]map[int]struct{}
	pwcSeen     bool
	bpSeen      map[int]struct{}
	physReadSet map[uint64]struct{}
	physWritten map[uint64]struct{}
	physOrder   []uint64

	events     []Event
	rdrandVals []uint64
	taint      []bool // by ROB slot: value depends on the absolute cycle base
}

const (
	memoSiteCap   = 4    // records retained per site (FIFO)
	memoGlobalCap = 4096 // records retained in total; overflow flushes
)

// memoInit wires the structure tables and prebinds the hook closures.
// Called from NewCore.
func (c *Core) memoInit() {
	m := &c.memo
	m.enabled = c.cfg.ReplayMemo
	m.caches = [4]*cache.Cache{c.hier.L1D(), c.hier.L1I(), c.hier.L2(), c.hier.L3()}
	m.tlbs = [3]*tlb.TLB{c.tlbs.L1D, c.tlbs.L1I, c.tlbs.L2}
	for i := range m.cacheTouch {
		lvl := i
		m.cacheTouch[i] = func(set int) { c.memoTouchCache(lvl, set) }
	}
	for i := range m.tlbTouch {
		ti := i
		m.tlbTouch[i] = func(set int) { c.memoTouchTLB(ti, set) }
	}
	m.pwcTouch = func() { c.memoTouchPWC() }
	m.bpTouch = func(idx int) { c.memoTouchBP(idx) }
	m.invalHook = func() { c.memoAbortRecording() }
	m.physRead = func(pa mem.Addr) { c.memoPhysRead(pa) }
	m.physWrite = func(pa mem.Addr) { c.memoPhysWrite(pa) }
	m.taintBuf = make([]bool, c.cfg.ROBSize)
}

// memoFold mixes v into the running FNV-1a hash h.
func memoFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

const memoFNVOffset = 14695981039346656037

// memoFixedDigest folds the window inputs that are known eagerly at the
// boundary. Everything cycle-valued folds relative to the current cycle;
// the SMT rotation phase and jitter phase capture the only modular
// dependence on the absolute cycle and instruction counts.
func (c *Core) memoFixedDigest(ctx *Context) uint64 {
	h := uint64(memoFNVOffset)
	for _, r := range ctx.regs {
		h = memoFold(h, r)
	}
	h = memoFold(h, uint64(uint(ctx.fetchPC)))
	flags := uint64(0)
	if ctx.serialize {
		flags |= 1
	}
	if ctx.fetchHalted {
		flags |= 2
	}
	h = memoFold(h, flags)
	h = memoFold(h, ctx.stallUntil-c.cycle)
	h = memoFold(h, c.rngState)
	if c.cfg.JitterPeriod > 0 {
		h = memoFold(h, c.jitterCount%uint64(c.cfg.JitterPeriod))
	}
	h = memoFold(h, c.cycle%uint64(len(c.contexts)))
	h = memoFold(h, ctx.progEpoch)
	h = memoFold(h, ctx.as.Root())
	h = memoFold(h, uint64(ctx.as.PCID()))
	ps := c.ports.Snapshot()
	div := uint64(0)
	if ps.DivBusyUntil > c.cycle {
		div = ps.DivBusyUntil - c.cycle
	}
	h = memoFold(h, div)
	issued := uint64(0)
	for i := range ps.IssuedThis {
		if ps.IssuedThis[i] {
			issued |= 1 << i
		}
	}
	h = memoFold(h, issued)
	return h
}

// memoSolo reports whether every other context is inert: no program, or
// halted with nothing in flight. (A halted context still completes
// issued work and accrues fast-forward statistics, which the record's
// per-context stat deltas cover; live pipeline activity does not.)
func (c *Core) memoSolo(ctx *Context) bool {
	for _, o := range c.contexts {
		if o == ctx || o.prog == nil {
			continue
		}
		if !o.halted || o.rob.Len() > 0 || o.nIssued > 0 {
			return false
		}
	}
	return true
}

// memoUsable gates all memo activity at a fault boundary. RunUntil
// suspends the memo (a splice would jump over the caller's per-step
// condition checks); an attached shadow tracker disables it (shadow
// state is not captured in records); an enabled Jamais Vu detector
// disables it too — its per-PC squash counters are deliberately outside
// the window fingerprint (see jamaisvu.go), so every fault delivery
// must stay live for the counts to be exact.
func (c *Core) memoUsable(ctx *Context) bool {
	m := &c.memo
	return m.enabled && c.inRun && c.memoSuspend == 0 && c.shadow == nil &&
		c.cfg.SquashThreshold <= 0 &&
		!ctx.inTx && ctx.as != nil && c.memoSolo(ctx)
}

// memoResume runs at a fault boundary after the handler outcome has been
// applied: splice a matching record (returning the fault that closes the
// spliced window, so deliverFault's loop can run its handler), or start
// recording the window that begins here.
func (c *Core) memoResume(ctx *Context, pf PageFault) (PageFault, bool) {
	if !c.memoUsable(ctx) {
		return PageFault{}, false
	}
	site := memoSite{ctx: ctx.id, pc: pf.PC, va: pf.VA, level: pf.Level, write: pf.Write}
	for _, rec := range c.memo.records[site] {
		// Never splice past the Run budget: the live engine would have
		// stopped mid-window, a state no record can reproduce.
		if c.runBudgetEnd-c.cycle < rec.dCycle {
			continue
		}
		if c.memoProbe(rec, ctx) {
			c.memoSplice(rec, ctx)
			return rec.endPF, true
		}
	}
	c.memo.stats.Misses++
	c.memoRecordStart(ctx, site)
	return PageFault{}, false
}

// memoProbe recomputes a record's digest from current state, following
// the recorded first-touch order.
func (c *Core) memoProbe(rec *memoRecord, ctx *Context) bool {
	m := &c.memo
	h := c.memoFixedDigest(ctx)
	for i := range rec.ops {
		op := &rec.ops[i]
		switch op.kind {
		case opCacheSet:
			h = m.caches[op.a].MemoHashSet(int(op.b), h)
		case opTLBSet:
			h = m.tlbs[op.a].MemoHashSet(int(op.b), h)
		case opPWC:
			h = c.pwc.MemoHash(h)
		case opBP:
			h = ctx.bp.MemoHashIdx(int(op.a), h)
		case opPhys:
			h = memoFold(h, c.phys.Peek64(op.addr))
		}
	}
	return h == rec.digest
}

// --- recording --------------------------------------------------------

func (c *Core) memoRecordStart(ctx *Context, site memoSite) {
	m := &c.memo
	if m.rec != nil {
		c.memoAbortRecording()
	}
	r := &memoRecording{
		site:         site,
		ctx:          ctx,
		digest:       c.memoFixedDigest(ctx),
		startCycle:   c.cycle,
		startSeq:     c.seq,
		startSkipped: c.skipped,
		startDraws:   c.rdrandDraws,
		startJitter:  c.jitterCount,
		bpSeen:       make(map[int]struct{}),
		physReadSet:  make(map[uint64]struct{}),
		physWritten:  make(map[uint64]struct{}),
		taint:        m.taintBuf,
	}
	clear(r.taint)
	r.startStats = make([]ContextStats, len(c.contexts))
	for i, o := range c.contexts {
		r.startStats[i] = o.stats
	}
	for i, ca := range m.caches {
		r.cacheSeen[i] = make(map[int]struct{})
		r.startCacheClock[i] = ca.MemoClock()
		r.startCacheHits[i], r.startCacheMiss[i] = ca.Stats()
	}
	for i, t := range m.tlbs {
		r.tlbSeen[i] = make(map[int]struct{})
		r.startTLBClock[i] = t.MemoClock()
		r.startTLBHits[i], r.startTLBMiss[i] = t.Stats()
	}
	r.startPWCClock = c.pwc.MemoClock()
	r.startPWCHits, r.startPWCMiss = c.pwc.Stats()
	r.startBPLook, r.startBPMis = ctx.bp.Lookups, ctx.bp.Mispredicts
	r.startDivBusy = c.ports.Snapshot().DivBusyCycles
	m.rec = r

	for i, ca := range m.caches {
		ca.SetMemoHooks(m.cacheTouch[i], m.invalHook)
	}
	for i, t := range m.tlbs {
		t.SetMemoHooks(m.tlbTouch[i], m.invalHook)
	}
	c.pwc.SetMemoHooks(m.pwcTouch, m.invalHook)
	ctx.bp.SetMemoHooks(m.bpTouch, m.invalHook)
	c.phys.SetMemoHooks(m.physRead, m.physWrite)
}

func (c *Core) memoUninstallHooks(ctx *Context) {
	m := &c.memo
	for _, ca := range m.caches {
		ca.SetMemoHooks(nil, nil)
	}
	for _, t := range m.tlbs {
		t.SetMemoHooks(nil, nil)
	}
	c.pwc.SetMemoHooks(nil, nil)
	ctx.bp.SetMemoHooks(nil, nil)
	c.phys.SetMemoHooks(nil, nil)
}

// memoAbortRecording discards any in-progress recording (retirement,
// structure invalidation, Run exit, taint escape).
func (c *Core) memoAbortRecording() {
	r := c.memo.rec
	if r == nil {
		return
	}
	c.memo.rec = nil
	c.memoUninstallHooks(r.ctx)
}

func (c *Core) memoTouchCache(level, set int) {
	r := c.memo.rec
	if r == nil {
		return
	}
	if _, ok := r.cacheSeen[level][set]; ok {
		return
	}
	r.cacheSeen[level][set] = struct{}{}
	r.ops = append(r.ops, probeOp{kind: opCacheSet, a: int32(level), b: int32(set)})
	r.digest = c.memo.caches[level].MemoHashSet(set, r.digest)
}

func (c *Core) memoTouchTLB(ti, set int) {
	r := c.memo.rec
	if r == nil {
		return
	}
	if _, ok := r.tlbSeen[ti][set]; ok {
		return
	}
	r.tlbSeen[ti][set] = struct{}{}
	r.ops = append(r.ops, probeOp{kind: opTLBSet, a: int32(ti), b: int32(set)})
	r.digest = c.memo.tlbs[ti].MemoHashSet(set, r.digest)
}

func (c *Core) memoTouchPWC() {
	r := c.memo.rec
	if r == nil || r.pwcSeen {
		return
	}
	r.pwcSeen = true
	r.ops = append(r.ops, probeOp{kind: opPWC})
	r.digest = c.pwc.MemoHash(r.digest)
}

func (c *Core) memoTouchBP(idx int) {
	r := c.memo.rec
	if r == nil {
		return
	}
	if _, ok := r.bpSeen[idx]; ok {
		return
	}
	r.bpSeen[idx] = struct{}{}
	r.ops = append(r.ops, probeOp{kind: opBP, a: int32(idx)})
	r.digest = r.ctx.bp.MemoHashIdx(idx, r.digest)
}

func (c *Core) memoPhysRead(pa mem.Addr) {
	r := c.memo.rec
	if r == nil {
		return
	}
	if _, ok := r.physWritten[pa]; ok {
		return // window-internal value, not an input
	}
	if _, ok := r.physReadSet[pa]; ok {
		return
	}
	r.physReadSet[pa] = struct{}{}
	r.ops = append(r.ops, probeOp{kind: opPhys, addr: pa})
	r.digest = memoFold(r.digest, c.phys.Peek64(pa))
}

func (c *Core) memoPhysWrite(pa mem.Addr) {
	r := c.memo.rec
	if r == nil {
		return
	}
	if _, ok := r.physWritten[pa]; ok {
		return
	}
	r.physWritten[pa] = struct{}{}
	r.physOrder = append(r.physOrder, pa)
}

// memoTaintExec follows absolute-timestamp taint through one executing
// instruction (soundness pillar 4 above). Called from execute only while
// this context's window is being recorded, before architectural effects.
func (c *Core) memoTaintExec(r *memoRecording, e *pipeline.Entry, forward *pipeline.Entry) {
	srcTaint := func(i int) bool {
		p := e.Src[i].Producer
		return p != nil && r.taint[p.Slot]
	}
	t0, t1 := srcTaint(0), srcTaint(1)
	op := e.Instr.Op
	res := false
	switch {
	case op == isa.OpRdtsc:
		res = true
	case op == isa.OpSub:
		// The difference of two absolute timestamps is base-invariant;
		// subtracting anything else from (or by) one is not.
		res = t0 != t1
	case op.IsCondBranch():
		if t0 != t1 {
			c.memoAbortRecording() // direction depends on the cycle base
			return
		}
		// Both absolute: the base cancels in the comparison.
	case op == isa.OpFDiv:
		if t0 || t1 {
			c.memoAbortRecording() // subnormal-latency check is value-dependent
			return
		}
	case op.IsMem():
		if t0 {
			c.memoAbortRecording() // address depends on the cycle base
			return
		}
		if op.IsLoad() {
			res = forward != nil && r.taint[forward.Slot]
		} else {
			res = t1 // store data: forwarded loads inherit it
		}
	default:
		res = t0 || t1
	}
	r.taint[e.Slot] = res
}

// memoWindowEnd finalizes a recording at the fault boundary that closes
// it, converting the capture into a memoRecord.
func (c *Core) memoWindowEnd(ctx *Context, pf PageFault) {
	m := &c.memo
	r := m.rec
	if r == nil {
		return
	}
	m.rec = nil
	c.memoUninstallHooks(r.ctx)
	if r.ctx != ctx || c.cycle == r.startCycle {
		return
	}

	rec := &memoRecord{
		digest:       r.digest,
		ops:          r.ops,
		dCycle:       c.cycle - r.startCycle,
		dSeq:         c.seq - r.startSeq,
		dSkipped:     c.skipped - r.startSkipped,
		rngEnd:       c.rngState,
		dRdrand:      c.rdrandDraws - r.startDraws,
		dJitter:      c.jitterCount - r.startJitter,
		dBPLook:      ctx.bp.Lookups - r.startBPLook,
		dBPMis:       ctx.bp.Mispredicts - r.startBPMis,
		endFetchPC:   ctx.fetchPC,
		endSerialize: ctx.serialize,
		endPF:        pf,
		rdrandVals:   r.rdrandVals,
	}
	rec.ctxStats = make([]ContextStats, len(c.contexts))
	for i, o := range c.contexts {
		rec.ctxStats[i] = statsDelta(o.stats, r.startStats[i])
	}
	for i, ca := range m.caches {
		h, ms := ca.Stats()
		rec.cacheAgg[i] = structAgg{
			clock:  ca.MemoClock() - r.startCacheClock[i],
			hits:   h - r.startCacheHits[i],
			misses: ms - r.startCacheMiss[i],
		}
	}
	for i, t := range m.tlbs {
		h, ms := t.Stats()
		rec.tlbAgg[i] = structAgg{
			clock:  t.MemoClock() - r.startTLBClock[i],
			hits:   h - r.startTLBHits[i],
			misses: ms - r.startTLBMiss[i],
		}
	}
	{
		h, ms := c.pwc.Stats()
		rec.pwcAgg = structAgg{
			clock:  c.pwc.MemoClock() - r.startPWCClock,
			hits:   h - r.startPWCHits,
			misses: ms - r.startPWCMiss,
		}
	}
	for _, op := range r.ops {
		switch op.kind {
		case opCacheSet:
			rec.cacheSets = append(rec.cacheSets, cacheSetEff{
				level: op.a, set: op.b,
				img: m.caches[op.a].MemoCaptureSet(int(op.b), r.startCacheClock[op.a]),
			})
		case opTLBSet:
			rec.tlbSets = append(rec.tlbSets, tlbSetEff{
				tlb: op.a, set: op.b,
				img: m.tlbs[op.a].MemoCaptureSet(int(op.b), r.startTLBClock[op.a]),
			})
		case opPWC:
			rec.pwcSeen = true
			rec.pwcImg = c.pwc.MemoCapture(r.startPWCClock)
		case opBP:
			rec.bpIdxs = append(rec.bpIdxs, bpEff{idx: int(op.a), img: ctx.bp.MemoCaptureIdx(int(op.a))})
		}
	}
	for _, a := range r.physOrder {
		rec.physWrites = append(rec.physWrites, physWriteEff{addr: a, val: c.phys.Peek64(a)})
	}
	ps := c.ports.Snapshot()
	rec.portsIssued = ps.IssuedThis
	if ps.DivBusyUntil > c.cycle {
		rec.divRelEnd = ps.DivBusyUntil - c.cycle
	}
	rec.dDivBusy = ps.DivBusyCycles - r.startDivBusy
	if len(r.events) > 0 {
		rec.events = make([]Event, 0, len(r.events))
		for _, ev := range r.events {
			ev.Cycle -= r.startCycle
			if ev.Seq != 0 {
				if ev.Seq <= r.startSeq {
					return // a pre-window seq leaked into the window: drop
				}
				ev.Seq -= r.startSeq
			}
			rec.events = append(rec.events, ev)
		}
	}
	c.memoInsert(r.site, rec)
}

func (c *Core) memoInsert(site memoSite, rec *memoRecord) {
	m := &c.memo
	if m.records == nil {
		m.records = make(map[memoSite][]*memoRecord)
	}
	if m.nRec >= memoGlobalCap {
		c.MemoFlush()
	}
	recs := m.records[site]
	if len(recs) >= memoSiteCap {
		copy(recs, recs[1:])
		recs = recs[:len(recs)-1]
		m.nRec--
		m.stats.Invalidations++
	}
	m.records[site] = append(recs, rec)
	m.nRec++
}

// MemoFlush drops every record and aborts any in-progress recording.
// Reconfiguration that changes timing or observation (UpdateTiming,
// SetTracer, SetShadow, snapshot Restore) calls this; tests may too.
func (c *Core) MemoFlush() {
	m := &c.memo
	c.memoAbortRecording()
	m.stats.Invalidations += uint64(m.nRec)
	m.records = nil
	m.nRec = 0
}

// --- splice -----------------------------------------------------------

// memoSplice replays a record's effects at the current boundary. The ROB
// is empty at both window ends (the closing fault squashed everything),
// and no retirement happened inside, so registers and in-flight state
// need no replay — only the aggregates, images and events below.
func (c *Core) memoSplice(rec *memoRecord, ctx *Context) {
	m := &c.memo
	baseCycle, baseSeq := c.cycle, c.seq
	if c.tracer != nil {
		for _, ev := range rec.events {
			ev.Cycle += baseCycle
			if ev.Seq != 0 {
				ev.Seq += baseSeq
			}
			c.tracer.Trace(ev)
		}
	}
	c.cycle = baseCycle + rec.dCycle
	c.seq = baseSeq + rec.dSeq
	c.skipped += rec.dSkipped
	for i := range rec.ctxStats {
		statsAdd(&c.contexts[i].stats, rec.ctxStats[i])
	}

	// Structure images rebase onto each structure's clock at splice
	// time; the aggregate clock advances come after, in one step.
	var cacheBase [4]uint64
	for i, ca := range m.caches {
		cacheBase[i] = ca.MemoClock()
	}
	var tlbBase [3]uint64
	for i, t := range m.tlbs {
		tlbBase[i] = t.MemoClock()
	}
	pwcBase := c.pwc.MemoClock()
	for i := range rec.cacheSets {
		eff := &rec.cacheSets[i]
		m.caches[eff.level].MemoApplySet(int(eff.set), eff.img, cacheBase[eff.level])
	}
	for i := range rec.tlbSets {
		eff := &rec.tlbSets[i]
		m.tlbs[eff.tlb].MemoApplySet(int(eff.set), eff.img, tlbBase[eff.tlb])
	}
	if rec.pwcSeen {
		c.pwc.MemoApply(rec.pwcImg, pwcBase)
	}
	for _, eff := range rec.bpIdxs {
		ctx.bp.MemoApplyIdx(eff.idx, eff.img)
	}
	for i, ca := range m.caches {
		ca.MemoAdvance(rec.cacheAgg[i].clock, rec.cacheAgg[i].hits, rec.cacheAgg[i].misses)
	}
	for i, t := range m.tlbs {
		t.MemoAdvance(rec.tlbAgg[i].clock, rec.tlbAgg[i].hits, rec.tlbAgg[i].misses)
	}
	c.pwc.MemoAdvance(rec.pwcAgg.clock, rec.pwcAgg.hits, rec.pwcAgg.misses)
	ctx.bp.Lookups += rec.dBPLook
	ctx.bp.Mispredicts += rec.dBPMis

	for _, w := range rec.physWrites {
		c.phys.Write64(w.addr, w.val)
	}
	c.rngState = rec.rngEnd
	c.rdrandDraws += rec.dRdrand
	for _, v := range rec.rdrandVals {
		if len(c.rdrandLog) < rdrandLogCap {
			c.rdrandLog = append(c.rdrandLog, v)
		}
	}
	c.jitterCount += rec.dJitter

	c.ports.Restore(pipeline.PortSetSnap{
		Cycle:         c.cycle,
		IssuedThis:    rec.portsIssued,
		DivBusyUntil:  c.cycle + rec.divRelEnd,
		DivBusyCycles: c.ports.Snapshot().DivBusyCycles + rec.dDivBusy,
	})

	ctx.fetchPC = rec.endFetchPC
	ctx.serialize = rec.endSerialize
	ctx.fetchHalted = false
	ctx.stallUntil = c.cycle // the closing fault's handler sets the real stall
	ctx.nextCompleteAt = neverCycle
	ctx.wakeIssue()

	m.stats.Hits++
	m.stats.SplicedCycles += rec.dCycle
}

func statsDelta(a, b ContextStats) ContextStats {
	return ContextStats{
		Fetched:            a.Fetched - b.Fetched,
		Retired:            a.Retired - b.Retired,
		Squashed:           a.Squashed - b.Squashed,
		PageFaults:         a.PageFaults - b.PageFaults,
		TxAborts:           a.TxAborts - b.TxAborts,
		Mispredicts:        a.Mispredicts - b.Mispredicts,
		MemOrderViolations: a.MemOrderViolations - b.MemOrderViolations,
		StallCycles:        a.StallCycles - b.StallCycles,
		SkippedCycles:      a.SkippedCycles - b.SkippedCycles,
		ReplayAlarms:       a.ReplayAlarms - b.ReplayAlarms,
	}
}

func statsAdd(dst *ContextStats, d ContextStats) {
	dst.Fetched += d.Fetched
	dst.Retired += d.Retired
	dst.Squashed += d.Squashed
	dst.PageFaults += d.PageFaults
	dst.TxAborts += d.TxAborts
	dst.Mispredicts += d.Mispredicts
	dst.MemOrderViolations += d.MemOrderViolations
	dst.StallCycles += d.StallCycles
	dst.SkippedCycles += d.SkippedCycles
	dst.ReplayAlarms += d.ReplayAlarms
}
