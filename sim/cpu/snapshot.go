package cpu

import (
	"fmt"
	"sort"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
	"microscope/sim/tlb"
)

// Snapshot support: CoreSnap is a plain-data, gob-serializable image of
// the full microarchitectural state of a core — per-context architectural
// registers, rename/ROB state, branch predictors, the shared port set,
// cache hierarchy, PWC and TLBs, plus the deterministic-RNG state and the
// nondeterministic-input record log. Restore() overwrites a core built
// from the same structural configuration so that Restore(snap); Run(n) is
// bit-identical (same trace events, same cycles, same final state) to the
// original execution continuing past the snapshot point.
//
// Producer pointers inside ROB entries are encoded as indices into the
// owning context's entry list. Captured (ready) operands drop their
// provenance link — by capture time the sanitizer's dispatch hook has
// already consumed it, so the restored machine is semantically identical
// even though the pointer graph is not reproduced bit-for-bit. The
// scheduler's derived wakeup state (ready lists, completion heap, waiter
// links) is not encoded at all: recount rebuilds it exactly from the
// restored ROB.
//
// The snapshot does NOT include: the fault handler, the tracer, or the
// contexts' address-space bindings. Those are host-side wiring (closures
// and interfaces cannot be serialized); the kernel layer re-establishes
// address spaces from its own snapshot and callers re-attach tracers.

// ProgramSnap is a serializable isa.Program (labels as a sorted slice so
// the encoding is deterministic).
type ProgramSnap struct {
	Instrs []isa.Instr
	Labels []LabelSnap
}

// LabelSnap is one program label.
type LabelSnap struct {
	Name  string
	Index int
}

func snapProgram(p *isa.Program) ProgramSnap {
	s := ProgramSnap{Instrs: append([]isa.Instr(nil), p.Instrs...)}
	for name, idx := range p.Labels {
		s.Labels = append(s.Labels, LabelSnap{Name: name, Index: idx})
	}
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Name < s.Labels[j].Name })
	return s
}

func (s ProgramSnap) restore() *isa.Program {
	p := &isa.Program{Instrs: append([]isa.Instr(nil), s.Instrs...)}
	if len(s.Labels) > 0 {
		p.Labels = make(map[string]int, len(s.Labels))
		for _, l := range s.Labels {
			p.Labels[l.Name] = l.Index
		}
	}
	return p
}

// OperandSnap is one serializable ROB-entry operand. Producer is the
// index of the producing entry in the owning context's ROB (oldest
// first), or -1 when the operand is ready.
type OperandSnap struct {
	Ready    bool
	Value    uint64
	Producer int
}

// EntrySnap is one serializable in-flight instruction.
type EntrySnap struct {
	Seq     uint64
	PC      int
	Instr   isa.Instr
	State   pipeline.EntryState
	Context int

	Src        [2]OperandSnap
	Result     uint64
	CompleteAt uint64

	PredictedTaken bool
	PredictedPC    int
	ActualPC       int
	Mispredicted   bool

	EffAddr    uint64
	PhysAddr   uint64
	HasFault   bool
	Fault      mem.Fault
	WalkCycles int

	// Shadow-taint fields (all zero unless a ShadowTracker was attached).
	// PendShadow carries captured-but-not-yet-folded producer taint, the
	// engine-side handoff the sanitizer folds into SrcShadow at issue;
	// taint of producers still in flight needs no encoding, because the
	// restored completion broadcast captures it again.
	SrcShadow  [2]uint64
	PendShadow [2]uint64
	Shadow     uint64
	CtrlShadow uint64
}

// ContextSnap is the serializable state of one SMT context.
type ContextSnap struct {
	Regs [isa.NumRegs]uint64

	HasProg bool
	Prog    ProgramSnap

	FetchPC     int
	FetchHalted bool
	Halted      bool
	StallUntil  uint64
	Serialize   bool

	InTx          bool
	TxCheckpoint  [isa.NumRegs]uint64
	TxAbortPC     int
	HasTxWriteSet bool
	TxWriteSet    []uint64 // sorted physical line addresses

	NDispatched     int
	NIssued         int
	NFences         int
	NextCompleteAt  uint64
	IssueSleepUntil uint64

	ROB []EntrySnap
	RAT [isa.NumRegs]int // ROB index of the renaming entry, or -1

	BP pipeline.PredictorSnap

	// Jamais Vu detector state (Config.SquashThreshold); counts sorted
	// by PC so the encoding is deterministic.
	JVEpoch  uint64
	JVCounts []JVCountSnap

	Stats ContextStats
}

// JVCountSnap is one PC's fault-squash count in the Jamais Vu detector.
type JVCountSnap struct {
	PC    int
	Count uint32
}

// CoreSnap is the serializable state of the whole core.
type CoreSnap struct {
	Cycle   uint64
	Seq     uint64
	NLoaded int
	NHalted int
	Skipped uint64

	RngState    uint64
	JitterCount uint64
	RdrandDraws uint64
	RdrandLog   []uint64

	Ports pipeline.PortSetSnap
	Hier  cache.HierarchySnap
	PWC   cache.PWCSnap
	TLBs  tlb.UnitSnap

	Contexts []ContextSnap
}

// Snapshot captures the core's full state.
func (c *Core) Snapshot() (*CoreSnap, error) {
	s := &CoreSnap{
		Cycle:       c.cycle,
		Seq:         c.seq,
		NLoaded:     c.nLoaded,
		NHalted:     c.nHalted,
		Skipped:     c.skipped,
		RngState:    c.rngState,
		JitterCount: c.jitterCount,
		RdrandDraws: c.rdrandDraws,
		RdrandLog:   append([]uint64(nil), c.rdrandLog...),
		Ports:       c.ports.Snapshot(),
		Hier:        c.hier.Snapshot(),
		PWC:         c.pwc.Snapshot(),
		TLBs:        c.tlbs.Snapshot(),
	}
	for _, ctx := range c.contexts {
		cs, err := snapContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("cpu: snapshot context %d: %w", ctx.id, err)
		}
		s.Contexts = append(s.Contexts, cs)
	}
	return s, nil
}

func snapContext(ctx *Context) (ContextSnap, error) {
	s := ContextSnap{
		Regs:            ctx.regs,
		FetchPC:         ctx.fetchPC,
		FetchHalted:     ctx.fetchHalted,
		Halted:          ctx.halted,
		StallUntil:      ctx.stallUntil,
		Serialize:       ctx.serialize,
		InTx:            ctx.inTx,
		TxCheckpoint:    ctx.txCheckpoint,
		TxAbortPC:       ctx.txAbortPC,
		NDispatched:     ctx.nDispatched,
		NIssued:         ctx.nIssued,
		NFences:         ctx.nFences,
		NextCompleteAt:  ctx.nextCompleteAt,
		IssueSleepUntil: ctx.issueSleepUntil,
		BP:              ctx.bp.Snapshot(),
		JVEpoch:         ctx.jvEpoch,
		Stats:           ctx.stats,
	}
	if len(ctx.jvCounts) > 0 {
		s.JVCounts = make([]JVCountSnap, 0, len(ctx.jvCounts))
		for pc, n := range ctx.jvCounts {
			s.JVCounts = append(s.JVCounts, JVCountSnap{PC: pc, Count: n})
		}
		sort.Slice(s.JVCounts, func(i, j int) bool { return s.JVCounts[i].PC < s.JVCounts[j].PC })
	}
	if ctx.prog != nil {
		s.HasProg = true
		s.Prog = snapProgram(ctx.prog)
	}
	if ctx.txWriteSet != nil {
		s.HasTxWriteSet = true
		s.TxWriteSet = make([]uint64, 0, len(ctx.txWriteSet))
		for a := range ctx.txWriteSet {
			s.TxWriteSet = append(s.TxWriteSet, uint64(a))
		}
		sort.Slice(s.TxWriteSet, func(i, j int) bool { return s.TxWriteSet[i] < s.TxWriteSet[j] })
	}

	entries := ctx.rob.Entries()
	index := make(map[*pipeline.Entry]int, len(entries))
	for i, e := range entries {
		index[e] = i
	}
	for _, e := range entries {
		es := EntrySnap{
			Seq:            e.Seq,
			PC:             e.PC,
			Instr:          e.Instr,
			State:          e.State,
			Context:        e.Context,
			Result:         e.Result,
			CompleteAt:     e.CompleteAt,
			PredictedTaken: e.PredictedTaken,
			PredictedPC:    e.PredictedPC,
			ActualPC:       e.ActualPC,
			Mispredicted:   e.Mispredicted,
			EffAddr:        e.EffAddr,
			PhysAddr:       e.PhysAddr,
			WalkCycles:     e.WalkCycles,
			SrcShadow:      e.SrcShadow,
			PendShadow:     e.PendShadow,
			Shadow:         e.Shadow,
			CtrlShadow:     e.CtrlShadow,
		}
		if e.Fault != nil {
			f, ok := e.Fault.(*mem.Fault)
			if !ok {
				return ContextSnap{}, fmt.Errorf("entry seq %d: unsupported fault type %T", e.Seq, e.Fault)
			}
			es.HasFault = true
			es.Fault = *f
		}
		for i, op := range e.Src {
			os, err := snapOperand(op, index)
			if err != nil {
				return ContextSnap{}, fmt.Errorf("entry seq %d src %d: %w", e.Seq, i, err)
			}
			es.Src[i] = os
		}
		s.ROB = append(s.ROB, es)
	}
	for r, e := range ctx.rat {
		if e == nil {
			s.RAT[r] = -1
			continue
		}
		i, ok := index[e]
		if !ok {
			return ContextSnap{}, fmt.Errorf("RAT[%d] names an entry outside the ROB", r)
		}
		s.RAT[r] = i
	}
	return s, nil
}

// snapOperand encodes one operand. Captured operands drop their
// provenance link (it must not be dereferenced anyway — the producer's
// slot may have been recycled); pending operands encode the producer's
// ROB index, which the engine's eager capture guarantees is in flight.
func snapOperand(op pipeline.Operand, index map[*pipeline.Entry]int) (OperandSnap, error) {
	if op.Ready {
		return OperandSnap{Ready: true, Value: op.Value, Producer: -1}, nil
	}
	p := op.Producer
	if p == nil {
		return OperandSnap{}, fmt.Errorf("pending operand with no producer")
	}
	if i, ok := index[p]; ok {
		return OperandSnap{Producer: i}, nil
	}
	return OperandSnap{}, fmt.Errorf("pending producer seq %d in state %s is outside the ROB", p.Seq, p.State)
}

// Restore overwrites the core's state with a snapshot. The core must have
// been built from the same structural configuration (context count, ROB
// size, predictor size, cache geometry, PWC size); mismatches are
// reported as errors. The fault handler, tracer, and per-context address
// spaces are left untouched — the caller re-establishes them.
func (c *Core) Restore(s *CoreSnap) error {
	if len(s.Contexts) != len(c.contexts) {
		return fmt.Errorf("cpu: snapshot has %d contexts, core has %d", len(s.Contexts), len(c.contexts))
	}
	// Memo records fingerprint state this restore is about to replace;
	// drop them all rather than trust probes against rebuilt structures.
	c.MemoFlush()
	if err := c.hier.Restore(s.Hier); err != nil {
		return fmt.Errorf("cpu: restore: %w", err)
	}
	if err := c.pwc.Restore(s.PWC); err != nil {
		return fmt.Errorf("cpu: restore: %w", err)
	}
	if err := c.tlbs.Restore(s.TLBs); err != nil {
		return fmt.Errorf("cpu: restore: %w", err)
	}
	c.ports.Restore(s.Ports)
	c.cycle = s.Cycle
	c.seq = s.Seq
	c.nLoaded = s.NLoaded
	c.nHalted = s.NHalted
	c.skipped = s.Skipped
	c.rngState = s.RngState
	c.jitterCount = s.JitterCount
	c.rdrandDraws = s.RdrandDraws
	c.rdrandLog = append(c.rdrandLog[:0], s.RdrandLog...)
	for i, cs := range s.Contexts {
		if err := restoreContext(c.contexts[i], cs); err != nil {
			return fmt.Errorf("cpu: restore context %d: %w", i, err)
		}
	}
	return nil
}

func restoreContext(ctx *Context, s ContextSnap) error {
	ctx.regs = s.Regs
	if s.HasProg {
		ctx.prog = s.Prog.restore()
	} else {
		ctx.prog = nil
	}
	ctx.progEpoch++ // new program identity: retire any memo fingerprints
	ctx.fetchPC = s.FetchPC
	ctx.fetchHalted = s.FetchHalted
	ctx.halted = s.Halted
	ctx.stallUntil = s.StallUntil
	ctx.serialize = s.Serialize
	ctx.inTx = s.InTx
	ctx.txCheckpoint = s.TxCheckpoint
	ctx.txAbortPC = s.TxAbortPC
	if s.HasTxWriteSet {
		ctx.txWriteSet = make(map[mem.Addr]struct{}, len(s.TxWriteSet))
		for _, a := range s.TxWriteSet {
			ctx.txWriteSet[mem.Addr(a)] = struct{}{}
		}
	} else {
		ctx.txWriteSet = nil
	}
	ctx.jvEpoch = s.JVEpoch
	if len(s.JVCounts) > 0 {
		ctx.jvCounts = make(map[int]uint32, len(s.JVCounts))
		for _, jc := range s.JVCounts {
			ctx.jvCounts[jc.PC] = jc.Count
		}
	} else {
		ctx.jvCounts = nil
	}
	ctx.stats = s.Stats

	if err := ctx.rob.BeginReplace(len(s.ROB)); err != nil {
		return err
	}
	entries := make([]*pipeline.Entry, len(s.ROB))
	for i, es := range s.ROB {
		e := ctx.rob.Alloc()
		slot := e.Slot
		*e = pipeline.Entry{
			Seq:            es.Seq,
			PC:             es.PC,
			Instr:          es.Instr,
			State:          es.State,
			Context:        es.Context,
			Slot:           slot,
			Result:         es.Result,
			CompleteAt:     es.CompleteAt,
			PredictedTaken: es.PredictedTaken,
			PredictedPC:    es.PredictedPC,
			ActualPC:       es.ActualPC,
			Mispredicted:   es.Mispredicted,
			EffAddr:        es.EffAddr,
			PhysAddr:       es.PhysAddr,
			WalkCycles:     es.WalkCycles,
			SrcShadow:      es.SrcShadow,
			PendShadow:     es.PendShadow,
			Shadow:         es.Shadow,
			CtrlShadow:     es.CtrlShadow,
		}
		if es.HasFault {
			f := es.Fault
			e.Fault = &f
		}
		ctx.rob.Push(e)
		entries[i] = e
	}
	// Second pass: link producer pointers now that every entry exists.
	for i, es := range s.ROB {
		for j, os := range es.Src {
			switch {
			case os.Ready:
				entries[i].Src[j] = pipeline.Operand{Ready: true, Value: os.Value}
			case os.Producer < 0 || os.Producer >= len(entries):
				return fmt.Errorf("entry %d src %d: producer index %d out of range", i, j, os.Producer)
			default:
				entries[i].Src[j] = pipeline.Operand{Producer: entries[os.Producer]}
			}
		}
	}
	for r, idx := range s.RAT {
		switch {
		case idx < 0:
			ctx.rat[r] = nil
		case idx >= len(entries):
			return fmt.Errorf("RAT[%d]: entry index %d out of range", r, idx)
		default:
			ctx.rat[r] = entries[idx]
		}
	}
	if err := ctx.bp.Restore(s.BP); err != nil {
		return err
	}
	// Rebuild the scheduler's derived state from the restored ROB, then
	// overwrite the counters and wake points with the snapshotted values:
	// recount's recomputation must agree on the counters, but it resets
	// issueSleepUntil (and a restored quiesce/skip point must be
	// bit-identical for the fast-forward skip accounting to reproduce).
	ctx.recount()
	ctx.nDispatched = s.NDispatched
	ctx.nIssued = s.NIssued
	ctx.nFences = s.NFences
	ctx.nextCompleteAt = s.NextCompleteAt
	ctx.issueSleepUntil = s.IssueSleepUntil
	return nil
}

// UpdateTiming replaces the core's configuration with cfg, which must
// agree with the current configuration on every structural field — the
// fields that size hardware structures a snapshot encodes (context count,
// ROB size, branch-predictor size, PWC size, cache hierarchy). Timing and
// behavioral fields (latencies, jitter, fencing, fast-forward) may
// differ: sweep forks use this to vary per-trial jitter after restoring a
// shared checkpoint.
func (c *Core) UpdateTiming(cfg Config) error {
	cfg.validate()
	switch {
	case cfg.Contexts != c.cfg.Contexts:
		return fmt.Errorf("cpu: UpdateTiming cannot change Contexts (%d -> %d)", c.cfg.Contexts, cfg.Contexts)
	case cfg.ROBSize != c.cfg.ROBSize:
		return fmt.Errorf("cpu: UpdateTiming cannot change ROBSize (%d -> %d)", c.cfg.ROBSize, cfg.ROBSize)
	case cfg.BranchPredictorBits != c.cfg.BranchPredictorBits:
		return fmt.Errorf("cpu: UpdateTiming cannot change BranchPredictorBits (%d -> %d)",
			c.cfg.BranchPredictorBits, cfg.BranchPredictorBits)
	case cfg.PWCSize != c.cfg.PWCSize:
		return fmt.Errorf("cpu: UpdateTiming cannot change PWCSize (%d -> %d)", c.cfg.PWCSize, cfg.PWCSize)
	case cfg.Hierarchy != c.cfg.Hierarchy:
		return fmt.Errorf("cpu: UpdateTiming cannot change the cache hierarchy")
	}
	// Recorded windows embed the old timing (latencies, jitter schedule);
	// none of them is replayable under the new one.
	c.MemoFlush()
	c.cfg = cfg
	c.memo.enabled = cfg.ReplayMemo
	return nil
}
