package cpu_test

import (
	"math/rand"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/cpu/cputest"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// The trace-hash arm of the differential fuzzer: beyond architectural
// state (differential_test.go), fast-forward on and off must emit the
// exact same pipeline event stream — every fetch, issue, completion,
// retirement and squash at the same cycle with the same operands. The
// trace.Hasher folds the stream into one digest per run; a single
// mismatched event anywhere in millions diverges the sum. This file
// lives in package cpu_test because sim/trace imports sim/cpu.

type diffRun struct {
	hash    uint64
	events  uint64
	cycles  uint64
	skipped uint64
	regs    [isa.NumRegs]uint64
}

func runTraced(t *testing.T, prog *isa.Program, seed int64, fastForward bool) diffRun {
	t.Helper()
	as, err := cputest.NewDataSpace(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.FastForward = fastForward
	core := cpu.NewCore(cfg, as.Phys())
	core.Context(0).SetAddressSpace(as)
	core.Context(0).SetProgram(prog, 0)
	h := trace.NewHasher()
	core.SetTracer(h)
	core.Run(20_000_000)
	if !core.Context(0).Halted() {
		t.Fatalf("seed %d fastForward=%v: core did not halt", seed, fastForward)
	}
	d := diffRun{
		hash:    h.Sum64(),
		events:  h.Events(),
		cycles:  core.Cycle(),
		skipped: core.SkippedCycles(),
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		d.regs[r] = core.Context(0).Reg(r)
	}
	return d
}

func TestDifferentialTraceHashFastForward(t *testing.T) {
	var totalSkipped uint64
	check := func(seed int64, prog *isa.Program) {
		on := runTraced(t, prog, seed, true)
		off := runTraced(t, prog, seed, false)
		totalSkipped += on.skipped
		if off.skipped != 0 {
			t.Errorf("seed %d: skip-off run skipped %d cycles", seed, off.skipped)
		}
		if on.hash != off.hash || on.events != off.events {
			t.Errorf("seed %d: trace diverges: %d events hash %#x (on) vs %d events hash %#x (off)\n%s",
				seed, on.events, on.hash, off.events, off.hash, isa.Disassemble(prog))
		}
		if on.cycles != off.cycles {
			t.Errorf("seed %d: final cycle diverges: %d vs %d", seed, on.cycles, off.cycles)
		}
		if on.regs != off.regs {
			t.Errorf("seed %d: architectural registers diverge", seed)
		}
	}
	// Structured programs (branches, loops, transactions)...
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		check(seed, cputest.GenProgram(rng))
	}
	// ...and aliasing-heavy ones (dense squash/replay traffic, slow
	// divides the fast-forward engine loves to skip over).
	for seed := int64(1000); seed < 1030; seed++ {
		rng := rand.New(rand.NewSource(seed))
		check(seed, cputest.GenAliasProgram(rng))
	}
	if totalSkipped == 0 {
		t.Error("no run ever fast-forwarded: the differential is vacuous")
	}
}
