package cpu

import (
	"fmt"
	"math"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
	"microscope/sim/tlb"
)

// PageFault describes a precise page-fault exception delivered to the
// fault handler. The handler (the OS — honest or malicious) sees the
// faulting virtual address, as SGX reveals the VPN of enclave faults to
// the OS (§2.3).
type PageFault struct {
	Context int
	PC      int
	VA      mem.Addr
	Write   bool
	Level   mem.Level // page-table level at which the walk failed
	Instr   isa.Instr
}

// FaultOutcome tells the core how to resume after the handler returns.
// The core always resumes at the faulting instruction (precise exception
// semantics) unless Terminate is set.
type FaultOutcome struct {
	// HandlerLatency is the number of cycles the faulting context spends
	// in the kernel before re-fetching the faulting instruction. Other
	// SMT contexts keep running during this time — which is when the
	// paper's free-running Monitor takes most of its samples (§6.1).
	HandlerLatency uint64
	// Terminate halts the context (unrecoverable fault).
	Terminate bool
}

// FaultHandler services page faults. The kernel package provides the
// standard implementation; MicroScope hooks into it.
type FaultHandler interface {
	HandlePageFault(f PageFault) FaultOutcome
}

// FaultHandlerFunc adapts a function to the FaultHandler interface.
type FaultHandlerFunc func(f PageFault) FaultOutcome

// HandlePageFault implements FaultHandler.
func (fn FaultHandlerFunc) HandlePageFault(f PageFault) FaultOutcome { return fn(f) }

// EventKind classifies tracer events.
type EventKind int

// Tracer event kinds.
const (
	EvFetch EventKind = iota
	EvIssue
	EvComplete
	EvRetire
	EvSquash
	EvFault
	EvTxAbort
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvFetch:
		return "fetch"
	case EvIssue:
		return "issue"
	case EvComplete:
		return "complete"
	case EvRetire:
		return "retire"
	case EvSquash:
		return "squash"
	case EvFault:
		return "fault"
	case EvTxAbort:
		return "txabort"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one pipeline event, delivered to an attached Tracer. Seq is
// the global dispatch sequence number of the dynamic instruction the
// event belongs to, so consumers can correlate the fetch/issue/complete/
// retire events of one instruction exactly instead of guessing by PC
// (zero for events with no associated ROB entry, e.g. EvTxAbort). Walk
// carries the page-walk duration observed by a memory access on
// EvIssue/EvComplete/EvFault (zero on a TLB hit or for non-memory ops).
// Port is the execution port the instruction issued on, valid on
// EvIssue only (zero otherwise). Addr is the effective virtual address
// of a memory access on EvIssue/EvComplete and the faulting virtual
// address on EvFault (zero for non-memory ops and other kinds); the
// sim/trace channel projections derive cache-set footprints from it.
//
// The zero-extended field set is the canonical event identity: the
// sim/trace Hasher folds every field below into the stream hash.
type Event struct {
	Cycle   uint64
	Context int
	Kind    EventKind
	PC      int
	Seq     uint64
	Instr   isa.Instr
	Walk    int
	Port    pipeline.Port
	Addr    mem.Addr
	Detail  string
}

// Tracer observes pipeline events (used by the Fig. 3 timeline tool and
// by white-box tests).
type Tracer interface {
	Trace(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev Event) { f(ev) }

// Core is one simulated physical core with SMT contexts.
type Core struct {
	cfg  Config
	phys *mem.PhysMem
	hier *cache.Hierarchy
	pwc  *cache.PWC
	tlbs *tlb.Unit

	contexts []*Context
	ports    pipeline.PortSet

	cycle uint64
	seq   uint64

	// Halted-context bookkeeping: nLoaded counts contexts with a program,
	// nHalted those of them that have halted. Maintained by Context.load
	// and ctxHalt so Halted() is O(1) instead of a per-Run-iteration scan.
	nLoaded int
	nHalted int

	// skipped counts cycles fast-forwarded over (see Config.FastForward).
	skipped uint64

	faultHandler FaultHandler
	tracer       Tracer
	shadow       ShadowTracker

	rngState    uint64
	jitterCount uint64

	// Nondeterministic-input record log (see snapshot.go): every RDRAND
	// draw delivered to software, bounded by rdrandLogCap. The RNG itself
	// is a deterministic function of rngState, so the log adds no
	// information to a snapshot — it exists so tools/snapdiff can show
	// *which* draws two diverging runs disagreed on.
	rdrandDraws uint64
	rdrandLog   []uint64
}

// NewCore builds a core over the given physical memory.
func NewCore(cfg Config, phys *mem.PhysMem) *Core {
	cfg.validate()
	c := &Core{
		cfg:      cfg,
		phys:     phys,
		hier:     cache.NewHierarchy(cfg.Hierarchy),
		pwc:      cache.NewPWC(cfg.PWCSize),
		tlbs:     tlb.NewUnit(),
		rngState: cfg.RandSeed | 1,
	}
	for i := 0; i < cfg.Contexts; i++ {
		c.contexts = append(c.contexts, &Context{
			id:   i,
			core: c,
			rob:  pipeline.NewROB(cfg.ROBSize),
			bp:   pipeline.NewPredictor(cfg.BranchPredictorBits),
		})
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Phys returns the physical memory.
func (c *Core) Phys() *mem.PhysMem { return c.phys }

// Hierarchy returns the cache subsystem.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// PWC returns the page-walk cache.
func (c *Core) PWC() *cache.PWC { return c.pwc }

// TLBs returns the TLB complex.
func (c *Core) TLBs() *tlb.Unit { return c.tlbs }

// Context returns SMT context i.
func (c *Core) Context(i int) *Context { return c.contexts[i] }

// Contexts returns the number of SMT contexts.
func (c *Core) Contexts() int { return len(c.contexts) }

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Ports exposes the shared execution-port state (diagnostics).
func (c *Core) Ports() *pipeline.PortSet { return &c.ports }

// SetFaultHandler installs the page-fault handler.
func (c *Core) SetFaultHandler(h FaultHandler) { c.faultHandler = h }

// SetTracer attaches a pipeline tracer (nil detaches).
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) trace(ev Event) {
	if c.tracer != nil {
		ev.Cycle = c.cycle
		c.tracer.Trace(ev)
	}
}

// FlushPageStructures removes the cached state MicroScope scrubs during
// attack setup: the line holding a page-table entry from all cache levels
// and from the PWC.
func (c *Core) FlushPageStructures(entryAddr mem.Addr) {
	c.hier.FlushAddr(entryAddr)
	c.pwc.Flush(entryAddr)
}

// rdrand returns the next value of the deterministic hardware RNG
// (xorshift64*).
func (c *Core) rdrand() uint64 {
	x := c.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rngState = x
	v := x * 0x2545F4914F6CDD1D
	c.rdrandDraws++
	if len(c.rdrandLog) < rdrandLogCap {
		c.rdrandLog = append(c.rdrandLog, v)
	}
	return v
}

// rdrandLogCap bounds the RDRAND record log: enough to cover every
// builtin experiment's draws while keeping long fuzz runs from growing a
// snapshot without bound. Draws past the cap are still counted in
// rdrandDraws.
const rdrandLogCap = 4096

// RdrandLog returns the recorded RDRAND draws (up to rdrandLogCap) and
// the total number of draws delivered.
func (c *Core) RdrandLog() ([]uint64, uint64) { return c.rdrandLog, c.rdrandDraws }

// Halted reports whether every context with a loaded program has halted.
func (c *Core) Halted() bool { return c.nHalted == c.nLoaded }

// SkippedCycles returns the total simulated cycles the fast-forward
// engine jumped over (all of them provably dead for every context).
func (c *Core) SkippedCycles() uint64 { return c.skipped }

// ctxHalt halts a context, maintaining the halted-context counter. Every
// site that sets Context.halted goes through here.
func (c *Core) ctxHalt(ctx *Context) {
	if !ctx.halted {
		ctx.halted = true
		c.nHalted++
	}
	ctx.fetchHalted = true
}

// Step advances the core by exactly one cycle. It never fast-forwards:
// external drivers that interleave their own actions with Step (SGX-Step
// style preemption loops, the Fig. 9 bench) keep cycle-by-cycle control.
func (c *Core) Step() {
	c.cycle++
	c.ports.NewCycle(c.cycle)
	c.complete()
	c.retire()
	c.issue()
	c.fetch()
}

// Run steps until all contexts halt or maxCycles elapse, returning the
// number of cycles advanced (stepped or fast-forwarded).
func (c *Core) Run(maxCycles uint64) uint64 {
	start := c.cycle
	for !c.Halted() && c.cycle-start < maxCycles {
		c.fastForward(start, maxCycles)
		if c.cycle-start >= maxCycles {
			break
		}
		c.Step()
	}
	return c.cycle - start
}

// RunUntil steps until cond returns true or maxCycles elapse, reporting
// whether cond was met. With Config.FastForward enabled, cond is only
// evaluated at cycles where the pipeline can make progress (skipped
// cycles are exact no-ops, so a cond that reads simulated state sees the
// same sequence of values; a cond keyed directly off Cycle() should run
// with fast-forward disabled).
func (c *Core) RunUntil(cond func() bool, maxCycles uint64) bool {
	start := c.cycle
	for c.cycle-start < maxCycles {
		if cond() {
			return true
		}
		if c.Halted() {
			return cond()
		}
		c.fastForward(start, maxCycles)
		if c.cycle-start >= maxCycles {
			break
		}
		c.Step()
	}
	return cond()
}

// fastForward jumps the cycle counter to just before the earliest cycle
// at which any context can fetch, issue, complete or retire, clamped so
// the landing Step stays within the caller's cycle budget. The skipped
// cycles are provably no-ops: every context is stalled, halted, quiesced
// waiting on a known future completion/divider-free/stall-expiry cycle,
// or permanently inert — so jumping preserves exact cycle-accurate
// semantics (same retirement cycles, rdtsc values, fault timing, traces).
func (c *Core) fastForward(start, maxCycles uint64) {
	if !c.cfg.FastForward {
		return
	}
	x := c.cycle + 1 // the cycle the next Step would execute
	next := c.nextEventAt(x)
	if next <= x {
		return
	}
	// Leave one cycle of budget for the landing Step.
	maxSkip := maxCycles - (c.cycle - start) - 1
	skip := next - x
	if next == neverCycle || skip > maxSkip {
		skip = maxSkip
	}
	if skip == 0 {
		return
	}
	c.cycle += skip
	c.skipped += skip
	for _, ctx := range c.contexts {
		if ctx.prog != nil {
			ctx.stats.SkippedCycles += skip
		}
	}
}

// nextEventAt returns the earliest cycle >= x at which any pipeline stage
// could act for any context, or neverCycle when no future event is
// scheduled. A return of x means some context can act immediately and no
// cycles may be skipped.
func (c *Core) nextEventAt(x uint64) uint64 {
	next := neverCycle
	for _, ctx := range c.contexts {
		e := c.ctxNextEventAt(ctx, x)
		if e <= x {
			return x
		}
		if e < next {
			next = e
		}
	}
	return next
}

// ctxNextEventAt computes one context's earliest possible-action cycle
// >= x. It mirrors the per-stage gating conditions exactly; when in
// doubt it returns x (conservative: an extra live Step is always
// correct, a missed event never is).
func (c *Core) ctxNextEventAt(ctx *Context, x uint64) uint64 {
	if ctx.prog == nil {
		return neverCycle
	}
	next := neverCycle
	// Complete stage: runs even for stalled or halted contexts.
	if ctx.nIssued > 0 {
		if ctx.nextCompleteAt <= x {
			return x
		}
		next = ctx.nextCompleteAt
	}
	if ctx.halted {
		return next
	}
	// Retire stage: a completed or faulted head retires/delivers now
	// (retire is not gated on stalls).
	if h := ctx.rob.Head(); h != nil &&
		(h.State == pipeline.StateCompleted || h.State == pipeline.StateFaulted) {
		return x
	}
	if x < ctx.stallUntil {
		// Fetch and issue resume when the handler stall expires — unless
		// the context has nothing to resume to (ran off the end with an
		// empty pipeline).
		if !ctx.fetchHalted || ctx.rob.Len() > 0 {
			if ctx.stallUntil < next {
				next = ctx.stallUntil
			}
		}
		return next
	}
	// Issue stage: a pending scan may find work now; a quiesced context
	// wakes at its recorded retry cycle (divider-free time) or via an
	// explicit wakeIssue from the event that unblocks it.
	if ctx.nDispatched > 0 {
		if ctx.issueSleepUntil <= x {
			return x
		}
		if ctx.issueSleepUntil < next {
			next = ctx.issueSleepUntil
		}
	}
	// Fetch stage.
	if !ctx.fetchHalted && !ctx.rob.Full() && ctx.nFences == 0 &&
		!(ctx.serialize && ctx.rob.Len() > 0) {
		return x
	}
	return next
}

// ---------------------------------------------------------------------
// Complete stage
// ---------------------------------------------------------------------

func (c *Core) complete() {
	for _, ctx := range c.contexts {
		if ctx.nIssued == 0 {
			ctx.nextCompleteAt = neverCycle
			continue
		}
		// Nothing in flight finishes before nextCompleteAt; skip the walk.
		if c.cycle < ctx.nextCompleteAt {
			continue
		}
		// Collect first: branch redirects mutate the ROB mid-walk. The
		// batch lives in a per-context scratch slice — allocating it
		// fresh every cycle was a top hot-loop allocation. While
		// collecting, recompute the earliest still-pending completion.
		done := ctx.doneScratch[:0]
		nextAt := uint64(neverCycle)
		for _, e := range ctx.rob.Entries() {
			if e.State != pipeline.StateIssued {
				continue
			}
			if e.CompleteAt <= c.cycle {
				done = append(done, e)
			} else if e.CompleteAt < nextAt {
				nextAt = e.CompleteAt
			}
		}
		ctx.doneScratch = done
		// A mid-batch squash may remove pending issued entries; recount
		// then recomputes nextCompleteAt exactly, and nextAt (a superset
		// minimum) can only be early, never late — so this stays a sound
		// lower bound either way.
		ctx.nextCompleteAt = nextAt
		if len(done) > 0 {
			ctx.wakeIssue() // completions can make consumers issuable
		}
		for _, e := range done {
			if e.State != pipeline.StateIssued {
				continue // squashed by an older branch this same cycle
			}
			ctx.nIssued--
			if e.Fault != nil && c.recheckFault(ctx, e) {
				e.Fault = nil // the PTE became present before the walk concluded
				if c.shadow != nil {
					c.shadow.ShadowFaultResolved(ctx, e)
				}
			}
			if e.Fault != nil {
				e.State = pipeline.StateFaulted
			} else {
				e.State = pipeline.StateCompleted
			}
			if c.tracer != nil {
				c.trace(Event{Context: ctx.id, Kind: EvComplete, PC: e.PC, Seq: e.Seq,
					Instr: e.Instr, Walk: e.WalkCycles, Addr: e.EffAddr})
			}
			if e.Instr.Op.IsCondBranch() {
				ctx.bp.Update(e.PC, e.ActualPC == e.Instr.Target, e.Instr.Target)
			}
			if e.Mispredicted {
				ctx.bp.RecordMispredict()
				ctx.stats.Mispredicts++
				ctx.squashYounger(e.Seq)
				ctx.fetchPC = e.ActualPC
				if c.cfg.FenceAfterFlush {
					ctx.serialize = true
				}
				if c.tracer != nil {
					c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: e.PC, Seq: e.Seq,
						Instr: e.Instr, Detail: "branch mispredict"})
				}
			}
		}
	}
}

// recheckFault re-reads the page tables when a walked memory access
// completes with a pending fault. The hardware walker only consumes the
// leaf PTE at the *end* of the walk, so supervisor software that sets the
// present bit mid-walk wins the race and the access completes normally —
// the §7.2 mechanism behind the selective-replay RDRAND bias attack. It
// reports whether the fault was resolved, fixing up the entry's result.
func (c *Core) recheckFault(ctx *Context, e *pipeline.Entry) bool {
	if !e.Instr.Op.IsMem() || e.WalkCycles == 0 {
		return false
	}
	f, ok := e.Fault.(*mem.Fault)
	if !ok {
		return false
	}
	leaf, _, err := ctx.as.LeafEntry(e.EffAddr)
	if err != nil || !leaf.Present() {
		return false
	}
	if f.Write && !leaf.Writable() {
		return false
	}
	pa := leaf.PPN()<<mem.PageShift | mem.PageOffset(e.EffAddr)
	if pa+8 > c.phys.Size() {
		return false
	}
	c.tlbs.InsertData(tlb.Translation{
		VPN:   mem.PageNum(e.EffAddr),
		PPN:   leaf.PPN(),
		PCID:  ctx.as.PCID(),
		Flags: tlb.FlagsFromEntry(leaf),
	})
	e.PhysAddr = pa
	if e.Instr.Op.IsLoad() {
		if !c.cfg.InvisibleSpeculation {
			c.hier.Access(pa)
		}
		if e.Instr.Op == isa.OpLoad32 {
			e.Result = uint64(c.phys.Read32(pa))
		} else {
			e.Result = c.phys.Read64(pa)
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Retire stage
// ---------------------------------------------------------------------

func (c *Core) retire() {
	for _, ctx := range c.contexts {
	retireLoop:
		for n := 0; n < c.cfg.RetireWidth; n++ {
			head := ctx.rob.Head()
			if head == nil || ctx.halted {
				break
			}
			switch head.State {
			case pipeline.StateCompleted:
				ctx.rob.PopHead()
				ctx.wakeIssue() // head changed: a waiting rdtsc may now issue
				c.commit(ctx, head)
			case pipeline.StateFaulted:
				c.deliverFault(ctx, head)
				break retireLoop // whole pipeline flushed
			default:
				break retireLoop // head not done; stall
			}
		}
	}
}

// commit applies the architectural effects of a completed instruction.
func (c *Core) commit(ctx *Context, e *pipeline.Entry) {
	e.State = pipeline.StateRetired
	ctx.serialize = false // first post-flush retirement lifts the fence
	ctx.stats.Retired++
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvRetire, PC: e.PC, Seq: e.Seq, Instr: e.Instr})
	}
	if c.shadow != nil {
		// Before architectural effects: an OpTxAbort below fires
		// ShadowTxAbort after the retire hook checkpointed/updated state.
		c.shadow.ShadowRetire(ctx, e)
	}

	if d := e.Instr.Dest(); d != isa.NoReg {
		ctx.regs[d] = e.Result
		if ctx.rat[d] == e {
			ctx.rat[d] = nil
		}
	}

	if ctx.isFenceActing(e.Instr.Op) {
		ctx.nFences--
	}

	if c.cfg.InvisibleSpeculation && e.Instr.Op.IsLoad() && e.PhysAddr != 0 {
		c.hier.Access(e.PhysAddr) // deferred fill of the retired load
	}

	switch e.Instr.Op {
	case isa.OpStore, isa.OpStoreF:
		// The store's write becomes visible at commit.
		c.phys.Write64(e.PhysAddr, e.Src[1].Value)
		c.hier.Access(e.PhysAddr)
		c.trackTxWrite(ctx, e.PhysAddr)
	case isa.OpStore32:
		c.phys.Write32(e.PhysAddr, uint32(e.Src[1].Value))
		c.hier.Access(e.PhysAddr)
		c.trackTxWrite(ctx, e.PhysAddr)
	case isa.OpHalt:
		c.ctxHalt(ctx)
	case isa.OpTxBegin:
		ctx.inTx = true
		ctx.txCheckpoint = ctx.regs
		ctx.txAbortPC = e.Instr.Target
		ctx.txWriteSet = make(map[mem.Addr]struct{})
	case isa.OpTxEnd:
		ctx.inTx = false
		ctx.txWriteSet = nil
	case isa.OpTxAbort:
		c.abortTx(ctx, "explicit txabort")
	}
}

// trackTxWrite records a committed store's cache line in the write set
// of an active transaction.
func (c *Core) trackTxWrite(ctx *Context, pa mem.Addr) {
	if ctx.inTx && ctx.txWriteSet != nil {
		ctx.txWriteSet[pa&^63] = struct{}{}
	}
}

// EvictLine flushes a physical line from the cache hierarchy AND aborts
// any transaction whose write set contains it — the attacker-controlled
// TSX abort trigger of §7.1. It reports whether a transaction aborted.
func (c *Core) EvictLine(pa mem.Addr) bool {
	c.hier.FlushAddr(pa)
	line := pa &^ 63
	aborted := false
	for _, ctx := range c.contexts {
		if ctx.inTx && ctx.txWriteSet != nil {
			if _, ok := ctx.txWriteSet[line]; ok {
				c.abortTx(ctx, "write-set eviction")
				aborted = true
			}
		}
	}
	return aborted
}

// abortTx rolls the context back to its transaction checkpoint and
// redirects fetch to the abort handler. AbortReg receives the cumulative
// abort count, letting handlers implement T-SGX-style thresholds.
func (c *Core) abortTx(ctx *Context, reason string) {
	if !ctx.inTx {
		return
	}
	ctx.stats.TxAborts++
	ctx.squashAll()
	ctx.regs = ctx.txCheckpoint
	ctx.regs[AbortReg] = ctx.stats.TxAborts
	ctx.fetchPC = ctx.txAbortPC
	ctx.inTx = false
	ctx.txWriteSet = nil
	if c.shadow != nil {
		c.shadow.ShadowTxAbort(ctx)
	}
	c.trace(Event{Context: ctx.id, Kind: EvTxAbort, PC: ctx.txAbortPC, Detail: reason})
}

// Preempt delivers a precise external interrupt to a context: in-flight
// work is squashed, the context spends handlerLatency cycles in the
// (simulated) kernel, and execution resumes at the oldest unretired
// instruction. This is the timer-interrupt primitive SGX-Step-style
// attacks [57] use to single-step a victim — one of the noisy baselines
// of Table 1.
func (c *Core) Preempt(ctxID int, handlerLatency uint64) {
	ctx := c.contexts[ctxID]
	if ctx.inTx {
		// An interrupt aborts a transaction, as on real TSX.
		c.abortTx(ctx, "interrupt")
		ctx.stallUntil = c.cycle + handlerLatency
		ctx.stats.StallCycles += handlerLatency
		return
	}
	if head := ctx.rob.Head(); head != nil {
		ctx.fetchPC = head.PC
	}
	// Seq 0 marks a whole-pipeline flush: everything in flight is younger.
	if c.tracer != nil && ctx.rob.Len() > 0 {
		c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: ctx.fetchPC, Detail: "preempt"})
	}
	ctx.squashAll()
	if c.cfg.FenceAfterFlush {
		ctx.serialize = true
	}
	ctx.stallUntil = c.cycle + handlerLatency
	ctx.stats.StallCycles += handlerLatency
}

// AbortTx aborts the context's transaction from outside the pipeline
// (attacker-induced: write-set eviction, interrupt, ...). It reports
// whether a transaction was active.
func (c *Core) AbortTx(ctxID int, reason string) bool {
	ctx := c.contexts[ctxID]
	if !ctx.inTx {
		return false
	}
	c.abortTx(ctx, reason)
	return true
}

// deliverFault implements precise exception delivery: squash everything,
// run the (simulated) OS handler, stall for its latency, and resume at the
// faulting instruction.
func (c *Core) deliverFault(ctx *Context, e *pipeline.Entry) {
	// A fault inside a transaction aborts the transaction instead of
	// trapping to the OS — the TSX behaviour T-SGX builds on (§8).
	if ctx.inTx {
		c.abortTx(ctx, fmt.Sprintf("page fault in tx at pc=%d", e.PC))
		return
	}

	ctx.stats.PageFaults++
	ctx.squashAll()
	ctx.fetchPC = e.PC
	if c.cfg.FenceAfterFlush {
		ctx.serialize = true
	}

	f, _ := e.Fault.(*mem.Fault)
	if f == nil {
		f = &mem.Fault{VA: e.EffAddr, Level: mem.PTE}
	}
	pf := PageFault{
		Context: ctx.id,
		PC:      e.PC,
		VA:      f.VA,
		Write:   f.Write,
		Level:   f.Level,
		Instr:   e.Instr,
	}
	c.trace(Event{Context: ctx.id, Kind: EvFault, PC: e.PC, Seq: e.Seq, Instr: e.Instr,
		Walk: e.WalkCycles, Addr: f.VA, Detail: f.Error()})

	if c.faultHandler == nil {
		c.ctxHalt(ctx)
		return
	}
	out := c.faultHandler.HandlePageFault(pf)
	if out.Terminate {
		c.ctxHalt(ctx)
		return
	}
	ctx.stallUntil = c.cycle + out.HandlerLatency
	ctx.stats.StallCycles += out.HandlerLatency
}

// ---------------------------------------------------------------------
// Issue stage
// ---------------------------------------------------------------------

func (c *Core) issue() {
	budget := c.cfg.IssueWidth
	// Alternate context priority cycle by cycle for SMT fairness.
	first := int(c.cycle) % len(c.contexts)
	for i := range c.contexts {
		ctx := c.contexts[(first+i)%len(c.contexts)]
		if budget == 0 {
			break
		}
		if ctx.Stalled(c.cycle) || ctx.nDispatched == 0 {
			continue
		}
		// Quiesced: the last full scan proved nothing becomes issuable
		// before issueSleepUntil without an intervening wakeIssue event
		// (completion, retirement, dispatch, squash). Skip the O(ROB)
		// scan — with a full ROB blocked behind the non-pipelined
		// divider, this is the hottest loop in the simulator.
		if c.cycle < ctx.issueSleepUntil {
			continue
		}
		retryAt := uint64(neverCycle)
		for _, e := range ctx.rob.Entries() {
			if budget == 0 || ctx.nDispatched == 0 {
				break
			}
			if e.State != pipeline.StateDispatched || !e.OperandsReady() {
				continue
			}
			if ok, at := c.tryIssueEntry(ctx, e); ok {
				budget--
			} else if at < retryAt {
				retryAt = at
			}
		}
		if budget == 0 && ctx.nDispatched > 0 {
			// Scan may have stopped early: rescan next cycle.
			ctx.issueSleepUntil = c.cycle + 1
		} else {
			// Full coverage: every still-dispatched entry is either
			// port-blocked until retryAt or waiting on an event that
			// fires wakeIssue. (A mid-scan squash sets issueSleepUntil
			// to zero via recount, but the squash also redirects fetch,
			// and the resulting dispatch wakes the scan again — so
			// overwriting here is sound.)
			ctx.issueSleepUntil = retryAt
		}
	}
}

// occupancyOf returns, without side effects, the functional-unit occupancy
// of e. Only the (non-pipelined) divider uses it, so it is exact for div
// ops and irrelevant elsewhere.
func (c *Core) occupancyOf(e *pipeline.Entry) uint64 {
	switch e.Instr.Op {
	case isa.OpDiv:
		return uint64(c.cfg.DivLat)
	case isa.OpFDiv:
		lat := c.cfg.FDivLat
		fa := math.Float64frombits(e.Src[0].Value)
		fb := math.Float64frombits(e.Src[1].Value)
		if isSubnormal(fa) || isSubnormal(fb) || isSubnormal(fa/fb) {
			lat += c.cfg.SubnormalPenalty
		}
		return uint64(lat)
	default:
		return 1
	}
}

// tryIssueEntry attempts to start executing e, reporting success. On
// failure it also returns the earliest cycle a retry could succeed
// (neverCycle when only a wakeIssue event — retirement for a non-head
// rdtsc — can unblock it). The port is claimed before execute runs so
// that a structural hazard leaves no side effects (the entry retries).
func (c *Core) tryIssueEntry(ctx *Context, e *pipeline.Entry) (bool, uint64) {
	op := e.Instr.Op

	// RDTSC reads the cycle counter at the ROB head only (serialized, as
	// in the rdtscp+fence idiom attack code uses), so monitor timing
	// measurements are well ordered.
	if op == isa.OpRdtsc && ctx.rob.Head() != e {
		return false, neverCycle // retirement pops the head and wakes us
	}

	// Optimistic memory disambiguation: a load forwards from the youngest
	// older issued store to the same address; older stores with unknown
	// addresses are speculated past (no-alias prediction). A store that
	// later discovers a younger already-executed load to its address
	// triggers a memory-order-violation squash below — itself one of the
	// §7 replay mechanisms.
	var forward *pipeline.Entry
	if op.IsLoad() {
		va := e.Src[0].Value + uint64(e.Instr.Imm)
		for _, se := range ctx.rob.Entries() {
			if se.Seq >= e.Seq {
				break
			}
			if se.Instr.Op.IsStore() && se.State != pipeline.StateDispatched &&
				se.EffAddr == va {
				forward = se // youngest older match wins
			}
		}
	}

	port, ok := c.ports.TryIssue(op, c.occupancyOf(e))
	if !ok {
		// Structural hazard (e.g. divider busy: contention).
		return false, c.ports.RetryAt(op)
	}
	lat, result, fault, effAddr, physAddr, walk := c.execute(ctx, e, forward)
	e.State = pipeline.StateIssued
	ctx.nDispatched--
	ctx.nIssued++
	e.CompleteAt = c.cycle + uint64(lat)
	if e.CompleteAt < ctx.nextCompleteAt {
		ctx.nextCompleteAt = e.CompleteAt
	}
	e.Result = result
	e.Fault = fault
	e.EffAddr = effAddr
	e.PhysAddr = physAddr
	e.WalkCycles = walk
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvIssue, PC: e.PC, Seq: e.Seq,
			Instr: e.Instr, Walk: e.WalkCycles, Port: port, Addr: e.EffAddr})
	}
	if c.shadow != nil {
		c.shadow.ShadowIssue(ctx, e, forward)
	}

	// Memory-order violation: this store's address matches a younger load
	// that already executed with (possibly stale) memory data. Squash and
	// re-fetch everything younger than the store.
	if op.IsStore() && fault == nil {
		violated := false
		for _, ye := range ctx.rob.Entries() {
			if ye.Seq > e.Seq && ye.Instr.Op.IsLoad() &&
				ye.State != pipeline.StateDispatched && ye.EffAddr == effAddr {
				violated = true
				break
			}
		}
		if violated {
			ctx.stats.MemOrderViolations++
			ctx.squashYounger(e.Seq)
			ctx.fetchPC = e.PC + 1
			if c.tracer != nil {
				c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: e.PC, Seq: e.Seq,
					Instr: e.Instr, Detail: "memory order violation"})
			}
		}
	}
	return true, 0
}

// execute computes an instruction's latency, result and memory effects.
// Functional effects on the cache/TLB/PWC state happen here (issue time);
// architectural effects happen at commit. forward, when non-nil, is the
// store-buffer entry a load forwards its data from.
func (c *Core) execute(ctx *Context, e *pipeline.Entry, forward *pipeline.Entry) (lat int, result uint64, fault error, effAddr, physAddr mem.Addr, walkCycles int) {
	in := e.Instr
	a, b := e.Src[0].Value, e.Src[1].Value
	lat = c.cfg.ALULat

	switch in.Op {
	case isa.OpNop, isa.OpFence, isa.OpTxBegin, isa.OpTxEnd, isa.OpTxAbort, isa.OpHalt:
	case isa.OpMovImm, isa.OpFLoadImm:
		result = uint64(in.Imm)
	case isa.OpMov, isa.OpFMov:
		result = a
	case isa.OpAdd:
		result = a + b
	case isa.OpAddImm:
		result = a + uint64(in.Imm)
	case isa.OpSub:
		result = a - b
	case isa.OpAnd:
		result = a & b
	case isa.OpAndImm:
		result = a & uint64(in.Imm)
	case isa.OpOr:
		result = a | b
	case isa.OpXor:
		result = a ^ b
	case isa.OpShl:
		result = a << (b & 63)
	case isa.OpShlImm:
		result = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		result = a >> (b & 63)
	case isa.OpShrImm:
		result = a >> (uint64(in.Imm) & 63)
	case isa.OpMul:
		result = a * b
		lat = c.cfg.MulLat
	case isa.OpDiv:
		if b != 0 {
			result = a / b
		}
		lat = c.cfg.DivLat
	case isa.OpFAdd:
		result = math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		lat = c.cfg.FAddLat
	case isa.OpFMul:
		result = math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		lat = c.cfg.MulLat
	case isa.OpFDiv:
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		q := fa / fb
		result = math.Float64bits(q)
		lat = c.cfg.FDivLat
		if isSubnormal(fa) || isSubnormal(fb) || isSubnormal(q) {
			lat += c.cfg.SubnormalPenalty
		}
	case isa.OpRdtsc:
		result = c.cycle
	case isa.OpRdrand:
		result = c.rdrand()
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp:
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = int64(a) < int64(b)
		case isa.OpBge:
			taken = int64(a) >= int64(b)
		case isa.OpJmp:
			taken = true
		}
		if taken {
			e.ActualPC = in.Target
		} else {
			e.ActualPC = e.PC + 1
		}
		e.Mispredicted = e.ActualPC != e.PredictedPC
	case isa.OpLoad, isa.OpLoad32, isa.OpLoadF:
		effAddr = a + uint64(in.Imm)
		res := c.translate(ctx, effAddr, false)
		lat, walkCycles = res.latency, res.walkCycles
		if res.fault != nil {
			fault = res.fault
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		physAddr = res.pa
		if physAddr+8 > c.phys.Size() {
			fault = &mem.Fault{VA: effAddr, Level: mem.PTE}
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		if forward != nil {
			// Store-to-load forwarding: data comes from the store buffer
			// at L1-hit cost, without touching the cache hierarchy.
			lat += c.cfg.Hierarchy.L1D.Latency
			result = forward.Src[1].Value
			if in.Op == isa.OpLoad32 {
				result = uint64(uint32(result))
			}
			break
		}
		if c.cfg.InvisibleSpeculation {
			// InvisiSpec-style: the speculative load reads around the
			// cache without filling it; the fill happens at commit.
			plat, _ := c.hier.Probe(physAddr)
			lat += plat
		} else {
			lat += c.dataAccess(physAddr)
		}
		if in.Op == isa.OpLoad32 {
			result = uint64(c.phys.Read32(physAddr))
		} else {
			result = c.phys.Read64(physAddr)
		}
	case isa.OpStore, isa.OpStore32, isa.OpStoreF:
		effAddr = a + uint64(in.Imm)
		res := c.translate(ctx, effAddr, true)
		lat, walkCycles = res.latency, res.walkCycles
		if res.fault != nil {
			fault = res.fault
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		physAddr = res.pa
		if physAddr+8 > c.phys.Size() {
			fault = &mem.Fault{VA: effAddr, Level: mem.PTE, Write: true}
		}
	default:
		// Unreachable for loaded programs: Context.LoadProgram runs
		// static.Validate, which rejects any opcode outside the
		// execute switch before it can be fetched.
		panic(fmt.Sprintf("cpu: execute: unhandled op %s (program bypassed LoadProgram validation)", in.Op))
	}
	if lat <= 0 {
		lat = 1
	}
	lat += c.jitter()
	return lat, result, fault, effAddr, physAddr, walkCycles
}

func isSubnormal(f float64) bool {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return false
	}
	return math.Abs(f) < 2.2250738585072014e-308 // smallest normal float64
}

// ---------------------------------------------------------------------
// Fetch/dispatch stage
// ---------------------------------------------------------------------

func (c *Core) fetch() {
	for _, ctx := range c.contexts {
		if ctx.halted || ctx.fetchHalted || ctx.prog == nil || ctx.Stalled(c.cycle) {
			continue
		}
		for n := 0; n < c.cfg.FetchWidth; n++ {
			if ctx.rob.Full() || ctx.nFences > 0 {
				break
			}
			if ctx.serialize && ctx.rob.Len() > 0 {
				break // post-flush fence: one instruction at a time
			}
			if ctx.fetchPC < 0 || ctx.fetchPC >= ctx.prog.Len() {
				ctx.fetchHalted = true
				break
			}
			in := ctx.prog.At(ctx.fetchPC)
			e := c.dispatch(ctx, in, ctx.fetchPC)

			switch {
			case in.Op == isa.OpHalt:
				ctx.fetchHalted = true
				n = c.cfg.FetchWidth
			case in.Op == isa.OpJmp:
				e.PredictedPC = in.Target
				ctx.fetchPC = in.Target
			case in.Op.IsCondBranch():
				// Branches carry their target, so only the direction is
				// predicted (no BTB dependence for direct branches).
				taken := ctx.bp.PredictDirection(e.PC)
				if taken {
					e.PredictedPC = in.Target
				} else {
					e.PredictedPC = e.PC + 1
				}
				e.PredictedTaken = taken
				ctx.fetchPC = e.PredictedPC
			default:
				ctx.fetchPC++
			}
		}
	}
}

// dispatch creates and enqueues a ROB entry for in at pc.
func (c *Core) dispatch(ctx *Context, in isa.Instr, pc int) *pipeline.Entry {
	c.seq++
	e := &pipeline.Entry{
		Seq:     c.seq,
		PC:      pc,
		Instr:   in,
		State:   pipeline.StateDispatched,
		Context: ctx.id,
	}
	srcs := in.Sources()
	for i, r := range srcs {
		if r == isa.NoReg {
			e.Src[i] = pipeline.Operand{Ready: true}
			continue
		}
		if prod := ctx.rat[r]; prod != nil {
			e.Src[i] = pipeline.Operand{Producer: prod}
		} else {
			e.Src[i] = pipeline.Operand{Ready: true, Value: ctx.regs[r]}
		}
	}
	if d := in.Dest(); d != isa.NoReg {
		ctx.rat[d] = e
	}
	ctx.rob.Push(e)
	ctx.nDispatched++
	if c.shadow != nil {
		c.shadow.ShadowDispatch(ctx, e)
	}
	ctx.wakeIssue() // a fresh entry may be issuable before the quiesce expiry
	if ctx.isFenceActing(in.Op) {
		ctx.nFences++
	}
	ctx.stats.Fetched++
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvFetch, PC: pc, Seq: e.Seq, Instr: in})
	}
	return e
}
