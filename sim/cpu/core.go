package cpu

import (
	"fmt"
	"math"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
	"microscope/sim/tlb"
)

// PageFault describes a precise page-fault exception delivered to the
// fault handler. The handler (the OS — honest or malicious) sees the
// faulting virtual address, as SGX reveals the VPN of enclave faults to
// the OS (§2.3).
type PageFault struct {
	Context int
	PC      int
	VA      mem.Addr
	Write   bool
	Level   mem.Level // page-table level at which the walk failed
	Instr   isa.Instr
}

// FaultOutcome tells the core how to resume after the handler returns.
// The core always resumes at the faulting instruction (precise exception
// semantics) unless Terminate is set.
type FaultOutcome struct {
	// HandlerLatency is the number of cycles the faulting context spends
	// in the kernel before re-fetching the faulting instruction. Other
	// SMT contexts keep running during this time — which is when the
	// paper's free-running Monitor takes most of its samples (§6.1).
	HandlerLatency uint64
	// Terminate halts the context (unrecoverable fault).
	Terminate bool
}

// FaultHandler services page faults. The kernel package provides the
// standard implementation; MicroScope hooks into it.
type FaultHandler interface {
	HandlePageFault(f PageFault) FaultOutcome
}

// FaultHandlerFunc adapts a function to the FaultHandler interface.
type FaultHandlerFunc func(f PageFault) FaultOutcome

// HandlePageFault implements FaultHandler.
func (fn FaultHandlerFunc) HandlePageFault(f PageFault) FaultOutcome { return fn(f) }

// EventKind classifies tracer events.
type EventKind int

// Tracer event kinds.
const (
	EvFetch EventKind = iota
	EvIssue
	EvComplete
	EvRetire
	EvSquash
	EvFault
	EvTxAbort
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvFetch:
		return "fetch"
	case EvIssue:
		return "issue"
	case EvComplete:
		return "complete"
	case EvRetire:
		return "retire"
	case EvSquash:
		return "squash"
	case EvFault:
		return "fault"
	case EvTxAbort:
		return "txabort"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one pipeline event, delivered to an attached Tracer. Seq is
// the global dispatch sequence number of the dynamic instruction the
// event belongs to, so consumers can correlate the fetch/issue/complete/
// retire events of one instruction exactly instead of guessing by PC
// (zero for events with no associated ROB entry, e.g. EvTxAbort). Walk
// carries the page-walk duration observed by a memory access on
// EvIssue/EvComplete/EvFault (zero on a TLB hit or for non-memory ops).
// Port is the execution port the instruction issued on, valid on
// EvIssue only (zero otherwise). Addr is the effective virtual address
// of a memory access on EvIssue/EvComplete and the faulting virtual
// address on EvFault (zero for non-memory ops and other kinds); the
// sim/trace channel projections derive cache-set footprints from it.
//
// The zero-extended field set is the canonical event identity: the
// sim/trace Hasher folds every field below into the stream hash.
type Event struct {
	Cycle   uint64
	Context int
	Kind    EventKind
	PC      int
	Seq     uint64
	Instr   isa.Instr
	Walk    int
	Port    pipeline.Port
	Addr    mem.Addr
	Detail  string
}

// Tracer observes pipeline events (used by the Fig. 3 timeline tool and
// by white-box tests).
type Tracer interface {
	Trace(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev Event) { f(ev) }

// Core is one simulated physical core with SMT contexts.
type Core struct {
	cfg  Config
	phys *mem.PhysMem
	hier *cache.Hierarchy
	pwc  *cache.PWC
	tlbs *tlb.Unit

	contexts []*Context
	ports    pipeline.PortSet

	cycle uint64
	seq   uint64

	// Halted-context bookkeeping: nLoaded counts contexts with a program,
	// nHalted those of them that have halted. Maintained by Context.load
	// and ctxHalt so Halted() is O(1) instead of a per-Run-iteration scan.
	nLoaded int
	nHalted int

	// skipped counts cycles fast-forwarded over (see Config.FastForward).
	skipped uint64

	faultHandler FaultHandler //simlint:snapexempt host wiring: handlers are host closures, re-registered by the owner after a restore (see snapshot.go doc)
	tracer       Tracer       //simlint:snapexempt host wiring: tracers are host observers, re-registered by the owner after a restore
	shadow       ShadowTracker

	rngState    uint64
	jitterCount uint64

	// Nondeterministic-input record log (see snapshot.go): every RDRAND
	// draw delivered to software, bounded by rdrandLogCap. The RNG itself
	// is a deterministic function of rngState, so the log adds no
	// information to a snapshot — it exists so tools/snapdiff can show
	// *which* draws two diverging runs disagreed on.
	rdrandDraws uint64
	rdrandLog   []uint64

	// Replay-splice memo state (see memo.go). inRun and runBudgetEnd gate
	// splicing to Run's interior, where the caller observes nothing
	// between steps; memoSuspend disables the memo during RunUntil, whose
	// per-step condition a splice would jump over.
	memo         memoState
	inRun        bool   //simlint:snapexempt transient run-loop state: always false between runs, and snapshots are only taken between runs
	runBudgetEnd uint64 //simlint:snapexempt transient run-loop state: meaningful only while inRun, which snapshots never observe set
	memoSuspend  int    //simlint:snapexempt transient run-loop state: RunUntil balance counter, always zero between runs
}

// NewCore builds a core over the given physical memory.
func NewCore(cfg Config, phys *mem.PhysMem) *Core {
	cfg.validate()
	c := &Core{
		cfg:      cfg,
		phys:     phys,
		hier:     cache.NewHierarchy(cfg.Hierarchy),
		pwc:      cache.NewPWC(cfg.PWCSize),
		tlbs:     tlb.NewUnit(),
		rngState: cfg.RandSeed | 1,
	}
	for i := 0; i < cfg.Contexts; i++ {
		ctx := &Context{
			id:   i,
			core: c,
			rob:  pipeline.NewROB(cfg.ROBSize),
			bp:   pipeline.NewPredictor(cfg.BranchPredictorBits),
		}
		ctx.sched.init(cfg.ROBSize)
		c.contexts = append(c.contexts, ctx)
	}
	c.memoInit()
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Phys returns the physical memory.
func (c *Core) Phys() *mem.PhysMem { return c.phys }

// Hierarchy returns the cache subsystem.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// PWC returns the page-walk cache.
func (c *Core) PWC() *cache.PWC { return c.pwc }

// TLBs returns the TLB complex.
func (c *Core) TLBs() *tlb.Unit { return c.tlbs }

// Context returns SMT context i.
func (c *Core) Context(i int) *Context { return c.contexts[i] }

// Contexts returns the number of SMT contexts.
func (c *Core) Contexts() int { return len(c.contexts) }

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Ports exposes the shared execution-port state (diagnostics).
func (c *Core) Ports() *pipeline.PortSet { return &c.ports }

// SetFaultHandler installs the page-fault handler.
func (c *Core) SetFaultHandler(h FaultHandler) { c.faultHandler = h }

// SetTracer attaches a pipeline tracer (nil detaches). Changing the
// observation regime flushes the replay memo: records made without a
// tracer carry no events to replay, and vice versa.
func (c *Core) SetTracer(t Tracer) {
	c.MemoFlush()
	c.tracer = t
}

func (c *Core) trace(ev Event) {
	if c.tracer != nil {
		ev.Cycle = c.cycle
		if r := c.memo.rec; r != nil {
			r.events = append(r.events, ev)
		}
		c.tracer.Trace(ev)
	}
}

// FlushPageStructures removes the cached state MicroScope scrubs during
// attack setup: the line holding a page-table entry from all cache levels
// and from the PWC.
func (c *Core) FlushPageStructures(entryAddr mem.Addr) {
	c.hier.FlushAddr(entryAddr)
	c.pwc.Flush(entryAddr)
}

// FlushMicroarch is the SIMF single-instruction multi-flush: it scrubs
// every shared structure a transient window leaves a footprint in — the
// whole cache hierarchy, all TLB levels, the page-walk cache — plus the
// given context's branch predictor. The kernel invokes it on the fault
// path of a SIMF-protected process (the enclave's exception exit runs
// before the untrusted handler), so by the time the OS — or a prime+
// probe attacker riding its handler — looks, the structures are cold.
// Execution-port contention is untouched: SIMF flushes state, not
// occupancy, which is exactly the residual channel the tournament's
// port victims still leak through.
//
// Every memoized replay window fingerprints first-touch state of these
// structures, so all records are dropped rather than left to mismatch
// one probe at a time.
func (c *Core) FlushMicroarch(ctxID int) {
	c.MemoFlush()
	c.hier.FlushAll()
	c.tlbs.FlushAll()
	c.pwc.FlushAll()
	c.contexts[ctxID].bp.Flush()
}

// rdrand returns the next value of the deterministic hardware RNG
// (xorshift64*).
func (c *Core) rdrand() uint64 {
	x := c.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rngState = x
	v := x * 0x2545F4914F6CDD1D
	c.rdrandDraws++
	if len(c.rdrandLog) < rdrandLogCap {
		c.rdrandLog = append(c.rdrandLog, v)
	}
	if r := c.memo.rec; r != nil {
		r.rdrandVals = append(r.rdrandVals, v)
	}
	return v
}

// rdrandLogCap bounds the RDRAND record log: enough to cover every
// builtin experiment's draws while keeping long fuzz runs from growing a
// snapshot without bound. Draws past the cap are still counted in
// rdrandDraws.
const rdrandLogCap = 4096

// RdrandLog returns the recorded RDRAND draws (up to rdrandLogCap) and
// the total number of draws delivered.
func (c *Core) RdrandLog() ([]uint64, uint64) { return c.rdrandLog, c.rdrandDraws }

// Halted reports whether every context with a loaded program has halted.
func (c *Core) Halted() bool { return c.nHalted == c.nLoaded }

// SkippedCycles returns the total simulated cycles the fast-forward
// engine jumped over (all of them provably dead for every context).
func (c *Core) SkippedCycles() uint64 { return c.skipped }

// ctxHalt halts a context, maintaining the halted-context counter. Every
// site that sets Context.halted goes through here.
func (c *Core) ctxHalt(ctx *Context) {
	if !ctx.halted {
		ctx.halted = true
		c.nHalted++
	}
	ctx.fetchHalted = true
}

// Step advances the core by exactly one cycle. It never fast-forwards:
// external drivers that interleave their own actions with Step (SGX-Step
// style preemption loops, the Fig. 9 bench) keep cycle-by-cycle control.
func (c *Core) Step() {
	c.cycle++
	c.ports.NewCycle(c.cycle)
	c.complete()
	c.retire()
	c.issue()
	c.fetch()
}

// Run steps until all contexts halt or maxCycles elapse, returning the
// number of cycles advanced (stepped, fast-forwarded or memo-spliced).
func (c *Core) Run(maxCycles uint64) uint64 {
	start := c.cycle
	c.inRun = true
	c.runBudgetEnd = start + maxCycles
	if c.runBudgetEnd < start {
		c.runBudgetEnd = neverCycle // saturate on overflow
	}
	defer func() {
		c.inRun = false
		c.memoAbortRecording() // a window never spans Run calls
	}()
	for !c.Halted() && c.cycle-start < maxCycles {
		c.fastForward(start, maxCycles)
		if c.cycle-start >= maxCycles {
			break
		}
		c.Step()
	}
	return c.cycle - start
}

// RunUntil steps until cond returns true or maxCycles elapse, reporting
// whether cond was met. With Config.FastForward enabled, cond is only
// evaluated at cycles where the pipeline can make progress (skipped
// cycles are exact no-ops, so a cond that reads simulated state sees the
// same sequence of values; a cond keyed directly off Cycle() should run
// with fast-forward disabled).
func (c *Core) RunUntil(cond func() bool, maxCycles uint64) bool {
	c.memoSuspend++ // a splice would jump over cond evaluations
	defer func() { c.memoSuspend-- }()
	start := c.cycle
	for c.cycle-start < maxCycles {
		if cond() {
			return true
		}
		if c.Halted() {
			return cond()
		}
		c.fastForward(start, maxCycles)
		if c.cycle-start >= maxCycles {
			break
		}
		c.Step()
	}
	return cond()
}

// fastForward jumps the cycle counter to just before the earliest cycle
// at which any context can fetch, issue, complete or retire, clamped so
// the landing Step stays within the caller's cycle budget. The skipped
// cycles are provably no-ops: every context is stalled, halted, quiesced
// waiting on a known future completion/divider-free/stall-expiry cycle,
// or permanently inert — so jumping preserves exact cycle-accurate
// semantics (same retirement cycles, rdtsc values, fault timing, traces).
func (c *Core) fastForward(start, maxCycles uint64) {
	if !c.cfg.FastForward {
		return
	}
	x := c.cycle + 1 // the cycle the next Step would execute
	next := c.nextEventAt(x)
	if next <= x {
		return
	}
	// Leave one cycle of budget for the landing Step.
	maxSkip := maxCycles - (c.cycle - start) - 1
	skip := next - x
	if next == neverCycle || skip > maxSkip {
		skip = maxSkip
	}
	if skip == 0 {
		return
	}
	c.cycle += skip
	c.skipped += skip
	for _, ctx := range c.contexts {
		if ctx.prog != nil {
			ctx.stats.SkippedCycles += skip
		}
	}
}

// nextEventAt returns the earliest cycle >= x at which any pipeline stage
// could act for any context, or neverCycle when no future event is
// scheduled. A return of x means some context can act immediately and no
// cycles may be skipped.
func (c *Core) nextEventAt(x uint64) uint64 {
	next := neverCycle
	for _, ctx := range c.contexts {
		e := c.ctxNextEventAt(ctx, x)
		if e <= x {
			return x
		}
		if e < next {
			next = e
		}
	}
	return next
}

// ctxNextEventAt computes one context's earliest possible-action cycle
// >= x. It mirrors the per-stage gating conditions exactly; when in
// doubt it returns x (conservative: an extra live Step is always
// correct, a missed event never is).
func (c *Core) ctxNextEventAt(ctx *Context, x uint64) uint64 {
	if ctx.prog == nil {
		return neverCycle
	}
	next := neverCycle
	// Complete stage: runs even for stalled or halted contexts.
	if ctx.nIssued > 0 {
		if ctx.nextCompleteAt <= x {
			return x
		}
		next = ctx.nextCompleteAt
	}
	if ctx.halted {
		return next
	}
	// Retire stage: a completed or faulted head retires/delivers now
	// (retire is not gated on stalls).
	if h := ctx.rob.Head(); h != nil &&
		(h.State == pipeline.StateCompleted || h.State == pipeline.StateFaulted) {
		return x
	}
	if x < ctx.stallUntil {
		// Fetch and issue resume when the handler stall expires — unless
		// the context has nothing to resume to (ran off the end with an
		// empty pipeline).
		if !ctx.fetchHalted || ctx.rob.Len() > 0 {
			if ctx.stallUntil < next {
				next = ctx.stallUntil
			}
		}
		return next
	}
	// Issue stage: a pending scan may find work now; a quiesced context
	// wakes at its recorded retry cycle (divider-free time) or via an
	// explicit wakeIssue from the event that unblocks it.
	if ctx.nDispatched > 0 {
		if ctx.issueSleepUntil <= x {
			return x
		}
		if ctx.issueSleepUntil < next {
			next = ctx.issueSleepUntil
		}
	}
	// Fetch stage.
	if !ctx.fetchHalted && !ctx.rob.Full() && ctx.nFences == 0 &&
		!(ctx.serialize && ctx.rob.Len() > 0) {
		return x
	}
	return next
}

// ---------------------------------------------------------------------
// Complete stage
// ---------------------------------------------------------------------

func (c *Core) complete() {
	for _, ctx := range c.contexts {
		if ctx.nIssued == 0 {
			ctx.nextCompleteAt = neverCycle
			continue
		}
		// Nothing in flight finishes before nextCompleteAt; skip the walk.
		if c.cycle < ctx.nextCompleteAt {
			continue
		}
		// Pop the due completions off the heap (dropping stale nodes a
		// mid-batch rebuild orphaned). The batch lives in a per-context
		// scratch slice — allocating it fresh every cycle was a top
		// hot-loop allocation.
		s := &ctx.sched
		done := ctx.doneScratch[:0]
		for len(s.heap) > 0 {
			top := s.heap[0]
			e := ctx.rob.BySlot(top.slot)
			if e.State != pipeline.StateIssued || e.Seq != top.seq {
				s.heapPop() // stale
				continue
			}
			if top.at > c.cycle {
				break
			}
			s.heapPop()
			done = append(done, e)
		}
		ctx.doneScratch = done
		// The clean heap minimum is the exact earliest still-pending
		// completion. A mid-batch squash may remove pending issued
		// entries; recount then recomputes nextCompleteAt exactly, and
		// this (a superset minimum) can only be early, never late — so it
		// stays a sound lower bound either way.
		if len(s.heap) > 0 {
			ctx.nextCompleteAt = s.heap[0].at
		} else {
			ctx.nextCompleteAt = neverCycle
		}
		if len(done) > 0 {
			ctx.wakeIssue() // completions can make consumers issuable
		}
		// Process in seq (program) order, as the ROB walk did. The heap
		// yields (at, seq) order, which is seq order whenever the due set
		// shares one completion cycle — the insertion sort is insurance
		// for restored images with already-overdue completions.
		for i := 1; i < len(done); i++ {
			for j := i; j > 0 && done[j-1].Seq > done[j].Seq; j-- {
				done[j-1], done[j] = done[j], done[j-1]
			}
		}
		for _, e := range done {
			if e.State != pipeline.StateIssued {
				continue // squashed by an older branch this same cycle
			}
			ctx.nIssued--
			if e.Fault != nil && c.recheckFault(ctx, e) {
				e.Fault = nil // the PTE became present before the walk concluded
				if c.shadow != nil {
					c.shadow.ShadowFaultResolved(ctx, e)
				}
			}
			if e.Fault != nil {
				e.State = pipeline.StateFaulted
			} else {
				e.State = pipeline.StateCompleted
				// Wake consumers now: a later squash in this same batch
				// rebuilds from the captured flags, and a completed
				// producer never broadcasts again.
				ctx.broadcast(e)
			}
			if c.tracer != nil {
				c.trace(Event{Context: ctx.id, Kind: EvComplete, PC: e.PC, Seq: e.Seq,
					Instr: e.Instr, Walk: e.WalkCycles, Addr: e.EffAddr})
			}
			if e.Instr.Op.IsCondBranch() {
				ctx.bp.Update(e.PC, e.ActualPC == e.Instr.Target, e.Instr.Target)
			}
			if e.Mispredicted {
				ctx.bp.RecordMispredict()
				ctx.stats.Mispredicts++
				ctx.squashYounger(e.Seq)
				ctx.fetchPC = e.ActualPC
				if c.cfg.FenceAfterFlush {
					ctx.serialize = true
				}
				if c.tracer != nil {
					c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: e.PC, Seq: e.Seq,
						Instr: e.Instr, Detail: "branch mispredict"})
				}
			}
		}
	}
}

// recheckFault re-reads the page tables when a walked memory access
// completes with a pending fault. The hardware walker only consumes the
// leaf PTE at the *end* of the walk, so supervisor software that sets the
// present bit mid-walk wins the race and the access completes normally —
// the §7.2 mechanism behind the selective-replay RDRAND bias attack. It
// reports whether the fault was resolved, fixing up the entry's result.
func (c *Core) recheckFault(ctx *Context, e *pipeline.Entry) bool {
	if !e.Instr.Op.IsMem() || e.WalkCycles == 0 {
		return false
	}
	f, ok := e.Fault.(*mem.Fault)
	if !ok {
		return false
	}
	leaf, _, err := ctx.as.LeafEntry(e.EffAddr)
	if err != nil || !leaf.Present() {
		return false
	}
	if f.Write && !leaf.Writable() {
		return false
	}
	pa := leaf.PPN()<<mem.PageShift | mem.PageOffset(e.EffAddr)
	if pa+8 > c.phys.Size() {
		return false
	}
	c.tlbs.InsertData(tlb.Translation{
		VPN:   mem.PageNum(e.EffAddr),
		PPN:   leaf.PPN(),
		PCID:  ctx.as.PCID(),
		Flags: tlb.FlagsFromEntry(leaf),
	})
	e.PhysAddr = pa
	if e.Instr.Op.IsLoad() {
		if !c.cfg.InvisibleSpeculation {
			c.hier.Access(pa)
		}
		if e.Instr.Op == isa.OpLoad32 {
			e.Result = uint64(c.phys.Read32(pa))
		} else {
			e.Result = c.phys.Read64(pa)
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Retire stage
// ---------------------------------------------------------------------

func (c *Core) retire() {
	for _, ctx := range c.contexts {
	retireLoop:
		for n := 0; n < c.cfg.RetireWidth; n++ {
			head := ctx.rob.Head()
			if head == nil || ctx.halted {
				break
			}
			switch head.State {
			case pipeline.StateCompleted:
				ctx.rob.PopHead()
				ctx.wakeIssue() // head changed: a waiting rdtsc may now issue
				c.commit(ctx, head)
			case pipeline.StateFaulted:
				c.deliverFault(ctx, head)
				break retireLoop // whole pipeline flushed
			default:
				break retireLoop // head not done; stall
			}
		}
	}
}

// commit applies the architectural effects of a completed instruction.
func (c *Core) commit(ctx *Context, e *pipeline.Entry) {
	// A replay window never retires anything (fetch resumes at the
	// faulting PC and the head re-faults); any retirement means this is
	// not a pure transient window, so the recording cannot be reused.
	if c.memo.rec != nil {
		c.memoAbortRecording()
	}
	e.State = pipeline.StateRetired
	ctx.serialize = false // first post-flush retirement lifts the fence
	c.jvRetire(ctx, e.PC) // forward progress at this PC: not a replay
	ctx.stats.Retired++
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvRetire, PC: e.PC, Seq: e.Seq, Instr: e.Instr})
	}
	if c.shadow != nil {
		// Before architectural effects: an OpTxAbort below fires
		// ShadowTxAbort after the retire hook checkpointed/updated state.
		c.shadow.ShadowRetire(ctx, e)
	}

	if d := e.Instr.Dest(); d != isa.NoReg {
		ctx.regs[d] = e.Result
		if ctx.rat[d] == e {
			ctx.rat[d] = nil
		}
	}

	if ctx.isFenceActing(e.Instr.Op) {
		ctx.nFences--
	}

	if c.cfg.InvisibleSpeculation && e.Instr.Op.IsLoad() && e.PhysAddr != 0 {
		c.hier.Access(e.PhysAddr) // deferred fill of the retired load
	}

	switch e.Instr.Op {
	case isa.OpStore, isa.OpStoreF:
		// The store's write becomes visible at commit.
		c.phys.Write64(e.PhysAddr, e.Src[1].Value)
		c.hier.Access(e.PhysAddr)
		c.trackTxWrite(ctx, e.PhysAddr)
	case isa.OpStore32:
		c.phys.Write32(e.PhysAddr, uint32(e.Src[1].Value))
		c.hier.Access(e.PhysAddr)
		c.trackTxWrite(ctx, e.PhysAddr)
	case isa.OpHalt:
		c.ctxHalt(ctx)
	case isa.OpTxBegin:
		ctx.inTx = true
		ctx.txCheckpoint = ctx.regs
		ctx.txAbortPC = e.Instr.Target
		ctx.txWriteSet = make(map[mem.Addr]struct{})
	case isa.OpTxEnd:
		ctx.inTx = false
		ctx.txWriteSet = nil
	case isa.OpTxAbort:
		c.abortTx(ctx, "explicit txabort")
	}
}

// trackTxWrite records a committed store's cache line in the write set
// of an active transaction.
func (c *Core) trackTxWrite(ctx *Context, pa mem.Addr) {
	if ctx.inTx && ctx.txWriteSet != nil {
		ctx.txWriteSet[pa&^63] = struct{}{}
	}
}

// EvictLine flushes a physical line from the cache hierarchy AND aborts
// any transaction whose write set contains it — the attacker-controlled
// TSX abort trigger of §7.1. It reports whether a transaction aborted.
//
//simlint:memoexempt writes fetchHalted via squash helpers; the flag is folded into every memo fingerprint, so the write forces a miss
func (c *Core) EvictLine(pa mem.Addr) bool {
	c.hier.FlushAddr(pa)
	line := pa &^ 63
	aborted := false
	for _, ctx := range c.contexts {
		if ctx.inTx && ctx.txWriteSet != nil {
			if _, ok := ctx.txWriteSet[line]; ok {
				c.abortTx(ctx, "write-set eviction")
				aborted = true
			}
		}
	}
	return aborted
}

// abortTx rolls the context back to its transaction checkpoint and
// redirects fetch to the abort handler. AbortReg receives the cumulative
// abort count, letting handlers implement T-SGX-style thresholds.
func (c *Core) abortTx(ctx *Context, reason string) {
	if !ctx.inTx {
		return
	}
	ctx.stats.TxAborts++
	ctx.squashAll()
	ctx.regs = ctx.txCheckpoint
	ctx.regs[AbortReg] = ctx.stats.TxAborts
	ctx.fetchPC = ctx.txAbortPC
	ctx.inTx = false
	ctx.txWriteSet = nil
	if c.shadow != nil {
		c.shadow.ShadowTxAbort(ctx)
	}
	c.trace(Event{Context: ctx.id, Kind: EvTxAbort, PC: ctx.txAbortPC, Detail: reason})
}

// Preempt delivers a precise external interrupt to a context: in-flight
// work is squashed, the context spends handlerLatency cycles in the
// (simulated) kernel, and execution resumes at the oldest unretired
// instruction. This is the timer-interrupt primitive SGX-Step-style
// attacks [57] use to single-step a victim — one of the noisy baselines
// of Table 1.
//
//simlint:memoexempt writes fetchPC/fetchHalted/serialize/stallUntil, all folded into every memo fingerprint, so a preempt forces a miss
func (c *Core) Preempt(ctxID int, handlerLatency uint64) {
	ctx := c.contexts[ctxID]
	if ctx.inTx {
		// An interrupt aborts a transaction, as on real TSX.
		c.abortTx(ctx, "interrupt")
		ctx.stallUntil = c.cycle + handlerLatency
		ctx.stats.StallCycles += handlerLatency
		return
	}
	if head := ctx.rob.Head(); head != nil {
		ctx.fetchPC = head.PC
	}
	// Seq 0 marks a whole-pipeline flush: everything in flight is younger.
	if c.tracer != nil && ctx.rob.Len() > 0 {
		c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: ctx.fetchPC, Detail: "preempt"})
	}
	ctx.squashAll()
	if c.cfg.FenceAfterFlush {
		ctx.serialize = true
	}
	ctx.stallUntil = c.cycle + handlerLatency
	ctx.stats.StallCycles += handlerLatency
}

// AbortTx aborts the context's transaction from outside the pipeline
// (attacker-induced: write-set eviction, interrupt, ...). It reports
// whether a transaction was active.
//
//simlint:memoexempt writes fetchPC/fetchHalted via the abort path, both folded into every memo fingerprint, so an abort forces a miss
func (c *Core) AbortTx(ctxID int, reason string) bool {
	ctx := c.contexts[ctxID]
	if !ctx.inTx {
		return false
	}
	c.abortTx(ctx, reason)
	return true
}

// deliverFault implements precise exception delivery: squash everything,
// run the (simulated) OS handler, stall for its latency, and resume at the
// faulting instruction.
//
// The loop below is the replay memo's splice point. Each fault boundary
// first closes any window being recorded (memoWindowEnd), then runs the
// handler live. If the memo holds a record whose fingerprint matches the
// post-handler state, the entire transient window up to the *next* fault
// is spliced in and the loop continues with that fault — replaying
// thousands of MicroScope replay iterations without simulating them.
func (c *Core) deliverFault(ctx *Context, e *pipeline.Entry) {
	// A fault inside a transaction aborts the transaction instead of
	// trapping to the OS — the TSX behaviour T-SGX builds on (§8). The
	// Jamais Vu detector still counts it: the faulting PC is flushed
	// without retiring whether the flush traps or aborts, and hiding
	// faults from the OS is exactly the evasion the hardware counters
	// exist to catch.
	if ctx.inTx {
		c.memoAbortRecording()
		c.jvFault(ctx, e.PC)
		c.abortTx(ctx, fmt.Sprintf("page fault in tx at pc=%d", e.PC))
		return
	}

	pf := c.faultPre(ctx, e)
	c.memoWindowEnd(ctx, pf)
	for {
		if c.faultHandler == nil {
			c.ctxHalt(ctx)
			return
		}
		out := c.faultHandler.HandlePageFault(pf)
		if out.Terminate {
			c.ctxHalt(ctx)
			return
		}
		ctx.stallUntil = c.cycle + out.HandlerLatency
		ctx.stats.StallCycles += out.HandlerLatency
		next, spliced := c.memoResume(ctx, pf)
		if !spliced {
			return
		}
		pf = next
	}
}

// faultPre applies the engine-side effects of fault delivery (squash,
// fetch redirect, fault event) and builds the PageFault, leaving only
// the handler call to the caller.
func (c *Core) faultPre(ctx *Context, e *pipeline.Entry) PageFault {
	ctx.stats.PageFaults++
	c.jvFault(ctx, e.PC)
	ctx.squashAll()
	ctx.fetchPC = e.PC
	if c.cfg.FenceAfterFlush {
		ctx.serialize = true
	}

	f, _ := e.Fault.(*mem.Fault)
	if f == nil {
		f = &mem.Fault{VA: e.EffAddr, Level: mem.PTE}
	}
	pf := PageFault{
		Context: ctx.id,
		PC:      e.PC,
		VA:      f.VA,
		Write:   f.Write,
		Level:   f.Level,
		Instr:   e.Instr,
	}
	c.trace(Event{Context: ctx.id, Kind: EvFault, PC: e.PC, Seq: e.Seq, Instr: e.Instr,
		Walk: e.WalkCycles, Addr: f.VA, Detail: f.Error()})
	return pf
}

// ---------------------------------------------------------------------
// Issue stage
// ---------------------------------------------------------------------

func (c *Core) issue() {
	budget := c.cfg.IssueWidth
	// Alternate context priority cycle by cycle for SMT fairness. The
	// rotation wraps by compare, not modulo: the divide showed up in
	// profiles at two-digit percent on port-contention workloads.
	n := len(c.contexts)
	idx := int(c.cycle % uint64(n))
	for i := 0; i < n; i++ {
		ctx := c.contexts[idx]
		if idx++; idx == n {
			idx = 0
		}
		if budget == 0 {
			break
		}
		if ctx.Stalled(c.cycle) || ctx.nDispatched == 0 {
			continue
		}
		// Quiesced: the last full pass proved nothing becomes issuable
		// before issueSleepUntil without an intervening wakeIssue event
		// (completion, retirement, dispatch, squash).
		if c.cycle < ctx.issueSleepUntil {
			continue
		}
		budget = c.issueCtx(ctx, budget)
	}
}

// issueCtx runs one context's issue pass: an in-seq-order merge of the
// per-class ready lists, visiting only entries whose operands are
// captured, instead of the ROB scan it replaces — with a full ROB
// blocked behind the non-pipelined divider, that scan was the hottest
// loop in the simulator. The selection order (and so the port-claim
// order, timing and trace) is identical: the old scan visited ready
// entries in ROB order, which is seq order, and a structural failure is
// class-uniform with no side effects, so parking a failed class skips
// only attempts that were guaranteed to fail identically. It returns the
// remaining issue budget.
func (c *Core) issueCtx(ctx *Context, budget int) int {
	s := &ctx.sched
	startGen := s.gen
	// The RDTSC head-wait queue merges as a pseudo-class: only its front
	// can be at the ROB head, and the head cannot change mid-pass (PopHead
	// runs at retirement, squashes bump gen), so one failed headness check
	// parks the queue for the rest of the pass. A parked non-head front
	// contributes nothing to retryAt — retirement wakes it via wakeIssue —
	// exactly like the skip the old per-entry check performed.
	const qCls = int(pipeline.NumPortClasses)
	var cur [pipeline.NumPortClasses]int
	var blocked [pipeline.NumPortClasses + 1]bool
	curQ := 0
	retryAt := uint64(neverCycle)
	for budget > 0 && ctx.nDispatched > 0 {
		// Find the oldest valid ready head among the unparked classes.
		best := -1
		bestSeq := uint64(neverCycle)
		for cls := range s.ready {
			if blocked[cls] {
				continue
			}
			list := s.ready[cls]
			j := cur[cls]
			for j < len(list) {
				re := ctx.rob.BySlot(list[j].slot)
				if re.Seq == list[j].seq && re.State == pipeline.StateDispatched {
					break
				}
				j++ // stale: issued earlier, or the slot was recycled
			}
			cur[cls] = j
			if j < len(list) && list[j].seq < bestSeq {
				best, bestSeq = cls, list[j].seq
			}
		}
		if !blocked[qCls] {
			q := s.rdtscQ
			j := curQ
			for j < len(q) {
				re := ctx.rob.BySlot(q[j].slot)
				if re.Seq == q[j].seq && re.State == pipeline.StateDispatched {
					break
				}
				j++
			}
			curQ = j
			if j < len(q) {
				if ctx.rob.Head() != ctx.rob.BySlot(q[j].slot) {
					blocked[qCls] = true
				} else if q[j].seq < bestSeq {
					best, bestSeq = qCls, q[j].seq
				}
			}
		}
		if best < 0 {
			break // full coverage: nothing ready outside parked classes
		}
		var e *pipeline.Entry
		if best == qCls {
			e = ctx.rob.BySlot(s.rdtscQ[curQ].slot)
		} else {
			e = ctx.rob.BySlot(s.ready[best][cur[best]].slot)
		}
		if ok, at := c.tryIssueEntry(ctx, e); ok {
			budget--
			if best == qCls {
				curQ++
			} else {
				cur[best]++
			}
			if s.gen != startGen {
				// Mid-pass squash (memory-order violation): the ready
				// lists were rebuilt and everything younger is gone;
				// every older ready entry was already tried, so the pass
				// is complete. The sleep rule below still applies — the
				// squash redirected fetch, and the resulting dispatch
				// wakes the scan again, so overwriting recount's wake is
				// sound (same argument as the old scan).
				break
			}
		} else {
			blocked[best] = true
			if at < retryAt {
				retryAt = at
			}
		}
	}
	if budget == 0 && ctx.nDispatched > 0 {
		// Pass may have stopped early: rescan next cycle.
		ctx.issueSleepUntil = c.cycle + 1
	} else {
		// Full coverage: every still-dispatched entry is either
		// port-blocked until retryAt or waiting on an event that fires
		// wakeIssue.
		ctx.issueSleepUntil = retryAt
	}
	// Drop consumed refs from the list fronts so they are not re-skipped
	// on every later pass.
	// Compaction copies down in place rather than re-slicing, which would
	// bleed capacity off the front and feed every later append through
	// the allocator.
	for cls := range s.ready {
		list := s.ready[cls]
		j := 0
		for j < len(list) {
			re := ctx.rob.BySlot(list[j].slot)
			if re.Seq == list[j].seq && re.State == pipeline.StateDispatched {
				break
			}
			j++
		}
		if j > 0 {
			s.ready[cls] = list[:copy(list, list[j:])]
		}
	}
	{
		q := s.rdtscQ
		j := 0
		for j < len(q) {
			re := ctx.rob.BySlot(q[j].slot)
			if re.Seq == q[j].seq && re.State == pipeline.StateDispatched {
				break
			}
			j++
		}
		if j > 0 {
			s.rdtscQ = q[:copy(q, q[j:])]
		}
	}
	return budget
}

// occupancyOf returns, without side effects, the functional-unit occupancy
// of e. Only the (non-pipelined) divider uses it, so it is exact for div
// ops and irrelevant elsewhere. The FDiv subnormal classification is
// cached per dynamic instruction: operands are final once captured, and
// a ready divide blocked on the busy divider retries many times.
func (c *Core) occupancyOf(ctx *Context, e *pipeline.Entry) uint64 {
	switch e.Instr.Op {
	case isa.OpDiv:
		return uint64(c.cfg.DivLat)
	case isa.OpFDiv:
		s := &ctx.sched
		if s.occSeq[e.Slot] == e.Seq {
			return s.occVal[e.Slot]
		}
		lat := c.cfg.FDivLat
		fa := math.Float64frombits(e.Src[0].Value)
		fb := math.Float64frombits(e.Src[1].Value)
		if isSubnormal(fa) || isSubnormal(fb) || isSubnormal(fa/fb) {
			lat += c.cfg.SubnormalPenalty
		}
		s.occSeq[e.Slot] = e.Seq
		s.occVal[e.Slot] = uint64(lat)
		return uint64(lat)
	default:
		return 1
	}
}

// transmitCapable reports whether op can transmit information through
// the microarchitecture while speculative — a cache/TLB footprint
// (loads), non-pipelined divider occupancy (divides), or an RNG draw
// (RDRAND) — the ops Config.DelaySpeculative holds at issue.
func transmitCapable(op isa.Op) bool {
	return op.IsLoad() || op == isa.OpDiv || op == isa.OpFDiv || op == isa.OpRdrand
}

// nonSpeculative reports whether e is no longer speculative: every
// older entry in the context's ROB has completed. A completed older
// branch has already acted on any misprediction (the complete stage
// squashes before issue sees the survivor), so completion of all elders
// means no older control or fault hazard can flush e.
func (ctx *Context) nonSpeculative(e *pipeline.Entry) bool {
	for _, o := range ctx.rob.Entries() {
		if o.Seq >= e.Seq {
			return true
		}
		if o.State != pipeline.StateCompleted {
			return false
		}
	}
	return true
}

// tryIssueEntry attempts to start executing e, reporting success. On
// failure it also returns the earliest cycle a retry could succeed
// (neverCycle when only a wakeIssue event — retirement for a non-head
// rdtsc — can unblock it). The port is claimed before execute runs so
// that a structural hazard leaves no side effects (the entry retries).
func (c *Core) tryIssueEntry(ctx *Context, e *pipeline.Entry) (bool, uint64) {
	op := e.Instr.Op

	// RDTSC reads the cycle counter at the ROB head only (serialized, as
	// in the rdtscp+fence idiom attack code uses), so monitor timing
	// measurements are well ordered.
	if op == isa.OpRdtsc && ctx.rob.Head() != e {
		return false, neverCycle // retirement pops the head and wakes us
	}

	// Sakalis-style selective delay (Config.DelaySpeculative): a
	// transmit-capable op issues only once it is non-speculative, i.e.
	// every older entry in the ROB has completed. The completion or
	// retirement that changes its speculation status fires wakeIssue, so
	// a held entry retries exactly when the answer can change; an older
	// entry that faults instead squashes the held one with the rest of
	// the pipeline.
	if c.cfg.DelaySpeculative && transmitCapable(op) && !ctx.nonSpeculative(e) {
		return false, neverCycle
	}

	// Optimistic memory disambiguation: a load forwards from the youngest
	// older issued store to the same address; older stores with unknown
	// addresses are speculated past (no-alias prediction). A store that
	// later discovers a younger already-executed load to its address
	// triggers a memory-order-violation squash below — itself one of the
	// §7 replay mechanisms.
	var forward *pipeline.Entry
	if op.IsLoad() {
		va := e.Src[0].Value + uint64(e.Instr.Imm)
		for _, se := range ctx.rob.Entries() {
			if se.Seq >= e.Seq {
				break
			}
			if se.Instr.Op.IsStore() && se.State != pipeline.StateDispatched &&
				se.EffAddr == va {
				forward = se // youngest older match wins
			}
		}
	}

	port, ok := c.ports.TryIssue(op, c.occupancyOf(ctx, e))
	if !ok {
		// Structural hazard (e.g. divider busy: contention).
		return false, c.ports.RetryAt(op)
	}
	lat, result, fault, effAddr, physAddr, walk := c.execute(ctx, e, forward)
	e.State = pipeline.StateIssued
	ctx.nDispatched--
	ctx.nIssued++
	e.CompleteAt = c.cycle + uint64(lat)
	if e.CompleteAt < ctx.nextCompleteAt {
		ctx.nextCompleteAt = e.CompleteAt
	}
	ctx.sched.heapPush(compNode{at: e.CompleteAt, seq: e.Seq, slot: e.Slot})
	e.Result = result
	e.Fault = fault
	e.EffAddr = effAddr
	e.PhysAddr = physAddr
	e.WalkCycles = walk
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvIssue, PC: e.PC, Seq: e.Seq,
			Instr: e.Instr, Walk: e.WalkCycles, Port: port, Addr: e.EffAddr})
	}
	if c.shadow != nil {
		c.shadow.ShadowIssue(ctx, e, forward)
	}

	// Memory-order violation: this store's address matches a younger load
	// that already executed with (possibly stale) memory data. Squash and
	// re-fetch everything younger than the store.
	if op.IsStore() && fault == nil {
		violated := false
		for _, ye := range ctx.rob.Entries() {
			if ye.Seq > e.Seq && ye.Instr.Op.IsLoad() &&
				ye.State != pipeline.StateDispatched && ye.EffAddr == effAddr {
				violated = true
				break
			}
		}
		if violated {
			ctx.stats.MemOrderViolations++
			ctx.squashYounger(e.Seq)
			ctx.fetchPC = e.PC + 1
			if c.tracer != nil {
				c.trace(Event{Context: ctx.id, Kind: EvSquash, PC: e.PC, Seq: e.Seq,
					Instr: e.Instr, Detail: "memory order violation"})
			}
		}
	}
	return true, 0
}

// execute computes an instruction's latency, result and memory effects.
// Functional effects on the cache/TLB/PWC state happen here (issue time);
// architectural effects happen at commit. forward, when non-nil, is the
// store-buffer entry a load forwards its data from.
func (c *Core) execute(ctx *Context, e *pipeline.Entry, forward *pipeline.Entry) (lat int, result uint64, fault error, effAddr, physAddr mem.Addr, walkCycles int) {
	if r := c.memo.rec; r != nil && ctx == r.ctx {
		// Track absolute-timestamp taint for the window being recorded
		// (may abort the recording; never changes execution).
		c.memoTaintExec(r, e, forward)
	}
	in := e.Instr
	a, b := e.Src[0].Value, e.Src[1].Value
	lat = c.cfg.ALULat

	switch in.Op {
	case isa.OpNop, isa.OpFence, isa.OpTxBegin, isa.OpTxEnd, isa.OpTxAbort, isa.OpHalt:
	case isa.OpMovImm, isa.OpFLoadImm:
		result = uint64(in.Imm)
	case isa.OpMov, isa.OpFMov:
		result = a
	case isa.OpAdd:
		result = a + b
	case isa.OpAddImm:
		result = a + uint64(in.Imm)
	case isa.OpSub:
		result = a - b
	case isa.OpAnd:
		result = a & b
	case isa.OpAndImm:
		result = a & uint64(in.Imm)
	case isa.OpOr:
		result = a | b
	case isa.OpXor:
		result = a ^ b
	case isa.OpShl:
		result = a << (b & 63)
	case isa.OpShlImm:
		result = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		result = a >> (b & 63)
	case isa.OpShrImm:
		result = a >> (uint64(in.Imm) & 63)
	case isa.OpMul:
		result = a * b
		lat = c.cfg.MulLat
	case isa.OpDiv:
		if b != 0 {
			result = a / b
		}
		lat = c.cfg.DivLat
	case isa.OpFAdd:
		result = math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		lat = c.cfg.FAddLat
	case isa.OpFMul:
		result = math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		lat = c.cfg.MulLat
	case isa.OpFDiv:
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		q := fa / fb
		result = math.Float64bits(q)
		lat = c.cfg.FDivLat
		if isSubnormal(fa) || isSubnormal(fb) || isSubnormal(q) {
			lat += c.cfg.SubnormalPenalty
		}
	case isa.OpRdtsc:
		result = c.cycle
	case isa.OpRdrand:
		result = c.rdrand()
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp:
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = int64(a) < int64(b)
		case isa.OpBge:
			taken = int64(a) >= int64(b)
		case isa.OpJmp:
			taken = true
		}
		if taken {
			e.ActualPC = in.Target
		} else {
			e.ActualPC = e.PC + 1
		}
		e.Mispredicted = e.ActualPC != e.PredictedPC
	case isa.OpLoad, isa.OpLoad32, isa.OpLoadF:
		effAddr = a + uint64(in.Imm)
		res := c.translate(ctx, effAddr, false)
		lat, walkCycles = res.latency, res.walkCycles
		if res.fault != nil {
			fault = res.fault
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		physAddr = res.pa
		if physAddr+8 > c.phys.Size() {
			fault = &mem.Fault{VA: effAddr, Level: mem.PTE}
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		if forward != nil {
			// Store-to-load forwarding: data comes from the store buffer
			// at L1-hit cost, without touching the cache hierarchy.
			lat += c.cfg.Hierarchy.L1D.Latency
			result = forward.Src[1].Value
			if in.Op == isa.OpLoad32 {
				result = uint64(uint32(result))
			}
			break
		}
		if c.cfg.InvisibleSpeculation {
			// InvisiSpec-style: the speculative load reads around the
			// cache without filling it; the fill happens at commit.
			plat, _ := c.hier.Probe(physAddr)
			lat += plat
		} else {
			lat += c.dataAccess(physAddr)
		}
		if in.Op == isa.OpLoad32 {
			result = uint64(c.phys.Read32(physAddr))
		} else {
			result = c.phys.Read64(physAddr)
		}
	case isa.OpStore, isa.OpStore32, isa.OpStoreF:
		effAddr = a + uint64(in.Imm)
		res := c.translate(ctx, effAddr, true)
		lat, walkCycles = res.latency, res.walkCycles
		if res.fault != nil {
			fault = res.fault
			return lat, 0, fault, effAddr, 0, walkCycles
		}
		physAddr = res.pa
		if physAddr+8 > c.phys.Size() {
			fault = &mem.Fault{VA: effAddr, Level: mem.PTE, Write: true}
		}
	default:
		// Unreachable for loaded programs: Context.LoadProgram runs
		// static.Validate, which rejects any opcode outside the
		// execute switch before it can be fetched.
		panic(fmt.Sprintf("cpu: execute: unhandled op %s (program bypassed LoadProgram validation)", in.Op))
	}
	if lat <= 0 {
		lat = 1
	}
	lat += c.jitter()
	return lat, result, fault, effAddr, physAddr, walkCycles
}

func isSubnormal(f float64) bool {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return false
	}
	return math.Abs(f) < 2.2250738585072014e-308 // smallest normal float64
}

// ---------------------------------------------------------------------
// Fetch/dispatch stage
// ---------------------------------------------------------------------

func (c *Core) fetch() {
	for _, ctx := range c.contexts {
		if ctx.halted || ctx.fetchHalted || ctx.prog == nil || ctx.Stalled(c.cycle) {
			continue
		}
		for n := 0; n < c.cfg.FetchWidth; n++ {
			if ctx.rob.Full() || ctx.nFences > 0 {
				break
			}
			if ctx.serialize && ctx.rob.Len() > 0 {
				break // post-flush fence: one instruction at a time
			}
			if ctx.fetchPC < 0 || ctx.fetchPC >= ctx.prog.Len() {
				ctx.fetchHalted = true
				break
			}
			in := ctx.prog.At(ctx.fetchPC)
			e := c.dispatch(ctx, in, ctx.fetchPC)

			switch {
			case in.Op == isa.OpHalt:
				ctx.fetchHalted = true
				n = c.cfg.FetchWidth
			case in.Op == isa.OpJmp:
				e.PredictedPC = in.Target
				ctx.fetchPC = in.Target
			case in.Op.IsCondBranch():
				// Branches carry their target, so only the direction is
				// predicted (no BTB dependence for direct branches).
				taken := ctx.bp.PredictDirection(e.PC)
				if taken {
					e.PredictedPC = in.Target
				} else {
					e.PredictedPC = e.PC + 1
				}
				e.PredictedTaken = taken
				ctx.fetchPC = e.PredictedPC
			default:
				ctx.fetchPC++
			}
		}
	}
}

// dispatch allocates and enqueues a ROB entry for in at pc, capturing
// operand values eagerly: from the register file, or from a producer
// whose result is already final; operands still in flight are linked
// into the producer's waiter list for capture at its completion
// broadcast.
func (c *Core) dispatch(ctx *Context, in isa.Instr, pc int) *pipeline.Entry {
	c.seq++
	e := ctx.rob.Alloc()
	e.Seq = c.seq
	e.PC = pc
	e.Instr = in
	e.State = pipeline.StateDispatched
	e.Context = ctx.id
	srcs := in.Sources()
	for i, r := range srcs {
		if r == isa.NoReg {
			e.Src[i] = pipeline.Operand{Ready: true}
			continue
		}
		if prod := ctx.rat[r]; prod != nil {
			if prod.State == pipeline.StateCompleted {
				// The producer's result is final; capture now, keeping the
				// link as provenance. (An issued-but-incomplete producer's
				// result exists too, but capturing it here would make the
				// consumer issuable before the completion broadcast —
				// operand readiness must track completion, as the ROB walk
				// this replaces did.)
				e.Src[i] = pipeline.Operand{Ready: true, Value: prod.Result, Producer: prod}
				if c.shadow != nil {
					e.PendShadow[i] = prod.Shadow
				}
			} else {
				e.Src[i] = pipeline.Operand{Producer: prod}
			}
		} else {
			e.Src[i] = pipeline.Operand{Ready: true, Value: ctx.regs[r]}
		}
	}
	if d := in.Dest(); d != isa.NoReg {
		ctx.rat[d] = e
	}
	ctx.rob.Push(e)
	ctx.nDispatched++
	ctx.schedDispatch(e)
	if c.shadow != nil {
		c.shadow.ShadowDispatch(ctx, e)
	}
	ctx.wakeIssue() // a fresh entry may be issuable before the quiesce expiry
	if ctx.isFenceActing(in.Op) {
		ctx.nFences++
	}
	ctx.stats.Fetched++
	if c.tracer != nil {
		c.trace(Event{Context: ctx.id, Kind: EvFetch, PC: pc, Seq: e.Seq, Instr: in})
	}
	return e
}
