// Package cpu implements the cycle-level simulated processor core: an
// out-of-order, SMT-capable engine with a reorder buffer, shared execution
// ports (including a non-pipelined divider), TLBs backed by a hardware
// page walker that fetches page-table entries through the cache hierarchy,
// precise exceptions, and branch prediction.
//
// It reproduces the microarchitectural contract MicroScope exploits
// (paper §2.2): on a TLB miss the core continues fetching and executing
// younger instructions during the hardware page walk; if the walk ends in
// a page fault, the fault is raised only when the faulting instruction
// reaches the head of the ROB, at which point all younger (speculatively
// executed) instructions are squashed and the core resumes at the faulting
// instruction after the OS handler returns — replaying everything after
// the replay handle.
package cpu

import "microscope/sim/cache"

// Config parameterizes a core. DefaultConfig approximates the paper's
// Intel Xeon E5-1630 v3 (Haswell) at the fidelity the attacks need.
type Config struct {
	// Contexts is the number of SMT hardware contexts sharing the core.
	Contexts int
	// ROBSize is the reorder-buffer capacity per context (SMT cores
	// statically partition the physical ROB).
	ROBSize int
	// FetchWidth / IssueWidth / RetireWidth are per-cycle limits.
	FetchWidth  int
	IssueWidth  int
	RetireWidth int

	// Execution latencies, in cycles.
	ALULat  int
	MulLat  int
	FAddLat int
	DivLat  int // integer divide (non-pipelined occupancy)
	FDivLat int // FP divide (non-pipelined occupancy)
	// SubnormalPenalty is added to FDivLat when an operand or the result
	// is subnormal — the microcode-assist latency the FPU subnormal
	// attack [7] measures and Fig. 5 targets.
	SubnormalPenalty int

	// Translation latencies.
	TLBL1Lat int // L1 TLB hit
	TLBL2Lat int // L2 TLB hit (additional)
	PWCLat   int // page-walk-cache hit per level
	PWCSize  int // entries

	// FencedRdrand models the fence Intel ships inside RDRAND (§7.2):
	// when true, no younger instruction dispatches until RDRAND retires,
	// defeating the replay-bias attack.
	FencedRdrand bool

	// FenceAfterFlush models the paper's first §8 countermeasure: after
	// every pipeline flush (fault or mispredict), an implicit fence keeps
	// younger instructions from dispatching until the re-fetched
	// instruction retires — so a replay window contains only the handle.
	FenceAfterFlush bool

	// InvisibleSpeculation models InvisiSpec/SafeSpec-style defenses
	// (§8): speculative loads do not modify the cache hierarchy; the fill
	// happens at retirement. Squashed (transient) loads therefore leave
	// no cache footprint — but contention channels remain (the paper's
	// criticism of these schemes).
	InvisibleSpeculation bool

	// SquashThreshold enables the Jamais Vu-style replay detector (see
	// jamaisvu.go): each context counts, per PC, how many times the
	// instruction at that PC was flushed by a fault without retiring;
	// reaching SquashThreshold raises a replay alarm
	// (ContextStats.ReplayAlarms). A retirement of the PC clears its
	// counter, so benign code that faults once per demand page never
	// accumulates. Zero disables the detector. Enabling it self-gates
	// the replay memo: the counters are fingerprint-invisible state, so
	// no window is ever spliced while the detector runs (see memoUsable).
	SquashThreshold int
	// SquashEpoch is the epoch length, in cycles, of the Jamais Vu
	// counters: when the cycle counter crosses an epoch boundary the
	// context's counters clear (lazily, at the next counted fault), so
	// fault bursts far apart in time never sum to an alarm. Zero means
	// counters persist until their PC retires.
	SquashEpoch uint64

	// DelaySpeculative models Sakalis-style selective delay of
	// speculative instructions: transmit-capable ops (loads,
	// integer/FP divides, RDRAND) issue only once every older
	// instruction in the context's ROB has completed — i.e. once they
	// are no longer speculative. A MicroScope replay window then carries
	// no microarchitectural transmit: the faulting handle never
	// completes, so nothing after it issues.
	DelaySpeculative bool

	// BranchPredictorBits sizes the per-context predictor (2^bits
	// entries).
	BranchPredictorBits int

	// RandSeed seeds the deterministic RDRAND source.
	RandSeed uint64

	// FastForward enables event-driven stall skipping: when no context
	// can fetch, issue, complete or retire this cycle, Run/RunUntil jump
	// the cycle counter straight to the earliest next-event cycle
	// (handler-stall expiry, instruction completion, divider-free time)
	// instead of stepping through provably idle cycles one by one. The
	// skipped cycles are exact no-ops, so all architectural and
	// microarchitectural state — retirement cycles, rdtsc values, fault
	// timing, traces — is bit-identical with the flag off (proved by the
	// differential test in attack/experiments). Step() is always
	// single-cycle regardless. DefaultConfig enables it.
	FastForward bool

	// ReplayMemo enables the replay-splice cache: at each page-fault
	// boundary inside Run, the core fingerprints the machine state a
	// transient window can depend on and, on a match with a previously
	// recorded window, splices its memoized outcome (cycles, trace
	// events, stats, cache/TLB/predictor mutations) instead of
	// re-simulating it. Fault handlers always run live, so replay
	// counting and PTE manipulation stay exact; see sim/cpu/memo.go for
	// the fingerprint and invalidation model. Traces, stats and final
	// state are bit-identical with the flag off (proved by the memo
	// differential tests). DefaultConfig enables it; zero-value Configs
	// leave it off.
	ReplayMemo bool

	// JitterPeriod/JitterExtra inject deterministic timing noise: every
	// JitterPeriod-th executed instruction takes JitterExtra additional
	// cycles (DRAM refresh, prefetcher interference, SMIs, ...). Zero
	// disables. The Fig. 10 experiments enable it so the "quiet"
	// distribution has the rare outliers the paper reports (4 of 10,000
	// samples).
	JitterPeriod int
	JitterExtra  int

	// Hierarchy configures the cache subsystem.
	Hierarchy cache.HierarchyConfig
}

// DefaultConfig returns the baseline configuration used across the
// experiments.
func DefaultConfig() Config {
	return Config{
		Contexts:            2,
		ROBSize:             192,
		FetchWidth:          4,
		IssueWidth:          6,
		RetireWidth:         4,
		ALULat:              1,
		MulLat:              3,
		FAddLat:             4,
		DivLat:              24,
		FDivLat:             24,
		SubnormalPenalty:    120,
		TLBL1Lat:            1,
		TLBL2Lat:            7,
		PWCLat:              1,
		PWCSize:             32,
		BranchPredictorBits: 10,
		RandSeed:            0x5ca1ab1e,
		FastForward:         true,
		ReplayMemo:          true,
		Hierarchy:           cache.DefaultHierarchyConfig(),
	}
}

func (c Config) validate() {
	switch {
	case c.Contexts <= 0:
		panic("cpu: Contexts must be positive")
	case c.ROBSize <= 0:
		panic("cpu: ROBSize must be positive")
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0:
		panic("cpu: pipeline widths must be positive")
	case c.DivLat <= 0 || c.FDivLat <= 0:
		panic("cpu: divider latencies must be positive")
	}
}
