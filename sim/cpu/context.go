package cpu

import (
	"fmt"

	"microscope/analysis/static"
	"microscope/sim/isa"
	"microscope/sim/mem"
	"microscope/sim/pipeline"
)

// AbortReg is the integer register that receives the abort count when a
// transaction aborts (the simulated analogue of EAX holding the TSX abort
// status).
const AbortReg = isa.R15

// ContextStats aggregates per-context event counts.
type ContextStats struct {
	Fetched            uint64
	Retired            uint64
	Squashed           uint64
	PageFaults         uint64 // precise faults delivered (replays observed by the victim)
	TxAborts           uint64
	Mispredicts        uint64
	MemOrderViolations uint64
	StallCycles        uint64 // cycles spent in the (simulated) kernel fault handler
	// SkippedCycles counts simulated cycles the fast-forward engine
	// jumped over while this context had a program loaded (the cycles
	// were provably dead for every context; see Config.FastForward).
	SkippedCycles uint64
	// ReplayAlarms counts Jamais Vu replay-detector trips (see
	// Config.SquashThreshold and jamaisvu.go); always zero while the
	// detector is disabled.
	ReplayAlarms uint64
}

// Context is one SMT hardware context: architectural registers, a fetch
// engine with a branch predictor, and a private ROB partition. Execution
// ports, caches, TLBs and the page walker are shared core-level resources.
type Context struct {
	id   int
	core *Core

	as   *mem.AddressSpace
	prog *isa.Program

	regs [isa.NumRegs]uint64

	rob *pipeline.ROB
	rat [isa.NumRegs]*pipeline.Entry
	bp  *pipeline.Predictor

	fetchPC     int
	fetchHalted bool
	halted      bool
	stallUntil  uint64 // fetch/dispatch suppressed until this cycle
	// serialize implements Config.FenceAfterFlush: set after a pipeline
	// flush; while set, at most one instruction may be in flight.
	serialize bool

	// Transaction state (simplified TSX: registers and PC roll back on
	// abort; memory writes are not buffered — the replay experiments do
	// not depend on memory rollback).
	inTx         bool
	txCheckpoint [isa.NumRegs]uint64
	txAbortPC    int
	// txWriteSet records the physical cache lines written inside the
	// current transaction; evicting one aborts the transaction, the TSX
	// property §7.1 exploits ("will abort a transaction if dirty data is
	// evicted from the private cache, which can be easily controlled by
	// an attacker").
	txWriteSet map[mem.Addr]struct{}

	// Derived counters kept in sync with ROB contents to avoid O(ROB)
	// scans per cycle. Recomputed after squashes by recount.
	nDispatched int // entries in StateDispatched
	nIssued     int // entries in StateIssued
	nFences     int // unretired fence-acting entries

	// Next-event state for the complete-stage skip and the issue-scan
	// quiesce (and, through them, core-level fast-forward).
	//
	// nextCompleteAt is a lower bound on the earliest CompleteAt among
	// issued entries (exact after every complete-stage walk and recount;
	// only ever early after a mid-walk squash, never late). The complete
	// stage does no ROB walk before that cycle.
	//
	// issueSleepUntil is the earliest cycle at which an issue scan could
	// find work, given that the last full scan issued nothing: ready
	// entries blocked on the busy divider retry at its free cycle;
	// entries waiting on operands or on rdtsc-at-head are woken
	// explicitly (wakeIssue) by the completion, retirement, dispatch or
	// squash that unblocks them. Zero means "scan now".
	nextCompleteAt  uint64
	issueSleepUntil uint64

	// doneScratch is the reusable completion batch of the complete
	// stage; collecting into a fresh slice every cycle was a measurable
	// share of hot-loop allocations.
	doneScratch []*pipeline.Entry

	// sched is the event-driven scheduler state (ready lists, completion
	// heap, waiter links) derived from the ROB; see sched.go.
	sched schedState

	// progEpoch counts program (re)loads. The replay memo folds it into
	// window fingerprints so records never survive a program swap that
	// happens to reuse the same PCs.
	progEpoch uint64

	// Jamais Vu replay-detector state (Config.SquashThreshold; see
	// jamaisvu.go): fault-squash counts per PC, and the epoch index the
	// counts belong to (lazy epoch clearing).
	jvCounts map[int]uint32
	jvEpoch  uint64

	stats ContextStats
}

// neverCycle is the "no scheduled event" sentinel for nextCompleteAt and
// issueSleepUntil.
const neverCycle = ^uint64(0)

// wakeIssue forces the next issue stage to rescan this context's ROB.
// Call it whenever an event may have made a dispatched entry issuable:
// a completion (operands become ready), a retirement (rdtsc issues only
// at the ROB head), a dispatch, or a squash.
func (ctx *Context) wakeIssue() { ctx.issueSleepUntil = 0 }

// ID returns the context index within its core.
func (ctx *Context) ID() int { return ctx.id }

// SetAddressSpace binds the context to an address space (CR3 write).
//
//simlint:memoexempt as identity (Root/PCID) is folded into every memo fingerprint, so a rebind forces a miss, never a stale splice
func (ctx *Context) SetAddressSpace(as *mem.AddressSpace) { ctx.as = as }

// AddressSpace returns the bound address space.
func (ctx *Context) AddressSpace() *mem.AddressSpace { return ctx.as }

// LoadProgram validates p with the static analyzer's well-formedness
// pass and, on success, loads it and resets the fetch engine to entry.
// Rejected programs (invalid opcodes or operands, out-of-range branch
// targets, control flow that runs off the end, txabort without a
// txbegin) would otherwise surface as execute-stage panics deep in a
// simulation; validating here turns them into descriptive errors at the
// point the program enters the machine.
//
//simlint:memoexempt progEpoch exists to be written here: it is folded into every memo fingerprint, so a program swap forces a miss
func (ctx *Context) LoadProgram(p *isa.Program, entry int) error {
	if err := static.Validate(p); err != nil {
		return fmt.Errorf("cpu: load program: %w", err)
	}
	if entry < 0 || entry >= p.Len() {
		return fmt.Errorf("cpu: entry %d outside program of %d instrs", entry, p.Len())
	}
	ctx.load(p, entry)
	return nil
}

// SetProgram is LoadProgram for programs known to be well-formed (e.g.
// emitted by isa.Builder straight from a victim constructor); it panics
// where LoadProgram returns an error.
//
//simlint:memoexempt progEpoch is folded into every memo fingerprint, so a program swap forces a miss
func (ctx *Context) SetProgram(p *isa.Program, entry int) {
	if err := ctx.LoadProgram(p, entry); err != nil {
		panic(err)
	}
}

func (ctx *Context) load(p *isa.Program, entry int) {
	// Maintain the core's halted/loaded context counters (Core.Halted is
	// O(1) off them).
	if ctx.prog == nil {
		ctx.core.nLoaded++
	} else if ctx.halted {
		ctx.core.nHalted--
	}
	ctx.prog = p
	ctx.progEpoch++
	ctx.jvReset()
	ctx.fetchPC = entry
	ctx.fetchHalted = false
	ctx.halted = false
	if s := ctx.core.shadow; s != nil {
		for _, e := range ctx.rob.Entries() {
			s.ShadowSquash(ctx, e)
		}
	}
	ctx.rob.SquashAll()
	ctx.clearRAT()
	ctx.recount()
}

// Program returns the loaded program.
func (ctx *Context) Program() *isa.Program { return ctx.prog }

// Reg returns the architectural value of r.
func (ctx *Context) Reg(r isa.Reg) uint64 { return ctx.regs[r] }

// SetReg sets the architectural value of r. Only meaningful while the
// context is idle (between runs); in-flight instructions hold their own
// operand copies.
//
//simlint:memoexempt regs are folded into every memo fingerprint, so a changed register forces a miss, never a stale splice
func (ctx *Context) SetReg(r isa.Reg, v uint64) { ctx.regs[r] = v }

// Halted reports whether the context has retired a halt.
func (ctx *Context) Halted() bool { return ctx.halted }

// Stalled reports whether the context is inside the simulated kernel
// fault handler at the given cycle.
func (ctx *Context) Stalled(cycle uint64) bool { return cycle < ctx.stallUntil }

// InTx reports whether the context is inside a transaction.
func (ctx *Context) InTx() bool { return ctx.inTx }

// Stats returns the accumulated event counts.
func (ctx *Context) Stats() ContextStats { return ctx.stats }

// Predictor exposes the context's branch predictor (the enclave runtime
// flushes it at the boundary; the adversary primes it).
func (ctx *Context) Predictor() *pipeline.Predictor { return ctx.bp }

// ROBEntries exposes the in-flight ROB entries, oldest first, as a
// read-only view of the backing slice (diagnostics and the shadow-taint
// tracker; see pipeline.ROB.Entries for the mutation caveats).
func (ctx *Context) ROBEntries() []*pipeline.Entry { return ctx.rob.Entries() }

// PC returns the current fetch program counter.
func (ctx *Context) PC() int { return ctx.fetchPC }

func (ctx *Context) clearRAT() {
	for i := range ctx.rat {
		ctx.rat[i] = nil
	}
}

// rebuildRAT reconstructs the register-alias table from the surviving ROB
// contents after a partial squash.
func (ctx *Context) rebuildRAT() {
	ctx.clearRAT()
	for _, e := range ctx.rob.Entries() {
		if d := e.Instr.Dest(); d != isa.NoReg {
			ctx.rat[d] = e
		}
	}
}

// squashAll flushes the context's whole pipeline (precise exception).
func (ctx *Context) squashAll() {
	if s := ctx.core.shadow; s != nil {
		// Before truncation: each entry still holds its pre-squash state,
		// so the tracker can tell executed (transient footprint) entries
		// from never-issued ones.
		for _, e := range ctx.rob.Entries() {
			s.ShadowSquash(ctx, e)
		}
	}
	ctx.stats.Squashed += uint64(ctx.rob.SquashAll())
	ctx.clearRAT()
	ctx.fetchHalted = false
	ctx.recount()
}

// squashYounger flushes everything younger than seq (branch mispredict).
func (ctx *Context) squashYounger(seq uint64) {
	if s := ctx.core.shadow; s != nil {
		for _, e := range ctx.rob.Entries() {
			if e.Seq > seq {
				s.ShadowSquash(ctx, e)
			}
		}
	}
	ctx.stats.Squashed += uint64(ctx.rob.SquashYounger(seq))
	ctx.rebuildRAT()
	ctx.fetchHalted = false
	ctx.recount()
}

// isFenceActing reports whether op blocks younger dispatch until it
// retires (OpFence always; OpRdrand when the core is configured with the
// Intel fence, §7.2).
func (ctx *Context) isFenceActing(op isa.Op) bool {
	return op == isa.OpFence || (op == isa.OpRdrand && ctx.core.cfg.FencedRdrand)
}

// recount recomputes the derived ROB counters, next-event state and the
// scheduler's wakeup structures after a squash (or snapshot restore).
func (ctx *Context) recount() {
	ctx.nDispatched, ctx.nIssued, ctx.nFences = 0, 0, 0
	ctx.nextCompleteAt = neverCycle
	for _, e := range ctx.rob.Entries() {
		switch e.State {
		case pipeline.StateDispatched:
			ctx.nDispatched++
		case pipeline.StateIssued:
			ctx.nIssued++
			if e.CompleteAt < ctx.nextCompleteAt {
				ctx.nextCompleteAt = e.CompleteAt
			}
		}
		if ctx.isFenceActing(e.Instr.Op) {
			ctx.nFences++
		}
	}
	ctx.schedRebuild()
	ctx.wakeIssue()
}
