package cpu

import (
	"microscope/sim/mem"
	"microscope/sim/tlb"
)

// accessResult describes the outcome of a load/store address generation
// and (for loads) data access.
type accessResult struct {
	pa         mem.Addr
	latency    int
	walkCycles int        // 0 on a TLB hit
	fault      *mem.Fault // non-nil when translation failed
}

// translate resolves va through the TLB complex, falling back to the
// hardware page walker. The returned latency includes TLB lookup and any
// walk cycles.
func (c *Core) translate(ctx *Context, va mem.Addr, write bool) accessResult {
	vpn := mem.PageNum(va)
	pcid := ctx.as.PCID()
	lat := c.cfg.TLBL1Lat
	tr, level := c.tlbs.LookupData(vpn, pcid)
	if level == 2 {
		lat += c.cfg.TLBL2Lat
	}
	if level == 0 {
		lat += c.cfg.TLBL2Lat
		walkLat, wtr, fault := c.pageWalk(ctx, va, write)
		lat += walkLat
		if fault != nil {
			return accessResult{latency: lat, walkCycles: walkLat, fault: fault}
		}
		tr = wtr
		c.tlbs.InsertData(tr)
		if res := c.permissionCheck(tr.Flags, va, write); res != nil {
			return accessResult{latency: lat, walkCycles: walkLat, fault: res}
		}
		return accessResult{
			pa:         tr.PPN<<mem.PageShift | mem.PageOffset(va),
			latency:    lat,
			walkCycles: walkLat,
		}
	}
	if res := c.permissionCheck(tr.Flags, va, write); res != nil {
		return accessResult{latency: lat, fault: res}
	}
	return accessResult{pa: tr.PPN<<mem.PageShift | mem.PageOffset(va), latency: lat}
}

func (c *Core) permissionCheck(f tlb.EntryFlags, va mem.Addr, write bool) *mem.Fault {
	if write && !f.Writable {
		return &mem.Fault{VA: va, Level: mem.PTE, Write: true}
	}
	return nil
}

// pageWalk performs the hardware page walk of the paper's Figure 2: it
// fetches PGD, PUD, PMD and PTE entries sequentially, each through the
// page-walk cache (upper levels) or the data cache hierarchy. The walk
// latency is therefore directly controlled by which cache level holds
// each entry — the Replayer's §4.1.2 tuning knob.
func (c *Core) pageWalk(ctx *Context, va mem.Addr, write bool) (lat int, tr tlb.Translation, fault *mem.Fault) {
	tablePPN := ctx.as.Root()
	for l := mem.PGD; l <= mem.PTE; l++ {
		ea := tablePPN<<mem.PageShift + mem.IndexFor(l, va)*mem.EntrySize
		if l < mem.PTE && c.pwc.Lookup(ea) {
			lat += c.cfg.PWCLat
		} else {
			clat, _ := c.hier.Access(ea)
			lat += clat
			if l < mem.PTE {
				c.pwc.Insert(ea, l)
			}
		}
		e := mem.Entry(c.phys.Read64(ea))
		if !e.Present() {
			return lat, tr, &mem.Fault{VA: va, Level: l, Write: write}
		}
		if l == mem.PTE {
			// Set the accessed bit, as the hardware walker does.
			c.phys.Write64(ea, uint64(e.WithFlags(mem.FlagAccessed)))
			return lat, tlb.Translation{
				VPN:   mem.PageNum(va),
				PPN:   e.PPN(),
				PCID:  ctx.as.PCID(),
				Flags: tlb.FlagsFromEntry(e),
			}, nil
		}
		tablePPN = e.PPN()
	}
	panic("unreachable")
}

// dataAccess performs the cache access for a load at physical address pa.
func (c *Core) dataAccess(pa mem.Addr) int {
	lat, _ := c.hier.Access(pa)
	return lat
}

// jitter returns the deterministic noise term applied to each executed
// instruction: every JitterPeriod-th instruction takes JitterExtra extra
// cycles, modelling ambient platform noise (DRAM refresh, SMIs, ...).
func (c *Core) jitter() int {
	if c.cfg.JitterPeriod <= 0 {
		return 0
	}
	c.jitterCount++
	if c.jitterCount%uint64(c.cfg.JitterPeriod) == 0 {
		return c.cfg.JitterExtra
	}
	return 0
}
