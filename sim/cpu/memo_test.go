package cpu

import (
	"fmt"
	"hash/fnv"
	"testing"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Differential tests for the replay-splice memo (memo.go): every scenario
// is executed twice — Config.ReplayMemo on and off — and the two runs must
// be indistinguishable in every observable: identical cycle-stamped event
// streams, final cycle counts, architectural registers and statistics.
// The edge-case scenarios additionally pin down the invalidation model:
// handler PTE mutation mid-replay, timing reconfiguration, stores landing
// in a cached window's read set, and checkpoint/restore straddling a
// cached window each force fingerprint misses (never wrong splices).

const (
	memoHandleVA = mem.Addr(0x0050_0000) // replay-handle page
	memoDataVA   = mem.Addr(0x0051_0000) // mapped page the window reads
)

// memoVictim is the canonical replay-attack victim: a load of the
// non-present handle page followed by a transient window of independent
// work, including a load of a mapped data page (so the window has a
// physical-memory read set beyond the page walk).
func memoVictim() *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, int64(memoHandleVA)).
		MovImm(isa.R9, int64(memoDataVA)).
		Load(isa.R2, isa.R1, 0).     // replay handle: faults until released
		Mul(isa.R3, isa.R2, isa.R2). // dependent: waits on the handle load
		MovImm(isa.R5, 7).           // independent transient work
		Mul(isa.R5, isa.R5, isa.R5).
		Mul(isa.R5, isa.R5, isa.R5).
		Load(isa.R6, isa.R9, 0). // transient read of mapped data
		Add(isa.R7, isa.R6, isa.R5).
		Halt().MustBuild()
}

// memoScenario wires a MicroScope-style replay rig: the handle page is
// mapped then made non-present, and the fault handler replays the window
// maxReplays-1 times before re-mapping. onFault (optional) runs inside
// the handler before the replay/release decision — the hook the
// invalidation tests use to mutate state between windows.
type memoScenario struct {
	r          *testRig
	pteAddr    mem.Addr
	dataPA     mem.Addr
	faults     int
	maxReplays int
	onFault    func(sc *memoScenario)
}

func newMemoScenario(t *testing.T, r *testRig, maxReplays int) *memoScenario {
	t.Helper()
	sc := &memoScenario{r: r, maxReplays: maxReplays}
	for _, va := range []mem.Addr{memoHandleVA, memoDataVA} {
		if _, err := r.as.MapNew(va, mem.FlagUser|mem.FlagWritable); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.as.Write64Virt(memoHandleVA, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if err := r.as.Write64Virt(memoDataVA, 0xbeef); err != nil {
		t.Fatal(err)
	}
	pa, err := r.as.Translate(memoDataVA)
	if err != nil {
		t.Fatal(err)
	}
	sc.dataPA = pa
	sc.pteAddr, err = r.as.SetPresent(memoHandleVA, false)
	if err != nil {
		t.Fatal(err)
	}
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		sc.faults++
		if sc.onFault != nil {
			sc.onFault(sc)
		}
		if sc.faults >= sc.maxReplays {
			if _, err := r.as.SetPresent(memoHandleVA, true); err != nil {
				return FaultOutcome{Terminate: true}
			}
		}
		return FaultOutcome{HandlerLatency: 500}
	}))
	r.core.Context(0).SetProgram(memoVictim(), 0)
	return sc
}

// memoRun is one run's complete observable outcome.
type memoRun struct {
	hash    uint64
	events  int
	cycles  uint64
	skipped uint64
	faults  int
	regs    [isa.NumRegs]uint64
	stats   ContextStats
	memo    MemoStats
}

// runMemoScenario builds a rig with ReplayMemo set as given, lets build
// configure it, drives it with the returned function (default: one Run to
// completion), and digests the outcome.
func runMemoScenario(t *testing.T, memoOn bool, build func(t *testing.T, r *testRig) (*memoScenario, func())) memoRun {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ReplayMemo = memoOn
	r := newRig(t, cfg)
	h := fnv.New64a()
	n := 0
	r.core.SetTracer(TracerFunc(func(ev Event) {
		n++
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%v|%d|%d|%#x|%s\n",
			ev.Cycle, ev.Context, ev.Kind, ev.PC, ev.Seq, ev.Instr, ev.Walk, ev.Port, ev.Addr, ev.Detail)
	}))
	sc, drive := build(t, r)
	if drive == nil {
		drive = func() { r.core.Run(2_000_000) }
	}
	drive()
	if !r.core.Halted() {
		t.Fatalf("memoOn=%v: core did not halt (pc=%d, %d faults)",
			memoOn, r.core.Context(0).fetchPC, sc.faults)
	}
	out := memoRun{
		hash:    h.Sum64(),
		events:  n,
		cycles:  r.core.Cycle(),
		skipped: r.core.SkippedCycles(),
		faults:  sc.faults,
		stats:   r.core.Context(0).Stats(),
		memo:    r.core.MemoStats(),
	}
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		out.regs[reg] = r.core.Context(0).Reg(reg)
	}
	return out
}

// memoCompare runs the scenario with the memo on and off and requires
// byte-identical observables, returning the memo-on run for hit/miss
// assertions.
func memoCompare(t *testing.T, build func(t *testing.T, r *testRig) (*memoScenario, func())) memoRun {
	t.Helper()
	on := runMemoScenario(t, true, build)
	off := runMemoScenario(t, false, build)
	if off.memo != (MemoStats{}) {
		t.Errorf("memo-off run has memo activity: %+v", off.memo)
	}
	if on.hash != off.hash || on.events != off.events {
		t.Errorf("trace diverges: %d events hash %#x (on) vs %d events hash %#x (off)",
			on.events, on.hash, off.events, off.hash)
	}
	if on.cycles != off.cycles {
		t.Errorf("final cycle diverges: %d (on) vs %d (off)", on.cycles, off.cycles)
	}
	if on.skipped != off.skipped {
		t.Errorf("skipped cycles diverge: %d (on) vs %d (off)", on.skipped, off.skipped)
	}
	if on.faults != off.faults {
		t.Errorf("fault counts diverge: %d (on) vs %d (off)", on.faults, off.faults)
	}
	if on.regs != off.regs {
		t.Errorf("registers diverge:\n on: %v\noff: %v", on.regs, off.regs)
	}
	if on.stats != off.stats {
		t.Errorf("stats diverge:\n on: %+v\noff: %+v", on.stats, off.stats)
	}
	return on
}

// TestMemoSpliceEquivalence: the steady-state replay loop must splice
// (the whole point of the memo) while staying bit-identical to the
// memo-off run.
func TestMemoSpliceEquivalence(t *testing.T) {
	on := memoCompare(t, func(t *testing.T, r *testRig) (*memoScenario, func()) {
		return newMemoScenario(t, r, 10), nil
	})
	if on.memo.Hits < 5 {
		t.Errorf("expected >=5 splices across 10 replays, got %+v", on.memo)
	}
	if on.memo.SplicedCycles == 0 {
		t.Error("splices covered zero cycles")
	}
}

// TestMemoFastForwardOffEquivalence: the memo must compose with
// cycle-by-cycle stepping too (no fast-forward interplay assumptions).
func TestMemoFastForwardOffEquivalence(t *testing.T) {
	on := memoCompare(t, func(t *testing.T, r *testRig) (*memoScenario, func()) {
		cfg := r.core.Config()
		cfg.FastForward = false
		if err := r.core.UpdateTiming(cfg); err != nil {
			t.Fatal(err)
		}
		return newMemoScenario(t, r, 10), nil
	})
	if on.memo.Hits == 0 {
		t.Errorf("no splices with fast-forward off: %+v", on.memo)
	}
	if on.skipped != 0 {
		t.Errorf("fast-forward-off run skipped %d cycles", on.skipped)
	}
}

// TestMemoHandlerPTEMutationForcesMiss: a handler that mutates the
// replay handle's PTE mid-replay (here: writing a fresh per-fault value
// into the PTE's ignored software bits) changes a value in every window's
// page-walk read set, so no recorded window may ever be spliced — and the
// run must still match memo-off exactly. (A mutation that merely cycles
// between a few values may legitimately hit older records at the same
// site; the counter guarantees the fingerprint never repeats.)
func TestMemoHandlerPTEMutationForcesMiss(t *testing.T) {
	on := memoCompare(t, func(t *testing.T, r *testRig) (*memoScenario, func()) {
		sc := newMemoScenario(t, r, 10)
		sc.onFault = func(sc *memoScenario) {
			const swBits = uint64(0x3ff) << 52 // ignored bits 52..61
			raw := sc.r.core.Phys().Read64(sc.pteAddr)
			sc.r.core.Phys().Write64(sc.pteAddr, raw&^swBits|uint64(sc.faults)<<52)
		}
		return sc, nil
	})
	if on.memo.Hits != 0 {
		t.Errorf("spliced %d windows despite per-replay PTE mutation: %+v", on.memo.Hits, on.memo)
	}
	if on.memo.Misses == 0 {
		t.Error("no fault boundaries reached the memo")
	}
}

// TestMemoStoreInReadSetForcesMiss: a store landing in a cached window's
// read set (here: the handler rewriting the word the window's transient
// load reads) must force a fingerprint miss on every subsequent probe.
func TestMemoStoreInReadSetForcesMiss(t *testing.T) {
	on := memoCompare(t, func(t *testing.T, r *testRig) (*memoScenario, func()) {
		sc := newMemoScenario(t, r, 10)
		sc.onFault = func(sc *memoScenario) {
			sc.r.core.Phys().Write64(sc.dataPA, uint64(0x1000+sc.faults))
		}
		return sc, nil
	})
	if on.memo.Hits != 0 {
		t.Errorf("spliced %d windows despite read-set stores: %+v", on.memo.Hits, on.memo)
	}
	// The final architectural value of the transient load's register must
	// reflect the last committed store (checked against memo-off by
	// memoCompare; sanity-check the absolute value here).
	if got, want := on.regs[isa.R6], uint64(0x1000+on.faults); got != want {
		t.Errorf("R6 = %#x, want %#x (last handler store)", got, want)
	}
}

// TestMemoJitterReconfigInvalidates: reconfiguring timing between
// iterations (UpdateTiming with a new jitter schedule) must flush every
// record; execution stays identical to memo-off under the same
// reconfiguration schedule.
func TestMemoJitterReconfigInvalidates(t *testing.T) {
	on := memoCompare(t, func(t *testing.T, r *testRig) (*memoScenario, func()) {
		sc := newMemoScenario(t, r, 12)
		drive := func() {
			// First phase: enough replays to populate the memo.
			for sc.faults < 5 && !r.core.Halted() {
				r.core.Run(5_000)
			}
			cfg := r.core.Config()
			cfg.JitterPeriod = 7
			cfg.JitterExtra = 30
			if err := r.core.UpdateTiming(cfg); err != nil {
				t.Fatal(err)
			}
			r.core.Run(2_000_000)
		}
		return sc, drive
	})
	if on.memo.Invalidations == 0 {
		t.Errorf("jitter reconfiguration invalidated nothing: %+v", on.memo)
	}
}

// TestMemoSnapshotRestoreStraddle: a checkpoint taken mid-replay, with
// cached windows live, must (a) not capture memo state, (b) flush the
// memo on restore, and (c) resume bit-identically: the post-restore
// replay of the tail must produce the same events as the first execution
// of the tail even though one ran memo-hot and the other re-recorded
// from scratch.
func TestMemoSnapshotRestoreStraddle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplayMemo = true
	r := newRig(t, cfg)

	var h64 uint64 = 14695981039346656037
	hashing := false
	r.core.SetTracer(TracerFunc(func(ev Event) {
		if !hashing {
			return
		}
		s := fmt.Sprintf("%d|%d|%d|%d|%d|%v|%d|%#x|%s",
			ev.Cycle, ev.Context, ev.Kind, ev.PC, ev.Seq, ev.Instr, ev.Walk, ev.Addr, ev.Detail)
		for i := 0; i < len(s); i++ {
			h64 ^= uint64(s[i])
			h64 *= 1099511628211
		}
	}))
	sc := newMemoScenario(t, r, 12)

	for sc.faults < 5 && !r.core.Halted() {
		r.core.Run(5_000)
	}
	if r.core.Halted() {
		t.Fatal("victim finished before the checkpoint point")
	}
	if r.core.MemoStats().Hits == 0 {
		t.Fatalf("no cached-window hits before checkpoint: %+v", r.core.MemoStats())
	}

	coreSnap, err := r.core.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	physSnap := r.core.Phys().Snapshot()
	faultsAtSnap := sc.faults
	invalBefore := r.core.MemoStats().Invalidations

	// First execution of the tail: memo hot from the warmup replays.
	hashing = true
	h64 = 14695981039346656037
	r.core.Run(2_000_000)
	if !r.core.Halted() {
		t.Fatal("first tail did not complete")
	}
	firstHash, firstCycle := h64, r.core.Cycle()
	var firstRegs [isa.NumRegs]uint64
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		firstRegs[reg] = r.core.Context(0).Reg(reg)
	}

	// Restore and re-execute the tail: the memo must be flushed (its
	// records fingerprint pre-restore structure state), so this pass
	// re-records — and must still produce the identical event stream.
	hashing = false
	if err := r.core.Phys().Restore(physSnap); err != nil {
		t.Fatal(err)
	}
	if err := r.core.Restore(coreSnap); err != nil {
		t.Fatal(err)
	}
	if got := r.core.MemoStats().Invalidations; got <= invalBefore {
		t.Errorf("restore flushed nothing: invalidations %d -> %d", invalBefore, got)
	}
	sc.faults = faultsAtSnap
	hashing = true
	h64 = 14695981039346656037
	r.core.Run(2_000_000)
	if !r.core.Halted() {
		t.Fatal("restored tail did not complete")
	}
	if h64 != firstHash {
		t.Errorf("restored tail trace diverges: %#x vs %#x", h64, firstHash)
	}
	if r.core.Cycle() != firstCycle {
		t.Errorf("restored tail final cycle diverges: %d vs %d", r.core.Cycle(), firstCycle)
	}
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		if r.core.Context(0).Reg(reg) != firstRegs[reg] {
			t.Errorf("restored tail register %v diverges", reg)
		}
	}
}

// TestMemoRunUntilSuspended: RunUntil evaluates its condition between
// steps; a splice would jump over those evaluations, so the memo must
// stay idle under RunUntil — while still producing correct execution.
func TestMemoRunUntilSuspended(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplayMemo = true
	r := newRig(t, cfg)
	sc := newMemoScenario(t, r, 6)
	ctx := r.core.Context(0)
	if !r.core.RunUntil(func() bool { return ctx.Halted() }, 2_000_000) {
		t.Fatal("victim did not halt")
	}
	if sc.faults != 6 {
		t.Errorf("expected 6 faults, got %d", sc.faults)
	}
	if ms := r.core.MemoStats(); ms.Hits != 0 || ms.Misses != 0 {
		t.Errorf("memo engaged under RunUntil: %+v", ms)
	}
}

// TestMemoDisabledByZeroConfig: Config literals that never opt in must
// get a fully inert memo.
func TestMemoDisabledByZeroConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplayMemo = false
	r := newRig(t, cfg)
	newMemoScenario(t, r, 6)
	r.core.Run(2_000_000)
	if ms := r.core.MemoStats(); ms != (MemoStats{}) {
		t.Errorf("memo active despite ReplayMemo=false: %+v", ms)
	}
}
