package cpu

import (
	"testing"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Tests for the PR 9 defense hooks: the Jamais Vu squash-counter
// detector, the Sakalis-style selective speculative delay, and the SIMF
// multi-flush primitive. Each hook is config-gated; DefaultConfig keeps
// all of them off, so these tests opt in explicitly.

// jvRig builds a rig whose handler refuses to fix the handle page for
// the first refuse faults (the MicroScope replay loop), then restores
// the present bit so the victim completes.
func jvRig(t *testing.T, cfg Config, refuse int) (*testRig, mem.Addr, *int) {
	t.Helper()
	r := newRig(t, cfg)
	handleVA := mem.Addr(0x40_0000)
	r.mapPage(t, handleVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	faults := 0
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		faults++
		if faults <= refuse {
			steps, _ := r.as.Walk(handleVA)
			for _, s := range steps {
				r.core.FlushPageStructures(s.EntryAddr)
			}
			return FaultOutcome{HandlerLatency: 500}
		}
		if _, err := r.as.SetPresent(handleVA, true); err != nil {
			t.Fatal(err)
		}
		return FaultOutcome{HandlerLatency: 500}
	}))
	return r, handleVA, &faults
}

func replayVictim(handleVA mem.Addr) *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		Load(isa.R2, isa.R1, 0). // replay handle
		AddImm(isa.R3, isa.R2, 1).
		Halt().MustBuild()
}

// TestJamaisVuAlarmOnReplayLoop: the same PC squashing past the
// threshold without retiring is the replay signature — exactly one
// alarm fires, when the counter crosses the line.
func TestJamaisVuAlarmOnReplayLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashThreshold = 3
	r, handleVA, _ := jvRig(t, cfg, 6)
	ctx := r.run(t, replayVictim(handleVA), 2_000_000)

	if got := ctx.Stats().PageFaults; got != 7 {
		t.Fatalf("PageFaults = %d, want 7", got)
	}
	if got := ctx.Stats().ReplayAlarms; got != 1 {
		t.Errorf("ReplayAlarms = %d, want 1 (alarm exactly at threshold crossing)", got)
	}
}

// TestJamaisVuBelowThresholdSilent: fewer squashes than the threshold
// never alarm.
func TestJamaisVuBelowThresholdSilent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashThreshold = 6
	r, handleVA, _ := jvRig(t, cfg, 4)
	ctx := r.run(t, replayVictim(handleVA), 2_000_000)
	if got := ctx.Stats().ReplayAlarms; got != 0 {
		t.Errorf("ReplayAlarms = %d, want 0 (only 5 faults, threshold 6)", got)
	}
}

// TestJamaisVuRetireClearsCounter: benign demand paging faults many
// times from the SAME load PC (a loop touching fresh pages), but the
// load retires after every fixed fault, clearing its counter — no
// false alarm, no matter how many pages it touches.
func TestJamaisVuRetireClearsCounter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashThreshold = 3
	r := newRig(t, cfg) // default handler maps on demand

	const pages = 8
	base := mem.Addr(0x30_0000)
	// for i := 0..pages: load [base + i*PageSize]  (same load PC each time)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(base)).
		MovImm(isa.R2, pages).
		Label("loop").
		Load(isa.R3, isa.R1, 0).
		AddImm(isa.R1, isa.R1, int64(mem.PageSize)).
		AddImm(isa.R2, isa.R2, -1).
		Blt(isa.R0, isa.R2, "loop").
		Halt().MustBuild()

	ctx := r.run(t, prog, 2_000_000)
	if got := ctx.Stats().PageFaults; got < pages {
		t.Fatalf("PageFaults = %d, want >= %d (one per fresh page)", got, pages)
	}
	if got := ctx.Stats().ReplayAlarms; got != 0 {
		t.Errorf("ReplayAlarms = %d, want 0 (retire must clear the counter)", got)
	}
}

// TestJamaisVuEpochClearsCounters: with an epoch shorter than the
// handler latency, every fault lands in a fresh epoch and the counter
// restarts — the detector stays silent even against a real replay
// loop. (Thresholds and epochs trade off: this is the Jamais Vu
// paper's epoch-boundary evasion window.)
func TestJamaisVuEpochClearsCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashThreshold = 3
	cfg.SquashEpoch = 200 // handler latency is 500: every fault a new epoch
	r, handleVA, _ := jvRig(t, cfg, 8)
	ctx := r.run(t, replayVictim(handleVA), 2_000_000)
	if got := ctx.Stats().PageFaults; got != 9 {
		t.Fatalf("PageFaults = %d, want 9", got)
	}
	if got := ctx.Stats().ReplayAlarms; got != 0 {
		t.Errorf("ReplayAlarms = %d, want 0 (epoch clears between faults)", got)
	}
}

// TestJamaisVuDisabledCountsNothing: threshold 0 keeps the detector
// off — no alarms and no counter state, so the memo self-gate never
// engages on default configs.
func TestJamaisVuDisabledCountsNothing(t *testing.T) {
	r, handleVA, _ := jvRig(t, DefaultConfig(), 10)
	ctx := r.run(t, replayVictim(handleVA), 2_000_000)
	if got := ctx.Stats().ReplayAlarms; got != 0 {
		t.Errorf("ReplayAlarms = %d, want 0 with detector off", got)
	}
	if ctx.jvCounts != nil {
		t.Error("jvCounts allocated with detector off")
	}
}

// TestDelaySpeculativeBlocksTransmitter reruns the speculative
// cache-footprint experiment under the selective-delay gate: the
// younger secret load must NOT fill the cache while the replay handle
// is in flight — the transmit channel the paper's monitor reads is
// closed — yet the program still completes with the right value.
func TestDelaySpeculativeBlocksTransmitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelaySpeculative = true
	r := newRig(t, cfg)
	handleVA := mem.Addr(0x40_0000)
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, handleVA)
	r.mapPage(t, secretVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	if err := r.as.WriteVirt(secretVA, []byte{42}); err != nil {
		t.Fatal(err)
	}
	secretPA, err := r.as.Translate(secretVA)
	if err != nil {
		t.Fatal(err)
	}

	released := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		released = true
		if _, err := r.as.SetPresent(handleVA, true); err != nil {
			t.Fatal(err)
		}
		return FaultOutcome{HandlerLatency: 100}
	}))

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0). // replay handle (faults)
		Load(isa.R4, isa.R2, 0). // transmitter: younger, independent
		Halt().MustBuild()

	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.RunUntil(func() bool { return released }, 1_000_000)
	if !released {
		t.Fatal("fault never delivered")
	}
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl != cache.LevelMem {
		t.Errorf("transmitter filled %v during the squash window despite the delay gate", lvl)
	}

	// The gate must not deadlock: once the handle is non-speculative
	// the program drains normally.
	r.core.Run(2_000_000)
	if !ctx.Halted() {
		t.Fatal("victim deadlocked under DelaySpeculative")
	}
	if got := ctx.Reg(isa.R4); got != 42 {
		t.Errorf("secret load = %d, want 42", got)
	}
}

// TestDelaySpeculativeOffLeaksFootprint is the control for the test
// above: same program, gate off, footprint present — proving the gate
// (not some unrelated change) closes the channel.
func TestDelaySpeculativeOffLeaksFootprint(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, handleVA)
	r.mapPage(t, secretVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	secretPA, err := r.as.Translate(secretVA)
	if err != nil {
		t.Fatal(err)
	}
	released := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		released = true
		if _, err := r.as.SetPresent(handleVA, true); err != nil {
			t.Fatal(err)
		}
		return FaultOutcome{HandlerLatency: 100}
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0).
		Load(isa.R4, isa.R2, 0).
		Halt().MustBuild()
	r.core.Context(0).SetProgram(prog, 0)
	r.core.RunUntil(func() bool { return released }, 1_000_000)
	if !released {
		t.Fatal("fault never delivered")
	}
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl == cache.LevelMem {
		t.Error("control: no speculative footprint even without the gate")
	}
}

// TestFlushMicroarchScrubsStructures: the SIMF primitive leaves cache,
// TLB, page-walk cache and replay memo cold in one call.
func TestFlushMicroarchScrubsStructures(t *testing.T) {
	r := newRig(t, DefaultConfig())
	dataVA := mem.Addr(0x60_0000)
	r.mapPage(t, dataVA)
	dataPA, err := r.as.Translate(dataVA)
	if err != nil {
		t.Fatal(err)
	}
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(dataVA)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	r.run(t, prog, 1_000_000)

	if lvl := r.core.Hierarchy().LevelOf(dataPA); lvl == cache.LevelMem {
		t.Fatal("warmup left the line uncached")
	}
	if r.core.TLBs().L1D.Len() == 0 {
		t.Fatal("warmup left no TLB entries")
	}

	r.core.FlushMicroarch(0)

	if lvl := r.core.Hierarchy().LevelOf(dataPA); lvl != cache.LevelMem {
		t.Errorf("cache line survived the multi-flush at %v", lvl)
	}
	if n := r.core.TLBs().L1D.Len(); n != 0 {
		t.Errorf("%d dTLB entries survived the multi-flush", n)
	}
	if n := r.core.TLBs().L2.Len(); n != 0 {
		t.Errorf("%d sTLB entries survived the multi-flush", n)
	}
}

// TestJamaisVuSnapshotRoundTrip: mid-replay counter state survives
// snapshot/restore, and the restored machine raises the same alarm at
// the same point.
func TestJamaisVuSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashThreshold = 6
	r, handleVA, faults := jvRig(t, cfg, 8)
	ctx := r.core.Context(0)
	ctx.SetProgram(replayVictim(handleVA), 0)

	// Run to mid-replay: counters hot, below threshold.
	r.core.RunUntil(func() bool { return *faults >= 3 }, 2_000_000)
	if *faults < 3 || ctx.Stats().ReplayAlarms != 0 {
		t.Fatalf("bad checkpoint point: faults=%d alarms=%d", *faults, ctx.Stats().ReplayAlarms)
	}
	if len(ctx.jvCounts) == 0 {
		t.Fatal("no live counter state to snapshot")
	}

	coreSnap, err := r.core.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	physSnap := r.core.Phys().Snapshot()
	faultsAtSnap := *faults

	r.core.Run(2_000_000)
	if !ctx.Halted() {
		t.Fatal("first pass did not halt")
	}
	wantAlarms := ctx.Stats().ReplayAlarms
	if wantAlarms != 1 {
		t.Fatalf("first pass ReplayAlarms = %d, want 1", wantAlarms)
	}
	wantCycle := r.core.Cycle()

	if err := r.core.Phys().Restore(physSnap); err != nil {
		t.Fatal(err)
	}
	if err := r.core.Restore(coreSnap); err != nil {
		t.Fatal(err)
	}
	if len(ctx.jvCounts) == 0 {
		t.Fatal("restore dropped the squash counters")
	}
	*faults = faultsAtSnap
	r.core.Run(2_000_000)
	if !ctx.Halted() {
		t.Fatal("restored pass did not halt")
	}
	if got := ctx.Stats().ReplayAlarms; got != wantAlarms {
		t.Errorf("restored ReplayAlarms = %d, want %d", got, wantAlarms)
	}
	if got := r.core.Cycle(); got != wantCycle {
		t.Errorf("restored final cycle = %d, want %d (bit-identical resume)", got, wantCycle)
	}
}
