package cpu

import (
	"math"
	"testing"

	"microscope/sim/cache"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// testRig bundles a core with one victim address space on context 0.
type testRig struct {
	core *Core
	as   *mem.AddressSpace
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	phys := mem.NewPhysMem(16 << 20)
	core := NewCore(cfg, phys)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	core.Context(0).SetAddressSpace(as)
	// Default handler: make the page present on demand.
	core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		if _, err := as.MapNew(mem.PageBase(f.VA), mem.FlagUser|mem.FlagWritable); err != nil {
			return FaultOutcome{Terminate: true}
		}
		return FaultOutcome{HandlerLatency: 100}
	}))
	return &testRig{core: core, as: as}
}

func (r *testRig) mapPage(t *testing.T, va mem.Addr) {
	t.Helper()
	if _, err := r.as.MapNew(va, mem.FlagUser|mem.FlagWritable); err != nil {
		t.Fatal(err)
	}
}

func (r *testRig) run(t *testing.T, p *isa.Program, maxCycles uint64) *Context {
	t.Helper()
	ctx := r.core.Context(0)
	ctx.SetProgram(p, 0)
	r.core.Run(maxCycles)
	if !ctx.Halted() {
		t.Fatalf("program did not halt in %d cycles (pc=%d)", maxCycles, ctx.PC())
	}
	return ctx
}

func TestStraightLineArithmetic(t *testing.T) {
	r := newRig(t, DefaultConfig())
	p := isa.NewBuilder().
		MovImm(isa.R1, 6).
		MovImm(isa.R2, 7).
		Mul(isa.R3, isa.R1, isa.R2).
		AddImm(isa.R4, isa.R3, 8).
		Sub(isa.R5, isa.R4, isa.R1).
		Div(isa.R6, isa.R5, isa.R2).
		Xor(isa.R7, isa.R6, isa.R6).
		MustBuild()
	// No halt: running off the end stops fetch; drain via Run.
	pp := isa.NewBuilder()
	for _, in := range p.Instrs {
		pp.Emit(in)
	}
	prog := pp.Halt().MustBuild()

	ctx := r.run(t, prog, 10_000)
	if got := ctx.Reg(isa.R3); got != 42 {
		t.Errorf("r3 = %d, want 42", got)
	}
	if got := ctx.Reg(isa.R4); got != 50 {
		t.Errorf("r4 = %d, want 50", got)
	}
	if got := ctx.Reg(isa.R5); got != 44 {
		t.Errorf("r5 = %d, want 44", got)
	}
	if got := ctx.Reg(isa.R6); got != 6 {
		t.Errorf("r6 = %d, want 6", got)
	}
	if got := ctx.Reg(isa.R7); got != 0 {
		t.Errorf("r7 = %d, want 0", got)
	}
}

func TestDivideByZeroYieldsZero(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		MovImm(isa.R1, 100).
		MovImm(isa.R2, 0).
		Div(isa.R3, isa.R1, isa.R2).
		Halt().MustBuild()
	ctx := r.run(t, prog, 10_000)
	if got := ctx.Reg(isa.R3); got != 0 {
		t.Errorf("100/0 = %d, want 0", got)
	}
}

func TestFloatOps(t *testing.T) {
	r := newRig(t, DefaultConfig())
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	prog := isa.NewBuilder().
		FLoadImm(isa.F1, bits(1.5)).
		FLoadImm(isa.F2, bits(2.0)).
		FAdd(isa.F3, isa.F1, isa.F2).
		FMul(isa.F4, isa.F1, isa.F2).
		FDiv(isa.F5, isa.F4, isa.F2).
		Halt().MustBuild()
	ctx := r.run(t, prog, 10_000)
	if got := math.Float64frombits(ctx.Reg(isa.F3)); got != 3.5 {
		t.Errorf("fadd = %v", got)
	}
	if got := math.Float64frombits(ctx.Reg(isa.F4)); got != 3.0 {
		t.Errorf("fmul = %v", got)
	}
	if got := math.Float64frombits(ctx.Reg(isa.F5)); got != 1.5 {
		t.Errorf("fdiv = %v", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, 0xbeef).
		Store(isa.R2, isa.R1, 16).
		Load(isa.R3, isa.R1, 16).
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R3); got != 0xbeef {
		t.Errorf("loaded %#x, want 0xbeef", got)
	}
	// The value must be in memory after commit.
	v, err := r.as.Read64Virt(va + 16)
	if err != nil || v != 0xbeef {
		t.Errorf("memory value = %#x, %v", v, err)
	}
}

// A load that issues while an older same-address store is in flight must
// forward the store's data (store-buffer forwarding), and the committed
// memory state must be the stored value.
func TestStoreToLoadForwarding(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	if err := r.as.Write64Virt(va, 111); err != nil {
		t.Fatal(err)
	}
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, 222).
		Store(isa.R2, isa.R1, 0).
		Load(isa.R3, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R3); got != 222 {
		t.Errorf("load observed %d, want 222 (forwarded)", got)
	}
	v, _ := r.as.Read64Virt(va)
	if v != 222 {
		t.Errorf("committed value = %d, want 222", v)
	}
}

// A load that speculated past a store whose data was not yet ready must be
// squashed and re-executed when the store discovers the conflict (memory-
// order violation), ending with the store's value.
func TestMemoryOrderViolationSquash(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	cold := mem.Addr(0x90_0000)
	r.mapPage(t, va)
	r.mapPage(t, cold)
	if err := r.as.Write64Virt(va, 111); err != nil {
		t.Fatal(err)
	}
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, int64(cold)).
		Load(isa.R5, isa.R2, 0).     // slow: cold TLB, full page walk
		AddImm(isa.R6, isa.R5, 222). // store data arrives late
		Store(isa.R6, isa.R1, 0).
		Load(isa.R3, isa.R1, 0). // issues early with stale memory data
		Halt().MustBuild()
	ctx := r.run(t, prog, 1_000_000)
	if got := ctx.Reg(isa.R3); got != 222 {
		t.Errorf("r3 = %d, want 222 (violation must replay the load)", got)
	}
	if ctx.Stats().MemOrderViolations == 0 {
		t.Error("no memory-order violation recorded")
	}
}

// Loads to different addresses see memory, not the store buffer.
func TestLoadPastStoreDifferentAddress(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x10_0000)
	r.mapPage(t, va)
	if err := r.as.Write64Virt(va+8, 77); err != nil {
		t.Fatal(err)
	}
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, 222).
		Store(isa.R2, isa.R1, 0).
		Load(isa.R3, isa.R1, 8). // different address: memory value
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R3); got != 77 {
		t.Errorf("load observed %d, want 77", got)
	}
}

func TestLoopExecutesCorrectIterations(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		MovImm(isa.R1, 10). // counter
		MovImm(isa.R2, 0).  // accumulator
		Label("loop").
		AddImm(isa.R2, isa.R2, 3).
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R2); got != 30 {
		t.Errorf("accumulator = %d, want 30", got)
	}
	if ctx.Stats().Mispredicts == 0 {
		t.Error("loop ran with zero mispredicts (exit branch must mispredict at least once)")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		MovImm(isa.R1, 200).
		Label("loop").
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	ctx := r.run(t, prog, 1_000_000)
	mp := ctx.Stats().Mispredicts
	// A 2-bit counter mispredicts a handful of times, not per-iteration.
	if mp > 10 {
		t.Errorf("mispredicts = %d for 200 iterations; predictor not learning", mp)
	}
}

func TestColdTLBWalkIsSlow(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x20_0000)
	r.mapPage(t, va)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Rdtsc(isa.R10).
		Load(isa.R2, isa.R1, 0).
		Rdtsc(isa.R11).
		Load(isa.R3, isa.R1, 8).
		Rdtsc(isa.R12).
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	cold := ctx.Reg(isa.R11) - ctx.Reg(isa.R10)
	warm := ctx.Reg(isa.R12) - ctx.Reg(isa.R11)
	// Cold: 4 page-table levels + data from memory ≈ 5×276 cycles.
	// Warm: TLB hit + L1 hit.
	if cold < 1000 {
		t.Errorf("cold access took %d cycles; walk not going to memory", cold)
	}
	if warm > 50 {
		t.Errorf("warm access took %d cycles; TLB/L1 not effective", warm)
	}
}

func TestPageFaultHandlerMapsOnDemand(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x30_0000) // never mapped: demand paging via handler
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.run(t, prog, 1_000_000)
	if ctx.Stats().PageFaults != 1 {
		t.Errorf("page faults = %d, want 1", ctx.Stats().PageFaults)
	}
	if ctx.Reg(isa.R2) != 0 {
		t.Errorf("loaded %d from fresh page, want 0", ctx.Reg(isa.R2))
	}
}

// TestReplayLoop is the core MicroScope mechanism: a handler that keeps
// the present bit clear forces the faulting load — and everything younger —
// to re-execute, an unbounded number of times, in a single logical run.
func TestReplayLoop(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	r.mapPage(t, handleVA)

	// Clear the present bit (attack setup).
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}

	const wantReplays = 5
	replays := 0
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		if f.VA != handleVA {
			t.Errorf("fault at %#x, want %#x", f.VA, handleVA)
		}
		replays++
		if replays < wantReplays {
			// Keep the present bit clear and re-flush the translation
			// path so the next walk is slow again (paper timeline 2).
			steps, _ := r.as.Walk(handleVA)
			for _, s := range steps {
				r.core.FlushPageStructures(s.EntryAddr)
			}
			return FaultOutcome{HandlerLatency: 500}
		}
		if _, err := r.as.SetPresent(handleVA, true); err != nil {
			t.Fatal(err)
		}
		return FaultOutcome{HandlerLatency: 500}
	}))

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		FLoadImm(isa.F1, int64(math.Float64bits(3.0))).
		FLoadImm(isa.F2, int64(math.Float64bits(1.5))).
		Load(isa.R2, isa.R1, 0). // replay handle
		FDiv(isa.F3, isa.F1, isa.F2).
		Halt().MustBuild()
	ctx := r.run(t, prog, 2_000_000)

	if replays != wantReplays {
		t.Errorf("handler invoked %d times, want %d", replays, wantReplays)
	}
	if ctx.Stats().PageFaults != wantReplays {
		t.Errorf("PageFaults = %d, want %d", ctx.Stats().PageFaults, wantReplays)
	}
	// The fdiv after the handle executed speculatively during EVERY
	// replay: the divider saw ~24 cycles of occupancy per replay.
	minBusy := uint64(wantReplays) * uint64(r.core.Config().FDivLat)
	if got := r.core.Ports().DivBusyCycles; got < minBusy {
		t.Errorf("DivBusyCycles = %d, want >= %d (speculative re-execution)", got, minBusy)
	}
	if got := math.Float64frombits(ctx.Reg(isa.F3)); got != 2.0 {
		t.Errorf("fdiv result = %v, want 2.0 (victim must make forward progress)", got)
	}
}

// TestSpeculativeCacheFootprint shows the transmitter: a load younger than
// the faulting replay handle fills the cache even though it never retires,
// and the footprint survives the squash — exactly what the AES attack
// probes.
func TestSpeculativeCacheFootprint(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, handleVA)
	r.mapPage(t, secretVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	secretPA, err := r.as.Translate(secretVA)
	if err != nil {
		t.Fatal(err)
	}

	released := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		released = true
		if _, err := r.as.SetPresent(handleVA, true); err != nil {
			t.Fatal(err)
		}
		return FaultOutcome{HandlerLatency: 100}
	}))

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0). // replay handle (faults)
		Load(isa.R4, isa.R2, 0). // transmitter: younger, independent
		Halt().MustBuild()

	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	// Run until the fault is delivered, then check the footprint.
	r.core.RunUntil(func() bool { return released }, 1_000_000)
	if !released {
		t.Fatal("fault never delivered")
	}
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl == cache.LevelMem {
		t.Error("speculative load left no cache footprint")
	}
}

// TestWalkShadowWindowBounded: instructions dependent on the faulting load
// must NOT execute during the walk shadow.
func TestDependentsDoNotExecuteSpeculatively(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	r.mapPage(t, handleVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, secretVA)
	secretPA, err := r.as.Translate(secretVA)
	if err != nil {
		t.Fatal(err)
	}

	released := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		released = true
		// Terminate instead of resuming: we only examine the shadow.
		return FaultOutcome{Terminate: true}
	}))

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0).     // faulting handle
		Add(isa.R4, isa.R3, isa.R2). // depends on handle
		Load(isa.R5, isa.R4, 0).     // dependent load: must not execute
		Halt().MustBuild()

	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.RunUntil(func() bool { return released }, 1_000_000)
	// The dependent chain's address is handle-data + secretVA; since the
	// load never executed, secretPA must be untouched (and so must the
	// garbage address). Check secret page line is cold.
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl != cache.LevelMem {
		t.Errorf("dependent load executed speculatively (footprint at %s)", lvl)
	}
}

// TestMispredictSquashAndRecovery: wrong-path work is squashed; the
// architectural result follows the correct path; transient footprints
// remain (Spectre-style residue, §9).
func TestMispredictSquashAndRecovery(t *testing.T) {
	r := newRig(t, DefaultConfig())
	wrongVA := mem.Addr(0x60_0000)
	r.mapPage(t, wrongVA)
	wrongPA, err := r.as.Translate(wrongVA)
	if err != nil {
		t.Fatal(err)
	}

	prog := isa.NewBuilder().
		MovImm(isa.R1, 1).
		MovImm(isa.R2, int64(wrongVA)).
		Beq(isa.R1, isa.R0, "wrong"). // never taken... but predictable as taken after priming
		MovImm(isa.R3, 7).
		Jmp("done").
		Label("wrong").
		Load(isa.R4, isa.R2, 0). // wrong-path load
		MovImm(isa.R3, 9).
		Label("done").
		Halt().MustBuild()

	// Prime the predictor so the branch at pc=2 predicts TAKEN (wrong).
	ctx := r.core.Context(0)
	ctx.Predictor().Prime(2, true, 5)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !ctx.Halted() {
		t.Fatal("did not halt")
	}
	if got := ctx.Reg(isa.R3); got != 7 {
		t.Errorf("r3 = %d, want 7 (correct path)", got)
	}
	if got := ctx.Reg(isa.R4); got != 0 {
		t.Errorf("r4 = %d, wrong-path load retired!", got)
	}
	if ctx.Stats().Mispredicts == 0 {
		t.Error("no mispredict recorded")
	}
	if lvl := r.core.Hierarchy().LevelOf(wrongPA); lvl == cache.LevelMem {
		t.Error("wrong-path load left no transient footprint")
	}
}

// TestFenceBlocksSpeculation: with a fence between the replay handle and
// the transmitter, the transmitter never executes in the walk shadow.
func TestFenceBlocksSpeculation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	handleVA := mem.Addr(0x40_0000)
	secretVA := mem.Addr(0x50_0000)
	r.mapPage(t, handleVA)
	r.mapPage(t, secretVA)
	if _, err := r.as.SetPresent(handleVA, false); err != nil {
		t.Fatal(err)
	}
	secretPA, err := r.as.Translate(secretVA)
	if err != nil {
		t.Fatal(err)
	}

	released := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		released = true
		return FaultOutcome{Terminate: true}
	}))

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(secretVA)).
		Load(isa.R3, isa.R1, 0). // faulting handle
		Fence().
		Load(isa.R4, isa.R2, 0). // behind the fence: must not execute
		Halt().MustBuild()

	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.RunUntil(func() bool { return released }, 1_000_000)
	if lvl := r.core.Hierarchy().LevelOf(secretPA); lvl != cache.LevelMem {
		t.Errorf("load behind fence executed (footprint at %s)", lvl)
	}
}

func TestRdtscMonotonicAndOrdered(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		Rdtsc(isa.R1).
		MovImm(isa.R3, 5).
		Mul(isa.R4, isa.R3, isa.R3).
		Rdtsc(isa.R2).
		Halt().MustBuild()
	ctx := r.run(t, prog, 10_000)
	t1, t2 := ctx.Reg(isa.R1), ctx.Reg(isa.R2)
	if t2 <= t1 {
		t.Errorf("rdtsc not monotonic: %d then %d", t1, t2)
	}
}

func TestSubnormalFDivTakesLonger(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	sub := math.Float64frombits(1) // smallest subnormal
	timeOf := func(bitsA, bitsB uint64) uint64 {
		prog := isa.NewBuilder().
			FLoadImm(isa.F1, int64(bitsA)).
			FLoadImm(isa.F2, int64(bitsB)).
			Rdtsc(isa.R1).
			FDiv(isa.F3, isa.F1, isa.F2).
			FMov(isa.F4, isa.F3). // dependent: orders the final rdtsc
			Rdtsc(isa.R2).
			Halt().MustBuild()
		ctx := r.run(t, prog, 100_000)
		return ctx.Reg(isa.R2) - ctx.Reg(isa.R1)
	}
	normal := timeOf(math.Float64bits(3.0), math.Float64bits(1.5))
	subnormal := timeOf(math.Float64bits(sub), math.Float64bits(2.0))
	if subnormal < normal+uint64(cfg.SubnormalPenalty)/2 {
		t.Errorf("subnormal fdiv %d cycles vs normal %d; penalty not applied", subnormal, normal)
	}
}

func TestSMTPortContention(t *testing.T) {
	cfg := DefaultConfig()
	phys := mem.NewPhysMem(16 << 20)
	core := NewCore(cfg, phys)
	as0, _ := mem.NewAddressSpace(phys, 1)
	as1, _ := mem.NewAddressSpace(phys, 2)
	core.Context(0).SetAddressSpace(as0)
	core.Context(1).SetAddressSpace(as1)

	divLoop := func(iters int64) *isa.Program {
		return isa.NewBuilder().
			MovImm(isa.R1, iters).
			FLoadImm(isa.F1, int64(math.Float64bits(3.0))).
			FLoadImm(isa.F2, int64(math.Float64bits(1.5))).
			Label("loop").
			FDiv(isa.F3, isa.F1, isa.F2).
			FMov(isa.F1, isa.F3). // dependent chain: one div at a time per ctx
			AddImm(isa.R1, isa.R1, -1).
			Bne(isa.R1, isa.R0, "loop").
			Halt().MustBuild()
	}
	mulLoop := func(iters int64) *isa.Program {
		return isa.NewBuilder().
			MovImm(isa.R1, iters).
			MovImm(isa.R2, 3).
			Label("loop").
			Mul(isa.R3, isa.R2, isa.R2).
			AddImm(isa.R1, isa.R1, -1).
			Bne(isa.R1, isa.R0, "loop").
			Halt().MustBuild()
	}

	// Run 1: monitor divs alone.
	core.Context(0).SetProgram(divLoop(100), 0)
	start := core.Cycle()
	core.Run(1_000_000)
	alone := core.Cycle() - start

	// Run 2: monitor divs with a competing div thread.
	core2 := NewCore(cfg, phys)
	core2.Context(0).SetAddressSpace(as0)
	core2.Context(1).SetAddressSpace(as1)
	core2.Context(0).SetProgram(divLoop(100), 0)
	core2.Context(1).SetProgram(divLoop(100), 0)
	start = core2.Cycle()
	core2.Run(2_000_000)
	contended := core2.Cycle() - start

	// Run 3: monitor divs with a competing mul thread.
	core3 := NewCore(cfg, phys)
	core3.Context(0).SetAddressSpace(as0)
	core3.Context(1).SetAddressSpace(as1)
	core3.Context(0).SetProgram(divLoop(100), 0)
	core3.Context(1).SetProgram(mulLoop(100), 0)
	start = core3.Cycle()
	core3.RunUntil(func() bool { return core3.Context(0).Halted() }, 2_000_000)
	withMul := core3.Cycle() - start

	if contended < alone+alone/2 {
		t.Errorf("div vs div: %d cycles, alone %d; no port contention visible", contended, alone)
	}
	if withMul > alone+alone/4 {
		t.Errorf("div vs mul: %d cycles, alone %d; mul thread should not contend on divider", withMul, alone)
	}
}

func TestTxAbortRollsBackRegisters(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		MovImm(isa.R1, 1).
		TxBegin("abort").
		MovImm(isa.R1, 2).
		TxAbort().
		MovImm(isa.R1, 3). // skipped: abort redirects
		Halt().
		Label("abort").
		MovImm(isa.R2, 99).
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R1); got != 1 {
		t.Errorf("r1 = %d, want 1 (rolled back)", got)
	}
	if got := ctx.Reg(isa.R2); got != 99 {
		t.Errorf("r2 = %d, abort handler did not run", got)
	}
	if got := ctx.Reg(AbortReg); got != 1 {
		t.Errorf("abort reg = %d, want 1", got)
	}
	if ctx.InTx() {
		t.Error("still in transaction after abort")
	}
}

func TestTxCommitKeepsResults(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		TxBegin("abort").
		MovImm(isa.R1, 42).
		TxEnd().
		Halt().
		Label("abort").
		MovImm(isa.R1, 7).
		Halt().MustBuild()
	ctx := r.run(t, prog, 100_000)
	if got := ctx.Reg(isa.R1); got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
	if ctx.Stats().TxAborts != 0 {
		t.Errorf("TxAborts = %d", ctx.Stats().TxAborts)
	}
}

// TestFaultInTxAborts: a page fault inside a transaction aborts to the
// handler instead of trapping to the OS — the TSX property T-SGX uses to
// hide page faults from the malicious OS (§8).
func TestFaultInTxAborts(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x70_0000)
	r.mapPage(t, va)
	if _, err := r.as.SetPresent(va, false); err != nil {
		t.Fatal(err)
	}
	osSawFault := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		osSawFault = true
		return FaultOutcome{Terminate: true}
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		TxBegin("abort").
		Load(isa.R2, isa.R1, 0). // faults inside tx
		TxEnd().
		Halt().
		Label("abort").
		MovImm(isa.R3, 1).
		Halt().MustBuild()
	ctx := r.run(t, prog, 1_000_000)
	if osSawFault {
		t.Error("OS saw the fault despite the transaction")
	}
	if ctx.Reg(isa.R3) != 1 {
		t.Error("abort handler did not run")
	}
	if ctx.Stats().TxAborts != 1 {
		t.Errorf("TxAborts = %d, want 1", ctx.Stats().TxAborts)
	}
}

func TestExternalTxAbort(t *testing.T) {
	r := newRig(t, DefaultConfig())
	prog := isa.NewBuilder().
		TxBegin("abort").
		Label("spin").
		AddImm(isa.R1, isa.R1, 1).
		Jmp("spin").
		Label("abort").
		MovImm(isa.R2, 5).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.RunUntil(func() bool { return ctx.InTx() }, 100_000)
	if !ctx.InTx() {
		t.Fatal("transaction never started")
	}
	if !r.core.AbortTx(0, "test-induced") {
		t.Fatal("AbortTx reported no transaction")
	}
	r.core.Run(100_000)
	if !ctx.Halted() {
		t.Fatal("did not reach abort handler")
	}
	if ctx.Reg(isa.R2) != 5 {
		t.Error("abort handler did not run after external abort")
	}
	if r.core.AbortTx(0, "again") {
		t.Error("AbortTx succeeded with no active transaction")
	}
}

func TestRdrandDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := DefaultConfig()
		cfg.RandSeed = seed
		r := newRig(t, cfg)
		prog := isa.NewBuilder().Rdrand(isa.R1).Halt().MustBuild()
		ctx := r.run(t, prog, 10_000)
		return ctx.Reg(isa.R1)
	}
	if run(1) != run(1) {
		t.Error("same seed produced different rdrand values")
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical rdrand values")
	}
}

// TestFencedRdrandBlocksTransmit: with the Intel fence (§7.2), the
// transmitter after RDRAND never executes while an older replay handle is
// outstanding — the replay-bias attack is defeated.
func TestFencedRdrandBlocksTransmit(t *testing.T) {
	for _, fenced := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FencedRdrand = fenced
		r := newRig(t, cfg)
		handleVA := mem.Addr(0x40_0000)
		arrayVA := mem.Addr(0x50_0000)
		r.mapPage(t, handleVA)
		r.mapPage(t, arrayVA)
		if _, err := r.as.SetPresent(handleVA, false); err != nil {
			t.Fatal(err)
		}
		arrayPA, err := r.as.Translate(arrayVA)
		if err != nil {
			t.Fatal(err)
		}
		released := false
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			released = true
			return FaultOutcome{Terminate: true}
		}))
		prog := isa.NewBuilder().
			MovImm(isa.R1, int64(handleVA)).
			MovImm(isa.R2, int64(arrayVA)).
			Load(isa.R3, isa.R1, 0). // replay handle
			Rdrand(isa.R4).
			AndImm(isa.R5, isa.R4, 0). // mask to 0 so the address is deterministic
			Add(isa.R6, isa.R2, isa.R5).
			Load(isa.R7, isa.R6, 0). // transmitter
			Halt().MustBuild()
		ctx := r.core.Context(0)
		ctx.SetProgram(prog, 0)
		r.core.RunUntil(func() bool { return released }, 1_000_000)
		leaked := r.core.Hierarchy().LevelOf(arrayPA) != cache.LevelMem
		if fenced && leaked {
			t.Error("fenced RDRAND: transmitter still leaked")
		}
		if !fenced && !leaked {
			t.Error("unfenced RDRAND: transmitter did not leak")
		}
	}
}

func TestContextIsolationAcrossSMT(t *testing.T) {
	cfg := DefaultConfig()
	phys := mem.NewPhysMem(16 << 20)
	core := NewCore(cfg, phys)
	as0, _ := mem.NewAddressSpace(phys, 1)
	as1, _ := mem.NewAddressSpace(phys, 2)
	core.Context(0).SetAddressSpace(as0)
	core.Context(1).SetAddressSpace(as1)
	p0 := isa.NewBuilder().MovImm(isa.R1, 10).Halt().MustBuild()
	p1 := isa.NewBuilder().MovImm(isa.R1, 20).Halt().MustBuild()
	core.Context(0).SetProgram(p0, 0)
	core.Context(1).SetProgram(p1, 0)
	core.Run(10_000)
	if core.Context(0).Reg(isa.R1) != 10 || core.Context(1).Reg(isa.R1) != 20 {
		t.Error("SMT contexts interfered with each other's registers")
	}
}

func TestTracerSeesLifecycle(t *testing.T) {
	r := newRig(t, DefaultConfig())
	var kinds = map[EventKind]int{}
	r.core.SetTracer(TracerFunc(func(ev Event) { kinds[ev.Kind]++ }))
	prog := isa.NewBuilder().MovImm(isa.R1, 1).Halt().MustBuild()
	r.run(t, prog, 10_000)
	for _, k := range []EventKind{EvFetch, EvIssue, EvComplete, EvRetire} {
		if kinds[k] == 0 {
			t.Errorf("no %s events traced", k)
		}
	}
}

func TestHandlerLatencyStallsOnlyFaultingContext(t *testing.T) {
	cfg := DefaultConfig()
	phys := mem.NewPhysMem(16 << 20)
	core := NewCore(cfg, phys)
	as0, _ := mem.NewAddressSpace(phys, 1)
	as1, _ := mem.NewAddressSpace(phys, 2)
	core.Context(0).SetAddressSpace(as0)
	core.Context(1).SetAddressSpace(as1)

	va := mem.Addr(0x40_0000)
	if _, err := as0.MapNew(va, mem.FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, err := as0.SetPresent(va, false); err != nil {
		t.Fatal(err)
	}
	core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		if _, err := as0.SetPresent(va, true); err != nil {
			panic(err)
		}
		return FaultOutcome{HandlerLatency: 10_000}
	}))

	faulter := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Load(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	spinner := isa.NewBuilder().
		MovImm(isa.R1, 2000).
		Label("loop").
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	core.Context(0).SetProgram(faulter, 0)
	core.Context(1).SetProgram(spinner, 0)
	core.Run(1_000_000)
	if !core.Context(0).Halted() || !core.Context(1).Halted() {
		t.Fatal("contexts did not halt")
	}
	// The spinner retires ~3 instructions per iteration; with the faulter
	// stalled 10k cycles the spinner must have finished long before.
	if core.Context(0).Stats().StallCycles < 10_000 {
		t.Errorf("faulter stall cycles = %d", core.Context(0).Stats().StallCycles)
	}
	if core.Context(1).Stats().StallCycles != 0 {
		t.Errorf("spinner stalled %d cycles", core.Context(1).Stats().StallCycles)
	}
}

func TestWriteProtectionFaults(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := mem.Addr(0x80_0000)
	if _, err := r.as.MapNew(va, mem.FlagUser); err != nil { // read-only
		t.Fatal(err)
	}
	sawWriteFault := false
	r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
		sawWriteFault = f.Write
		return FaultOutcome{Terminate: true}
	}))
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		MovImm(isa.R2, 1).
		Store(isa.R2, isa.R1, 0).
		Halt().MustBuild()
	ctx := r.core.Context(0)
	ctx.SetProgram(prog, 0)
	r.core.Run(1_000_000)
	if !sawWriteFault {
		t.Error("write to read-only page did not fault with Write=true")
	}
}
