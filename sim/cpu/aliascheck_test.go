package cpu

import (
	"math/rand"
	"testing"

	"microscope/sim/cpu/cputest"
)

// TestAliasFuzzTriggersViolations guards the heavy-aliasing differential
// fuzz against vacuity: the generated programs must actually drive the
// memory-order-violation recovery path (they do — hundreds of squashes —
// while TestDifferentialHeavyAliasing proves the results stay bit-exact).
func TestAliasFuzzTriggersViolations(t *testing.T) {
	totalViolations := uint64(0)
	for seed := int64(1000); seed < 1040; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := cputest.GenAliasProgram(rng)
		as := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), as.Phys())
		core.Context(0).SetAddressSpace(as)
		core.Context(0).SetProgram(prog, 0)
		core.Run(20_000_000)
		totalViolations += core.Context(0).Stats().MemOrderViolations
	}
	t.Logf("memory-order violations across 40 aliased programs: %d", totalViolations)
	if totalViolations == 0 {
		t.Error("aliasing fuzz never triggered a memory-order violation")
	}
}
