package cpu

import (
	"math"
	"math/rand"
	"testing"

	"microscope/sim/isa"
)

// TestAliasFuzzTriggersViolations guards the heavy-aliasing differential
// fuzz against vacuity: the generated programs must actually drive the
// memory-order-violation recovery path (they do — hundreds of squashes —
// while TestDifferentialHeavyAliasing proves the results stay bit-exact).
func TestAliasFuzzTriggersViolations(t *testing.T) {
	totalViolations := uint64(0)
	for seed := int64(1000); seed < 1040; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &progGen{rng: rng, b: isa.NewBuilder()}
		g.b.MovImm(diffBase, int64(diffDataVA))
		g.b.FLoadImm(isa.F1, int64(math.Float64bits(2.0)))
		slot := func() int64 { return int64(rng.Intn(4)) * 8 }
		for i := 0; i < 120; i++ {
			switch rng.Intn(6) {
			case 0:
				g.b.MovImm(g.reg(), int64(rng.Uint64()%100_000))
			case 1:
				g.b.Add(g.reg(), g.reg(), g.reg())
			case 2:
				g.b.Mul(g.reg(), g.reg(), g.reg())
			case 3:
				g.b.Load(g.reg(), diffBase, slot())
			case 4:
				g.b.Store(g.reg(), diffBase, slot())
			case 5:
				g.b.Div(g.reg(), g.reg(), g.reg())
			}
		}
		g.b.Halt()
		prog := g.b.MustBuild()
		as := newDiffSpace(t, seed)
		core := NewCore(DefaultConfig(), as.Phys())
		core.Context(0).SetAddressSpace(as)
		core.Context(0).SetProgram(prog, 0)
		core.Run(20_000_000)
		totalViolations += core.Context(0).Stats().MemOrderViolations
	}
	t.Logf("memory-order violations across 40 aliased programs: %d", totalViolations)
	if totalViolations == 0 {
		t.Error("aliasing fuzz never triggered a memory-order violation")
	}
}
