package cpu

import (
	"fmt"
	"math"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Reference is a trivial sequential interpreter for the ISA with the same
// architectural semantics as the out-of-order core but none of its
// microarchitecture. It exists for differential testing: any terminating
// program without faults must leave identical architectural state on both
// engines.
type Reference struct {
	as    *mem.AddressSpace
	regs  [isa.NumRegs]uint64
	pc    int
	prog  *isa.Program
	rng   uint64
	steps uint64

	inTx       bool
	checkpoint [isa.NumRegs]uint64
	abortPC    int
	txAborts   uint64
}

// NewReference returns an interpreter over the address space.
func NewReference(as *mem.AddressSpace, randSeed uint64) *Reference {
	return &Reference{as: as, rng: randSeed | 1}
}

// Reg returns the architectural value of r.
func (r *Reference) Reg(reg isa.Reg) uint64 { return r.regs[reg] }

// SetReg sets a register.
func (r *Reference) SetReg(reg isa.Reg, v uint64) { r.regs[reg] = v }

// Steps returns the number of executed instructions.
func (r *Reference) Steps() uint64 { return r.steps }

// Run executes the program from entry until halt, program end, or the
// step budget is exhausted. It returns an error on a page fault (the
// reference engine models no OS) or budget exhaustion.
func (r *Reference) Run(p *isa.Program, entry int, maxSteps uint64) error {
	r.prog = p
	r.pc = entry
	for r.steps = 0; r.steps < maxSteps; r.steps++ {
		if r.pc < 0 || r.pc >= p.Len() {
			return nil
		}
		in := p.At(r.pc)
		next := r.pc + 1
		a, b := r.regs[in.Rs1], r.regs[in.Rs2]
		switch in.Op {
		case isa.OpNop, isa.OpFence:
		case isa.OpHalt:
			return nil
		case isa.OpMovImm, isa.OpFLoadImm:
			r.regs[in.Rd] = uint64(in.Imm)
		case isa.OpMov, isa.OpFMov:
			r.regs[in.Rd] = a
		case isa.OpAdd:
			r.regs[in.Rd] = a + b
		case isa.OpAddImm:
			r.regs[in.Rd] = a + uint64(in.Imm)
		case isa.OpSub:
			r.regs[in.Rd] = a - b
		case isa.OpAnd:
			r.regs[in.Rd] = a & b
		case isa.OpAndImm:
			r.regs[in.Rd] = a & uint64(in.Imm)
		case isa.OpOr:
			r.regs[in.Rd] = a | b
		case isa.OpXor:
			r.regs[in.Rd] = a ^ b
		case isa.OpShl:
			r.regs[in.Rd] = a << (b & 63)
		case isa.OpShlImm:
			r.regs[in.Rd] = a << (uint64(in.Imm) & 63)
		case isa.OpShr:
			r.regs[in.Rd] = a >> (b & 63)
		case isa.OpShrImm:
			r.regs[in.Rd] = a >> (uint64(in.Imm) & 63)
		case isa.OpMul:
			r.regs[in.Rd] = a * b
		case isa.OpDiv:
			if b != 0 {
				r.regs[in.Rd] = a / b
			} else {
				r.regs[in.Rd] = 0
			}
		case isa.OpFAdd:
			r.regs[in.Rd] = math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		case isa.OpFMul:
			r.regs[in.Rd] = math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		case isa.OpFDiv:
			r.regs[in.Rd] = math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
		case isa.OpLoad, isa.OpLoadF:
			v, err := r.load(a+uint64(in.Imm), 8)
			if err != nil {
				return err
			}
			r.regs[in.Rd] = v
		case isa.OpLoad32:
			v, err := r.load(a+uint64(in.Imm), 4)
			if err != nil {
				return err
			}
			r.regs[in.Rd] = v
		case isa.OpStore, isa.OpStoreF:
			if err := r.store(a+uint64(in.Imm), b, 8); err != nil {
				return err
			}
		case isa.OpStore32:
			if err := r.store(a+uint64(in.Imm), b, 4); err != nil {
				return err
			}
		case isa.OpBeq:
			if a == b {
				next = in.Target
			}
		case isa.OpBne:
			if a != b {
				next = in.Target
			}
		case isa.OpBlt:
			if int64(a) < int64(b) {
				next = in.Target
			}
		case isa.OpBge:
			if int64(a) >= int64(b) {
				next = in.Target
			}
		case isa.OpJmp:
			next = in.Target
		case isa.OpRdtsc:
			// The reference engine has no cycle clock; expose the step
			// count so deltas are still monotone.
			r.regs[in.Rd] = r.steps
		case isa.OpRdrand:
			x := r.rng
			x ^= x >> 12
			x ^= x << 25
			x ^= x >> 27
			r.rng = x
			r.regs[in.Rd] = x * 0x2545F4914F6CDD1D
		case isa.OpTxBegin:
			r.inTx = true
			r.checkpoint = r.regs
			r.abortPC = in.Target
		case isa.OpTxEnd:
			r.inTx = false
		case isa.OpTxAbort:
			if r.inTx {
				r.txAborts++
				r.regs = r.checkpoint
				r.regs[AbortReg] = r.txAborts
				r.inTx = false
				next = r.abortPC
			}
		default:
			return fmt.Errorf("cpu: reference: unhandled op %s", in.Op)
		}
		r.pc = next
	}
	return fmt.Errorf("cpu: reference: step budget exhausted at pc=%d", r.pc)
}

func (r *Reference) load(va mem.Addr, size int) (uint64, error) {
	pa, err := r.as.Translate(va)
	if err != nil {
		return 0, err
	}
	if size == 4 {
		return uint64(r.as.Phys().Read32(pa)), nil
	}
	return r.as.Phys().Read64(pa), nil
}

func (r *Reference) store(va mem.Addr, v uint64, size int) error {
	pa, err := r.as.Translate(va)
	if err != nil {
		return err
	}
	if size == 4 {
		r.as.Phys().Write32(pa, uint32(v))
	} else {
		r.as.Phys().Write64(pa, v)
	}
	return nil
}
