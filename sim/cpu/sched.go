package cpu

import (
	"sort"

	"microscope/sim/isa"
	"microscope/sim/pipeline"
)

// The event-driven scheduler: per-context wakeup and selection state that
// replaces the issue/complete stages' O(ROB) scans.
//
//   - Per-slot waiter lists wire each in-flight producer to the operands
//     waiting on it; the completion broadcast captures the result (and its
//     shadow taint) into the consumers and counts down Entry.NPending.
//   - Per-port-class ready lists hold dispatched entries whose operands
//     are all captured, in seq order; the issue stage merges the class
//     heads instead of scanning the ROB (structural failure is
//     class-uniform, so one failed head parks the whole class).
//   - A completion min-heap keyed (CompleteAt, Seq) replaces the
//     per-cycle walk for due completions and yields the exact
//     nextCompleteAt the fast-forward engine needs.
//
// All of this state is derived from the ROB and is rebuilt from scratch
// by Context.recount after every squash or snapshot restore. Entries are
// referenced as (pointer, seq) pairs: slots recycle, so a retained
// reference is valid only while the seqs still match — stale references
// (an issued entry still sitting in its ready list, a heap node orphaned
// by a mid-batch rebuild) are dropped lazily at the next encounter.
type schedState struct {
	ready [pipeline.NumPortClasses][]readyRef
	heap  []compNode

	// rdtscQ holds ready RDTSC entries, which issue only at the ROB head
	// (serialized timer reads). Keeping them off the ALU ready list means
	// an issue pass checks exactly one — the oldest, the only one that
	// can possibly be at the head — instead of skipping every in-flight
	// timer read, and issued ALU refs never pile up behind a parked
	// timer read where the front compaction cannot drop them. RDTSC has
	// no source operands, so entries always arrive here straight from
	// dispatch, in seq order.
	rdtscQ []readyRef

	// waiterHead[slot] is the first waiter node of the producer in that
	// slot (-1 none); a node encodes (consumer slot)*2 + operand index,
	// and waitNext links nodes. Lists are consumed whole at broadcast and
	// rebuilt whole at recount, so no stale node ever survives a squash.
	waiterHead []int32
	waitNext   []int32

	// Cached divider occupancy (subnormal classification is a measurable
	// share of issue time when a ready FDiv retries against the busy
	// non-pipelined divider). Keyed by seq: slot recycling can never
	// produce a false hit because seqs are forever-unique.
	occSeq []uint64
	occVal []uint64

	// gen increments on every rebuild; an issue pass that observes it
	// change knows a mid-pass squash invalidated its cursors.
	gen uint64
}

// readyRef references a ready dispatched entry by slab slot; stale once
// the slot's seq no longer matches. Slot-based (pointer-free) on purpose:
// the ready lists are appended, binary-inserted and compacted every pass,
// and with a *Entry inside every one of those writes would run the GC
// write barrier — a double-digit share of issue time before the switch.
type readyRef struct {
	seq  uint64
	slot int32
}

// compNode is one completion-heap node; stale once the entry is no
// longer the issued instruction the node was pushed for. Pointer-free
// for the same reason as readyRef.
type compNode struct {
	at   uint64
	seq  uint64
	slot int32
}

func (s *schedState) init(capacity int) {
	for i := range s.ready {
		s.ready[i] = make([]readyRef, 0, capacity)
	}
	s.rdtscQ = make([]readyRef, 0, capacity)
	s.heap = make([]compNode, 0, capacity)
	s.waiterHead = make([]int32, capacity)
	s.waitNext = make([]int32, 2*capacity)
	s.occSeq = make([]uint64, capacity)
	s.occVal = make([]uint64, capacity)
	for i := range s.waiterHead {
		s.waiterHead[i] = -1
	}
}

func heapLess(a, b compNode) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (s *schedState) heapPush(n compNode) {
	h := append(s.heap, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.heap = h
}

func (s *schedState) heapPop() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && heapLess(h[l], h[m]) {
			m = l
		}
		if r < n && heapLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.heap = h
}

// schedDispatch links a freshly dispatched entry into the wakeup state:
// waiter nodes for operands still pending on a producer, or straight
// onto its class ready list when everything was captured at dispatch.
func (ctx *Context) schedDispatch(e *pipeline.Entry) {
	s := &ctx.sched
	n := int8(0)
	for i := range e.Src {
		if e.Src[i].Ready {
			continue
		}
		p := e.Src[i].Producer
		node := e.Slot*2 + int32(i)
		s.waitNext[node] = s.waiterHead[p.Slot]
		s.waiterHead[p.Slot] = node
		n++
	}
	e.NPending = n
	if n == 0 {
		ctx.readyInsert(e)
	}
}

// readyInsert places e on its port class's ready list, keeping the list
// seq-sorted. Dispatch-time inserts are always the youngest seq so far
// (append); broadcast-time wakeups of older entries binary-insert.
func (ctx *Context) readyInsert(e *pipeline.Entry) {
	if e.Instr.Op == isa.OpRdtsc {
		ctx.sched.rdtscQ = append(ctx.sched.rdtscQ, readyRef{seq: e.Seq, slot: e.Slot})
		return
	}
	cls := pipeline.ClassOf(e.Instr.Op)
	list := ctx.sched.ready[cls]
	n := len(list)
	if n == 0 || list[n-1].seq < e.Seq {
		ctx.sched.ready[cls] = append(list, readyRef{seq: e.Seq, slot: e.Slot})
		return
	}
	i := sort.Search(n, func(i int) bool { return list[i].seq > e.Seq })
	list = append(list, readyRef{})
	copy(list[i+1:], list[i:])
	list[i] = readyRef{seq: e.Seq, slot: e.Slot}
	ctx.sched.ready[cls] = list
}

// broadcast delivers a completed producer's result to every waiting
// operand: the capture the consumers' OperandsReady check relies on.
// When a shadow tracker is attached the producer's final taint rides
// along in PendShadow (folded into SrcShadow at the consumer's issue, so
// taint visibility timing is unchanged). Consumers whose last pending
// operand arrives move to their ready list.
//
// The list is consumed whole. A node can only be stale here if its
// consumer slot was recycled without an intervening squash — impossible,
// since a pending consumer can neither retire nor issue — so the
// validation is pure insurance.
func (ctx *Context) broadcast(p *pipeline.Entry) {
	s := &ctx.sched
	node := s.waiterHead[p.Slot]
	if node < 0 {
		return
	}
	s.waiterHead[p.Slot] = -1
	shadow := ctx.core.shadow != nil
	for node >= 0 {
		next := s.waitNext[node]
		e := ctx.rob.BySlot(node >> 1)
		i := node & 1
		if e.State == pipeline.StateDispatched && !e.Src[i].Ready && e.Src[i].Producer == p {
			e.Src[i].Ready = true
			e.Src[i].Value = p.Result
			if shadow {
				e.PendShadow[i] |= p.Shadow
			}
			e.NPending--
			if e.NPending == 0 {
				ctx.readyInsert(e)
			}
		}
		node = next
	}
}

// schedRebuild reconstructs the scheduler state from the surviving ROB
// contents (squash recovery and snapshot restore), bumping gen so an
// in-progress issue pass knows its cursors died. Operands that were
// waiting on a producer that has already completed — possible only in a
// restored image, since a live broadcast fires at the completion itself —
// are captured directly rather than re-linked, because a completed
// producer will never broadcast again.
func (ctx *Context) schedRebuild() {
	s := &ctx.sched
	s.gen++
	s.heap = s.heap[:0]
	s.rdtscQ = s.rdtscQ[:0]
	for i := range s.ready {
		s.ready[i] = s.ready[i][:0]
	}
	for i := range s.waiterHead {
		s.waiterHead[i] = -1
	}
	shadow := ctx.core.shadow != nil
	for _, e := range ctx.rob.Entries() {
		switch e.State {
		case pipeline.StateDispatched:
			n := int8(0)
			for i := range e.Src {
				if e.Src[i].Ready {
					continue
				}
				p := e.Src[i].Producer
				if p.State == pipeline.StateCompleted || p.State == pipeline.StateRetired {
					e.Src[i].Ready = true
					e.Src[i].Value = p.Result
					if shadow {
						e.PendShadow[i] |= p.Shadow
					}
					continue
				}
				node := e.Slot*2 + int32(i)
				s.waitNext[node] = s.waiterHead[p.Slot]
				s.waiterHead[p.Slot] = node
				n++
			}
			e.NPending = n
			if n == 0 {
				// ROB order is seq order: the appends inside stay sorted.
				ctx.readyInsert(e)
			}
		case pipeline.StateIssued:
			s.heapPush(compNode{at: e.CompleteAt, seq: e.Seq, slot: e.Slot})
		}
	}
}
