package cpu

// Jamais Vu-style replay detection (Config.SquashThreshold): hardware
// counts, per PC, how many times the instruction at that PC has been
// flushed from the pipeline by a fault without ever retiring, and flags
// the context when one PC's count reaches the threshold. The signature
// of a microarchitectural replay attack is exactly that shape — the
// replay handle is squashed by the same fault again and again while the
// victim makes no architectural progress — whereas benign demand paging
// faults once (maybe twice) per page at a PC that then retires and
// clears its counter.
//
// Two clearing rules bound the counters' lifetime:
//
//   - retirement: when a PC retires, its counter is deleted (jvRetire).
//     A loop body that faults on every iteration still retires between
//     faults, so it never accumulates.
//   - epochs: when Config.SquashEpoch > 0 and the cycle counter crosses
//     an epoch boundary, the whole table clears. The clear is lazy —
//     applied at the next counted fault, from the epoch index derived
//     from the current cycle — so it is purely event-driven and
//     bit-identical under fast-forward (no per-cycle work exists to
//     skip).
//
// The counters are deliberately invisible to the replay-memo
// fingerprint (they are detector state, not machine state a window's
// execution depends on), so enabling the detector self-gates the memo:
// memoUsable refuses to record or splice while SquashThreshold > 0,
// keeping every fault delivery — and therefore every counted squash —
// live. The differential tests in attack/experiments prove runs with
// the detector on are otherwise bit-identical.

// jvFault counts a fault-squash of the instruction at pc and raises a
// replay alarm when the count reaches the configured threshold. Called
// at every precise fault delivery (faultPre) and at every in-transaction
// fault that aborts to the abort handler instead of trapping — the
// T-SGX-style self-replay the detector must also see.
func (c *Core) jvFault(ctx *Context, pc int) {
	n := c.cfg.SquashThreshold
	if n <= 0 {
		return
	}
	if ep := c.cfg.SquashEpoch; ep > 0 {
		if e := c.cycle / ep; e != ctx.jvEpoch {
			ctx.jvEpoch = e
			clear(ctx.jvCounts)
		}
	}
	if ctx.jvCounts == nil {
		ctx.jvCounts = make(map[int]uint32)
	}
	ctx.jvCounts[pc]++
	if ctx.jvCounts[pc] == uint32(n) {
		// Exactly-at-threshold so a sustained replay raises one alarm
		// per trip, not one per further squash.
		ctx.stats.ReplayAlarms++
	}
}

// jvRetire clears the retired PC's squash counter: re-execution that
// reaches retirement is forward progress, not a replay.
func (c *Core) jvRetire(ctx *Context, pc int) {
	if c.cfg.SquashThreshold > 0 && len(ctx.jvCounts) > 0 {
		delete(ctx.jvCounts, pc)
	}
}

// jvReset drops all detector state (program replacement: PCs name
// different instructions now).
func (ctx *Context) jvReset() {
	ctx.jvCounts = nil
	ctx.jvEpoch = 0
}
