package cpu

import (
	"fmt"
	"hash/fnv"
	"testing"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Edge-case tests for the event-driven fast-forward engine: each scenario
// is run with Config.FastForward on and off and the two runs must produce
// identical cycle-stamped event streams and final cycle counts. The
// scenarios target the boundaries of the next-event computation: a skip
// landing exactly on a handler-stall expiry, wakeups keyed to the
// non-pipelined divider's busy-until cycle, two SMT contexts waking
// simultaneously, and RunUntil's condition-evaluation schedule.

type ffTrace struct {
	hash    uint64
	events  int
	cycles  uint64
	skipped uint64
}

// ffCompare builds two identical rigs differing only in FastForward, lets
// setup load programs/handlers, runs both, and requires identical traces.
// It returns the number of cycles the skip-on run jumped over, which the
// caller asserts is nonzero when the scenario is meant to exercise a skip.
func ffCompare(t *testing.T, setup func(t *testing.T, r *testRig), maxCycles uint64) uint64 {
	t.Helper()
	var runs [2]ffTrace
	for i, ff := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.FastForward = ff
		r := newRig(t, cfg)
		h := fnv.New64a()
		n := 0
		r.core.SetTracer(TracerFunc(func(ev Event) {
			n++
			fmt.Fprintf(h, "%d|%d|%d|%d|%v|%s\n",
				ev.Cycle, ev.Context, ev.Kind, ev.PC, ev.Instr, ev.Detail)
		}))
		setup(t, r)
		r.core.Run(maxCycles)
		runs[i] = ffTrace{
			hash:    h.Sum64(),
			events:  n,
			cycles:  r.core.Cycle(),
			skipped: r.core.SkippedCycles(),
		}
	}
	on, off := runs[0], runs[1]
	if off.skipped != 0 {
		t.Errorf("skip-off run skipped %d cycles", off.skipped)
	}
	if on.hash != off.hash || on.events != off.events {
		t.Errorf("trace diverges: %d events %#x (on) vs %d events %#x (off)",
			on.events, on.hash, off.events, off.hash)
	}
	if on.cycles != off.cycles {
		t.Errorf("final cycle diverges: %d (on) vs %d (off)", on.cycles, off.cycles)
	}
	return on.skipped
}

// TestFastForwardLandsOnStallExpiry: a faulting load puts the only
// context into a long handler stall with an otherwise empty pipeline, so
// the next-event computation must aim the skip exactly at stallUntil —
// one cycle early or late shifts every subsequent retirement.
func TestFastForwardLandsOnStallExpiry(t *testing.T) {
	const handlerLat = 12_345
	setup := func(t *testing.T, r *testRig) {
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			if _, err := r.as.MapNew(mem.PageBase(f.VA), mem.FlagUser|mem.FlagWritable); err != nil {
				return FaultOutcome{Terminate: true}
			}
			return FaultOutcome{HandlerLatency: handlerLat}
		}))
		p := isa.NewBuilder().
			MovImm(isa.R1, 0x0040_0000). // unmapped page: faults once
			Load(isa.R2, isa.R1, 0).
			AddImm(isa.R3, isa.R2, 1).
			Halt().MustBuild()
		r.core.Context(0).SetProgram(p, 0)
	}
	skipped := ffCompare(t, setup, 200_000)
	if skipped < handlerLat/2 {
		t.Errorf("skipped only %d cycles through a %d-cycle handler stall", skipped, handlerLat)
	}
}

// TestFastForwardDividerBusyWakeup: one context stalls in a fault handler
// while the other grinds through dependent divides on the non-pipelined
// divider. The skip targets interleave completion events, divider-free
// cycles (issue-quiesce wakeups) and the stall expiry.
func TestFastForwardDividerBusyWakeup(t *testing.T) {
	setup := func(t *testing.T, r *testRig) {
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			if _, err := r.as.MapNew(mem.PageBase(f.VA), mem.FlagUser|mem.FlagWritable); err != nil {
				return FaultOutcome{Terminate: true}
			}
			return FaultOutcome{HandlerLatency: 3_000}
		}))
		victim := isa.NewBuilder().
			MovImm(isa.R1, 0x0041_0000).
			Load(isa.R2, isa.R1, 0). // fault -> 3000-cycle stall
			Halt().MustBuild()
		b := isa.NewBuilder().
			MovImm(isa.R1, 1<<30).
			MovImm(isa.R2, 3)
		for i := 0; i < 20; i++ {
			b.Div(isa.R1, isa.R1, isa.R2). // dependent chain: one div in
							AddImm(isa.R1, isa.R1, 1<<20) // flight, successor quiesced
		}
		b.Rdtsc(isa.R4).Halt()
		r.core.Context(0).SetProgram(victim, 0)
		r.core.Context(1).SetProgram(b.MustBuild(), 0)
	}
	if skipped := ffCompare(t, setup, 200_000); skipped == 0 {
		t.Error("scenario skipped nothing")
	}
}

// TestFastForwardSimultaneousSMTWakeup: both contexts fault into stalls
// that expire on overlapping schedules; the skip must take the minimum
// across contexts so neither wakeup is jumped over.
func TestFastForwardSimultaneousSMTWakeup(t *testing.T) {
	setup := func(t *testing.T, r *testRig) {
		as1, err := mem.NewAddressSpace(r.core.Phys(), 2)
		if err != nil {
			t.Fatal(err)
		}
		r.core.Context(1).SetAddressSpace(as1)
		spaces := []*mem.AddressSpace{r.as, as1}
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			as := spaces[f.Context]
			if _, err := as.MapNew(mem.PageBase(f.VA), mem.FlagUser|mem.FlagWritable); err != nil {
				return FaultOutcome{Terminate: true}
			}
			// Equal latencies: with near-simultaneous faults the two
			// stalls expire on the same or adjacent cycles.
			return FaultOutcome{HandlerLatency: 5_000}
		}))
		prog := func(page int64) *isa.Program {
			return isa.NewBuilder().
				MovImm(isa.R1, page).
				Load(isa.R2, isa.R1, 0).
				Rdtsc(isa.R3).
				Halt().MustBuild()
		}
		r.core.Context(0).SetProgram(prog(0x0042_0000), 0)
		r.core.Context(1).SetProgram(prog(0x0043_0000), 0)
	}
	if skipped := ffCompare(t, setup, 200_000); skipped == 0 {
		t.Error("scenario skipped nothing")
	}
}

// TestRunUntilCondSchedule: with fast-forward on, RunUntil evaluates its
// condition only at active cycles — but the cycles it does evaluate at
// must be a subset of the skip-off schedule (skipped cycles are no-ops,
// so the condition could not have changed there), and both runs must
// stop at the same cycle with the same verdict.
func TestRunUntilCondSchedule(t *testing.T) {
	const handlerLat = 8_000
	type result struct {
		met    bool
		stopAt uint64
		seen   map[uint64]bool
	}
	var runs [2]result
	for i, ff := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.FastForward = ff
		r := newRig(t, cfg)
		r.core.SetFaultHandler(FaultHandlerFunc(func(f PageFault) FaultOutcome {
			if _, err := r.as.MapNew(mem.PageBase(f.VA), mem.FlagUser|mem.FlagWritable); err != nil {
				return FaultOutcome{Terminate: true}
			}
			return FaultOutcome{HandlerLatency: handlerLat}
		}))
		p := isa.NewBuilder().
			MovImm(isa.R1, 0x0044_0000).
			Load(isa.R2, isa.R1, 0). // fault + long stall mid-run
			AddImm(isa.R3, isa.R2, 5).
			Halt().MustBuild()
		ctx := r.core.Context(0)
		ctx.SetProgram(p, 0)
		seen := map[uint64]bool{}
		met := r.core.RunUntil(func() bool {
			seen[r.core.Cycle()] = true
			return ctx.Stats().Retired >= 3
		}, 100_000)
		runs[i] = result{met: met, stopAt: r.core.Cycle(), seen: seen}
	}
	on, off := runs[0], runs[1]
	if on.met != off.met || on.stopAt != off.stopAt {
		t.Fatalf("RunUntil diverges: met=%v stop=%d (on) vs met=%v stop=%d (off)",
			on.met, on.stopAt, off.met, off.stopAt)
	}
	if !on.met {
		t.Fatal("condition never met")
	}
	for c := range on.seen {
		if !off.seen[c] {
			t.Errorf("skip-on evaluated cond at cycle %d, which skip-off never visited", c)
		}
	}
	if len(on.seen) >= len(off.seen) {
		t.Errorf("skip-on evaluated cond %d times, skip-off %d: nothing was skipped",
			len(on.seen), len(off.seen))
	}
}

// TestHaltedCounterConsistency: Core.Halted is maintained incrementally
// (halt events and program loads) rather than scanned; it must agree with
// a direct per-context scan through load/run/reload transitions.
func TestHaltedCounterConsistency(t *testing.T) {
	check := func(r *testRig, want bool, when string) {
		t.Helper()
		scan := true
		for i := 0; i < r.core.Contexts(); i++ {
			ctx := r.core.Context(i)
			if ctx.Program() != nil && !ctx.Halted() {
				scan = false
			}
		}
		if got := r.core.Halted(); got != scan || got != want {
			t.Fatalf("%s: Halted()=%v, scan=%v, want %v", when, got, scan, want)
		}
	}
	r := newRig(t, DefaultConfig())
	check(r, true, "no programs loaded")

	p := isa.NewBuilder().MovImm(isa.R1, 1).Halt().MustBuild()
	r.core.Context(0).SetProgram(p, 0)
	check(r, false, "ctx0 loaded")

	r.core.Run(10_000)
	check(r, true, "ctx0 halted")

	// Reloading a halted context revives it.
	r.core.Context(0).SetProgram(p, 0)
	check(r, false, "ctx0 reloaded")
	r.core.Run(10_000)
	check(r, true, "ctx0 halted again")

	// Second context: Halted must require both.
	r.core.Context(1).SetProgram(p, 0)
	check(r, false, "ctx1 loaded, ctx0 halted")
	r.core.Run(10_000)
	check(r, true, "both halted")

	// A context that never retires a halt keeps the core un-halted.
	b := isa.NewBuilder()
	b.Label("spin").Jmp("spin").Halt()
	r.core.Context(0).SetProgram(b.MustBuild(), 0)
	check(r, false, "ctx0 spinning")
	r.core.Run(10_000)
	if r.core.Halted() {
		t.Error("spinning context reported halted")
	}
}
