package cpu

import (
	"strings"
	"testing"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

func TestLoadProgramValidates(t *testing.T) {
	core := NewCore(DefaultConfig(), mem.NewPhysMem(1<<20))
	ctx := core.Context(0)

	good := isa.NewBuilder().MovImm(isa.R1, 1).Halt().MustBuild()
	if err := ctx.LoadProgram(good, 0); err != nil {
		t.Fatalf("well-formed program rejected: %v", err)
	}
	if err := ctx.LoadProgram(good, 5); err == nil {
		t.Fatal("out-of-range entry accepted")
	}

	// Control flow running off the end is caught at load time, not as an
	// execute-stage panic mid-simulation.
	bad := &isa.Program{Instrs: []isa.Instr{{Op: isa.OpMovImm, Rd: isa.R1, Imm: 1}}}
	err := ctx.LoadProgram(bad, 0)
	if err == nil || !strings.Contains(err.Error(), "falls off the end") {
		t.Fatalf("want falls-off-end error, got %v", err)
	}

	// Invalid opcodes are rejected with a descriptive error.
	bad = &isa.Program{Instrs: []isa.Instr{{Op: isa.Op(250)}, {Op: isa.OpHalt}}}
	if err := ctx.LoadProgram(bad, 0); err == nil {
		t.Fatal("invalid opcode accepted")
	}

	// SetProgram keeps the panicking contract for the same failures.
	defer func() {
		if recover() == nil {
			t.Fatal("SetProgram did not panic on invalid program")
		}
	}()
	ctx.SetProgram(bad, 0)
}
