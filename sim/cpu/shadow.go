package cpu

import "microscope/sim/pipeline"

// NumEventKinds is the number of tracer EventKind values. Tooling that
// must be total over event kinds (the sanitizer's classification table,
// its totality test) iterates EventKind(0)..EventKind(NumEventKinds-1).
const NumEventKinds = int(EvTxAbort) + 1

// ShadowTracker receives taint-propagation callbacks from the cycle
// engine. sim/sanitizer implements it; the core only calls it and never
// depends on what it computes, so an attached tracker cannot change
// timing, results, or the trace-event stream. Every call site is guarded
// by a nil check, preserving the zero-overhead-when-off property the
// no-alloc and trace-hash differentials pin down.
//
// Callback timing mirrors the tracer events exactly:
//
//   - ShadowDispatch fires after the entry is pushed into the ROB, with
//     Src operands (and hence rename producers) captured.
//   - ShadowIssue fires after execute: Result, Fault, EffAddr, PhysAddr
//     and WalkCycles are set. forward is the store-buffer entry a load
//     forwarded from (nil otherwise), so store-to-load forwarding can
//     propagate the store's data taint.
//   - ShadowFaultResolved fires when a pending fault is rescinded by the
//     mid-walk PTE race (recheckFault): the entry's Result was re-read
//     from memory and its taint must be re-derived.
//   - ShadowRetire fires at commit, before architectural effects; this
//     is where architectural shadow registers and shadow memory update
//     (transient stores never reach shadow memory).
//   - ShadowSquash fires once per squashed entry, before the ROB is
//     truncated (the entry still holds its pre-squash state); pending
//     transmit events of that entry finalize as transient.
//   - ShadowTxAbort fires after a transaction rollback restored the
//     architectural registers, so shadow registers roll back too.
type ShadowTracker interface {
	ShadowDispatch(ctx *Context, e *pipeline.Entry)
	ShadowIssue(ctx *Context, e *pipeline.Entry, forward *pipeline.Entry)
	ShadowFaultResolved(ctx *Context, e *pipeline.Entry)
	ShadowRetire(ctx *Context, e *pipeline.Entry)
	ShadowSquash(ctx *Context, e *pipeline.Entry)
	ShadowTxAbort(ctx *Context)
}

// SetShadow attaches a shadow-taint tracker (nil detaches). The replay
// memo is flushed and stays disabled while a tracker is attached: shadow
// state is not part of memo records, so a splice would desynchronise it.
func (c *Core) SetShadow(s ShadowTracker) {
	c.MemoFlush()
	c.shadow = s
}

// ShadowTracker returns the attached tracker, or nil.
func (c *Core) ShadowTracker() ShadowTracker { return c.shadow }
