package baseline

import (
	"testing"

	"microscope/attack/experiments"
	"microscope/crypto/taes"
)

func TestControlledChannelPageGranularity(t *testing.T) {
	for _, secret := range []bool{false, true} {
		res, err := RunControlledChannel(secret)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PageSecretCorrect {
			t.Errorf("secret=%t: page secret not recovered from fault trace %v",
				secret, res.FaultVPNs)
		}
		// The defining limitation: a same-page line secret is invisible.
		if res.LineSecretVisible {
			t.Error("line-granular secret visible at page granularity?!")
		}
		if len(res.FaultVPNs) == 0 {
			t.Error("no faults observed")
		}
	}
}

func TestSPMNoFaultsVisibleToVictim(t *testing.T) {
	for _, secret := range []bool{false, true} {
		res, err := RunSPM(secret)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PageSecretCorrect {
			t.Errorf("secret=%t: A-bit trace wrong: %v", secret, res.AccessedPages)
		}
		// SPM's selling point over controlled channels: no AEX storms.
		if res.VictimObservedFault {
			t.Error("SPM caused victim-visible faults")
		}
		if len(res.AccessedPages) == 0 {
			t.Error("no accessed pages recorded")
		}
	}
}

// TestPrimeProbeNeedsManyTracesAndLacksResolution quantifies the §2.4
// contrast: the noisy multi-run baseline needs tens-to-hundreds of victim
// runs to stabilize a UNION-only observation, while MicroScope recovers
// exact per-round sets from one run (TestAESFullTraceExtraction).
func TestPrimeProbeNeedsManyTracesAndLacksResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace baseline")
	}
	key := []byte("0123456789abcdef")
	pt := []byte("attack at dawn!!")
	res, err := RunPrimeProbe(key, pt, 0.20, 200, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("union truth=%016b single-run=%016b tracesTo99=%d",
		res.UnionTruth, res.SingleRunObserved, res.TracesTo99)
	if res.PerRoundResolved {
		t.Error("baseline claims per-round resolution")
	}
	// A single noisy trace is usually wrong...
	if res.SingleRunObserved == res.UnionTruth {
		t.Log("note: single noisy trace happened to be correct this seed")
	}
	// ...and convergence takes many victim runs (each a separate logical
	// execution, which the run-once threat model forbids).
	if res.TracesTo99 < 5 {
		t.Errorf("baseline stabilized after only %d traces; noise model too weak", res.TracesTo99)
	}

	// The MicroScope comparison: one logical run, exact per-round data.
	ext, err := experiments.RunAESExtraction(experiments.AESConfig{
		Key: key, Plaintext: pt, HandlerLatency: 5000, WalkLevels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := ext.Match(); !ok {
		t.Fatalf("MicroScope extraction failed: %s", diff)
	}
	// MicroScope's union must equal the baseline's target...
	var union uint16
	for r := 1; r < ext.Rounds; r++ {
		union |= ext.Extracted[r][1]
	}
	if union != res.UnionTruth {
		t.Errorf("MicroScope union %016b != baseline truth %016b", union, res.UnionTruth)
	}
	// ...with strictly more information (distinct per-round sets).
	distinct := map[uint16]bool{}
	for r := 1; r < ext.Rounds; r++ {
		distinct[ext.Extracted[r][1]] = true
	}
	if len(distinct) < 2 {
		t.Error("per-round sets not distinct; temporal resolution claim vacuous")
	}
}

func TestPrimeProbeNoiselessConvergesImmediately(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("attack at dawn!!")
	res, err := RunPrimeProbe(key, pt, 0, 25, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleRunObserved != res.UnionTruth {
		t.Errorf("noiseless single run %016b != truth %016b",
			res.SingleRunObserved, res.UnionTruth)
	}
	if res.TracesTo99 != 1 && res.TracesTo99 != -1 {
		// With zero noise the first estimate is already right; TracesTo99
		// reports 1 once the stability window fills.
		t.Logf("tracesTo99 = %d", res.TracesTo99)
	}
	_ = taes.LinesPerTable
}

// TestSGXStepIsHighResolutionButNoisy: interrupt stepping delivers many
// fine-grained observation points, but single-sample-per-step probing of
// a run-once victim suffers attribution errors even with a perfect probe
// (speculative run-ahead pollution, boundary-spanning windows) — the
// Table 1 "With Noise" classification. MicroScope's replay-based
// extraction of the same victim makes zero errors
// (TestAESFullTraceExtraction).
func TestSGXStepIsHighResolutionButNoisy(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("attack at dawn!!")

	clean, err := RunSGXStep(key, pt, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("perfect probe: steps=%d roundErrors=%d", clean.Steps, clean.RoundErrors)
	if clean.Steps < 30 {
		t.Errorf("only %d steps; stepping not fine-grained", clean.Steps)
	}
	if clean.RoundErrors == 0 {
		t.Error("stepping made zero round errors; speculative pollution not modelled?")
	}

	noisy, err := RunSGXStep(key, pt, 25, 23)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("noisy probe:   steps=%d roundErrors=%d", noisy.Steps, noisy.RoundErrors)
	if noisy.RoundErrors < clean.RoundErrors {
		t.Errorf("probe noise reduced errors (%d < %d)?", noisy.RoundErrors, clean.RoundErrors)
	}
}

func TestPreemptIsPrecise(t *testing.T) {
	// Preempting a context must not corrupt its architectural results.
	res, err := RunSGXStep([]byte("fedcba9876543210"), []byte("0123456789abcdef"), 40, 0)
	if err != nil {
		t.Fatal(err) // RunSGXStep verifies the victim halts
	}
	if res.Steps == 0 {
		t.Error("no preemptions delivered")
	}
}
