package baseline

import (
	"fmt"
	"math/rand"

	"microscope/analysis/sweep"
	"microscope/attack/victim"
	"microscope/crypto/taes"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// PrimeProbeResult contrasts a conventional multi-run Prime+Probe cache
// attack on the AES victim against MicroScope's single-run extraction:
//
//   - Temporal resolution: without replay, one probe per complete victim
//     run observes only the UNION of all rounds' accesses.
//   - Noise: with realistic measurement noise (cache pollution, coarse
//     PMU counters — §2.4), the attacker majority-votes across many
//     victim runs; the paper cites ~300 traces for modest reliability.
type PrimeProbeResult struct {
	// UnionTruth is the true union of Td1 lines over all rounds.
	UnionTruth uint16
	// SingleRunObserved is one noisy single-trace observation.
	SingleRunObserved uint16
	// TracesTo99 is the number of victim runs (traces) the majority vote
	// needed before the union estimate stayed correct with 99% per-line
	// confidence.
	TracesTo99 int
	// PerRoundResolved reports whether the attack can attribute lines to
	// rounds (it cannot: false by construction, unlike MicroScope).
	PerRoundResolved bool
}

// RunPrimeProbe mounts the baseline attack: for each victim run, prime
// Td1's lines, run the AES decryption to completion (no replay — the
// victim runs once per trace, so each trace needs a fresh victim run,
// which the threat model forbids for run-once applications), probe, and
// apply measurement noise with the given per-line flip probability.
//
// Each trace derives its own noise stream from seed + traceIndex (a
// *rand.Rand is not goroutine-safe, and a shared stream would make the
// result depend on scheduling), so the traces are independent and the
// collection runs as a parallel sweep over `workers` goroutines (<= 0
// selects GOMAXPROCS) with output identical to the serial run. The
// majority vote is then folded in trace order.
func RunPrimeProbe(key, plaintext []byte, flipProb float64, maxTraces int, seed int64, workers int) (*PrimeProbeResult, error) {
	c, err := taes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, taes.BlockSize)
	c.Encrypt(ct, plaintext)

	// Ground truth: union of Td1 lines over every round.
	out := make([]byte, taes.BlockSize)
	lines := taes.AccessedLines(c.DecryptTrace(out, ct))
	res := &PrimeProbeResult{UnionTruth: lines[1]}

	oneTrace := func(trace int) (uint16, error) {
		rng := rand.New(rand.NewSource(sweep.SeedFor(seed, trace)))
		phys := mem.NewPhysMem(64 << 20)
		core := cpu.NewCore(cpu.DefaultConfig(), phys)
		k := kernel.New(kernel.DefaultConfig(), phys, core)
		proc, err := k.NewProcess("aes")
		if err != nil {
			return 0, err
		}
		k.Schedule(0, proc)
		vic, err := victim.NewAESVictim(key, ct)
		if err != nil {
			return 0, err
		}
		if err := vic.Install(k, proc); err != nil {
			return 0, err
		}
		// Prime: evict all Td1 lines.
		for line := 0; line < taes.LinesPerTable; line++ {
			pa, err := proc.AddressSpace().Translate(vic.TdLineVA(1, line))
			if err != nil {
				return 0, err
			}
			core.Hierarchy().FlushAddr(pa)
		}
		vic.Start(k, 0)
		core.Run(20_000_000)
		if !core.Context(0).Halted() {
			return 0, fmt.Errorf("baseline: AES victim did not finish")
		}
		// Probe with measurement noise: each line's verdict flips with
		// probability flipProb (pollution, preemptions, PMU coarseness).
		var mask uint16
		for line := 0; line < taes.LinesPerTable; line++ {
			pa, err := proc.AddressSpace().Translate(vic.TdLineVA(1, line))
			if err != nil {
				return 0, err
			}
			hot := core.Hierarchy().LevelOf(pa) != cache.LevelMem
			if rng.Float64() < flipProb {
				hot = !hot
			}
			if hot {
				mask |= 1 << uint(line)
			}
		}
		return mask, nil
	}

	// Collect all traces over the worker pool; each is an independent
	// victim run on its own simulated platform.
	masks, err := sweep.Run(maxTraces, sweep.Options{Workers: workers}, oneTrace)
	if err != nil {
		return nil, err
	}
	res.SingleRunObserved = masks[0]

	// Majority vote across traces, folded in trace order; report when the
	// estimate becomes and stays correct for a stretch (stability proxy
	// for 99% confidence).
	votes := make([]int, taes.LinesPerTable)
	total := 0
	stable := 0
	res.TracesTo99 = -1
	apply := func(mask uint16) {
		total++
		for line := 0; line < taes.LinesPerTable; line++ {
			if mask&(1<<uint(line)) != 0 {
				votes[line]++
			}
		}
	}
	estimate := func() uint16 {
		var m uint16
		for line := 0; line < taes.LinesPerTable; line++ {
			if 2*votes[line] > total {
				m |= 1 << uint(line)
			}
		}
		return m
	}
	apply(masks[0])
	for _, mask := range masks[1:] {
		apply(mask)
		if estimate() == res.UnionTruth {
			stable++
			if stable >= 20 && res.TracesTo99 < 0 {
				res.TracesTo99 = total - stable + 1
			}
		} else {
			stable = 0
			res.TracesTo99 = -1
		}
	}
	if estimate() != res.UnionTruth {
		res.TracesTo99 = -1
	}
	return res, nil
}
