// Package baseline implements the prior attacks MicroScope is compared
// against in §2.4 and Table 1: the controlled side channel of Xu et
// al. [60] (page-fault sequences), Sneaky Page Monitoring [58]
// (accessed/dirty bits), and a noisy multi-run Prime+Probe in the style
// of the SGX cache attacks [9, 18]. They exist to make the paper's
// comparison measurable: page-granularity attacks are noiseless but
// coarse; cache attacks are fine-grained but need many runs — MicroScope
// is fine-grained, noiseless, and single-run.
package baseline

import (
	"fmt"

	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

const (
	pageAVA  mem.Addr = 0x0080_0000
	pageBVA  mem.Addr = 0x0081_0000
	sharedVA mem.Addr = 0x0082_0000
)

const rw = mem.FlagUser | mem.FlagWritable

// pageSecretVictim touches pageA or pageB depending on the secret, then
// touches two lines of ONE shared page selected by a second, fine-grained
// secret bit — visible to cache attacks, invisible at page granularity.
func pageSecretVictim(pageSecret, lineSecret bool) *victim.Layout {
	target := pageAVA
	if pageSecret {
		target = pageBVA
	}
	line := int64(0)
	if lineSecret {
		line = 64
	}
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(target)).
		Load(isa.R2, isa.R1, 0). // page-granular secret access
		MovImm(isa.R3, int64(sharedVA)).
		Load(isa.R4, isa.R3, line). // line-granular secret access (same page!)
		Halt()
	return &victim.Layout{
		Name: "pagesecret",
		Prog: b.MustBuild(),
		Symbols: map[string]mem.Addr{
			"pageA": pageAVA, "pageB": pageBVA, "shared": sharedVA,
		},
		Regions: []victim.Region{
			{Name: "pageA", VA: pageAVA, Size: mem.PageSize, Flags: rw},
			{Name: "pageB", VA: pageBVA, Size: mem.PageSize, Flags: rw},
			{Name: "shared", VA: sharedVA, Size: mem.PageSize, Flags: rw},
		},
	}
}

// ControlledChannelResult is the Xu et al. [60] attack outcome.
type ControlledChannelResult struct {
	// FaultVPNs is the observed page-fault sequence (the OS-visible
	// trace).
	FaultVPNs []uint64
	// PageSecretRecovered: the page-granular secret read off the trace.
	PageSecretRecovered bool
	PageSecretCorrect   bool
	// LineSecretVisible reports whether the traces for lineSecret=0/1
	// differ — they must NOT (page granularity cannot see lines).
	LineSecretVisible bool
}

// RunControlledChannel mounts the controlled side channel: unmap the
// victim's data pages, record the fault VPN sequence, recover the
// page-granular secret — and demonstrate the line-granular secret is
// invisible.
func RunControlledChannel(pageSecret bool) (*ControlledChannelResult, error) {
	trace := func(pageSecret, lineSecret bool) ([]uint64, error) {
		phys := mem.NewPhysMem(32 << 20)
		core := cpu.NewCore(cpu.DefaultConfig(), phys)
		k := kernel.New(kernel.DefaultConfig(), phys, core)
		proc, err := k.NewProcess("victim")
		if err != nil {
			return nil, err
		}
		k.Schedule(0, proc)
		l := pageSecretVictim(pageSecret, lineSecret)
		// Register VMAs but do NOT map: every first touch faults and the
		// OS logs the VPN — the controlled channel.
		for _, reg := range l.Regions {
			k.AddVMA(proc, reg.VA, reg.VA+reg.Size, reg.Flags, reg.Name)
		}
		l.Start(k, 0)
		core.Run(10_000_000)
		if !core.Context(0).Halted() {
			return nil, fmt.Errorf("baseline: victim did not finish")
		}
		var vpns []uint64
		for _, f := range k.FaultLog() {
			vpns = append(vpns, f.VPN)
		}
		return vpns, nil
	}

	vpns, err := trace(pageSecret, false)
	if err != nil {
		return nil, err
	}
	res := &ControlledChannelResult{FaultVPNs: vpns}
	for _, v := range vpns {
		if v == mem.PageNum(pageBVA) {
			res.PageSecretRecovered = true
		}
	}
	res.PageSecretCorrect = res.PageSecretRecovered == pageSecret

	// Line secret: compare traces for both values.
	t0, err := trace(pageSecret, false)
	if err != nil {
		return nil, err
	}
	t1, err := trace(pageSecret, true)
	if err != nil {
		return nil, err
	}
	res.LineSecretVisible = !equalU64(t0, t1)
	return res, nil
}

// SPMResult is the Sneaky Page Monitoring [58] outcome: the same
// page-granular recovery, but via accessed bits, with zero AEXs.
type SPMResult struct {
	AccessedPages       []uint64
	PageSecretCorrect   bool
	VictimObservedFault bool
}

// RunSPM mounts Sneaky Page Monitoring: map everything eagerly, clear
// the A bits, run the victim, read the A bits back.
func RunSPM(pageSecret bool) (*SPMResult, error) {
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	proc, err := k.NewProcess("victim")
	if err != nil {
		return nil, err
	}
	k.Schedule(0, proc)
	l := pageSecretVictim(pageSecret, false)
	if err := l.Install(k, proc); err != nil {
		return nil, err
	}
	for _, reg := range l.Regions {
		if err := proc.AddressSpace().ClearAccessedDirty(reg.VA); err != nil {
			return nil, err
		}
	}
	l.Start(k, 0)
	core.Run(10_000_000)
	if !core.Context(0).Halted() {
		return nil, fmt.Errorf("baseline: victim did not finish")
	}

	res := &SPMResult{
		VictimObservedFault: core.Context(0).Stats().PageFaults > 0,
	}
	secretSeen := false
	for _, reg := range l.Regions {
		e, _, err := proc.AddressSpace().LeafEntry(reg.VA)
		if err != nil {
			return nil, err
		}
		if e.Accessed() {
			res.AccessedPages = append(res.AccessedPages, mem.PageNum(reg.VA))
			if reg.VA == pageBVA {
				secretSeen = true
			}
		}
	}
	res.PageSecretCorrect = secretSeen == pageSecret
	return res, nil
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
