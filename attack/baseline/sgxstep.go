package baseline

import (
	"fmt"

	"microscope/attack/victim"
	"microscope/crypto/taes"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// SGXStepResult contrasts interrupt-driven single-stepping (SGX-Step
// [57], CacheZoom [40] — Table 1's fine-grain/high-resolution/noisy cell)
// with MicroScope on the AES victim. Stepping reaches high temporal
// resolution, but each step yields exactly ONE measurement of a run-once
// victim, and that measurement is inherently polluted: the out-of-order
// core speculatively runs up to a ROB's worth of instructions ahead of
// the interrupted retirement point, filling the cache with FUTURE rounds'
// accesses, and step windows span round boundaries. The result is
// per-round attribution errors even with a perfect probe — Table 1's
// "With Noise" row, and why §2.4 says these attacks "still require
// multiple runs of the application to denoise". MicroScope replays each
// window within one run instead and extracts exactly.
type SGXStepResult struct {
	// Steps is the number of timer interrupts delivered.
	Steps int
	// TruePerRound / ExtractedPerRound are Td1 line masks per round.
	TruePerRound      map[int]uint16
	ExtractedPerRound map[int]uint16
	// RoundErrors counts rounds whose extracted mask differs from truth.
	RoundErrors int
}

// RunSGXStep single-steps the AES victim with timer interrupts every
// `interval` retired instructions, prime+probing Td1 between steps. The
// jitter knob injects the measurement noise the technique suffers in
// practice (cache pollution from the interrupt path itself, prefetching,
// timer variance): each probe misclassifies a line with the period given
// by noisePeriod (0 disables).
func RunSGXStep(key, plaintext []byte, interval uint64, noisePeriod int) (*SGXStepResult, error) {
	c, err := taes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, taes.BlockSize)
	c.Encrypt(ct, plaintext)

	// Ground truth per round.
	out := make([]byte, taes.BlockSize)
	truth := map[int]uint16{}
	for _, a := range c.DecryptTrace(out, ct) {
		if a.Table == 1 {
			truth[a.Round] |= 1 << uint(a.Line())
		}
	}

	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	proc, err := k.NewProcess("aes")
	if err != nil {
		return nil, err
	}
	k.Schedule(0, proc)
	vic, err := victim.NewAESVictim(key, ct)
	if err != nil {
		return nil, err
	}
	if err := vic.Install(k, proc); err != nil {
		return nil, err
	}

	probePAs := make([]mem.Addr, taes.LinesPerTable)
	for line := range probePAs {
		pa, err := proc.AddressSpace().Translate(vic.TdLineVA(1, line))
		if err != nil {
			return nil, err
		}
		probePAs[line] = pa
	}
	prime := func() {
		for _, pa := range probePAs {
			core.Hierarchy().FlushAddr(pa)
		}
	}
	noiseTick := 0
	probe := func() uint16 {
		var mask uint16
		for line, pa := range probePAs {
			hot := core.Hierarchy().LevelOf(pa) != cache.LevelMem
			if noisePeriod > 0 {
				noiseTick++
				if noiseTick%noisePeriod == 0 {
					hot = !hot // pollution/prefetch misclassification
				}
			}
			if hot {
				mask |= 1 << uint(line)
			}
		}
		return mask
	}

	// Instruction index -> round, for attributing steps to rounds: round
	// r spans [RKLoads[r,0], RKLoads[r+1,0]).
	starts := make([]int, c.Rounds()+1)
	for r := 1; r <= c.Rounds(); r++ {
		starts[r] = vic.RKLoads[[2]int{r, 0}]
	}
	roundOf := func(pc int) int {
		round := 0
		for r := 1; r <= c.Rounds(); r++ {
			if pc >= starts[r] {
				round = r
			}
		}
		return round
	}

	res := &SGXStepResult{
		TruePerRound:      truth,
		ExtractedPerRound: map[int]uint16{},
	}

	prime()
	vic.Start(k, 0)
	ctx := core.Context(0)
	lastRetired := uint64(0)
	for steps := 0; steps < 100_000_000 && !ctx.Halted(); steps++ {
		core.Step()
		if ctx.Stats().Retired >= lastRetired+interval {
			lastRetired = ctx.Stats().Retired
			res.Steps++
			core.Preempt(0, 200) // the AEX + attacker code per step
			// After the preempt, PC() is the precise resume point (the
			// oldest unretired instruction) — the best attribution anchor
			// an interrupt-stepping attacker has.
			if r := roundOf(ctx.PC()); r >= 1 {
				res.ExtractedPerRound[r] |= probe()
			}
			prime()
		}
	}
	if !ctx.Halted() {
		return nil, fmt.Errorf("baseline: stepped victim did not finish")
	}
	for r := 1; r < c.Rounds(); r++ {
		if res.ExtractedPerRound[r] != truth[r] {
			res.RoundErrors++
		}
	}
	return res, nil
}
