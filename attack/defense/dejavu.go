package defense

import (
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// DejaVuResult reports the Déjà Vu experiment: the enclave times its own
// sensitive region against a threshold; a replay attack inflates the
// elapsed time — unless the attacker keeps the total delay under the
// budget the enclave must tolerate for ordinary faults (the paper's first
// bypass: "replays can be masked by ordinary application page faults").
type DejaVuResult struct {
	Threshold uint64
	Elapsed   uint64
	Replays   int
	Detected  bool
	// Leaked reports the attacker observed the transmit at least once.
	Leaked bool
}

// dejaVuVictim times the sensitive region with RDTSC and stores a
// detection flag when it exceeds the threshold.
func dejaVuVictim(threshold uint64) *victim.Layout {
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(probeVA)).
		MovImm(isa.R7, int64(outVA)).
		MovImm(isa.R13, int64(threshold)).
		Rdtsc(isa.R10).          // clock start
		Load(isa.R3, isa.R1, 0). // replay handle
		Load(isa.R4, isa.R2, 0). // sensitive transmit
		Rdtsc(isa.R11).          // clock end
		Sub(isa.R12, isa.R11, isa.R10).
		Store(isa.R12, isa.R7, 8). // elapsed
		MovImm(isa.R6, 0).
		Blt(isa.R12, isa.R13, "clean").
		MovImm(isa.R6, 1). // detected
		Label("clean").
		Store(isa.R6, isa.R7, 0).
		Halt()
	return &victim.Layout{
		Name: "dejavu",
		Prog: b.MustBuild(),
		Symbols: map[string]mem.Addr{
			"handle": handleVA, "probe": probeVA, "out": outVA,
		},
		Regions: []victim.Region{
			{Name: "handle", VA: handleVA, Size: mem.PageSize, Flags: rw},
			{Name: "probe", VA: probeVA, Size: mem.PageSize, Flags: rw},
			{Name: "out", VA: outVA, Size: mem.PageSize, Flags: rw},
		},
	}
}

// RunDejaVu attacks a Déjà Vu-protected victim with the given number of
// replays and per-replay handler latency. threshold is the victim's
// time budget for the region (it must tolerate at least one ordinary
// demand fault, or it would flag every benign run).
func RunDejaVu(threshold uint64, replays int, handlerLatency uint64) (*DejaVuResult, error) {
	p, err := newPlatform(cpu.DefaultConfig(), "dejavu-victim")
	if err != nil {
		return nil, err
	}
	core, k, m, proc := p.Core, p.Kernel, p.Module, p.Proc
	l := dejaVuVictim(threshold)
	if err := p.install(l); err != nil {
		return nil, err
	}

	res := &DejaVuResult{Threshold: threshold}
	rec := &microscope.Recipe{
		Name:           "dejavu",
		Victim:         proc,
		Handle:         handleVA,
		HandlerLatency: handlerLatency,
		MaxReplays:     replays,
	}
	probePA, err := proc.AddressSpace().Translate(probeVA)
	if err != nil {
		return nil, err
	}
	core.Hierarchy().FlushAddr(probePA)
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.Replays = ev.Replays
		if core.Hierarchy().LevelOf(probePA) != cache.LevelMem {
			res.Leaked = true
		}
		if ev.Replays >= replays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := m.Install(rec); err != nil {
		return nil, err
	}
	l.Start(k, 0)
	if err := p.run(100_000_000); err != nil {
		return nil, err
	}
	flag, err := proc.AddressSpace().Read64Virt(outVA)
	if err != nil {
		return nil, err
	}
	elapsed, err := proc.AddressSpace().Read64Virt(outVA + 8)
	if err != nil {
		return nil, err
	}
	res.Detected = flag == 1
	res.Elapsed = elapsed
	return res, nil
}
