package defense

import "testing"

func TestTSGXHidesFaultsButAllowsNMinus1Replays(t *testing.T) {
	const n = 10 // T-SGX's published threshold
	res, err := RunTSGX(n)
	if err != nil {
		t.Fatal(err)
	}
	// T-SGX's guarantee holds: the OS never saw a page fault.
	if res.OSVisibleFaults != 0 {
		t.Errorf("OS saw %d faults; T-SGX must hide them", res.OSVisibleFaults)
	}
	// T-SGX eventually terminates the enclave.
	if !res.VictimTerminated {
		t.Error("victim not terminated at the abort budget")
	}
	// ...but the attacker still observed the sensitive code's footprint
	// on (at least) N-1 replays — "such number can be sufficient in many
	// attacks" (§8).
	if res.LeakObservations < n-1 {
		t.Errorf("leak observations = %d, want >= %d", res.LeakObservations, n-1)
	}
}

func TestTSGXSmallBudget(t *testing.T) {
	res, err := RunTSGX(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VictimTerminated || res.LeakObservations < 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestDejaVuDetectsNaiveReplay(t *testing.T) {
	// Budget tolerates one ordinary demand fault (~6000 cycles + region).
	const threshold = 10_000
	res, err := RunDejaVu(threshold, 5, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Errorf("5 replays at 5000-cycle handler not detected (elapsed %d)", res.Elapsed)
	}
	if !res.Leaked {
		t.Error("attack leaked nothing before detection")
	}
}

func TestDejaVuEvadedByMaskedReplays(t *testing.T) {
	// The paper's bypass: keep the added delay within the budget the
	// victim must tolerate for ordinary faults. Two fast replays fit
	// under a one-demand-fault threshold.
	const threshold = 10_000
	res, err := RunDejaVu(threshold, 2, 1_200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Errorf("masked replays detected (elapsed %d >= %d)", res.Elapsed, threshold)
	}
	if !res.Leaked {
		t.Error("masked attack leaked nothing")
	}
	if res.Replays != 2 {
		t.Errorf("replays = %d, want 2", res.Replays)
	}
}

func TestPFObliviousnessHelpsTheAttacker(t *testing.T) {
	res, err := RunPFOblivious()
	if err != nil {
		t.Fatal(err)
	}
	// The defense achieves its goal at page granularity...
	if !res.PageTraceEqual {
		t.Error("page traces differ between secrets; transformation broken")
	}
	// ...while donating extra replay handles...
	if res.HandleCandidates < 4 {
		t.Errorf("handle candidates = %d, want >= 4", res.HandleCandidates)
	}
	// ...and the secret still falls to the cache-line channel.
	if !res.SecretRecovered {
		t.Error("MicroScope failed to recover the secret from the oblivious victim")
	}
}

func TestFenceAfterFlushBlocksReplayWindows(t *testing.T) {
	res, err := RunFenceAfterFlush()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeakyWindowsWithout < 4 {
		t.Fatalf("baseline leaked in only %d windows; experiment broken",
			res.LeakyWindowsWithout)
	}
	// The first window is ordinary speculation (no prior flush) and may
	// leak; the defense must stop every REPLAY window.
	if res.LeakyWindowsWith > 1 {
		t.Errorf("fence-after-flush left %d leaky windows, want <= 1",
			res.LeakyWindowsWith)
	}
	// The defense is not free: the benign branchy/faulty workload slows
	// down.
	if res.BenignCyclesWith <= res.BenignCyclesWithout {
		t.Errorf("no overhead measured: %d vs %d cycles",
			res.BenignCyclesWith, res.BenignCyclesWithout)
	}
	t.Logf("benign overhead: %.1f%% (%d -> %d cycles)",
		res.OverheadPct(), res.BenignCyclesWithout, res.BenignCyclesWith)
}

// TestInvisibleSpeculationPartialCoverage: InvisiSpec-style defenses stop
// the cache channel but not port contention — the paper's §8 criticism
// ("these protections do not address side channels on the other shared
// processor resources, such as port contention").
func TestInvisibleSpeculationPartialCoverage(t *testing.T) {
	res, err := RunInvisibleSpeculation()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheLeakWithout {
		t.Fatal("baseline cache attack leaked nothing; experiment broken")
	}
	if res.CacheLeakWith {
		t.Error("invisible speculation did not stop the cache channel")
	}
	if !res.PortLeakWith {
		t.Error("port channel should SURVIVE invisible speculation")
	}
}
