package defense

import (
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// FenceAfterFlushResult evaluates the paper's first §8 countermeasure:
// a hardware fence inserted after every pipeline flush.
type FenceAfterFlushResult struct {
	// LeakyWindowsWithout/With count replay windows whose transmit left a
	// cache footprint. The fence cannot stop the FIRST window (ordinary
	// speculation, no flush yet); it stops the replay amplification —
	// windows 2..N stay clean.
	LeakyWindowsWithout int
	LeakyWindowsWith    int
	// BenignCycles report a branch- and fault-heavy benign workload's
	// runtime without and with the defense (the overhead the paper warns
	// about).
	BenignCyclesWithout uint64
	BenignCyclesWith    uint64
}

// OverheadPct returns the benign-workload slowdown in percent.
func (r *FenceAfterFlushResult) OverheadPct() float64 {
	if r.BenignCyclesWithout == 0 {
		return 0
	}
	return 100 * float64(int64(r.BenignCyclesWith)-int64(r.BenignCyclesWithout)) /
		float64(r.BenignCyclesWithout)
}

// RunFenceAfterFlush measures the fence-after-flush defense: the replay
// window shrinks to just the faulting handle, so the transmit never
// executes speculatively — at the cost of serializing every benign
// mispredict and fault.
func RunFenceAfterFlush() (*FenceAfterFlushResult, error) {
	res := &FenceAfterFlushResult{}
	for _, fenced := range []bool{false, true} {
		cfg := cpu.DefaultConfig()
		cfg.FenceAfterFlush = fenced
		leaky, err := replayLeakObserved(cfg)
		if err != nil {
			return nil, err
		}
		cycles, err := benignWorkloadCycles(cfg)
		if err != nil {
			return nil, err
		}
		if fenced {
			res.LeakyWindowsWith = leaky
			res.BenignCyclesWith = cycles
		} else {
			res.LeakyWindowsWithout = leaky
			res.BenignCyclesWithout = cycles
		}
	}
	return res, nil
}

// replayLeakObserved mounts the basic replay attack and counts how many
// of 5 replay windows exposed the transmit's footprint (the probe line is
// re-flushed after every window).
func replayLeakObserved(cfg cpu.Config) (int, error) {
	p, err := newPlatform(cfg, "victim")
	if err != nil {
		return 0, err
	}
	core, k, m, proc := p.Core, p.Kernel, p.Module, p.Proc
	l := leakVictim()
	if err := p.install(l); err != nil {
		return 0, err
	}
	probePA, err := proc.AddressSpace().Translate(probeVA)
	if err != nil {
		return 0, err
	}
	core.Hierarchy().FlushAddr(probePA)

	leaky := 0
	rec := &microscope.Recipe{
		Name: "faf", Victim: proc, Handle: handleVA, MaxReplays: 5,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		if core.Hierarchy().LevelOf(probePA) != cache.LevelMem {
			leaky++
			core.Hierarchy().FlushAddr(probePA)
		}
		if ev.Replays >= 5 {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := m.Install(rec); err != nil {
		return 0, err
	}
	l.Start(k, 0)
	if err := p.run(50_000_000); err != nil {
		return 0, err
	}
	return leaky, nil
}

// leakVictim is a handle-then-transmit victim.
func leakVictim() *victim.Layout {
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(probeVA)).
		Load(isa.R3, isa.R1, 0). // handle
		Load(isa.R4, isa.R2, 0). // transmit
		Halt()
	return &victim.Layout{
		Name: "faf-victim",
		Prog: b.MustBuild(),
		Regions: []victim.Region{
			{Name: "handle", VA: handleVA, Size: mem.PageSize, Flags: rw},
			{Name: "probe", VA: probeVA, Size: mem.PageSize, Flags: rw},
		},
	}
}

// benignWorkloadCycles runs a data-dependent branchy loop with demand
// paging — the workload class fence-after-flush taxes.
func benignWorkloadCycles(cfg cpu.Config) (uint64, error) {
	p, err := newPlatform(cfg, "benign")
	if err != nil {
		return 0, err
	}
	core, k, proc := p.Core, p.Kernel, p.Proc
	data := mem.Addr(0x0060_0000)
	k.AddVMA(proc, data, data+8*mem.PageSize, rw, "data") // demand paged

	// A loop whose branch direction alternates (mispredicts regularly)
	// and that touches a new page every 512 iterations (demand faults).
	prog := isa.NewBuilder().
		MovImm(isa.R1, 2000).
		MovImm(isa.R2, int64(data)).
		MovImm(isa.R3, 0).
		Label("loop").
		AndImm(isa.R4, isa.R1, 3).
		Beq(isa.R4, isa.R0, "skip"). // taken every 4th iteration
		AddImm(isa.R3, isa.R3, 1).
		Label("skip").
		ShlImm(isa.R5, isa.R1, 4).
		AndImm(isa.R5, isa.R5, 0x7ff8).
		Add(isa.R5, isa.R5, isa.R2).
		Store(isa.R3, isa.R5, 0).
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	core.Context(0).SetProgram(prog, 0)
	start := core.Cycle()
	if err := p.run(50_000_000); err != nil {
		return 0, fmt.Errorf("benign workload: %w", err)
	}
	return core.Cycle() - start, nil
}

// InvisibleSpecResult evaluates InvisiSpec/SafeSpec-style invisible
// speculation against both MicroScope channels.
type InvisibleSpecResult struct {
	// CacheLeakWithout/With: did the transient transmit leave a cache
	// footprint?
	CacheLeakWithout bool
	CacheLeakWith    bool
	// PortLeakWith: does the port-contention channel still work under the
	// defense? (The paper's criticism: yes.)
	PortLeakWith bool
}

// RunInvisibleSpeculation runs the cache-channel attack and the
// port-contention attack with invisible speculation on.
func RunInvisibleSpeculation() (*InvisibleSpecResult, error) {
	res := &InvisibleSpecResult{}
	for _, invisible := range []bool{false, true} {
		cfg := cpu.DefaultConfig()
		cfg.InvisibleSpeculation = invisible
		leaky, err := replayLeakObserved(cfg)
		if err != nil {
			return nil, err
		}
		if invisible {
			res.CacheLeakWith = leaky > 0
		} else {
			res.CacheLeakWithout = leaky > 0
		}
	}

	// Port channel under the defense: the §4.3 denoising loop still
	// distinguishes the secret.
	curve, err := runDenoiseWithConfig(true, 15, func(c *cpu.Config) {
		c.InvisibleSpeculation = true
	})
	if err != nil {
		return nil, err
	}
	res.PortLeakWith = curve
	return res, nil
}

// runDenoiseWithConfig mounts the control-flow-secret denoising attack
// under a tweaked core config and reports whether the verdict is correct.
func runDenoiseWithConfig(secret bool, replays int, tweak func(*cpu.Config)) (bool, error) {
	cfg := cpu.DefaultConfig()
	tweak(&cfg)
	p, err := newPlatform(cfg, "victim")
	if err != nil {
		return false, err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := p.install(vic); err != nil {
		return false, err
	}
	var lastBusy uint64
	hits := 0
	rec := &microscope.Recipe{
		Name: "inv-port", Victim: p.Proc, Handle: vic.Sym("handle"),
		MaxReplays: replays,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		busy := p.Core.Ports().DivBusyCycles
		if busy > lastBusy {
			hits++
		}
		lastBusy = busy
		if ev.Replays >= replays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := p.Module.Install(rec); err != nil {
		return false, err
	}
	vic.Start(p.Kernel, 0)
	if err := p.run(100_000_000); err != nil {
		return false, err
	}
	return (hits > replays/2) == secret, nil
}
