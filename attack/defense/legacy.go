package defense

import (
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
)

// This file wires the §8 countermeasures the paper analyzed — T-SGX,
// Déjà Vu, page-fault obliviousness, and the hardware proposals the
// paper criticizes — into the Defense interface, so the tournament can
// run them against arbitrary victims. The focused single-victim
// experiments (RunTSGX, RunDejaVu, ...) remain alongside; these
// adapters generalize the same mechanisms.

// DejaVu models the enclave's software clock: an enclave thread
// measures its own progress, and time lost to exits (here: cycles spent
// in the fault handler, ContextStats.StallCycles) beyond the budget it
// must tolerate for ordinary demand faults flags an attack. The
// paper's bypass applies unchanged — an attacker who keeps total
// handler time under the budget goes unnoticed — and handles that
// never exit (TSX aborts, mispredicts) never advance the clock at all.
type DejaVu struct {
	// StallBudget is the handler-cycle allowance; the default in All()
	// tolerates a couple of demand faults (2×6000) with headroom.
	StallBudget uint64
}

func (d *DejaVu) Name() string                                    { return "dejavu" }
func (d *DejaVu) Configure(*cpu.Config)                           {}
func (d *DejaVu) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (d *DejaVu) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (d *DejaVu) Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict {
	stalled := core.Context(ctxID).Stats().StallCycles
	return Verdict{
		Detected: stalled > d.StallBudget,
		Counters: map[string]uint64{"stall_cycles": stalled},
	}
}

// TSGX wraps the victim in a TSX transaction with a halt-on-exhaust
// abort handler (victim.WrapTx): page faults inside the transaction
// become aborts the OS never sees, and an abort burst past the budget
// shuts the enclave down instead of feeding the attacker more windows.
// The paper's observation stands: the retries themselves are N-1
// replays the attacker observes passively.
type TSGX struct {
	// Budget is the abort allowance N (the T-SGX authors use 10).
	Budget int
}

func (d *TSGX) Name() string          { return "tsgx" }
func (d *TSGX) Configure(*cpu.Config) {}
func (d *TSGX) Harden(l *victim.Layout) (*victim.Layout, error) {
	return victim.WrapTx(l, int64(d.Budget), true)
}
func (d *TSGX) Install(*kernel.Kernel, *kernel.Process) error { return nil }
func (d *TSGX) Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict {
	aborts := core.Context(ctxID).Stats().TxAborts
	return Verdict{
		Detected: d.Budget > 0 && aborts >= uint64(d.Budget),
		Counters: map[string]uint64{"tx_aborts": aborts},
	}
}

// PFOblivious models Shinde-et-al. page-fault-oblivious execution as a
// program transformation (victim.WithPreface): the victim touches every
// page of its working set up front, so the page-level trace is
// secret-independent and an armed present bit is consumed by a preface
// load whose window carries no secret. As §8 observes, the redundant
// accesses are themselves fresh replay handles; the tournament's
// baseline rows show the attack surviving at cache-line granularity.
type PFOblivious struct{}

func (PFOblivious) Name() string          { return "pfoblivious" }
func (PFOblivious) Configure(*cpu.Config) {}
func (PFOblivious) Harden(l *victim.Layout) (*victim.Layout, error) {
	return victim.WithPreface(l), nil
}
func (PFOblivious) Install(*kernel.Kernel, *kernel.Process) error { return nil }
func (PFOblivious) Verdict(*kernel.Kernel, *cpu.Core, *kernel.Process, int) Verdict {
	return Verdict{}
}

// Fence is the paper's fence-after-flush hardware proposal: a fence
// after every pipeline flush serializes the restart, so replay windows
// after the first carry no speculative transmit.
type Fence struct{}

func (Fence) Name() string                                    { return "fence" }
func (Fence) Configure(cfg *cpu.Config)                       { cfg.FenceAfterFlush = true }
func (Fence) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (Fence) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (Fence) Verdict(*kernel.Kernel, *cpu.Core, *kernel.Process, int) Verdict {
	return Verdict{}
}

// InvisiSpec is InvisiSpec/SafeSpec-style invisible speculation:
// speculative loads fill no shared cache state until they are safe. It
// closes the cache channel and — as §8 notes — leaves port contention
// wide open, which the tournament's port-probed victims demonstrate.
type InvisiSpec struct{}

func (InvisiSpec) Name() string                                    { return "invisispec" }
func (InvisiSpec) Configure(cfg *cpu.Config)                       { cfg.InvisibleSpeculation = true }
func (InvisiSpec) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (InvisiSpec) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (InvisiSpec) Verdict(*kernel.Kernel, *cpu.Core, *kernel.Process, int) Verdict {
	return Verdict{}
}
