// The pluggable defense suite: every §8 countermeasure (and the newer
// replay-specific proposals) behind one Defense interface, so the
// tournament in attack/experiments can cross every victim and every
// replay handle with every defense uniformly.
//
// A Defense plugs into the platform at up to three points:
//
//   - Configure mutates the cpu.Config before the core is built
//     (hardware defenses: squash counters, selective delay, fences,
//     invisible speculation);
//   - Harden rewrites the victim's program (software defenses: T-SGX
//     transaction wrapping, pf-oblivious prefacing);
//   - Install hooks the booted kernel (OS defenses: LEASH throttling,
//     SIMF multi-flush wiring).
//
// After a run, Verdict reads the detection state and counters back out.
// Prevention-style defenses (delay, SIMF, fence, invisible speculation)
// never "detect" — their effect shows up as the attack's leak count
// going to zero, which the tournament records per cell.
package defense

import (
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
)

// Verdict is one defense's post-run report. The defense fills Detected
// and Counters; the tournament fills FalsePositive (from the unattacked
// control run) and CycleOverheadPermille (control cycles vs. the
// undefended control).
type Verdict struct {
	Detected              bool
	FalsePositive         bool
	CycleOverheadPermille int64
	Counters              map[string]uint64
}

// Defense is one pluggable countermeasure.
type Defense interface {
	// Name is the stable identifier used in the tournament matrix.
	Name() string
	// Configure adjusts the core configuration (called before the
	// platform is built, and re-applied via UpdateTiming on forks).
	Configure(cfg *cpu.Config)
	// Harden transforms the victim's layout (identity for most
	// defenses). Region addresses must not change — the tournament
	// checkpoints the installed memory image once per victim.
	Harden(l *victim.Layout) (*victim.Layout, error)
	// Install hooks the kernel after boot (called on every fork).
	Install(k *kernel.Kernel, proc *kernel.Process) error
	// Verdict reads the post-run detection state.
	Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict
}

// noDefense is the undefended baseline every tournament cell is
// measured against.
type noDefense struct{}

func (noDefense) Name() string                                    { return "none" }
func (noDefense) Configure(*cpu.Config)                           {}
func (noDefense) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (noDefense) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (noDefense) Verdict(*kernel.Kernel, *cpu.Core, *kernel.Process, int) Verdict {
	return Verdict{}
}

// JamaisVu is the squash-counter replay detector (sim/cpu/jamaisvu.go):
// an instruction squashed by faults Threshold times without retiring
// raises an alarm. Epoch, when non-zero, clears the counters
// periodically (bounding state at the cost of an evasion window).
type JamaisVu struct {
	Threshold int
	Epoch     uint64
}

func (d *JamaisVu) Name() string { return "jamaisvu" }
func (d *JamaisVu) Configure(cfg *cpu.Config) {
	cfg.SquashThreshold = d.Threshold
	cfg.SquashEpoch = d.Epoch
}
func (d *JamaisVu) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (d *JamaisVu) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (d *JamaisVu) Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict {
	alarms := core.Context(ctxID).Stats().ReplayAlarms
	return Verdict{
		Detected: alarms > 0,
		Counters: map[string]uint64{"alarms": alarms},
	}
}

// Delay is Sakalis-style selective speculative delay: transmit-capable
// instructions (loads, divides, RDRAND) may not issue until they are
// non-speculative, so a squashed replay window executes no transmitter.
// Pure prevention: it never detects, it starves the channel.
type Delay struct{}

func (Delay) Name() string                                    { return "delay" }
func (Delay) Configure(cfg *cpu.Config)                       { cfg.DelaySpeculative = true }
func (Delay) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (Delay) Install(*kernel.Kernel, *kernel.Process) error   { return nil }
func (Delay) Verdict(*kernel.Kernel, *cpu.Core, *kernel.Process, int) Verdict {
	return Verdict{}
}

// Leash is OS-level reactive throttling (sim/kernel/leash.go): a burst
// of same-page faults flags the process, and every subsequent fault
// pays a deschedule penalty.
type Leash struct {
	Config kernel.LeashConfig
}

func (d *Leash) Name() string                                    { return "leash" }
func (d *Leash) Configure(*cpu.Config)                           {}
func (d *Leash) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (d *Leash) Install(k *kernel.Kernel, proc *kernel.Process) error {
	k.EnableLeash(d.Config)
	return nil
}
func (d *Leash) Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict {
	tripped, throttled := k.LeashStatus(proc.PID)
	return Verdict{
		Detected: tripped,
		Counters: map[string]uint64{"throttled": throttled},
	}
}

// SIMF is the single-instruction multi-flush defense
// (sim/kernel/leash.go): every fault the protected process takes scrubs
// cache, TLB, page-walk cache, predictor and replay memo before the
// untrusted handler runs. Prevention via cold structures; page-fault
// probes read nothing, though handles that never fault (TSX aborts,
// mispredicts) bypass it entirely.
type SIMF struct{}

func (SIMF) Name() string                                    { return "simf" }
func (SIMF) Configure(*cpu.Config)                           {}
func (SIMF) Harden(l *victim.Layout) (*victim.Layout, error) { return l, nil }
func (SIMF) Install(k *kernel.Kernel, proc *kernel.Process) error {
	k.EnableSIMF(proc)
	return nil
}
func (SIMF) Verdict(k *kernel.Kernel, core *cpu.Core, proc *kernel.Process, ctxID int) Verdict {
	return Verdict{
		Counters: map[string]uint64{"flushes": k.SIMFFlushes(proc.PID)},
	}
}

// All returns the full tournament roster in its canonical order:
// the undefended baseline first, then the replay-specific proposals,
// then the §8 countermeasures the paper analyzed.
func All() []Defense {
	return []Defense{
		noDefense{},
		&JamaisVu{Threshold: 6, Epoch: 1_000_000},
		Delay{},
		&Leash{Config: kernel.DefaultLeashConfig()},
		SIMF{},
		&DejaVu{StallBudget: 15_000},
		&TSGX{Budget: 8},
		PFOblivious{},
		Fence{},
		InvisiSpec{},
	}
}

// Find returns the roster defense with the given name, or nil.
func Find(name string) Defense {
	for _, d := range All() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}
