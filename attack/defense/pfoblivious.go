package defense

import (
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Extra pages touched by the PF-oblivious transformation's redundant
// accesses.
const (
	oblivPageA mem.Addr = 0x0043_0000
	oblivPageB mem.Addr = 0x0044_0000
)

// PFObliviousResult reports the Shinde-et-al. experiment: the transformed
// program exhibits identical page-level access patterns for every secret
// (defeating controlled-channel attacks) — yet its added redundant
// accesses hand MicroScope *more* replay handles, and the cache-line-
// granularity secret still leaks (§8's closing observation).
type PFObliviousResult struct {
	// PageTraceEqual reports that both secret values produced identical
	// page-fault (VPN) sequences — the property the defense provides.
	PageTraceEqual bool
	// HandleCandidates is the number of distinct pages usable as replay
	// handles in the transformed victim.
	HandleCandidates int
	// SecretRecovered reports that MicroScope still extracted the secret
	// through the cache-line channel using one of the redundant accesses
	// as its handle.
	SecretRecovered bool
}

// oblivVictim is a PF-oblivious victim: whatever the secret bit, it
// touches the same pages in the same order (the redundant accesses added
// by the transformation), then performs a secret-indexed access *within*
// one page — invisible at page granularity, plainly visible to a
// cache-line probe.
func oblivVictim(secret bool) *victim.Layout {
	s := int64(0)
	if secret {
		s = 1
	}
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(probeVA)).
		MovImm(isa.R8, int64(oblivPageA)).
		MovImm(isa.R9, int64(oblivPageB)).
		MovImm(isa.R3, s).
		// Redundant accesses inserted by the transformation: same pages
		// touched regardless of the secret.
		Load(isa.R10, isa.R8, 0).
		Load(isa.R11, isa.R9, 0).
		Load(isa.R4, isa.R1, 0). // original access (a natural handle)
		// Secret-dependent line within the probe page (not a new page).
		ShlImm(isa.R5, isa.R3, 6).
		Add(isa.R5, isa.R5, isa.R2).
		Load(isa.R6, isa.R5, 0).
		Halt()
	return &victim.Layout{
		Name: "pfobliv",
		Prog: b.MustBuild(),
		Symbols: map[string]mem.Addr{
			"handle": handleVA, "probe": probeVA,
			"redundantA": oblivPageA, "redundantB": oblivPageB,
		},
		Regions: []victim.Region{
			{Name: "handle", VA: handleVA, Size: mem.PageSize, Flags: rw},
			{Name: "probe", VA: probeVA, Size: mem.PageSize, Flags: rw},
			{Name: "redundantA", VA: oblivPageA, Size: mem.PageSize, Flags: rw},
			{Name: "redundantB", VA: oblivPageB, Size: mem.PageSize, Flags: rw},
		},
	}
}

// RunPFOblivious runs the PF-obliviousness analysis for both secret
// values.
func RunPFOblivious() (*PFObliviousResult, error) {
	// Step 1: page-level traces are secret-independent (defense works at
	// its own granularity). Run both victims under demand paging and
	// compare the VPN fault sequences.
	var traces [2][]uint64
	for i, secret := range []bool{false, true} {
		p, err := newPlatform(cpu.DefaultConfig(), "obliv")
		if err != nil {
			return nil, err
		}
		l := oblivVictim(secret)
		// Install regions WITHOUT eager mapping: every first touch
		// faults, exposing the page-level trace to the OS.
		for _, reg := range l.Regions {
			p.Kernel.AddVMA(p.Proc, reg.VA, reg.VA+reg.Size, reg.Flags, reg.Name)
		}
		l.Start(p.Kernel, 0)
		if err := p.run(50_000_000); err != nil {
			return nil, fmt.Errorf("oblivious victim %d: %w", i, err)
		}
		for _, f := range p.Kernel.FaultLog() {
			traces[i] = append(traces[i], f.VPN)
		}
	}
	res := &PFObliviousResult{PageTraceEqual: equalU64(traces[0], traces[1])}

	// Step 2: mount MicroScope using a redundant access as the handle and
	// recover the secret through the cache-line channel.
	secret := true
	p, err := newPlatform(cpu.DefaultConfig(), "obliv-attacked")
	if err != nil {
		return nil, err
	}
	core, k, m, proc := p.Core, p.Kernel, p.Module, p.Proc
	l := oblivVictim(secret)
	if err := p.install(l); err != nil {
		return nil, err
	}
	// Every page the victim touches is a handle candidate; the redundant
	// pages are new ones the transformation donated.
	res.HandleCandidates = len(l.Regions)

	line0, err := proc.AddressSpace().Translate(probeVA)
	if err != nil {
		return nil, err
	}
	line1, err := proc.AddressSpace().Translate(probeVA + 64)
	if err != nil {
		return nil, err
	}
	core.Hierarchy().FlushAddr(line0)
	core.Hierarchy().FlushAddr(line1)

	recovered := -1
	rec := &microscope.Recipe{
		Name:   "obliv",
		Victim: proc,
		Handle: l.Sym("redundantA"), // a handle the DEFENSE added
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		hot0 := core.Hierarchy().LevelOf(line0) != cache.LevelMem
		hot1 := core.Hierarchy().LevelOf(line1) != cache.LevelMem
		switch {
		case hot1 && !hot0:
			recovered = 1
		case hot0 && !hot1:
			recovered = 0
		}
		if recovered >= 0 || ev.Replays > 20 {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := m.Install(rec); err != nil {
		return nil, err
	}
	l.Start(k, 0)
	if err := p.run(50_000_000); err != nil {
		return nil, fmt.Errorf("attacked oblivious victim: %w", err)
	}
	res.SecretRecovered = recovered == 1 // secret was true
	return res, nil
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
