package defense

import (
	"testing"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// runCanonicalAttack mounts the baseline §5 page-fault replay attack
// against a handle-then-transmit victim with the given defense active
// at every layer (Configure, Harden, Install), and returns the
// defense's verdict plus the number of replay windows whose transmit
// footprint the attacker observed.
func runCanonicalAttack(t *testing.T, d Defense, replays int, latency uint64) (Verdict, int) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	d.Configure(&cfg)
	p, err := newPlatform(cfg, "victim")
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := d.Harden(leakVictim())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.install(hardened); err != nil {
		t.Fatal(err)
	}
	if err := d.Install(p.Kernel, p.Proc); err != nil {
		t.Fatal(err)
	}

	probePA, err := p.Proc.AddressSpace().Translate(probeVA)
	if err != nil {
		t.Fatal(err)
	}
	p.Core.Hierarchy().FlushAddr(probePA)

	leaky := 0
	rec := &microscope.Recipe{
		Name: "canonical", Victim: p.Proc, Handle: handleVA,
		HandlerLatency: latency, MaxReplays: replays,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		if p.Core.Hierarchy().LevelOf(probePA) != cache.LevelMem {
			leaky++
			p.Core.Hierarchy().FlushAddr(probePA)
		}
		if ev.Replays >= replays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := p.Module.Install(rec); err != nil {
		t.Fatal(err)
	}
	hardened.Start(p.Kernel, 0)
	if err := p.run(100_000_000); err != nil {
		t.Fatal(err)
	}
	return d.Verdict(p.Kernel, p.Core, p.Proc, 0), leaky
}

// TestDefenseRosterVsCanonicalReplay runs every roster defense against
// the same 8-replay page-fault attack and checks the expected outcome:
// detectors fire, preventers starve the channel, and the two known-weak
// schemes (none, pfoblivious) do neither.
func TestDefenseRosterVsCanonicalReplay(t *testing.T) {
	const replays = 8
	tests := []struct {
		name     string
		detect   bool
		minLeaky int // -1: don't check
		maxLeaky int // -1: don't check
	}{
		// Undefended baseline: nearly every window leaks.
		{"none", false, replays - 2, -1},
		// Jamais Vu: 8 squashes of one PC crosses threshold 6.
		{"jamaisvu", true, -1, -1},
		// Selective delay: the transmit never issues speculatively.
		{"delay", false, -1, 0},
		// LEASH: an 8-fault same-page burst trips the throttle.
		{"leash", true, -1, -1},
		// SIMF: the flush lands before the attacker's probe.
		{"simf", false, -1, 0},
		// Déjà Vu: 8 × 2500 handler cycles blows the 15k stall budget.
		{"dejavu", true, -1, -1},
		// T-SGX: in-tx faults become aborts; 8 aborts hits the budget.
		{"tsgx", true, -1, -1},
		// PF-obliviousness neither detects nor prevents (§8).
		{"pfoblivious", false, -1, -1},
		// Fence-after-flush: only the pre-flush first window may leak.
		{"fence", false, -1, 1},
		// Invisible speculation closes the cache channel entirely.
		{"invisispec", false, -1, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := Find(tc.name)
			if d == nil {
				t.Fatalf("defense %q not in roster", tc.name)
			}
			v, leaky := runCanonicalAttack(t, d, replays, 2_500)
			if v.Detected != tc.detect {
				t.Errorf("Detected = %v, want %v (counters %v)",
					v.Detected, tc.detect, v.Counters)
			}
			if tc.minLeaky >= 0 && leaky < tc.minLeaky {
				t.Errorf("leaky windows = %d, want >= %d", leaky, tc.minLeaky)
			}
			if tc.maxLeaky >= 0 && leaky > tc.maxLeaky {
				t.Errorf("leaky windows = %d, want <= %d", leaky, tc.maxLeaky)
			}
		})
	}
}

// TestDefenseRosterSilentOnConstantTime runs every defense over the
// PROVEN-SAFE constant-time control victim with no attack mounted: none
// may report a detection (the tournament's false-positive gate).
func TestDefenseRosterSilentOnConstantTime(t *testing.T) {
	for _, d := range All() {
		t.Run(d.Name(), func(t *testing.T) {
			cfg := cpu.DefaultConfig()
			d.Configure(&cfg)
			p, err := newPlatform(cfg, "control")
			if err != nil {
				t.Fatal(err)
			}
			hardened, err := d.Harden(victim.ConstantTime())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.install(hardened); err != nil {
				t.Fatal(err)
			}
			if err := d.Install(p.Kernel, p.Proc); err != nil {
				t.Fatal(err)
			}
			hardened.Start(p.Kernel, 0)
			if err := p.run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if v := d.Verdict(p.Kernel, p.Core, p.Proc, 0); v.Detected {
				t.Errorf("false positive on benign run (counters %v)", v.Counters)
			}
		})
	}
}

// TestDefenseEpochReset checks that the stateful detectors forget: a
// Jamais Vu epoch shorter than the replay cadence clears the squash
// counters between faults, and a LEASH window shorter than the handler
// latency never accumulates a burst. Both must stay silent against an
// attack their default configurations catch.
func TestDefenseEpochReset(t *testing.T) {
	v, _ := runCanonicalAttack(t, &JamaisVu{Threshold: 6, Epoch: 200}, 8, 2_500)
	if v.Detected {
		t.Errorf("jamaisvu: epoch-cleared counters still alarmed (counters %v)", v.Counters)
	}
	v, _ = runCanonicalAttack(t,
		&Leash{Config: kernel.LeashConfig{Window: 900, Faults: 4, Penalty: 10_000}},
		8, 2_500)
	if v.Detected {
		t.Errorf("leash: burst outside the window still tripped (counters %v)", v.Counters)
	}
}

const benignDataVA mem.Addr = 0x0060_0000

// benignLayout is a branchy, store-heavy, fault-free loop used to
// measure each defense's overhead on non-attack code. All regions are
// eagerly mapped, so T-SGX's transaction never aborts and the kernel
// defenses see no faults; what remains is each defense's steady-state
// pipeline tax.
func benignLayout() *victim.Layout {
	prog := isa.NewBuilder().
		MovImm(isa.R1, 2000).
		MovImm(isa.R2, int64(benignDataVA)).
		MovImm(isa.R3, 0).
		Label("loop").
		AndImm(isa.R4, isa.R1, 3).
		Beq(isa.R4, isa.R0, "skip"). // taken every 4th iteration
		AddImm(isa.R3, isa.R3, 1).
		Label("skip").
		ShlImm(isa.R5, isa.R1, 4).
		AndImm(isa.R5, isa.R5, 0x7ff8).
		Add(isa.R5, isa.R5, isa.R2).
		Store(isa.R3, isa.R5, 0).
		Load(isa.R6, isa.R5, 0).
		AddImm(isa.R1, isa.R1, -1).
		Bne(isa.R1, isa.R0, "loop").
		Halt().MustBuild()
	return &victim.Layout{
		Name: "benign",
		Prog: prog,
		Regions: []victim.Region{
			{Name: "data", VA: benignDataVA, Size: 8 * mem.PageSize, Flags: rw},
		},
	}
}

func benignCyclesUnder(t *testing.T, d Defense) uint64 {
	t.Helper()
	cfg := cpu.DefaultConfig()
	d.Configure(&cfg)
	p, err := newPlatform(cfg, "benign")
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := d.Harden(benignLayout())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.install(hardened); err != nil {
		t.Fatal(err)
	}
	if err := d.Install(p.Kernel, p.Proc); err != nil {
		t.Fatal(err)
	}
	hardened.Start(p.Kernel, 0)
	if err := p.run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return p.Core.Cycle()
}

// TestDefenseRosterBoundedOverhead bounds every defense's slowdown on
// the benign workload at 3x the undefended baseline — the tournament
// reports the exact permille figures; this test just keeps a regression
// from making a defense pathologically expensive.
func TestDefenseRosterBoundedOverhead(t *testing.T) {
	base := benignCyclesUnder(t, noDefense{})
	if base == 0 {
		t.Fatal("baseline ran in zero cycles")
	}
	for _, d := range All() {
		t.Run(d.Name(), func(t *testing.T) {
			cycles := benignCyclesUnder(t, d)
			permille := (int64(cycles) - int64(base)) * 1000 / int64(base)
			t.Logf("overhead: %d permille (%d -> %d cycles)", permille, base, cycles)
			if cycles > 3*base {
				t.Errorf("overhead %d permille exceeds 3x baseline", permille)
			}
		})
	}
}

// TestRosterNamesUniqueAndFindable guards the matrix keys: every roster
// defense has a distinct, Find-able name.
func TestRosterNamesUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		n := d.Name()
		if seen[n] {
			t.Errorf("duplicate defense name %q", n)
		}
		seen[n] = true
		if Find(n) == nil {
			t.Errorf("Find(%q) = nil", n)
		}
	}
	if Find("nonesuch") != nil {
		t.Error("Find(nonesuch) should be nil")
	}
}
