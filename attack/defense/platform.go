package defense

import (
	"fmt"
	"strings"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// platform is the minimal attack rig every defense experiment in this
// package assembles: physical memory, one core, a kernel with the
// MicroScope module loaded, and a victim process on context 0. It is
// deliberately a local twin of experiments.Rig — this package must not
// import attack/experiments (the tournament there imports us), so the
// handful of setup lines live here instead of being duplicated in every
// Run* entry point.
type platform struct {
	Phys   *mem.PhysMem
	Core   *cpu.Core
	Kernel *kernel.Kernel
	Module *microscope.Module
	Proc   *kernel.Process
}

// newPlatform assembles a platform with the given core configuration.
func newPlatform(cfg cpu.Config, procName string) (*platform, error) {
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cfg, phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := microscope.NewModule(k)
	proc, err := k.NewProcess(procName)
	if err != nil {
		return nil, err
	}
	k.Schedule(0, proc)
	return &platform{Phys: phys, Core: core, Kernel: k, Module: m, Proc: proc}, nil
}

// install registers and eagerly maps a victim layout into the platform's
// process.
func (p *platform) install(l *victim.Layout) error {
	return l.Install(p.Kernel, p.Proc)
}

// run drives the core until every loaded context halts, erroring on
// timeout with each spinning context's PC.
func (p *platform) run(maxCycles uint64) error {
	p.Core.Run(maxCycles)
	if !p.Core.Halted() {
		var sb strings.Builder
		for i := 0; i < p.Core.Contexts(); i++ {
			ctx := p.Core.Context(i)
			if ctx.Program() == nil || ctx.Halted() {
				continue
			}
			fmt.Fprintf(&sb, "; ctx%d spinning at pc=%d", i, ctx.PC())
		}
		return fmt.Errorf("defense: run exceeded %d cycles%s", maxCycles, sb.String())
	}
	return nil
}
