// Package defense implements the §8 countermeasures the paper analyses —
// T-SGX, Déjà Vu and page-fault obliviousness — together with the attacks
// that measure what each one actually buys against microarchitectural
// replay.
package defense

import (
	"fmt"

	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

const (
	handleVA mem.Addr = 0x0040_0000
	probeVA  mem.Addr = 0x0041_0000
	outVA    mem.Addr = 0x0042_0000
)

const rw = mem.FlagUser | mem.FlagWritable

// TSGXResult reports the T-SGX experiment.
type TSGXResult struct {
	// Threshold is T-SGX's abort budget N (the paper notes the authors
	// use N = 10 because they cannot distinguish page faults from
	// ordinary interrupts).
	Threshold int
	// OSVisibleFaults counts page faults the malicious OS observed
	// (T-SGX's goal is zero: TSX redirects them to the enclave).
	OSVisibleFaults int
	// LeakObservations counts how many distinct replays the attacker
	// could still measure — the paper: "this design decision still
	// provides N−1 replays to MicroScope".
	LeakObservations int
	// VictimTerminated reports that T-SGX tripped its threshold and shut
	// the enclave down.
	VictimTerminated bool
}

// tsgxVictim builds a T-SGX-protected victim: the sensitive code (a
// transmit load followed by a load the OS has armed) runs inside a TSX
// transaction; the abort handler retries until the abort budget N is
// exhausted, then terminates (T-SGX's tsx-abort policy).
func tsgxVictim(n int) *victim.Layout {
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handleVA)).
		MovImm(isa.R2, int64(probeVA)).
		MovImm(isa.R7, int64(outVA)).
		Label("retry").
		// AbortReg (r15) carries the cumulative abort count.
		TxBegin("aborted").
		Load(isa.R4, isa.R2, 0). // sensitive transmit (leaks each replay)
		Load(isa.R5, isa.R1, 0). // access the OS armed (faults in-tx)
		TxEnd().
		MovImm(isa.R6, 1).
		Store(isa.R6, isa.R7, 0). // success marker
		Halt().
		Label("aborted").
		MovImm(isa.R13, int64(n)).
		Blt(isa.R15, isa.R13, "retry"). // under budget: retry
		MovImm(isa.R6, 2).
		Store(isa.R6, isa.R7, 0). // terminated marker
		Halt()
	return &victim.Layout{
		Name: "tsgx",
		Prog: b.MustBuild(),
		Symbols: map[string]mem.Addr{
			"handle": handleVA, "probe": probeVA, "out": outVA,
		},
		Regions: []victim.Region{
			{Name: "handle", VA: handleVA, Size: mem.PageSize, Flags: rw},
			{Name: "probe", VA: probeVA, Size: mem.PageSize, Flags: rw},
			{Name: "out", VA: outVA, Size: mem.PageSize, Flags: rw},
		},
	}
}

// RunTSGX mounts MicroScope against a T-SGX-protected victim with abort
// budget n. T-SGX succeeds at hiding the faults from the OS, but the
// enclave's own retries still replay the sensitive code: the attacker
// passively observes the transmit's cache footprint after each of the
// first n−1 retries.
func RunTSGX(n int) (*TSGXResult, error) {
	p, err := newPlatform(cpu.DefaultConfig(), "tsgx-victim")
	if err != nil {
		return nil, err
	}
	core, k, proc := p.Core, p.Kernel, p.Proc
	l := tsgxVictim(n)
	if err := p.install(l); err != nil {
		return nil, err
	}

	// Malicious OS: arm the handle page. No MicroScope module needed —
	// the enclave replays itself via transaction retries.
	if _, err := proc.AddressSpace().SetPresent(handleVA, false); err != nil {
		return nil, err
	}
	k.Invlpg(proc, handleVA)

	probePA, err := proc.AddressSpace().Translate(probeVA)
	if err != nil {
		return nil, err
	}
	core.Hierarchy().FlushAddr(probePA)

	res := &TSGXResult{Threshold: n}
	l.Start(k, 0)
	ctx := core.Context(0)
	lastAborts := uint64(0)
	for steps := 0; steps < 50_000_000 && !ctx.Halted(); steps++ {
		core.Step()
		// Attacker's passive probe: after each abort, check and re-flush
		// the transmit footprint.
		if a := ctx.Stats().TxAborts; a != lastAborts {
			lastAborts = a
			if core.Hierarchy().LevelOf(probePA) != cache.LevelMem {
				res.LeakObservations++
				core.Hierarchy().FlushAddr(probePA)
			}
		}
	}
	if !ctx.Halted() {
		return nil, fmt.Errorf("defense: tsgx victim did not finish")
	}
	res.OSVisibleFaults = int(ctx.Stats().PageFaults)
	marker, err := proc.AddressSpace().Read64Virt(outVA)
	if err != nil {
		return nil, err
	}
	res.VictimTerminated = marker == 2
	return res, nil
}
