package victim

import (
	"fmt"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Square-and-multiply modular exponentiation — the classic RSA-style
// side-channel target. Each secret exponent bit decides whether the
// iteration performs the extra multiply; the multiply path touches a
// per-iteration probe line, so a replay attack stepping iteration by
// iteration recovers the whole exponent from one logical run.
const (
	ModExpHandleVA mem.Addr = 0x0048_0000 // per-iteration replay handle
	ModExpProbeVA  mem.Addr = 0x0049_0000 // per-bit transmit lines
	ModExpPivotVA  mem.Addr = 0x004A_0000 // pivot page
	ModExpOutVA    mem.Addr = 0x004B_0000 // result
)

// ModExpVictim computes base^exp mod m with a secret exponent.
type ModExpVictim struct {
	*Layout
	Base, Exp, Mod uint64
	Bits           int
}

// ModExpResult computes the expected result in software.
func (v *ModExpVictim) ModExpResult() uint64 {
	result := uint64(1)
	for i := v.Bits - 1; i >= 0; i-- {
		result = result * result % v.Mod
		if v.Exp>>uint(i)&1 == 1 {
			result = result * v.Base % v.Mod
		}
	}
	return result
}

// NewModExpVictim builds the victim program: one unrolled iteration per
// exponent bit, MSB first. bits must be ≤ 32 (the probe page holds up to
// 64 lines; operands stay below 2^20 so squares fit in uint64).
//
// Register plan: r1 handle base, r2 probe base, r3 pivot base, r5
// exponent (loaded from the secret page at entry... kept as an immediate
// here: the exponent is enclave data the attack never reads directly),
// r6 result, r7 base, r8 modulus, r9-r14 scratch.
func NewModExpVictim(base, exp, mod uint64, bits int) (*ModExpVictim, error) {
	if bits <= 0 || bits > 32 {
		return nil, fmt.Errorf("victim: modexp bits %d out of range", bits)
	}
	if mod == 0 || mod >= 1<<20 || base >= mod {
		return nil, fmt.Errorf("victim: modexp operands out of range (mod=%d base=%d)", mod, base)
	}
	if bits < 64 && exp >= 1<<uint(bits) {
		return nil, fmt.Errorf("victim: exponent %d exceeds %d bits", exp, bits)
	}

	b := isa.NewBuilder().
		MovImm(isa.R1, int64(ModExpHandleVA)).
		MovImm(isa.R2, int64(ModExpProbeVA)).
		MovImm(isa.R3, int64(ModExpPivotVA)).
		MovImm(isa.R5, int64(exp)).
		MovImm(isa.R6, 1). // result
		MovImm(isa.R7, int64(base)).
		MovImm(isa.R8, int64(mod))

	v := &ModExpVictim{Base: base, Exp: exp, Mod: mod, Bits: bits}
	marks := map[string]int{}

	emitModReduce := func(val isa.Reg) { // val <- val mod r8 (via div/mul/sub)
		b.Div(isa.R10, val, isa.R8).
			Mul(isa.R10, isa.R10, isa.R8).
			Sub(val, val, isa.R10)
	}

	for i := bits - 1; i >= 0; i-- {
		it := bits - 1 - i // iteration number, 0-based
		// Square: result = result^2 mod m.
		b.Mul(isa.R9, isa.R6, isa.R6).
			Mov(isa.R6, isa.R9)
		emitModReduce(isa.R6)

		// Per-iteration replay handle (same page every iteration).
		marks[fmt.Sprintf("handle%d", it)] = b.Here()
		b.Load(isa.R11, isa.R1, 0)

		// Secret-dependent multiply.
		skip := fmt.Sprintf("skip%d", it)
		b.ShrImm(isa.R12, isa.R5, int64(i)).
			AndImm(isa.R12, isa.R12, 1).
			Beq(isa.R12, isa.R0, skip)
		marks[fmt.Sprintf("transmit%d", it)] = b.Here()
		b.Load(isa.R13, isa.R2, int64(it)*64) // per-bit probe line
		b.Mul(isa.R9, isa.R6, isa.R7).
			Mov(isa.R6, isa.R9)
		emitModReduce(isa.R6)
		b.Label(skip)

		// Pivot access (different page than the handle).
		marks[fmt.Sprintf("pivot%d", it)] = b.Here()
		b.Load(isa.R14, isa.R3, 0)
	}
	b.MovImm(isa.R4, int64(ModExpOutVA)).
		Store(isa.R6, isa.R4, 0).
		Halt()

	v.Layout = &Layout{
		Name:       "modexp",
		Prog:       b.MustBuild(),
		Marks:      marks,
		SecretRegs: []isa.Reg{isa.R5},
		Symbols: map[string]mem.Addr{
			"handle": ModExpHandleVA,
			"probe":  ModExpProbeVA,
			"pivot":  ModExpPivotVA,
			"out":    ModExpOutVA,
		},
		Regions: []Region{
			{Name: "handle", VA: ModExpHandleVA, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{1})},
			{Name: "probe", VA: ModExpProbeVA, Size: mem.PageSize, Flags: rw},
			{Name: "pivot", VA: ModExpPivotVA, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{2})},
			{Name: "out", VA: ModExpOutVA, Size: mem.PageSize, Flags: rw},
		},
	}
	return v, nil
}

// ProbeLineVA returns the probe line address for iteration it.
func (v *ModExpVictim) ProbeLineVA(it int) mem.Addr {
	return ModExpProbeVA + mem.Addr(it)*64
}
