// Program surgery for the defense suite: transactional wrapping (T-SGX
// and the §7.1 TSX replay handle share it) and page-touch prefaces
// (pf-oblivious scheduling). Both transforms are append-only — original
// instruction indices are untouched, so every branch target and every
// Mark stays valid without remapping. Halts are rewritten in place to
// jump into an appended epilogue; the new code (prologue, epilogue,
// abort handler) lives past the original end and the Layout's Entry
// points into it.
package victim

import (
	"fmt"

	"microscope/sim/isa"
)

// WrapTx returns a copy of the layout whose program runs inside a TSX
// transaction: TxBegin at entry, TxEnd before every halt, and an abort
// handler that retries the transaction until the abort budget is spent.
//
// The handler thresholds on cpu.AbortReg (R15), which the core loads
// with the cumulative abort count at every abort — the T-SGX idiom. On
// exhaustion, haltOnExhaust selects the policy:
//
//   - true (T-SGX defense): halt. The enclave refuses to keep feeding
//     replay windows to a fault-pinning attacker; detection is the
//     abort count itself.
//   - false (§7.1 attacker handle): fall back to running the body
//     non-transactionally so the victim still completes. Each abort up
//     to the budget re-executed the body from TxBegin — one replay
//     window per abort, no page fault ever delivered.
//
// R15 is clobbered (it is the architecture's abort register); no
// builtin victim reads R15 before writing it.
func WrapTx(l *Layout, budget int64, haltOnExhaust bool) (*Layout, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("victim: WrapTx budget %d, want > 0", budget)
	}
	n := len(l.Prog.Instrs)
	instrs := make([]isa.Instr, n, n+7)
	copy(instrs, l.Prog.Instrs)

	const (
		offEnd     = 0 // +n: txend
		offHalt    = 1 // +n: halt
		offBegin   = 2 // +n: txbegin -> handler (entry and retry point)
		offBody    = 3 // +n: jmp original entry
		offHandler = 4 // +n: addimm r15, r15, -budget
		offRetry   = 5 // +n: blt r15, r0 -> txbegin
		offExhaust = 6 // +n: halt | jmp original entry
	)

	// In-place: every halt becomes a jump to the txend epilogue.
	for i := range instrs {
		if instrs[i].Op == isa.OpHalt {
			instrs[i] = isa.Instr{Op: isa.OpJmp, Target: n + offEnd, Label: "tx.end"}
		}
	}
	exhaust := isa.Instr{Op: isa.OpJmp, Target: l.Entry, Label: "tx.body"}
	if haltOnExhaust {
		exhaust = isa.Instr{Op: isa.OpHalt}
	}
	instrs = append(instrs,
		isa.Instr{Op: isa.OpTxEnd}, // tx.end
		isa.Instr{Op: isa.OpHalt},  // tx.halt
		isa.Instr{Op: isa.OpTxBegin, Target: n + offHandler, Label: "tx.handler"}, // tx.begin
		isa.Instr{Op: isa.OpJmp, Target: l.Entry, Label: "tx.body"},               // -> body
		isa.Instr{Op: isa.OpAddImm, Rd: isa.R15, Rs1: isa.R15, Imm: -budget},      // tx.handler
		isa.Instr{Op: isa.OpBlt, Rs1: isa.R15, Rs2: isa.R0, Target: n + offBegin, Label: "tx.begin"},
		exhaust,
	)

	labels := make(map[string]int, len(l.Prog.Labels)+4)
	for name, idx := range l.Prog.Labels {
		labels[name] = idx
	}
	labels["tx.end"] = n + offEnd
	labels["tx.begin"] = n + offBegin
	labels["tx.body"] = l.Entry
	labels["tx.handler"] = n + offHandler

	marks := make(map[string]int, len(l.Marks)+1)
	for name, idx := range l.Marks {
		marks[name] = idx
	}
	marks["tx.begin"] = n + offBegin

	out := *l
	out.Name = l.Name + "+tx"
	out.Prog = &isa.Program{Instrs: instrs, Labels: labels}
	out.Entry = n + offBegin
	out.Marks = marks
	if err := out.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("victim: WrapTx(%s): %w", l.Name, err)
	}
	return &out, nil
}

// WithPreface returns a copy of the layout whose program first touches
// the base page of every data region, then zeroes the scratch register
// and falls through to the original entry. A pf-oblivious runtime
// pre-touches its working set so the attacker's cleared present bit is
// consumed by a preface load — a window that carries no secret-
// dependent transients — instead of by the victim's real access.
//
// R15 is the scratch register, restored to zero before the body.
func WithPreface(l *Layout) *Layout {
	n := len(l.Prog.Instrs)
	instrs := make([]isa.Instr, n, n+2*len(l.Regions)+2)
	copy(instrs, l.Prog.Instrs)

	entry := len(instrs)
	for _, r := range l.Regions {
		instrs = append(instrs,
			isa.Instr{Op: isa.OpMovImm, Rd: isa.R15, Imm: int64(r.VA)},
			isa.Instr{Op: isa.OpLoad, Rd: isa.R15, Rs1: isa.R15},
		)
	}
	instrs = append(instrs,
		isa.Instr{Op: isa.OpMovImm, Rd: isa.R15, Imm: 0},
		isa.Instr{Op: isa.OpJmp, Target: l.Entry, Label: "preface.body"},
	)

	labels := make(map[string]int, len(l.Prog.Labels)+2)
	for name, idx := range l.Prog.Labels {
		labels[name] = idx
	}
	labels["preface"] = entry
	labels["preface.body"] = l.Entry

	out := *l
	out.Name = l.Name + "+preface"
	out.Prog = &isa.Program{Instrs: instrs, Labels: labels}
	out.Entry = entry
	return &out
}
