package victim

import (
	"strings"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

const testScript = `
; plain comment
;; region data 0x400000 rw 2
;; region ro   0x402000 ro
;; init data+8 0xdeadbeef
;; init data+4096 77
;; symbol second data+4096
;; entry start

        nop
start:  movi r1, 0x400000
        ld   r2, 8(r1)
        ld   r3, 4096(r1)
        halt
`

func TestParseScript(t *testing.T) {
	l, err := ParseScript("test", testScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Regions) != 2 {
		t.Fatalf("regions = %d", len(l.Regions))
	}
	if l.Regions[0].Name != "data" || l.Regions[1].Name != "ro" {
		t.Errorf("region order: %s, %s", l.Regions[0].Name, l.Regions[1].Name)
	}
	if l.Regions[0].Size != 2*mem.PageSize {
		t.Errorf("data region size = %d", l.Regions[0].Size)
	}
	if l.Regions[1].Flags&mem.FlagWritable != 0 {
		t.Error("ro region writable")
	}
	if l.Sym("second") != 0x400000+mem.PageSize {
		t.Errorf("symbol second = %#x", l.Sym("second"))
	}
	if l.Entry != 1 {
		t.Errorf("entry = %d, want 1 (label start)", l.Entry)
	}
	// Init bytes: little-endian 0xdeadbeef at offset 8.
	if l.Regions[0].Init[8] != 0xef || l.Regions[0].Init[11] != 0xde {
		t.Errorf("init bytes = % x", l.Regions[0].Init[8:12])
	}
}

func TestParseScriptRunsEndToEnd(t *testing.T) {
	l, err := ParseScript("test", testScript)
	if err != nil {
		t.Fatal(err)
	}
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	proc, err := k.NewProcess("scripted")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, proc)
	if err := l.Install(k, proc); err != nil {
		t.Fatal(err)
	}
	l.Start(k, 0)
	core.Run(1_000_000)
	ctx := core.Context(0)
	if !ctx.Halted() {
		t.Fatal("scripted victim did not halt")
	}
	if ctx.Reg(2) != 0xdeadbeef {
		t.Errorf("r2 = %#x", ctx.Reg(2))
	}
	if ctx.Reg(3) != 77 {
		t.Errorf("r3 = %d", ctx.Reg(3))
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		errSub string
	}{
		{"unknown directive", ";; frobnicate x\nnop\nhalt", "unknown directive"},
		{"unaligned region", ";; region r 0x400010 rw\nnop", "not page aligned"},
		{"bad perms", ";; region r 0x400000 wx\nnop", "bad permissions"},
		{"dup region", ";; region r 0x400000 rw\n;; region r 0x401000 rw\nnop", "duplicate region"},
		{"init missing region", ";; init r+0 1\nnop", "before region"},
		{"init out of range", ";; region r 0x400000 rw\n;; init r+4090 1\nnop", "outside region"},
		{"symbol missing region", ";; symbol s r+0\nnop", "before region"},
		{"bad entry", ";; entry nowhere\nnop\nhalt", "undefined"},
		{"empty program", ";; region r 0x400000 rw\n; nothing", "no instructions"},
		{"bad assembly", "frob r1\nhalt", "unknown mnemonic"},
		{"bad region pages", ";; region r 0x400000 rw zero\nnop", "bad page count"},
	}
	for _, c := range cases {
		_, err := ParseScript("t", c.src)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.errSub)
		}
	}
}

func TestSplitRef(t *testing.T) {
	name, off, err := splitRef("data+128")
	if err != nil || name != "data" || off != 128 {
		t.Errorf("splitRef = %q,%d,%v", name, off, err)
	}
	name, off, err = splitRef("data")
	if err != nil || name != "data" || off != 0 {
		t.Errorf("splitRef = %q,%d,%v", name, off, err)
	}
	if _, _, err := splitRef("data+xyz"); err == nil {
		t.Error("bad offset accepted")
	}
}
