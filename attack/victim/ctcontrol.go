package victim

import (
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// ConstantTime builds the negative control for the verifier: a victim
// that genuinely handles a secret — loading it and selecting between
// two public operands on its low bit — without any secret-dependent
// address, branch, divide or randomness. The selection is branchless
// (mask = -(secret & 1), result = (a & mask) | (b & ~mask)), so every
// replay of the handle's squash shadow re-executes an identical
// footprint: the same cache lines, no divider occupancy, no variable
// latency. MicroScope can replay it forever and learn nothing; the
// verifier must classify it PROVEN-SAFE.
//
// Symbols: handle, secret, operands, out. Marks: handle, select.
func ConstantTime() *Layout {
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handlePage)).
		MovImm(isa.R2, int64(secretPage)).
		MovImm(isa.R3, int64(operandPage)).
		MovImm(isa.R8, int64(outPage)).
		Load(isa.R4, isa.R2, 0). // secret (fixed address)
		Load(isa.R5, isa.R3, 0). // public operand a
		Load(isa.R6, isa.R3, 8)  // public operand b

	marks := map[string]int{}
	marks["handle"] = b.Here()
	b.Load(isa.R7, isa.R1, 0) // REPLAY HANDLE (public address)
	marks["select"] = b.Here()
	b.AndImm(isa.R9, isa.R4, 1). // bit = secret & 1
					Sub(isa.R9, isa.R0, isa.R9).   // mask = -bit (0 or all-ones)
					MovImm(isa.R11, -1).           //
					Xor(isa.R11, isa.R9, isa.R11). // ~mask
					And(isa.R10, isa.R5, isa.R9).  // a & mask
					And(isa.R11, isa.R6, isa.R11). // b & ~mask
					Or(isa.R12, isa.R10, isa.R11). // constant-time select
					Xor(isa.R12, isa.R12, isa.R7). // fold in the handle value
					Store(isa.R12, isa.R8, 0).     // fixed public address
					Halt()

	return &Layout{
		Name:          "ctcontrol",
		Prog:          b.MustBuild(),
		Marks:         marks,
		SecretRegions: []string{"secret"},
		Symbols: map[string]mem.Addr{
			"handle":   handlePage,
			"secret":   secretPage,
			"operands": operandPage,
			"out":      outPage,
		},
		Regions: []Region{
			{Name: "handle", VA: handlePage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{0xabcd})},
			{Name: "secret", VA: secretPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{1})},
			{Name: "operands", VA: operandPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{0x1111_2222, 0x3333_4444})},
			{Name: "out", VA: outPage, Size: mem.PageSize, Flags: rw},
		},
	}
}
