package victim

import (
	"math"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Fixed virtual addresses for the simple victims. Each interesting object
// sits on its own page, as the attacks require (replay handle and
// sensitive data on different pages, §4.1.1).
const (
	handlePage  mem.Addr = 0x0040_0000 // replay-handle data (count, pub_addrA)
	secretPage  mem.Addr = 0x0041_0000 // enclave-secret data
	operandPage mem.Addr = 0x0042_0000 // FP operands for the branch sides
	pivotPage   mem.Addr = 0x0043_0000 // pivot data (pub_addrB)
	outPage     mem.Addr = 0x0044_0000 // results
	arrayPage   mem.Addr = 0x0045_0000 // secrets[] array (Fig. 5)
)

const rw = mem.FlagUser | mem.FlagWritable

// ControlFlowSecret builds the Fig. 6 victim: a replay handle followed by
// a branch on a secret bit; the taken side executes two floating-point
// divides, the fall-through side two integer multiplies. There is no
// loop — the sequence runs once, which is exactly what makes the port
// channel unusable without MicroScope.
//
// Symbols: handle, secret. Marks: handle, branch, div0, div1, mul0, mul1.
func ControlFlowSecret(secret bool) *Layout {
	sec := uint64(0)
	if secret {
		sec = 1
	}
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handlePage)).
		MovImm(isa.R2, int64(secretPage)).
		MovImm(isa.R3, int64(operandPage)).
		Load(isa.R4, isa.R2, 0). // secret (enclave data, retires pre-attack)
		LoadF(isa.F0, isa.R3, 0).
		LoadF(isa.F1, isa.R3, 8)

	marks := map[string]int{}
	marks["handle"] = b.Here()
	b.Load(isa.R5, isa.R1, 0) // REPLAY HANDLE (public address)
	marks["branch"] = b.Here()
	b.Bne(isa.R4, isa.R0, "divside")
	marks["mul0"] = b.Here()
	b.Mul(isa.R6, isa.R5, isa.R5)
	marks["mul1"] = b.Here()
	b.Mul(isa.R7, isa.R6, isa.R6).
		Jmp("end").
		Label("divside")
	marks["div0"] = b.Here()
	b.FDiv(isa.F2, isa.F0, isa.F1)
	marks["div1"] = b.Here()
	b.FDiv(isa.F3, isa.F0, isa.F1).
		Label("end").
		MovImm(isa.R8, int64(outPage)).
		Store(isa.R4, isa.R8, 0). // result marker: victim made progress
		Halt()

	return &Layout{
		Name:          "controlflow",
		Prog:          b.MustBuild(),
		Marks:         marks,
		SecretRegions: []string{"secret"},
		Symbols: map[string]mem.Addr{
			"handle": handlePage,
			"secret": secretPage,
			"out":    outPage,
		},
		Regions: []Region{
			{Name: "handle", VA: handlePage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{0xabcd})},
			{Name: "secret", VA: secretPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{sec})},
			{Name: "operands", VA: operandPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{
					math.Float64bits(3.0),
					math.Float64bits(1.5),
				})},
			{Name: "out", VA: outPage, Size: mem.PageSize, Flags: rw},
		},
	}
}

// SingleSecret builds the Fig. 5 victim, getSecret(id, key):
//
//	count++;                    // count load = replay handle
//	return secrets[id] / key;   // measurement access + transmit divide
//
// When subnormal is true, secrets[id] holds a subnormal float, so the
// divide takes the microcode-assist latency the attack detects.
//
// Symbols: count (handle), secrets. Marks: handle, secretload, transmit.
func SingleSecret(id int, subnormal bool) *Layout {
	secrets := make([]uint64, 512)
	for i := range secrets {
		secrets[i] = math.Float64bits(float64(i) + 2.0)
	}
	if subnormal {
		secrets[id] = 1 // smallest positive subnormal float64
	}
	key := math.Float64bits(1.5)

	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handlePage)). // &count
		MovImm(isa.R2, int64(arrayPage)).  // secrets base
		MovImm(isa.R3, int64(id)*8).       // offset of secrets[id]
		FLoadImm(isa.F1, int64(key)).      // key
		Add(isa.R2, isa.R2, isa.R3)        // &secrets[id]

	marks := map[string]int{}
	marks["handle"] = b.Here()
	b.Load(isa.R4, isa.R1, 0). // count load: REPLAY HANDLE
					AddImm(isa.R4, isa.R4, 1).
					Store(isa.R4, isa.R1, 0) // count++ writeback
	marks["secretload"] = b.Here()
	b.LoadF(isa.F0, isa.R2, 0) // measurement access: secrets[id]
	marks["transmit"] = b.Here()
	b.FDiv(isa.F2, isa.F0, isa.F1). // transmit: latency leaks subnormality
					MovImm(isa.R8, int64(outPage)).
					StoreF(isa.F2, isa.R8, 0).
					Halt()

	return &Layout{
		Name:          "singlesecret",
		Prog:          b.MustBuild(),
		Marks:         marks,
		SecretRegions: []string{"secrets"},
		Symbols: map[string]mem.Addr{
			"count":   handlePage,
			"secrets": arrayPage,
			"secret":  arrayPage + mem.Addr(id)*8,
			"out":     outPage,
		},
		Regions: []Region{
			{Name: "count", VA: handlePage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{7})},
			{Name: "secrets", VA: arrayPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes(secrets)},
			{Name: "out", VA: outPage, Size: mem.PageSize, Flags: rw},
		},
	}
}

// LoopSecret builds the Fig. 4b victim: a loop whose body contains a
// replay handle, a per-iteration transmit access to secret[i], and a
// pivot access on a different page. The transmit access indexes a probe
// array by the secret value (cache-line granularity), so each iteration's
// secret is recoverable from the cache footprint.
//
// Symbols: handle, pivot, probe, secrets. Marks: handle, transmit, pivot.
func LoopSecret(secrets []byte) *Layout {
	iters := len(secrets)
	// The secret array lives on its own (enclave) page; the probe array
	// spans one page; each secret value maps to a distinct 64-byte line.
	sec := make([]uint64, iters)
	for i, s := range secrets {
		sec[i] = uint64(s) % 64
	}

	b := isa.NewBuilder().
		MovImm(isa.R1, int64(handlePage)).
		MovImm(isa.R2, int64(secretPage)).
		MovImm(isa.R3, int64(operandPage)). // probe array page
		MovImm(isa.R4, int64(pivotPage)).
		MovImm(isa.R5, 0).            // i
		MovImm(isa.R6, int64(iters)). // bound
		Label("loop")
	marks := map[string]int{}
	marks["handle"] = b.Here()
	b.Load(isa.R7, isa.R1, 0). // REPLAY HANDLE (same page every iteration)
					ShlImm(isa.R8, isa.R5, 3).
					Add(isa.R8, isa.R8, isa.R2).
					Load(isa.R9, isa.R8, 0). // secret[i]
					ShlImm(isa.R9, isa.R9, 6).
					Add(isa.R9, isa.R9, isa.R3)
	marks["transmit"] = b.Here()
	b.Load(isa.R10, isa.R9, 0) // transmit: touches probe line secret[i]
	marks["pivot"] = b.Here()
	b.Load(isa.R11, isa.R4, 0). // PIVOT (different page than handle)
					AddImm(isa.R5, isa.R5, 1).
					Blt(isa.R5, isa.R6, "loop").
					Halt()

	return &Layout{
		Name:          "loopsecret",
		Prog:          b.MustBuild(),
		Marks:         marks,
		SecretRegions: []string{"secrets"},
		Symbols: map[string]mem.Addr{
			"handle":  handlePage,
			"secrets": secretPage,
			"probe":   operandPage,
			"pivot":   pivotPage,
		},
		Regions: []Region{
			{Name: "handle", VA: handlePage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{1})},
			{Name: "secrets", VA: secretPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes(sec)},
			{Name: "probe", VA: operandPage, Size: mem.PageSize, Flags: rw},
			{Name: "pivot", VA: pivotPage, Size: mem.PageSize, Flags: rw,
				Init: u64Bytes([]uint64{2})},
		},
	}
}
