package victim

import (
	"encoding/binary"
	"fmt"

	"microscope/crypto/taes"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// AES victim virtual addresses. Each Td table and the rk array occupy
// distinct pages — the property §4.4 relies on for handle/pivot selection.
const (
	AESInVA  mem.Addr = 0x0050_0000 // ciphertext words
	AESRKVA  mem.Addr = 0x0051_0000 // decryption key schedule (u32 words)
	AESTd0VA mem.Addr = 0x0052_0000
	AESTd1VA mem.Addr = 0x0053_0000
	AESTd2VA mem.Addr = 0x0054_0000
	AESTd3VA mem.Addr = 0x0055_0000
	AESTd4VA mem.Addr = 0x0056_0000
	AESOutVA mem.Addr = 0x0057_0000 // plaintext words
	// AESStackVA is a stack page the victim touches between key setup
	// and the first round — the natural "replay handle before the loop"
	// the paper's §4.4 footnote uses to recover the first iteration's
	// otherwise-missed accesses.
	AESStackVA mem.Addr = 0x0058_0000
)

// AESVictim is the Fig. 8a victim: a full T-table AES decryption compiled
// to the simulated ISA, with per-access instruction marks so attack
// recipes can target individual rk loads (replay handles) and Td0 loads
// (pivots).
type AESVictim struct {
	*Layout
	Cipher *taes.Cipher
	// RKLoads[r][c] is the instruction index of the rk load feeding round
	// r (1-based), column c. Round Rounds() is the final round.
	RKLoads map[[2]int]int
	// TdLoads[{r,c,t}] is the instruction index of the Td_t load of round
	// r, column c (t=4 marks the first Td4 load of the final-round column).
	TdLoads map[[3]int]int
}

// Register plan for the generated code (see aesRound):
//
//	r1..r4  Td0..Td3 bases (final round: r1 = Td4 base)
//	r5      rk base (epilogue: out base)
//	r6..r9  s0..s3
//	r10..r13 t0..t3
//	r14     scratch (index/address/loaded word)
//	r15     scratch
const (
	regTd0 = isa.R1
	regRK  = isa.R5
	regS0  = isa.R6
	regT0  = isa.R10
	regTmp = isa.R14
	regTm2 = isa.R15
)

// NewAESVictim builds the victim for the given key and ciphertext block.
func NewAESVictim(key, ciphertext []byte) (*AESVictim, error) {
	if len(ciphertext) != taes.BlockSize {
		return nil, fmt.Errorf("victim: ciphertext must be one block, got %d bytes", len(ciphertext))
	}
	c, err := taes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	nr := c.Rounds()

	v := &AESVictim{
		Cipher:  c,
		RKLoads: make(map[[2]int]int),
		TdLoads: make(map[[3]int]int),
	}
	b := isa.NewBuilder()

	// Prologue: load table bases and the initial state
	// s_i = BE32(ct[4i]) ^ rk[i].
	b.MovImm(regTd0+0, int64(AESTd0VA)).
		MovImm(regTd0+1, int64(AESTd1VA)).
		MovImm(regTd0+2, int64(AESTd2VA)).
		MovImm(regTd0+3, int64(AESTd3VA)).
		MovImm(regRK, int64(AESRKVA)).
		MovImm(regTmp, int64(AESInVA))
	for i := 0; i < 4; i++ {
		b.Load32(regS0+isa.Reg(i), regTmp, int64(4*i)).
			Load32(regTm2, regRK, int64(4*i)).
			Xor(regS0+isa.Reg(i), regS0+isa.Reg(i), regTm2)
	}

	// A stack spill between key setup and the cipher loop (as a real
	// caller's frame traffic would produce): the attack's pre-loop
	// replay handle.
	b.MovImm(regTmp, int64(AESStackVA))
	stackMark := b.Here()
	b.Load(regTm2, regTmp, 0)

	// Middle rounds. Fig. 8a source-byte pattern for column c:
	//   Td0 index from s[(c+0)%4] >> 24
	//   Td1 index from s[(c+3)%4] >> 16
	//   Td2 index from s[(c+2)%4] >> 8
	//   Td3 index from s[(c+1)%4] >> 0
	for r := 1; r < nr; r++ {
		for col := 0; col < 4; col++ {
			v.RKLoads[[2]int{r, col}] = b.Here()
			b.Load32(regT0+isa.Reg(col), regRK, int64(4*(4*r+col)))
			for tbl := 0; tbl < 4; tbl++ {
				src := regS0 + isa.Reg((col+4-tbl)%4)
				shift := int64(24 - 8*tbl)
				v.TdLoads[[3]int{r, col, tbl}] = b.Here() + 4
				emitTableLookup(b, src, shift, regTd0+isa.Reg(tbl))
				b.Xor(regT0+isa.Reg(col), regT0+isa.Reg(col), regTmp)
			}
		}
		// s <- t
		for i := 0; i < 4; i++ {
			b.Mov(regS0+isa.Reg(i), regT0+isa.Reg(i))
		}
	}

	// Final round: Td4 (inverse S-box) lookups, reassembled bytewise.
	b.MovImm(regTd0, int64(AESTd4VA))
	for col := 0; col < 4; col++ {
		v.RKLoads[[2]int{nr, col}] = b.Here()
		b.Load32(regT0+isa.Reg(col), regRK, int64(4*(4*nr+col)))
		v.TdLoads[[3]int{nr, col, 4}] = b.Here() + 4
		for byteIdx := 0; byteIdx < 4; byteIdx++ {
			src := regS0 + isa.Reg((col+4-byteIdx)%4)
			shift := int64(24 - 8*byteIdx)
			emitTableLookup(b, src, shift, regTd0)
			if s := int64(24 - 8*byteIdx); s > 0 {
				b.ShlImm(regTmp, regTmp, s)
			}
			b.Xor(regT0+isa.Reg(col), regT0+isa.Reg(col), regTmp)
		}
	}

	// Epilogue: store the plaintext words and halt.
	b.MovImm(regRK, int64(AESOutVA))
	for i := 0; i < 4; i++ {
		b.Store32(regT0+isa.Reg(i), regRK, int64(4*i))
	}
	b.Halt()

	// Data image.
	inImage, err := AESInImage(ciphertext)
	if err != nil {
		return nil, err
	}
	table := func(i int) []uint32 {
		t := taes.Td(i)
		return t[:]
	}
	td4 := taes.Td4()

	v.Layout = &Layout{
		Name:          "aes",
		Prog:          b.MustBuild(),
		Marks:         map[string]int{"stack": stackMark},
		SecretRegions: []string{"rk"},
		Symbols: map[string]mem.Addr{
			"in": AESInVA, "rk": AESRKVA, "out": AESOutVA, "stack": AESStackVA,
			"td0": AESTd0VA, "td1": AESTd1VA, "td2": AESTd2VA,
			"td3": AESTd3VA, "td4": AESTd4VA,
		},
		Regions: []Region{
			{Name: "in", VA: AESInVA, Size: mem.PageSize, Flags: rw, Init: inImage},
			{Name: "rk", VA: AESRKVA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(c.DecKey())},
			{Name: "td0", VA: AESTd0VA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(table(0))},
			{Name: "td1", VA: AESTd1VA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(table(1))},
			{Name: "td2", VA: AESTd2VA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(table(2))},
			{Name: "td3", VA: AESTd3VA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(table(3))},
			{Name: "td4", VA: AESTd4VA, Size: mem.PageSize, Flags: rw, Init: u32Bytes(td4[:])},
			{Name: "out", VA: AESOutVA, Size: mem.PageSize, Flags: rw},
			{Name: "stack", VA: AESStackVA, Size: mem.PageSize, Flags: rw},
		},
	}
	return v, nil
}

// AESInImage renders a ciphertext block as the in-region memory image —
// the exact encoding NewAESVictim installs at AESInVA (four big-endian
// words, stored little-endian). Checkpointed sweeps use it to swap the
// trial ciphertext into a restored rig without rebuilding the victim.
func AESInImage(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != taes.BlockSize {
		return nil, fmt.Errorf("victim: ciphertext must be one block, got %d bytes", len(ciphertext))
	}
	words := make([]uint32, 4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(ciphertext[4*i:])
	}
	return u32Bytes(words), nil
}

// emitTableLookup emits the index-extraction and table-load sequence:
//
//	tmp = (src >> shift) & 0xff
//	tmp = mem32[base + tmp*4]       <- the Td load (Here()+4 from start)
func emitTableLookup(b *isa.Builder, src isa.Reg, shift int64, base isa.Reg) {
	if shift > 0 {
		b.ShrImm(regTmp, src, shift)
	} else {
		b.Mov(regTmp, src)
	}
	b.AndImm(regTmp, regTmp, 0xff).
		ShlImm(regTmp, regTmp, 2).
		Add(regTmp, regTmp, base).
		Load32(regTmp, regTmp, 0)
}

// TdVA returns the virtual address of entry idx of table t (0..4).
func (v *AESVictim) TdVA(table, idx int) mem.Addr {
	bases := []mem.Addr{AESTd0VA, AESTd1VA, AESTd2VA, AESTd3VA, AESTd4VA}
	return bases[table] + mem.Addr(idx)*4
}

// TdLineVA returns the virtual address of cache line `line` of table t.
func (v *AESVictim) TdLineVA(table, line int) mem.Addr {
	return v.TdVA(table, line*taes.LinesPerTable)
}

// Plaintext reads the decrypted block from the victim's output page after
// the program has run.
func (v *AESVictim) Plaintext(read func(mem.Addr) (uint64, error)) ([]byte, error) {
	out := make([]byte, taes.BlockSize)
	for i := 0; i < 4; i++ {
		w, err := read(AESOutVA + mem.Addr(4*i))
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(out[4*i:], uint32(w))
	}
	return out, nil
}
