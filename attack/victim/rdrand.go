package victim

import (
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// RDRAND bias victim virtual addresses (distinct pages, as usual).
const (
	RdrandHandleVA mem.Addr = 0x005C_0000
	RdrandArrayVA  mem.Addr = 0x005D_0000
	RdrandOutVA    mem.Addr = 0x005E_0000
)

// RdrandBias builds the §7.2 integrity-bias victim: a replay handle
// followed by an RDRAND draw whose low bit is transmitted over one of
// two cache lines before the victim consumes the value. Replaying the
// handle re-executes the draw, so an attacker observing the transmit
// line can discard draws until one has the bit it wants — biasing a
// "true" random number generator. This is the same program the dynamic
// attack in attack/replay mounts, packaged as a Layout so the static
// scanner and the CLI can triage it.
//
// Symbols: handle, array, out. Marks: handle, rdrand, transmit.
func RdrandBias() *Layout {
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(RdrandHandleVA)).
		MovImm(isa.R2, int64(RdrandArrayVA)).
		MovImm(isa.R7, int64(RdrandOutVA))

	marks := map[string]int{}
	marks["handle"] = b.Here()
	b.Load(isa.R3, isa.R1, 0) // REPLAY HANDLE
	marks["rdrand"] = b.Here()
	b.Rdrand(isa.R4).
		AndImm(isa.R5, isa.R4, 1).
		ShlImm(isa.R5, isa.R5, 6). // bit -> cache line
		Add(isa.R5, isa.R5, isa.R2)
	marks["transmit"] = b.Here()
	b.Load(isa.R6, isa.R5, 0). // transmit: touches line 0 or 1
					Store(isa.R4, isa.R7, 0). // victim consumes the random value
					Halt()

	return &Layout{
		Name:  "rdrand-bias",
		Prog:  b.MustBuild(),
		Marks: marks,
		Symbols: map[string]mem.Addr{
			"handle": RdrandHandleVA,
			"array":  RdrandArrayVA,
			"out":    RdrandOutVA,
		},
		Regions: []Region{
			{Name: "handle", VA: RdrandHandleVA, Size: mem.PageSize, Flags: rw},
			{Name: "array", VA: RdrandArrayVA, Size: mem.PageSize, Flags: rw},
			{Name: "out", VA: RdrandOutVA, Size: mem.PageSize, Flags: rw},
		},
	}
}
