package victim

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"microscope/crypto/taes"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

type rig struct {
	k    *kernel.Kernel
	core *cpu.Core
	proc *kernel.Process
}

func newRig(t *testing.T) *rig {
	t.Helper()
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	proc, err := k.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, proc)
	return &rig{k: k, core: core, proc: proc}
}

func (r *rig) runLayout(t *testing.T, l *Layout, maxCycles uint64) {
	t.Helper()
	if err := l.Install(r.k, r.proc); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(maxCycles)
	if !r.core.Context(0).Halted() {
		t.Fatalf("victim %s did not halt", l.Name)
	}
}

func TestControlFlowSecretRuns(t *testing.T) {
	for _, secret := range []bool{false, true} {
		r := newRig(t)
		l := ControlFlowSecret(secret)
		if l.Mark("handle") >= l.Mark("branch") {
			t.Error("handle mark not before branch")
		}
		r.runLayout(t, l, 1_000_000)
		// The victim stores the secret value at out as a progress marker.
		v, err := r.proc.AddressSpace().Read64Virt(l.Sym("out"))
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if secret {
			want = 1
		}
		if v != want {
			t.Errorf("out = %d, want %d", v, want)
		}
		// Div side must have occupied the divider; mul side must not.
		busy := r.core.Ports().DivBusyCycles
		if secret && busy == 0 {
			t.Error("secret=true: divider never used")
		}
		if !secret && busy != 0 {
			t.Errorf("secret=false: divider used for %d cycles", busy)
		}
	}
}

func TestSingleSecretComputesQuotient(t *testing.T) {
	r := newRig(t)
	l := SingleSecret(37, false)
	r.runLayout(t, l, 1_000_000)
	// secrets[37] = 39.0, key = 1.5 -> 26.0
	bits, err := r.proc.AddressSpace().Read64Virt(l.Sym("out"))
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(bits); got != 26.0 {
		t.Errorf("quotient = %v, want 26.0", got)
	}
	// count++ must have committed.
	count, err := r.proc.AddressSpace().Read64Virt(l.Sym("count"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("count = %d, want 8", count)
	}
}

// TestSingleSecretSubnormalSlower checks the transmit divide's latency
// leaks the subnormality of secrets[id] — while whole-program runtime
// hides it (both runs take identical total cycles, the [7]-style
// observation being exactly what makes the channel need denoising).
func TestSingleSecretSubnormalSlower(t *testing.T) {
	fdivLat := func(subnormal bool) (lat, total uint64) {
		r := newRig(t)
		l := SingleSecret(5, subnormal)
		if err := l.Install(r.k, r.proc); err != nil {
			t.Fatal(err)
		}
		l.Start(r.k, 0)
		var issue, complete uint64
		r.core.SetTracer(cpu.TracerFunc(func(ev cpu.Event) {
			if ev.Instr.Op == isa.OpFDiv {
				switch ev.Kind {
				case cpu.EvIssue:
					issue = ev.Cycle
				case cpu.EvComplete:
					complete = ev.Cycle
				}
			}
		}))
		r.core.Run(1_000_000)
		if !r.core.Context(0).Halted() {
			t.Fatal("did not halt")
		}
		return complete - issue, r.core.Cycle()
	}
	normal, totalN := fdivLat(false)
	sub, totalS := fdivLat(true)
	if sub <= normal {
		t.Errorf("subnormal fdiv latency %d <= normal %d", sub, normal)
	}
	if totalN != totalS {
		t.Logf("note: whole-program timing differs (%d vs %d); channel is coarser than expected",
			totalN, totalS)
	}
}

func TestLoopSecretTouchesProbeLines(t *testing.T) {
	r := newRig(t)
	secrets := []byte{3, 17, 9, 60}
	l := LoopSecret(secrets)
	r.runLayout(t, l, 5_000_000)
	// Every secret's probe line must be cached; untouched lines that
	// never collided should not be L1-resident. (Check presence only for
	// the touched set to avoid false negatives from set collisions.)
	for _, s := range secrets {
		line := uint64(s) % 64
		va := l.Sym("probe") + mem.Addr(line)*64
		pa, err := r.proc.AddressSpace().Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		if !r.core.Hierarchy().L1D().Lookup(pa) {
			t.Errorf("probe line %d not cached after run", line)
		}
	}
}

func TestAESVictimDecryptsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		c, err := taes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)

		r := newRig(t)
		v, err := NewAESVictim(key, ct)
		if err != nil {
			t.Fatal(err)
		}
		r.runLayout(t, v.Layout, 10_000_000)

		got, err := v.Plaintext(func(va mem.Addr) (uint64, error) {
			return r.proc.AddressSpace().Read64Virt(va)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("keyLen %d: simulated decryption = %x, want %x", keyLen, got, pt)
		}
	}
}

func TestAESVictimMarksPointAtLoads(t *testing.T) {
	key := make([]byte, 16)
	ct := make([]byte, 16)
	v, err := NewAESVictim(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	nr := v.Cipher.Rounds()
	if len(v.RKLoads) != nr*4 {
		t.Errorf("RKLoads has %d entries, want %d", len(v.RKLoads), nr*4)
	}
	for rc, idx := range v.RKLoads {
		in := v.Prog.At(idx)
		if !in.Op.IsLoad() {
			t.Errorf("RKLoads[%v] = instr %d (%s), not a load", rc, idx, in)
		}
	}
	for key3, idx := range v.TdLoads {
		in := v.Prog.At(idx)
		if !in.Op.IsLoad() {
			t.Errorf("TdLoads[%v] = instr %d (%s), not a load", key3, idx, in)
		}
	}
	// Middle rounds have 4 tables × 4 columns; final round 1 mark/column.
	want := (nr-1)*16 + 4
	if len(v.TdLoads) != want {
		t.Errorf("TdLoads has %d entries, want %d", len(v.TdLoads), want)
	}
}

// TestAESVictimCacheFootprintMatchesTrace: after a run, the Td lines the
// reference trace says were accessed must be cached; this ties the
// simulated victim to the ground truth the attack is verified against.
func TestAESVictimCacheFootprintMatchesTrace(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("attack at dawn!!")
	c, _ := taes.NewCipher(key)
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)

	r := newRig(t)
	v, err := NewAESVictim(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	r.runLayout(t, v.Layout, 10_000_000)

	out := make([]byte, 16)
	trace := c.DecryptTrace(out, ct)
	lines := taes.AccessedLines(trace)
	for tbl := 0; tbl < 4; tbl++ {
		for line := 0; line < taes.LinesPerTable; line++ {
			if lines[tbl]&(1<<uint(line)) == 0 {
				continue
			}
			va := v.TdLineVA(tbl, line)
			pa, err := r.proc.AddressSpace().Translate(va)
			if err != nil {
				t.Fatal(err)
			}
			if _, lvl := r.core.Hierarchy().Probe(pa); lvl == 4 {
				t.Errorf("Td%d line %d accessed per trace but not cached", tbl, line)
			}
		}
	}
}

func TestLayoutSymAndMarkPanics(t *testing.T) {
	l := ControlFlowSecret(false)
	defer func() {
		if recover() == nil {
			t.Error("unknown symbol did not panic")
		}
	}()
	l.Sym("nope")
}
