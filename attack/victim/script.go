package victim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Victim scripts: a textual format for defining custom victims, used by
// cmd/asmlab for attack exploration. A script is ISA assembly (see
// sim/isa.Assemble) plus `;;` directives that declare the memory image:
//
//	;; region <name> <addr> <ro|rw> [pages]   data region (default 1 page)
//	;; init <name>+<off> <value>              64-bit word initializer
//	;; symbol <name> <region>[+<off>]         named address for recipes
//	;; entry <label>                          start label (default: first instr)
//
// Directive lines are comments to the assembler, so the same text
// assembles cleanly.

// ParseScript builds a Layout from a victim script.
func ParseScript(name, src string) (*Layout, error) {
	l := &Layout{
		Name:    name,
		Symbols: map[string]mem.Addr{},
		Marks:   map[string]int{},
	}
	regions := map[string]*Region{}
	entryLabel := ""

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, ";;") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, ";;"))
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("victim: script line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "region":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fail("region wants <name> <addr> <ro|rw> [pages]")
			}
			addr, err := parseAddr(fields[2])
			if err != nil {
				return nil, fail("bad address %q", fields[2])
			}
			if addr%mem.PageSize != 0 {
				return nil, fail("region %s not page aligned", fields[1])
			}
			flags := uint64(mem.FlagUser)
			switch fields[3] {
			case "ro":
			case "rw":
				flags |= mem.FlagWritable
			default:
				return nil, fail("bad permissions %q", fields[3])
			}
			pages := uint64(1)
			if len(fields) == 5 {
				n, err := strconv.ParseUint(fields[4], 0, 32)
				if err != nil || n == 0 {
					return nil, fail("bad page count %q", fields[4])
				}
				pages = n
			}
			if _, dup := regions[fields[1]]; dup {
				return nil, fail("duplicate region %q", fields[1])
			}
			r := &Region{
				Name:  fields[1],
				VA:    addr,
				Size:  pages * mem.PageSize,
				Flags: flags,
			}
			regions[fields[1]] = r
			l.Symbols[fields[1]] = addr
		case "init":
			if len(fields) != 3 {
				return nil, fail("init wants <name>+<off> <value>")
			}
			regName, off, err := splitRef(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			r, ok := regions[regName]
			if !ok {
				return nil, fail("init before region %q", regName)
			}
			if off+8 > r.Size {
				return nil, fail("init offset %d outside region %q", off, regName)
			}
			val, err := parseAddr(fields[2])
			if err != nil {
				return nil, fail("bad init value %q", fields[2])
			}
			if uint64(len(r.Init)) < off+8 {
				grown := make([]byte, off+8)
				copy(grown, r.Init)
				r.Init = grown
			}
			for i := 0; i < 8; i++ {
				r.Init[off+uint64(i)] = byte(val >> (8 * i))
			}
		case "symbol":
			if len(fields) != 3 {
				return nil, fail("symbol wants <name> <region>[+<off>]")
			}
			regName, off, err := splitRef(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			r, ok := regions[regName]
			if !ok {
				return nil, fail("symbol before region %q", regName)
			}
			l.Symbols[fields[1]] = r.VA + off
		case "entry":
			if len(fields) != 2 {
				return nil, fail("entry wants <label>")
			}
			entryLabel = fields[1]
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}

	prog, err := isa.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("victim: script %s: %w", name, err)
	}
	if prog.Len() == 0 {
		return nil, fmt.Errorf("victim: script %s has no instructions", name)
	}
	l.Prog = prog
	if entryLabel != "" {
		idx, ok := prog.LabelOf(entryLabel)
		if !ok {
			return nil, fmt.Errorf("victim: script %s: entry label %q undefined", name, entryLabel)
		}
		l.Entry = idx
	}
	for _, r := range regions {
		l.Regions = append(l.Regions, *r)
	}
	// Deterministic region order (map iteration is random).
	sort.Slice(l.Regions, func(i, j int) bool { return l.Regions[i].VA < l.Regions[j].VA })
	return l, nil
}

func parseAddr(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}

// splitRef parses "name" or "name+off".
func splitRef(s string) (string, uint64, error) {
	name, offStr, found := strings.Cut(s, "+")
	if !found {
		return name, 0, nil
	}
	off, err := strconv.ParseUint(offStr, 0, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad offset in %q", s)
	}
	return name, off, nil
}
