// Package victim provides the victim programs the paper attacks, each
// packaged as a Layout: an ISA program plus the data regions and named
// symbols (replay handles, pivots, secret locations) an attack recipe
// needs.
//
// Victims provided:
//   - SingleSecret (Fig. 5): getSecret's count++ replay handle and a
//     floating-point divide whose subnormal operand is the secret.
//   - ControlFlowSecret (Fig. 6): a secret-dependent branch whose sides
//     execute two multiplies or two divides — the port-contention target.
//   - LoopSecret (Fig. 4b): per-iteration secrets with a pivot.
//   - AES (Fig. 8a): T-table AES decryption with Td0–Td3 and rk on
//     distinct pages.
package victim

import (
	"fmt"

	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// Region is one data area of a victim.
type Region struct {
	Name  string
	VA    mem.Addr
	Size  uint64
	Flags uint64
	Init  []byte
}

// Layout bundles a victim program with its memory image and symbols.
type Layout struct {
	Name    string
	Prog    *isa.Program
	Entry   int
	Regions []Region
	// Symbols names data addresses (replay handle, pivot, tables, ...).
	Symbols map[string]mem.Addr
	// Marks names instruction indices (transmit instruction, ...).
	Marks map[string]int
	// SecretRegions names the Regions that hold enclave secrets, and
	// SecretRegs the registers that hold secrets at entry (e.g. an
	// exponent materialized as an immediate). Together they are the
	// taint-source declaration the static scanner (analysis/static,
	// cmd/mscan) consumes.
	SecretRegions []string
	SecretRegs    []isa.Reg
}

// SecretMems returns the [lo, hi) virtual address ranges of the regions
// named in SecretRegions, panicking on names that match no region (like
// Sym, a miss is a programming error in the victim definition).
func (l *Layout) SecretMems() [][2]uint64 {
	var out [][2]uint64
	for _, name := range l.SecretRegions {
		found := false
		for _, r := range l.Regions {
			if r.Name == name {
				out = append(out, [2]uint64{uint64(r.VA), uint64(r.VA) + r.Size})
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("victim %s: secret region %q not in layout", l.Name, name))
		}
	}
	return out
}

// Sym returns a named data address, panicking on unknown names (symbols
// are fixed at victim-construction time; a miss is a programming error).
func (l *Layout) Sym(name string) mem.Addr {
	a, ok := l.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("victim %s: unknown symbol %q", l.Name, name))
	}
	return a
}

// Mark returns a named instruction index.
func (l *Layout) Mark(name string) int {
	i, ok := l.Marks[name]
	if !ok {
		panic(fmt.Sprintf("victim %s: unknown mark %q", l.Name, name))
	}
	return i
}

// Install registers the layout's regions as VMAs of proc, maps them
// eagerly, and writes the initial data.
func (l *Layout) Install(k *kernel.Kernel, proc *kernel.Process) error {
	for _, r := range l.Regions {
		v := k.AddVMA(proc, r.VA, r.VA+r.Size, r.Flags, l.Name+"/"+r.Name)
		if err := k.MapEager(proc, v); err != nil {
			return err
		}
		if len(r.Init) > 0 {
			if err := proc.AddressSpace().WriteVirt(r.VA, r.Init); err != nil {
				return err
			}
		}
	}
	return nil
}

// Start loads the program into context ctxID of the kernel's core. The
// process must already be scheduled there.
func (l *Layout) Start(k *kernel.Kernel, ctxID int) {
	k.Core().Context(ctxID).SetProgram(l.Prog, l.Entry)
}

// u32Bytes renders words as little-endian bytes for region initialization.
func u32Bytes(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

// u64Bytes renders words as little-endian bytes.
func u64Bytes(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(w >> (8 * b))
		}
	}
	return out
}
