// Package monitor implements the Monitor actor of the attack (§4.1.3):
// a process that runs on the victim core's sibling SMT context, creates
// contention on shared functional units, and measures the resulting
// latencies — the Fig. 7 port-contention monitor used by the paper's main
// result (Fig. 10).
package monitor

import (
	"fmt"
	"math"

	"microscope/attack/victim"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// Monitor virtual addresses.
const (
	bufferVA mem.Addr = 0x0070_0000 // sample buffer
	signalVA mem.Addr = 0x007F_0000 // shared-memory start/stop word
)

// BufferVA returns the monitor's sample-buffer base address.
func BufferVA() mem.Addr { return bufferVA }

// SignalVA returns the monitor's signal-word address.
func SignalVA() mem.Addr { return signalVA }

// PortContention builds the Fig. 7a monitor: `samples` iterations, each
// timing `cont` floating-point divisions with RDTSC and storing the
// latency into a buffer. The divisions contend with the victim's divider
// use on the sibling SMT context.
//
// Symbols: buffer, signal.
func PortContention(samples, cont int) *victim.Layout {
	if samples <= 0 || cont <= 0 {
		panic(fmt.Sprintf("monitor: bad parameters samples=%d cont=%d", samples, cont))
	}
	b := isa.NewBuilder().
		MovImm(isa.R1, int64(bufferVA)).
		MovImm(isa.R2, int64(samples)).
		MovImm(isa.R3, 0).
		FLoadImm(isa.F0, int64(math.Float64bits(3.0))).
		FLoadImm(isa.F1, int64(math.Float64bits(1.5))).
		Label("loop").
		Rdtsc(isa.R4)
	for i := 0; i < cont; i++ {
		// Independent divisions: the non-pipelined divider serializes
		// them, and victim divisions inject extra delay.
		b.FDiv(isa.F2, isa.F0, isa.F1)
	}
	// A dependent move keeps the closing RDTSC honest even at width >
	// divider count (RDTSC itself only issues at the ROB head).
	b.FMov(isa.F3, isa.F2).
		Rdtsc(isa.R5).
		Sub(isa.R6, isa.R5, isa.R4).
		Store(isa.R6, isa.R1, 0).
		AddImm(isa.R1, isa.R1, 8).
		AddImm(isa.R3, isa.R3, 1).
		Blt(isa.R3, isa.R2, "loop").
		Halt()

	bufPages := uint64(samples*8+mem.PageSize-1) / mem.PageSize * mem.PageSize
	return &victim.Layout{
		Name: "portmonitor",
		Prog: b.MustBuild(),
		Symbols: map[string]mem.Addr{
			"buffer": bufferVA,
			"signal": signalVA,
		},
		Regions: []victim.Region{
			{Name: "buffer", VA: bufferVA, Size: bufPages,
				Flags: mem.FlagUser | mem.FlagWritable},
			{Name: "signal", VA: signalVA, Size: mem.PageSize,
				Flags: mem.FlagUser | mem.FlagWritable},
		},
	}
}

// ReadSamples extracts the recorded latencies after the monitor ran.
func ReadSamples(proc *kernel.Process, n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := proc.AddressSpace().Read64Virt(bufferVA + mem.Addr(i)*8)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Gated builds a monitor that first spins until the shared signal word
// becomes non-zero (the module's start signal, §5.2.2 operation 4), then
// takes samples as PortContention does.
func Gated(samples, cont int) *victim.Layout {
	base := PortContention(samples, cont)
	b := isa.NewBuilder().
		MovImm(isa.R7, int64(signalVA)).
		Label("wait").
		Load(isa.R8, isa.R7, 0).
		Beq(isa.R8, isa.R0, "wait")
	// Splice the sampling program after the gate.
	offset := b.Here()
	for _, in := range base.Prog.Instrs {
		if in.Op.IsBranch() || in.Op == isa.OpTxBegin {
			in.Target += offset
		}
		b.Emit(in)
	}
	gated := &victim.Layout{
		Name:    "gatedmonitor",
		Prog:    b.MustBuild(),
		Symbols: base.Symbols,
		Regions: base.Regions,
	}
	return gated
}
