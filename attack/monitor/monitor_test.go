package monitor

import (
	"testing"

	"microscope/analysis/stats"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

type rig struct {
	k    *kernel.Kernel
	core *cpu.Core
	proc *kernel.Process
}

func newRig(t *testing.T) *rig {
	t.Helper()
	phys := mem.NewPhysMem(32 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	proc, err := k.NewProcess("monitor")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, proc)
	return &rig{k: k, core: core, proc: proc}
}

func TestPortContentionCollectsSamples(t *testing.T) {
	r := newRig(t)
	const n = 200
	l := PortContention(n, 2)
	if err := l.Install(r.k, r.proc); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(10_000_000)
	if !r.core.Context(0).Halted() {
		t.Fatal("monitor did not halt")
	}
	samples, err := ReadSamples(r.proc, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != n {
		t.Fatalf("got %d samples", len(samples))
	}
	// With no co-resident victim the distribution must be tight: ≥80% of
	// samples within ±10 cycles of the median (the uncontended baseline
	// the Fig. 10 threshold is calibrated from).
	med := uint64(stats.QuantileU64(samples, 0.5))
	clustered := 0
	for _, s := range samples {
		if s+10 >= med && s <= med+10 {
			clustered++
		}
	}
	if clustered < n*8/10 {
		t.Errorf("only %d/%d samples within ±10 of median %d", clustered, n, med)
	}
	// And the baseline must be at least one divide long.
	if med < uint64(r.core.Config().FDivLat) {
		t.Errorf("median %d below a single divide latency", med)
	}
}

func TestPortContentionSampleScalesWithCont(t *testing.T) {
	median := func(cont int) uint64 {
		r := newRig(t)
		l := PortContention(100, cont)
		if err := l.Install(r.k, r.proc); err != nil {
			t.Fatal(err)
		}
		l.Start(r.k, 0)
		r.core.Run(10_000_000)
		samples, err := ReadSamples(r.proc, 100)
		if err != nil {
			t.Fatal(err)
		}
		// crude median
		best := samples[50]
		return best
	}
	m1, m4 := median(1), median(4)
	if m4 < m1+2*uint64(cpu.DefaultConfig().FDivLat) {
		t.Errorf("cont=4 median %d not ~3 divides above cont=1 median %d", m4, m1)
	}
}

func TestPortContentionRejectsBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad parameters accepted")
		}
	}()
	PortContention(0, 1)
}

func TestBufferSpansEnoughPages(t *testing.T) {
	l := PortContention(5000, 1) // 40 KB of samples
	var bufRegion *struct{ size uint64 }
	for _, reg := range l.Regions {
		if reg.Name == "buffer" {
			bufRegion = &struct{ size uint64 }{reg.Size}
		}
	}
	if bufRegion == nil {
		t.Fatal("no buffer region")
	}
	if bufRegion.size < 5000*8 {
		t.Errorf("buffer region %d bytes, want >= %d", bufRegion.size, 5000*8)
	}
	if bufRegion.size%mem.PageSize != 0 {
		t.Errorf("buffer region %d not page aligned", bufRegion.size)
	}
}

func TestGatedMonitorWaitsForSignal(t *testing.T) {
	r := newRig(t)
	const n = 50
	l := Gated(n, 1)
	if err := l.Install(r.k, r.proc); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	// Without the signal, the monitor spins.
	r.core.Run(50_000)
	if r.core.Context(0).Halted() {
		t.Fatal("gated monitor ran without the start signal")
	}
	// Raise the signal; the monitor completes.
	if err := r.proc.AddressSpace().Write64Virt(SignalVA(), 1); err != nil {
		t.Fatal(err)
	}
	r.core.Run(10_000_000)
	if !r.core.Context(0).Halted() {
		t.Fatal("gated monitor did not finish after the signal")
	}
	samples, err := ReadSamples(r.proc, n)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, s := range samples {
		if s != 0 {
			nonzero++
		}
	}
	if nonzero < n*8/10 {
		t.Errorf("only %d/%d samples recorded", nonzero, n)
	}
}

func TestGatedPreservesBranchTargets(t *testing.T) {
	// The splice must relocate every branch target; validate the program.
	l := Gated(10, 2)
	if err := l.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// The spliced loop must branch within the spliced region, not into
	// the gate.
	for i, in := range l.Prog.Instrs {
		if in.Op.IsBranch() && in.Label == "loop" && in.Target < 4 {
			t.Errorf("instr %d: spliced branch targets the gate (%d)", i, in.Target)
		}
	}
	_ = isa.OpNop
}

func TestBufferAndSignalVAs(t *testing.T) {
	if BufferVA() == SignalVA() {
		t.Error("buffer and signal share an address")
	}
	if mem.PageNum(BufferVA()) == mem.PageNum(SignalVA()) {
		t.Error("buffer and signal share a page")
	}
}
