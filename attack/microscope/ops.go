package microscope

import (
	"fmt"

	"microscope/sim/cache"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// This file implements the attack operations of the paper's §5.2.2:
// software page walks, page-structure flushing, TLB invalidation, monitor
// signalling through shared memory, and cache priming/probing.

// SoftWalk locates the page-table entries required for the translation of
// va by walking the victim's page tables in software (operation 1 of
// §5.2.2). It tolerates a non-present leaf — the state an armed page is in.
func (m *Module) SoftWalk(proc *kernel.Process, va mem.Addr) ([]mem.WalkStep, error) {
	steps, err := proc.AddressSpace().Walk(va)
	if err != nil {
		var f *mem.Fault
		if asFault(err, &f) && f.Level == mem.PTE {
			return steps, nil // leaf exists but is non-present: fine
		}
		return nil, err
	}
	return steps, nil
}

func asFault(err error, target **mem.Fault) bool {
	f, ok := err.(*mem.Fault)
	if ok {
		*target = f
	}
	return ok
}

// FlushTranslationPath flushes the four page-table entries of va's
// translation from the cache hierarchy and the PWC (operation 2).
func (m *Module) FlushTranslationPath(proc *kernel.Process, va mem.Addr) error {
	steps, err := m.SoftWalk(proc, va)
	if err != nil {
		return err
	}
	for _, s := range steps {
		m.core.FlushPageStructures(s.EntryAddr)
	}
	return nil
}

// InvalidateTLB drops va's translation from every TLB level
// (operation 3).
func (m *Module) InvalidateTLB(proc *kernel.Process, va mem.Addr) {
	m.k.Invlpg(proc, va)
}

// TunePageWalk arranges the next hardware walk of va to fetch `levels`
// page-table levels from main memory and the rest from the L1 cache —
// the walk-duration tuning of §4.1.2. levels ranges from 1 (shortest
// fault-able walk: only the leaf PTE from memory) to 4 (every level from
// memory, >1000 cycles).
func (m *Module) TunePageWalk(proc *kernel.Process, va mem.Addr, levels int) error {
	if levels < 1 || levels > mem.Levels {
		return fmt.Errorf("microscope: walk levels %d out of range [1,%d]", levels, mem.Levels)
	}
	steps, err := m.SoftWalk(proc, va)
	if err != nil {
		return err
	}
	hier := m.core.Hierarchy()
	for i, s := range steps {
		if i < mem.Levels-levels {
			// Served fast: warm the entry's line into L1 and the PWC.
			hier.WarmTo(s.EntryAddr, cache.LevelL1)
			if s.Level < mem.PTE {
				m.core.PWC().Insert(s.EntryAddr, s.Level)
			}
		} else {
			// Served from memory: flush caches and PWC.
			m.core.FlushPageStructures(s.EntryAddr)
		}
	}
	m.k.Invlpg(proc, va)
	return nil
}

// FlushData flushes the cache line holding va's data (setup step 1 of
// §4.1.1: "flush from the caches the data to be accessed by the replay
// handle").
func (m *Module) FlushData(proc *kernel.Process, va mem.Addr) error {
	pa, err := m.physOf(proc, va)
	if err != nil {
		return err
	}
	m.core.Hierarchy().FlushAddr(pa)
	return nil
}

// physOf translates va with supervisor rights, tolerating a cleared
// present bit (the kernel can always compute the would-be translation).
func (m *Module) physOf(proc *kernel.Process, va mem.Addr) (mem.Addr, error) {
	e, _, err := proc.AddressSpace().LeafEntry(va)
	if err != nil {
		return 0, err
	}
	if e == 0 {
		return 0, fmt.Errorf("microscope: %#x not mapped", va)
	}
	return e.PPN()<<mem.PageShift | mem.PageOffset(va), nil
}

// ProbeResult is one cache probe measurement.
type ProbeResult struct {
	VA      mem.Addr
	Latency int
	Level   cache.Level
}

// PrimeAddrs evicts each address to main memory (prime step before a
// replay, §4.1.4 step 5 "re-prime the cache").
func (m *Module) PrimeAddrs(proc *kernel.Process, addrs []mem.Addr) error {
	for _, va := range addrs {
		pa, err := m.physOf(proc, va)
		if err != nil {
			return err
		}
		m.core.Hierarchy().FlushAddr(pa)
	}
	return nil
}

// ProbeAddrs measures the cache level serving each address without
// disturbing cache state — the Replayer-as-Monitor configuration of
// §4.1.3 used by the AES attack.
func (m *Module) ProbeAddrs(proc *kernel.Process, addrs []mem.Addr) ([]ProbeResult, error) {
	out := make([]ProbeResult, 0, len(addrs))
	for _, va := range addrs {
		pa, err := m.physOf(proc, va)
		if err != nil {
			return nil, err
		}
		lat, lvl := m.core.Hierarchy().Probe(pa)
		out = append(out, ProbeResult{VA: va, Latency: lat, Level: lvl})
	}
	return out, nil
}

// Monitor signalling (operation 4 of §5.2.2): the module communicates
// with a concurrently running Monitor process through a shared-memory
// word the monitor polls.

// SignalWord is the shared-memory location the module signals through.
type SignalWord struct {
	proc *kernel.Process
	va   mem.Addr
}

// Signal values.
const (
	SignalStop  uint64 = 0
	SignalStart uint64 = 1
)

// NewSignalWord sets up a signal word at va in the monitor's address
// space (the page must be mapped).
func (m *Module) NewSignalWord(proc *kernel.Process, va mem.Addr) (*SignalWord, error) {
	if _, err := m.physOf(proc, va); err != nil {
		return nil, err
	}
	return &SignalWord{proc: proc, va: va}, nil
}

// Set writes the signal value (module side).
func (m *Module) Set(s *SignalWord, v uint64) error {
	return s.proc.AddressSpace().Write64Virt(s.va, v)
}

// Get reads the signal value.
func (m *Module) Get(s *SignalWord) (uint64, error) {
	return s.proc.AddressSpace().Read64Virt(s.va)
}

// ---------------------------------------------------------------------
// Table 2: the user-facing exploration API. A user process configures a
// pending attack through these five calls and commits it with Activate.
// ---------------------------------------------------------------------

// UserAPI is the interface of Table 2, bound to one victim process.
type UserAPI struct {
	m       *Module
	victim  *kernel.Process
	pending *Recipe
}

// User returns the Table 2 API bound to a victim.
func (m *Module) User(victim *kernel.Process) *UserAPI {
	return &UserAPI{m: m, victim: victim, pending: &Recipe{
		Name:   "user",
		Victim: victim,
	}}
}

// ProvideReplayHandle provides a replay handle (Table 2, row 1).
func (u *UserAPI) ProvideReplayHandle(addr mem.Addr) { u.pending.Handle = addr }

// ProvidePivot provides a pivot (row 2).
func (u *UserAPI) ProvidePivot(addr mem.Addr) { u.pending.Pivot = addr }

// ProvideMonitorAddr adds an address to monitor (row 3).
func (u *UserAPI) ProvideMonitorAddr(addr mem.Addr) {
	u.pending.MonitorAddrs = append(u.pending.MonitorAddrs, addr)
}

// InitiatePageWalk forces addr's next access to walk `length` page-table
// levels from memory (row 4).
func (u *UserAPI) InitiatePageWalk(addr mem.Addr, length int) error {
	return u.m.TunePageWalk(u.victim, addr, length)
}

// InitiatePageFault forces addr's next access to page-fault (row 5): it
// configures the pending recipe's walk length and installs the recipe.
func (u *UserAPI) InitiatePageFault(addr mem.Addr) error {
	u.pending.Handle = addr
	return u.Activate()
}

// Activate installs the pending recipe.
func (u *UserAPI) Activate() error {
	if u.pending.Handle == 0 {
		return fmt.Errorf("microscope: no replay handle provided")
	}
	return u.m.Install(u.pending)
}

// Recipe returns the pending/installed recipe for inspection or callback
// configuration.
func (u *UserAPI) Recipe() *Recipe { return u.pending }
