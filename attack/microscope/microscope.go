// Package microscope implements the paper's primary contribution: a
// kernel-module framework for microarchitectural replay attacks
// (Section 5). A malicious OS registers the module into the kernel's
// page-fault path; attack recipes name a replay handle (a load whose page
// the module keeps non-present), optionally a pivot on a different page,
// addresses to monitor, and an attack callback that decides after each
// replay whether to keep replaying, advance via the pivot, or release the
// victim.
//
// The module also exposes the operations of the paper's §5.2.2 (software
// page walks, page-structure flushing, TLB invalidation, cache priming
// and probing, monitor signalling) and the user API of Table 2.
package microscope

import (
	"fmt"

	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
	"microscope/sim/snapshot"
)

// Decision is an attack callback's verdict after a fault on an armed page.
type Decision int

// Decisions.
const (
	// Replay keeps the present bit clear: the victim will fault on the
	// handle again (timeline 2 of Fig. 3).
	Replay Decision = iota
	// Pivot releases the faulting page and arms the other page of the
	// handle/pivot pair, single-stepping the victim forward (§4.2.2).
	Pivot
	// Release restores the present bit and stands down: the victim makes
	// forward progress (step 6 of §4.1.4).
	Release
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Replay:
		return "replay"
	case Pivot:
		return "pivot"
	case Release:
		return "release"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Event describes one fault on an armed page, passed to the recipe's
// callback.
type Event struct {
	Recipe *Recipe
	// OnPivot reports whether the fault hit the pivot page rather than
	// the replay handle.
	OnPivot bool
	// Replays counts handle faults since the handle was last armed.
	Replays int
	// TotalFaults counts all faults this recipe has intercepted.
	TotalFaults int
	// Cycle is the core cycle at fault delivery.
	Cycle uint64
}

// Recipe is one attack configuration (the Attack Recipes structure of
// §5.2.1).
type Recipe struct {
	Name   string
	Victim *kernel.Process

	// Handle is the replay handle address (its page is the unit of
	// arming).
	Handle mem.Addr
	// Pivot, when non-zero, is the pivot address on a different page.
	Pivot mem.Addr
	// MonitorAddrs are victim addresses the Replayer-as-Monitor primes
	// and probes (cache-based recipes).
	MonitorAddrs []mem.Addr
	// WalkLevels tunes page-walk duration: how many page-table levels of
	// the handle's translation are served from main memory on each walk
	// (1..4; 0 means 4 — the longest, >1000-cycle walk of §4.1.2).
	WalkLevels int
	// HandlerLatency is the time the victim spends in the fault handler
	// per replay (the module's own execution time).
	HandlerLatency uint64
	// MaxReplays releases the victim after this many handle replays when
	// OnReplay is nil (a simple confidence threshold, §5.2.1).
	MaxReplays int
	// OnReplay, when set, decides after every intercepted fault.
	OnReplay func(Event) Decision

	replays     int
	totalFaults int
	pivotArmed  bool
}

// Replays returns the handle-fault count since the last arming.
func (r *Recipe) Replays() int { return r.replays }

// TotalFaults returns all faults intercepted for this recipe.
func (r *Recipe) TotalFaults() int { return r.totalFaults }

// Module is the MicroScope kernel module.
type Module struct {
	k          *kernel.Kernel
	core       *cpu.Core //simlint:snapexempt host wiring: the module snapshots recipe state only; Restore re-arms hooks through the live k/core it already holds
	recipes    []*Recipe
	unregister func() //simlint:snapexempt host wiring: hook-removal closure, recreated when Restore re-registers the fault hook
	timeline   []TimelineEvent

	// Handler-decision record log (see snapshot.go).
	decisions     []snapshot.DecisionRecord
	decisionCount uint64
}

// NewModule loads the module into the kernel (registers the fault hook of
// Fig. 9 step 4).
func NewModule(k *kernel.Kernel) *Module {
	m := &Module{k: k, core: k.Core()}
	m.unregister = k.RegisterHook(m)
	return m
}

// Unload removes the module from the kernel's fault path.
func (m *Module) Unload() { m.unregister() }

// Kernel returns the kernel the module is loaded into.
func (m *Module) Kernel() *kernel.Kernel { return m.k }

// Install registers a recipe and performs the attack setup of §4.1.1:
// flush the handle's data from the caches, clear the present bit, flush
// the four page-table entries from the cache subsystem and PWC, and
// invalidate the TLB entry.
func (m *Module) Install(r *Recipe) error {
	if r.Victim == nil {
		return fmt.Errorf("microscope: recipe %q has no victim", r.Name)
	}
	if r.Pivot != 0 && mem.PageNum(r.Pivot) == mem.PageNum(r.Handle) {
		return fmt.Errorf("microscope: pivot %#x on same page as handle %#x", r.Pivot, r.Handle)
	}
	if r.WalkLevels < 0 || r.WalkLevels > mem.Levels {
		return fmt.Errorf("microscope: walk levels %d out of range", r.WalkLevels)
	}
	if r.WalkLevels == 0 {
		r.WalkLevels = mem.Levels
	}
	if r.HandlerLatency == 0 {
		r.HandlerLatency = 5000
	}
	m.recipes = append(m.recipes, r)
	r.replays, r.totalFaults, r.pivotArmed = 0, 0, false
	if err := m.armHandle(r); err != nil {
		return err
	}
	m.record(EvSetup, r, 0)
	return nil
}

// Remove deactivates a recipe, restoring the present bits it holds clear.
func (m *Module) Remove(r *Recipe) error {
	for i, x := range m.recipes {
		if x == r {
			m.recipes = append(m.recipes[:i], m.recipes[i+1:]...)
			if _, err := r.Victim.AddressSpace().SetPresent(r.Handle, true); err != nil {
				return err
			}
			if r.Pivot != 0 {
				if _, err := r.Victim.AddressSpace().SetPresent(r.Pivot, true); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return fmt.Errorf("microscope: recipe %q not installed", r.Name)
}

// armHandle performs the §4.1.1 setup for the handle page.
func (m *Module) armHandle(r *Recipe) error {
	if err := m.FlushData(r.Victim, r.Handle); err != nil {
		// The handle data may be on a not-yet-mapped page; ignore.
		_ = err
	}
	if _, err := r.Victim.AddressSpace().SetPresent(r.Handle, false); err != nil {
		return fmt.Errorf("microscope: arming handle: %w", err)
	}
	if err := m.TunePageWalk(r.Victim, r.Handle, r.WalkLevels); err != nil {
		return err
	}
	m.k.Invlpg(r.Victim, r.Handle)
	r.replays = 0
	r.pivotArmed = false
	return nil
}

// armPivot releases the handle and arms the pivot (§4.2.2).
func (m *Module) armPivot(r *Recipe) error {
	if r.Pivot == 0 {
		return fmt.Errorf("microscope: recipe %q has no pivot", r.Name)
	}
	if _, err := r.Victim.AddressSpace().SetPresent(r.Handle, true); err != nil {
		return err
	}
	if _, err := r.Victim.AddressSpace().SetPresent(r.Pivot, false); err != nil {
		return err
	}
	if err := m.TunePageWalk(r.Victim, r.Pivot, r.WalkLevels); err != nil {
		return err
	}
	m.k.Invlpg(r.Victim, r.Pivot)
	r.pivotArmed = true
	return nil
}

// HandleFault implements kernel.FaultHook: the module body of Fig. 9.
func (m *Module) HandleFault(proc *kernel.Process, f cpu.PageFault) (cpu.FaultOutcome, bool) {
	for _, r := range m.recipes {
		if r.Victim != proc {
			continue
		}
		switch {
		case mem.PageNum(f.VA) == mem.PageNum(r.Handle):
			return m.onHandleFault(r, f), true
		case r.pivotArmed && r.Pivot != 0 && mem.PageNum(f.VA) == mem.PageNum(r.Pivot):
			return m.onPivotFault(r, f), true
		}
	}
	return cpu.FaultOutcome{}, false
}

func (m *Module) onHandleFault(r *Recipe, f cpu.PageFault) cpu.FaultOutcome {
	r.replays++
	r.totalFaults++
	m.record(EvHandleFault, r, f.VA)
	d := Replay
	if r.OnReplay != nil {
		d = r.OnReplay(Event{
			Recipe:      r,
			Replays:     r.replays,
			TotalFaults: r.totalFaults,
			Cycle:       m.core.Cycle(),
		})
	} else if r.MaxReplays > 0 && r.replays >= r.MaxReplays {
		d = Release
	}
	m.logDecision(r, false, d)
	switch d {
	case Replay:
		// Keep present clear; re-flush the translation path so the next
		// walk is slow again (timeline 2 of Fig. 3).
		if err := m.TunePageWalk(r.Victim, r.Handle, r.WalkLevels); err != nil {
			panic(fmt.Sprintf("microscope: re-arm failed: %v", err))
		}
		m.record(EvReplay, r, f.VA)
	case Pivot:
		if err := m.armPivot(r); err != nil {
			panic(fmt.Sprintf("microscope: pivot arm failed: %v", err))
		}
		m.record(EvPivotArm, r, r.Pivot)
	case Release:
		if _, err := r.Victim.AddressSpace().SetPresent(r.Handle, true); err != nil {
			panic(fmt.Sprintf("microscope: release failed: %v", err))
		}
		m.record(EvRelease, r, f.VA)
	}
	return cpu.FaultOutcome{HandlerLatency: r.HandlerLatency}
}

func (m *Module) onPivotFault(r *Recipe, f cpu.PageFault) cpu.FaultOutcome {
	r.totalFaults++
	m.record(EvPivotFault, r, f.VA)
	d := Pivot
	if r.OnReplay != nil {
		d = r.OnReplay(Event{
			Recipe:      r,
			OnPivot:     true,
			Replays:     r.replays,
			TotalFaults: r.totalFaults,
			Cycle:       m.core.Cycle(),
		})
	}
	m.logDecision(r, true, d)
	switch d {
	case Replay:
		// Keep the pivot armed: replay the pivot's own window (used by
		// the AES attack to re-execute one round into a primed cache).
		if err := m.TunePageWalk(r.Victim, r.Pivot, r.WalkLevels); err != nil {
			panic(fmt.Sprintf("microscope: pivot re-arm failed: %v", err))
		}
		m.record(EvReplay, r, f.VA)
	case Pivot:
		// Swap roles back: pivot becomes present, handle re-armed. The
		// victim retires through the pivot and faults on the handle in
		// the next iteration (§4.2.2).
		if _, err := r.Victim.AddressSpace().SetPresent(r.Pivot, true); err != nil {
			panic(fmt.Sprintf("microscope: pivot release failed: %v", err))
		}
		if err := m.armHandle(r); err != nil {
			panic(fmt.Sprintf("microscope: handle re-arm failed: %v", err))
		}
		m.record(EvHandleArm, r, r.Handle)
	case Release:
		if _, err := r.Victim.AddressSpace().SetPresent(r.Pivot, true); err != nil {
			panic(fmt.Sprintf("microscope: pivot release failed: %v", err))
		}
		r.pivotArmed = false
		m.record(EvRelease, r, f.VA)
	}
	return cpu.FaultOutcome{HandlerLatency: r.HandlerLatency}
}
