package microscope

import (
	"testing"

	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
	"microscope/sim/tlb"
)

// tlbTranslation builds a TLB entry for tests.
func tlbTranslation(va mem.Addr, pcid uint16) tlb.Translation {
	return tlb.Translation{VPN: mem.PageNum(va), PPN: 1, PCID: pcid}
}

type rig struct {
	k    *kernel.Kernel
	core *cpu.Core
	m    *Module
	proc *kernel.Process
}

func newRig(t *testing.T, cfg cpu.Config) *rig {
	t.Helper()
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cfg, phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := NewModule(k)
	proc, err := k.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, proc)
	return &rig{k: k, core: core, m: m, proc: proc}
}

func (r *rig) install(t *testing.T, l *victim.Layout) {
	t.Helper()
	if err := l.Install(r.k, r.proc); err != nil {
		t.Fatal(err)
	}
}

// TestReplayCountAndRelease: the module keeps the victim replaying on the
// handle for MaxReplays faults of a single logical run, then releases it
// and the victim completes normally.
func TestReplayCountAndRelease(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.ControlFlowSecret(true)
	r.install(t, l)

	rec := &Recipe{
		Name:       "basic",
		Victim:     r.proc,
		Handle:     l.Sym("handle"),
		MaxReplays: 20,
	}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(10_000_000)
	if !r.core.Context(0).Halted() {
		t.Fatal("victim did not complete after release")
	}
	if rec.Replays() != 20 {
		t.Errorf("replays = %d, want 20", rec.Replays())
	}
	// Victim made forward progress exactly once.
	v, err := r.proc.AddressSpace().Read64Virt(l.Sym("out"))
	if err != nil || v != 1 {
		t.Errorf("victim result = %d, %v", v, err)
	}
	// The div side executed speculatively during every replay window:
	// ~2 divider occupancies per replay.
	minBusy := uint64(20) * 2 * uint64(r.core.Config().FDivLat)
	if got := r.core.Ports().DivBusyCycles; got < minBusy {
		t.Errorf("DivBusyCycles = %d, want >= %d", got, minBusy)
	}
}

// TestDenoiseControlFlowSecret runs the whole §4.3-style attack twice
// (secret=0, secret=1) and distinguishes the two via divider occupancy
// accumulated over replays — the denoising claim in miniature.
func TestDenoiseControlFlowSecret(t *testing.T) {
	run := func(secret bool) uint64 {
		r := newRig(t, cpu.DefaultConfig())
		l := victim.ControlFlowSecret(secret)
		r.install(t, l)
		rec := &Recipe{
			Name:       "denoise",
			Victim:     r.proc,
			Handle:     l.Sym("handle"),
			MaxReplays: 50,
		}
		if err := r.m.Install(rec); err != nil {
			t.Fatal(err)
		}
		l.Start(r.k, 0)
		r.core.Run(20_000_000)
		return r.core.Ports().DivBusyCycles
	}
	mulBusy := run(false)
	divBusy := run(true)
	if divBusy < 50*48 {
		t.Errorf("div-side divider busy = %d, want >= %d", divBusy, 50*48)
	}
	if mulBusy != 0 {
		t.Errorf("mul-side divider busy = %d, want 0", mulBusy)
	}
}

// TestWalkLevelTuning: more levels flushed -> longer page walks observed
// by the handle load (§4.1.2: a few cycles to over one thousand).
func TestWalkLevelTuning(t *testing.T) {
	walkOf := func(levels int) int {
		r := newRig(t, cpu.DefaultConfig())
		l := victim.ControlFlowSecret(false)
		r.install(t, l)
		var walk int
		rec := &Recipe{
			Name:       "walk",
			Victim:     r.proc,
			Handle:     l.Sym("handle"),
			WalkLevels: levels,
			MaxReplays: 1,
		}
		if err := r.m.Install(rec); err != nil {
			t.Fatal(err)
		}
		// Measure fault delivery time relative to victim start: the walk
		// duration dominates it.
		l.Start(r.k, 0)
		start := r.core.Cycle()
		r.core.RunUntil(func() bool { return rec.Replays() >= 1 }, 10_000_000)
		walk = int(r.core.Cycle() - start)
		return walk
	}
	short := walkOf(1)
	long := walkOf(4)
	if long <= short+300 {
		t.Errorf("walk tuning ineffective: levels=1 -> %d cycles, levels=4 -> %d", short, long)
	}
}

// TestLoopSecretPivotExtraction mounts the full Loop Secret attack of
// §4.2.2: alternate handle and pivot faults walk the victim loop one
// iteration at a time; cache probing between replays recovers every
// per-iteration secret of a single logical run, without noise.
func TestLoopSecretPivotExtraction(t *testing.T) {
	secrets := []byte{3, 17, 9, 60, 3, 42, 0, 25}
	want := make([]int, len(secrets))
	for i, s := range secrets {
		want[i] = int(s) % 64
	}

	cfg := cpu.DefaultConfig()
	// A small ROB bounds the speculative window to roughly one loop
	// iteration — the walk-duration tuning of §4.2.2 achieves the same
	// "one transmission per replay" effect on real hardware.
	cfg.ROBSize = 12
	r := newRig(t, cfg)
	l := victim.LoopSecret(secrets)
	r.install(t, l)

	probeBase := l.Sym("probe")
	probeLines := make([]mem.Addr, 64)
	for i := range probeLines {
		probeLines[i] = probeBase + mem.Addr(i)*64
	}

	var got []int
	rec := &Recipe{
		Name:   "loopsecret",
		Victim: r.proc,
		Handle: l.Sym("handle"),
		Pivot:  l.Sym("pivot"),
	}
	rec.OnReplay = func(ev Event) Decision {
		if ev.OnPivot {
			return Pivot // swap roles back; next iteration faults on handle
		}
		if ev.Replays == 1 {
			// First fault of this iteration: prime the probe array, then
			// replay once so the transmit re-executes into a clean cache.
			if err := r.m.PrimeAddrs(r.proc, probeLines); err != nil {
				t.Fatal(err)
			}
			return Replay
		}
		// Second fault: the window re-executed the transmit. Probe.
		res, err := r.m.ProbeAddrs(r.proc, probeLines)
		if err != nil {
			t.Fatal(err)
		}
		line := -1
		for i, pr := range res {
			if pr.Level != cache.LevelMem {
				if line != -1 {
					t.Fatalf("iteration %d: multiple probe lines hot (%d and %d)", len(got), line, i)
				}
				line = i
			}
		}
		if line == -1 {
			t.Fatalf("iteration %d: no probe line hot", len(got))
		}
		got = append(got, line)
		if len(got) == len(secrets) {
			return Release
		}
		return Pivot
	}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(50_000_000)
	if !r.core.Context(0).Halted() {
		t.Fatal("victim did not complete")
	}
	if len(got) != len(want) {
		t.Fatalf("extracted %d secrets, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("secret[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestUserAPITable2 exercises the five Table 2 operations end to end.
func TestUserAPITable2(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1, 2})
	r.install(t, l)

	u := r.m.User(r.proc)
	u.ProvideReplayHandle(l.Sym("handle"))
	u.ProvidePivot(l.Sym("pivot"))
	u.ProvideMonitorAddr(l.Sym("probe"))
	u.ProvideMonitorAddr(l.Sym("probe") + 64)
	if err := u.InitiatePageWalk(l.Sym("probe"), 2); err != nil {
		t.Fatal(err)
	}
	rec := u.Recipe()
	rec.MaxReplays = 3
	if err := u.Activate(); err != nil {
		t.Fatal(err)
	}
	if len(rec.MonitorAddrs) != 2 {
		t.Errorf("monitor addrs = %d", len(rec.MonitorAddrs))
	}
	l.Start(r.k, 0)
	r.core.Run(20_000_000)
	if rec.Replays() < 3 {
		t.Errorf("replays = %d, want >= 3", rec.Replays())
	}
	if !r.core.Context(0).Halted() {
		t.Error("victim did not finish")
	}
}

func TestUserAPIRequiresHandle(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	u := r.m.User(r.proc)
	if err := u.Activate(); err == nil {
		t.Error("Activate without handle succeeded")
	}
}

func TestInstallValidation(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1})
	r.install(t, l)
	if err := r.m.Install(&Recipe{Name: "novictim", Handle: l.Sym("handle")}); err == nil {
		t.Error("recipe without victim accepted")
	}
	if err := r.m.Install(&Recipe{
		Name: "samepage", Victim: r.proc,
		Handle: l.Sym("handle"), Pivot: l.Sym("handle") + 8,
	}); err == nil {
		t.Error("pivot on handle page accepted")
	}
	if err := r.m.Install(&Recipe{
		Name: "badwalk", Victim: r.proc,
		Handle: l.Sym("handle"), WalkLevels: 7,
	}); err == nil {
		t.Error("walk levels 7 accepted")
	}
}

func TestRemoveRestoresPresent(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1})
	r.install(t, l)
	rec := &Recipe{Name: "rm", Victim: r.proc, Handle: l.Sym("handle"), Pivot: l.Sym("pivot")}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.proc.AddressSpace().Translate(l.Sym("handle")); err == nil {
		t.Fatal("handle still translates after arming")
	}
	if err := r.m.Remove(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.proc.AddressSpace().Translate(l.Sym("handle")); err != nil {
		t.Errorf("handle does not translate after Remove: %v", err)
	}
	if err := r.m.Remove(rec); err == nil {
		t.Error("double Remove succeeded")
	}
}

func TestSoftWalkToleratesArmedLeaf(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1})
	r.install(t, l)
	if _, err := r.proc.AddressSpace().SetPresent(l.Sym("handle"), false); err != nil {
		t.Fatal(err)
	}
	steps, err := r.m.SoftWalk(r.proc, l.Sym("handle"))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != mem.Levels {
		t.Errorf("soft walk returned %d steps", len(steps))
	}
	if steps[mem.PTE].Entry.Present() {
		t.Error("leaf unexpectedly present")
	}
}

func TestSignalWord(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1})
	r.install(t, l)
	s, err := r.m.NewSignalWord(r.proc, l.Sym("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.Set(s, SignalStart); err != nil {
		t.Fatal(err)
	}
	v, err := r.m.Get(s)
	if err != nil || v != SignalStart {
		t.Errorf("signal = %d, %v", v, err)
	}
	if _, err := r.m.NewSignalWord(r.proc, 0xdead_0000); err == nil {
		t.Error("signal word on unmapped page accepted")
	}
}

func TestTimelineRecordsFig3Sequence(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.ControlFlowSecret(false)
	r.install(t, l)
	rec := &Recipe{Name: "tl", Victim: r.proc, Handle: l.Sym("handle"), MaxReplays: 3}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(10_000_000)
	evs := r.m.Timeline()
	var kinds []TimelineKind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	// setup, fault+replay ×2, fault+release.
	want := []TimelineKind{EvSetup, EvHandleFault, EvReplay, EvHandleFault, EvReplay, EvHandleFault, EvRelease}
	if len(kinds) != len(want) {
		t.Fatalf("timeline = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("timeline[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
	if FormatTimeline(evs) == "" {
		t.Error("empty formatted timeline")
	}
	r.m.ClearTimeline()
	if len(r.m.Timeline()) != 0 {
		t.Error("ClearTimeline did not clear")
	}
}

// TestUnloadStopsInterception: after Unload, faults take the default
// kernel path (present restored by the kernel, one minor fault).
func TestUnloadStopsInterception(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.ControlFlowSecret(false)
	r.install(t, l)
	rec := &Recipe{Name: "un", Victim: r.proc, Handle: l.Sym("handle"), MaxReplays: 100}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	r.m.Unload()
	l.Start(r.k, 0)
	r.core.Run(10_000_000)
	if !r.core.Context(0).Halted() {
		t.Fatal("victim did not finish")
	}
	if rec.Replays() != 0 {
		t.Errorf("module intercepted %d faults after unload", rec.Replays())
	}
	if got := r.core.Context(0).Stats().PageFaults; got != 1 {
		t.Errorf("page faults = %d, want 1 (kernel minor-fault path)", got)
	}
}

func TestOpsFlushAndInvalidate(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1})
	r.install(t, l)
	va := l.Sym("probe")

	steps, err := r.m.SoftWalk(r.proc, va)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the PT entry lines into the cache.
	for _, s := range steps {
		r.core.Hierarchy().Access(s.EntryAddr)
	}
	if err := r.m.FlushTranslationPath(r.proc, va); err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if _, lvl := r.core.Hierarchy().Probe(s.EntryAddr); lvl != cache.LevelMem {
			t.Errorf("PT entry %#x still cached at %s", s.EntryAddr, lvl)
		}
	}

	// InvalidateTLB drops a warm translation.
	pcid := r.proc.AddressSpace().PCID()
	r.core.TLBs().InsertData(tlbTranslation(va, pcid))
	r.m.InvalidateTLB(r.proc, va)
	if _, lvl := r.core.TLBs().LookupData(mem.PageNum(va), pcid); lvl != 0 {
		t.Error("translation survived InvalidateTLB")
	}
}

func TestUserAPIInitiatePageFault(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1, 2})
	r.install(t, l)
	u := r.m.User(r.proc)
	u.Recipe().MaxReplays = 2
	if err := u.InitiatePageFault(l.Sym("handle")); err != nil {
		t.Fatal(err)
	}
	// The page must now be non-present.
	if _, err := r.proc.AddressSpace().Translate(l.Sym("handle")); err == nil {
		t.Error("handle still translates after InitiatePageFault")
	}
	l.Start(r.k, 0)
	r.core.Run(20_000_000)
	if u.Recipe().Replays() != 2 {
		t.Errorf("replays = %d", u.Recipe().Replays())
	}
}

func TestPivotReleaseDecision(t *testing.T) {
	// Release on a pivot fault must restore the pivot and stand down.
	r := newRig(t, cpu.DefaultConfig())
	l := victim.LoopSecret([]byte{1, 2, 3})
	r.install(t, l)
	rec := &Recipe{
		Name: "pr", Victim: r.proc,
		Handle: l.Sym("handle"), Pivot: l.Sym("pivot"),
	}
	sawPivot := false
	rec.OnReplay = func(ev Event) Decision {
		if ev.OnPivot {
			sawPivot = true
			return Release
		}
		return Pivot
	}
	if err := r.m.Install(rec); err != nil {
		t.Fatal(err)
	}
	l.Start(r.k, 0)
	r.core.Run(20_000_000)
	if !sawPivot {
		t.Fatal("pivot fault never seen")
	}
	if !r.core.Context(0).Halted() {
		t.Fatal("victim did not finish after pivot release")
	}
	if _, err := r.proc.AddressSpace().Translate(l.Sym("pivot")); err != nil {
		t.Error("pivot page not restored")
	}
}

func TestDecisionAndTimelineStrings(t *testing.T) {
	for _, d := range []Decision{Replay, Pivot, Release, Decision(99)} {
		if d.String() == "" {
			t.Errorf("Decision(%d) empty", d)
		}
	}
	for k := EvSetup; k <= EvHandleArm+1; k++ {
		if k.String() == "" {
			t.Errorf("TimelineKind(%d) empty", k)
		}
	}
}

func TestModuleKernelAccessor(t *testing.T) {
	r := newRig(t, cpu.DefaultConfig())
	if r.m.Kernel() != r.k {
		t.Error("Kernel() accessor wrong")
	}
}
