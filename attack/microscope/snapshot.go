package microscope

import (
	"fmt"

	"microscope/sim/mem"
	"microscope/sim/snapshot"
)

// Snapshot/restore of the module's replay state, plus the handler-
// decision record log (the module's half of the nondeterministic-input
// log; the core's half is the RDRAND log). Decisions taken by OnReplay
// callbacks are host code — a snapshot records what they decided, so a
// restored run can be checked against the original decision for
// decision (tools/snapdiff), but the callbacks themselves must be
// re-bound by the caller after a restore into a fresh module
// (RecipeState.HasCallback marks which recipes need one).

// decisionLogCap bounds the decision record log, mirroring the core's
// RDRAND log cap; decisions past the cap are still counted.
const decisionLogCap = 1 << 16

func (m *Module) logDecision(r *Recipe, onPivot bool, d Decision) {
	m.decisionCount++
	if len(m.decisions) < decisionLogCap {
		m.decisions = append(m.decisions, snapshot.DecisionRecord{
			Cycle:       m.core.Cycle(),
			Recipe:      r.Name,
			OnPivot:     onPivot,
			Replays:     r.replays,
			TotalFaults: r.totalFaults,
			Decision:    int(d),
		})
	}
}

// DecisionLog returns the recorded handler decisions (up to an internal
// cap) and the total number of decisions taken.
func (m *Module) DecisionLog() ([]snapshot.DecisionRecord, uint64) {
	return m.decisions, m.decisionCount
}

// Recipes returns the installed recipes in installation order.
func (m *Module) Recipes() []*Recipe { return m.recipes }

// Recipe returns the installed recipe with the given name, or nil.
func (m *Module) Recipe(name string) *Recipe {
	for _, r := range m.recipes {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Snapshot captures the module's replay state: every installed recipe
// (victims by PID), the attack timeline, and the decision log.
func (m *Module) Snapshot() *snapshot.ModuleState {
	s := &snapshot.ModuleState{
		Decisions:     append([]snapshot.DecisionRecord(nil), m.decisions...),
		DecisionCount: m.decisionCount,
	}
	for _, r := range m.recipes {
		rs := snapshot.RecipeState{
			Name:           r.Name,
			VictimPID:      r.Victim.PID,
			Handle:         uint64(r.Handle),
			Pivot:          uint64(r.Pivot),
			WalkLevels:     r.WalkLevels,
			HandlerLatency: r.HandlerLatency,
			MaxReplays:     r.MaxReplays,
			HasCallback:    r.OnReplay != nil,
			Replays:        r.replays,
			TotalFaults:    r.totalFaults,
			PivotArmed:     r.pivotArmed,
		}
		for _, a := range r.MonitorAddrs {
			rs.MonitorAddrs = append(rs.MonitorAddrs, uint64(a))
		}
		s.Recipes = append(s.Recipes, rs)
	}
	for _, ev := range m.timeline {
		s.Timeline = append(s.Timeline, snapshot.TimelineState{
			Cycle:  ev.Cycle,
			Kind:   int(ev.Kind),
			Recipe: ev.Recipe,
			VA:     uint64(ev.VA),
		})
	}
	return s
}

// Restore overwrites the module's replay state from a snapshot. The
// kernel must already be restored: victims are re-resolved by PID
// against its process table. Recipes are rebuilt without re-running
// Install's arming — the page-table present bits and flushed
// translation state are part of the restored memory image. Recipes
// whose snapshot records a callback (HasCallback) come back with a nil
// OnReplay; the caller re-binds them (look them up by name via Recipe).
func (m *Module) Restore(s *snapshot.ModuleState) error {
	recipes := make([]*Recipe, 0, len(s.Recipes))
	for _, rs := range s.Recipes {
		victim, ok := m.k.Process(rs.VictimPID)
		if !ok {
			return fmt.Errorf("microscope: restore recipe %q: no process with pid %d", rs.Name, rs.VictimPID)
		}
		r := &Recipe{
			Name:           rs.Name,
			Victim:         victim,
			Handle:         mem.Addr(rs.Handle),
			Pivot:          mem.Addr(rs.Pivot),
			WalkLevels:     rs.WalkLevels,
			HandlerLatency: rs.HandlerLatency,
			MaxReplays:     rs.MaxReplays,
			replays:        rs.Replays,
			totalFaults:    rs.TotalFaults,
			pivotArmed:     rs.PivotArmed,
		}
		for _, a := range rs.MonitorAddrs {
			r.MonitorAddrs = append(r.MonitorAddrs, mem.Addr(a))
		}
		recipes = append(recipes, r)
	}
	m.recipes = recipes
	m.timeline = m.timeline[:0]
	for _, ev := range s.Timeline {
		m.timeline = append(m.timeline, TimelineEvent{
			Cycle:  ev.Cycle,
			Kind:   TimelineKind(ev.Kind),
			Recipe: ev.Recipe,
			VA:     mem.Addr(ev.VA),
		})
	}
	m.decisions = append(m.decisions[:0], s.Decisions...)
	m.decisionCount = s.DecisionCount
	return nil
}
