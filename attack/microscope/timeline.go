package microscope

import (
	"fmt"
	"strings"

	"microscope/sim/mem"
)

// TimelineKind classifies module-level events for the Fig. 3 timeline.
type TimelineKind int

// Timeline event kinds.
const (
	EvSetup TimelineKind = iota
	EvHandleFault
	EvReplay
	EvRelease
	EvPivotArm
	EvPivotFault
	EvHandleArm
)

// String returns the event name.
func (k TimelineKind) String() string {
	switch k {
	case EvSetup:
		return "setup"
	case EvHandleFault:
		return "handle-fault"
	case EvReplay:
		return "replay"
	case EvRelease:
		return "release"
	case EvPivotArm:
		return "pivot-arm"
	case EvPivotFault:
		return "pivot-fault"
	case EvHandleArm:
		return "handle-arm"
	}
	return fmt.Sprintf("TimelineKind(%d)", int(k))
}

// TimelineEvent is one module action with its cycle, reproducing the
// Replayer row of the paper's Figure 3 timeline.
type TimelineEvent struct {
	Cycle  uint64
	Kind   TimelineKind
	Recipe string
	VA     mem.Addr
}

func (m *Module) record(kind TimelineKind, r *Recipe, va mem.Addr) {
	m.timeline = append(m.timeline, TimelineEvent{
		Cycle:  m.core.Cycle(),
		Kind:   kind,
		Recipe: r.Name,
		VA:     va,
	})
}

// Timeline returns the module's event log.
func (m *Module) Timeline() []TimelineEvent {
	return append([]TimelineEvent(nil), m.timeline...)
}

// ClearTimeline resets the log.
func (m *Module) ClearTimeline() { m.timeline = m.timeline[:0] }

// FormatTimeline renders the log as the Fig. 3-style interleaving.
func FormatTimeline(evs []TimelineEvent) string {
	var sb strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&sb, "%10d  %-12s %-12s va=%#x\n", ev.Cycle, ev.Kind, ev.Recipe, ev.VA)
	}
	return sb.String()
}
