package microscope

import (
	"fmt"
	"strings"

	"microscope/sim/mem"
	"microscope/sim/trace"
)

// TimelineKind classifies module-level events for the Fig. 3 timeline.
type TimelineKind int

// Timeline event kinds.
const (
	EvSetup TimelineKind = iota
	EvHandleFault
	EvReplay
	EvRelease
	EvPivotArm
	EvPivotFault
	EvHandleArm
)

// String returns the event name.
func (k TimelineKind) String() string {
	switch k {
	case EvSetup:
		return "setup"
	case EvHandleFault:
		return "handle-fault"
	case EvReplay:
		return "replay"
	case EvRelease:
		return "release"
	case EvPivotArm:
		return "pivot-arm"
	case EvPivotFault:
		return "pivot-fault"
	case EvHandleArm:
		return "handle-arm"
	}
	return fmt.Sprintf("TimelineKind(%d)", int(k))
}

// TimelineEvent is one module action with its cycle, reproducing the
// Replayer row of the paper's Figure 3 timeline.
type TimelineEvent struct {
	Cycle  uint64
	Kind   TimelineKind
	Recipe string
	VA     mem.Addr
}

func (m *Module) record(kind TimelineKind, r *Recipe, va mem.Addr) {
	m.timeline = append(m.timeline, TimelineEvent{
		Cycle:  m.core.Cycle(),
		Kind:   kind,
		Recipe: r.Name,
		VA:     va,
	})
}

// Timeline returns the module's event log.
func (m *Module) Timeline() []TimelineEvent {
	return append([]TimelineEvent(nil), m.timeline...)
}

// ClearTimeline resets the log.
func (m *Module) ClearTimeline() { m.timeline = m.timeline[:0] }

// TraceAnnotations converts the module timeline into Chrome-trace
// annotations for sim/trace's exporter: each recipe gets its own
// "replayer" track, every EvHandleFault opens a numbered replay
// iteration that runs until the next fault or the release, and the
// remaining module actions (setup, pivots, arming, release) render as
// instant markers. Layered over the per-context pipeline tracks this
// reproduces the paper's Fig. 3 interleaving in the viewer.
func (m *Module) TraceAnnotations() []trace.Annotation {
	var out []trace.Annotation
	replays := map[string]int{} // replay ordinal per recipe
	openIdx := map[string]int{} // out-index of the recipe's open iteration
	for _, ev := range m.timeline {
		track := "replayer: " + ev.Recipe
		va := fmt.Sprintf("%#x", uint64(ev.VA))
		switch ev.Kind {
		case EvHandleFault:
			if i, ok := openIdx[ev.Recipe]; ok {
				out[i].End = ev.Cycle
			}
			replays[ev.Recipe]++
			out = append(out, trace.Annotation{
				Track: track,
				Name:  fmt.Sprintf("replay %d", replays[ev.Recipe]),
				Start: ev.Cycle,
				End:   ev.Cycle,
				Args:  map[string]string{"va": va},
			})
			openIdx[ev.Recipe] = len(out) - 1
		case EvRelease:
			if i, ok := openIdx[ev.Recipe]; ok {
				out[i].End = ev.Cycle
				delete(openIdx, ev.Recipe)
			}
			out = append(out, trace.Annotation{
				Track: track,
				Name:  ev.Kind.String(),
				Start: ev.Cycle,
				End:   ev.Cycle,
				Args:  map[string]string{"va": va},
			})
		default:
			out = append(out, trace.Annotation{
				Track: track,
				Name:  ev.Kind.String(),
				Start: ev.Cycle,
				End:   ev.Cycle,
				Args:  map[string]string{"va": va},
			})
		}
	}
	return out
}

// FormatTimeline renders the log as the Fig. 3-style interleaving.
func FormatTimeline(evs []TimelineEvent) string {
	var sb strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&sb, "%10d  %-12s %-12s va=%#x\n", ev.Cycle, ev.Kind, ev.Recipe, ev.VA)
	}
	return sb.String()
}
