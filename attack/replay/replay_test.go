package replay

import "testing"

func TestPageFaultHandleReplays(t *testing.T) {
	res, err := RunPageFaultHandle(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != HandlePageFault || !res.Unbound {
		t.Errorf("result meta = %+v", res)
	}
	if res.Replays != 10 {
		t.Errorf("replays = %d, want 10", res.Replays)
	}
	if !res.Leaked {
		t.Error("transmit footprint not observed")
	}
}

func TestTSXAbortHandleReplays(t *testing.T) {
	res, err := RunTSXAbortHandle(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays != 5 || !res.Leaked {
		t.Errorf("tsx result = %+v", res)
	}
}

// The §7.1 observation: a fence does NOT stop TSX-abort replays, because
// the window is the whole transaction and the transmit retires before
// each abort.
func TestTSXAbortDefeatsFence(t *testing.T) {
	res, err := RunTSXAbortHandle(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays != 5 {
		t.Errorf("fenced tsx replays = %d, want 5", res.Replays)
	}
	if !res.Leaked {
		t.Error("fence stopped a TSX-abort replay (it must not)")
	}
}

func TestMispredictHandleIsBounded(t *testing.T) {
	res, err := RunMispredictHandle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Error("no mispredict replays at all")
	}
	// The count includes loop-branch training mispredicts; the primed
	// branch itself contributes only ~2 before the 2-bit counter decays.
	if res.Replays > 8 {
		t.Errorf("mispredict replays = %d; predictor training must bound them", res.Replays)
	}
	if !res.Leaked {
		t.Error("transient transmit left no footprint")
	}
	if res.Unbound {
		t.Error("mispredict handle reported unbounded")
	}
}

func TestHandleKindString(t *testing.T) {
	for _, k := range []HandleKind{HandlePageFault, HandleTSXAbort, HandleMispredict} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestRDRANDBiasSucceedsUnfenced(t *testing.T) {
	for _, target := range []uint64{0, 1} {
		res, err := RunRDRANDBias(target, 200, false)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Observed {
			t.Fatalf("target %d: side channel never observed the draw", target)
		}
		if !res.Achieved {
			t.Errorf("target %d: bias failed (final bit %d, windows %d)",
				target, res.FinalLowBit, res.Windows)
		}
	}
}

// With Intel's fence inside RDRAND, the transmit never executes in the
// shadow of the walk: the attacker is blind and the attack fails — the
// paper's conclusion that the fence (accidentally) provides security.
func TestRDRANDBiasBlockedByFence(t *testing.T) {
	res, err := RunRDRANDBias(0, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed {
		t.Error("fenced RDRAND was observable over the side channel")
	}
	if res.Achieved {
		t.Error("fenced RDRAND was biased")
	}
	if res.Windows < 50 {
		t.Errorf("attacker gave up after %d windows, want %d (blind replays)", res.Windows, 50)
	}
}
