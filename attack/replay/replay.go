// Package replay implements the generalized microarchitectural replay
// attacks of the paper's Section 7 (Fig. 12): replay handles beyond
// page-faulting loads — TSX transaction aborts and branch mispredictions —
// and the RDRAND integrity-bias attack with the fence that defeats it.
package replay

import (
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// HandleKind names a replay-handle mechanism (Fig. 12 left box).
type HandleKind int

// Replay-handle mechanisms.
const (
	HandlePageFault  HandleKind = iota // unbounded replays (MicroScope proper)
	HandleTSXAbort                     // unbounded; window = transaction length
	HandleMispredict                   // bounded by predictor training
)

// String returns the mechanism name.
func (k HandleKind) String() string {
	switch k {
	case HandlePageFault:
		return "page-fault"
	case HandleTSXAbort:
		return "tsx-abort"
	case HandleMispredict:
		return "branch-mispredict"
	}
	return fmt.Sprintf("HandleKind(%d)", int(k))
}

// Result reports one replay-handle experiment: how many times the
// transmit instruction re-executed and whether its side-channel footprint
// was observable.
type Result struct {
	Kind     HandleKind
	Replays  int
	Leaked   bool
	Unbound  bool // mechanism supports attacker-chosen replay counts
	WindowOK bool // transmit executed inside the replayed window
}

// rig assembles the shared platform.
type rig struct {
	core *cpu.Core
	k    *kernel.Kernel
	m    *microscope.Module
	proc *kernel.Process
}

func newRig(cfg cpu.Config) (*rig, error) {
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cfg, phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := microscope.NewModule(k)
	proc, err := k.NewProcess("victim")
	if err != nil {
		return nil, err
	}
	k.Schedule(0, proc)
	return &rig{core: core, k: k, m: m, proc: proc}, nil
}

// transmitVA is the probe location the transmit instruction touches.
const (
	dataVA     mem.Addr = 0x0040_0000
	transmitVA mem.Addr = 0x0041_0000
)

// transmitFootprint reports whether the transmit line is cached.
func (r *rig) transmitFootprint() (bool, error) {
	pa, err := r.proc.AddressSpace().Translate(transmitVA)
	if err != nil {
		return false, err
	}
	return r.core.Hierarchy().LevelOf(pa) != cache.LevelMem, nil
}

func (r *rig) flushTransmit() error {
	pa, err := r.proc.AddressSpace().Translate(transmitVA)
	if err != nil {
		return err
	}
	r.core.Hierarchy().FlushAddr(pa)
	return nil
}

// RunPageFaultHandle replays a transmit load `replays` times via the
// standard MicroScope page-fault handle.
func RunPageFaultHandle(replays int) (*Result, error) {
	r, err := newRig(cpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	l := &victim.Layout{
		Name: "pf-handle",
		Prog: isa.NewBuilder().
			MovImm(isa.R1, int64(dataVA)).
			MovImm(isa.R2, int64(transmitVA)).
			Load(isa.R3, isa.R1, 0). // replay handle
			Load(isa.R4, isa.R2, 0). // transmit
			Halt().MustBuild(),
		Regions: []victim.Region{
			{Name: "data", VA: dataVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
			{Name: "probe", VA: transmitVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
		},
		Symbols: map[string]mem.Addr{"handle": dataVA},
	}
	if err := l.Install(r.k, r.proc); err != nil {
		return nil, err
	}

	res := &Result{Kind: HandlePageFault, Unbound: true}
	rec := &microscope.Recipe{
		Name:   "pf",
		Victim: r.proc,
		Handle: dataVA,
	}
	var cbErr error
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.Replays = ev.Replays
		leaked, err := r.transmitFootprint()
		if err != nil {
			cbErr = err
			return microscope.Release
		}
		if leaked {
			res.WindowOK = true
		}
		if ev.Replays >= replays {
			return microscope.Release
		}
		// Re-flush so each replay's footprint is a fresh observation.
		if err := r.flushTransmit(); err != nil {
			cbErr = err
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := r.m.Install(rec); err != nil {
		return nil, err
	}
	l.Start(r.k, 0)
	r.core.Run(50_000_000)
	if cbErr != nil {
		return nil, cbErr
	}
	if !r.core.Context(0).Halted() {
		return nil, fmt.Errorf("replay: page-fault victim did not finish")
	}
	res.Leaked = res.WindowOK
	return res, nil
}

// RunTSXAbortHandle replays a transmit load by repeatedly aborting the
// transaction that contains it. Unlike the page-fault handle, the window
// is the whole transaction, not the ROB (§7.1) — and the transmit even
// RETIRES before each abort, so a FENCE inside the transaction does not
// stop the replay.
func RunTSXAbortHandle(replays int, fenced bool) (*Result, error) {
	r, err := newRig(cpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	b := isa.NewBuilder().
		MovImm(isa.R2, int64(transmitVA)).
		MovImm(isa.R5, int64(replays)).
		Label("retry").
		TxBegin("retry")
	if fenced {
		b.Fence()
	}
	b.Load(isa.R4, isa.R2, 0). // transmit inside the transaction
					MovImm(isa.R6, 1).
					Store(isa.R6, isa.R2, 512). // dirty line: the attacker's abort lever
		// Trailing transaction work (a realistic body is longer than the
		// sensitive prefix); also gives the attacker its abort window.
		MovImm(isa.R7, 40).
		Label("body").
		AddImm(isa.R7, isa.R7, -1).
		Bne(isa.R7, isa.R0, "body").
		TxEnd().
		Halt()
	l := &victim.Layout{
		Name: "tsx-handle",
		Prog: b.MustBuild(),
		Regions: []victim.Region{
			{Name: "probe", VA: transmitVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
		},
	}
	if err := l.Install(r.k, r.proc); err != nil {
		return nil, err
	}

	dirtyPA, err := r.proc.AddressSpace().Translate(transmitVA + 512)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: HandleTSXAbort, Unbound: true}
	l.Start(r.k, 0)
	ctx := r.core.Context(0)
	for res.Replays < replays {
		// Run until the transmit has executed inside the transaction and
		// the dirty line has joined the write set.
		ok := r.core.RunUntil(func() bool {
			leaked, _ := r.transmitFootprint()
			dirty, _ := r.proc.AddressSpace().Read64Virt(transmitVA + 512)
			return ctx.InTx() && leaked && dirty == 1
		}, 1_000_000)
		if !ok {
			return nil, fmt.Errorf("replay: transaction window never observed")
		}
		res.WindowOK = true
		res.Replays++
		if res.Replays >= replays {
			break
		}
		// Attacker-induced abort: evict a line of the transaction's write
		// set from the private cache (§7.1 — "Intel's TSX will abort a
		// transaction if dirty data is evicted from the private cache,
		// which can be easily controlled by an attacker").
		if !r.core.EvictLine(dirtyPA) {
			return nil, fmt.Errorf("replay: write-set eviction did not abort")
		}
		if err := r.flushTransmit(); err != nil {
			return nil, err
		}
		// Memory is not rolled back by the abort; clear the marker so the
		// next attempt's commit is observable again.
		if err := r.proc.AddressSpace().Write64Virt(transmitVA+512, 0); err != nil {
			return nil, err
		}
	}
	r.core.Run(10_000_000)
	if !ctx.Halted() {
		return nil, fmt.Errorf("replay: tsx victim did not finish")
	}
	res.Leaked = res.WindowOK
	return res, nil
}

// RunMispredictHandle replays a transmit load in the shadow of a branch
// the adversary primed to mispredict. The number of replays is bounded
// by predictor training — the victim eventually makes forward progress
// (§7.1: "the application will eventually make forward progress").
func RunMispredictHandle() (*Result, error) {
	r, err := newRig(cpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// The victim loops; each iteration's branch is primed to go the
	// wrong way, transiently executing the transmit load.
	b := isa.NewBuilder().
		MovImm(isa.R1, 4). // iterations
		MovImm(isa.R2, int64(transmitVA)).
		MovImm(isa.R3, 1)
	b.Label("loop")
	branchPC := b.Here()
	b.Beq(isa.R3, isa.R0, "leak"). // never actually taken
					AddImm(isa.R1, isa.R1, -1).
					Bne(isa.R1, isa.R0, "loop").
					Halt().
					Label("leak").
					Load(isa.R4, isa.R2, 0). // transient transmit
					Halt()
	l := &victim.Layout{
		Name: "bp-handle",
		Prog: b.MustBuild(),
		Regions: []victim.Region{
			{Name: "probe", VA: transmitVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
		},
	}
	if err := l.Install(r.k, r.proc); err != nil {
		return nil, err
	}

	// Prime the predictor so the branch predicts taken (toward the leak).
	ctx := r.core.Context(0)
	ctx.Predictor().Prime(branchPC, true, l.Prog.Instrs[branchPC].Target)

	l.Start(r.k, 0)
	r.core.Run(10_000_000)
	if !ctx.Halted() {
		return nil, fmt.Errorf("replay: mispredict victim did not finish")
	}
	leaked, err := r.transmitFootprint()
	if err != nil {
		return nil, err
	}
	return &Result{
		Kind:     HandleMispredict,
		Replays:  int(ctx.Stats().Mispredicts),
		Leaked:   leaked,
		Unbound:  false,
		WindowOK: leaked,
	}, nil
}
