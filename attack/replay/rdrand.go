package replay

import (
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// BiasResult reports one RDRAND integrity-bias attack (§7.2).
type BiasResult struct {
	Fenced bool
	// TargetBit is the low bit the attacker wants RDRAND to retire with.
	TargetBit uint64
	// Achieved reports that the retired value's low bit equals TargetBit
	// *because the attacker selected it* (Windows > 0 and the observation
	// matched), not by chance.
	Achieved bool
	// Windows is how many speculative windows the attacker discarded
	// before accepting one.
	Windows int
	// Observed reports whether the attacker could read the RDRAND value
	// over the side channel at all (false when the fence blocks it).
	Observed bool
	// FinalLowBit is the low bit of the value the victim actually
	// retired and stored.
	FinalLowBit uint64
}

const (
	biasHandleVA mem.Addr = 0x0040_0000
	biasArrayVA  mem.Addr = 0x0041_0000
	biasOutVA    mem.Addr = 0x0042_0000
)

// RunRDRANDBias mounts the §7.2 integrity attack: the victim draws a
// random value in the shadow of a replay handle and transmits its low bit
// over a cache line; the attacker replays until the observed bit matches
// the target, then sets the present bit *during* the page walk so that
// very draw retires — biasing a "true" random number generator.
//
// With fenced=true the core models Intel's actual RDRAND fence: nothing
// younger than RDRAND dispatches until it retires, the transmit never
// executes speculatively, and the attacker is blind — the attack fails,
// the lesson of §7.2 ("there should be such a fence, for security
// reasons").
func RunRDRANDBias(targetBit uint64, maxWindows int, fenced bool) (*BiasResult, error) {
	cfg := cpu.DefaultConfig()
	cfg.FencedRdrand = fenced
	r, err := newRig(cfg)
	if err != nil {
		return nil, err
	}

	l := &victim.Layout{
		Name: "rdrand-bias",
		Prog: isa.NewBuilder().
			MovImm(isa.R1, int64(biasHandleVA)).
			MovImm(isa.R2, int64(biasArrayVA)).
			MovImm(isa.R7, int64(biasOutVA)).
			Load(isa.R3, isa.R1, 0). // replay handle
			Rdrand(isa.R4).
			AndImm(isa.R5, isa.R4, 1).
			ShlImm(isa.R5, isa.R5, 6). // bit -> cache line
			Add(isa.R5, isa.R5, isa.R2).
			Load(isa.R6, isa.R5, 0).  // transmit
			Store(isa.R4, isa.R7, 0). // victim consumes the random value
			Halt().MustBuild(),
		Regions: []victim.Region{
			{Name: "handle", VA: biasHandleVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
			{Name: "array", VA: biasArrayVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
			{Name: "out", VA: biasOutVA, Size: mem.PageSize, Flags: mem.FlagUser | mem.FlagWritable},
		},
	}
	if err := l.Install(r.k, r.proc); err != nil {
		return nil, err
	}

	line0, err := r.proc.AddressSpace().Translate(biasArrayVA)
	if err != nil {
		return nil, err
	}
	line1, err := r.proc.AddressSpace().Translate(biasArrayVA + 64)
	if err != nil {
		return nil, err
	}
	flushLines := func() {
		r.core.Hierarchy().FlushAddr(line0)
		r.core.Hierarchy().FlushAddr(line1)
	}
	observeBit := func() (uint64, bool) {
		hot0 := r.core.Hierarchy().LevelOf(line0) != cache.LevelMem
		hot1 := r.core.Hierarchy().LevelOf(line1) != cache.LevelMem
		switch {
		case hot0 && !hot1:
			return 0, true
		case hot1 && !hot0:
			return 1, true
		}
		return 0, false
	}

	res := &BiasResult{Fenced: fenced, TargetBit: targetBit}
	gaveUp := false
	rec := &microscope.Recipe{
		Name:   "rdrand-bias",
		Victim: r.proc,
		Handle: biasHandleVA,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		// A fault was delivered: the previous window's draw was
		// discarded (either we chose to, or we were blind).
		res.Windows++
		if res.Windows >= maxWindows {
			gaveUp = true
			return microscope.Release
		}
		flushLines()
		return microscope.Replay
	}
	if err := r.m.Install(rec); err != nil {
		return nil, err
	}
	flushLines()
	l.Start(r.k, 0)

	// Drive the core cycle by cycle, watching the probe lines. When the
	// observed bit matches the target, set the present bit immediately —
	// before the in-flight walk concludes — so this very draw retires.
	ctx := r.core.Context(0)
	accepted := false
	for steps := 0; steps < 100_000_000 && !ctx.Halted(); steps++ {
		r.core.Step()
		if accepted || gaveUp {
			continue
		}
		if bit, ok := observeBit(); ok {
			res.Observed = true
			if bit == targetBit {
				if _, err := r.proc.AddressSpace().SetPresent(biasHandleVA, true); err != nil {
					return nil, err
				}
				accepted = true
			}
		}
	}
	if !ctx.Halted() {
		return nil, fmt.Errorf("replay: rdrand victim did not finish")
	}
	out, err := r.proc.AddressSpace().Read64Virt(biasOutVA)
	if err != nil {
		return nil, err
	}
	res.FinalLowBit = out & 1
	res.Achieved = accepted && res.FinalLowBit == targetBit
	return res, nil
}
