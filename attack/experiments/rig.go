// Package experiments contains the runnable reproductions of the paper's
// evaluation: the Fig. 10 port-contention attack, the Fig. 11 AES cache
// attack, the full §6.2 single-run AES trace extraction, the Fig. 3
// timeline, and the ablation studies listed in DESIGN.md. The cmd tools
// and the root bench harness are thin wrappers around this package.
package experiments

import (
	"fmt"
	"strings"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// Rig is a fully assembled attack platform: physical memory, one SMT
// core, a kernel with the MicroScope module loaded, and a victim process
// scheduled on context 0.
type Rig struct {
	Phys   *mem.PhysMem
	Core   *cpu.Core
	Kernel *kernel.Kernel
	Module *microscope.Module
	Victim *kernel.Process
	// Monitor is non-nil when a monitor process is scheduled on
	// context 1.
	Monitor *kernel.Process
}

// NewRig assembles a platform with the given core configuration.
func NewRig(cfg cpu.Config) (*Rig, error) {
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cfg, phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := microscope.NewModule(k)
	vp, err := k.NewProcess("victim")
	if err != nil {
		return nil, err
	}
	k.Schedule(0, vp)
	return &Rig{Phys: phys, Core: core, Kernel: k, Module: m, Victim: vp}, nil
}

// InstallVictim installs a victim layout into the victim process.
func (r *Rig) InstallVictim(l *victim.Layout) error {
	return l.Install(r.Kernel, r.Victim)
}

// AddMonitor creates the monitor process on SMT context 1 and installs
// its layout.
func (r *Rig) AddMonitor(l *victim.Layout) error {
	if r.Core.Contexts() < 2 {
		return fmt.Errorf("experiments: core has no second SMT context")
	}
	mp, err := r.Kernel.NewProcess("monitor")
	if err != nil {
		return err
	}
	r.Kernel.Schedule(1, mp)
	if err := l.Install(r.Kernel, mp); err != nil {
		return err
	}
	r.Monitor = mp
	return nil
}

// Run steps the core until every loaded context halts or maxCycles pass,
// returning an error on timeout. The timeout error reports the PC and
// halt state of *every* loaded context: when the monitor context (SMT
// context 1) is the one spinning, an error naming only the victim's PC
// misdiagnoses the hang.
func (r *Rig) Run(maxCycles uint64) error {
	r.Core.Run(maxCycles)
	if !r.Core.Halted() {
		var sb strings.Builder
		for i := 0; i < r.Core.Contexts(); i++ {
			ctx := r.Core.Context(i)
			if ctx.Program() == nil {
				continue
			}
			// Name the context after the process the kernel actually has
			// scheduled there: a monitor installed via kernel.Schedule
			// directly (without AddMonitor) is still reported by name, and
			// a rescheduled context 0 is not mislabelled "victim".
			name := fmt.Sprintf("ctx%d", i)
			if p, ok := r.Kernel.Running(i); ok {
				name = p.Name
			}
			state := "spinning"
			if ctx.Halted() {
				state = "halted"
			}
			fmt.Fprintf(&sb, "; %s %s at pc=%d", name, state, ctx.PC())
		}
		return fmt.Errorf("experiments: run exceeded %d cycles%s", maxCycles, sb.String())
	}
	return nil
}
