package experiments

import (
	"bytes"
	"fmt"

	"microscope/analysis/sweep"
	"microscope/attack/microscope"
	"microscope/crypto/taes"
	"microscope/sim/mem"
)

// ExtractionResult is the outcome of the full §6.2 attack: all T-table
// cache-line accesses of one AES decryption, extracted in a single
// logical victim run by alternating rk-page replay handles and Td0-page
// pivots.
type ExtractionResult struct {
	Rounds int
	// Extracted[r][t] is the recovered line mask for round r, table t
	// (t=4 is Td4, populated only for the final round).
	Extracted map[int][5]uint16
	// Truth is the reference trace's masks.
	Truth map[int][5]uint16
	// Faults is the total page faults the attack used.
	Faults int
	// Cycles is the simulated-cycle cost of the whole extraction (the
	// throughput benchmarks divide it by wall-clock time).
	Cycles uint64
	// PlaintextOK reports that the victim still produced the correct
	// plaintext (forward progress, §4.1.4 step 6).
	PlaintextOK bool
}

// Match reports whether extraction equals ground truth for every round
// and table the attack targets.
func (e *ExtractionResult) Match() (bool, string) {
	for r := 1; r <= e.Rounds; r++ {
		tables := []int{0, 1, 2, 3}
		if r == e.Rounds {
			tables = []int{4}
		}
		for _, t := range tables {
			if e.Extracted[r][t] != e.Truth[r][t] {
				return false, fmt.Sprintf("round %d Td%d: extracted %016b, truth %016b",
					r, t, e.Extracted[r][t], e.Truth[r][t])
			}
		}
	}
	return true, ""
}

// RunAESExtraction mounts the full single-run AES attack of §6.2.
//
// Round 1 is recovered through a replay handle *before* the cipher loop
// (the victim's stack spill between key setup and round 1 — the paper's
// §4.4 footnote fix), with the rk page armed simultaneously so that every
// round-1 table lookup executes in the window while round 2 stays blocked
// on the faulted rk chain.
//
// Rounds 2..Nr are recovered by alternating the rk-page handle and
// Td0-page pivot column by column (§4.4): the fault on round r's first rk
// access opens a window, W(rk@r, col0), whose replay executes all 16 of
// round r's table lookups (round r+1 is data-blocked on the faulted rk
// loads), and the pivot single-steps the victim to the next round.
func RunAESExtraction(cfg AESConfig) (*ExtractionResult, error) {
	ar, ct, err := newAESRig(cfg)
	if err != nil {
		return nil, err
	}
	return runAESExtraction(ar, cfg, ct)
}

// runAESExtraction mounts the attack on an assembled AES rig — fresh
// from newAESRig, or forked from a post-install checkpoint with the
// trial ciphertext swapped in (forkAESRig). The two arrive with
// identical machine state, so the results are identical too.
func runAESExtraction(ar *aesRig, cfg AESConfig, ct []byte) (*ExtractionResult, error) {
	truth, err := truthMasks(cfg.Key, ct)
	if err != nil {
		return nil, err
	}
	nr := ar.vic.Cipher.Rounds()
	res := &ExtractionResult{
		Rounds:    nr,
		Extracted: make(map[int][5]uint16),
		Truth:     truth,
	}

	var attackErr error
	fail := func(err error) microscope.Decision {
		if attackErr == nil {
			attackErr = err
		}
		return microscope.Release
	}

	var round1Masks [5]uint16
	wRK := map[[2]int][5]uint16{} // (round, col) -> probed masks

	// Phase B: rk handle + Td0 pivot stepping through rounds 2..Nr.
	recB := &microscope.Recipe{
		Name:           "aes-extract",
		Victim:         ar.Victim,
		Handle:         ar.vic.Sym("rk"),
		Pivot:          ar.vic.Sym("td0"),
		WalkLevels:     cfg.WalkLevels,
		HandlerLatency: cfg.HandlerLatency,
	}
	r, c := 1, 0
	arrival := 0
	recB.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.Faults++
		if ev.OnPivot {
			// Pivot fault at (r, c): single-step to the next column.
			if c == 3 {
				r, c = r+1, 0
			} else {
				c++
			}
			return microscope.Pivot
		}
		// Handle (rk) fault at (r, c): prime+replay+probe at each
		// round's first column.
		if c == 0 && r >= 2 {
			switch arrival {
			case 0:
				arrival++
				if err := ar.prime(); err != nil {
					return fail(err)
				}
				return microscope.Replay
			default:
				arrival = 0
				masks, err := ar.probeMasks()
				if err != nil {
					return fail(err)
				}
				wRK[[2]int{r, c}] = masks
				if r == nr {
					return microscope.Release // final round probed: done
				}
			}
		}
		return microscope.Pivot
	}

	// Phase A: the pre-loop stack handle, with the rk page armed under
	// recB at the same time so the window is confined to round 1.
	recA := &microscope.Recipe{
		Name:           "aes-preloop",
		Victim:         ar.Victim,
		Handle:         ar.vic.Sym("stack"),
		WalkLevels:     cfg.WalkLevels,
		HandlerLatency: cfg.HandlerLatency,
	}
	stepA := 0
	recA.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.Faults++
		stepA++
		switch stepA {
		case 1:
			// First arrival: the prologue (incl. its rk loads) has
			// retired. Arm the rk page via recB, prime, and replay: the
			// window now executes exactly round 1's 16 lookups.
			if err := ar.Module.Install(recB); err != nil {
				return fail(err)
			}
			if err := ar.prime(); err != nil {
				return fail(err)
			}
			return microscope.Replay
		default:
			masks, err := ar.probeMasks()
			if err != nil {
				return fail(err)
			}
			round1Masks = masks
			return microscope.Release
		}
	}
	if err := ar.Module.Install(recA); err != nil {
		return nil, err
	}

	start := ar.Core.Cycle()
	ar.vic.Start(ar.Kernel, 0)
	if err := ar.Run(200_000_000); err != nil {
		return nil, err
	}
	res.Cycles = ar.Core.Cycle() - start
	if attackErr != nil {
		return nil, attackErr
	}

	// Assemble per-round masks.
	round1Masks[4] = 0
	res.Extracted[1] = round1Masks
	for round := 2; round <= nr; round++ {
		m := wRK[[2]int{round, 0}]
		if round == nr {
			m = [5]uint16{4: m[4]}
		} else {
			m[4] = 0
		}
		res.Extracted[round] = m
	}

	pt, err := ar.vic.Plaintext(func(va mem.Addr) (uint64, error) {
		return ar.Victim.AddressSpace().Read64Virt(va)
	})
	if err != nil {
		return nil, err
	}
	res.PlaintextOK = bytes.Equal(pt, cfg.Plaintext)
	return res, nil
}

// RunAESExtractionSweep mounts one full §6.2 extraction per plaintext,
// fanned out over the sweep worker pool. Trials fork from a single warm
// post-install checkpoint instead of cold-booting a 64 MB platform
// each: the template rig is checkpointed right after victim
// installation (before any recipe or cycle runs), every trial restores
// a pooled rig to that state, swaps its own ciphertext into the
// victim's in page, and mounts the attack. The returned slice is
// ordered by trial index and byte-identical to the cold-boot reference
// (RunAESExtractionSweepColdBoot) for any worker count (<= 0 selects
// GOMAXPROCS).
func RunAESExtractionSweep(cfg AESConfig, plaintexts [][]byte, workers int) ([]*ExtractionResult, error) {
	if len(plaintexts) == 0 {
		return nil, nil
	}
	template, _, err := newAESRig(cfg)
	if err != nil {
		return nil, err
	}
	cp, err := template.Checkpoint()
	if err != nil {
		return nil, err
	}
	pool := newRigPool(cp, template.Rig)
	return sweep.Run(len(plaintexts), sweep.Options{Workers: workers},
		func(trial int) (*ExtractionResult, error) {
			c := cfg
			c.Plaintext = plaintexts[trial]
			rig, err := pool.get()
			if err != nil {
				return nil, err
			}
			defer pool.put(rig)
			ar, ct, err := forkAESRig(template, rig, c)
			if err != nil {
				return nil, err
			}
			return runAESExtraction(ar, c, ct)
		})
}

// RunAESExtractionSweepColdBoot is RunAESExtractionSweep without the
// shared checkpoint: every trial assembles its own Rig/PhysMem/Core
// from scratch. It is the reference implementation the forked sweep is
// tested for byte-identity against and benchmarked over.
func RunAESExtractionSweepColdBoot(cfg AESConfig, plaintexts [][]byte, workers int) ([]*ExtractionResult, error) {
	return sweep.Run(len(plaintexts), sweep.Options{Workers: workers},
		func(trial int) (*ExtractionResult, error) {
			c := cfg
			c.Plaintext = plaintexts[trial]
			return RunAESExtraction(c)
		})
}

// LinesOf expands a line mask into indices (reporting helper).
func LinesOf(mask uint16) []int {
	var out []int
	for i := 0; i < taes.LinesPerTable; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
