package experiments

// SpecSan three-way cross-validation: run a victim under the MicroScope
// module with the cycle-accurate taint sanitizer (sim/sanitizer)
// attached, then reconcile its dynamic transmit findings against the
// static scanner (analysis/static) finding-by-finding. The third leg —
// the abstract verifier's simulator-checked witnesses
// (analysis/verify) — is joined by the caller: every LEAKY witness
// channel must appear among the sanitizer's findings (see
// specsan_test.go and the cmd/mscan -sanitize mode).

import (
	"fmt"

	"microscope/analysis/static"
	"microscope/analysis/verify"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/sanitizer"
)

// SanTarget is one built-in victim the sanitizer gate sweeps: a layout
// constructor plus the layout symbol of the replay handle the MicroScope
// recipe arms. The handle must be an access the secret transmitter does
// NOT data-depend on (dependent work never issues under the handle's
// fault): aes arms its pre-loop stack slot rather than the key schedule,
// singlesecret its count page. cmd/mscan's -victim table delegates here
// so the CLI, the cross-validation tests and the fuzz corpus agree on
// one set of targets.
type SanTarget struct {
	Name   string
	Handle string
	Build  func() (*victim.Layout, error)
}

// SanTargets returns every built-in victim with its replay-handle
// symbol.
func SanTargets() []SanTarget {
	return []SanTarget{
		{"aes", "stack", func() (*victim.Layout, error) {
			v, err := victim.NewAESVictim([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
			if err != nil {
				return nil, err
			}
			return v.Layout, nil
		}},
		{"modexp", "handle", func() (*victim.Layout, error) {
			v, err := victim.NewModExpVictim(5, 0xb, 97, 4)
			if err != nil {
				return nil, err
			}
			return v.Layout, nil
		}},
		{"singlesecret", "count", func() (*victim.Layout, error) {
			return victim.SingleSecret(3, true), nil
		}},
		{"controlflow", "handle", func() (*victim.Layout, error) {
			return victim.ControlFlowSecret(true), nil
		}},
		{"loopsecret", "handle", func() (*victim.Layout, error) {
			return victim.LoopSecret([]byte{3, 1, 4, 1, 5}), nil
		}},
		{"rdrand", "handle", func() (*victim.Layout, error) {
			return victim.RdrandBias(), nil
		}},
		{"ctcontrol", "handle", func() (*victim.Layout, error) {
			return victim.ConstantTime(), nil
		}},
	}
}

// FindSanTarget looks a target up by name.
func FindSanTarget(name string) (SanTarget, error) {
	for _, t := range SanTargets() {
		if t.Name == name {
			return t, nil
		}
	}
	return SanTarget{}, fmt.Errorf("experiments: unknown sanitizer target %q", name)
}

// SpecSanConfig parameterizes one sanitized replay run.
type SpecSanConfig struct {
	// Static configures the taint fixpoint both the scanner and the
	// reconciliation use; Static.TaintRdrand also selects the
	// sanitizer's RDRAND mode so the two analyses agree by
	// construction.
	Static static.Config
	// Replays is the module's MaxReplays (release threshold).
	Replays int
	// HandlerLatency is the simulated fault-handler time per replay.
	HandlerLatency uint64
	// MaxCycles bounds the run.
	MaxCycles uint64
	// Assignment, when non-nil, patches secret immediates, writes
	// secret memory and seeds RDRAND exactly like a verifier witness
	// run, so a witness assignment can be replayed under the sanitizer.
	Assignment *verify.Assignment
}

// DefaultSpecSanConfig mirrors the verifier's dynamic-run parameters.
func DefaultSpecSanConfig() SpecSanConfig {
	v := verify.DefaultConfig()
	return SpecSanConfig{
		Static:         static.DefaultConfig(),
		Replays:        v.Replays,
		HandlerLatency: v.HandlerLatency,
		MaxCycles:      v.MaxCycles,
	}
}

// SpecSanResult bundles the three analysis legs of one sanitized run.
type SpecSanResult struct {
	Target string
	// Sanitizer is the attached shadow engine, post-Flush: events are
	// final and replay-attributed.
	Sanitizer *sanitizer.Sanitizer
	// Findings aggregates the sanitizer's transmit events per (pc,
	// channel, flow).
	Findings []sanitizer.Finding
	// Report is the static scanner's handle-scoped report.
	Report *static.Report
	// Points is the unscoped static transmitter classification backing
	// the reconciliation.
	Points []static.TransmitPoint
	// Reconciliation classifies every static/dynamic discrepancy.
	Reconciliation *sanitizer.Reconciliation
	// Windows are the replay windows recovered from the module
	// timeline.
	Windows []sanitizer.ReplayWindow
	// Replays is the module's handle-fault count.
	Replays int
}

// ReplayWindows converts a MicroScope module timeline into the cycle
// windows the sanitizer attributes transmit events to: each handle
// fault opens replay iteration N (closing iteration N-1), and the
// release — or the end of time — closes the last one. Pivoted recipes
// interleave per-recipe faults; later windows win on overlap, so the
// innermost (most recent) recipe claims the cycle, matching the module's
// own TraceAnnotations.
func ReplayWindows(tl []microscope.TimelineEvent) []sanitizer.ReplayWindow {
	var ws []sanitizer.ReplayWindow
	open := make(map[string]int)  // recipe -> index into ws
	count := make(map[string]int) // recipe -> iterations seen
	for _, ev := range tl {
		switch ev.Kind {
		case microscope.EvHandleFault:
			if i, ok := open[ev.Recipe]; ok {
				ws[i].End = ev.Cycle
			}
			count[ev.Recipe]++
			open[ev.Recipe] = len(ws)
			ws = append(ws, sanitizer.ReplayWindow{
				Recipe: ev.Recipe,
				N:      count[ev.Recipe],
				Start:  ev.Cycle,
				End:    ^uint64(0),
			})
		case microscope.EvRelease:
			if i, ok := open[ev.Recipe]; ok {
				ws[i].End = ev.Cycle
				delete(open, ev.Recipe)
			}
		}
	}
	return ws
}

// RunSpecSan assembles a rig, attaches a sanitizer seeded from the
// layout's secret declaration, arms the MicroScope module on the
// target's replay handle, runs to completion and reconciles the
// sanitizer's findings against the static scanner. The returned result
// holds all three views; callers decide what gates.
func RunSpecSan(t SanTarget, cfg SpecSanConfig) (*SpecSanResult, error) {
	lay, err := t.Build()
	if err != nil {
		return nil, err
	}
	return RunSpecSanLayout(t.Name, lay, t.Handle, cfg)
}

// RunSpecSanLayout is RunSpecSan for an arbitrary layout (fuzzed
// mutants, -asm input).
func RunSpecSanLayout(name string, lay *victim.Layout, handleSym string, cfg SpecSanConfig) (*SpecSanResult, error) {
	ccfg := cpu.DefaultConfig()
	asg := cfg.Assignment
	if asg != nil && asg.SeedSet {
		ccfg.RandSeed = asg.Seed
	}
	rig, err := NewRig(ccfg)
	if err != nil {
		return nil, err
	}

	if asg != nil && len(asg.Regs) > 0 {
		patched := *lay
		patched.Prog = asg.PatchProgram(lay.Prog)
		lay = &patched
	}
	if err := rig.InstallVictim(lay); err != nil {
		return nil, err
	}
	if asg != nil {
		for _, mv := range asg.Mems {
			var b [8]byte
			for i := range b {
				b[i] = byte(mv.Val >> (8 * uint(i)))
			}
			if err := rig.Kernel.WriteVirt(rig.Victim, mv.Addr, b[:]); err != nil {
				return nil, err
			}
		}
	}

	// Seed the shadow state from the same taint-source declaration the
	// static scanner consumes: secret-home registers and the bytes of
	// every secret region (mapped eagerly by Install above).
	san := sanitizer.New(rig.Core, sanitizer.Config{TaintRdrand: cfg.Static.TaintRdrand})
	for _, r := range lay.SecretRegs {
		san.SeedReg(0, r, r.String())
	}
	for i, name := range lay.SecretRegions {
		rng := lay.SecretMems()[i]
		if err := san.SeedMemory(rig.Victim.AddressSpace(), rng[0], rng[1], name); err != nil {
			return nil, fmt.Errorf("experiments: seeding %q: %w", name, err)
		}
	}
	rig.Core.SetShadow(san)

	handleVA, ok := lay.Symbols[handleSym]
	if !ok {
		return nil, fmt.Errorf("experiments: layout %q has no handle symbol %q", lay.Name, handleSym)
	}
	rcp := &microscope.Recipe{
		Name:           "specsan-" + lay.Name,
		Victim:         rig.Victim,
		Handle:         handleVA,
		HandlerLatency: cfg.HandlerLatency,
		MaxReplays:     cfg.Replays,
	}
	if err := rig.Module.Install(rcp); err != nil {
		return nil, err
	}

	lay.Start(rig.Kernel, 0)
	if asg != nil {
		for _, rv := range asg.Regs {
			rig.Core.Context(0).SetReg(rv.Reg, rv.Val)
		}
	}
	if err := rig.Run(cfg.MaxCycles); err != nil {
		return nil, err
	}
	san.Flush()
	windows := ReplayWindows(rig.Module.Timeline())
	san.AttributeReplays(windows)

	sec := static.Secrets{Regs: lay.SecretRegs}
	for _, r := range lay.SecretMems() {
		sec.Mems = append(sec.Mems, static.MemRange{Lo: r[0], Hi: r[1]})
	}
	rep, err := static.Analyze(lay.Name, lay.Prog, sec, cfg.Static)
	if err != nil {
		return nil, err
	}
	pts, err := static.TransmitPoints(lay.Prog, sec, cfg.Static)
	if err != nil {
		return nil, err
	}

	return &SpecSanResult{
		Target:         name,
		Sanitizer:      san,
		Findings:       san.Findings(),
		Report:         rep,
		Points:         pts,
		Reconciliation: san.Reconcile(rep, pts, 0),
		Windows:        windows,
		Replays:        rcp.Replays(),
	}, nil
}

// Channels returns the set of leak channels among the result's dynamic
// findings, the projection the witness-coverage check compares against
// verify's per-witness channel.
func (r *SpecSanResult) Channels() map[string]bool {
	out := make(map[string]bool)
	for _, f := range r.Findings {
		out[f.Channel.String()] = true
	}
	return out
}
