package experiments

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"microscope/crypto/taes"
)

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance property of the sweep layer: a parallel AES extraction
// sweep is byte-identical to the serial one for workers=1 vs workers=8.
func TestExtractionSweepWorkerInvariance(t *testing.T) {
	cfg := DefaultAESConfig()
	pts := [][]byte{TrialPlaintext(0), TrialPlaintext(1), TrialPlaintext(2)}
	serial, err := RunAESExtractionSweep(cfg, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAESExtractionSweep(cfg, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	// DeepEqual rather than a byte compare of an encoding: gob serializes
	// maps in random iteration order, which would make equal results look
	// different. The structural comparison is exact.
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("workers=8 sweep differs from workers=1 sweep")
	}
	for i, ext := range serial {
		if ok, diff := ext.Match(); !ok {
			t.Errorf("trial %d extraction mismatch: %s", i, diff)
		}
	}
}

func TestTrialPlaintext(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		pt := TrialPlaintext(i)
		if len(pt) != taes.BlockSize {
			t.Fatalf("trial %d: plaintext length %d", i, len(pt))
		}
		if !bytes.Equal(pt, TrialPlaintext(i)) {
			t.Fatalf("trial %d: not deterministic", i)
		}
		seen[string(pt)] = true
	}
	if len(seen) != 32 {
		t.Errorf("only %d distinct plaintexts in 32 trials", len(seen))
	}
}

func TestAESKeyByteSweep(t *testing.T) {
	cfg := DefaultAESConfig()
	res, err := RunAESKeyByteSweep(cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovered %d/16 nibbles, faults=%d", res.RecoveredExactly(), res.Faults)
	for b := 0; b < 16; b++ {
		// The true nibble can never be eliminated — its access happened.
		if res.Candidates[b]&(1<<uint(res.TruthHi[b])) == 0 {
			t.Errorf("byte %d: truth nibble %x eliminated (candidates %016b)",
				b, res.TruthHi[b], res.Candidates[b])
		}
	}
	if !res.Complete() {
		t.Errorf("8 trials left ambiguity: recovered %d/16, candidates %v",
			res.RecoveredExactly(), res.Candidates)
	}
	if res.Faults == 0 {
		t.Error("fault budget not accumulated")
	}

	// Worker invariance for the composite sweep as well.
	res8, err := RunAESKeyByteSweep(cfg, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunAESKeyByteSweep(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, res1), gobBytes(t, res8)) {
		t.Error("key sweep differs between workers=1 and workers=8")
	}

	if _, err := RunAESKeyByteSweep(cfg, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFig10SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial fig10 sweep")
	}
	cfg := DefaultFig10Config()
	cfg.Samples = 1500
	res, err := RunFig10Sweep(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if res.Detected < 2 {
		t.Errorf("secret detected in only %d/3 trials", res.Detected)
	}
	if res.Mul.N != 3*cfg.Samples || res.Div.N != 3*cfg.Samples {
		t.Errorf("merged sample counts %d/%d, want %d", res.Mul.N, res.Div.N, 3*cfg.Samples)
	}
	if res.Separation.N != 3 {
		t.Errorf("separation summary n=%d", res.Separation.N)
	}
	if _, err := RunFig10Sweep(cfg, 0); err == nil {
		t.Error("zero trials accepted")
	}
}
