package experiments

import (
	"testing"

	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// The fast-forward differential suite: every builtin victim is driven
// through a full replay attack twice — Config.FastForward on and off —
// and the two runs must be indistinguishable: identical pipeline event
// streams (every fetch/issue/complete/retire/squash/fault, cycle-stamped),
// identical final cycle counts, identical architectural registers and
// identical per-context statistics. This is the equivalence guarantee
// documented on Config.FastForward, checked end to end through the
// kernel, the MicroScope module, SMT contention and fault replay.

// ffDigest summarizes everything observable about one run.
type ffDigest struct {
	traceHash uint64
	events    int
	cycles    uint64
	skipped   uint64
	replays   int
	faults    int
	regs      [2][isa.NumRegs]uint64
	stats     [2]cpu.ContextStats
}

// ffScenario describes one victim attack setup.
type ffScenario struct {
	name    string
	layout  func(t *testing.T) *victim.Layout
	handle  string // symbol of the replay-handle page
	monitor bool   // schedule a port-contention monitor on SMT context 1
}

func ffScenarios() []ffScenario {
	return []ffScenario{
		{
			name:    "controlflow-mul",
			layout:  func(*testing.T) *victim.Layout { return victim.ControlFlowSecret(false) },
			handle:  "handle",
			monitor: true,
		},
		{
			name:    "controlflow-div",
			layout:  func(*testing.T) *victim.Layout { return victim.ControlFlowSecret(true) },
			handle:  "handle",
			monitor: true,
		},
		{
			name:   "singlesecret-subnormal",
			layout: func(*testing.T) *victim.Layout { return victim.SingleSecret(7, true) },
			handle: "count",
		},
		{
			name:   "loopsecret",
			layout: func(*testing.T) *victim.Layout { return victim.LoopSecret([]byte{1, 2, 3}) },
			handle: "handle",
		},
		{
			name: "aes",
			layout: func(t *testing.T) *victim.Layout {
				key := []byte("0123456789abcdef")
				ct := []byte("fedcba9876543210")
				v, err := victim.NewAESVictim(key, ct)
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			handle: "rk",
		},
		{
			name: "modexp",
			layout: func(t *testing.T) *victim.Layout {
				v, err := victim.NewModExpVictim(777, 0xA5A5, 99991, 16)
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			handle: "handle",
		},
		{
			name:   "rdrand-bias",
			layout: func(*testing.T) *victim.Layout { return victim.RdrandBias() },
			handle: "handle",
		},
	}
}

// runFFScenario mounts the scenario with the given FastForward setting
// and digests the run.
func runFFScenario(t *testing.T, sc ffScenario, fastForward bool) ffDigest {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.FastForward = fastForward
	// Jitter on: per-instruction timing noise must survive skipping too.
	cfg.JitterPeriod = 901
	cfg.JitterExtra = 150

	rig, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vic := sc.layout(t)
	if err := rig.InstallVictim(vic); err != nil {
		t.Fatal(err)
	}
	var mon *victim.Layout
	if sc.monitor {
		mon = monitor.PortContention(64, 2)
		if err := rig.AddMonitor(mon); err != nil {
			t.Fatal(err)
		}
	}

	rec := &microscope.Recipe{
		Name:           "ffequiv-" + sc.name,
		Victim:         rig.Victim,
		Handle:         vic.Sym(sc.handle),
		HandlerLatency: 20_000, // stall-heavy: most of the run is skippable
		MaxReplays:     8,
	}
	if sc.monitor {
		// Fig. 10 shape: keep replaying until the monitor finishes its
		// measurement run (a state-based condition, identical under skip).
		rec.OnReplay = func(microscope.Event) microscope.Decision {
			if rig.Core.Context(1).Halted() {
				return microscope.Release
			}
			return microscope.Replay
		}
	}
	if err := rig.Module.Install(rec); err != nil {
		t.Fatal(err)
	}

	h := trace.NewHasher()
	rig.Core.SetTracer(h)

	vic.Start(rig.Kernel, 0)
	if mon != nil {
		mon.Start(rig.Kernel, 1)
	}
	if err := rig.Run(5_000_000); err != nil {
		t.Fatalf("fastForward=%v: %v", fastForward, err)
	}

	d := ffDigest{
		traceHash: h.Sum64(),
		events:    int(h.Events()),
		cycles:    rig.Core.Cycle(),
		skipped:   rig.Core.SkippedCycles(),
		replays:   rec.Replays(),
		faults:    rec.TotalFaults(),
	}
	for i := 0; i < rig.Core.Contexts() && i < 2; i++ {
		ctx := rig.Core.Context(i)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			d.regs[i][r] = ctx.Reg(r)
		}
		s := ctx.Stats()
		s.SkippedCycles = 0 // the only field allowed to differ
		d.stats[i] = s
	}
	return d
}

func TestFastForwardEquivalence(t *testing.T) {
	for _, sc := range ffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			on := runFFScenario(t, sc, true)
			off := runFFScenario(t, sc, false)

			if off.skipped != 0 {
				t.Errorf("skip-off run skipped %d cycles", off.skipped)
			}
			if on.skipped == 0 {
				t.Errorf("skip-on run skipped nothing: the scenario does not exercise fast-forward")
			}
			if on.traceHash != off.traceHash || on.events != off.events {
				t.Errorf("trace diverges: %d events hash %#x (on) vs %d events hash %#x (off)",
					on.events, on.traceHash, off.events, off.traceHash)
			}
			if on.cycles != off.cycles {
				t.Errorf("final cycle diverges: %d (on) vs %d (off)", on.cycles, off.cycles)
			}
			if on.replays != off.replays || on.faults != off.faults {
				t.Errorf("replay counts diverge: %d/%d (on) vs %d/%d (off)",
					on.replays, on.faults, off.replays, off.faults)
			}
			for i := range on.regs {
				if on.regs[i] != off.regs[i] {
					t.Errorf("context %d registers diverge:\n on: %v\noff: %v",
						i, on.regs[i], off.regs[i])
				}
				if on.stats[i] != off.stats[i] {
					t.Errorf("context %d stats diverge:\n on: %+v\noff: %+v",
						i, on.stats[i], off.stats[i])
				}
			}
		})
	}
}
