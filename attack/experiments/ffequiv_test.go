package experiments

import (
	"testing"

	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// The fast-forward differential suite: every builtin victim is driven
// through a full replay attack twice — Config.FastForward on and off —
// and the two runs must be indistinguishable: identical pipeline event
// streams (every fetch/issue/complete/retire/squash/fault, cycle-stamped),
// identical final cycle counts, identical architectural registers and
// identical per-context statistics. This is the equivalence guarantee
// documented on Config.FastForward, checked end to end through the
// kernel, the MicroScope module, SMT contention and fault replay.

// ffDigest summarizes everything observable about one run.
type ffDigest struct {
	traceHash uint64
	events    int
	cycles    uint64
	skipped   uint64
	replays   int
	faults    int
	regs      [2][isa.NumRegs]uint64
	stats     [2]cpu.ContextStats
	memo      cpu.MemoStats
}

// ffAssertEqual requires two runs of the same scenario to be
// observationally identical (trace hash, cycles, replays, registers,
// statistics); skipped-cycle totals and memo statistics are compared by
// the individual suites, which control the respective features.
func ffAssertEqual(t *testing.T, on, off ffDigest, onLabel, offLabel string) {
	t.Helper()
	if on.traceHash != off.traceHash || on.events != off.events {
		t.Errorf("trace diverges: %d events hash %#x (%s) vs %d events hash %#x (%s)",
			on.events, on.traceHash, onLabel, off.events, off.traceHash, offLabel)
	}
	if on.cycles != off.cycles {
		t.Errorf("final cycle diverges: %d (%s) vs %d (%s)", on.cycles, onLabel, off.cycles, offLabel)
	}
	if on.replays != off.replays || on.faults != off.faults {
		t.Errorf("replay counts diverge: %d/%d (%s) vs %d/%d (%s)",
			on.replays, on.faults, onLabel, off.replays, off.faults, offLabel)
	}
	for i := range on.regs {
		if on.regs[i] != off.regs[i] {
			t.Errorf("context %d registers diverge:\n %s: %v\n%s: %v",
				i, onLabel, on.regs[i], offLabel, off.regs[i])
		}
		if on.stats[i] != off.stats[i] {
			t.Errorf("context %d stats diverge:\n %s: %+v\n%s: %+v",
				i, onLabel, on.stats[i], offLabel, off.stats[i])
		}
	}
}

// ffScenario describes one victim attack setup.
type ffScenario struct {
	name    string
	layout  func(t *testing.T) *victim.Layout
	handle  string // symbol of the replay-handle page
	monitor bool   // schedule a port-contention monitor on SMT context 1
	rng     bool   // victim draws rdrand: every window starts from a new RNG state
}

func ffScenarios() []ffScenario {
	return []ffScenario{
		{
			name:    "controlflow-mul",
			layout:  func(*testing.T) *victim.Layout { return victim.ControlFlowSecret(false) },
			handle:  "handle",
			monitor: true,
		},
		{
			name:    "controlflow-div",
			layout:  func(*testing.T) *victim.Layout { return victim.ControlFlowSecret(true) },
			handle:  "handle",
			monitor: true,
		},
		{
			name:   "singlesecret-subnormal",
			layout: func(*testing.T) *victim.Layout { return victim.SingleSecret(7, true) },
			handle: "count",
		},
		{
			name:   "loopsecret",
			layout: func(*testing.T) *victim.Layout { return victim.LoopSecret([]byte{1, 2, 3}) },
			handle: "handle",
		},
		{
			name: "aes",
			layout: func(t *testing.T) *victim.Layout {
				key := []byte("0123456789abcdef")
				ct := []byte("fedcba9876543210")
				v, err := victim.NewAESVictim(key, ct)
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			handle: "rk",
		},
		{
			name: "modexp",
			layout: func(t *testing.T) *victim.Layout {
				v, err := victim.NewModExpVictim(777, 0xA5A5, 99991, 16)
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			handle: "handle",
		},
		{
			name:   "rdrand-bias",
			layout: func(*testing.T) *victim.Layout { return victim.RdrandBias() },
			handle: "handle",
			rng:    true,
		},
	}
}

// ffJitterConfig is the base configuration of the fast-forward suite:
// per-instruction timing noise on, so equivalence must survive it.
func ffJitterConfig() cpu.Config {
	cfg := cpu.DefaultConfig()
	cfg.JitterPeriod = 901
	cfg.JitterExtra = 150
	return cfg
}

// runFFScenario mounts the scenario under the given core configuration
// and digests the run.
func runFFScenario(t *testing.T, sc ffScenario, cfg cpu.Config) ffDigest {
	t.Helper()
	rig, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vic := sc.layout(t)
	if err := rig.InstallVictim(vic); err != nil {
		t.Fatal(err)
	}
	var mon *victim.Layout
	if sc.monitor {
		mon = monitor.PortContention(64, 2)
		if err := rig.AddMonitor(mon); err != nil {
			t.Fatal(err)
		}
	}

	rec := &microscope.Recipe{
		Name:           "ffequiv-" + sc.name,
		Victim:         rig.Victim,
		Handle:         vic.Sym(sc.handle),
		HandlerLatency: 20_000, // stall-heavy: most of the run is skippable
		MaxReplays:     8,
	}
	if sc.monitor {
		// Fig. 10 shape: keep replaying until the monitor finishes its
		// measurement run (a state-based condition, identical under skip).
		rec.OnReplay = func(microscope.Event) microscope.Decision {
			if rig.Core.Context(1).Halted() {
				return microscope.Release
			}
			return microscope.Replay
		}
	}
	if err := rig.Module.Install(rec); err != nil {
		t.Fatal(err)
	}

	h := trace.NewHasher()
	rig.Core.SetTracer(h)

	vic.Start(rig.Kernel, 0)
	if mon != nil {
		mon.Start(rig.Kernel, 1)
	}
	if err := rig.Run(5_000_000); err != nil {
		t.Fatalf("fastForward=%v replayMemo=%v: %v", cfg.FastForward, cfg.ReplayMemo, err)
	}

	d := ffDigest{
		traceHash: h.Sum64(),
		events:    int(h.Events()),
		cycles:    rig.Core.Cycle(),
		skipped:   rig.Core.SkippedCycles(),
		replays:   rec.Replays(),
		faults:    rec.TotalFaults(),
		memo:      rig.Core.MemoStats(),
	}
	for i := 0; i < rig.Core.Contexts() && i < 2; i++ {
		ctx := rig.Core.Context(i)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			d.regs[i][r] = ctx.Reg(r)
		}
		s := ctx.Stats()
		s.SkippedCycles = 0 // the only field allowed to differ
		d.stats[i] = s
	}
	return d
}

func TestFastForwardEquivalence(t *testing.T) {
	for _, sc := range ffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			onCfg := ffJitterConfig()
			onCfg.FastForward = true
			offCfg := ffJitterConfig()
			offCfg.FastForward = false
			on := runFFScenario(t, sc, onCfg)
			off := runFFScenario(t, sc, offCfg)

			if off.skipped != 0 {
				t.Errorf("skip-off run skipped %d cycles", off.skipped)
			}
			if on.skipped == 0 {
				t.Errorf("skip-on run skipped nothing: the scenario does not exercise fast-forward")
			}
			if on.skipped != off.skipped && off.skipped != 0 {
				t.Errorf("skipped cycles diverge: %d (on) vs %d (off)", on.skipped, off.skipped)
			}
			ffAssertEqual(t, on, off, " on", "off")
		})
	}
}

// TestMemoEquivalence is the replay-splice analogue of the fast-forward
// suite: every builtin victim runs the full attack with Config.ReplayMemo
// on and off, and the runs must be observationally identical. Jitter is
// disabled here so the steady-state replay loop actually revisits
// fingerprints: solo (non-monitor) scenarios must then splice at least
// one window, proving the cache engages end to end through the kernel and
// the MicroScope module. Monitor scenarios keep a second context live, so
// the solo gate keeps the memo idle there — asserted too.
func TestMemoEquivalence(t *testing.T) {
	for _, sc := range ffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			onCfg := cpu.DefaultConfig()
			onCfg.ReplayMemo = true
			offCfg := cpu.DefaultConfig()
			offCfg.ReplayMemo = false
			on := runFFScenario(t, sc, onCfg)
			off := runFFScenario(t, sc, offCfg)

			if off.memo != (cpu.MemoStats{}) {
				t.Errorf("memo-off run has memo activity: %+v", off.memo)
			}
			switch {
			case sc.monitor:
				if on.memo.Hits != 0 {
					t.Errorf("memo spliced %d windows with a live SMT monitor (solo gate breached): %+v",
						on.memo.Hits, on.memo)
				}
			case sc.rng:
				// Each replay window consumes rdrand draws, so every window
				// starts from a fresh RNG state and fingerprints never
				// repeat — misses are the correct behavior here.
				if on.memo.Hits != 0 {
					t.Errorf("memo spliced %d windows despite per-window RNG advance: %+v",
						on.memo.Hits, on.memo)
				}
				if on.memo.Misses == 0 {
					t.Errorf("rng victim never probed the memo: %+v", on.memo)
				}
			case on.memo.Hits == 0:
				t.Errorf("memo never spliced in a solo replay loop: %+v", on.memo)
			}
			if on.skipped != off.skipped {
				t.Errorf("skipped cycles diverge: %d (on) vs %d (off)", on.skipped, off.skipped)
			}
			ffAssertEqual(t, on, off, " on", "off")
		})
	}
}

// TestMemoEquivalenceUnderJitter repeats the differential with the
// fast-forward suite's jitter schedule. Jitter phases walk the window
// fingerprint, so splices are rare-to-absent here — the point is purely
// that whatever the memo does under timing noise stays invisible.
func TestMemoEquivalenceUnderJitter(t *testing.T) {
	for _, sc := range ffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			onCfg := ffJitterConfig()
			onCfg.ReplayMemo = true
			offCfg := ffJitterConfig()
			offCfg.ReplayMemo = false
			on := runFFScenario(t, sc, onCfg)
			off := runFFScenario(t, sc, offCfg)
			if on.skipped != off.skipped {
				t.Errorf("skipped cycles diverge: %d (on) vs %d (off)", on.skipped, off.skipped)
			}
			ffAssertEqual(t, on, off, " on", "off")
		})
	}
}
