package experiments

import (
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/mem"
)

// ModExpResult is the square-and-multiply key-extraction outcome: the
// secret exponent recovered bit by bit from a single logical run.
type ModExpResult struct {
	TrueExp      uint64
	RecoveredExp uint64
	Bits         int
	Faults       int
	// ResultOK: the victim still computed base^exp mod m correctly.
	ResultOK bool
}

// Match reports whether every exponent bit was recovered.
func (r *ModExpResult) Match() bool { return r.TrueExp == r.RecoveredExp }

// RunModExp mounts the RSA-style attack: the per-iteration handle load is
// replayed with a prime+probe of the iteration's multiply-path line, and
// the pivot steps the victim one iteration forward — the Loop Secret
// pattern of §4.2.2 applied to modular exponentiation.
func RunModExp(base, exp, mod uint64, bits int) (*ModExpResult, error) {
	vic, err := victim.NewModExpVictim(base, exp, mod, bits)
	if err != nil {
		return nil, err
	}
	rig, err := NewRig(cpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := rig.InstallVictim(vic.Layout); err != nil {
		return nil, err
	}

	res := &ModExpResult{TrueExp: exp, Bits: bits}
	probeLines := make([]mem.Addr, bits)
	for i := range probeLines {
		probeLines[i] = vic.ProbeLineVA(i)
	}

	var attackErr error
	iteration := 0
	arrival := 0
	rec := &microscope.Recipe{
		Name:   "modexp",
		Victim: rig.Victim,
		Handle: vic.Sym("handle"),
		Pivot:  vic.Sym("pivot"),
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.Faults++
		if ev.OnPivot {
			iteration++
			if iteration >= bits {
				return microscope.Release
			}
			return microscope.Pivot
		}
		// The iteration's secret branch starts in an unknown predictor
		// state: a cold not-taken prediction would speculate down the
		// multiply path and pollute the probe line even for a 0 bit
		// (§4.2.3 "Prediction"). The first replays train the predictor to
		// the actual direction — a *known* state — and only then is the
		// window's footprint probed.
		const trainingReplays = 3
		if arrival < trainingReplays {
			arrival++
			if err := rig.Module.PrimeAddrs(rig.Victim, probeLines); err != nil {
				attackErr = err
				return microscope.Release
			}
			return microscope.Replay
		}
		arrival = 0
		prs, err := rig.Module.ProbeAddrs(rig.Victim,
			[]mem.Addr{vic.ProbeLineVA(iteration)})
		if err != nil {
			attackErr = err
			return microscope.Release
		}
		if prs[0].Level != cache.LevelMem {
			res.RecoveredExp |= 1 << uint(bits-1-iteration)
		}
		return microscope.Pivot
	}
	if err := rig.Module.Install(rec); err != nil {
		return nil, err
	}
	vic.Start(rig.Kernel, 0)
	if err := rig.Run(200_000_000); err != nil {
		return nil, err
	}
	if attackErr != nil {
		return nil, attackErr
	}

	out, err := rig.Victim.AddressSpace().Read64Virt(vic.Sym("out"))
	if err != nil {
		return nil, err
	}
	res.ResultOK = out == vic.ModExpResult()
	if !res.ResultOK {
		return res, fmt.Errorf("experiments: victim computed %d, want %d", out, vic.ModExpResult())
	}
	return res, nil
}
