package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/snapshot"
	"microscope/sim/trace"
)

// The snapshot differential suite, the restore-side mirror of
// ffequiv_test.go: every builtin victim is driven through a full replay
// attack three ways —
//
//	A: one uninterrupted Run;
//	B: the same run chunked, with a whole-machine checkpoint taken at
//	   the midpoint (snapshotting must not perturb the run);
//	C: a fresh rig booted from B's midpoint checkpoint and run to
//	   completion, its trace hash seeded from B's midpoint hash state.
//
// A and B must agree on everything observable except the fast-forward
// skip accounting (chunk boundaries can force a step where an
// uninterrupted run would skip — the same allowance ffequiv makes), and
// C must equal B *exactly*: Restore(snap); Run(n) is bit-identical to
// the original run continuing past the capture point.

// snapDigest summarizes everything observable about one run.
type snapDigest struct {
	traceHash uint64
	events    uint64
	cycles    uint64
	skipped   uint64
	replays   int
	faults    int
	regs      [2][isa.NumRegs]uint64
	stats     [2]cpu.ContextStats
}

func digestRig(rig *Rig, h *trace.Hasher, rec *microscope.Recipe) snapDigest {
	d := snapDigest{
		traceHash: h.Sum64(),
		events:    h.Events(),
		cycles:    rig.Core.Cycle(),
		skipped:   rig.Core.SkippedCycles(),
		replays:   rec.Replays(),
		faults:    rec.TotalFaults(),
	}
	for i := 0; i < rig.Core.Contexts() && i < 2; i++ {
		ctx := rig.Core.Context(i)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			d.regs[i][r] = ctx.Reg(r)
		}
		d.stats[i] = ctx.Stats()
	}
	return d
}

// zeroSkips returns the digest with the fast-forward skip accounting
// cleared (the only state chunked running may legitimately change).
func (d snapDigest) zeroSkips() snapDigest {
	d.skipped = 0
	for i := range d.stats {
		d.stats[i].SkippedCycles = 0
	}
	return d
}

const snapBudget = 5_000_000

// mountSnapScenario assembles the scenario's rig with recipe installed
// and programs started, tracer attached, ready to run.
func mountSnapScenario(t *testing.T, sc ffScenario) (*Rig, *trace.Hasher, *microscope.Recipe) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.JitterPeriod = 901
	cfg.JitterExtra = 150

	rig, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vic := sc.layout(t)
	if err := rig.InstallVictim(vic); err != nil {
		t.Fatal(err)
	}
	var mon *victim.Layout
	if sc.monitor {
		mon = monitor.PortContention(64, 2)
		if err := rig.AddMonitor(mon); err != nil {
			t.Fatal(err)
		}
	}
	rec := &microscope.Recipe{
		Name:           "snap-" + sc.name,
		Victim:         rig.Victim,
		Handle:         vic.Sym(sc.handle),
		HandlerLatency: 20_000,
		MaxReplays:     8,
	}
	if sc.monitor {
		rec.OnReplay = monitorRelease(rig)
	}
	if err := rig.Module.Install(rec); err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	rig.Core.SetTracer(h)
	vic.Start(rig.Kernel, 0)
	if mon != nil {
		mon.Start(rig.Kernel, 1)
	}
	return rig, h, rec
}

// monitorRelease is the Fig. 10-shaped callback: replay until the
// monitor context halts. It closes over the rig, so a restored recipe
// needs a fresh binding against the restored rig (callbacks are host
// code and never serialized).
func monitorRelease(rig *Rig) func(microscope.Event) microscope.Decision {
	return func(microscope.Event) microscope.Decision {
		if rig.Core.Context(1).Halted() {
			return microscope.Release
		}
		return microscope.Replay
	}
}

// runSnapScenario runs the A/B/C triple for one scenario at the given
// midpoint and returns their digests. k = 0 places the checkpoint
// mid-run automatically (half of A's cycle count).
func runSnapScenario(t *testing.T, sc ffScenario, k uint64) (a, b, c snapDigest) {
	t.Helper()

	// A: uninterrupted.
	rigA, hA, recA := mountSnapScenario(t, sc)
	if err := rigA.Run(snapBudget); err != nil {
		t.Fatalf("run A: %v", err)
	}
	a = digestRig(rigA, hA, recA)

	if k == 0 {
		k = a.cycles / 2
	}
	if k == 0 {
		t.Fatalf("scenario finished in %d cycles; nothing to checkpoint", a.cycles)
	}

	// B: chunked, checkpoint at cycle k.
	rigB, hB, recB := mountSnapScenario(t, sc)
	rigB.Core.Run(k)
	cp, err := rigB.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	midSum, midEvents := hB.Sum64(), hB.Events()
	if err := rigB.Run(snapBudget); err != nil {
		t.Fatalf("run B: %v", err)
	}
	b = digestRig(rigB, hB, recB)

	// C: fork from the midpoint checkpoint and run to completion,
	// continuing B's hash chain.
	rigC, err := cp.Boot()
	if err != nil {
		t.Fatalf("boot from checkpoint: %v", err)
	}
	recC := rigC.Module.Recipe("snap-" + sc.name)
	if recC == nil {
		t.Fatalf("restored module lost recipe %q", "snap-"+sc.name)
	}
	if sc.monitor {
		recC.OnReplay = monitorRelease(rigC)
	}
	hC := trace.ResumeHasher(midSum, midEvents)
	rigC.Core.SetTracer(hC)
	if err := rigC.Run(snapBudget); err != nil {
		t.Fatalf("run C: %v", err)
	}
	c = digestRig(rigC, hC, recC)
	return a, b, c
}

func TestSnapshotRestoreBitIdentity(t *testing.T) {
	for _, sc := range ffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			a, b, c := runSnapScenario(t, sc, 0)

			// Chunking + snapshotting must not perturb the run (skip
			// accounting aside).
			if a.zeroSkips() != b.zeroSkips() {
				t.Errorf("checkpointed run diverges from uninterrupted run:\nA: %+v\nB: %+v",
					a.zeroSkips(), b.zeroSkips())
			}
			// Restore + re-run must be bit-identical to the original run
			// continuing — including the skip accounting.
			if b != c {
				t.Errorf("restored run diverges from original:\nB: %+v\nC: %+v", b, c)
			}
			if b.traceHash != c.traceHash {
				t.Errorf("trace hash chain broken across restore: %#x vs %#x", b.traceHash, c.traceHash)
			}
		})
	}
}

// FuzzSnapshotResume snapshots a run at an arbitrary cycle and checks
// the restored continuation stays bit-identical, over every builtin
// victim scenario.
func FuzzSnapshotResume(f *testing.F) {
	scenarios := ffScenarios()
	f.Add(uint(0), uint64(1_000))
	f.Add(uint(2), uint64(50_000))
	f.Add(uint(4), uint64(123_457))
	f.Add(uint(6), uint64(77))
	f.Fuzz(func(t *testing.T, scIdx uint, k uint64) {
		sc := scenarios[int(scIdx)%len(scenarios)]
		if k == 0 {
			k = 1
		}
		k %= 400_000 // keep the triple-run cheap
		if k == 0 {
			k = 1
		}
		_, b, c := runSnapScenario(t, sc, k)
		if b != c {
			t.Errorf("%s @%d: restored run diverges:\nB: %+v\nC: %+v", sc.name, k, b, c)
		}
	})
}

// The forked sweeps must be byte-identical to their cold-boot reference
// implementations, for any worker count.
func TestForkedAESSweepMatchesColdBoot(t *testing.T) {
	cfg := DefaultAESConfig()
	pts := [][]byte{TrialPlaintext(0), TrialPlaintext(1), TrialPlaintext(2)}
	cold, err := RunAESExtractionSweepColdBoot(cfg, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		fork, err := RunAESExtractionSweep(cfg, pts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, fork) {
			t.Fatalf("workers=%d: forked sweep diverges from cold boot", workers)
		}
	}
}

func TestForkedFig10SweepMatchesColdBoot(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Samples = 300 // keep the four-trial comparison cheap
	cold, err := RunFig10SweepColdBoot(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		c := cfg
		c.Workers = workers
		fork, err := RunFig10Sweep(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Workers is carried inside each trial's result config; align it
		// before comparing (it never affects simulated results).
		for i := range fork.Trials {
			fork.Trials[i].Config.Workers = cold.Trials[i].Config.Workers
		}
		if !reflect.DeepEqual(cold, fork) {
			t.Fatalf("workers=%d: forked fig10 sweep diverges from cold boot", workers)
		}
	}
}

// Rig.Fork must produce an independent copy: diverging the fork must
// not disturb the original, and a checkpoint diffed against itself
// after a round of mutation-and-restore is empty.
func TestRigForkIndependence(t *testing.T) {
	cfg := DefaultAESConfig()
	ar, _, err := newAESRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ar.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := ar.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Diverge the fork: scribble over the victim's in page and run it.
	if err := fork.Victim.AddressSpace().WriteVirt(victim.AESInVA, bytes.Repeat([]byte{0xAB}, 16)); err != nil {
		t.Fatal(err)
	}
	forkSnap, err := fork.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := snapshot.Diff(cp.Machine, forkSnap.Machine); len(diffs) == 0 {
		t.Fatal("diverged fork still diffs clean against the original checkpoint")
	}
	// The original must be untouched.
	origSnap, err := ar.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := snapshot.Diff(cp.Machine, origSnap.Machine); len(diffs) != 0 {
		t.Fatalf("running the fork disturbed the original rig: %v", diffs)
	}
	// And restoring the fork from the original checkpoint erases the
	// divergence completely.
	if err := fork.Restore(cp); err != nil {
		t.Fatal(err)
	}
	restoredSnap, err := fork.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := snapshot.Diff(cp.Machine, restoredSnap.Machine); len(diffs) != 0 {
		t.Fatalf("restore left residue: %v", diffs)
	}
}
