package experiments

import (
	"testing"
)

func TestFig10PortContention(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10k-sample run")
	}
	cfg := DefaultFig10Config()
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("threshold=%d mulOver=%d divOver=%d separation=%.1fx replays(mul=%d div=%d)",
		res.Threshold, res.MulOver, res.DivOver, res.SeparationX,
		res.Mul.Replays, res.Div.Replays)

	if len(res.Mul.Samples) != cfg.Samples || len(res.Div.Samples) != cfg.Samples {
		t.Fatalf("sample counts %d/%d", len(res.Mul.Samples), len(res.Div.Samples))
	}
	// Paper shape: the div side has an order of magnitude more
	// over-threshold samples (16x in the paper), and both counts are a
	// small fraction of the 10,000 samples (most samples land during
	// fault handling).
	if !res.SecretDetected() {
		t.Errorf("separation %.1fx too small to detect the secret", res.SeparationX)
	}
	if res.DivOver < 10 {
		t.Errorf("divOver = %d; contention channel too weak", res.DivOver)
	}
	if res.DivOver > cfg.Samples/10 {
		t.Errorf("divOver = %d; contention implausibly frequent", res.DivOver)
	}
	if res.MulOver > 100 {
		t.Errorf("mulOver = %d; quiet side too noisy", res.MulOver)
	}
	// The victim replayed many times in each single logical run.
	if res.Mul.Replays < 50 || res.Div.Replays < 50 {
		t.Errorf("replays = %d/%d; replay engine not sustained",
			res.Mul.Replays, res.Div.Replays)
	}
}

func TestFig11AESReplays(t *testing.T) {
	res, err := RunFig11(DefaultAESConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replay0 bands=%d truth=%016b extracted=%016b/%016b",
		res.Replay0Bands, res.Truth, res.Extracted[0], res.Extracted[1])

	// Paper shape: replay 0 (unprimed) spans several hierarchy levels;
	// replays 1 and 2 (primed) are clean, identical, and match ground
	// truth exactly.
	if res.Replay0Bands < 2 {
		t.Errorf("replay 0 spans %d bands, want >= 2", res.Replay0Bands)
	}
	if !res.Consistent() {
		t.Errorf("primed replays inconsistent or wrong: %016b / %016b vs truth %016b",
			res.Extracted[0], res.Extracted[1], res.Truth)
	}
	if res.Truth == 0 || res.Truth == 0xffff {
		t.Errorf("degenerate truth mask %016b", res.Truth)
	}
}

func TestAESFullTraceExtraction(t *testing.T) {
	res, err := RunAESExtraction(DefaultAESConfig())
	if err != nil {
		t.Fatal(err)
	}
	ok, diff := res.Match()
	if !ok {
		t.Errorf("extraction mismatch: %s", diff)
	}
	if !res.PlaintextOK {
		t.Error("victim did not produce correct plaintext after the attack")
	}
	t.Logf("rounds=%d faults=%d", res.Rounds, res.Faults)
	if res.Faults == 0 || res.Faults > 500 {
		t.Errorf("fault count %d implausible", res.Faults)
	}
}

func TestAESExtractionOtherKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple extraction runs")
	}
	for _, tc := range []struct {
		key, pt string
	}{
		{"fedcba9876543210", "sixteen byte msg"},
		{"AAAAAAAAAAAAAAAA", "0000000000000000"},
		// AES-192 (12 rounds) and AES-256 (14 rounds): the stepping
		// machinery must track the longer schedules.
		{"abcdefghijklmnopqrstuvwx", "sixteen byte msg"},
		{"abcdefghijklmnopqrstuvwxyz012345", "sixteen byte msg"},
	} {
		cfg := DefaultAESConfig()
		cfg.Key = []byte(tc.key)
		cfg.Plaintext = []byte(tc.pt)
		res, err := RunAESExtraction(cfg)
		if err != nil {
			t.Fatalf("key %q: %v", tc.key, err)
		}
		if ok, diff := res.Match(); !ok {
			t.Errorf("key %q: %s", tc.key, diff)
		}
		if !res.PlaintextOK {
			t.Errorf("key %q: wrong plaintext", tc.key)
		}
	}
}

func TestAESConfigValidation(t *testing.T) {
	cfg := DefaultAESConfig()
	cfg.Plaintext = []byte("short")
	if _, err := RunFig11(cfg); err == nil {
		t.Error("short plaintext accepted by RunFig11")
	}
	if _, err := RunAESExtraction(cfg); err == nil {
		t.Error("short plaintext accepted by RunAESExtraction")
	}
	cfg = DefaultAESConfig()
	cfg.Key = []byte("badlen")
	if _, err := RunFig11(cfg); err == nil {
		t.Error("bad key length accepted")
	}
}

func TestModExpValidation(t *testing.T) {
	if _, err := RunModExp(5, 3, 7, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := RunModExp(5, 3, 1<<21, 4); err == nil {
		t.Error("oversized modulus accepted")
	}
	if _, err := RunModExp(50, 3, 7, 4); err == nil {
		t.Error("base >= mod accepted")
	}
	if _, err := RunModExp(5, 0xFFFF, 7, 4); err == nil {
		t.Error("exponent wider than bits accepted")
	}
}

func TestLinesOf(t *testing.T) {
	got := LinesOf(0b1000000000000101)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 15 {
		t.Errorf("LinesOf = %v", got)
	}
	if LinesOf(0) != nil {
		t.Error("LinesOf(0) not nil")
	}
}

func TestFig11OtherKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple fig11 runs")
	}
	for _, tc := range []struct{ key, pt string }{
		{"fedcba9876543210", "sixteen byte msg"},
		{"abcdefghijklmnopqrstuvwxyz012345", "another 16B blk!"}, // AES-256
	} {
		cfg := DefaultAESConfig()
		cfg.Key = []byte(tc.key)
		cfg.Plaintext = []byte(tc.pt)
		res, err := RunFig11(cfg)
		if err != nil {
			t.Fatalf("key %q: %v", tc.key, err)
		}
		if !res.Consistent() {
			t.Errorf("key %q: extracted %016b/%016b vs truth %016b",
				tc.key, res.Extracted[0], res.Extracted[1], res.Truth)
		}
	}
}
