package experiments

import (
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
)

// SubnormalResult reports the Fig. 5 attack: detecting whether a single
// floating-point divide received a subnormal input, by denoising the
// divider-occupancy channel across replays of getSecret.
type SubnormalResult struct {
	// Samples are the monitor's latency measurements for the subnormal
	// and normal victims.
	NormalSamples    []uint64
	SubnormalSamples []uint64
	// Threshold separates contended from uncontended samples; both
	// victims contend equally often (one divide per replay window).
	Threshold     uint64
	NormalOver    int
	SubnormalOver int
	// HighThreshold sits above the strongest contention a *normal*
	// divide can cause; only the subnormal divide's ~6x-longer occupancy
	// pushes samples past it.
	HighThreshold uint64
	NormalHigh    int
	SubnormalHigh int
	MaxNormal     uint64
	MaxSubnormal  uint64
}

// Detected reports the verdict: subnormal inputs produce dramatically
// longer contention events (the magnitude, not the rate, is the signal).
func (r *SubnormalResult) Detected() bool {
	return r.SubnormalHigh > 3 && r.NormalHigh == 0 && r.MaxSubnormal > r.MaxNormal
}

// RunSubnormal runs the Fig. 5 single-secret attack for both a normal and
// a subnormal secrets[id], replaying the victim while an SMT monitor
// measures division latencies.
func RunSubnormal(samples int) (*SubnormalResult, error) {
	run := func(subnormal bool) ([]uint64, error) {
		rig, err := NewRig(cpu.DefaultConfig())
		if err != nil {
			return nil, err
		}
		vic := victim.SingleSecret(7, subnormal)
		if err := rig.InstallVictim(vic); err != nil {
			return nil, err
		}
		mon := monitor.PortContention(samples, 2)
		if err := rig.AddMonitor(mon); err != nil {
			return nil, err
		}
		rec := &microscope.Recipe{
			Name:           "fig5",
			Victim:         rig.Victim,
			Handle:         vic.Sym("count"),
			HandlerLatency: 5_000,
		}
		rec.OnReplay = func(ev microscope.Event) microscope.Decision {
			if rig.Core.Context(1).Halted() {
				return microscope.Release
			}
			return microscope.Replay
		}
		if err := rig.Module.Install(rec); err != nil {
			return nil, err
		}
		vic.Start(rig.Kernel, 0)
		mon.Start(rig.Kernel, 1)
		if err := rig.Run(uint64(samples)*2_000 + 10_000_000); err != nil {
			return nil, err
		}
		return monitor.ReadSamples(rig.Monitor, samples)
	}

	normal, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("normal victim: %w", err)
	}
	sub, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("subnormal victim: %w", err)
	}
	res := &SubnormalResult{NormalSamples: normal, SubnormalSamples: sub}
	res.Threshold = sidechan.CalibrateThreshold(normal, 0.99, 8)
	res.NormalOver = sidechan.Classify(normal, res.Threshold).Over
	res.SubnormalOver = sidechan.Classify(sub, res.Threshold).Over
	for _, s := range normal {
		if s > res.MaxNormal {
			res.MaxNormal = s
		}
	}
	for _, s := range sub {
		if s > res.MaxSubnormal {
			res.MaxSubnormal = s
		}
	}
	res.HighThreshold = res.MaxNormal + 10
	res.NormalHigh = sidechan.Classify(normal, res.HighThreshold).Over
	res.SubnormalHigh = sidechan.Classify(sub, res.HighThreshold).Over
	return res, nil
}

// DenoiseCurve measures how classification confidence grows with replay
// count for the control-flow-secret victim: each replay contributes one
// boolean observation ("was divider occupancy seen this window?"), and
// the attack majority-votes over them — the generic denoising loop of
// §4.1.4 steps 2–5.
type DenoiseCurve struct {
	// Observations[i] is the per-replay verdict for replay i+1.
	Observations []bool
	// ReplaysTo90 is the number of replays after which the majority vote
	// first reaches 90% confidence (-1 if never).
	ReplaysTo90 int
	// Verdict is the final majority decision; Truth the actual secret.
	Verdict bool
	Truth   bool
}

// RunDenoise runs the denoising loop for the given secret with the given
// replay budget.
func RunDenoise(secret bool, replays int) (*DenoiseCurve, error) {
	rig, err := NewRig(cpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := rig.InstallVictim(vic); err != nil {
		return nil, err
	}
	res := &DenoiseCurve{Truth: secret}
	var lastBusy uint64
	rec := &microscope.Recipe{
		Name:       "denoise",
		Victim:     rig.Victim,
		Handle:     vic.Sym("handle"),
		MaxReplays: replays,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		busy := rig.Core.Ports().DivBusyCycles
		res.Observations = append(res.Observations, busy > lastBusy)
		lastBusy = busy
		if ev.Replays >= replays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		return nil, err
	}
	vic.Start(rig.Kernel, 0)
	if err := rig.Run(100_000_000); err != nil {
		return nil, err
	}
	res.Verdict, _ = sidechan.MajorityVote(res.Observations)
	res.ReplaysTo90 = sidechan.ReplaysToConfidence(res.Observations, 0.9)
	return res, nil
}
