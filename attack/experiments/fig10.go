package experiments

import (
	"errors"
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/analysis/stats"
	"microscope/analysis/sweep"
	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
)

// Fig10Config parameterizes the port-contention experiment of §6.1.
type Fig10Config struct {
	// Samples is the number of monitor measurements (paper: 10,000).
	Samples int
	// Cont is the number of divisions per measurement (Fig. 7a's inner
	// loop count).
	Cont int
	// HandlerLatency is the replayer's per-fault handler time; the paper
	// notes the handler runs considerably longer than the victim code per
	// replay, which is why most samples land below the threshold.
	HandlerLatency uint64
	// WalkLevels tunes the replay window length (§4.1.2).
	WalkLevels int
	// Quantile/Guard calibrate the contention threshold from the
	// quiet (mul-side) distribution, mirroring the paper's "slightly
	// less than 120 cycles" procedure.
	Quantile float64
	Guard    uint64
	// JitterPeriod/JitterExtra inject the ambient platform noise that
	// gives the paper's quiet distribution its 4-of-10,000 outliers.
	JitterPeriod int
	JitterExtra  int
	// Workers bounds the goroutines used to run independent simulations
	// (the two victim sides, and the trials of RunFig10Sweep) in
	// parallel. <= 0 selects runtime.GOMAXPROCS. The worker count never
	// changes results — each side/trial owns its whole simulated
	// platform — only wall-clock time.
	Workers int
}

// DefaultFig10Config matches the paper's measurement count.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Samples:        10_000,
		Cont:           2,
		HandlerLatency: 5_000,
		WalkLevels:     4,
		Quantile:       0.99,
		Guard:          8,
		JitterPeriod:   9001,
		JitterExtra:    150,
	}
}

// Fig10Side holds one victim-side run (mul or div).
type Fig10Side struct {
	Samples []uint64
	Replays int
	Cycles  uint64
}

// Fig10Result is the full experiment outcome.
type Fig10Result struct {
	Config    Fig10Config
	Mul       Fig10Side
	Div       Fig10Side
	Threshold uint64
	MulOver   int
	DivOver   int
	// SeparationX is DivOver / max(MulOver,1) — the paper reports 16x.
	SeparationX float64
}

// RunFig10 reproduces Figures 10a and 10b: the monitor takes Samples
// latency measurements of its own divisions while the victim replays the
// control-flow-secret victim's mul side (10a) or div side (10b), in a
// single logical victim run per side.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	return RunFig10WithCore(cfg, nil)
}

// RunFig10WithCore is RunFig10 with a core-configuration override applied
// to both sides (used by the ablation benches). The two sides are fully
// independent simulations (each builds its own Rig), so they run as a
// two-trial sweep; the result is identical to running them back to back.
func RunFig10WithCore(cfg Fig10Config, tweak func(*cpu.Config)) (*Fig10Result, error) {
	sides, err := sweep.Run(2, sweep.Options{Workers: cfg.Workers},
		func(trial int) (Fig10Side, error) {
			return runFig10Side(cfg, trial == 1, tweak)
		})
	if err != nil {
		var te *sweep.TrialError
		if errors.As(err, &te) {
			return nil, fmt.Errorf("%s side: %w", [2]string{"mul", "div"}[te.Trial], te.Err)
		}
		return nil, err
	}
	mul, div := sides[0], sides[1]
	res := &Fig10Result{Config: cfg, Mul: mul, Div: div}
	res.Threshold = sidechan.CalibrateThreshold(mul.Samples, cfg.Quantile, cfg.Guard)
	res.MulOver = sidechan.Classify(mul.Samples, res.Threshold).Over
	res.DivOver = sidechan.Classify(div.Samples, res.Threshold).Over
	den := res.MulOver
	if den == 0 {
		den = 1
	}
	res.SeparationX = float64(res.DivOver) / float64(den)
	return res, nil
}

// SecretDetected reports the attack's verdict: the victim executed the
// div side iff the over-threshold count is well above the quiet side's.
func (r *Fig10Result) SecretDetected() bool { return r.SeparationX >= 4 }

func runFig10Side(cfg Fig10Config, secret bool, tweak func(*cpu.Config)) (Fig10Side, error) {
	coreCfg := cpu.DefaultConfig()
	coreCfg.JitterPeriod = cfg.JitterPeriod
	coreCfg.JitterExtra = cfg.JitterExtra
	if tweak != nil {
		tweak(&coreCfg)
	}
	rig, err := NewRig(coreCfg)
	if err != nil {
		return Fig10Side{}, err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := rig.InstallVictim(vic); err != nil {
		return Fig10Side{}, err
	}
	mon := monitor.PortContention(cfg.Samples, cfg.Cont)
	if err := rig.AddMonitor(mon); err != nil {
		return Fig10Side{}, err
	}

	// The replayer keeps the victim replaying for the monitor's entire
	// measurement run, then releases it: one logical victim run.
	rec := &microscope.Recipe{
		Name:           "fig10",
		Victim:         rig.Victim,
		Handle:         vic.Sym("handle"),
		WalkLevels:     cfg.WalkLevels,
		HandlerLatency: cfg.HandlerLatency,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		if rig.Core.Context(1).Halted() {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		return Fig10Side{}, err
	}

	vic.Start(rig.Kernel, 0)
	mon.Start(rig.Kernel, 1)
	start := rig.Core.Cycle()
	// Budget: a sample takes tens of cycles; replays are thousands.
	budget := uint64(cfg.Samples)*2_000 + 10_000_000
	if err := rig.Run(budget); err != nil {
		return Fig10Side{}, err
	}
	samples, err := monitor.ReadSamples(rig.Monitor, cfg.Samples)
	if err != nil {
		return Fig10Side{}, err
	}
	return Fig10Side{
		Samples: samples,
		Replays: rec.Replays(),
		Cycles:  rig.Core.Cycle() - start,
	}, nil
}

// Fig10SweepResult aggregates a many-trial repetition of the Fig. 10
// experiment (a LEASH-style detection study needs exactly this kind of
// cheap repeated-trial sweep).
type Fig10SweepResult struct {
	Trials []*Fig10Result
	// Detected counts trials whose separation revealed the secret.
	Detected int
	// Mul/Div are the monitor-latency summaries merged across every
	// trial's samples (exact, accumulator-based — no re-sort of the
	// union).
	Mul, Div stats.Summary
	// Separation summarizes the per-trial separation factors.
	Separation stats.Summary
}

// RunFig10Sweep runs the full two-sided Fig. 10 experiment `trials`
// times over the worker pool. Each trial is a complete, independent
// simulation; the ambient-jitter phase is varied deterministically per
// trial (the simulated analogue of re-running the experiment on a live
// machine), so the sweep measures the attack's robustness to platform
// noise. Results are ordered by trial index and identical for any
// cfg.Workers value.
func RunFig10Sweep(cfg Fig10Config, trials int) (*Fig10SweepResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: fig10 sweep needs trials > 0, got %d", trials)
	}
	results, err := sweep.Run(trials, sweep.Options{Workers: cfg.Workers},
		func(trial int) (*Fig10Result, error) {
			c := cfg
			c.Workers = 1 // the trial is the unit of parallelism
			c.JitterPeriod = cfg.JitterPeriod + 17*trial
			return RunFig10(c)
		})
	if err != nil {
		return nil, err
	}
	res := &Fig10SweepResult{Trials: results}
	mul, div, sep := stats.NewAccumulator(), stats.NewAccumulator(), stats.NewAccumulator()
	for _, r := range results {
		if r.SecretDetected() {
			res.Detected++
		}
		mul.AddSamples(r.Mul.Samples)
		div.AddSamples(r.Div.Samples)
		sep.Add(r.SeparationX)
	}
	res.Mul, res.Div, res.Separation = mul.Summary(), div.Summary(), sep.Summary()
	return res, nil
}
