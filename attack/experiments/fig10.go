package experiments

import (
	"errors"
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/analysis/stats"
	"microscope/analysis/sweep"
	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
)

// Fig10Config parameterizes the port-contention experiment of §6.1.
type Fig10Config struct {
	// Samples is the number of monitor measurements (paper: 10,000).
	Samples int
	// Cont is the number of divisions per measurement (Fig. 7a's inner
	// loop count).
	Cont int
	// HandlerLatency is the replayer's per-fault handler time; the paper
	// notes the handler runs considerably longer than the victim code per
	// replay, which is why most samples land below the threshold.
	HandlerLatency uint64
	// WalkLevels tunes the replay window length (§4.1.2).
	WalkLevels int
	// Quantile/Guard calibrate the contention threshold from the
	// quiet (mul-side) distribution, mirroring the paper's "slightly
	// less than 120 cycles" procedure.
	Quantile float64
	Guard    uint64
	// JitterPeriod/JitterExtra inject the ambient platform noise that
	// gives the paper's quiet distribution its 4-of-10,000 outliers.
	JitterPeriod int
	JitterExtra  int
	// Workers bounds the goroutines used to run independent simulations
	// (the two victim sides, and the trials of RunFig10Sweep) in
	// parallel. <= 0 selects runtime.GOMAXPROCS. The worker count never
	// changes results — each side/trial owns its whole simulated
	// platform — only wall-clock time.
	Workers int
}

// DefaultFig10Config matches the paper's measurement count.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Samples:        10_000,
		Cont:           2,
		HandlerLatency: 5_000,
		WalkLevels:     4,
		Quantile:       0.99,
		Guard:          8,
		JitterPeriod:   9001,
		JitterExtra:    150,
	}
}

// Fig10Side holds one victim-side run (mul or div).
type Fig10Side struct {
	Samples []uint64
	Replays int
	Cycles  uint64
}

// Fig10Result is the full experiment outcome.
type Fig10Result struct {
	Config    Fig10Config
	Mul       Fig10Side
	Div       Fig10Side
	Threshold uint64
	MulOver   int
	DivOver   int
	// SeparationX is DivOver / max(MulOver,1) — the paper reports 16x.
	SeparationX float64
}

// RunFig10 reproduces Figures 10a and 10b: the monitor takes Samples
// latency measurements of its own divisions while the victim replays the
// control-flow-secret victim's mul side (10a) or div side (10b), in a
// single logical victim run per side.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	return RunFig10WithCore(cfg, nil)
}

// RunFig10WithCore is RunFig10 with a core-configuration override applied
// to both sides (used by the ablation benches). The two sides are fully
// independent simulations (each builds its own Rig), so they run as a
// two-trial sweep; the result is identical to running them back to back.
func RunFig10WithCore(cfg Fig10Config, tweak func(*cpu.Config)) (*Fig10Result, error) {
	sides, err := sweep.Run(2, sweep.Options{Workers: cfg.Workers},
		func(trial int) (Fig10Side, error) {
			return runFig10Side(cfg, trial == 1, tweak)
		})
	if err != nil {
		var te *sweep.TrialError
		if errors.As(err, &te) {
			return nil, fmt.Errorf("%s side: %w", [2]string{"mul", "div"}[te.Trial], te.Err)
		}
		return nil, err
	}
	return assembleFig10(cfg, sides[0], sides[1]), nil
}

// assembleFig10 calibrates the threshold from the quiet side and
// classifies both sides into the full result.
func assembleFig10(cfg Fig10Config, mul, div Fig10Side) *Fig10Result {
	res := &Fig10Result{Config: cfg, Mul: mul, Div: div}
	res.Threshold = sidechan.CalibrateThreshold(mul.Samples, cfg.Quantile, cfg.Guard)
	res.MulOver = sidechan.Classify(mul.Samples, res.Threshold).Over
	res.DivOver = sidechan.Classify(div.Samples, res.Threshold).Over
	den := res.MulOver
	if den == 0 {
		den = 1
	}
	res.SeparationX = float64(res.DivOver) / float64(den)
	return res
}

// SecretDetected reports the attack's verdict: the victim executed the
// div side iff the over-threshold count is well above the quiet side's.
func (r *Fig10Result) SecretDetected() bool { return r.SeparationX >= 4 }

// fig10Rig is one side's assembled platform: the rig plus the victim
// and monitor layouts (needed for symbols and program start).
type fig10Rig struct {
	rig *Rig
	vic *victim.Layout
	mon *victim.Layout
}

// buildFig10Rig boots a platform and installs the victim and monitor —
// the checkpointable prefix of a Fig. 10 side (no recipe, no cycles).
func buildFig10Rig(coreCfg cpu.Config, cfg Fig10Config, secret bool) (*fig10Rig, error) {
	rig, err := NewRig(coreCfg)
	if err != nil {
		return nil, err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := rig.InstallVictim(vic); err != nil {
		return nil, err
	}
	mon := monitor.PortContention(cfg.Samples, cfg.Cont)
	if err := rig.AddMonitor(mon); err != nil {
		return nil, err
	}
	return &fig10Rig{rig: rig, vic: vic, mon: mon}, nil
}

func runFig10Side(cfg Fig10Config, secret bool, tweak func(*cpu.Config)) (Fig10Side, error) {
	coreCfg := cpu.DefaultConfig()
	coreCfg.JitterPeriod = cfg.JitterPeriod
	coreCfg.JitterExtra = cfg.JitterExtra
	if tweak != nil {
		tweak(&coreCfg)
	}
	fr, err := buildFig10Rig(coreCfg, cfg, secret)
	if err != nil {
		return Fig10Side{}, err
	}
	return mountFig10(fr, cfg)
}

// mountFig10 installs the replay recipe, starts both programs and runs
// the measurement on an assembled side — cold-booted (runFig10Side) or
// restored from a post-install checkpoint (forkFig10Side); the two
// arrive with identical machine state.
func mountFig10(fr *fig10Rig, cfg Fig10Config) (Fig10Side, error) {
	rig, vic, mon := fr.rig, fr.vic, fr.mon

	// The replayer keeps the victim replaying for the monitor's entire
	// measurement run, then releases it: one logical victim run.
	rec := &microscope.Recipe{
		Name:           "fig10",
		Victim:         rig.Victim,
		Handle:         vic.Sym("handle"),
		WalkLevels:     cfg.WalkLevels,
		HandlerLatency: cfg.HandlerLatency,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		if rig.Core.Context(1).Halted() {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		return Fig10Side{}, err
	}

	vic.Start(rig.Kernel, 0)
	mon.Start(rig.Kernel, 1)
	start := rig.Core.Cycle()
	// Budget: a sample takes tens of cycles; replays are thousands.
	budget := uint64(cfg.Samples)*2_000 + 10_000_000
	if err := rig.Run(budget); err != nil {
		return Fig10Side{}, err
	}
	samples, err := monitor.ReadSamples(rig.Monitor, cfg.Samples)
	if err != nil {
		return Fig10Side{}, err
	}
	return Fig10Side{
		Samples: samples,
		Replays: rec.Replays(),
		Cycles:  rig.Core.Cycle() - start,
	}, nil
}

// Fig10SweepResult aggregates a many-trial repetition of the Fig. 10
// experiment (a LEASH-style detection study needs exactly this kind of
// cheap repeated-trial sweep).
type Fig10SweepResult struct {
	Trials []*Fig10Result
	// Detected counts trials whose separation revealed the secret.
	Detected int
	// Mul/Div are the monitor-latency summaries merged across every
	// trial's samples (exact, accumulator-based — no re-sort of the
	// union).
	Mul, Div stats.Summary
	// Separation summarizes the per-trial separation factors.
	Separation stats.Summary
}

// RunFig10Sweep runs the full two-sided Fig. 10 experiment `trials`
// times over the worker pool. Each trial is a complete, independent
// simulation; the ambient-jitter phase is varied deterministically per
// trial (the simulated analogue of re-running the experiment on a live
// machine), so the sweep measures the attack's robustness to platform
// noise. Trials fork from two warm post-install checkpoints (one per
// victim side) rather than booting four fresh 64 MB platforms per
// trial; the per-trial jitter is applied to the restored core via
// UpdateTiming, which leaves results byte-identical to the cold-boot
// reference (RunFig10SweepColdBoot). Results are ordered by trial index
// and identical for any cfg.Workers value.
func RunFig10Sweep(cfg Fig10Config, trials int) (*Fig10SweepResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: fig10 sweep needs trials > 0, got %d", trials)
	}
	// One template + checkpoint + pool per victim side (mul, div).
	baseCfg := cpu.DefaultConfig()
	baseCfg.JitterPeriod = cfg.JitterPeriod
	baseCfg.JitterExtra = cfg.JitterExtra
	var templates [2]*fig10Rig
	var pools [2]*rigPool
	for side := 0; side < 2; side++ {
		fr, err := buildFig10Rig(baseCfg, cfg, side == 1)
		if err != nil {
			return nil, err
		}
		cp, err := fr.rig.Checkpoint()
		if err != nil {
			return nil, err
		}
		templates[side] = fr
		pools[side] = newRigPool(cp, fr.rig)
	}
	results, err := sweep.Run(trials, sweep.Options{Workers: cfg.Workers},
		func(trial int) (*Fig10Result, error) {
			c := cfg
			c.Workers = 1 // the trial is the unit of parallelism
			c.JitterPeriod = cfg.JitterPeriod + 17*trial
			var sides [2]Fig10Side
			for side := 0; side < 2; side++ {
				s, err := forkFig10Side(pools[side], templates[side], c)
				if err != nil {
					return nil, fmt.Errorf("%s side: %w", [2]string{"mul", "div"}[side], err)
				}
				sides[side] = s
			}
			return assembleFig10(c, sides[0], sides[1]), nil
		})
	if err != nil {
		return nil, err
	}
	return sweepSummary(results), nil
}

// forkFig10Side draws a pooled rig (restored to the side's post-install
// checkpoint), retunes the restored core's jitter to the trial's, and
// mounts the measurement on it.
func forkFig10Side(pool *rigPool, tmpl *fig10Rig, cfg Fig10Config) (Fig10Side, error) {
	rig, err := pool.get()
	if err != nil {
		return Fig10Side{}, err
	}
	defer pool.put(rig)
	coreCfg := rig.Core.Config()
	coreCfg.JitterPeriod = cfg.JitterPeriod
	coreCfg.JitterExtra = cfg.JitterExtra
	if err := rig.Core.UpdateTiming(coreCfg); err != nil {
		return Fig10Side{}, err
	}
	return mountFig10(&fig10Rig{rig: rig, vic: tmpl.vic, mon: tmpl.mon}, cfg)
}

// RunFig10SweepColdBoot is RunFig10Sweep without the shared
// checkpoints: every trial boots its own platforms. It is the reference
// implementation the forked sweep is tested for identity against and
// benchmarked over.
func RunFig10SweepColdBoot(cfg Fig10Config, trials int) (*Fig10SweepResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: fig10 sweep needs trials > 0, got %d", trials)
	}
	results, err := sweep.Run(trials, sweep.Options{Workers: cfg.Workers},
		func(trial int) (*Fig10Result, error) {
			c := cfg
			c.Workers = 1 // the trial is the unit of parallelism
			c.JitterPeriod = cfg.JitterPeriod + 17*trial
			return RunFig10(c)
		})
	if err != nil {
		return nil, err
	}
	return sweepSummary(results), nil
}

// sweepSummary folds per-trial Fig. 10 results into the sweep summary.
func sweepSummary(results []*Fig10Result) *Fig10SweepResult {
	res := &Fig10SweepResult{Trials: results}
	mul, div, sep := stats.NewAccumulator(), stats.NewAccumulator(), stats.NewAccumulator()
	for _, r := range results {
		if r.SecretDetected() {
			res.Detected++
		}
		mul.AddSamples(r.Mul.Samples)
		div.AddSamples(r.Div.Samples)
		sep.Add(r.SeparationX)
	}
	res.Mul, res.Div, res.Separation = mul.Summary(), div.Summary(), sep.Summary()
	return res
}
