package experiments

import (
	"fmt"
	"math/bits"

	"microscope/analysis/sweep"
	"microscope/crypto/taes"
)

// KeySweepResult is the outcome of the first-round key-byte recovery
// sweep: the classic T-table candidate-elimination attack (Osvik-
// Shamir-Tromer style) driven by MicroScope's noiseless per-round line
// masks instead of noisy whole-run probes.
//
// Round 1 of the decryption indexes table t with byte t of state word w,
// and state word w is ct[4w..4w+3] XOR dec-round-key word w — so the
// observed line (index high nibble) of each access is
// highnib(ct[4w+t]) XOR highnib(keybyte). Key byte b = 4w+t therefore
// leaks its high nibble once enough trials (distinct ciphertexts) have
// eliminated the other 15 candidates. A 64-byte cache line spans 16
// table entries, so the low nibble is architecturally invisible to a
// line-granular channel — 4 bits per key byte, 64 bits total, is the
// full yield of this channel (§6.2 discusses the same granularity).
type KeySweepResult struct {
	Trials int
	// Candidates[b] is the bitmask of surviving high-nibble candidates
	// for decryption-round-key byte b (byte t of dec word w, b = 4w+t).
	Candidates [16]uint16
	// RecoveredHi[b] is the uniquely surviving high nibble, or -1 while
	// more than one candidate remains.
	RecoveredHi [16]int
	// TruthHi[b] is the true high nibble from the key schedule.
	TruthHi [16]int
	// Faults is the total fault budget summed over all trials.
	Faults int
}

// RecoveredExactly counts key bytes whose recovered nibble equals truth.
func (k *KeySweepResult) RecoveredExactly() int {
	n := 0
	for b := 0; b < 16; b++ {
		if k.RecoveredHi[b] >= 0 && k.RecoveredHi[b] == k.TruthHi[b] {
			n++
		}
	}
	return n
}

// Complete reports whether all 16 key bytes narrowed to the truth.
func (k *KeySweepResult) Complete() bool { return k.RecoveredExactly() == 16 }

// RunAESKeyByteSweep recovers the high nibble of all 16 first-round
// decryption key bytes. It is the package's heavy sweep workload: one
// full §6.2 extraction per trial (each with its own deterministic
// plaintext from TrialPlaintext), fanned out over `workers` goroutines,
// followed by the 16 per-key-byte candidate eliminations — themselves
// independent, so they run as a second (cheap) sweep. Results are
// identical for any worker count.
func RunAESKeyByteSweep(cfg AESConfig, trials, workers int) (*KeySweepResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: key sweep needs trials > 0, got %d", trials)
	}
	c, err := taes.NewCipher(cfg.Key)
	if err != nil {
		return nil, err
	}
	pts := make([][]byte, trials)
	cts := make([][]byte, trials)
	for i := range pts {
		pts[i] = TrialPlaintext(i)
		cts[i] = make([]byte, taes.BlockSize)
		c.Encrypt(cts[i], pts[i])
	}

	// Phase 1 — the heavy part: one full extraction per ciphertext.
	exts, err := RunAESExtractionSweep(cfg, pts, workers)
	if err != nil {
		return nil, err
	}

	res := &KeySweepResult{Trials: trials}
	dec := c.DecKey()
	for b := 0; b < 16; b++ {
		w, t := b/4, b%4
		res.TruthHi[b] = int(dec[w]>>(24-8*t)) >> 4 & 0xf
	}

	// Phase 2 — 16 independent candidate eliminations, one per key byte.
	cands, err := sweep.Run(16, sweep.Options{Workers: workers},
		func(b int) (uint16, error) {
			t := b % 4 // table t reads byte t of each state word
			alive := uint16(1<<16 - 1)
			for trial := 0; trial < trials; trial++ {
				mask := exts[trial].Extracted[1][t]
				ctHi := int(cts[trial][b]) >> 4
				var keep uint16
				for hn := 0; hn < 16; hn++ {
					// Candidate hn predicts the access lands on line
					// ctHi^hn; it survives only if that line was observed.
					if alive&(1<<uint(hn)) != 0 && mask&(1<<uint(ctHi^hn)) != 0 {
						keep |= 1 << uint(hn)
					}
				}
				alive = keep
			}
			return alive, nil
		})
	if err != nil {
		return nil, err
	}
	for b, alive := range cands {
		res.Candidates[b] = alive
		res.RecoveredHi[b] = -1
		if alive != 0 && alive&(alive-1) == 0 {
			res.RecoveredHi[b] = bits.TrailingZeros16(alive)
		}
	}
	for _, e := range exts {
		res.Faults += e.Faults
	}
	return res, nil
}
