package experiments

// The SpecSan headline gate: three-way static/abstract/dynamic
// cross-validation on every builtin victim (and fuzzed mutants).
//
//   - dynamic vs static: every sanitizer finding is machine-reconciled
//     against the static scanner, with zero Unexplained entries;
//   - dynamic vs abstract: every simulator-checked LEAKY witness the
//     verifier produces must have its channel covered by the
//     sanitizer's findings when the witness assignments are replayed
//     under the sanitizer (no-false-negative invariant);
//   - off-mode: attaching the sanitizer must not perturb the simulated
//     machine (trace-hash identity over a full attack), and
//     checkpoint/restore must round-trip shadow state bit-identically
//     mid-attack.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"microscope/analysis/verify"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/sanitizer"
	"microscope/sim/trace"
)

// sanVerifyConfig trades differential trials for speed, like the
// verifier's own unit tests; the witness search itself is untouched.
func sanVerifyConfig() verify.Config {
	cfg := verify.DefaultConfig()
	cfg.Trials = 8
	return cfg
}

func mustRunSpecSan(t *testing.T, tgt SanTarget, cfg SpecSanConfig) *SpecSanResult {
	t.Helper()
	res, err := RunSpecSan(tgt, cfg)
	if err != nil {
		t.Fatalf("RunSpecSan(%s): %v", tgt.Name, err)
	}
	return res
}

func TestSpecSanThreeWayCrossValidation(t *testing.T) {
	for _, tgt := range SanTargets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			// Leg 1+2: dynamic run reconciled against the static scanner.
			res := mustRunSpecSan(t, tgt, DefaultSpecSanConfig())
			if res.Replays == 0 {
				t.Errorf("module never replayed the handle (windows=%d)", len(res.Windows))
			}
			if un := res.Reconciliation.Unexplained(); len(un) > 0 {
				t.Errorf("unexplained static/dynamic disagreements:\n%v", un)
			}
			if got, want := len(res.Reconciliation.Entries), len(res.Report.Findings); got < want {
				t.Errorf("reconciliation covers %d entries, static has %d findings", got, want)
			}

			// Leg 3: the verifier's simulator-checked witnesses.
			lay, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			sub := verify.NewSubject(lay)
			sub.Handle = lay.Sym(tgt.Handle)
			vres, err := verify.Verify(sub, sanVerifyConfig())
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			switch vres.Verdict {
			case verify.Leaky:
				w := vres.Witness
				if w == nil {
					t.Fatal("LEAKY verdict without a witness")
				}
				covered := make(map[string]bool)
				for _, asg := range []verify.Assignment{w.A, w.B} {
					cfg := DefaultSpecSanConfig()
					cfg.Assignment = &asg
					wres := mustRunSpecSan(t, tgt, cfg)
					if un := wres.Reconciliation.Unexplained(); len(un) > 0 {
						t.Errorf("witness run: unexplained disagreements:\n%v", un)
					}
					for ch := range wres.Channels() {
						covered[ch] = true
					}
				}
				if !covered[w.Channel.String()] {
					t.Errorf("witness channel %s not covered by sanitizer findings %v (false negative)",
						w.Channel, covered)
				}
			case verify.ProvenSafe:
				if len(res.Findings) > 0 {
					t.Errorf("verifier proved %s safe but sanitizer found %d transmits (false positive)",
						tgt.Name, len(res.Findings))
				}
			default:
				t.Logf("verdict %s (%s); witness coverage not applicable", vres.Verdict, vres.Reason)
			}
		})
	}
}

// assembleSanRig builds a rig with the target installed and armed,
// optionally with a seeded sanitizer attached, ready for Start+Run.
// It mirrors RunSpecSanLayout's setup but leaves the tracer and run
// loop to the caller.
func assembleSanRig(t *testing.T, tgt SanTarget, attach bool) (*Rig, *sanitizer.Sanitizer, *victim.Layout) {
	t.Helper()
	lay, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	rig, err := NewRig(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.InstallVictim(lay); err != nil {
		t.Fatal(err)
	}
	var san *sanitizer.Sanitizer
	if attach {
		san = sanitizer.New(rig.Core, sanitizer.DefaultConfig())
		for _, r := range lay.SecretRegs {
			san.SeedReg(0, r, r.String())
		}
		for i, name := range lay.SecretRegions {
			rng := lay.SecretMems()[i]
			if err := san.SeedMemory(rig.Victim.AddressSpace(), rng[0], rng[1], name); err != nil {
				t.Fatal(err)
			}
		}
		rig.Core.SetShadow(san)
	}
	d := verify.DefaultConfig()
	rcp := &microscope.Recipe{
		Name:           "specsan-" + lay.Name,
		Victim:         rig.Victim,
		Handle:         lay.Sym(tgt.Handle),
		HandlerLatency: d.HandlerLatency,
		MaxReplays:     d.Replays,
	}
	if err := rig.Module.Install(rcp); err != nil {
		t.Fatal(err)
	}
	return rig, san, lay
}

// TestSpecSanAttachedTraceIdentity runs the same full attack twice —
// sanitizer detached and attached — hashing every tracer event. The
// hashes must agree: the shadow engine observes the machine, it never
// steers it.
func TestSpecSanAttachedTraceIdentity(t *testing.T) {
	run := func(attach bool) (uint64, uint64) {
		tgt, err := FindSanTarget("loopsecret")
		if err != nil {
			t.Fatal(err)
		}
		rig, _, lay := assembleSanRig(t, tgt, attach)
		h := trace.NewHasher()
		rig.Core.SetTracer(h)
		lay.Start(rig.Kernel, 0)
		if err := rig.Run(verify.DefaultConfig().MaxCycles); err != nil {
			t.Fatal(err)
		}
		return h.Sum64(), h.Events()
	}
	offSum, offN := run(false)
	onSum, onN := run(true)
	if offSum != onSum || offN != onN {
		t.Errorf("attached sanitizer perturbed the trace: off=(%#x,%d events) on=(%#x,%d events)",
			offSum, offN, onSum, onN)
	}
}

// TestSpecSanCheckpointShadowRoundTrip pauses a sanitized attack
// mid-flight, checkpoints the whole machine plus the shadow snapshot,
// resumes both the original rig and a freshly booted restore, and
// requires the two final states — events, dispositions, and the full
// gob-encoded shadow snapshot — to be bit-identical to each other and
// to an uninterrupted run.
func TestSpecSanCheckpointShadowRoundTrip(t *testing.T) {
	tgt, err := FindSanTarget("loopsecret")
	if err != nil {
		t.Fatal(err)
	}
	budget := verify.DefaultConfig().MaxCycles

	// Uninterrupted reference run.
	rigA, sanA, layA := assembleSanRig(t, tgt, true)
	layA.Start(rigA.Kernel, 0)
	if err := rigA.Run(budget); err != nil {
		t.Fatal(err)
	}
	sanA.Flush()
	total := rigA.Core.Cycle()
	if total < 4 {
		t.Fatalf("run too short to pause: %d cycles", total)
	}

	// Paused run: stop halfway, checkpoint machine + shadow.
	rigB, sanB, layB := assembleSanRig(t, tgt, true)
	layB.Start(rigB.Kernel, 0)
	rigB.Core.Run(total / 2)
	if rigB.Core.Halted() {
		t.Fatalf("halted before the pause point (%d cycles)", total/2)
	}
	cp, err := rigB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	shadowAtPause := gobBytes(t, sanB.Snap())

	// Restore into a fresh platform and fresh sanitizer.
	rigC, err := cp.Boot()
	if err != nil {
		t.Fatal(err)
	}
	var snap sanitizer.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(shadowAtPause)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sanC := sanitizer.New(rigC.Core, sanitizer.DefaultConfig())
	if err := sanC.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	rigC.Core.SetShadow(sanC)
	if got := gobBytes(t, sanC.Snap()); !bytes.Equal(got, shadowAtPause) {
		t.Fatal("shadow snapshot not bit-identical immediately after restore")
	}

	// Resume both; they must converge on the reference run exactly.
	if err := rigB.Run(budget); err != nil {
		t.Fatal(err)
	}
	sanB.Flush()
	if err := rigC.Run(budget); err != nil {
		t.Fatal(err)
	}
	sanC.Flush()

	if b, c := rigB.Core.Cycle(), rigC.Core.Cycle(); b != c || b != total {
		t.Errorf("cycle counts diverged: uninterrupted=%d paused=%d restored=%d", total, b, c)
	}
	if !reflect.DeepEqual(sanB.Events(), sanC.Events()) {
		t.Error("restored run's transmit events differ from the paused run's")
	}
	finalA := gobBytes(t, sanA.Snap())
	finalB := gobBytes(t, sanB.Snap())
	finalC := gobBytes(t, sanC.Snap())
	if !bytes.Equal(finalA, finalB) {
		t.Error("pausing perturbed the final shadow state")
	}
	if !bytes.Equal(finalB, finalC) {
		t.Error("checkpoint/restore did not round-trip shadow state bit-identically")
	}
}

// mutantLayout derives a victim mutant from fuzz input: a builtin family
// selector plus parameter entropy. Returns nil for parameterizations the
// victim constructors reject.
func mutantLayout(sel uint8, a uint64, tail []byte) (*victim.Layout, string) {
	switch sel % 4 {
	case 0:
		return victim.SingleSecret(int(a%64), a&1 == 0), "count"
	case 1:
		return victim.ControlFlowSecret(a&1 == 1), "handle"
	case 2:
		secrets := tail
		if len(secrets) == 0 {
			secrets = []byte{byte(a)}
		}
		if len(secrets) > 8 {
			secrets = secrets[:8]
		}
		clipped := make([]byte, len(secrets))
		for i, b := range secrets {
			clipped[i] = b & 0x0f
		}
		return victim.LoopSecret(clipped), "handle"
	default:
		base := 2 + a%13
		exp := 1 + (a>>8)%31
		mod := 3 + (a>>16)%94
		bits := 1 + int((a>>24)%4)
		v, err := victim.NewModExpVictim(base, exp, mod, bits)
		if err != nil {
			return nil, ""
		}
		return v.Layout, "handle"
	}
}

// FuzzSpecSanCoverage mutates victims and asserts the no-false-negative
// invariant: whenever the verifier proves a mutant LEAKY with a
// simulator-checked witness, replaying the witness assignments under
// SpecSan must surface the witness channel, and the static/dynamic
// reconciliation must stay fully explained.
func FuzzSpecSanCoverage(f *testing.F) {
	// Seed corpus: the builtin parameterizations of each mutant family.
	f.Add(uint8(0), uint64(3), []byte{})                     // singlesecret(3, subnormal)
	f.Add(uint8(0), uint64(7), []byte{})                     // singlesecret, int divide
	f.Add(uint8(1), uint64(1), []byte{})                     // controlflow(true)
	f.Add(uint8(1), uint64(0), []byte{})                     // controlflow(false)
	f.Add(uint8(2), uint64(0), []byte{3, 1, 4, 1, 5})        // loopsecret builtin
	f.Add(uint8(3), uint64(5|0xb<<8|94<<16|3<<24), []byte{}) // modexp-like
	f.Fuzz(func(t *testing.T, sel uint8, a uint64, tail []byte) {
		lay, handleSym := mutantLayout(sel, a, tail)
		if lay == nil {
			t.Skip("constructor rejected parameterization")
		}
		if _, ok := lay.Symbols[handleSym]; !ok {
			t.Skip("mutant has no replay handle symbol")
		}
		vcfg := verify.DefaultConfig()
		vcfg.Trials = 4
		vcfg.MaxWitnessPairs = 3
		sub := verify.NewSubject(lay)
		sub.Handle = lay.Sym(handleSym)
		vres, err := verify.Verify(sub, vcfg)
		if err != nil {
			t.Skipf("verifier rejected mutant: %v", err)
		}
		if vres.Verdict != verify.Leaky {
			return
		}
		w := vres.Witness
		if w == nil {
			t.Fatal("LEAKY verdict without witness")
		}
		covered := make(map[string]bool)
		for _, asg := range []verify.Assignment{w.A, w.B} {
			cfg := DefaultSpecSanConfig()
			cfg.Assignment = &asg
			// Rebuild per run: RunSpecSanLayout patches a copy, but the
			// mutant layout itself is cheap to share.
			res, err := RunSpecSanLayout(lay.Name, lay, handleSym, cfg)
			if err != nil {
				t.Fatalf("sanitized replay of witness: %v", err)
			}
			if un := res.Reconciliation.Unexplained(); len(un) > 0 {
				t.Errorf("unexplained static/dynamic disagreement on mutant:\n%v", un)
			}
			for ch := range res.Channels() {
				covered[ch] = true
			}
		}
		if !covered[w.Channel.String()] {
			t.Errorf("sel=%d a=%#x: witness channel %s not covered by sanitizer findings %v",
				sel, a, w.Channel, covered)
		}
	})
}
