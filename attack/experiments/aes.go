package experiments

import (
	"bytes"
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/crypto/taes"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/mem"
)

// AESConfig parameterizes the §4.4/§6.2 AES attacks.
type AESConfig struct {
	Key            []byte
	Plaintext      []byte // the attack decrypts Enc(Key, Plaintext)
	HandlerLatency uint64
	WalkLevels     int
}

// DefaultAESConfig returns a 128-bit-key configuration.
func DefaultAESConfig() AESConfig {
	return AESConfig{
		Key:            []byte("0123456789abcdef"),
		Plaintext:      []byte("attack at dawn!!"),
		HandlerLatency: 5_000,
		WalkLevels:     4,
	}
}

// TrialPlaintext derives the deterministic one-block plaintext for sweep
// trial i (a splitmix/xorshift stream keyed by the index alone), so
// multi-trial sweeps are reproducible for any worker count without
// sharing a *rand.Rand across goroutines.
func TrialPlaintext(trial int) []byte {
	pt := make([]byte, taes.BlockSize)
	x := uint64(trial)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := range pt {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pt[i] = byte(x >> 32)
	}
	return pt
}

// aesRig bundles the platform with the AES victim and its probe lists.
type aesRig struct {
	*Rig
	vic       *victim.AESVictim
	allLines  []mem.Addr // Td0..Td3 + Td4 cache-line addresses (80)
	lineTable []int      // parallel: table index per probe address
	lineIdx   []int      // parallel: line index within table
}

func newAESRig(cfg AESConfig) (*aesRig, []byte, error) {
	c, err := taes.NewCipher(cfg.Key)
	if err != nil {
		return nil, nil, err
	}
	if len(cfg.Plaintext) != taes.BlockSize {
		return nil, nil, fmt.Errorf("experiments: plaintext must be one block")
	}
	ct := make([]byte, taes.BlockSize)
	c.Encrypt(ct, cfg.Plaintext)

	rig, err := NewRig(cpu.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	vic, err := victim.NewAESVictim(cfg.Key, ct)
	if err != nil {
		return nil, nil, err
	}
	if err := rig.InstallVictim(vic.Layout); err != nil {
		return nil, nil, err
	}
	ar := &aesRig{Rig: rig, vic: vic}
	for tbl := 0; tbl < 5; tbl++ {
		for line := 0; line < taes.LinesPerTable; line++ {
			ar.allLines = append(ar.allLines, vic.TdLineVA(tbl, line))
			ar.lineTable = append(ar.lineTable, tbl)
			ar.lineIdx = append(ar.lineIdx, line)
		}
	}
	return ar, ct, nil
}

// forkAESRig adapts a pooled rig — already restored to the template's
// post-install checkpoint — to one sweep trial: it encrypts the trial
// plaintext and writes the ciphertext into the victim's in page,
// leaving the machine in exactly the state newAESRig would have built
// for that plaintext. The victim program, symbols and probe lists are
// ciphertext-independent and shared read-only with the template.
func forkAESRig(template *aesRig, rig *Rig, cfg AESConfig) (*aesRig, []byte, error) {
	c, err := taes.NewCipher(cfg.Key)
	if err != nil {
		return nil, nil, err
	}
	if len(cfg.Plaintext) != taes.BlockSize {
		return nil, nil, fmt.Errorf("experiments: plaintext must be one block")
	}
	ct := make([]byte, taes.BlockSize)
	c.Encrypt(ct, cfg.Plaintext)
	img, err := victim.AESInImage(ct)
	if err != nil {
		return nil, nil, err
	}
	if err := rig.Victim.AddressSpace().WriteVirt(victim.AESInVA, img); err != nil {
		return nil, nil, err
	}
	return &aesRig{
		Rig:       rig,
		vic:       template.vic,
		allLines:  template.allLines,
		lineTable: template.lineTable,
		lineIdx:   template.lineIdx,
	}, ct, nil
}

// probeMasks probes every Td line and returns per-table bitmasks of
// cached (≠ memory) lines.
func (ar *aesRig) probeMasks() ([5]uint16, error) {
	var masks [5]uint16
	res, err := ar.Module.ProbeAddrs(ar.Victim, ar.allLines)
	if err != nil {
		return masks, err
	}
	for i, pr := range res {
		if pr.Level != cache.LevelMem {
			masks[ar.lineTable[i]] |= 1 << uint(ar.lineIdx[i])
		}
	}
	return masks, nil
}

// prime evicts every Td line to memory.
func (ar *aesRig) prime() error {
	return ar.Module.PrimeAddrs(ar.Victim, ar.allLines)
}

// truthMasks computes the ground-truth per-round per-table line masks
// from the reference decryption trace.
func truthMasks(key, ct []byte) (map[int][5]uint16, error) {
	c, err := taes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, taes.BlockSize)
	trace := c.DecryptTrace(out, ct)
	truth := make(map[int][5]uint16)
	for _, a := range trace {
		m := truth[a.Round]
		m[a.Table] |= 1 << uint(a.Line())
		truth[a.Round] = m
	}
	return truth, nil
}

// ---------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------

// Fig11Result reproduces Figure 11: the latency the Replayer observes for
// each of Td1's 16 cache lines after each of three replays of one
// decryption-round window.
type Fig11Result struct {
	// Latencies[replay][line], in cycles.
	Latencies [3][16]uint64
	// Truth is the ground-truth bitmask of Td1 lines accessed in round 1.
	Truth uint16
	// Extracted[i] is the L1-classified line mask after primed replay i+1.
	Extracted [2]uint16
	// Replay0Bands counts distinct latency bands in the unprimed probe —
	// the paper's replay 0 spans L1 / L2-L3 / memory.
	Replay0Bands int
}

// Consistent reports whether the two primed replays agree and match the
// ground truth — the "no noise in a single logical run" claim.
func (f *Fig11Result) Consistent() bool {
	return f.Extracted[0] == f.Extracted[1] && f.Extracted[0] == f.Truth
}

// RunFig11 mounts the Fig. 11 experiment: the replay handle is an rk
// access, the pivot is the first Td0 access of round 1, and the round's
// window is replayed three times — unprimed once, then twice into a
// primed cache.
func RunFig11(cfg AESConfig) (*Fig11Result, error) {
	ar, ct, err := newAESRig(cfg)
	if err != nil {
		return nil, err
	}
	truth, err := truthMasks(cfg.Key, ct)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Truth: truth[1][1]}

	// Ambient cache state: before the attack, Td1 lines sit at assorted
	// hierarchy levels (leftovers of other activity on the machine).
	for line := 0; line < taes.LinesPerTable; line++ {
		pa, err := ar.Victim.AddressSpace().Translate(ar.vic.TdLineVA(1, line))
		if err != nil {
			return nil, err
		}
		switch line % 3 {
		case 0:
			ar.Core.Hierarchy().WarmTo(pa, cache.LevelL2)
		case 1:
			ar.Core.Hierarchy().WarmTo(pa, cache.LevelL3)
		default:
			ar.Core.Hierarchy().WarmTo(pa, cache.LevelMem)
		}
	}

	probeTd1 := func(into *[16]uint64) error {
		var addrs []mem.Addr
		for line := 0; line < taes.LinesPerTable; line++ {
			addrs = append(addrs, ar.vic.TdLineVA(1, line))
		}
		prs, err := ar.Module.ProbeAddrs(ar.Victim, addrs)
		if err != nil {
			return err
		}
		for i, pr := range prs {
			into[i] = uint64(pr.Latency)
		}
		return nil
	}

	var probeErr error
	arrival := 0
	rec := &microscope.Recipe{
		Name:           "fig11",
		Victim:         ar.Victim,
		Handle:         ar.vic.Sym("rk"),
		Pivot:          ar.vic.Sym("td0"),
		WalkLevels:     cfg.WalkLevels,
		HandlerLatency: cfg.HandlerLatency,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		if !ev.OnPivot {
			// Prologue rk fault: advance to the round-1 pivot.
			return microscope.Pivot
		}
		if arrival > 2 {
			return microscope.Release
		}
		if probeErr = probeTd1(&res.Latencies[arrival]); probeErr != nil {
			return microscope.Release
		}
		arrival++
		if arrival > 2 {
			return microscope.Release
		}
		// Prime Td1 (evict to memory) and replay the window.
		if probeErr = ar.prime(); probeErr != nil {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := ar.Module.Install(rec); err != nil {
		return nil, err
	}
	ar.vic.Start(ar.Kernel, 0)
	if err := ar.Run(50_000_000); err != nil {
		return nil, err
	}
	if probeErr != nil {
		return nil, probeErr
	}
	if arrival != 3 {
		return nil, fmt.Errorf("experiments: fig11 saw %d pivot arrivals, want 3", arrival)
	}

	// Classify.
	bands := sidechan.DefaultCacheBands()
	res.Replay0Bands = bands.DistinctBands(res.Latencies[0][:])
	l1Lat := uint64(ar.Core.Hierarchy().HitLatency(cache.LevelL1))
	for rep := 1; rep <= 2; rep++ {
		for line := 0; line < 16; line++ {
			if res.Latencies[rep][line] <= l1Lat {
				res.Extracted[rep-1] |= 1 << uint(line)
			}
		}
	}

	// The victim must still decrypt correctly after release.
	pt, err := ar.vic.Plaintext(func(va mem.Addr) (uint64, error) {
		return ar.Victim.AddressSpace().Read64Virt(va)
	})
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(pt, cfg.Plaintext) {
		return nil, fmt.Errorf("experiments: victim corrupted: plaintext %x", pt)
	}
	return res, nil
}
