package experiments

import (
	"testing"

	"microscope/attack/victim"
	"microscope/sim/cpu"
)

func TestEnclaveEndToEnd(t *testing.T) {
	for _, secret := range []bool{false, true} {
		res, err := RunEnclaveAttack(secret)
		if err != nil {
			t.Fatal(err)
		}
		if !res.DirectReadBlocked {
			t.Error("OS read of enclave memory was not blocked")
		}
		if !res.PredictorFlushed {
			t.Error("enclave entry did not flush the branch predictor")
		}
		if res.RecoveredSecret != res.TrueSecret {
			t.Errorf("secret=%t: recovered %d, want %d",
				secret, res.RecoveredSecret, res.TrueSecret)
		}
		if res.AEXCount == 0 {
			t.Error("no AEX events during the replay attack")
		}
		if res.Replays < 10 {
			t.Errorf("replays = %d", res.Replays)
		}
	}
}

func TestSubnormalDetection(t *testing.T) {
	res, err := RunSubnormal(2_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("threshold=%d normalOver=%d subnormalOver=%d maxN=%d maxS=%d",
		res.Threshold, res.NormalOver, res.SubnormalOver, res.MaxNormal, res.MaxSubnormal)
	if !res.Detected() {
		t.Error("subnormal divide not detected")
	}
	// The subnormal divide's occupancy is ~SubnormalPenalty longer: the
	// strongest contended sample reflects that.
	if res.MaxSubnormal < res.MaxNormal+50 {
		t.Errorf("max sample %d vs %d: penalty not visible", res.MaxSubnormal, res.MaxNormal)
	}
}

func TestDenoiseConfidence(t *testing.T) {
	for _, secret := range []bool{false, true} {
		res, err := RunDenoise(secret, 20)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != res.Truth {
			t.Errorf("secret=%t: verdict %t", secret, res.Verdict)
		}
		if len(res.Observations) != 20 {
			t.Errorf("observations = %d", len(res.Observations))
		}
		if res.ReplaysTo90 < 0 || res.ReplaysTo90 > 5 {
			t.Errorf("secret=%t: replays to 90%% = %d; denoising should converge fast",
				secret, res.ReplaysTo90)
		}
	}
}

func TestModExpExponentExtraction(t *testing.T) {
	for _, exp := range []uint64{0xB5C3, 0x8001, 0xFFFF, 0x0001} {
		res, err := RunModExp(0x1234, exp, 0xF001D, 16)
		if err != nil {
			t.Fatalf("exp %#x: %v", exp, err)
		}
		if !res.Match() {
			t.Errorf("exp %#x: recovered %#x", res.TrueExp, res.RecoveredExp)
		}
		if !res.ResultOK {
			t.Errorf("exp %#x: victim result wrong", exp)
		}
	}
}

func TestModExpVictimComputesCorrectly(t *testing.T) {
	// Pure victim run (no attack): result must match software modexp.
	vic, err := victim.NewModExpVictim(777, 0xA5A5, 99991, 16)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := NewRig(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.InstallVictim(vic.Layout); err != nil {
		t.Fatal(err)
	}
	vic.Start(rig.Kernel, 0)
	if err := rig.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	out, err := rig.Victim.AddressSpace().Read64Virt(vic.Sym("out"))
	if err != nil {
		t.Fatal(err)
	}
	if out != vic.ModExpResult() {
		t.Errorf("victim computed %d, want %d", out, vic.ModExpResult())
	}
	// Cross-check the software helper against naive exponentiation.
	want := uint64(1)
	for i := 0; i < 0xA5A5; i++ {
		want = want * 777 % 99991
	}
	if vic.ModExpResult() != want {
		t.Errorf("ModExpResult = %d, naive = %d", vic.ModExpResult(), want)
	}
}
