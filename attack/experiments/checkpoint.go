package experiments

import (
	"fmt"
	"sync"

	"microscope/sim/cpu"
	"microscope/sim/snapshot"
)

// Checkpoint is a restorable image of a whole Rig: the machine snapshot
// (physical memory, core microarchitecture, kernel tables) plus the
// MicroScope module's replay state and the identities of the rig's
// victim/monitor process handles. A checkpoint taken once after the
// expensive setup (NewRig boots a 64 MB platform; victim installation
// writes the memory image) lets sweeps fork N state-identical trials
// without paying that cost N times.
type Checkpoint struct {
	Machine *snapshot.Machine
	// VictimPID/MonitorPID record which process-table entries the rig's
	// Victim/Monitor fields pointed at; Restore re-resolves the handles
	// against the restored kernel. MonitorPID is 0 when no monitor was
	// attached.
	VictimPID  int
	MonitorPID int
	// Config is the core configuration the checkpointed rig was built
	// with; Boot assembles fresh forks from it. Structural fields must
	// match the snapshot (Core.Restore checks); timing fields may be
	// overridden per fork via Core.UpdateTiming.
	Config cpu.Config
}

// Checkpoint captures the rig's complete state. The rig stays live and
// unmodified; the returned image shares no mutable state with it.
func (r *Rig) Checkpoint() (*Checkpoint, error) {
	m, err := snapshot.Capture(r.Phys, r.Core, r.Kernel)
	if err != nil {
		return nil, err
	}
	m.Module = r.Module.Snapshot()
	cp := &Checkpoint{Machine: m, VictimPID: r.Victim.PID, Config: r.Core.Config()}
	if r.Monitor != nil {
		cp.MonitorPID = r.Monitor.PID
	}
	return cp, nil
}

// Restore overwrites the rig's whole machine and module state with the
// checkpoint and re-resolves the Victim/Monitor handles by PID. Recipes
// whose snapshot records an OnReplay callback come back with a nil one;
// the caller re-binds them via r.Module.Recipe(name).
func (r *Rig) Restore(cp *Checkpoint) error {
	if err := cp.Machine.Restore(r.Phys, r.Core, r.Kernel); err != nil {
		return err
	}
	if cp.Machine.Module != nil {
		if err := r.Module.Restore(cp.Machine.Module); err != nil {
			return err
		}
	}
	vp, ok := r.Kernel.Process(cp.VictimPID)
	if !ok {
		return fmt.Errorf("experiments: checkpoint victim pid %d missing from restored process table", cp.VictimPID)
	}
	r.Victim = vp
	r.Monitor = nil
	if cp.MonitorPID != 0 {
		mp, ok := r.Kernel.Process(cp.MonitorPID)
		if !ok {
			return fmt.Errorf("experiments: checkpoint monitor pid %d missing from restored process table", cp.MonitorPID)
		}
		r.Monitor = mp
	}
	return nil
}

// Boot assembles a fresh rig (its own PhysMem/Core/Kernel/Module) and
// restores the checkpoint into it.
func (cp *Checkpoint) Boot() (*Rig, error) {
	rig, err := NewRig(cp.Config)
	if err != nil {
		return nil, err
	}
	if err := rig.Restore(cp); err != nil {
		return nil, err
	}
	return rig, nil
}

// Fork checkpoints the rig and boots an independent copy: same memory
// image, same microarchitectural state, same module state, sharing
// nothing mutable with the original. Callbacks are not copied (see
// Restore). For many forks of one state, take one Checkpoint and Boot
// it repeatedly instead.
func (r *Rig) Fork() (*Rig, error) {
	cp, err := r.Checkpoint()
	if err != nil {
		return nil, err
	}
	return cp.Boot()
}

// rigPool hands out rigs restored to a common checkpoint. A sweep
// drawing trial rigs from the pool pays one platform boot per
// *concurrent worker* instead of one per trial; every get() restores
// the rig to the checkpoint first, so trial results are independent of
// which pooled rig served which trial (worker-count invariance).
type rigPool struct {
	cp *Checkpoint
	mu sync.Mutex
	// pristine is a rig known to sit exactly at the checkpoint state
	// (the template the checkpoint was captured from); its first draw
	// skips the restore. Rigs returned after use go to free and are
	// restored on their next draw.
	pristine *Rig
	free     []*Rig
}

// newRigPool seeds the pool with the template rig the checkpoint was
// taken from, so single-worker sweeps never boot a second platform.
func newRigPool(cp *Checkpoint, seed *Rig) *rigPool {
	return &rigPool{cp: cp, pristine: seed}
}

func (p *rigPool) get() (*Rig, error) {
	p.mu.Lock()
	if r := p.pristine; r != nil {
		p.pristine = nil
		p.mu.Unlock()
		return r, nil
	}
	var r *Rig
	if n := len(p.free); n > 0 {
		r, p.free = p.free[n-1], p.free[:n-1]
	}
	p.mu.Unlock()
	if r == nil {
		return p.cp.Boot()
	}
	if err := r.Restore(p.cp); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *rigPool) put(r *Rig) {
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}
