package experiments

import (
	"errors"
	"fmt"

	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/enclave"
	"microscope/sim/kernel"
	"microscope/sim/mem"
)

// EnclaveAttackResult is the end-to-end SGX scenario of the paper's
// threat model (§3): the victim runs inside an enclave, the OS cannot
// read its memory, and MicroScope still extracts the secret through
// translation control — in one logical run.
type EnclaveAttackResult struct {
	// DirectReadBlocked: the OS's attempt to read the secret from
	// enclave memory was refused by the EPC check.
	DirectReadBlocked bool
	// AEXCount is how many asynchronous exits the enclave observed (one
	// per replay fault).
	AEXCount int
	// RecoveredSecret is the secret bit extracted over the side channel.
	RecoveredSecret int
	// TrueSecret is the bit the enclave actually held.
	TrueSecret int
	// PredictorFlushed confirms the enclave entry flushed the branch
	// predictor (the [12] countermeasure is on and is bypassed anyway).
	PredictorFlushed bool
	Replays          int
}

// enclaveSecretVictim builds the control-flow-secret victim inside an
// enclave region: the secret byte lives in enclave-private memory; the
// branch transmits it through a probe-line access.
func enclaveSecretVictim(base mem.Addr, secret bool) (*victim.Layout, []byte) {
	// Enclave image: first page holds the secret.
	init := make([]byte, mem.PageSize)
	if secret {
		init[0] = 1
	}
	l := victim.ControlFlowSecret(secret)
	return l, init
}

// RunEnclaveAttack mounts the whole scenario.
func RunEnclaveAttack(secret bool) (*EnclaveAttackResult, error) {
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	mgr := enclave.NewManager(k, core)
	mod := microscope.NewModule(k)

	proc, err := k.NewProcess("enclave-host")
	if err != nil {
		return nil, err
	}
	k.Schedule(0, proc)

	// The victim program and its data pages: we reuse the control-flow
	// victim but house its secret page inside an enclave region.
	l, _ := enclaveSecretVictim(0, secret)
	// Install the non-secret regions as ordinary process memory.
	for _, reg := range l.Regions {
		if reg.Name == "secret" {
			continue
		}
		v := k.AddVMA(proc, reg.VA, reg.VA+reg.Size, reg.Flags, reg.Name)
		if err := k.MapEager(proc, v); err != nil {
			return nil, err
		}
		if len(reg.Init) > 0 {
			if err := proc.AddressSpace().WriteVirt(reg.VA, reg.Init); err != nil {
				return nil, err
			}
		}
	}
	// The secret page becomes the enclave's private memory.
	secretInit := make([]byte, 8)
	if secret {
		secretInit[0] = 1
	}
	encl, err := mgr.Create(proc, l.Sym("secret"), mem.PageSize, l.Prog, secretInit)
	if err != nil {
		return nil, err
	}

	res := &EnclaveAttackResult{}
	if secret {
		res.TrueSecret = 1
	}

	// The OS tries the direct route first — and is refused.
	if _, err := mgr.OSRead(proc, l.Sym("secret"), 8); errors.Is(err, enclave.ErrEPCAccessDenied) {
		res.DirectReadBlocked = true
	}

	// Predictor primed by the attacker, then flushed at enclave entry:
	// the flush itself puts it into the known all-not-taken state
	// (§4.2.3: flushing helps the adversary).
	ctx := core.Context(0)
	ctx.Predictor().Prime(l.Mark("branch"), true, 0)
	if err := mgr.Enter(encl, 0, 0); err != nil {
		return nil, err
	}
	res.PredictorFlushed = !ctx.Predictor().PredictDirection(l.Mark("branch"))

	// Attack: replay on the handle; decide the branch direction from
	// divider occupancy deltas across replays.
	var lastBusy uint64
	divReplays := 0
	rec := &microscope.Recipe{
		Name:       "enclave-cf",
		Victim:     proc,
		Handle:     l.Sym("handle"),
		MaxReplays: 12,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		busy := core.Ports().DivBusyCycles
		if busy > lastBusy {
			divReplays++
		}
		lastBusy = busy
		res.Replays = ev.Replays
		if ev.Replays >= rec.MaxReplays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := mod.Install(rec); err != nil {
		return nil, err
	}
	core.Run(50_000_000)
	if !ctx.Halted() {
		return nil, fmt.Errorf("experiments: enclave victim did not finish")
	}
	if divReplays > rec.MaxReplays/2 {
		res.RecoveredSecret = 1
	}
	res.AEXCount = len(encl.AEXLog())
	return res, nil
}
