package experiments

import (
	"bytes"
	"strings"
	"testing"

	"microscope/attack/microscope"
	"microscope/attack/monitor"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/trace"
)

// runFFObserved mounts the scenario like runFFScenario but with the full
// observer stack tee'd onto the core: collector, metrics and hasher all
// see the same stream.
func runFFObserved(t *testing.T, sc ffScenario) (ffDigest, *trace.Collector, *trace.Metrics, *microscope.Module) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.JitterPeriod = 901
	cfg.JitterExtra = 150

	rig, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vic := sc.layout(t)
	if err := rig.InstallVictim(vic); err != nil {
		t.Fatal(err)
	}
	var mon *victim.Layout
	if sc.monitor {
		mon = monitor.PortContention(64, 2)
		if err := rig.AddMonitor(mon); err != nil {
			t.Fatal(err)
		}
	}

	rec := &microscope.Recipe{
		Name:           "observed-" + sc.name,
		Victim:         rig.Victim,
		Handle:         vic.Sym(sc.handle),
		HandlerLatency: 20_000,
		MaxReplays:     8,
	}
	if sc.monitor {
		rec.OnReplay = func(microscope.Event) microscope.Decision {
			if rig.Core.Context(1).Halted() {
				return microscope.Release
			}
			return microscope.Replay
		}
	}
	if err := rig.Module.Install(rec); err != nil {
		t.Fatal(err)
	}

	h := trace.NewHasher()
	col := trace.NewCollector(0)
	met := trace.NewMetrics()
	met.ROBSize = cfg.ROBSize
	rig.Core.SetTracer(trace.Tee(h, col, met))

	vic.Start(rig.Kernel, 0)
	if mon != nil {
		mon.Start(rig.Kernel, 1)
	}
	if err := rig.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	d := ffDigest{
		traceHash: h.Sum64(),
		events:    int(h.Events()),
		cycles:    rig.Core.Cycle(),
		replays:   rec.Replays(),
	}
	return d, col, met, rig.Module
}

// End-to-end schema check of the observability layer over a full replay
// attack: collector + metrics + hasher tee'd onto one core, the module
// timeline layered in as annotations, and the Chrome export validated
// against the trace_event schema.
func runObserved(t *testing.T) (chrome []byte, metricsText string, metricsJSON []byte, hash uint64) {
	t.Helper()
	sc := ffScenarios()[0] // controlflow-mul, with an SMT monitor

	// Rebuild runFFScenario's rig but with the full observer stack.
	d, col, met, mod := runFFObserved(t, sc)
	anns := mod.TraceAnnotations()
	if len(anns) == 0 {
		t.Fatal("module produced no trace annotations")
	}
	var sawReplay bool
	for _, a := range anns {
		if strings.HasPrefix(a.Name, "replay ") && a.End > a.Start {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Error("no replay iteration rendered as a duration slice")
	}

	data, err := trace.ChromeJSON(col, anns)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("chrome export fails schema validation: %v", err)
	}
	js, err := met.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, met.Text(), js, d.traceHash
}

func TestObservabilityEndToEnd(t *testing.T) {
	chrome1, text1, json1, hash1 := runObserved(t)
	chrome2, text2, json2, hash2 := runObserved(t)

	// Byte-determinism across runs: trace, text and JSON renderings.
	if !bytes.Equal(chrome1, chrome2) {
		t.Error("chrome export differs between identical runs")
	}
	if text1 != text2 {
		t.Errorf("metrics text differs between identical runs:\n%s\nvs\n%s", text1, text2)
	}
	if !bytes.Equal(json1, json2) {
		t.Error("metrics JSON differs between identical runs")
	}
	if hash1 != hash2 {
		t.Errorf("trace hash differs between identical runs: %#x vs %#x", hash1, hash2)
	}

	// The text rendering must cover every metrics section.
	for _, want := range []string{"cycles", "retired", "squashes", "port issues",
		"rob utilization", "page walks"} {
		if !strings.Contains(text1, want) {
			t.Errorf("metrics text missing %q section:\n%s", want, text1)
		}
	}
	// A replay attack faults repeatedly: both the pipeline tracks and the
	// fault markers must be present in the export.
	if !bytes.Contains(chrome1, []byte(`"ph": "i"`)) {
		t.Error("chrome export has no instant events (faults/squashes)")
	}
	if !bytes.Contains(chrome1, []byte("replayer: ")) {
		t.Error("chrome export has no replayer annotation track")
	}
}
