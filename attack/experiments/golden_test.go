package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-trace regression: every builtin victim runs a short
// fixed-seed replay attack and its canonical event-stream digest must
// match the committed value. A pipeline refactor that silently reorders,
// drops or re-times a single event anywhere in the run moves the FNV
// digest and fails here loudly. Regenerate after an *intentional*
// behaviour change with:
//
//	go test ./attack/experiments -run TestGoldenTraces -update
//
// and review the testdata diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite golden trace digests")

const goldenPath = "testdata/golden_traces.json"

// goldenDigest is the committed fingerprint of one scenario's run.
type goldenDigest struct {
	TraceHash string `json:"traceHash"` // %#016x of the FNV-1a sum
	Events    int    `json:"events"`
	Cycles    uint64 `json:"cycles"`
	Replays   int    `json:"replays"`
}

func loadGolden(t *testing.T) map[string]goldenDigest {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	var m map[string]goldenDigest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return m
}

func TestGoldenTraces(t *testing.T) {
	got := map[string]goldenDigest{}
	for _, sc := range ffScenarios() {
		d := runFFScenario(t, sc, ffJitterConfig())
		got[sc.name] = goldenDigest{
			TraceHash: fmt.Sprintf("%#016x", d.traceHash),
			Events:    d.events,
			Cycles:    d.cycles,
			Replays:   d.replays,
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d scenarios", goldenPath, len(got))
		return
	}

	want := loadGolden(t)
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden digest committed (run with -update)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: trace diverged from golden:\n got %+v\nwant %+v\n"+
				"if this change is intentional, regenerate with -update and review the diff",
				name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: golden digest exists but the scenario is gone", name)
		}
	}
}
