package experiments

import (
	"testing"

	"microscope/attack/microscope"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/trace"
)

// memoFuzzDigest is everything observable about one fuzzed attack run.
type memoFuzzDigest struct {
	traceHash uint64
	events    uint64
	cycles    uint64
	replays   int
	faults    int
	regs      [isa.NumRegs]uint64
	stats     cpu.ContextStats
	memo      cpu.MemoStats
}

// runMemoMutant mounts a mutant layout (rebuilt per run — Install
// patches program state) under the given ReplayMemo setting and digests
// the full attack.
func runMemoMutant(t *testing.T, sel uint8, a uint64, tail []byte, handleSym string,
	maxReplays int, handlerLat uint64, memoOn bool) (memoFuzzDigest, bool) {
	t.Helper()
	lay, _ := mutantLayout(sel, a, tail)
	cfg := cpu.DefaultConfig()
	cfg.ReplayMemo = memoOn
	rig, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.InstallVictim(lay); err != nil {
		return memoFuzzDigest{}, false
	}
	rec := &microscope.Recipe{
		Name:           "memofuzz",
		Victim:         rig.Victim,
		Handle:         lay.Sym(handleSym),
		HandlerLatency: handlerLat,
		MaxReplays:     maxReplays,
	}
	if err := rig.Module.Install(rec); err != nil {
		return memoFuzzDigest{}, false
	}
	h := trace.NewHasher()
	rig.Core.SetTracer(h)
	lay.Start(rig.Kernel, 0)
	if err := rig.Run(5_000_000); err != nil {
		return memoFuzzDigest{}, false
	}
	d := memoFuzzDigest{
		traceHash: h.Sum64(),
		events:    h.Events(),
		cycles:    rig.Core.Cycle(),
		replays:   rec.Replays(),
		faults:    rec.TotalFaults(),
		stats:     rig.Core.Context(0).Stats(),
		memo:      rig.Core.MemoStats(),
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		d.regs[r] = rig.Core.Context(0).Reg(r)
	}
	return d, true
}

// FuzzMemoEquivalence drives mutated victims through full replay attacks
// with the splice cache enabled and asserts the memo soundness
// invariant: the run must be observationally identical to the same
// attack with the cache off — same canonical trace hash, cycle count,
// architectural registers, statistics and replay/fault totals — for any
// victim parameterization and replay budget the fuzzer finds.
func FuzzMemoEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(3), []byte{}, uint8(6), uint16(500))
	f.Add(uint8(0), uint64(7), []byte{}, uint8(10), uint16(2000))
	f.Add(uint8(1), uint64(1), []byte{}, uint8(4), uint16(900))
	f.Add(uint8(2), uint64(0), []byte{3, 1, 4, 1, 5}, uint8(3), uint16(1200))
	f.Add(uint8(3), uint64(5|10<<8|60<<16|3<<24), []byte{}, uint8(8), uint16(700))
	f.Fuzz(func(t *testing.T, sel uint8, a uint64, tail []byte, replays uint8, lat uint16) {
		lay, handleSym := mutantLayout(sel, a, tail)
		if lay == nil {
			t.Skip("constructor rejected parameterization")
		}
		if _, ok := lay.Symbols[handleSym]; !ok {
			t.Skip("mutant has no replay handle symbol")
		}
		maxReplays := 1 + int(replays%12)
		handlerLat := 100 + uint64(lat%20_000)
		on, ok := runMemoMutant(t, sel, a, tail, handleSym, maxReplays, handlerLat, true)
		if !ok {
			t.Skip("mutant attack did not complete")
		}
		off, ok := runMemoMutant(t, sel, a, tail, handleSym, maxReplays, handlerLat, false)
		if !ok {
			t.Fatal("memo-off run failed where memo-on completed")
		}
		if off.memo != (cpu.MemoStats{}) {
			t.Errorf("memo-off run has memo activity: %+v", off.memo)
		}
		if on.traceHash != off.traceHash || on.events != off.events {
			t.Errorf("sel=%d a=%#x replays=%d lat=%d: trace diverges: %d events hash %#x (on, %+v) vs %d events hash %#x (off)",
				sel, a, maxReplays, handlerLat, on.events, on.traceHash, on.memo, off.events, off.traceHash)
		}
		if on.cycles != off.cycles {
			t.Errorf("final cycle diverges: %d (on) vs %d (off)", on.cycles, off.cycles)
		}
		if on.replays != off.replays || on.faults != off.faults {
			t.Errorf("replay counts diverge: %d/%d (on) vs %d/%d (off)",
				on.replays, on.faults, off.replays, off.faults)
		}
		if on.regs != off.regs {
			t.Errorf("registers diverge:\n on: %v\noff: %v", on.regs, off.regs)
		}
		if on.stats != off.stats {
			t.Errorf("stats diverge:\n on: %+v\noff: %+v", on.stats, off.stats)
		}
	})
}
